// Command mlnworker attaches out-of-process cleaning workers to a
// distributed coordinator that was started with the remote HTTP transport
// (distributed.NewRemoteHTTPTransport). Each worker claims a slot over
// HTTP, long-polls its inbox, runs the stage-I/II pipeline on its partition,
// and exits when the run completes.
//
// Usage:
//
//	mlnworker -coordinator http://10.0.0.5:7701 [-n 2] [-loop]
//	          [-debug-addr :6061] [-log-format text|json] [-log-level info]
//
// With -loop the process reattaches after each run with exponential backoff
// (reset after a successful run), serving a coordinator that is recreated
// per cleaning request — or one that opens recovery slots mid-run after a
// peer worker died. A looping mlnworker is therefore also the spare in the
// fault-tolerance story: it keeps retrying /claim through conflicts until a
// slot (fresh run or recovery re-dispatch) appears, and the coordinator
// replays the partition's full Init/TupleBatch/StartStageI history onto it.
//
// Observability: -debug-addr serves net/http/pprof (off by default; keep it
// loopback). Logs are structured (log/slog, -log-format/-log-level); the
// worker-side pipeline lines carry the run id the coordinator stamped on the
// lease, so one clean's logs join across processes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mlnclean/internal/distributed"
	"mlnclean/internal/obs"
)

const (
	backoffMin = 250 * time.Millisecond
	backoffMax = 5 * time.Second
	// maxOneShotFails bounds attach retries without -loop (~30s of backoff):
	// enough to ride out a coordinator that is still starting or a recovery
	// slot that has not opened yet, finite so misconfiguration surfaces.
	maxOneShotFails = 8
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL, e.g. http://host:7701 (required)")
		n           = flag.Int("n", 1, "worker slots to claim and serve")
		loop        = flag.Bool("loop", false, "reattach after each completed run (with backoff)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off; keep it loopback)")
		logFormat   = flag.String("log-format", "text", "log output format: text|json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	)
	flag.Parse()
	if *coordinator == "" {
		flag.Usage()
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlnworker:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			slog.Error("mlnworker: debug listener", "err", err)
			os.Exit(1)
		}
		go func() {
			slog.Info("mlnworker: pprof listening", "addr", dln.Addr().String())
			if err := http.Serve(dln, http.DefaultServeMux); err != nil {
				slog.Warn("mlnworker: pprof server exited", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	var failed atomic.Bool
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backoff := backoffMin
			fails := 0
			for {
				err := distributed.ServeHTTPWorker(ctx, *coordinator)
				if ctx.Err() != nil {
					return
				}
				if err == nil {
					// A served run completed; the coordinator is healthy.
					if !*loop {
						return
					}
					backoff, fails = backoffMin, 0
				} else {
					// A failed attach (missing coordinator, slots all
					// claimed) retries with exponential backoff even
					// without -loop: the run we were asked to serve may not
					// have started yet, or our slot may appear later as a
					// recovery re-dispatch. A one-shot worker still gives
					// up eventually so a typoed URL fails the invocation
					// instead of spinning forever.
					fails++
					if !*loop && fails > maxOneShotFails {
						slog.Error("mlnworker: giving up", "slot", i, "failed_attaches", fails, "err", err)
						failed.Store(true)
						return
					}
					slog.Warn("mlnworker: attach failed, retrying", "slot", i, "backoff", backoff, "err", err)
				}
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return
				}
				if err != nil {
					backoff *= 2
					if backoff > backoffMax {
						backoff = backoffMax
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() {
		os.Exit(1)
	}
}
