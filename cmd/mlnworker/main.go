// Command mlnworker attaches out-of-process cleaning workers to a
// distributed coordinator that was started with the remote HTTP transport
// (distributed.NewRemoteHTTPTransport). Each worker claims a slot over
// HTTP, long-polls its inbox, runs the stage-I/II pipeline on its partition,
// and exits when the run completes.
//
// Usage:
//
//	mlnworker -coordinator http://10.0.0.5:7701 [-n 2] [-loop]
//
// With -loop the process reattaches after each run, serving a coordinator
// that is recreated per cleaning request (e.g. a serving session configured
// for remote workers).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mlnclean/internal/distributed"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL, e.g. http://host:7701 (required)")
		n           = flag.Int("n", 1, "worker slots to claim and serve")
		loop        = flag.Bool("loop", false, "reattach after each completed run")
	)
	flag.Parse()
	if *coordinator == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				err := distributed.ServeHTTPWorker(ctx, *coordinator)
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "mlnworker[%d]: %v\n", i, err)
				}
				if !*loop {
					return
				}
				// Back off briefly between attach attempts so a missing
				// coordinator doesn't spin the CPU.
				select {
				case <-time.After(500 * time.Millisecond):
				case <-ctx.Done():
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
