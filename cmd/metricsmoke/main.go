// Command metricsmoke is the CI observability gate: pointed at a running
// mlnserve, it scrapes /metrics, drives one small cleaning session through
// the API, scrapes again, and fails unless
//
//   - every required metric family is present,
//   - the exposition carries at least -min-series distinct series,
//   - no counter or histogram series moved backwards between the scrapes,
//   - the session's work actually surfaced (sessions-created, cleans-
//     completed, and executor-runs counters strictly increased).
//
// Usage:
//
//	metricsmoke -base http://127.0.0.1:7731 [-min-series 25] [-wait 10s]
//
// The tool waits for /healthz before scraping, so CI can start the daemon
// and invoke metricsmoke immediately without its own polling loop. The
// target daemon must run with -data-dir: the WAL family's growth is part of
// the gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// requiredPrefixes are the metric families the exposition must span: one
// entry per instrumented subsystem. Every family registers at package init,
// so even an idle daemon must show all of them (at zero).
var requiredPrefixes = []string{
	"mlnserve_http_",
	"mlnserve_sessions_",
	"mlnserve_cache_",
	"mlnserve_cleans_",
	"mlnclean_core_",
	"mlnclean_index_",
	"mlnclean_plan_",
	"mlnclean_executor_",
	"mlnclean_transport_",
	"mlnclean_wal_",
	"mlnclean_mem_",
}

// mustGrow are the series one driven session must strictly increase. The
// session's workers run the stage pipeline directly (core.Clean is the
// stand-alone CLI entry point), so the core family is checked through its
// stage histogram, not the cleans counter.
var mustGrow = []string{
	"mlnserve_sessions_created_total",
	"mlnserve_cleans_completed_total",
	"mlnclean_executor_runs_total",
	`mlnclean_core_stage_seconds_count{stage="agp"}`,
	"mlnclean_index_builds_total",
	"mlnclean_wal_appends_total",
	// Every stage allocates evaluator pools fresh per clean, so the first
	// Get of each worker is a miss: a driven session must record misses
	// even when it is too small for any pooled reuse (hits may stay 0).
	"mlnclean_mem_pool_misses_total",
}

func main() {
	var (
		base      = flag.String("base", "http://127.0.0.1:7731", "mlnserve base URL")
		minSeries = flag.Int("min-series", 25, "minimum distinct series the exposition must carry")
		wait      = flag.Duration("wait", 10*time.Second, "how long to wait for /healthz before giving up")
	)
	flag.Parse()
	if err := run(*base, *minSeries, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "metricsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("metricsmoke: PASS")
}

func run(base string, minSeries int, wait time.Duration) error {
	if err := waitHealthy(base, wait); err != nil {
		return err
	}
	before, err := scrape(base)
	if err != nil {
		return fmt.Errorf("first scrape: %w", err)
	}
	if err := driveSession(base); err != nil {
		return fmt.Errorf("driving session: %w", err)
	}
	after, err := scrape(base)
	if err != nil {
		return fmt.Errorf("second scrape: %w", err)
	}

	// Family coverage and breadth, judged on the post-workload exposition.
	names := make(map[string]bool)
	for k := range after.samples {
		names[k] = true
	}
	for _, p := range requiredPrefixes {
		found := false
		for name := range after.types {
			if strings.HasPrefix(name, p) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no metric family with prefix %q", p)
		}
	}
	if len(names) < minSeries {
		return fmt.Errorf("exposition carries %d series, want >= %d", len(names), minSeries)
	}

	// Monotonicity: counters and histogram components never move backwards.
	regressed, checked := 0, 0
	for key, v0 := range before.samples {
		if !before.monotonic(key) {
			continue
		}
		checked++
		v1, ok := after.samples[key]
		if !ok {
			return fmt.Errorf("series %s disappeared between scrapes", key)
		}
		if v1 < v0 {
			fmt.Fprintf(os.Stderr, "metricsmoke: %s went %v -> %v\n", key, v0, v1)
			regressed++
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d monotonic series moved backwards", regressed)
	}

	// The driven session's work must be visible.
	for _, name := range mustGrow {
		if after.samples[name] <= before.samples[name] {
			return fmt.Errorf("%s did not increase across the driven session (%v -> %v)",
				name, before.samples[name], after.samples[name])
		}
	}
	fmt.Printf("metricsmoke: %d series, %d families ok, %d monotonic series checked\n",
		len(names), len(requiredPrefixes), checked)
	return nil
}

// exposition is one parsed Prometheus text scrape.
type exposition struct {
	types   map[string]string  // family name -> counter|gauge|histogram
	samples map[string]float64 // full series key (name{labels}) -> value
}

// monotonic reports whether a series key may never decrease: counter
// families, and a histogram's _bucket/_count/_sum components (observations
// here are durations and byte counts, never negative).
func (e *exposition) monotonic(key string) bool {
	name := key
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if e.types[name] == "counter" {
		return true
	}
	for _, suffix := range []string{"_bucket", "_count", "_sum"} {
		if fam, ok := strings.CutSuffix(name, suffix); ok && e.types[fam] == "histogram" {
			return true
		}
	}
	return false
}

func scrape(base string) (*exposition, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	e := &exposition{types: make(map[string]string), samples: make(map[string]float64)}
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			e.types[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value — the value is everything after the last space,
		// and label values never contain raw spaces (escaped by the writer).
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: malformed sample: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		e.samples[line[:sp]] = v
	}
	return e, nil
}

func waitHealthy(base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v (last: %v)", base, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// driveSession runs one tiny clean end to end: enough to move the http,
// session, cache, core, plan, index, and executor families.
func driveSession(base string) error {
	var sess struct {
		ID string `json:"id"`
	}
	if err := call("POST", base+"/v1/sessions", map[string]any{
		"rules": "FD: CT -> ST",
		"attrs": []string{"CT", "ST"},
	}, &sess); err != nil {
		return err
	}
	if err := call("POST", base+"/v1/sessions/"+sess.ID+"/tuples", map[string]any{
		"rows": [][]string{
			{"BOAZ", "AL"}, {"BOAZ", "AL"}, {"BOAZ", "AI"},
			{"GADSDEN", "AL"}, {"GADSDEN", "AL"},
		},
	}, nil); err != nil {
		return err
	}
	if err := call("POST", base+"/v1/sessions/"+sess.ID+"/clean", nil, nil); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := call("GET", base+"/v1/sessions/"+sess.ID, nil, &st); err != nil {
			return err
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			return fmt.Errorf("session failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session never finished cleaning")
		}
		time.Sleep(50 * time.Millisecond)
	}
	return call("DELETE", base+"/v1/sessions/"+sess.ID, nil, nil)
}

func call(method, url string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(b))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
