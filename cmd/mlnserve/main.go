// Command mlnserve is the long-running MLNClean cleaning service: an
// HTTP/JSON session API (create session → stream tuple batches → trigger
// clean → poll → fetch repairs) over the distributed executor, with a
// bounded session manager (idle eviction, backpressure) and a model cache
// that amortizes rule parsing and Eq. 6 weight learning across requests.
//
// Usage:
//
//	mlnserve [-addr :7700] [-max-sessions 16] [-idle-timeout 10m] [-workers 2]
//	         [-heartbeat 1s] [-worker-timeout 10s] [-data-dir /var/lib/mlnserve]
//	         [-debug-addr :6060] [-log-format text|json] [-log-level info]
//
// -addr :0 binds an OS-chosen free port; the daemon always logs the
// resolved listen address on startup, so scripted runs (CI smokes, local
// walkthroughs) never collide with an already-taken port. -heartbeat and
// -worker-timeout tune session executors' failure detection: a session
// survives a worker death — the lost partition is re-dispatched and the
// run completes with the same output, surfacing a workers_lost counter in
// its poll status.
//
// -data-dir enables durability: every session mutation is written to a
// write-ahead log under the directory before it is acknowledged, and a
// restart on the same directory replays it — sessions resume, completed
// results re-serve byte-identically, learned weight vectors warm the model
// cache. The recovery summary (sessions replayed / tombstoned / truncated
// bytes) is logged on startup; graceful shutdown flushes and fsyncs the
// log before exit.
//
// Observability: GET /metrics on the main address serves the process-wide
// Prometheus exposition (HTTP, session, cache, core-stage, executor, and WAL
// families — see the README's Observability section). -debug-addr starts a
// second loopback-intended listener serving net/http/pprof (profiles, heap,
// goroutine dumps); it is off by default and should never face the network.
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level one of debug, info, warn, error. Every session line carries the
// session id and its run id, which the executor also stamps on coordinator-
// and worker-side lines, so one clean's logs join across processes.
//
// Walkthrough (see the README's Serving section for the full curl script):
//
//	curl -s localhost:7700/v1/sessions -d '{"rules":"FD: CT -> ST","attrs":["CT","ST"]}'
//	curl -s localhost:7700/v1/sessions/s-000001/tuples -d '{"rows":[["BOAZ","AL"],["BOAZ","AI"]]}'
//	curl -s -X POST localhost:7700/v1/sessions/s-000001/clean
//	curl -s localhost:7700/v1/sessions/s-000001/result
//	curl -s localhost:7700/metrics
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight HTTP requests
// drain, every session's executor is cancelled, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlnclean/internal/obs"
	"mlnclean/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":7700", "listen address (:0 picks a free port; the resolved address is logged)")
		maxSessions   = flag.Int("max-sessions", 16, "concurrent session cap (backpressure past it)")
		idleTimeout   = flag.Duration("idle-timeout", 10*time.Minute, "evict sessions idle this long")
		workers       = flag.Int("workers", 2, "default executor workers per session")
		heartbeat     = flag.Duration("heartbeat", 0, "executor worker heartbeat interval (0 = default 1s, negative disables)")
		workerTimeout = flag.Duration("worker-timeout", 0, "declare an executor worker dead after this much silence (0 = default 10s, negative disables recovery)")
		dataDir       = flag.String("data-dir", "", "write-ahead-log directory; enables durable sessions and crash recovery (empty = in-memory only)")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off; keep it loopback)")
		logFormat     = flag.String("log-format", "text", "log output format: text|json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlnserve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	cfg := server.ManagerConfig{
		MaxSessions:       *maxSessions,
		IdleTimeout:       *idleTimeout,
		DefaultWorkers:    *workers,
		HeartbeatInterval: *heartbeat,
		WorkerTimeout:     *workerTimeout,
		DataDir:           *dataDir,
	}
	if err := run(*addr, *debugAddr, cfg); err != nil {
		slog.Error("mlnserve: fatal", "err", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr string, cfg server.ManagerConfig) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if rec := srv.Recovery(); rec != nil {
		slog.Info("mlnserve: recovered write-ahead log", "dir", cfg.DataDir,
			"sessions_replayed", rec.SessionsReplayed, "sessions_tombstoned", rec.SessionsTombstoned,
			"cleans_restarted", rec.CleansRestarted, "weight_vectors", rec.WeightVectors,
			"records", rec.Records, "truncated_bytes", rec.TruncatedBytes)
	}
	httpSrv := &http.Server{
		Handler: srv,
		// Slow-client protection; no overall ReadTimeout because tuple
		// batches may legitimately stream for a while.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	// Bind before serving so -addr :0 works and the logged address is the
	// real one, not the flag text.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Shutdown()
		return err
	}

	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			srv.Shutdown()
			return fmt.Errorf("debug listener: %w", err)
		}
		go func() {
			slog.Info("mlnserve: pprof listening", "addr", dln.Addr().String())
			// DefaultServeMux carries the net/http/pprof registrations; the
			// main API mux never exposes them.
			if err := http.Serve(dln, http.DefaultServeMux); err != nil {
				slog.Warn("mlnserve: pprof server exited", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		slog.Info("mlnserve: listening", "addr", ln.Addr().String(),
			"max_sessions", cfg.MaxSessions, "idle_timeout", cfg.IdleTimeout)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		srv.Shutdown()
		return err
	case <-ctx.Done():
	}

	slog.Info("mlnserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	// Shutdown flushes, fsyncs, and closes the WAL (no tombstones): a
	// restart on the same -data-dir resumes every session.
	srv.Shutdown()
	if cfg.DataDir != "" {
		slog.Info("mlnserve: wal flushed and closed")
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
