// Command mlnserve is the long-running MLNClean cleaning service: an
// HTTP/JSON session API (create session → stream tuple batches → trigger
// clean → poll → fetch repairs) over the distributed executor, with a
// bounded session manager (idle eviction, backpressure) and a model cache
// that amortizes rule parsing and Eq. 6 weight learning across requests.
//
// Usage:
//
//	mlnserve [-addr :7700] [-max-sessions 16] [-idle-timeout 10m] [-workers 2]
//
// Walkthrough (see the README's Serving section for the full curl script):
//
//	curl -s localhost:7700/v1/sessions -d '{"rules":"FD: CT -> ST","attrs":["CT","ST"]}'
//	curl -s localhost:7700/v1/sessions/s-000001/tuples -d '{"rows":[["BOAZ","AL"],["BOAZ","AI"]]}'
//	curl -s -X POST localhost:7700/v1/sessions/s-000001/clean
//	curl -s localhost:7700/v1/sessions/s-000001/result
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight HTTP requests
// drain, every session's executor is cancelled, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlnclean/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7700", "listen address")
		maxSessions = flag.Int("max-sessions", 16, "concurrent session cap (backpressure past it)")
		idleTimeout = flag.Duration("idle-timeout", 10*time.Minute, "evict sessions idle this long")
		workers     = flag.Int("workers", 2, "default executor workers per session")
	)
	flag.Parse()
	if err := run(*addr, *maxSessions, *idleTimeout, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "mlnserve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxSessions int, idleTimeout time.Duration, workers int) error {
	srv := server.New(server.ManagerConfig{
		MaxSessions:    maxSessions,
		IdleTimeout:    idleTimeout,
		DefaultWorkers: workers,
	})
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv,
		// Slow-client protection; no overall ReadTimeout because tuple
		// batches may legitimately stream for a while.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mlnserve: listening on %s (max %d sessions, %v idle timeout)\n",
			addr, maxSessions, idleTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		srv.Shutdown()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "mlnserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	srv.Shutdown()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
