package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
)

// TestRunEndToEnd drives the CLI's run function over the paper's Table 1
// sample written to disk.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")
	output := filepath.Join(dir, "clean.csv")

	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	rulesText := strings.Join([]string{
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	}, "\n")
	if err := os.WriteFile(rulesPath, []byte(rulesText), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(input, rulesPath, output, 1, "levenshtein", false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	clean, err := dataset.ReadCSVFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 2 {
		t.Fatalf("cleaned tuples = %d, want 2 (duplicates removed)\n%s", clean.Len(), clean)
	}
	for _, tp := range clean.Tuples {
		if clean.Cell(tp, "ST") == "AK" || clean.Cell(tp, "CT") == "DOTH" {
			t.Errorf("unrepaired tuple survived: %v", tp.Values)
		}
	}
}

func TestRunKeepDuplicates(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")
	output := filepath.Join(dir, "clean.csv")
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rulesPath, []byte("FD: A -> B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(input, rulesPath, output, 1, "levenshtein", true, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	clean, err := dataset.ReadCSVFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 2 {
		t.Errorf("keep-duplicates dropped rows: %d", clean.Len())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing.csv"), "also-missing", "", 1, "levenshtein", false, false); err == nil {
		t.Error("missing input should fail")
	}
	input := filepath.Join(dir, "in.csv")
	tb := dataset.NewTable(dataset.MustSchema("A"))
	tb.MustAppend("x")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	if err := run(input, filepath.Join(dir, "norules"), "", 1, "levenshtein", false, false); err == nil {
		t.Error("missing rules should fail")
	}
	badRules := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badRules, []byte("FD: broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(input, badRules, "", 1, "levenshtein", false, false); err == nil {
		t.Error("broken rules should fail")
	}
}
