package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
)

// TestRunEndToEnd drives the CLI's run function over the paper's Table 1
// sample written to disk.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")
	output := filepath.Join(dir, "clean.csv")

	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	rulesText := strings.Join([]string{
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	}, "\n")
	if err := os.WriteFile(rulesPath, []byte(rulesText), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(runConfig{input: input, rulesPath: rulesPath, output: output, tau: 1, metricName: "levenshtein", workers: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	clean, err := dataset.ReadCSVFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 2 {
		t.Fatalf("cleaned tuples = %d, want 2 (duplicates removed)\n%s", clean.Len(), clean)
	}
	for _, tp := range clean.Tuples {
		if clean.Cell(tp, "ST") == "AK" || clean.Cell(tp, "CT") == "DOTH" {
			t.Errorf("unrepaired tuple survived: %v", tp.Values)
		}
	}
}

// TestRunMaterializeParity runs the CLI once through the streaming default
// and once through the -materialize escape hatch. Solo the two must produce
// identical output files. Distributed they may differ — -materialize also
// swaps the online streaming partitioner for the exact Algorithm 3, and
// partition boundaries shape the per-worker cleaning — but each mode must be
// deterministic: the same invocation twice gives the same bytes.
func TestRunMaterializeParity(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")

	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	rulesText := strings.Join([]string{
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	}, "\n")
	if err := os.WriteFile(rulesPath, []byte(rulesText), 0o644); err != nil {
		t.Fatal(err)
	}

	render := func(workers int, materialize bool, out string) string {
		t.Helper()
		cfg := runConfig{
			input: input, rulesPath: rulesPath, output: out,
			tau: 1, metricName: "levenshtein",
			workers: workers, transport: "chan", batchSize: 2, seed: 1,
			materialize: materialize,
		}
		if err := run(cfg); err != nil {
			t.Fatalf("run (workers=%d, materialize=%v): %v", workers, materialize, err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	out := filepath.Join(dir, "out.csv")
	for _, workers := range []int{1, 2} {
		stream := render(workers, false, out)
		if again := render(workers, false, out); again != stream {
			t.Errorf("workers=%d: streaming run is nondeterministic", workers)
		}
		mat := render(workers, true, out)
		if again := render(workers, true, out); again != mat {
			t.Errorf("workers=%d: materialized run is nondeterministic", workers)
		}
		if workers == 1 && stream != mat {
			t.Errorf("solo: streaming and -materialize outputs differ:\nstream:\n%s\nmat:\n%s", stream, mat)
		}
	}
}

func TestRunKeepDuplicates(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")
	output := filepath.Join(dir, "clean.csv")
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rulesPath, []byte("FD: A -> B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{input: input, rulesPath: rulesPath, output: output, tau: 1, metricName: "levenshtein", keepDups: true, verbose: true, workers: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	clean, err := dataset.ReadCSVFile(output)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 2 {
		t.Errorf("keep-duplicates dropped rows: %d", clean.Len())
	}
}

// TestRunDistributed drives the CLI through the distributed executor, once
// per transport, and checks both clean the sample identically.
func TestRunDistributed(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	rulesPath := filepath.Join(dir, "rules.txt")

	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	rulesText := strings.Join([]string{
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	}, "\n")
	if err := os.WriteFile(rulesPath, []byte(rulesText), 0o644); err != nil {
		t.Fatal(err)
	}

	outputs := make(map[string]*dataset.Table)
	for _, transport := range []string{"chan", "gob"} {
		output := filepath.Join(dir, "clean-"+transport+".csv")
		cfg := runConfig{
			input: input, rulesPath: rulesPath, output: output,
			tau: 1, metricName: "levenshtein",
			workers: 2, transport: transport, batchSize: 2, seed: 1,
		}
		if err := run(cfg); err != nil {
			t.Fatalf("run (%s): %v", transport, err)
		}
		clean, err := dataset.ReadCSVFile(output)
		if err != nil {
			t.Fatal(err)
		}
		if clean.Len() == 0 || clean.Len() >= tb.Len() {
			t.Errorf("%s: cleaned tuples = %d, want deduplicated subset", transport, clean.Len())
		}
		outputs[transport] = clean
	}
	if a, b := outputs["chan"], outputs["gob"]; a.Len() != b.Len() || len(a.Diff(b)) != 0 {
		t.Error("chan and gob transports cleaned the sample differently")
	}

	cfg := runConfig{input: input, rulesPath: rulesPath, tau: 1, metricName: "levenshtein", workers: 2, transport: "carrier-pigeon"}
	if err := run(cfg); err == nil {
		t.Error("unknown transport should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(runConfig{input: filepath.Join(dir, "missing.csv"), rulesPath: "also-missing", tau: 1, metricName: "levenshtein", workers: 1}); err == nil {
		t.Error("missing input should fail")
	}
	input := filepath.Join(dir, "in.csv")
	tb := dataset.NewTable(dataset.MustSchema("A"))
	tb.MustAppend("x")
	if err := tb.WriteCSVFile(input); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{input: input, rulesPath: filepath.Join(dir, "norules"), tau: 1, metricName: "levenshtein", workers: 1}); err == nil {
		t.Error("missing rules should fail")
	}
	badRules := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badRules, []byte("FD: broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{input: input, rulesPath: badRules, tau: 1, metricName: "levenshtein", workers: 1}); err == nil {
		t.Error("broken rules should fail")
	}
}
