// Command mlnclean cleans a CSV dataset against a rule file using the
// MLNClean two-stage pipeline.
//
// Usage:
//
//	mlnclean -input dirty.csv -rules rules.txt -output clean.csv [flags]
//
// With -workers N (N > 1) the distributed executor of §6 cleans the table
// on a concurrent worker pool: Algorithm 3 partitioning, per-worker
// cleaning with the Eq. 6 weight merge, and a global gather. -transport
// selects how coordinator and workers exchange messages (chan: in-process
// channels; gob: every message round-trips through its serialized wire
// form; http: the gob framing over a real loopback HTTP listener).
//
// The rule file holds one constraint per line (see internal/rules):
//
//	FD:  ZIPCode -> City
//	CFD: Make=acura, Type -> Doors
//	DC:  not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/distributed"
	"mlnclean/internal/rules"
)

// runConfig carries the CLI flags into run.
type runConfig struct {
	input, rulesPath, output string
	tau                      int
	metricName               string
	keepDups                 bool
	verbose                  bool
	workers                  int
	transport                string
	batchSize                int
	seed                     int64
	noPlanner                bool
	showPlan                 bool
	materialize              bool
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.input, "input", "", "dirty CSV file (required)")
	flag.StringVar(&cfg.rulesPath, "rules", "", "rule file, one constraint per line (required)")
	flag.StringVar(&cfg.output, "output", "", "cleaned CSV file (default stdout)")
	flag.IntVar(&cfg.tau, "tau", 1, "AGP abnormal-group threshold τ")
	flag.StringVar(&cfg.metricName, "metric", "levenshtein", "distance metric: levenshtein|cosine")
	flag.BoolVar(&cfg.keepDups, "keep-duplicates", false, "skip duplicate elimination")
	flag.BoolVar(&cfg.verbose, "v", false, "print pipeline statistics to stderr")
	flag.IntVar(&cfg.workers, "workers", 1, "worker count; > 1 runs the distributed executor (§6)")
	flag.StringVar(&cfg.transport, "transport", "chan", "distributed transport: chan|gob|http")
	flag.IntVar(&cfg.batchSize, "batch", 1024, "tuples per distributed partition shipment")
	flag.Int64Var(&cfg.seed, "seed", 1, "partition centroid seed (distributed only)")
	flag.BoolVar(&cfg.noPlanner, "no-planner", false, "disable the selectivity-driven rule planner (declared-order full scans)")
	flag.BoolVar(&cfg.showPlan, "show-plan", false, "print the rule planner's per-rule scan choices to stderr")
	flag.BoolVar(&cfg.materialize, "materialize", false, "disable the streaming pipeline: slurp the CSV, build the full index, then clean (identical output solo; with -workers > 1 it also swaps the online partitioner for the exact Algorithm 3, which may partition — and so clean — differently)")
	flag.Parse()
	if cfg.input == "" || cfg.rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mlnclean:", err)
		os.Exit(1)
	}
}

func run(cfg runConfig) error {
	rf, err := os.Open(cfg.rulesPath)
	if err != nil {
		return err
	}
	rs, err := rules.ParseList(rf)
	rf.Close()
	if err != nil {
		return err
	}
	coreOpts := core.Options{
		Tau:            cfg.tau,
		Metric:         distance.ByName(cfg.metricName),
		KeepDuplicates: cfg.keepDups,
		DisablePlanner: cfg.noPlanner,
		Materialize:    cfg.materialize,
	}
	start := time.Now()
	var (
		clean *dataset.Table
		stats core.Stats
	)
	if cfg.workers > 1 {
		factory, err := distributed.TransportByName(cfg.transport)
		if err != nil {
			return err
		}
		dopts := distributed.Options{
			Workers:   cfg.workers,
			Seed:      cfg.seed,
			Core:      coreOpts,
			Transport: factory,
			BatchSize: cfg.batchSize,
		}
		var res *distributed.Result
		if cfg.materialize {
			// Escape hatch: slurp the table, partition with the exact
			// Algorithm 3, materialized pipeline on every worker.
			dirty, err := dataset.ReadCSVFile(cfg.input)
			if err != nil {
				return err
			}
			res, err = distributed.Clean(dirty, rs, dopts)
			if err != nil {
				return err
			}
		} else {
			// Default: stream the CSV straight into the executor's online
			// partitioner — the raw table is never materialized here.
			stream, err := dataset.StreamCSVFile(cfg.input)
			if err != nil {
				return err
			}
			res, err = distributed.CleanStream(context.Background(), stream, rs, dopts)
			if err != nil {
				return err
			}
		}
		clean = res.Clean
		stats = res.Stats
		printPlan(cfg, res.Plan)
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "distributed: %d workers (%s transport), parts=%v, wall=%v, modeled cluster=%v\n",
				res.Workers, cfg.transport, res.PartSizes,
				res.WallTime.Round(time.Millisecond), res.ClusterTime().Round(time.Millisecond))
		}
	} else {
		var res *core.Result
		if cfg.materialize {
			dirty, err := dataset.ReadCSVFile(cfg.input)
			if err != nil {
				return err
			}
			res, err = core.Clean(dirty, rs, coreOpts)
			if err != nil {
				return err
			}
		} else {
			// Default: chunked CSV→Encode ingest (one pass, values interned
			// while parsing), then the streaming stage-I pipeline.
			stream, err := dataset.StreamCSVFile(cfg.input)
			if err != nil {
				return err
			}
			dirty, enc, err := dataset.EncodeStream(stream, nil)
			if err != nil {
				return err
			}
			res, err = core.CleanEncoded(context.Background(), dirty, enc, rs, coreOpts)
			if err != nil {
				return err
			}
		}
		clean = res.Clean
		stats = res.Stats
		lines := make([]string, 0, len(res.Index.Plan().Choices()))
		for _, c := range res.Index.Plan().Choices() {
			lines = append(lines, c.String())
		}
		printPlan(cfg, lines)
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "cleaned %d tuples with %d rules in %v\n", stats.Tuples, len(rs), time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "blocks=%d groups=%d abnormal=%d rsc-repairs=%d fscr-changes=%d duplicates-removed=%d\n",
			stats.Blocks, stats.Groups, stats.AbnormalGroups,
			stats.RSCRepairs, stats.FSCRCellChanges, stats.DuplicatesRemoved)
	}
	if cfg.output == "" {
		return clean.WriteCSV(os.Stdout)
	}
	return clean.WriteCSVFile(cfg.output)
}

// printPlan dumps the rule planner's per-rule scan choices — why each rule's
// evaluation was ordered the way it was — when asked for.
func printPlan(cfg runConfig, lines []string) {
	if !cfg.showPlan {
		return
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "plan: (planner disabled)")
		return
	}
	for _, l := range lines {
		fmt.Fprintf(os.Stderr, "plan: %s\n", l)
	}
}
