// Command mlnclean cleans a CSV dataset against a rule file using the
// MLNClean two-stage pipeline.
//
// Usage:
//
//	mlnclean -input dirty.csv -rules rules.txt -output clean.csv [flags]
//
// The rule file holds one constraint per line (see internal/rules):
//
//	FD:  ZIPCode -> City
//	CFD: Make=acura, Type -> Doors
//	DC:  not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/rules"
)

func main() {
	var (
		input      = flag.String("input", "", "dirty CSV file (required)")
		rulesPath  = flag.String("rules", "", "rule file, one constraint per line (required)")
		output     = flag.String("output", "", "cleaned CSV file (default stdout)")
		tau        = flag.Int("tau", 1, "AGP abnormal-group threshold τ")
		metricName = flag.String("metric", "levenshtein", "distance metric: levenshtein|cosine")
		keepDups   = flag.Bool("keep-duplicates", false, "skip duplicate elimination")
		verbose    = flag.Bool("v", false, "print pipeline statistics to stderr")
	)
	flag.Parse()
	if *input == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*input, *rulesPath, *output, *tau, *metricName, *keepDups, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mlnclean:", err)
		os.Exit(1)
	}
}

func run(input, rulesPath, output string, tau int, metricName string, keepDups, verbose bool) error {
	dirty, err := dataset.ReadCSVFile(input)
	if err != nil {
		return err
	}
	rf, err := os.Open(rulesPath)
	if err != nil {
		return err
	}
	rs, err := rules.ParseList(rf)
	rf.Close()
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := core.Clean(dirty, rs, core.Options{
		Tau:            tau,
		Metric:         distance.ByName(metricName),
		KeepDuplicates: keepDups,
	})
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "cleaned %d tuples with %d rules in %v\n", dirty.Len(), len(rs), time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "blocks=%d groups=%d abnormal=%d rsc-repairs=%d fscr-changes=%d duplicates-removed=%d\n",
			res.Stats.Blocks, res.Stats.Groups, res.Stats.AbnormalGroups,
			res.Stats.RSCRepairs, res.Stats.FSCRCellChanges, res.Stats.DuplicatesRemoved)
	}
	if output == "" {
		return res.Clean.WriteCSV(os.Stdout)
	}
	return res.Clean.WriteCSVFile(output)
}
