// Command benchrunner regenerates the paper's tables and figures as text
// reports (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig6-car
//	benchrunner -exp all -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlnclean/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment name, or 'all' (see -list)")
		scale = flag.String("scale", "default", "dataset scale: small|default|large")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()
	if *list {
		for _, name := range bench.Names() {
			fmt.Printf("%-22s %s\n", name, bench.Registry[name].Description)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	for _, name := range names {
		start := time.Now()
		report, err := bench.Run(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		report.Fprint(os.Stdout)
		fmt.Printf("(%s scale, took %v)\n\n", sc.Label, time.Since(start).Round(time.Millisecond))
	}
}
