// Command benchrunner regenerates the paper's tables and figures as text
// reports (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig6-car
//	benchrunner -exp all -scale small
//	benchrunner -exp all -scale small -json BENCH_2026-07-30.json
//
// With -json the reports are additionally written to the named file as one
// JSON document; CI runs this on every push and uploads the BENCH_*.json
// artifact, so report trajectories can be diffed across commits. Every run
// is wrapped in a heap sampler, so each report also records its peak heap
// and total allocations (cmd/benchdiff gates on both time and memory).
// -metrics-dump additionally embeds the final process-wide metrics registry
// snapshot (per-stage latency quantiles, counters) in the document, giving
// each benchmark artifact a profile of where its time actually went.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mlnclean/internal/bench"
	"mlnclean/internal/obs"
)

// jsonReport is the machine-readable form of one experiment run. The memory
// fields come from a heap sampler wrapped around the run (see bench.MeasureMem):
// peak_heap_bytes is the HeapAlloc high-water while the experiment executed,
// total_alloc_bytes the cumulative allocation it performed. benchdiff gates on
// both elapsed and peak heap.
type jsonReport struct {
	*bench.Report
	ElapsedMS int64 `json:"elapsed_ms"`
	bench.MemProfile
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	GeneratedAt time.Time    `json:"generated_at"`
	Scale       string       `json:"scale"`
	Reports     []jsonReport `json:"reports"`
	// Metrics is the final registry snapshot (-metrics-dump): every series
	// the runs populated, histograms summarized as count/sum/p50/p90/p99.
	Metrics []obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment name, or 'all' (see -list)")
		scale    = flag.String("scale", "default", "dataset scale: small|default|large")
		list     = flag.Bool("list", false, "list available experiments")
		jsonPath = flag.String("json", "", "also write the reports to this file as JSON")
		dump     = flag.Bool("metrics-dump", false, "embed the final metrics-registry snapshot in the -json document")
	)
	flag.Parse()
	if *list {
		for _, name := range bench.Names() {
			fmt.Printf("%-22s %s\n", name, bench.Registry[name].Description)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	doc := jsonDoc{GeneratedAt: time.Now().UTC(), Scale: sc.Label}
	for _, name := range names {
		start := time.Now()
		var report *bench.Report
		mem, err := bench.MeasureMem(func() error {
			var err error
			report, err = bench.Run(name, sc)
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		report.Fprint(os.Stdout)
		fmt.Printf("(%s scale, took %v, peak heap %.1fMiB)\n\n",
			sc.Label, elapsed.Round(time.Millisecond), float64(mem.PeakHeapBytes)/(1<<20))
		doc.Reports = append(doc.Reports, jsonReport{Report: report, ElapsedMS: elapsed.Milliseconds(), MemProfile: mem})
	}
	if *dump {
		// Snapshot after every run so the dump covers all of them.
		doc.Metrics = obs.Default().Snapshot()
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote %s (%d reports)\n", *jsonPath, len(doc.Reports))
	}
}
