// Command benchdiff compares two benchrunner -json documents and flags
// experiments whose elapsed time or peak heap regressed beyond a threshold.
// CI runs it against the committed BENCH_PR10.json baseline:
//
//	benchdiff -baseline BENCH_PR10.json -current BENCH_new.json [-fail-over 0.30]
//
// Output is one line per experiment; regressions beyond the threshold print
// as GitHub Actions ::warning:: annotations. Two modes:
//
//   - advisory (default, and what CI uses on pushes): always exit 0 —
//     wall-clock on shared runners is noisy, and the committed baseline is a
//     trajectory record, not a contract.
//   - gating (-fail-over R, what CI uses on pull requests): set the
//     threshold to R and exit non-zero when any experiment regressed beyond
//     it, failing the PR's bench-smoke job. -fail-over 0 disables the gate
//     (the CI override knob — see the README's CI section).
//
// The memory comparison uses the same threshold but its own noise floor
// (-min-heap): peak heap is far more stable than wall-clock, but tiny
// experiments sit close to the GC floor where ratios are meaningless.
// Baselines written before memory annotation (no peak_heap_bytes) simply
// skip the memory check per experiment.
//
// The legacy -fail/-threshold pair still works; -fail-over is the
// one-flag spelling CI wires up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// doc mirrors cmd/benchrunner's jsonDoc, reading only what the diff needs.
type doc struct {
	Scale   string `json:"scale"`
	Reports []struct {
		Name          string `json:"Name"`
		ElapsedMS     int64  `json:"elapsed_ms"`
		PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	} `json:"reports"`
}

// sample is one experiment's measurements from one document.
type sample struct {
	elapsedMS int64
	peakHeap  uint64 // 0 = pre-memory-annotation baseline, skip the check
}

func load(path string) (map[string]sample, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]sample, len(d.Reports))
	for _, r := range d.Reports {
		out[r.Name] = sample{elapsedMS: r.ElapsedMS, peakHeap: r.PeakHeapBytes}
	}
	return out, d.Scale, nil
}

func mib(b uint64) float64 { return float64(b) / (1 << 20) }

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_PR10.json", "committed baseline document")
		current   = flag.String("current", "", "freshly generated document")
		threshold = flag.Float64("threshold", 0.30, "relative slowdown / heap growth that triggers a warning")
		minMS     = flag.Int64("min-ms", 50, "ignore elapsed-time changes on experiments faster than this in the baseline (noise)")
		minHeap   = flag.Int64("min-heap", 8<<20, "ignore peak-heap changes on experiments below this many bytes in the baseline (GC floor)")
		fail      = flag.Bool("fail", false, "exit 1 when a regression is found")
		failOver  = flag.Float64("fail-over", 0, "gate mode: exit 1 when any experiment regressed beyond this ratio (0 disables the gate)")
	)
	flag.Parse()
	if *failOver > 0 {
		*threshold = *failOver
		*fail = true
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, baseScale, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, curScale, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if baseScale != curScale {
		fmt.Printf("::warning::benchdiff comparing different scales: baseline %q vs current %q\n", baseScale, curScale)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("::warning::benchdiff: experiment %s missing from current run\n", name)
			continue
		}
		ratio := 0.0
		if b.elapsedMS > 0 {
			ratio = float64(c.elapsedMS-b.elapsedMS) / float64(b.elapsedMS)
		}
		status := "ok"
		if b.elapsedMS >= *minMS && ratio > *threshold {
			status = "REGRESSED"
			regressions++
			fmt.Printf("::warning::bench regression: %s %dms → %dms (%+.0f%%, threshold %.0f%%)\n",
				name, b.elapsedMS, c.elapsedMS, ratio*100, *threshold*100)
		}
		memCol := "      (no mem baseline)"
		if b.peakHeap > 0 && c.peakHeap > 0 {
			memRatio := float64(int64(c.peakHeap)-int64(b.peakHeap)) / float64(b.peakHeap)
			memStatus := ""
			if b.peakHeap >= uint64(*minHeap) && memRatio > *threshold {
				memStatus = "  MEM-REGRESSED"
				regressions++
				fmt.Printf("::warning::bench memory regression: %s %.1fMiB → %.1fMiB peak heap (%+.0f%%, threshold %.0f%%)\n",
					name, mib(b.peakHeap), mib(c.peakHeap), memRatio*100, *threshold*100)
			}
			memCol = fmt.Sprintf("%6.1fMiB → %6.1fMiB  %+6.1f%%%s", mib(b.peakHeap), mib(c.peakHeap), memRatio*100, memStatus)
		}
		fmt.Printf("%-24s %6dms → %6dms  %+6.1f%%  %-10s %s\n",
			name, b.elapsedMS, c.elapsedMS, ratio*100, status, memCol)
	}
	var missing []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("%-24s new experiment (%dms, %.1fMiB peak), not in baseline\n",
			name, cur[name].elapsedMS, mib(cur[name].peakHeap))
	}
	fmt.Printf("benchdiff: %d regression(s) across %d experiments beyond %.0f%%\n", regressions, len(names), *threshold*100)
	if *fail && regressions > 0 {
		fmt.Printf("::error::benchdiff gate: %d regression(s) beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}
