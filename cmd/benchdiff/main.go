// Command benchdiff compares two benchrunner -json documents and flags
// experiments whose elapsed time regressed beyond a threshold. CI runs it
// against the committed BENCH_PR7.json baseline:
//
//	benchdiff -baseline BENCH_PR7.json -current BENCH_new.json [-fail-over 0.30]
//
// Output is one line per experiment; regressions beyond the threshold print
// as GitHub Actions ::warning:: annotations. Two modes:
//
//   - advisory (default, and what CI uses on pushes): always exit 0 —
//     wall-clock on shared runners is noisy, and the committed baseline is a
//     trajectory record, not a contract.
//   - gating (-fail-over R, what CI uses on pull requests): set the
//     threshold to R and exit non-zero when any experiment regressed beyond
//     it, failing the PR's bench-smoke job. -fail-over 0 disables the gate
//     (the CI override knob — see the README's CI section).
//
// The legacy -fail/-threshold pair still works; -fail-over is the
// one-flag spelling CI wires up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// doc mirrors cmd/benchrunner's jsonDoc, reading only what the diff needs.
type doc struct {
	Scale   string `json:"scale"`
	Reports []struct {
		Name      string `json:"Name"`
		ElapsedMS int64  `json:"elapsed_ms"`
	} `json:"reports"`
}

func load(path string) (map[string]int64, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]int64, len(d.Reports))
	for _, r := range d.Reports {
		out[r.Name] = r.ElapsedMS
	}
	return out, d.Scale, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_PR7.json", "committed baseline document")
		current   = flag.String("current", "", "freshly generated document")
		threshold = flag.Float64("threshold", 0.30, "relative slowdown that triggers a warning")
		minMS     = flag.Int64("min-ms", 50, "ignore experiments faster than this in the baseline (noise)")
		fail      = flag.Bool("fail", false, "exit 1 when a regression is found")
		failOver  = flag.Float64("fail-over", 0, "gate mode: exit 1 when any experiment regressed beyond this ratio (0 disables the gate)")
	)
	flag.Parse()
	if *failOver > 0 {
		*threshold = *failOver
		*fail = true
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	base, baseScale, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, curScale, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if baseScale != curScale {
		fmt.Printf("::warning::benchdiff comparing different scales: baseline %q vs current %q\n", baseScale, curScale)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("::warning::benchdiff: experiment %s missing from current run\n", name)
			continue
		}
		ratio := 0.0
		if b > 0 {
			ratio = float64(c-b) / float64(b)
		}
		status := "ok"
		if b >= *minMS && ratio > *threshold {
			status = "REGRESSED"
			regressions++
			fmt.Printf("::warning::bench regression: %s %dms → %dms (%+.0f%%, threshold %.0f%%)\n",
				name, b, c, ratio*100, *threshold*100)
		}
		fmt.Printf("%-24s %6dms → %6dms  %+6.1f%%  %s\n", name, b, c, ratio*100, status)
	}
	var missing []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("%-24s new experiment (%dms), not in baseline\n", name, cur[name])
	}
	fmt.Printf("benchdiff: %d/%d experiments regressed beyond %.0f%%\n", regressions, len(names), *threshold*100)
	if *fail && regressions > 0 {
		fmt.Printf("::error::benchdiff gate: %d experiment(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}
