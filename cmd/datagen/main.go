// Command datagen emits one of the paper's evaluation datasets (§7.1) as
// CSV, optionally with injected errors and the matching ground truth, rule
// file, and error manifest — everything needed to benchmark a cleaner.
//
// Usage:
//
//	datagen -dataset hai -rows 5000 -rate 0.05 -out ./out
//
// writes out/dirty.csv, out/truth.csv, out/rules.txt, out/errors.csv.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

func main() {
	var (
		name = flag.String("dataset", "hai", "dataset: hai|car|tpch")
		rows = flag.Int("rows", 0, "approximate row count (0 = dataset default)")
		rate = flag.Float64("rate", 0.05, "error rate over rule-related cells")
		rret = flag.Float64("rret", 0.5, "fraction of errors that are replacements (rest typos)")
		seed = flag.Int64("seed", 42, "generator seed")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*name, *rows, *rate, *rret, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, rows int, rate, rret float64, seed int64, out string) error {
	truth, rs, err := generate(name, rows, seed)
	if err != nil {
		return err
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: rate, ReplacementRatio: rret, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := truth.WriteCSVFile(filepath.Join(out, "truth.csv")); err != nil {
		return err
	}
	if err := inj.Dirty.WriteCSVFile(filepath.Join(out, "dirty.csv")); err != nil {
		return err
	}
	if err := writeRules(filepath.Join(out, "rules.txt"), rs); err != nil {
		return err
	}
	if err := writeErrors(filepath.Join(out, "errors.csv"), inj); err != nil {
		return err
	}
	fmt.Printf("wrote %s dataset: %d tuples, %d rules, %d injected errors (rate %.1f%%) to %s\n",
		name, truth.Len(), len(rs), len(inj.Errors), inj.Rate()*100, out)
	return nil
}

func generate(name string, rows int, seed int64) (*dataset.Table, []*rules.Rule, error) {
	switch name {
	case "hai":
		cfg := datagen.HAIConfig{Seed: seed}
		if rows > 0 {
			cfg.Rows = rows
			cfg.Providers = rows / 12
		}
		return datagen.HAI(cfg)
	case "car":
		cfg := datagen.CARConfig{Seed: seed}
		if rows > 0 {
			cfg.Rows = rows
		}
		return datagen.CAR(cfg)
	case "tpch":
		cfg := datagen.TPCHConfig{Seed: seed}
		if rows > 0 {
			cfg.Rows = rows
			cfg.Customers = rows / 16
		}
		return datagen.TPCH(cfg)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (hai|car|tpch)", name)
	}
}

func writeRules(path string, rs []*rules.Rule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, r := range rs {
		ruleText, err := ruleLine(r)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := fmt.Fprintln(f, ruleText); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ruleLine renders a rule back into the parseable textual syntax.
func ruleLine(r *rules.Rule) (string, error) {
	switch r.Kind {
	case rules.FD, rules.CFD:
		lhs, rhs := "", ""
		for i, p := range r.Reason {
			if i > 0 {
				lhs += ", "
			}
			lhs += p.Attr
			if p.Const != "" {
				lhs += "=" + p.Const
			}
		}
		for i, p := range r.Result {
			if i > 0 {
				rhs += ", "
			}
			rhs += p.Attr
			if p.Const != "" {
				rhs += "=" + p.Const
			}
		}
		return fmt.Sprintf("%s: %s -> %s", r.Kind, lhs, rhs), nil
	case rules.DC:
		body := ""
		for i, p := range append(append([]rules.Pattern{}, r.Reason...), r.Result...) {
			if i > 0 {
				body += " and "
			}
			body += fmt.Sprintf("%s(t)%s%s(t')", p.Attr, p.Op, p.Attr)
		}
		return fmt.Sprintf("DC: not(%s)", body), nil
	default:
		return "", fmt.Errorf("unsupported rule kind %v", r.Kind)
	}
}

func writeErrors(path string, inj *errgen.Injection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"tuple_id", "attr", "clean", "dirty", "type"}); err != nil {
		f.Close()
		return err
	}
	for _, e := range inj.Errors {
		if err := w.Write([]string{strconv.Itoa(e.TupleID), e.Attr, e.Clean, e.Dirty, e.Type.String()}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
