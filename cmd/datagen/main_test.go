package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("car", 400, 0.05, 0.5, 7, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"truth.csv", "dirty.csv", "rules.txt", "errors.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	truth, err := dataset.ReadCSVFile(filepath.Join(dir, "truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := dataset.ReadCSVFile(filepath.Join(dir, "dirty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() != 400 || dirty.Len() != 400 {
		t.Errorf("row counts: %d / %d", truth.Len(), dirty.Len())
	}
	// The emitted rule file parses back.
	rf, err := os.Open(filepath.Join(dir, "rules.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rs, err := rules.ParseList(rf)
	if err != nil {
		t.Fatalf("emitted rules do not parse: %v", err)
	}
	if len(rs) != 3 {
		t.Errorf("parsed %d rules", len(rs))
	}
}

func TestRunAllDatasets(t *testing.T) {
	for _, name := range []string{"hai", "tpch"} {
		dir := t.TempDir()
		if err := run(name, 300, 0.05, 0.5, 1, dir); err != nil {
			t.Errorf("run(%s): %v", name, err)
		}
	}
	if err := run("nope", 100, 0.05, 0.5, 1, t.TempDir()); err == nil {
		t.Error("unknown dataset should fail")
	}
}

// TestRuleLineRoundtrip: every rule the generators emit survives a
// render→parse roundtrip with identical structure.
func TestRuleLineRoundtrip(t *testing.T) {
	rs := rules.MustParseStrings(
		"FD: ProviderID -> City, PhoneNumber",
		"CFD: Make=acura, Type -> Doors",
		"DC: not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))",
	)
	for _, r := range rs {
		line, err := ruleLine(r)
		if err != nil {
			t.Fatalf("ruleLine(%v): %v", r, err)
		}
		// Strip the "KIND:" prefix duplication: line is "KIND: body".
		parsed, err := rules.Parse(r.ID, line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if parsed.Kind != r.Kind || strings.Join(parsed.ReasonAttrs(), ",") != strings.Join(r.ReasonAttrs(), ",") ||
			strings.Join(parsed.ResultAttrs(), ",") != strings.Join(r.ResultAttrs(), ",") {
			t.Errorf("roundtrip mismatch: %v vs %v", parsed, r)
		}
	}
}
