// Quickstart: clean the paper's six-tuple hospital sample (Table 1) with
// its three constraints (Example 1) and print every pipeline artifact — the
// MLN index shape, the stage-I repairs, the fused result, and the final
// deduplicated table.
package main

import (
	"fmt"
	"log"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

func main() {
	// Table 1 of the paper.
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701") // t1
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")   // t2: typo in CT
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")   // t3: replacement in CT, wrong PN
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")     // t4: wrong ST
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")     // t5
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")     // t6

	// Example 1's constraints: an FD, a DC, and a CFD.
	rs, err := rules.ParseStrings(
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== dirty input (Table 1) ==")
	fmt.Print(tb)
	fmt.Println("\n== rules (Example 1) ==")
	for _, r := range rs {
		fmt.Println(" ", r)
	}

	trace := &core.Trace{}
	res, err := core.Clean(tb, rs, core.Options{Tau: 1, Trace: trace})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== stage I: abnormal group merges (AGP) ==")
	for _, m := range trace.AGP {
		fmt.Printf("  %s: group %v merged into %v\n", m.RuleID,
			dataset.SplitKey(m.SourceKey), dataset.SplitKey(m.TargetKey))
	}
	fmt.Println("\n== stage I: reliability-score repairs (RSC) ==")
	for _, rep := range trace.RSC {
		fmt.Printf("  %s: %v -> %v (tuples %v)\n", rep.RuleID, rep.Old, rep.New, rep.Tuples)
	}
	fmt.Println("\n== stage II: fusion outcomes (FSCR) ==")
	for _, f := range trace.FSCR {
		if len(f.Changed) == 0 {
			continue
		}
		fmt.Printf("  t%d:", f.TupleID+1)
		for _, c := range f.Changed {
			fmt.Printf(" %s %q->%q", c.Attr, c.Old, c.New)
		}
		fmt.Println()
	}

	fmt.Println("\n== repaired (before deduplication) ==")
	fmt.Print(res.Repaired)
	fmt.Printf("\n== final clean dataset (%d duplicates removed) ==\n", res.Stats.DuplicatesRemoved)
	fmt.Print(res.Clean)
}
