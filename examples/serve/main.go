// Serve: the session API end to end — start the mlnserve handler on a
// loopback port, then act as a client: create a session, stream a dirty
// table in batches, trigger the clean, poll, and fetch the repairs. The
// first round then mutates the cleaned session tuple by tuple — PUT a
// replacement row, DELETE another — and each mutation mints a new result
// version, re-cleaned incrementally (the delta summary shows how many rule
// blocks and tuples were reused); old versions stay addressable via
// ?version=N and the trail pages with limit/cursor. A second session over
// the same rules demonstrates the model cache: the learned Eq. 6 weights are
// preset and weight learning is skipped. Each round also pulls the repair
// audit trail (cell, old value, new value, attributed rule and weight), and
// the final session is rolled back — the pre-repair table restored from the
// server's log — before it is closed.
//
// Against a real daemon the same requests work verbatim — set BASE:
//
//	go run ./cmd/mlnserve -addr :0     # prints the resolved address
//	BASE=http://localhost:7700 go run ./examples/serve
//
// Without BASE the walkthrough starts its own handler on an OS-chosen
// loopback port and prints the address, so reruns (and the CI smoke) never
// fail on an already-taken port.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/server"
)

func main() {
	base := os.Getenv("BASE")
	if base == "" {
		// A real deployment runs `mlnserve`; here the handler serves
		// loopback on port 0.
		srv, err := server.New(server.ManagerConfig{DefaultWorkers: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
		fmt.Printf("mlnserve handler listening at %s\n\n", base)
	} else {
		fmt.Printf("using external mlnserve at %s\n\n", base)
	}

	// The hospital workload: generate, corrupt, and describe the rules in
	// the wire syntax.
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 60, Measures: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	rulesText := ""
	for i, r := range rs {
		if i > 0 {
			rulesText += "\n"
		}
		rulesText += r.Canonical()
	}
	dirty := inj.Dirty
	fmt.Printf("hospital table: %d tuples, %d attrs, %d rules, %d injected errors\n\n",
		dirty.Len(), dirty.Schema.Len(), len(rs), len(inj.Errors))

	for round := 1; round <= 2; round++ {
		// 1. Create a session.
		var info server.SessionInfo
		post(base+"/v1/sessions", server.CreateRequest{
			Rules: rulesText,
			Attrs: dirty.Schema.Attrs(),
			Tau:   2,
		}, &info)
		fmt.Printf("round %d: session %s (weights cached: %v)\n", round, info.ID, info.WeightsCached)

		// 2. Stream the table in three batches.
		per := (dirty.Len() + 2) / 3
		for lo := 0; lo < dirty.Len(); lo += per {
			hi := min(lo+per, dirty.Len())
			rows := make([][]string, 0, hi-lo)
			for _, t := range dirty.Tuples[lo:hi] {
				rows = append(rows, t.Values)
			}
			var ack server.TuplesResponse
			post(base+"/v1/sessions/"+info.ID+"/tuples", server.TuplesRequest{Rows: rows}, &ack)
			fmt.Printf("  streamed %d tuples (%d total)\n", ack.Received, ack.Total)
		}

		// 3. Trigger the clean and poll until done. While the run is (or was
		// just) in flight, scrape /metrics once — the same Prometheus
		// exposition a real deployment would have its collector pull.
		post(base+"/v1/sessions/"+info.ID+"/clean", nil, nil)
		scraped := false
		for {
			if !scraped {
				scrapeMetrics(base)
				scraped = true
			}
			var st server.SessionInfo
			get(base+"/v1/sessions/"+info.ID, &st)
			if st.State == server.StateDone {
				break
			}
			if st.State == server.StateFailed {
				log.Fatalf("session failed: %s", st.Error)
			}
			time.Sleep(20 * time.Millisecond)
		}

		// 4. Fetch the repairs.
		var res server.ResultResponse
		get(base+"/v1/sessions/"+info.ID+"/result", &res)
		fmt.Printf("  cleaned: %d rows, %d fused cells, %d duplicates removed, learned %d iterations, %d ms\n",
			len(res.Rows), res.Stats.FSCRCellChanges, res.Stats.DuplicatesRemoved,
			res.Stats.LearnIterations, res.WallMS)

		// 5. Audit: the ordered repair trail — every applied cell change with
		// the rule (and learned weight) it is attributed to.
		var audit server.RepairsResponse
		get(base+"/v1/sessions/"+info.ID+"/repairs", &audit)
		fmt.Printf("  audit trail: %d repairs\n", len(audit.Repairs))
		for i, rep := range audit.Repairs {
			if i == 3 {
				fmt.Printf("    ... and %d more\n", len(audit.Repairs)-3)
				break
			}
			fmt.Printf("    tuple %d %s: %q -> %q (rule %s, weight %.3f)\n",
				rep.Tuple, rep.Attr, rep.Old, rep.New, rep.Rule, rep.Weight)
		}

		// 6. Mutate (first round): replace one tuple and delete another.
		// Every acknowledged mutation re-cleans incrementally and mints the
		// next result version; version 1 keeps serving the batch result.
		if round == 1 {
			freshest := append([]string(nil), dirty.Tuples[0].Values...)
			var ack server.MutateResponse
			put(base+"/v1/sessions/"+info.ID+"/tuples/3", server.MutateRequest{Values: freshest}, &ack)
			fmt.Printf("  PUT tuple 3 -> version %d (reused %d/%d rule blocks, %d/%d fused tuples)\n",
				ack.Version, ack.Delta.ReusedBlocks, ack.Delta.ReusedBlocks+ack.Delta.DirtyBlocks,
				ack.Delta.ReusedTuples, ack.Delta.ReusedTuples+ack.Delta.RefusedTuples)
			del(base + "/v1/sessions/" + info.ID + "/tuples/7")
			get(base+"/v1/sessions/"+info.ID, &info)
			fmt.Printf("  DELETE tuple 7 -> session now serves %d versions\n", info.Versions)

			// Versions are immutable: the delta-cleaned latest and the
			// original batch result are both one GET away.
			var latest, v1 server.ResultResponse
			get(base+"/v1/sessions/"+info.ID+"/result", &latest)
			get(base+"/v1/sessions/"+info.ID+"/result?version=1", &v1)
			fmt.Printf("  result?version=%d: %d rows; result?version=1: %d rows (batch run, unchanged)\n",
				latest.Version, len(latest.Rows), len(v1.Rows))

			// The versioned audit trail pages with limit/cursor.
			var page server.RepairsResponse
			get(base+"/v1/sessions/"+info.ID+"/repairs?limit=5", &page)
			fmt.Printf("  repairs?limit=5: page of %d/%d repairs for version %d, next cursor %d\n",
				len(page.Repairs), page.Total, page.Version, page.NextCursor)
		}

		// 7. Rollback (final round): restore the pre-repair values from the
		// server's log and verify they match what was streamed.
		if round == 2 {
			var rb server.RollbackResponse
			post(base+"/v1/sessions/"+info.ID+"/rollback", nil, &rb)
			restored := 0
			for i, row := range rb.Rows {
				for j, v := range row {
					if dirty.Tuples[i].Values[j] == v {
						restored++
					}
				}
			}
			fmt.Printf("  rollback: reverted %d repairs, %d/%d cells match the original stream\n",
				rb.Reverted, restored, len(rb.Rows)*dirty.Schema.Len())
		}

		del(base + "/v1/sessions/" + info.ID)
	}

	var stats server.StatsResponse
	get(base+"/v1/stats", &stats)
	fmt.Printf("\nmodel cache: %d models, rule hits/misses %d/%d, weight hits/misses %d/%d\n",
		stats.Cache.Models, stats.Cache.RuleHits, stats.Cache.RuleMisses,
		stats.Cache.WeightHits, stats.Cache.WeightMisses)
	fmt.Println("→ round 2 skipped parsing and weight learning entirely.")
}

// scrapeMetrics pulls /metrics and prints a few series that tell the
// mid-clean story: the cleaning gauge, the executor's run counter, and how
// much stage work the process has accumulated.
func scrapeMetrics(base string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  /metrics mid-clean:")
	for _, line := range strings.Split(string(body), "\n") {
		for _, prefix := range []string{
			"mlnserve_sessions_live ",
			"mlnserve_sessions_cleaning ",
			"mlnserve_http_in_flight ",
			"mlnclean_executor_runs_total ",
			`mlnclean_core_stage_seconds_count{stage="agp"}`,
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("    %s\n", line)
			}
		}
	}
}

func post(url string, body, out any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func put(url string, body, out any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, &buf)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		// Every error is the uniform envelope: {"error":{"code","message"}}.
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s %s: %s (%s: %s)", resp.Request.Method, resp.Request.URL.Path, resp.Status, e.Error.Code, e.Error.Message)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
