// Vehicles: clean the sparse CAR dataset and demonstrate the error-type
// study of Fig. 7 — MLNClean's accuracy is stable across the typo vs
// replacement mix, while the HoloClean-style baseline is sensitive to it on
// sparse data.
package main

import (
	"fmt"
	"log"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
	"mlnclean/internal/holoclean"
)

func main() {
	truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: 4000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated CAR: %d tuples over %d distinct models (sparse long tail)\n",
		truth.Len(), len(truth.Domain("Model")))
	for _, r := range rs {
		fmt.Println("  ", r)
	}

	fmt.Println("\nRret   MLNClean F1   baseline F1   (5% total errors)")
	for _, rret := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: rret, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 1})
		if err != nil {
			log.Fatal(err)
		}
		q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)

		hres, err := holoclean.Repair(inj.Dirty, rs, inj.NoisyCells(), holoclean.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		hq := eval.RepairQuality(truth, inj.Dirty, hres.Repaired)
		fmt.Printf("%.0f%%    %.3f         %.3f\n", rret*100, q.F1, hq.F1)
	}
	fmt.Println("\n→ MLNClean stays stable across the error mix (Fig. 7a's takeaway);")
	fmt.Println("  the baseline suffers most when every error is a typo.")
}
