// Hospital: the paper's headline workload end to end — generate a synthetic
// HAI dataset with the seven Table 4 constraints, corrupt it with 5% mixed
// errors, clean it with MLNClean AND the HoloClean-style baseline, and
// compare repair quality and runtime (the Fig. 6 comparison at one point).
package main

import (
	"fmt"
	"log"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
	"mlnclean/internal/holoclean"
)

func main() {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 250, Measures: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated HAI: %d tuples, %d attributes, %d rules\n",
		truth.Len(), truth.Schema.Len(), len(rs))
	for _, r := range rs {
		fmt.Println("  ", r)
	}

	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	byType := inj.CountByType()
	fmt.Printf("\ninjected %d errors (%.1f%% of rule-related cells): %d typos, %d replacements\n",
		len(inj.Errors), inj.Rate()*100, byType[errgen.Typo], byType[errgen.Replacement])

	// MLNClean.
	start := time.Now()
	res, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 3})
	if err != nil {
		log.Fatal(err)
	}
	mlnTime := time.Since(start)
	q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
	fmt.Printf("\nMLNClean:  precision=%.3f recall=%.3f F1=%.3f in %v\n",
		q.Precision, q.Recall, q.F1, mlnTime.Round(time.Millisecond))
	fmt.Printf("  stats: %d blocks, %d groups, %d abnormal merged, %d RSC repairs, %d fused cells, %d duplicates removed\n",
		res.Stats.Blocks, res.Stats.Groups, res.Stats.AbnormalGroups,
		res.Stats.RSCRepairs, res.Stats.FSCRCellChanges, res.Stats.DuplicatesRemoved)

	// HoloClean baseline with a perfect detection oracle (§7.2).
	start = time.Now()
	hres, err := holoclean.Repair(inj.Dirty, rs, inj.NoisyCells(), holoclean.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	hcTime := time.Since(start)
	hq := eval.RepairQuality(truth, inj.Dirty, hres.Repaired)
	fmt.Printf("\nHoloClean: precision=%.3f recall=%.3f F1=%.3f in %v (repaired %d cells, scored %d candidates)\n",
		hq.Precision, hq.Recall, hq.F1, hcTime.Round(time.Millisecond),
		hres.CellsRepaired, hres.CandidatesScored)

	if q.F1 > hq.F1 {
		fmt.Println("\n→ MLNClean wins on accuracy, as in Fig. 6(b).")
	}
}
