// Distributed: run MLNClean's Spark-style variant (§6) over a TPC-H
// projection on the concurrent executor — Algorithm 3 partitioning,
// per-worker cleaning on a goroutine pool with the Eq. 6 weight merge
// exchanged over the transport, and a global gather — sweeping the worker
// count as in Table 6, then streaming the same table through the batched
// Submit path.
package main

import (
	"fmt"
	"log"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distributed"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
)

func main() {
	truth, rs, err := datagen.TPCH(datagen.TPCHConfig{Customers: 400, Rows: 6000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated TPC-H projection: %d tuples, rule: %s\n", truth.Len(), rs[0])

	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d errors (5%%)\n\n", len(inj.Errors))

	fmt.Println("workers   wall time   cluster time   F1      partition sizes")
	var base time.Duration
	for _, workers := range []int{2, 4, 8} {
		res, err := distributed.Clean(inj.Dirty, rs, distributed.Options{
			Workers: workers,
			Seed:    1,
			Core:    core.Options{Tau: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
		ct := res.ClusterTime()
		if workers == 2 {
			base = ct
		}
		fmt.Printf("%-9d %-11v %-14v %.3f   %v\n",
			workers, res.WallTime.Round(time.Millisecond), ct.Round(time.Millisecond), q.F1, res.PartSizes)
		if workers != 2 && base > 0 {
			fmt.Printf("          (%.1fx modeled speedup vs 2 workers)\n", float64(base)/float64(ct))
		}
	}

	// Streaming ingest: the same table fed through Executor.Submit in
	// batches — partitions are assigned online and shipped over the
	// transport as they arrive, never materialized up front.
	ex, err := distributed.NewExecutor(inj.Dirty.Schema, rs, distributed.Options{
		Workers: 4,
		Seed:    1,
		Core:    core.Options{Tau: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	const batchRows = 1000
	for lo := 0; lo < inj.Dirty.Len(); lo += batchRows {
		hi := lo + batchRows
		if hi > inj.Dirty.Len() {
			hi = inj.Dirty.Len()
		}
		batch := dataset.NewTable(inj.Dirty.Schema)
		for _, t := range inj.Dirty.Tuples[lo:hi] {
			batch.MustAppend(t.Values...)
		}
		if err := ex.Submit(batch); err != nil {
			log.Fatal(err)
		}
	}
	res, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
	fmt.Printf("\nstreaming Submit (4 workers, %d-row batches): wall=%v F1=%.3f parts=%v\n",
		batchRows, res.WallTime.Round(time.Millisecond), q.F1, res.PartSizes)

	fmt.Println("\n→ wall time is the measured concurrent run on this host; cluster")
	fmt.Println("  time models partition + max(worker) + gather on an ideal cluster,")
	fmt.Println("  giving the near-linear Table 6 speedup with stable accuracy.")
}
