// Distributed: run MLNClean's Spark-style variant (§6) over a TPC-H
// projection on a worker pool — Algorithm 3 partitioning, per-worker
// cleaning with the Eq. 6 weight merge, and a global gather — sweeping the
// worker count as in Table 6.
package main

import (
	"fmt"
	"log"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/distributed"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
)

func main() {
	truth, rs, err := datagen.TPCH(datagen.TPCHConfig{Customers: 400, Rows: 6000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated TPC-H projection: %d tuples, rule: %s\n", truth.Len(), rs[0])

	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d errors (5%%)\n\n", len(inj.Errors))

	fmt.Println("workers   cluster time   F1      partition sizes")
	var base time.Duration
	for _, workers := range []int{2, 4, 8} {
		res, err := distributed.Clean(inj.Dirty, rs, distributed.Options{
			Workers: workers,
			Seed:    1,
			Core:    core.Options{Tau: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
		ct := res.ClusterTime()
		if workers == 2 {
			base = ct
		}
		fmt.Printf("%-9d %-14v %.3f   %v\n", workers, ct.Round(time.Millisecond), q.F1, res.PartSizes)
		if workers != 2 && base > 0 {
			fmt.Printf("          (%.1fx speedup vs 2 workers)\n", float64(base)/float64(ct))
		}
	}
	fmt.Println("\n→ cluster time = partition + max(worker) + gather; near-linear")
	fmt.Println("  speedup with stable accuracy, the Table 6 behaviour.")
}
