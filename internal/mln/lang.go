// Package mln is a small, self-contained Markov logic network engine: a
// first-order clause language, grounding, weight learning by damped diagonal
// Newton (the optimizer Tuffy uses, §5.1.2 of the paper), and approximate
// inference (Gibbs sampling for marginals, MaxWalkSAT for MAP).
//
// MLNClean uses the engine in a restricted but faithful way: every integrity
// constraint becomes a clause whose predicates are attribute names applied
// to value constants (Table 3), each distinct piece of data γ is a ground
// clause, and per-block weight learning assigns each γ the weight that the
// reliability score (Def. 2) consumes. The engine is nevertheless general:
// clauses may have any arity, variables ground over declared domains, and
// the samplers operate over arbitrary ground programs — the HoloClean
// baseline reuses them.
package mln

import (
	"fmt"
	"sort"
	"strings"
)

// Predicate is a named relation with a fixed arity.
type Predicate struct {
	Name  string
	Arity int
}

// Term is either a variable (IsVar) or a constant symbol.
type Term struct {
	Symbol string
	IsVar  bool
}

// Var creates a variable term.
func Var(name string) Term { return Term{Symbol: name, IsVar: true} }

// Const creates a constant term.
func Const(value string) Term { return Term{Symbol: value} }

// String renders the term; variables are lowercase by convention already,
// constants are quoted.
func (t Term) String() string {
	if t.IsVar {
		return t.Symbol
	}
	return fmt.Sprintf("%q", t.Symbol)
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred *Predicate
	Args []Term
}

// NewAtom builds an atom, validating arity.
func NewAtom(p *Predicate, args ...Term) (Atom, error) {
	if len(args) != p.Arity {
		return Atom{}, fmt.Errorf("mln: predicate %s/%d applied to %d args", p.Name, p.Arity, len(args))
	}
	return Atom{Pred: p, Args: args}, nil
}

// MustAtom is NewAtom that panics on arity mismatch.
func MustAtom(p *Predicate, args ...Term) Atom {
	a, err := NewAtom(p, args...)
	if err != nil {
		panic(err)
	}
	return a
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar {
			return false
		}
	}
	return true
}

// Key returns a canonical string for a ground atom, usable as a map key.
func (a Atom) Key() string {
	parts := make([]string, 0, len(a.Args)+1)
	parts = append(parts, a.Pred.Name)
	for _, t := range a.Args {
		parts = append(parts, t.Symbol)
	}
	return strings.Join(parts, "\x1f")
}

// String renders the atom.
func (a Atom) String() string {
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred.Name, strings.Join(args, ", "))
}

// Literal is an atom or its negation.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos and Neg construct literals.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg constructs a negated literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// String renders the literal.
func (l Literal) String() string {
	if l.Negated {
		return "!" + l.Atom.String()
	}
	return l.Atom.String()
}

// Clause is a weighted disjunction of literals (an MLN rule). Hard clauses
// carry effectively infinite weight.
type Clause struct {
	Literals []Literal
	Weight   float64
	Hard     bool
	// Name is an optional label (e.g. the source rule id).
	Name string
}

// Vars returns the sorted distinct variable names in the clause.
func (c *Clause) Vars() []string {
	set := make(map[string]struct{})
	for _, l := range c.Literals {
		for _, t := range l.Atom.Args {
			if t.IsVar {
				set[t.Symbol] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsGround reports whether the clause contains no variables.
func (c *Clause) IsGround() bool {
	for _, l := range c.Literals {
		if !l.Atom.IsGround() {
			return false
		}
	}
	return true
}

// String renders the clause as "w: l1 v l2 v ...".
func (c *Clause) String() string {
	parts := make([]string, len(c.Literals))
	for i, l := range c.Literals {
		parts[i] = l.String()
	}
	body := strings.Join(parts, " v ")
	if c.Hard {
		return body + "."
	}
	return fmt.Sprintf("%.4g: %s", c.Weight, body)
}

// Program is a set of predicates and clauses with per-variable domains. It
// owns a symbol/atom Store so every grounding it produces shares one dense
// ID space.
type Program struct {
	preds   map[string]*Predicate
	Clauses []*Clause
	domains map[string][]string
	store   *Store
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{
		preds:   make(map[string]*Predicate),
		domains: make(map[string][]string),
		store:   NewStore(),
	}
}

// Store returns the program's dense-ID ground store.
func (p *Program) Store() *Store { return p.store }

// Predicate interns (declares or fetches) a predicate by name and arity.
func (p *Program) Predicate(name string, arity int) (*Predicate, error) {
	if pr, ok := p.preds[name]; ok {
		if pr.Arity != arity {
			return nil, fmt.Errorf("mln: predicate %s redeclared with arity %d (was %d)", name, arity, pr.Arity)
		}
		return pr, nil
	}
	pr := &Predicate{Name: name, Arity: arity}
	p.preds[name] = pr
	p.store.Sym(name) // intern at declaration so grounding never hashes it cold
	return pr, nil
}

// MustPredicate is Predicate that panics on arity conflicts.
func (p *Program) MustPredicate(name string, arity int) *Predicate {
	pr, err := p.Predicate(name, arity)
	if err != nil {
		panic(err)
	}
	return pr
}

// AddClause appends a clause to the program.
func (p *Program) AddClause(c *Clause) { p.Clauses = append(p.Clauses, c) }

// SetDomain declares the constants a variable ranges over during cartesian
// grounding.
func (p *Program) SetDomain(variable string, constants []string) {
	vals := make([]string, len(constants))
	copy(vals, constants)
	p.domains[variable] = vals
}

// Domain returns the declared domain of a variable (nil if undeclared).
func (p *Program) Domain(variable string) []string { return p.domains[variable] }

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, c := range p.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
