package mln

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// naiveSatisfiedWeight recomputes Σ w·Count over satisfied clauses from
// scratch, the way the pre-incremental engine did.
func naiveSatisfiedWeight(clauses []*GroundClause, w *World) float64 {
	var sum float64
	for _, g := range clauses {
		sat := false
		for _, l := range g.Literals {
			id := w.AtomID(l.Atom)
			if id < 0 {
				continue
			}
			if w.Truth(id) != l.Negated {
				sat = true
				break
			}
		}
		if sat {
			sum += g.Weight * float64(g.Count)
		}
	}
	return sum
}

// benchWorldClauses mirrors benchWorld but returns the clauses too.
func benchWorldClauses(nAtoms, nClauses int, seed int64) ([]*GroundClause, *World) {
	rng := rand.New(rand.NewSource(seed))
	prog := NewProgram()
	v := prog.MustPredicate("V", 1)
	atoms := make([]Atom, nAtoms)
	for i := range atoms {
		atoms[i] = MustAtom(v, Const(fmt.Sprintf("a%d", i)))
	}
	gs := make([]*GroundClause, nClauses)
	for i := range gs {
		lits := make([]Literal, 1+rng.Intn(3))
		for j := range lits {
			lits[j] = Literal{Atom: atoms[rng.Intn(nAtoms)], Negated: rng.Intn(2) == 0}
		}
		gs[i] = &GroundClause{Literals: lits, Weight: rng.Float64()*2 - 0.5, Count: 1 + rng.Intn(3)}
	}
	return gs, NewWorld(gs)
}

// TestIncrementalSatisfiedWeightMatchesRecount drives a randomized flip
// sequence through Set and checks the maintained satisfied weight against a
// from-scratch recount at every step.
func TestIncrementalSatisfiedWeightMatchesRecount(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		gs, w := benchWorldClauses(40, 150, seed)
		rng := rand.New(rand.NewSource(seed + 100))
		for step := 0; step < 400; step++ {
			w.Set(rng.Intn(w.NumAtoms()), rng.Intn(2) == 0)
			got, want := w.SatisfiedWeight(), naiveSatisfiedWeight(gs, w)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("seed %d step %d: incremental weight %v, recount %v", seed, step, got, want)
			}
		}
	}
}

// TestFlipGainMatchesNaive checks the O(touched clauses) flip gain against
// the difference of two full recounts.
func TestFlipGainMatchesNaive(t *testing.T) {
	gs, w := benchWorldClauses(30, 120, 9)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 300; step++ {
		id := rng.Intn(w.NumAtoms())
		before := naiveSatisfiedWeight(gs, w)
		gain := w.flipGain(id)
		w.Set(id, !w.Truth(id))
		after := naiveSatisfiedWeight(gs, w)
		if math.Abs(gain-(after-before)) > 1e-9 {
			t.Fatalf("step %d: flipGain %v, naive delta %v", step, gain, after-before)
		}
	}
}

// TestMaxWalkSATLeavesCountersConsistent verifies the world's incremental
// state is exact after a full MAP search (restarts, bulk rewrites and all).
func TestMaxWalkSATLeavesCountersConsistent(t *testing.T) {
	gs, w := benchWorldClauses(50, 200, 11)
	rng := rand.New(rand.NewSource(5))
	best := w.MaxWalkSAT(nil, rng, MaxWalkSATOptions{MaxFlips: 2000, Tries: 2})
	if got := naiveSatisfiedWeight(gs, w); math.Abs(got-w.SatisfiedWeight()) > 1e-9 {
		t.Errorf("post-MAP recount %v, maintained %v", got, w.SatisfiedWeight())
	}
	if w.SatisfiedWeight() > best+1e-9 {
		t.Errorf("final state weight %v exceeds reported best %v", w.SatisfiedWeight(), best)
	}
}

// groundingFingerprint renders (clause, Count) pairs in output order.
func groundingFingerprint(gs []*GroundClause) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = fmt.Sprintf("%s×%d", g.String(), g.Count)
	}
	return out
}

// withGOMAXPROCS runs fn under a forced GOMAXPROCS so the sharded grounding
// paths are exercised even on single-core CI machines.
func withGOMAXPROCS(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestParallelGroundingMatchesSerial checks that sharded tuple-driven
// grounding produces the same (clause, Count) sequence as serial grounding.
func TestParallelGroundingMatchesSerial(t *testing.T) {
	prog := NewProgram()
	c := benchClause(prog)
	subs := benchSubs(30000, 64, 99)

	var serial, par []*GroundClause
	var serialErr, parErr error
	withGOMAXPROCS(1, func() { serial, serialErr = GroundFromBindings(c, subs) })
	withGOMAXPROCS(4, func() { par, parErr = GroundFromBindings(c, subs) })
	if serialErr != nil || parErr != nil {
		t.Fatalf("grounding: serial %v, parallel %v", serialErr, parErr)
	}
	sf, pf := groundingFingerprint(serial), groundingFingerprint(par)
	if len(sf) != len(pf) {
		t.Fatalf("serial %d clauses, parallel %d", len(sf), len(pf))
	}
	for i := range sf {
		if sf[i] != pf[i] {
			t.Fatalf("clause %d differs:\nserial   %s\nparallel %s", i, sf[i], pf[i])
		}
	}
	total := 0
	for _, g := range par {
		total += g.Count
	}
	if total != len(subs) {
		t.Errorf("counts sum to %d, want %d", total, len(subs))
	}
}

// TestParallelCartesianMatchesSerial does the same for cartesian grounding,
// including duplicate domain constants (the only source of cartesian dedup).
func TestParallelCartesianMatchesSerial(t *testing.T) {
	mk := func() (*Program, *Clause) {
		prog := NewProgram()
		a := prog.MustPredicate("A", 1)
		b := prog.MustPredicate("B", 1)
		c := &Clause{Literals: []Literal{Neg(MustAtom(a, Var("x"))), Pos(MustAtom(b, Var("y")))}, Weight: 1}
		dx := make([]string, 220)
		for i := range dx {
			dx[i] = fmt.Sprintf("x%d", i%200) // 20 duplicates
		}
		dy := make([]string, 100)
		for i := range dy {
			dy[i] = fmt.Sprintf("y%d", i)
		}
		prog.SetDomain("x", dx)
		prog.SetDomain("y", dy)
		return prog, c
	}

	var serial, par []*GroundClause
	var serialErr, parErr error
	withGOMAXPROCS(1, func() {
		prog, c := mk()
		serial, serialErr = prog.GroundCartesian(c)
	})
	withGOMAXPROCS(4, func() {
		prog, c := mk()
		par, parErr = prog.GroundCartesian(c)
	})
	if serialErr != nil || parErr != nil {
		t.Fatalf("grounding: serial %v, parallel %v", serialErr, parErr)
	}
	sf, pf := groundingFingerprint(serial), groundingFingerprint(par)
	if len(sf) != len(pf) {
		t.Fatalf("serial %d clauses, parallel %d", len(sf), len(pf))
	}
	for i := range sf {
		if sf[i] != pf[i] {
			t.Fatalf("clause %d differs:\nserial   %s\nparallel %s", i, sf[i], pf[i])
		}
	}
	if len(sf) != 200*100 {
		t.Errorf("distinct clauses = %d, want 20000", len(sf))
	}
	total := 0
	for _, g := range par {
		total += g.Count
	}
	if total != 220*100 {
		t.Errorf("counts sum to %d, want 22000", total)
	}
}

// TestDensePathMatchesLegacyGrounding cross-checks the dense-ID engine
// against the legacy string-keyed dedup on the same substitutions.
func TestDensePathMatchesLegacyGrounding(t *testing.T) {
	prog := NewProgram()
	c := benchClause(prog)
	subs := benchSubs(5000, 40, 7)
	dense, err := GroundFromBindings(c, subs)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := groundFromBindingsByKey(nil, c, subs)
	if err != nil {
		t.Fatal(err)
	}
	df, lf := groundingFingerprint(dense), groundingFingerprint(legacy)
	if len(df) != len(lf) {
		t.Fatalf("dense %d clauses, legacy %d", len(df), len(lf))
	}
	for i := range df {
		if df[i] != lf[i] {
			t.Fatalf("clause %d differs:\ndense  %s\nlegacy %s", i, df[i], lf[i])
		}
	}
}

// TestWorldFastAndFallbackPathsAgree runs identical inference over a world
// indexed via dense literal codes (store-ground clauses) and one indexed via
// the hand-built fallback; marginals at a fixed seed must coincide.
func TestWorldFastAndFallbackPathsAgree(t *testing.T) {
	prog := NewProgram()
	c := benchClause(prog)
	subs := benchSubs(2000, 24, 13)
	dense, err := GroundFromBindings(c, subs)
	if err != nil {
		t.Fatal(err)
	}
	// nil store keeps the legacy clauses un-interned so NewWorld exercises
	// its hand-built fallback path.
	legacy, err := groundFromBindingsByKey(nil, c, subs)
	if err != nil {
		t.Fatal(err)
	}
	wFast := NewWorld(dense)
	wSlow := NewWorld(legacy)
	if wFast.NumAtoms() != wSlow.NumAtoms() {
		t.Fatalf("atom counts differ: %d vs %d", wFast.NumAtoms(), wSlow.NumAtoms())
	}
	query := make([]int, wFast.NumAtoms())
	for i := range query {
		query[i] = i
	}
	pFast := wFast.Gibbs(query, nil, rand.New(rand.NewSource(21)), GibbsOptions{Burnin: 50, Samples: 200})
	pSlow := wSlow.Gibbs(query, nil, rand.New(rand.NewSource(21)), GibbsOptions{Burnin: 50, Samples: 200})
	for i := range pFast {
		if math.Abs(pFast[i]-pSlow[i]) > 1e-12 {
			t.Fatalf("marginal %d differs: fast %v, fallback %v", i, pFast[i], pSlow[i])
		}
	}

	mFast := wFast.MaxWalkSAT(nil, rand.New(rand.NewSource(33)), MaxWalkSATOptions{MaxFlips: 3000, Tries: 2})
	mSlow := wSlow.MaxWalkSAT(nil, rand.New(rand.NewSource(33)), MaxWalkSATOptions{MaxFlips: 3000, Tries: 2})
	if math.Abs(mFast-mSlow) > 1e-9 {
		t.Errorf("MAP weights differ: fast %v, fallback %v", mFast, mSlow)
	}
}

// TestWorldMixedStores exercises the fallback when clauses come from
// different stores (e.g. independently ground rule sets concatenated).
func TestWorldMixedStores(t *testing.T) {
	progA := NewProgram()
	a := progA.MustPredicate("A", 1)
	ca := &Clause{Literals: []Literal{Pos(MustAtom(a, Var("x")))}, Weight: 2}
	gsA, err := GroundFromBindings(ca, []Substitution{{"x": "1"}, {"x": "2"}})
	if err != nil {
		t.Fatal(err)
	}
	progB := NewProgram()
	b := progB.MustPredicate("A", 1)
	cb := &Clause{Literals: []Literal{Neg(MustAtom(b, Var("x")))}, Weight: 1}
	gsB, err := GroundFromBindings(cb, []Substitution{{"x": "2"}, {"x": "3"}})
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(append([]*GroundClause{}, gsA...), gsB...)
	w := NewWorld(mixed)
	if w.NumAtoms() != 3 {
		t.Fatalf("atoms = %d, want 3 (A(1), A(2), A(3) merged across stores)", w.NumAtoms())
	}
	if got, want := w.SatisfiedWeight(), naiveSatisfiedWeight(mixed, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed-store weight %v, recount %v", got, want)
	}
}

// TestManyVarFallback covers the legacy string-keyed paths used when a
// clause has more variables than the fixed-width binding key.
func TestManyVarFallback(t *testing.T) {
	prog := NewProgram()
	p := prog.MustPredicate("P", 9)
	args := make([]Term, 9)
	for i := range args {
		args[i] = Var(fmt.Sprintf("v%d", i))
	}
	c := &Clause{Literals: []Literal{Pos(MustAtom(p, args...))}, Weight: 1}

	sub := Substitution{}
	for i := 0; i < 9; i++ {
		sub[fmt.Sprintf("v%d", i)] = fmt.Sprintf("c%d", i)
	}
	gs, err := GroundFromBindings(c, []Substitution{sub, sub})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].Count != 2 {
		t.Fatalf("fallback grounding: %d clauses, count %d", len(gs), gs[0].Count)
	}

	for i := 0; i < 9; i++ {
		prog.SetDomain(fmt.Sprintf("v%d", i), []string{"a", "b"})
	}
	cart, err := prog.GroundCartesian(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cart) != 1<<9 {
		t.Fatalf("cartesian fallback = %d clauses, want 512", len(cart))
	}
}
