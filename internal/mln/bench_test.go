package mln

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmark fixtures model the shapes MLNClean produces at scale: tuple-driven
// grounding of low-arity clauses with heavy duplication (BenchmarkGrounding),
// and sampling over ground programs whose clauses are short but numerous
// (BenchmarkMaxWalkSATFlips, BenchmarkGibbsSweeps).

// benchSubs generates nSubs substitutions for a 3-variable clause with a
// realistic duplicate rate: ~nCities distinct x values, a handful of y/z
// variants per x.
func benchSubs(nSubs, nCities int, seed int64) []Substitution {
	rng := rand.New(rand.NewSource(seed))
	subs := make([]Substitution, nSubs)
	for i := range subs {
		c := rng.Intn(nCities)
		subs[i] = Substitution{
			"x": fmt.Sprintf("city-%d", c),
			"y": fmt.Sprintf("state-%d", c%(nCities/8+1)),
			"z": fmt.Sprintf("zip-%d-%d", c, rng.Intn(4)),
		}
	}
	return subs
}

func benchClause(prog *Program) *Clause {
	ct := prog.MustPredicate("CT", 1)
	st := prog.MustPredicate("ST", 1)
	zp := prog.MustPredicate("ZP", 1)
	return &Clause{
		Name:     "r1",
		Weight:   1,
		Literals: []Literal{Neg(MustAtom(ct, Var("x"))), Neg(MustAtom(zp, Var("z"))), Pos(MustAtom(st, Var("y")))},
	}
}

// BenchmarkGrounding measures tuple-driven grounding throughput
// (substitutions deduplicated per second) at several input sizes.
func BenchmarkGrounding(b *testing.B) {
	for _, n := range []int{1000, 20000, 200000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			prog := NewProgram()
			c := benchClause(prog)
			subs := benchSubs(n, 256, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gs, err := GroundFromBindings(c, subs)
				if err != nil {
					b.Fatal(err)
				}
				_ = gs
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "subs/s")
		})
	}
}

// benchWorld builds a random ground program: nAtoms unary atoms, nClauses
// 3-literal clauses with random polarities and weights. Deterministic in seed.
func benchWorld(nAtoms, nClauses int, seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	prog := NewProgram()
	v := prog.MustPredicate("V", 1)
	atoms := make([]Atom, nAtoms)
	for i := range atoms {
		atoms[i] = MustAtom(v, Const(fmt.Sprintf("a%d", i)))
	}
	gs := make([]*GroundClause, nClauses)
	for i := range gs {
		lits := make([]Literal, 3)
		for j := range lits {
			lits[j] = Literal{Atom: atoms[rng.Intn(nAtoms)], Negated: rng.Intn(2) == 0}
		}
		gs[i] = &GroundClause{Literals: lits, Weight: rng.Float64()*2 - 0.5, Count: 1 + rng.Intn(3)}
	}
	return NewWorld(gs)
}

// BenchmarkMaxWalkSATFlips measures MAP local-search speed in flips per
// second over a 2k-atom / 10k-clause ground program.
func BenchmarkMaxWalkSATFlips(b *testing.B) {
	w := benchWorld(2000, 10000, 7)
	const flips = 20000
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MaxWalkSAT(nil, rng, MaxWalkSATOptions{MaxFlips: flips, Tries: 1})
	}
	b.ReportMetric(float64(flips)*float64(b.N)/b.Elapsed().Seconds(), "flips/s")
}

// BenchmarkGibbsSweeps measures Gibbs sampling speed in full sweeps (one
// conditional resample of every free atom) per second.
func BenchmarkGibbsSweeps(b *testing.B) {
	w := benchWorld(2000, 10000, 7)
	query := make([]int, w.NumAtoms())
	for i := range query {
		query[i] = i
	}
	const sweeps = 100
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Gibbs(query, nil, rng, GibbsOptions{Burnin: sweeps / 2, Samples: sweeps / 2})
	}
	b.ReportMetric(float64(sweeps)*float64(b.N)/b.Elapsed().Seconds(), "sweeps/s")
}

// BenchmarkNewWorld measures ground-program indexing cost.
func BenchmarkNewWorld(b *testing.B) {
	prog := NewProgram()
	c := benchClause(prog)
	subs := benchSubs(200000, 4096, 42)
	gs, err := GroundFromBindings(c, subs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewWorld(gs)
	}
}
