package mln

// Store is the dense-ID ground store: it interns constant and predicate
// symbols into int32 IDs and hash-conses ground atoms into dense atom IDs,
// so grounding dedup and world indexing hash fixed-width integer keys
// instead of building per-atom strings.
//
// Atoms of arbitrary arity reduce to a left fold of interned (node, node)
// pairs — pred ∘ arg₀ ∘ arg₁ ∘ … — so identifying an atom costs one small
// map lookup per argument, each over a comparable [2]int32 key. Symbol and
// pair nodes share one ID space, which makes the fold injective: a chain of
// length k can never collide with a chain of length k′ ≠ k, and equal chains
// imply equal symbols.
//
// A Store is not safe for concurrent mutation; the parallel grounding path
// confines all Store writes to its serial pre-intern and merge phases.
type Store struct {
	syms map[string]int32
	// symNames is indexed by node ID; entries for pair nodes are empty.
	symNames []string
	pairs    map[[2]int32]int32
	// atomIDs maps a chain node to its dense atom ID; atomMeta holds, per
	// dense atom ID, what is needed to reconstruct an Atom for rendering.
	atomIDs  map[int32]int32
	atomMeta []atomMeta
}

type atomMeta struct {
	pred *Predicate
	args []int32
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		syms:    make(map[string]int32),
		pairs:   make(map[[2]int32]int32),
		atomIDs: make(map[int32]int32),
	}
}

// Sym interns a symbol and returns its node ID.
func (s *Store) Sym(x string) int32 {
	if id, ok := s.syms[x]; ok {
		return id
	}
	id := int32(len(s.symNames))
	s.syms[x] = id
	s.symNames = append(s.symNames, x)
	return id
}

// SymName returns the string of an interned symbol node. Only valid for IDs
// returned by Sym.
func (s *Store) SymName(id int32) string { return s.symNames[id] }

// lookupSym returns the node of an already-interned symbol, or -1.
func (s *Store) lookupSym(x string) int32 {
	if id, ok := s.syms[x]; ok {
		return id
	}
	return -1
}

// pair hash-conses a (left, right) node pair.
func (s *Store) pair(a, b int32) int32 {
	k := [2]int32{a, b}
	if id, ok := s.pairs[k]; ok {
		return id
	}
	id := int32(len(s.symNames))
	s.pairs[k] = id
	s.symNames = append(s.symNames, "")
	return id
}

// lookupPair returns the node of an existing pair, or -1.
func (s *Store) lookupPair(a, b int32) int32 {
	if id, ok := s.pairs[[2]int32{a, b}]; ok {
		return id
	}
	return -1
}

// NumAtoms returns the number of distinct ground atoms interned so far.
func (s *Store) NumAtoms() int { return len(s.atomMeta) }

// internAtomSyms interns the ground atom pred(args…) given already-interned
// argument symbols and returns its dense atom ID.
func (s *Store) internAtomSyms(pred *Predicate, args []int32) int32 {
	n := s.Sym(pred.Name)
	for _, a := range args {
		n = s.pair(n, a)
	}
	if id, ok := s.atomIDs[n]; ok {
		return id
	}
	id := int32(len(s.atomMeta))
	s.atomIDs[n] = id
	meta := atomMeta{pred: pred, args: make([]int32, len(args))}
	copy(meta.args, args)
	s.atomMeta = append(s.atomMeta, meta)
	return id
}

// InternAtom interns a ground atom from its string form.
func (s *Store) InternAtom(a Atom) int32 {
	var buf [4]int32
	args := buf[:0]
	for _, t := range a.Args {
		args = append(args, s.Sym(t.Symbol))
	}
	return s.internAtomSyms(a.Pred, args)
}

// LookupAtom returns the dense ID of an already-interned ground atom, or -1.
// It never inserts.
func (s *Store) LookupAtom(a Atom) int32 {
	n := s.lookupSym(a.Pred.Name)
	if n < 0 {
		return -1
	}
	for _, t := range a.Args {
		arg := s.lookupSym(t.Symbol)
		if arg < 0 {
			return -1
		}
		if n = s.lookupPair(n, arg); n < 0 {
			return -1
		}
	}
	if id, ok := s.atomIDs[n]; ok {
		return id
	}
	return -1
}

// internClause populates g's dense literal codes from its string-form
// literals, claiming g for this store.
func (s *Store) internClause(g *GroundClause) {
	g.store = s
	g.lits = make([]int32, len(g.Literals))
	for i, l := range g.Literals {
		code := s.InternAtom(l.Atom) << 1
		if l.Negated {
			code |= 1
		}
		g.lits[i] = code
	}
}

// AtomAt reconstructs the Atom with the given dense ID.
func (s *Store) AtomAt(id int32) Atom {
	m := s.atomMeta[id]
	args := make([]Term, len(m.args))
	for i, a := range m.args {
		args[i] = Const(s.SymName(a))
	}
	return Atom{Pred: m.pred, Args: args}
}
