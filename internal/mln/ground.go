package mln

import (
	"fmt"
	"sort"
)

// GroundClause is a clause with no variables, plus bookkeeping for how many
// times the same ground clause arose during grounding (its support count).
type GroundClause struct {
	Literals []Literal
	Weight   float64
	Hard     bool
	Name     string
	// Count is the number of distinct substitutions (or source tuples) that
	// produced this exact ground clause.
	Count int
}

// Key returns a canonical identity string for the ground clause.
func (g *GroundClause) Key() string {
	parts := make([]string, len(g.Literals))
	for i, l := range g.Literals {
		sign := "+"
		if l.Negated {
			sign = "-"
		}
		parts[i] = sign + l.Atom.Key()
	}
	return g.Name + "\x1e" + joinKeyParts(parts)
}

func joinKeyParts(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "\x1e"
		}
		out += p
	}
	return out
}

// String renders the ground clause.
func (g *GroundClause) String() string {
	c := Clause{Literals: g.Literals, Weight: g.Weight, Hard: g.Hard}
	return c.String()
}

// Substitution maps variable names to constant symbols.
type Substitution map[string]string

// Apply instantiates the clause under the substitution. Every variable in
// the clause must be bound.
func (c *Clause) Apply(sub Substitution) (*GroundClause, error) {
	g := &GroundClause{Weight: c.Weight, Hard: c.Hard, Name: c.Name, Count: 1}
	g.Literals = make([]Literal, len(c.Literals))
	for i, l := range c.Literals {
		args := make([]Term, len(l.Atom.Args))
		for j, t := range l.Atom.Args {
			if !t.IsVar {
				args[j] = t
				continue
			}
			v, ok := sub[t.Symbol]
			if !ok {
				return nil, fmt.Errorf("mln: unbound variable %q in %s", t.Symbol, c)
			}
			args[j] = Const(v)
		}
		g.Literals[i] = Literal{Atom: Atom{Pred: l.Atom.Pred, Args: args}, Negated: l.Negated}
	}
	return g, nil
}

// GroundCartesian grounds the clause over the cartesian product of the
// program's declared variable domains. The number of ground clauses is
// Π |domain(v)| over the clause's variables. Duplicate ground clauses are
// merged with their counts summed.
func (p *Program) GroundCartesian(c *Clause) ([]*GroundClause, error) {
	vars := c.Vars()
	for _, v := range vars {
		if len(p.domains[v]) == 0 {
			return nil, fmt.Errorf("mln: variable %q has no declared domain", v)
		}
	}
	var out []*GroundClause
	seen := make(map[string]*GroundClause)
	sub := make(Substitution, len(vars))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			g, err := c.Apply(sub)
			if err != nil {
				return err
			}
			if prev, ok := seen[g.Key()]; ok {
				prev.Count++
				return nil
			}
			seen[g.Key()] = g
			out = append(out, g)
			return nil
		}
		for _, val := range p.domains[vars[i]] {
			sub[vars[i]] = val
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// GroundAll grounds every clause in the program cartesian-style.
func (p *Program) GroundAll() ([]*GroundClause, error) {
	var out []*GroundClause
	for _, c := range p.Clauses {
		gs, err := p.GroundCartesian(c)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	return out, nil
}

// GroundFromBindings grounds the clause once per provided substitution
// (tuple-driven grounding, the mode MLNClean uses: each tuple of the dirty
// table contributes the substitution binding rule variables to its attribute
// values, reproducing Table 3). Identical ground clauses are merged and
// their Count accumulates — Count is exactly c(γ) of Eq. 4.
func GroundFromBindings(c *Clause, subs []Substitution) ([]*GroundClause, error) {
	var out []*GroundClause
	seen := make(map[string]*GroundClause)
	for _, sub := range subs {
		g, err := c.Apply(sub)
		if err != nil {
			return nil, err
		}
		if prev, ok := seen[g.Key()]; ok {
			prev.Count++
			continue
		}
		seen[g.Key()] = g
		out = append(out, g)
	}
	return out, nil
}

// Atoms returns the sorted distinct ground atoms mentioned by the clauses.
func Atoms(gs []*GroundClause) []Atom {
	seen := make(map[string]Atom)
	for _, g := range gs {
		for _, l := range g.Literals {
			seen[l.Atom.Key()] = l.Atom
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Atom, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
