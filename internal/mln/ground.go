package mln

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// GroundClause is a clause with no variables, plus bookkeeping for how many
// times the same ground clause arose during grounding (its support count).
type GroundClause struct {
	Literals []Literal
	Weight   float64
	Hard     bool
	Name     string
	// Count is the number of distinct substitutions (or source tuples) that
	// produced this exact ground clause.
	Count int

	// Dense-ID fast path, populated by store-aware grounding: lits packs
	// (atomID<<1 | negated) per literal, with atom IDs owned by store.
	// NewWorld indexes clauses sharing one store without hashing strings.
	store *Store
	lits  []int32
}

// Key returns a canonical identity string for the ground clause. It is a
// debugging/tracing renderer; the hot grounding and inference paths identify
// clauses by dense integer keys instead.
func (g *GroundClause) Key() string {
	parts := make([]string, len(g.Literals))
	for i, l := range g.Literals {
		sign := "+"
		if l.Negated {
			sign = "-"
		}
		parts[i] = sign + l.Atom.Key()
	}
	return g.Name + "\x1e" + joinKeyParts(parts)
}

func joinKeyParts(parts []string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		b.WriteString(p)
	}
	return b.String()
}

// String renders the ground clause.
func (g *GroundClause) String() string {
	c := Clause{Literals: g.Literals, Weight: g.Weight, Hard: g.Hard}
	return c.String()
}

// Substitution maps variable names to constant symbols.
type Substitution map[string]string

// Apply instantiates the clause under the substitution. Every variable in
// the clause must be bound.
func (c *Clause) Apply(sub Substitution) (*GroundClause, error) {
	g := &GroundClause{Weight: c.Weight, Hard: c.Hard, Name: c.Name, Count: 1}
	g.Literals = make([]Literal, len(c.Literals))
	for i, l := range c.Literals {
		args := make([]Term, len(l.Atom.Args))
		for j, t := range l.Atom.Args {
			if !t.IsVar {
				args[j] = t
				continue
			}
			v, ok := sub[t.Symbol]
			if !ok {
				return nil, fmt.Errorf("mln: unbound variable %q in %s", t.Symbol, c)
			}
			args[j] = Const(v)
		}
		g.Literals[i] = Literal{Atom: Atom{Pred: l.Atom.Pred, Args: args}, Negated: l.Negated}
	}
	return g, nil
}

// ---------------------------------------------------------------------------
// Dense-ID grounding engine.
//
// A ground clause produced from a fixed clause template is a bijective
// function of the values bound to the clause's distinct variables, so the
// dedup identity of a grounding is just the tuple of interned value symbols —
// a fixed-width [maxKeyVars]int32 key hashed directly, with no string
// building and no Apply call for duplicate bindings. Clauses with more
// variables than maxKeyVars fall back to the legacy string-keyed path.

// maxKeyVars bounds the clause variables representable in a fixed-width
// binding key. MLNClean rules have one variable per attribute, so real
// clauses sit far below the bound.
const maxKeyVars = 8

// minShardRows is the smallest per-worker slice worth a goroutine during
// parallel grounding.
const minShardRows = 4096

type bindKey [maxKeyVars]int32

// groundEntry is one deduplicated binding: where it first occurred, how many
// bindings mapped to it, and its interned value tuple.
type groundEntry struct {
	firstIdx int
	count    int
	key      bindKey
}

// compiledClause is a clause template with constants pre-interned and every
// argument resolved to either a variable position or a constant symbol.
type compiledClause struct {
	c    *Clause
	vars []string
	lits []compiledLit
}

type compiledLit struct {
	pred    *Predicate
	negated bool
	args    []compiledArg
}

type compiledArg struct {
	// varPos indexes compiledClause.vars, or is -1 for a constant.
	varPos   int
	constSym int32
	constVal string
}

func compile(c *Clause, s *Store) *compiledClause {
	cc := &compiledClause{c: c, vars: c.Vars(), lits: make([]compiledLit, len(c.Literals))}
	vidx := make(map[string]int, len(cc.vars))
	for i, v := range cc.vars {
		vidx[v] = i
	}
	for i, l := range c.Literals {
		cl := compiledLit{pred: l.Atom.Pred, negated: l.Negated, args: make([]compiledArg, len(l.Atom.Args))}
		for j, t := range l.Atom.Args {
			if t.IsVar {
				cl.args[j] = compiledArg{varPos: vidx[t.Symbol]}
			} else {
				cl.args[j] = compiledArg{varPos: -1, constSym: s.Sym(t.Symbol), constVal: t.Symbol}
			}
		}
		cc.lits[i] = cl
	}
	return cc
}

// groundOne instantiates the template for one deduplicated binding, interning
// the ground atoms into s and packing the dense literal codes. valStrs
// resolves a variable position to its bound string.
func groundOne(s *Store, cc *compiledClause, valSyms []int32, valStrs func(int) string, count int) *GroundClause {
	c := cc.c
	g := &GroundClause{Weight: c.Weight, Hard: c.Hard, Name: c.Name, Count: count, store: s}
	g.Literals = make([]Literal, len(cc.lits))
	g.lits = make([]int32, len(cc.lits))
	var symBuf [4]int32
	for i, cl := range cc.lits {
		args := make([]Term, len(cl.args))
		syms := symBuf[:0]
		if len(cl.args) > len(symBuf) {
			syms = make([]int32, 0, len(cl.args))
		}
		for j, a := range cl.args {
			if a.varPos >= 0 {
				args[j] = Const(valStrs(a.varPos))
				syms = append(syms, valSyms[a.varPos])
			} else {
				args[j] = Const(a.constVal)
				syms = append(syms, a.constSym)
			}
		}
		code := s.internAtomSyms(cl.pred, syms) << 1
		if cl.negated {
			code |= 1
		}
		g.Literals[i] = Literal{Atom: Atom{Pred: cl.pred, Args: args}, Negated: cl.negated}
		g.lits[i] = code
	}
	return g
}

// groundShards picks the worker count for n bindings.
func groundShards(n int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 || n < 2*minShardRows {
		return 1
	}
	s := n / minShardRows
	if s > procs {
		s = procs
	}
	return s
}

// runShards splits [0, n) into `shards` contiguous chunks and runs fn on
// each concurrently, returning the per-shard outputs in chunk order.
func runShards(n, shards int, fn func(lo, hi int) []groundEntry) [][]groundEntry {
	results := make([][]groundEntry, shards)
	var wg sync.WaitGroup
	chunk := (n + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return results
}

// mergeShardEntries combines shard dedup outputs. Shards cover ascending
// row ranges and each shard's entries are in first-occurrence order, so a
// first-insert-wins merge walked in shard order yields entries sorted by
// global first occurrence — identical to serial dedup. rekey, if non-nil,
// translates an entry's shard-local key into the global store's symbols.
func mergeShardEntries(results [][]groundEntry, rekey func(groundEntry) bindKey) []groundEntry {
	gm := make(map[bindKey]int32)
	var out []groundEntry
	for _, res := range results {
		for _, e := range res {
			if rekey != nil {
				e.key = rekey(e)
			}
			if gi, ok := gm[e.key]; ok {
				out[gi].count += e.count
				continue
			}
			gm[e.key] = int32(len(out))
			out = append(out, e)
		}
	}
	return out
}

// dedupRows collapses rows (one value per clause variable, in cc.vars order)
// into first-occurrence-ordered entries. base offsets firstIdx so shard
// outputs carry global positions; intern supplies symbol IDs (the global
// store's in the serial path, a shard-local interner in the parallel one).
func dedupRows(rows [][]string, base, nv int, intern func(string) int32) []groundEntry {
	hint := len(rows)
	if hint > 1<<14 {
		hint = 1 << 14 // uniques are usually far fewer than bindings
	}
	m := make(map[bindKey]int32, hint)
	var entries []groundEntry
	var key bindKey
	for i, row := range rows {
		for j := 0; j < nv; j++ {
			key[j] = intern(row[j])
		}
		if ei, ok := m[key]; ok {
			entries[ei].count++
			continue
		}
		m[key] = int32(len(entries))
		entries = append(entries, groundEntry{firstIdx: base + i, count: 1, key: key})
	}
	return entries
}

// groundRowsSharded is the tuple-driven grounding core: dedup rows across
// `shards` workers (shard-local interners and maps, no shared state), then
// merge the shard outputs by re-interning each unique entry's values into
// the global store, preserving serial first-occurrence order.
func groundRowsSharded(s *Store, cc *compiledClause, rows [][]string, shards int) []*GroundClause {
	nv := len(cc.vars)
	var entries []groundEntry
	if shards <= 1 {
		entries = dedupRows(rows, 0, nv, s.Sym)
	} else {
		results := runShards(len(rows), shards, func(lo, hi int) []groundEntry {
			local := make(map[string]int32)
			intern := func(x string) int32 {
				if id, ok := local[x]; ok {
					return id
				}
				id := int32(len(local))
				local[x] = id
				return id
			}
			return dedupRows(rows[lo:hi], lo, nv, intern)
		})
		entries = mergeShardEntries(results, func(e groundEntry) bindKey {
			row := rows[e.firstIdx]
			var key bindKey
			for j := 0; j < nv; j++ {
				key[j] = s.Sym(row[j])
			}
			return key
		})
	}
	out := make([]*GroundClause, len(entries))
	for i := range entries {
		e := &entries[i]
		row := rows[e.firstIdx]
		out[i] = groundOne(s, cc, e.key[:nv], func(vp int) string { return row[vp] }, e.count)
	}
	return out
}

// GroundFromBindings grounds the clause once per provided substitution
// (tuple-driven grounding, the mode MLNClean uses: each tuple of the dirty
// table contributes the substitution binding rule variables to its attribute
// values, reproducing Table 3). Identical ground clauses are merged and
// their Count accumulates — Count is exactly c(γ) of Eq. 4.
func GroundFromBindings(c *Clause, subs []Substitution) ([]*GroundClause, error) {
	return GroundFromBindingsStore(NewStore(), c, subs)
}

// GroundFromBindingsStore is GroundFromBindings interning into a caller-owned
// store; grounding several clauses into one store lets NewWorld index the
// union without re-hashing any atom. Large inputs dedup across parallel
// worker shards.
func GroundFromBindingsStore(s *Store, c *Clause, subs []Substitution) ([]*GroundClause, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	vars := c.Vars()
	if len(vars) > maxKeyVars {
		return groundFromBindingsByKey(s, c, subs)
	}
	cc := compile(c, s)
	nv := len(vars)
	flat := make([]string, nv*len(subs))
	rows := make([][]string, len(subs))
	for i, sub := range subs {
		row := flat[i*nv : (i+1)*nv : (i+1)*nv]
		for j, v := range vars {
			val, ok := sub[v]
			if !ok {
				return nil, fmt.Errorf("mln: unbound variable %q in %s", v, c)
			}
			row[j] = val
		}
		rows[i] = row
	}
	return groundRowsSharded(s, cc, rows, groundShards(len(rows))), nil
}

// groundFromBindingsByKey is the legacy string-keyed dedup, kept for clauses
// whose variable count exceeds the fixed-width binding key. A non-nil store
// still receives the clauses' atoms, so mixing one oversized clause into a
// store-ground program does not knock the whole world off the dense-ID
// fast path.
func groundFromBindingsByKey(s *Store, c *Clause, subs []Substitution) ([]*GroundClause, error) {
	var out []*GroundClause
	seen := make(map[string]*GroundClause)
	for _, sub := range subs {
		g, err := c.Apply(sub)
		if err != nil {
			return nil, err
		}
		if prev, ok := seen[g.Key()]; ok {
			prev.Count++
			continue
		}
		if s != nil {
			s.internClause(g)
		}
		seen[g.Key()] = g
		out = append(out, g)
	}
	return out, nil
}

// GroundCartesian grounds the clause over the cartesian product of the
// program's declared variable domains. The number of ground clauses is
// Π |domain(v)| over the clause's variables. Duplicate ground clauses are
// merged with their counts summed. Large products enumerate in parallel,
// chunked over the first variable's domain.
func (p *Program) GroundCartesian(c *Clause) ([]*GroundClause, error) {
	vars := c.Vars()
	for _, v := range vars {
		if len(p.domains[v]) == 0 {
			return nil, fmt.Errorf("mln: variable %q has no declared domain", v)
		}
	}
	if len(vars) > maxKeyVars {
		return p.groundCartesianByKey(c, vars)
	}
	s := p.store
	cc := compile(c, s)
	nv := len(vars)
	if nv == 0 {
		return []*GroundClause{groundOne(s, cc, nil, nil, 1)}, nil
	}
	domSyms := make([][]int32, nv)
	stride := 1 // Π |domain(vars[i])| for i ≥ 1
	for i, v := range vars {
		d := p.domains[v]
		domSyms[i] = make([]int32, len(d))
		for j, val := range d {
			domSyms[i][j] = s.Sym(val)
		}
		if i > 0 {
			stride *= len(d)
		}
	}
	total := stride * len(domSyms[0])
	shards := groundShards(total)
	if shards > len(domSyms[0]) {
		shards = len(domSyms[0])
	}
	var entries []groundEntry
	if shards <= 1 {
		entries = cartDedup(domSyms, 0, len(domSyms[0]), stride)
	} else {
		results := runShards(len(domSyms[0]), shards, func(lo, hi int) []groundEntry {
			return cartDedup(domSyms, lo, hi, stride)
		})
		// Domain symbols were pre-interned, so shard keys are already global.
		entries = mergeShardEntries(results, nil)
	}
	out := make([]*GroundClause, len(entries))
	for i := range entries {
		e := &entries[i]
		out[i] = groundOne(s, cc, e.key[:nv], func(vp int) string { return s.SymName(e.key[vp]) }, e.count)
	}
	return out, nil
}

// cartDedup enumerates the cartesian product restricted to indices [lo, hi)
// of the first variable's domain, deduplicating bindings. The enumeration
// index (first variable outermost) is the global first-occurrence position.
func cartDedup(domSyms [][]int32, lo, hi, stride int) []groundEntry {
	m := make(map[bindKey]int32)
	var entries []groundEntry
	var key bindKey
	nv := len(domSyms)
	idx := lo * stride
	var rec func(vi int)
	rec = func(vi int) {
		if vi == nv {
			if ei, ok := m[key]; ok {
				entries[ei].count++
			} else {
				m[key] = int32(len(entries))
				entries = append(entries, groundEntry{firstIdx: idx, count: 1, key: key})
			}
			idx++
			return
		}
		for _, sym := range domSyms[vi] {
			key[vi] = sym
			rec(vi + 1)
		}
	}
	for i0 := lo; i0 < hi; i0++ {
		key[0] = domSyms[0][i0]
		rec(1)
	}
	return entries
}

// groundCartesianByKey is the legacy recursive grounding for clauses beyond
// the fixed-width binding key.
func (p *Program) groundCartesianByKey(c *Clause, vars []string) ([]*GroundClause, error) {
	var out []*GroundClause
	seen := make(map[string]*GroundClause)
	sub := make(Substitution, len(vars))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			g, err := c.Apply(sub)
			if err != nil {
				return err
			}
			if prev, ok := seen[g.Key()]; ok {
				prev.Count++
				return nil
			}
			p.store.internClause(g)
			seen[g.Key()] = g
			out = append(out, g)
			return nil
		}
		for _, val := range p.domains[vars[i]] {
			sub[vars[i]] = val
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// GroundAll grounds every clause in the program cartesian-style. All clauses
// share the program's store, so NewWorld over the union takes the dense-ID
// fast path.
func (p *Program) GroundAll() ([]*GroundClause, error) {
	var out []*GroundClause
	for _, c := range p.Clauses {
		gs, err := p.GroundCartesian(c)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	return out, nil
}

// Atoms returns the sorted distinct ground atoms mentioned by the clauses.
func Atoms(gs []*GroundClause) []Atom {
	seen := make(map[string]Atom)
	for _, g := range gs {
		for _, l := range g.Literals {
			seen[l.Atom.Key()] = l.Atom
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Atom, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
