package mln

import (
	"fmt"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// ClauseFromRule converts an integrity constraint into its MLN-rule form
// (§3): predicates are attribute names of arity 1 applied to value terms.
//
//	FD  CT ⇒ ST                         → ¬CT(x_CT) ∨ ST(x_ST)
//	CFD HN("ELIZA"), CT("BOAZ") ⇒ PN(c) → ¬HN("ELIZA") ∨ ¬CT("BOAZ") ∨ PN(c)
//	DC  ¬(PN(t)=PN(t') ∧ ST(t)≠ST(t'))  → ¬PN(x_PN) ∨ ST(x_ST)
//
// For DCs of the pairwise =/≠ form the clause over single-tuple value atoms
// is the grounding unit the MLN index consumes (block B2 of Fig. 2): the
// reason attributes appear negated, the result attribute positive.
func ClauseFromRule(p *Program, r *rules.Rule) (*Clause, error) {
	c := &Clause{Name: r.ID, Weight: 1}
	for _, pat := range r.Reason {
		pred, err := p.Predicate(pat.Attr, 1)
		if err != nil {
			return nil, err
		}
		term := Var("x_" + pat.Attr)
		if pat.Const != "" {
			term = Const(pat.Const)
		}
		c.Literals = append(c.Literals, Neg(MustAtom(pred, term)))
	}
	for _, pat := range r.Result {
		pred, err := p.Predicate(pat.Attr, 1)
		if err != nil {
			return nil, err
		}
		term := Var("x_" + pat.Attr)
		if pat.Const != "" {
			term = Const(pat.Const)
		}
		c.Literals = append(c.Literals, Pos(MustAtom(pred, term)))
	}
	return c, nil
}

// TupleSubstitution binds the clause variables of rule r to tuple t's
// attribute values (x_Attr ↦ t.[Attr]).
func TupleSubstitution(tb *dataset.Table, t *dataset.Tuple, r *rules.Rule) Substitution {
	sub := make(Substitution)
	for _, pat := range append(append([]rules.Pattern{}, r.Reason...), r.Result...) {
		if pat.Const == "" || r.Kind == rules.CFD {
			sub["x_"+pat.Attr] = tb.Cell(t, pat.Attr)
		}
	}
	return sub
}

// GroundRuleFromTable grounds rule r over every applicable tuple of the
// table, reproducing the Table 3 grounding: one ground MLN rule per distinct
// combination of the rule's attribute values, with Count = the number of
// supporting tuples (c(γ) of Eq. 4).
//
// The grounding interns into the program's store and feeds the dense-ID
// dedup engine directly: rows are projected straight from tuple storage
// (no per-tuple Substitution maps) and duplicate bindings never instantiate
// a clause.
func GroundRuleFromTable(p *Program, r *rules.Rule, tb *dataset.Table) ([]*GroundClause, error) {
	if err := r.Validate(tb.Schema); err != nil {
		return nil, err
	}
	c, err := ClauseFromRule(p, r)
	if err != nil {
		return nil, err
	}
	vars := c.Vars()
	if len(vars) > maxKeyVars {
		var subs []Substitution
		for _, t := range tb.Tuples {
			if !r.AppliesTo(tb, t) {
				continue
			}
			subs = append(subs, TupleSubstitution(tb, t, r))
		}
		return GroundFromBindingsStore(p.store, c, subs)
	}
	// Column index per clause variable, mirroring TupleSubstitution's
	// x_Attr ↦ t.[Attr] convention.
	varAttr := make(map[string]string)
	for _, pat := range r.Reason {
		if pat.Const == "" || r.Kind == rules.CFD {
			varAttr["x_"+pat.Attr] = pat.Attr
		}
	}
	for _, pat := range r.Result {
		if pat.Const == "" || r.Kind == rules.CFD {
			varAttr["x_"+pat.Attr] = pat.Attr
		}
	}
	cols := make([]int, len(vars))
	for i, v := range vars {
		attr, ok := varAttr[v]
		if !ok {
			return nil, fmt.Errorf("mln: unbound variable %q in %s", v, c)
		}
		cols[i] = tb.Schema.MustIndex(attr)
	}
	cc := compile(c, p.store)
	nv := len(vars)
	rows := make([][]string, 0, len(tb.Tuples))
	flat := make([]string, 0, nv*len(tb.Tuples))
	for _, t := range tb.Tuples {
		if !r.AppliesTo(tb, t) {
			continue
		}
		lo := len(flat)
		for _, j := range cols {
			flat = append(flat, t.Values[j])
		}
		rows = append(rows, flat[lo:len(flat):len(flat)])
	}
	return groundRowsSharded(p.store, cc, rows, groundShards(len(rows))), nil
}

// GroundAllFromTable grounds every rule against the table, returning the
// ground clauses grouped per rule (in rule order).
func GroundAllFromTable(p *Program, rs []*rules.Rule, tb *dataset.Table) ([][]*GroundClause, error) {
	out := make([][]*GroundClause, len(rs))
	for i, r := range rs {
		gs, err := GroundRuleFromTable(p, r, tb)
		if err != nil {
			return nil, fmt.Errorf("mln: grounding %s: %w", r.ID, err)
		}
		out[i] = gs
	}
	return out, nil
}
