package mln

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

func TestAtomConstruction(t *testing.T) {
	p := &Predicate{Name: "CT", Arity: 1}
	if _, err := NewAtom(p, Const("DOTHAN"), Const("X")); err == nil {
		t.Error("arity mismatch should fail")
	}
	a := MustAtom(p, Const("DOTHAN"))
	if !a.IsGround() {
		t.Error("constant atom should be ground")
	}
	v := MustAtom(p, Var("x"))
	if v.IsGround() {
		t.Error("variable atom should not be ground")
	}
	if a.Key() == v.Key() {
		t.Error("distinct atoms share a key")
	}
	if !strings.Contains(a.String(), "DOTHAN") {
		t.Errorf("String = %q", a.String())
	}
}

func TestProgramPredicateInterning(t *testing.T) {
	prog := NewProgram()
	a := prog.MustPredicate("CT", 1)
	b := prog.MustPredicate("CT", 1)
	if a != b {
		t.Error("same-name predicates should be interned")
	}
	if _, err := prog.Predicate("CT", 2); err == nil {
		t.Error("arity conflict should fail")
	}
}

func TestClauseVarsAndString(t *testing.T) {
	prog := NewProgram()
	ct := prog.MustPredicate("CT", 1)
	st := prog.MustPredicate("ST", 1)
	c := &Clause{
		Literals: []Literal{Neg(MustAtom(ct, Var("x"))), Pos(MustAtom(st, Var("y")))},
		Weight:   1.5,
	}
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if c.IsGround() {
		t.Error("clause with variables is not ground")
	}
	if !strings.Contains(c.String(), "!CT(x)") {
		t.Errorf("String = %q", c.String())
	}
	hard := &Clause{Literals: c.Literals, Hard: true}
	if !strings.HasSuffix(hard.String(), ".") {
		t.Errorf("hard clause String = %q", hard.String())
	}
}

func TestApplySubstitution(t *testing.T) {
	prog := NewProgram()
	ct := prog.MustPredicate("CT", 1)
	st := prog.MustPredicate("ST", 1)
	c := &Clause{Literals: []Literal{Neg(MustAtom(ct, Var("x"))), Pos(MustAtom(st, Var("y")))}}
	g, err := c.Apply(Substitution{"x": "DOTHAN", "y": "AL"})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g.Literals[0].Atom.Args[0].Symbol != "DOTHAN" || g.Literals[1].Atom.Args[0].Symbol != "AL" {
		t.Errorf("ground literals: %v", g)
	}
	if _, err := c.Apply(Substitution{"x": "DOTHAN"}); err == nil {
		t.Error("unbound variable should fail")
	}
}

func TestGroundCartesianCount(t *testing.T) {
	prog := NewProgram()
	ct := prog.MustPredicate("CT", 1)
	st := prog.MustPredicate("ST", 1)
	c := &Clause{Literals: []Literal{Neg(MustAtom(ct, Var("x"))), Pos(MustAtom(st, Var("y")))}}
	prog.SetDomain("x", []string{"a", "b", "c"})
	prog.SetDomain("y", []string{"1", "2"})
	gs, err := prog.GroundCartesian(c)
	if err != nil {
		t.Fatalf("GroundCartesian: %v", err)
	}
	if len(gs) != 6 {
		t.Errorf("ground clauses = %d, want 3×2", len(gs))
	}
	prog.SetDomain("y", nil)
	if _, err := prog.GroundCartesian(c); err == nil {
		t.Error("missing domain should fail")
	}
}

func TestGroundCartesianCountProperty(t *testing.T) {
	f := func(nx, ny uint8) bool {
		x := int(nx%5) + 1
		y := int(ny%5) + 1
		prog := NewProgram()
		a := prog.MustPredicate("A", 1)
		b := prog.MustPredicate("B", 1)
		c := &Clause{Literals: []Literal{Neg(MustAtom(a, Var("x"))), Pos(MustAtom(b, Var("y")))}}
		dx := make([]string, x)
		for i := range dx {
			dx[i] = strings.Repeat("x", i+1)
		}
		dy := make([]string, y)
		for i := range dy {
			dy[i] = strings.Repeat("y", i+1)
		}
		prog.SetDomain("x", dx)
		prog.SetDomain("y", dy)
		gs, err := prog.GroundCartesian(c)
		return err == nil && len(gs) == x*y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTable3Grounding reproduces Table 3: grounding r1 = CT ⇒ ST over the
// paper's sample yields exactly four ground MLN rules.
func TestTable3Grounding(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")

	r := rules.MustParseStrings("FD: CT -> ST")[0]
	prog := NewProgram()
	gs, err := GroundRuleFromTable(prog, r, tb)
	if err != nil {
		t.Fatalf("GroundRuleFromTable: %v", err)
	}
	if len(gs) != 4 {
		t.Fatalf("ground rules = %d, want 4 (Table 3)", len(gs))
	}
	// Counts: DOTHAN/AL supports 2 tuples, BOAZ/AL supports 2.
	counts := make(map[string]int)
	for _, g := range gs {
		counts[g.Literals[0].Atom.Args[0].Symbol+"/"+g.Literals[1].Atom.Args[0].Symbol] = g.Count
	}
	if counts["DOTHAN/AL"] != 2 || counts["DOTH/AL"] != 1 || counts["BOAZ/AL"] != 2 || counts["BOAZ/AK"] != 1 {
		t.Errorf("support counts = %v", counts)
	}
}

func TestClauseFromRuleShapes(t *testing.T) {
	prog := NewProgram()
	fd := rules.MustParseStrings("FD: CT -> ST")[0]
	c, err := ClauseFromRule(prog, fd)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Literals[0].Negated || c.Literals[1].Negated {
		t.Errorf("FD clause polarity: %v", c)
	}
	cfd := rules.MustParseStrings("CFD: HN=ELIZA, CT=BOAZ -> PN=999")[0]
	cc, err := ClauseFromRule(prog, cfd)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.IsGround() {
		t.Errorf("fully-constant CFD clause should be ground: %v", cc)
	}
	dc := rules.MustParseStrings("DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))")[0]
	dcl, err := ClauseFromRule(prog, dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dcl.Literals) != 2 || !dcl.Literals[0].Negated {
		t.Errorf("DC clause: %v", dcl)
	}
}

func TestPriorWeights(t *testing.T) {
	w := PriorWeights([]float64{1, 2, 5})
	if math.Abs(w[0]-0.125) > 1e-12 || math.Abs(w[2]-0.625) > 1e-12 {
		t.Errorf("priors = %v", w)
	}
	if got := PriorWeights([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("zero-count priors = %v", got)
	}
}

func TestLearnWeightsMonotone(t *testing.T) {
	// Within a group, higher support must learn a higher weight.
	counts := []float64{8, 1}
	res, err := LearnWeights([][]int{{0, 1}}, counts, PriorWeights(counts), LearnOptions{})
	if err != nil {
		t.Fatalf("LearnWeights: %v", err)
	}
	if res.Weights[0] <= res.Weights[1] {
		t.Errorf("weights not monotone in counts: %v", res.Weights)
	}
	// Softmax of learned weights approaches the count proportions.
	p0 := math.Exp(res.Weights[0]) / (math.Exp(res.Weights[0]) + math.Exp(res.Weights[1]))
	if math.Abs(p0-8.0/9.0) > 0.05 {
		t.Errorf("softmax probability %.3f, want ≈ %.3f", p0, 8.0/9.0)
	}
}

func TestLearnWeightsMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		ca, cb := float64(a%50)+1, float64(b%50)+1
		counts := []float64{ca, cb}
		res, err := LearnWeights([][]int{{0, 1}}, counts, PriorWeights(counts), LearnOptions{})
		if err != nil {
			return false
		}
		switch {
		case ca > cb:
			return res.Weights[0] > res.Weights[1]
		case ca < cb:
			return res.Weights[0] < res.Weights[1]
		default:
			return math.Abs(res.Weights[0]-res.Weights[1]) < 1e-6
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLearnWeightsValidation(t *testing.T) {
	if _, err := LearnWeights([][]int{{0}}, []float64{1}, []float64{1, 2}, LearnOptions{}); err == nil {
		t.Error("init length mismatch should fail")
	}
	if _, err := LearnWeights([][]int{{0, 0}}, []float64{1, 1}, []float64{0, 0}, LearnOptions{}); err == nil {
		t.Error("duplicate group membership should fail")
	}
	if _, err := LearnWeights([][]int{{5}}, []float64{1}, []float64{0}, LearnOptions{}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := LearnWeights([][]int{{0}}, []float64{-1}, []float64{0}, LearnOptions{}); err == nil {
		t.Error("negative count should fail")
	}
}

func TestLearnWeightsSingletonGroupKeepsPrior(t *testing.T) {
	counts := []float64{7}
	init := []float64{0.42}
	res, err := LearnWeights([][]int{{0}}, counts, init, LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != 0.42 {
		t.Errorf("singleton group weight moved: %v", res.Weights[0])
	}
}

func TestLearnWeightsConverges(t *testing.T) {
	counts := []float64{10, 5, 1}
	res, err := LearnWeights([][]int{{0, 1, 2}}, counts, PriorWeights(counts), LearnOptions{MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("learner did not converge in %d iterations", res.Iterations)
	}
	if res.LogLik >= 0 {
		t.Errorf("log-likelihood should be negative, got %v", res.LogLik)
	}
}

func TestWorldSatisfiedWeight(t *testing.T) {
	prog := NewProgram()
	a := prog.MustPredicate("A", 1)
	b := prog.MustPredicate("B", 1)
	// w=2: !A(x) v B(x), grounded at x=1.
	c := &Clause{Literals: []Literal{Neg(MustAtom(a, Var("x"))), Pos(MustAtom(b, Var("x")))}, Weight: 2}
	g, err := c.Apply(Substitution{"x": "1"})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld([]*GroundClause{g})
	if w.NumAtoms() != 2 {
		t.Fatalf("atoms = %d", w.NumAtoms())
	}
	// All-false world satisfies the clause (¬A is true).
	if got := w.SatisfiedWeight(); got != 2 {
		t.Errorf("all-false weight = %v, want 2", got)
	}
	// A=true, B=false violates it.
	if err := w.SetByAtom(MustAtom(a, Const("1")), true); err != nil {
		t.Fatal(err)
	}
	if got := w.SatisfiedWeight(); got != 0 {
		t.Errorf("violating weight = %v, want 0", got)
	}
	// A=true, B=true satisfies again.
	if err := w.SetByAtom(MustAtom(b, Const("1")), true); err != nil {
		t.Fatal(err)
	}
	if got := w.SatisfiedWeight(); got != 2 {
		t.Errorf("satisfied weight = %v, want 2", got)
	}
	if err := w.SetByAtom(MustAtom(a, Const("nope")), true); err == nil {
		t.Error("unknown atom should fail")
	}
}

func TestGibbsMarginalDirection(t *testing.T) {
	// Single ground clause with positive weight: B(1) with weight 3. The
	// marginal of B(1) must be well above 1/2.
	prog := NewProgram()
	b := prog.MustPredicate("B", 1)
	g := &GroundClause{Literals: []Literal{Pos(MustAtom(b, Const("1")))}, Weight: 3, Count: 1}
	w := NewWorld([]*GroundClause{g})
	rng := rand.New(rand.NewSource(1))
	probs := w.Gibbs([]int{0}, nil, rng, GibbsOptions{Burnin: 200, Samples: 2000})
	if probs[0] < 0.9 {
		t.Errorf("P(B) = %.3f, want ≥ 0.9 (logistic(3) ≈ 0.95)", probs[0])
	}
	// Evidence pins the atom.
	probs = w.Gibbs([]int{0}, map[int]bool{0: false}, rng, GibbsOptions{})
	if probs[0] != 0 {
		t.Errorf("evidence-fixed marginal = %v", probs[0])
	}
}

func TestMaxWalkSATFindsSatisfyingAssignment(t *testing.T) {
	// A(1) v B(1); !A(1); weights 1 each → MAP sets B=true, A=false.
	prog := NewProgram()
	a := prog.MustPredicate("A", 1)
	b := prog.MustPredicate("B", 1)
	g1 := &GroundClause{Literals: []Literal{Pos(MustAtom(a, Const("1"))), Pos(MustAtom(b, Const("1")))}, Weight: 1, Count: 1}
	g2 := &GroundClause{Literals: []Literal{Neg(MustAtom(a, Const("1")))}, Weight: 1, Count: 1}
	w := NewWorld([]*GroundClause{g1, g2})
	rng := rand.New(rand.NewSource(7))
	best := w.MaxWalkSAT(nil, rng, MaxWalkSATOptions{MaxFlips: 500, Tries: 2})
	if best != 2 {
		t.Errorf("MAP weight = %v, want 2", best)
	}
	aID := w.AtomID(MustAtom(a, Const("1")))
	bID := w.AtomID(MustAtom(b, Const("1")))
	if w.Truth(aID) || !w.Truth(bID) {
		t.Errorf("MAP state: A=%v B=%v, want A=false B=true", w.Truth(aID), w.Truth(bID))
	}
}

func TestGroundFromBindingsMergesDuplicates(t *testing.T) {
	prog := NewProgram()
	a := prog.MustPredicate("A", 1)
	c := &Clause{Literals: []Literal{Pos(MustAtom(a, Var("x")))}}
	subs := []Substitution{{"x": "1"}, {"x": "1"}, {"x": "2"}}
	gs, err := GroundFromBindings(c, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("ground clauses = %d, want 2", len(gs))
	}
	if gs[0].Count != 2 || gs[1].Count != 1 {
		t.Errorf("counts = %d, %d", gs[0].Count, gs[1].Count)
	}
}

func TestAtomsCollection(t *testing.T) {
	prog := NewProgram()
	a := prog.MustPredicate("A", 1)
	g1 := &GroundClause{Literals: []Literal{Pos(MustAtom(a, Const("1"))), Neg(MustAtom(a, Const("2")))}}
	g2 := &GroundClause{Literals: []Literal{Pos(MustAtom(a, Const("2")))}}
	atoms := Atoms([]*GroundClause{g1, g2})
	if len(atoms) != 2 {
		t.Errorf("distinct atoms = %d, want 2", len(atoms))
	}
}

func TestGroundAllFromTable(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("1", "x")
	tb.MustAppend("2", "y")
	rs := rules.MustParseStrings("FD: A -> B")
	prog := NewProgram()
	per, err := GroundAllFromTable(prog, rs, tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 1 || len(per[0]) != 2 {
		t.Errorf("grounding shape: %v", per)
	}
	// Rule referencing a missing attribute fails cleanly.
	bad := rules.MustParseStrings("FD: A -> Missing")
	if _, err := GroundAllFromTable(prog, bad, tb); err == nil {
		t.Error("missing attribute should fail")
	}
}
