package mln

import (
	"fmt"
	"math"
)

// LearnOptions configures the diagonal-Newton weight learner.
type LearnOptions struct {
	// MaxIters bounds the Newton iterations (default 100).
	MaxIters int
	// Tolerance stops the loop once the max absolute weight change falls
	// below it (default 1e-6).
	Tolerance float64
	// Damping is added to the Hessian diagonal for numerical stability
	// (default 1e-3). Larger damping ⇒ smaller, safer steps.
	Damping float64
	// PriorSigma is the std-dev of the Gaussian prior centred on the initial
	// weights (default 2.0). The prior both regularizes and pins the
	// per-group shift invariance of the softmax likelihood.
	PriorSigma float64
	// MaxStep clips each per-weight Newton step (default 2.0).
	MaxStep float64
}

func (o LearnOptions) withDefaults() LearnOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.Damping <= 0 {
		o.Damping = 1e-3
	}
	if o.PriorSigma <= 0 {
		o.PriorSigma = 2.0
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 2.0
	}
	return o
}

// LearnResult reports learner diagnostics.
type LearnResult struct {
	Weights    []float64
	Iterations int
	LogLik     float64
	Converged  bool
}

// LearnWeights fits ground-clause weights by maximizing the grouped softmax
// log-likelihood with a damped diagonal-Newton update — the optimizer family
// Tuffy uses for MLN weight learning.
//
// The model: candidates are partitioned into groups (in MLNClean, one group
// per MLN-index group, candidates = its distinct γs). Within group g the
// probability of candidate i is softmax over the group's weights, matching
// Eq. 2 restricted to the competing ground clauses (ln Pr(γ) = w − ln Z,
// Eq. 3). counts[i] is the observed support c(γᵢ). The objective is
//
//	L(w) = Σ_g Σ_{i∈g} counts[i]·log softmax_g(w)_i − Σ_i (w_i−w⁰_i)²/(2σ²)
//
// and the update is wᵢ += clip(g_i / (−H_ii + damping)) with
// g_i = counts[i] − C_g·p_i − (w_i−w⁰_i)/σ² and H_ii = −C_g·p_i(1−p_i) − 1/σ².
//
// init supplies the starting (and prior-centre) weights; pass the Eq. 4
// priors w⁰ = c(γ)/Σc. groups must partition 0..len(counts)-1; indices may
// appear in at most one group.
func LearnWeights(groups [][]int, counts []float64, init []float64, opts LearnOptions) (LearnResult, error) {
	o := opts.withDefaults()
	n := len(counts)
	if len(init) != n {
		return LearnResult{}, fmt.Errorf("mln: init has %d weights for %d candidates", len(init), n)
	}
	seen := make([]bool, n)
	for _, g := range groups {
		for _, i := range g {
			if i < 0 || i >= n {
				return LearnResult{}, fmt.Errorf("mln: group index %d out of range [0,%d)", i, n)
			}
			if seen[i] {
				return LearnResult{}, fmt.Errorf("mln: candidate %d appears in multiple groups", i)
			}
			seen[i] = true
		}
	}
	for i, c := range counts {
		if c < 0 {
			return LearnResult{}, fmt.Errorf("mln: negative count %g for candidate %d", c, i)
		}
	}

	w := make([]float64, n)
	copy(w, init)
	invSigma2 := 1 / (o.PriorSigma * o.PriorSigma)

	maxGroup := 0
	for _, g := range groups {
		if len(g) > maxGroup {
			maxGroup = len(g)
		}
	}
	probs := make([]float64, maxGroup)

	res := LearnResult{Weights: w}
	for iter := 1; iter <= o.MaxIters; iter++ {
		maxDelta := 0.0
		for _, g := range groups {
			if len(g) < 2 {
				// A singleton group's softmax is degenerate (p=1); only the
				// prior acts, so the weight stays at its prior centre.
				continue
			}
			total := 0.0
			for _, i := range g {
				total += counts[i]
			}
			if total == 0 {
				continue
			}
			// Coordinate-descent Newton: refresh the group's softmax before
			// each single-weight update. Updating all weights of a group
			// from one stale distribution makes opposing steps compound
			// (the softmax is shift-invariant) and the sweep oscillates.
			for k, i := range g {
				softmaxInto(probs[:len(g)], w, g)
				p := probs[k]
				grad := counts[i] - total*p - (w[i]-init[i])*invSigma2
				hess := total*p*(1-p) + invSigma2 + o.Damping
				step := grad / hess
				if step > o.MaxStep {
					step = o.MaxStep
				} else if step < -o.MaxStep {
					step = -o.MaxStep
				}
				w[i] += step
				if d := math.Abs(step); d > maxDelta {
					maxDelta = d
				}
			}
		}
		res.Iterations = iter
		if maxDelta < o.Tolerance {
			res.Converged = true
			break
		}
	}
	res.LogLik = groupedLogLik(groups, counts, w, init, invSigma2)
	return res, nil
}

// softmaxInto writes softmax(w[idx]) into dst (len(dst) == len(idx)),
// allocating nothing — the Newton sweep calls it once per weight update.
func softmaxInto(dst []float64, w []float64, idx []int) {
	maxW := math.Inf(-1)
	for _, i := range idx {
		if w[i] > maxW {
			maxW = w[i]
		}
	}
	var z float64
	for k, i := range idx {
		dst[k] = math.Exp(w[i] - maxW)
		z += dst[k]
	}
	for k := range dst {
		dst[k] /= z
	}
}

func groupedLogLik(groups [][]int, counts, w, init []float64, invSigma2 float64) float64 {
	ll := 0.0
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		maxW := math.Inf(-1)
		for _, i := range g {
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		var z float64
		for _, i := range g {
			z += math.Exp(w[i] - maxW)
		}
		logZ := math.Log(z) + maxW
		for _, i := range g {
			ll += counts[i] * (w[i] - logZ)
		}
	}
	for i := range w {
		d := w[i] - init[i]
		ll -= d * d * invSigma2 / 2
	}
	return ll
}

// PriorWeights computes the Eq. 4 priors: w⁰ᵢ = c(γᵢ) / Σⱼ c(γⱼ) over all
// candidates in a block.
func PriorWeights(counts []float64) []float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}
