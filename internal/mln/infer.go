package mln

import (
	"fmt"
	"math"
	"math/rand"
)

// World is a truth assignment over the ground atoms of a ground program.
// Atoms are addressed by dense integer ids assigned by NewWorld.
type World struct {
	atoms   []Atom
	atomID  map[string]int
	truth   []bool
	clauses []*GroundClause
	// clauseLits[c] lists (atomID, negated) pairs for clause c.
	clauseLits [][]worldLit
	// atomClauses[a] lists the clauses mentioning atom a.
	atomClauses [][]int
}

type worldLit struct {
	atom    int
	negated bool
}

// NewWorld indexes a ground program for inference. All atoms start false.
func NewWorld(clauses []*GroundClause) *World {
	w := &World{atomID: make(map[string]int)}
	for _, g := range clauses {
		for _, l := range g.Literals {
			k := l.Atom.Key()
			if _, ok := w.atomID[k]; !ok {
				w.atomID[k] = len(w.atoms)
				w.atoms = append(w.atoms, l.Atom)
			}
		}
	}
	w.truth = make([]bool, len(w.atoms))
	w.clauses = clauses
	w.clauseLits = make([][]worldLit, len(clauses))
	w.atomClauses = make([][]int, len(w.atoms))
	for ci, g := range clauses {
		lits := make([]worldLit, len(g.Literals))
		for li, l := range g.Literals {
			id := w.atomID[l.Atom.Key()]
			lits[li] = worldLit{atom: id, negated: l.Negated}
			w.atomClauses[id] = append(w.atomClauses[id], ci)
		}
		w.clauseLits[ci] = lits
	}
	return w
}

// NumAtoms returns the number of distinct ground atoms.
func (w *World) NumAtoms() int { return len(w.atoms) }

// AtomID returns the dense id of a ground atom, or -1.
func (w *World) AtomID(a Atom) int {
	if id, ok := w.atomID[a.Key()]; ok {
		return id
	}
	return -1
}

// Atom returns the atom with the given id.
func (w *World) Atom(id int) Atom { return w.atoms[id] }

// Truth returns the current assignment of atom id.
func (w *World) Truth(id int) bool { return w.truth[id] }

// Set assigns atom id.
func (w *World) Set(id int, v bool) { w.truth[id] = v }

// SetByAtom assigns a ground atom by value; unknown atoms are an error.
func (w *World) SetByAtom(a Atom, v bool) error {
	id := w.AtomID(a)
	if id < 0 {
		return fmt.Errorf("mln: atom %s not in world", a)
	}
	w.truth[id] = v
	return nil
}

// clauseSatisfied evaluates clause ci under the current assignment.
func (w *World) clauseSatisfied(ci int) bool {
	for _, l := range w.clauseLits[ci] {
		if w.truth[l.atom] != l.negated {
			return true
		}
	}
	return false
}

// SatisfiedWeight returns Σ wᵢ·nᵢ(x): the sum of weights of satisfied ground
// clauses (each weighted by its Count), i.e. the log of the unnormalized
// probability of the current world (Eq. 2).
func (w *World) SatisfiedWeight() float64 {
	var sum float64
	for ci, g := range w.clauses {
		if w.clauseSatisfied(ci) {
			sum += g.Weight * float64(g.Count)
		}
	}
	return sum
}

// LogProb returns ln Pr(x) up to the constant −ln Z (Eq. 3): the satisfied
// weight of the world.
func (w *World) LogProb() float64 { return w.SatisfiedWeight() }

// GibbsOptions configures marginal inference.
type GibbsOptions struct {
	// Burnin samples discarded before collecting (default 100).
	Burnin int
	// Samples collected after burn-in (default 1000).
	Samples int
}

func (o GibbsOptions) withDefaults() GibbsOptions {
	if o.Burnin <= 0 {
		o.Burnin = 100
	}
	if o.Samples <= 0 {
		o.Samples = 1000
	}
	return o
}

// Gibbs estimates the marginal probability of each query atom being true,
// holding evidence atoms fixed. evidence maps atom ids to fixed values;
// query lists the free atom ids. Returns P(true) per query atom in order.
func (w *World) Gibbs(query []int, evidence map[int]bool, rng *rand.Rand, opts GibbsOptions) []float64 {
	o := opts.withDefaults()
	for id, v := range evidence {
		w.truth[id] = v
	}
	free := make([]int, 0, len(query))
	for _, q := range query {
		if _, fixed := evidence[q]; !fixed {
			free = append(free, q)
		}
	}
	// Randomize initial state of free atoms.
	for _, id := range free {
		w.truth[id] = rng.Intn(2) == 0
	}
	counts := make(map[int]int, len(query))
	sweep := func(collect bool) {
		for _, id := range free {
			// P(a=true | rest) ∝ exp(weight with a=true); compare both.
			w.truth[id] = true
			wTrue := w.localWeight(id)
			w.truth[id] = false
			wFalse := w.localWeight(id)
			p := 1 / (1 + math.Exp(wFalse-wTrue))
			w.truth[id] = rng.Float64() < p
		}
		if collect {
			for _, q := range query {
				if w.truth[q] {
					counts[q]++
				}
			}
		}
	}
	for i := 0; i < o.Burnin; i++ {
		sweep(false)
	}
	for i := 0; i < o.Samples; i++ {
		sweep(true)
	}
	out := make([]float64, len(query))
	for i, q := range query {
		if _, fixed := evidence[q]; fixed {
			if w.truth[q] {
				out[i] = 1
			}
			continue
		}
		out[i] = float64(counts[q]) / float64(o.Samples)
	}
	return out
}

// localWeight sums the weights of satisfied clauses touching atom id —
// sufficient for the Gibbs conditional because clauses not mentioning the
// atom contribute equally to both states.
func (w *World) localWeight(id int) float64 {
	var sum float64
	for _, ci := range w.atomClauses[id] {
		if w.clauseSatisfied(ci) {
			sum += w.clauses[ci].Weight * float64(w.clauses[ci].Count)
		}
	}
	return sum
}

// MaxWalkSATOptions configures MAP inference.
type MaxWalkSATOptions struct {
	// MaxFlips bounds the local-search moves (default 10000).
	MaxFlips int
	// NoiseP is the probability of a random walk move (default 0.1).
	NoiseP float64
	// Tries is the number of random restarts (default 3).
	Tries int
}

func (o MaxWalkSATOptions) withDefaults() MaxWalkSATOptions {
	if o.MaxFlips <= 0 {
		o.MaxFlips = 10000
	}
	if o.NoiseP <= 0 {
		o.NoiseP = 0.1
	}
	if o.Tries <= 0 {
		o.Tries = 3
	}
	return o
}

// MaxWalkSAT searches for a high-weight assignment of the free atoms (MAP
// state), holding evidence fixed. Returns the best satisfied weight found;
// the world is left in the best state.
func (w *World) MaxWalkSAT(evidence map[int]bool, rng *rand.Rand, opts MaxWalkSATOptions) float64 {
	o := opts.withDefaults()
	var free []int
	for id := range w.truth {
		if _, fixed := evidence[id]; !fixed {
			free = append(free, id)
		}
	}
	for id, v := range evidence {
		w.truth[id] = v
	}
	best := make([]bool, len(w.truth))
	bestW := math.Inf(-1)
	for try := 0; try < o.Tries; try++ {
		for _, id := range free {
			w.truth[id] = rng.Intn(2) == 0
		}
		cur := w.SatisfiedWeight()
		if cur > bestW {
			bestW = cur
			copy(best, w.truth)
		}
		if len(free) == 0 {
			break
		}
		for flip := 0; flip < o.MaxFlips; flip++ {
			var id int
			if rng.Float64() < o.NoiseP {
				id = free[rng.Intn(len(free))]
			} else {
				// Greedy: pick the free atom whose flip gains the most.
				bestGain := math.Inf(-1)
				id = free[0]
				// Sample a few candidates to keep per-flip cost bounded.
				for k := 0; k < 8; k++ {
					cand := free[rng.Intn(len(free))]
					g := w.flipGain(cand)
					if g > bestGain {
						bestGain = g
						id = cand
					}
				}
			}
			cur += w.flipGain(id)
			w.truth[id] = !w.truth[id]
			if cur > bestW {
				bestW = cur
				copy(best, w.truth)
			}
		}
	}
	copy(w.truth, best)
	return bestW
}

// flipGain computes the change in satisfied weight if atom id were flipped.
func (w *World) flipGain(id int) float64 {
	before := w.localWeight(id)
	w.truth[id] = !w.truth[id]
	after := w.localWeight(id)
	w.truth[id] = !w.truth[id]
	return after - before
}
