package mln

import (
	"fmt"
	"math"
	"math/rand"
)

// World is a truth assignment over the ground atoms of a ground program.
// Atoms are addressed by dense integer ids assigned by NewWorld.
//
// The world maintains per-clause satisfied-literal counts and a running
// satisfied-weight sum ("make/break" bookkeeping from the WalkSAT
// literature): flipping an atom updates only the clauses touching it, in
// O(1) per clause, so flip gains, Gibbs conditionals, and SatisfiedWeight
// never rescan clause literals.
type World struct {
	store *Store
	// storeAtom maps world atom id → store atom id; s2w is the inverse
	// (−1 for store atoms outside this world).
	storeAtom []int32
	s2w       []int32
	truth     []bool
	// clauseW caches Weight·Count per clause.
	clauseW []float64
	// clauseLits[c] lists (atomID, negated) pairs for clause c.
	clauseLits [][]worldLit
	// satLits[c] counts clause c's currently-true literals.
	satLits []int32
	// totalSat is the maintained Σ wᵢ·nᵢ(x) over satisfied clauses.
	totalSat float64
	// Occurrence lists aggregate, per clause touching an atom, how many
	// positive and negated occurrences of it the clause holds — everything a
	// flip needs. Flattened: atom a's entries are
	// occFlat[occStart[a]:occStart[a+1]], contiguous for cache locality.
	occFlat  []atomOcc
	occStart []int32

	// Scratch reused across Gibbs/MaxWalkSAT calls.
	freeScratch  []int
	countScratch []int
}

type worldLit struct {
	atom    int32
	negated bool
}

type atomOcc struct {
	clause   int32
	pos, neg int32
}

// sharedStore returns the store all clauses carry dense literal codes for,
// or nil if the clauses were not store-ground (hand-built literals).
func sharedStore(clauses []*GroundClause) *Store {
	if len(clauses) == 0 {
		return nil
	}
	s := clauses[0].store
	if s == nil {
		return nil
	}
	for _, g := range clauses {
		if g.store != s || g.lits == nil {
			return nil
		}
	}
	return s
}

// NewWorld indexes a ground program for inference. All atoms start false.
// Clauses ground through one Store are indexed via their dense literal codes
// with no string hashing; hand-built clauses are interned on the fly.
func NewWorld(clauses []*GroundClause) *World {
	w := &World{}
	s := sharedStore(clauses)
	codes := make([][]int32, len(clauses))
	if s != nil {
		for ci, g := range clauses {
			codes[ci] = g.lits
		}
	} else {
		s = NewStore()
		for ci, g := range clauses {
			cs := make([]int32, len(g.Literals))
			for li, l := range g.Literals {
				code := s.InternAtom(l.Atom) << 1
				if l.Negated {
					code |= 1
				}
				cs[li] = code
			}
			codes[ci] = cs
		}
	}
	w.store = s
	w.s2w = make([]int32, s.NumAtoms())
	for i := range w.s2w {
		w.s2w[i] = -1
	}
	for _, cs := range codes {
		for _, code := range cs {
			sa := code >> 1
			if w.s2w[sa] < 0 {
				w.s2w[sa] = int32(len(w.storeAtom))
				w.storeAtom = append(w.storeAtom, sa)
			}
		}
	}
	n := len(w.storeAtom)
	w.truth = make([]bool, n)
	w.clauseW = make([]float64, len(clauses))
	w.clauseLits = make([][]worldLit, len(clauses))
	w.satLits = make([]int32, len(clauses))
	occs := make([][]atomOcc, n)
	totalOccs := 0
	for ci, cs := range codes {
		g := clauses[ci]
		w.clauseW[ci] = g.Weight * float64(g.Count)
		lits := make([]worldLit, len(cs))
		for li, code := range cs {
			a := w.s2w[code>>1]
			neg := code&1 == 1
			lits[li] = worldLit{atom: a, negated: neg}
			// Aggregate per-(atom, clause) occurrence counts. Literals of one
			// clause are processed together, so the clause's entry, if any,
			// is the last one appended for this atom.
			os := occs[a]
			if k := len(os) - 1; k >= 0 && os[k].clause == int32(ci) {
				if neg {
					os[k].neg++
				} else {
					os[k].pos++
				}
			} else {
				o := atomOcc{clause: int32(ci)}
				if neg {
					o.neg = 1
				} else {
					o.pos = 1
				}
				occs[a] = append(os, o)
				totalOccs++
			}
		}
		w.clauseLits[ci] = lits
	}
	w.occFlat = make([]atomOcc, 0, totalOccs)
	w.occStart = make([]int32, n+1)
	for a, os := range occs {
		w.occStart[a] = int32(len(w.occFlat))
		w.occFlat = append(w.occFlat, os...)
	}
	w.occStart[n] = int32(len(w.occFlat))
	w.recount()
	return w
}

// recount rebuilds the satisfied-literal counters and running weight from
// the current truth assignment in one pass over all literals. Used at
// construction and after bulk truth rewrites; incremental flips keep the
// counters exact in between.
func (w *World) recount() {
	w.totalSat = 0
	for ci, lits := range w.clauseLits {
		var n int32
		for _, l := range lits {
			if w.truth[l.atom] != l.negated {
				n++
			}
		}
		w.satLits[ci] = n
		if n > 0 {
			w.totalSat += w.clauseW[ci]
		}
	}
}

// flip toggles atom id, updating counters in O(clauses touching id).
func (w *World) flip(id int) {
	t := w.truth[id]
	for _, o := range w.occFlat[w.occStart[id]:w.occStart[id+1]] {
		d := o.pos - o.neg // Δ satisfied literals when id goes false→true
		if t {
			d = -d
		}
		s := w.satLits[o.clause]
		ns := s + d
		w.satLits[o.clause] = ns
		if s == 0 {
			if ns > 0 {
				w.totalSat += w.clauseW[o.clause]
			}
		} else if ns == 0 {
			w.totalSat -= w.clauseW[o.clause]
		}
	}
	w.truth[id] = !t
}

// flipGain computes the change in satisfied weight if atom id were flipped,
// without mutating anything.
func (w *World) flipGain(id int) float64 {
	t := w.truth[id]
	var gain float64
	for _, o := range w.occFlat[w.occStart[id]:w.occStart[id+1]] {
		d := o.pos - o.neg
		if t {
			d = -d
		}
		s := w.satLits[o.clause]
		if s == 0 {
			if s+d > 0 {
				gain += w.clauseW[o.clause]
			}
		} else if s+d == 0 {
			gain -= w.clauseW[o.clause]
		}
	}
	return gain
}

// NumAtoms returns the number of distinct ground atoms.
func (w *World) NumAtoms() int { return len(w.storeAtom) }

// AtomID returns the dense id of a ground atom, or -1.
func (w *World) AtomID(a Atom) int {
	sa := w.store.LookupAtom(a)
	if sa < 0 || int(sa) >= len(w.s2w) {
		return -1
	}
	if id := w.s2w[sa]; id >= 0 {
		return int(id)
	}
	return -1
}

// Atom returns the atom with the given id.
func (w *World) Atom(id int) Atom { return w.store.AtomAt(w.storeAtom[id]) }

// Truth returns the current assignment of atom id.
func (w *World) Truth(id int) bool { return w.truth[id] }

// Set assigns atom id, keeping the incremental counters exact.
func (w *World) Set(id int, v bool) {
	if w.truth[id] != v {
		w.flip(id)
	}
}

// SetByAtom assigns a ground atom by value; unknown atoms are an error.
func (w *World) SetByAtom(a Atom, v bool) error {
	id := w.AtomID(a)
	if id < 0 {
		return fmt.Errorf("mln: atom %s not in world", a)
	}
	w.Set(id, v)
	return nil
}

// SatisfiedWeight returns Σ wᵢ·nᵢ(x): the sum of weights of satisfied ground
// clauses (each weighted by its Count), i.e. the log of the unnormalized
// probability of the current world (Eq. 2). O(1): the sum is maintained
// incrementally across flips.
func (w *World) SatisfiedWeight() float64 { return w.totalSat }

// LogProb returns ln Pr(x) up to the constant −ln Z (Eq. 3): the satisfied
// weight of the world.
func (w *World) LogProb() float64 { return w.SatisfiedWeight() }

// GibbsOptions configures marginal inference.
type GibbsOptions struct {
	// Burnin samples discarded before collecting (default 100).
	Burnin int
	// Samples collected after burn-in (default 1000).
	Samples int
}

func (o GibbsOptions) withDefaults() GibbsOptions {
	if o.Burnin <= 0 {
		o.Burnin = 100
	}
	if o.Samples <= 0 {
		o.Samples = 1000
	}
	return o
}

// Gibbs estimates the marginal probability of each query atom being true,
// holding evidence atoms fixed. evidence maps atom ids to fixed values;
// query lists the free atom ids. Returns P(true) per query atom in order.
func (w *World) Gibbs(query []int, evidence map[int]bool, rng *rand.Rand, opts GibbsOptions) []float64 {
	o := opts.withDefaults()
	for id, v := range evidence {
		w.Set(id, v)
	}
	free := w.freeScratch[:0]
	for _, q := range query {
		if _, fixed := evidence[q]; !fixed {
			free = append(free, q)
		}
	}
	w.freeScratch = free
	// Randomize initial state of free atoms.
	for _, id := range free {
		w.Set(id, rng.Intn(2) == 0)
	}
	counts := w.countScratch
	if cap(counts) < len(w.truth) {
		counts = make([]int, len(w.truth))
		w.countScratch = counts
	} else {
		counts = counts[:len(w.truth)]
		clear(counts)
	}
	sweep := func(collect bool) {
		for _, id := range free {
			// P(a=true | rest) is the logistic of the weight delta between
			// the two states — one incremental gain evaluation.
			delta := w.flipGain(id)
			if w.truth[id] {
				delta = -delta
			}
			p := 1 / (1 + math.Exp(-delta))
			w.Set(id, rng.Float64() < p)
		}
		if collect {
			for _, q := range query {
				if w.truth[q] {
					counts[q]++
				}
			}
		}
	}
	for i := 0; i < o.Burnin; i++ {
		sweep(false)
	}
	for i := 0; i < o.Samples; i++ {
		sweep(true)
	}
	out := make([]float64, len(query))
	for i, q := range query {
		if _, fixed := evidence[q]; fixed {
			if w.truth[q] {
				out[i] = 1
			}
			continue
		}
		out[i] = float64(counts[q]) / float64(o.Samples)
	}
	return out
}

// MaxWalkSATOptions configures MAP inference.
type MaxWalkSATOptions struct {
	// MaxFlips bounds the local-search moves (default 10000).
	MaxFlips int
	// NoiseP is the probability of a random walk move (default 0.1).
	NoiseP float64
	// Tries is the number of random restarts (default 3).
	Tries int
}

func (o MaxWalkSATOptions) withDefaults() MaxWalkSATOptions {
	if o.MaxFlips <= 0 {
		o.MaxFlips = 10000
	}
	if o.NoiseP <= 0 {
		o.NoiseP = 0.1
	}
	if o.Tries <= 0 {
		o.Tries = 3
	}
	return o
}

// MaxWalkSAT searches for a high-weight assignment of the free atoms (MAP
// state), holding evidence fixed. Returns the best satisfied weight found;
// the world is left in the best state.
func (w *World) MaxWalkSAT(evidence map[int]bool, rng *rand.Rand, opts MaxWalkSATOptions) float64 {
	o := opts.withDefaults()
	free := w.freeScratch[:0]
	for id := range w.truth {
		if _, fixed := evidence[id]; !fixed {
			free = append(free, id)
		}
	}
	w.freeScratch = free
	for id, v := range evidence {
		w.Set(id, v)
	}
	best := make([]bool, len(w.truth))
	bestW := math.Inf(-1)
	for try := 0; try < o.Tries; try++ {
		for _, id := range free {
			w.Set(id, rng.Intn(2) == 0)
		}
		cur := w.totalSat
		if cur > bestW {
			bestW = cur
			copy(best, w.truth)
		}
		if len(free) == 0 {
			break
		}
		for flip := 0; flip < o.MaxFlips; flip++ {
			var id int
			gain := math.Inf(-1)
			if rng.Float64() < o.NoiseP {
				id = free[rng.Intn(len(free))]
				gain = w.flipGain(id)
			} else {
				// Greedy: pick the free atom whose flip gains the most.
				id = free[0]
				// Sample a few candidates to keep per-flip cost bounded.
				for k := 0; k < 8; k++ {
					cand := free[rng.Intn(len(free))]
					if g := w.flipGain(cand); g > gain {
						gain = g
						id = cand
					}
				}
				if math.IsInf(gain, -1) {
					gain = w.flipGain(id)
				}
			}
			cur += gain
			w.flip(id)
			if cur > bestW {
				bestW = cur
				copy(best, w.truth)
			}
		}
	}
	copy(w.truth, best)
	w.recount()
	return bestW
}
