package core

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// TestDedupSeparatorCollision: two DISTINCT rows whose full-row joined keys
// collide (a value contains the 0x1f separator) must both survive duplicate
// elimination, while true duplicates are still removed. The string-keyed
// dedup conflated the former; row identity is an interned sequence now.
func TestDedupSeparatorCollision(t *testing.T) {
	sep := "\x1f"
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x"+sep+"y", "z") // joins like the next row
	tb.MustAppend("x", "y"+sep+"z")
	tb.MustAppend("x", "y"+sep+"z") // a true duplicate of row 1
	rs := rules.MustParseStrings("FD: A -> B")
	res, err := Clean(tb, rs, Options{Tau: 0, TauSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean.Len() != 2 {
		t.Fatalf("clean rows = %d, want 2 (collision row kept, true duplicate removed)", res.Clean.Len())
	}
	if len(res.Duplicates) != 1 || len(res.Duplicates[0]) != 2 {
		t.Errorf("duplicate sets = %v, want exactly the true duplicate pair", res.Duplicates)
	}
	if res.Stats.DuplicatesRemoved != 1 {
		t.Errorf("DuplicatesRemoved = %d, want 1", res.Stats.DuplicatesRemoved)
	}
}
