package core

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// paperTable builds Table 1 of the paper: the six-tuple hospital sample.
func paperTable(t *testing.T) *dataset.Table {
	t.Helper()
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701") // t1
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")   // t2: typo CT
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")   // t3: replacement CT, typo-ish PN
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")     // t4: error ST
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")     // t5
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")     // t6
	return tb
}

// paperRules builds r1 (FD), r2 (DC), r3 (CFD) of Example 1.
func paperRules(t *testing.T) []*rules.Rule {
	t.Helper()
	rs, err := rules.ParseStrings(
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	)
	if err != nil {
		t.Fatalf("parsing paper rules: %v", err)
	}
	return rs
}

// TestPaperIndexShape checks Fig. 2: blocks B1..B3 with 3, 3, 2 groups.
func TestPaperIndexShape(t *testing.T) {
	tb := paperTable(t)
	rs := paperRules(t)
	ix, err := index.Build(tb, rs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(ix.Blocks); got != 3 {
		t.Fatalf("blocks = %d, want 3", got)
	}
	wantGroups := []int{3, 3, 2}
	for i, b := range ix.Blocks {
		if got := len(b.Groups); got != wantGroups[i] {
			t.Errorf("block B%d groups = %d, want %d", i+1, got, wantGroups[i])
		}
	}
	// B3 (CFD) must exclude t1, t2 (HN=ALABAMA matches no constant).
	b3 := ix.Blocks[2]
	for _, g := range b3.Groups {
		for _, p := range g.Pieces {
			for _, id := range p.TupleIDs {
				if id == 0 || id == 1 {
					t.Errorf("tuple t%d should not be in CFD block B3", id+1)
				}
			}
		}
	}
}

// TestPaperAGP checks §5.1.1: with τ=1 groups G12, G22, G31 are abnormal
// and merge into G11, G23, G32 respectively.
func TestPaperAGP(t *testing.T) {
	tb := paperTable(t)
	rs := paperRules(t)
	tr := &Trace{}
	_, err := Clean(tb, rs, Options{Tau: 1, Trace: tr})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if got := len(tr.AGP); got != 3 {
		t.Fatalf("AGP merges = %d, want 3; trace: %+v", got, tr.AGP)
	}
	wantTargets := map[string]string{
		dataset.JoinKey([]string{"DOTH"}):            dataset.JoinKey([]string{"DOTHAN"}),
		dataset.JoinKey([]string{"2567638410"}):      dataset.JoinKey([]string{"2567688400"}),
		dataset.JoinKey([]string{"ELIZA", "DOTHAN"}): dataset.JoinKey([]string{"ELIZA", "BOAZ"}),
	}
	for _, m := range tr.AGP {
		want, ok := wantTargets[m.SourceKey]
		if !ok {
			t.Errorf("unexpected abnormal group %q (rule %s)", m.SourceKey, m.RuleID)
			continue
		}
		if m.TargetKey != want {
			t.Errorf("abnormal group %q merged into %q, want %q", m.SourceKey, m.TargetKey, want)
		}
	}
}

// TestPaperCleanEndToEnd checks Examples 2–3 and §5.2: the final dataset is
// the two clean entities, duplicates removed.
func TestPaperCleanEndToEnd(t *testing.T) {
	tb := paperTable(t)
	rs := paperRules(t)
	res, err := Clean(tb, rs, Options{Tau: 1})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}

	// Before dedup every tuple must be fully repaired.
	want := [][]string{
		{"ALABAMA", "DOTHAN", "AL", "3347938701"},
		{"ALABAMA", "DOTHAN", "AL", "3347938701"},
		{"ELIZA", "BOAZ", "AL", "2567688400"},
		{"ELIZA", "BOAZ", "AL", "2567688400"},
		{"ELIZA", "BOAZ", "AL", "2567688400"},
		{"ELIZA", "BOAZ", "AL", "2567688400"},
	}
	for i, t2 := range res.Repaired.Tuples {
		for j, v := range t2.Values {
			if v != want[i][j] {
				t.Errorf("repaired t%d.[%s] = %q, want %q", i+1, res.Repaired.Schema.Attr(j), v, want[i][j])
			}
		}
	}

	// Dedup: t1,t2 collapse; t3..t6 collapse → 2 tuples.
	if got := res.Clean.Len(); got != 2 {
		t.Fatalf("clean tuples = %d, want 2\n%s", got, res.Clean)
	}
	if res.Stats.DuplicatesRemoved != 4 {
		t.Errorf("duplicates removed = %d, want 4", res.Stats.DuplicatesRemoved)
	}
}

// TestPaperT3Fusion checks Example 3 specifically: t3's fusion resolves the
// CT conflict (DOTHAN from B1 vs BOAZ from B3) in favour of BOAZ via the
// replacement piece {CT: BOAZ, ST: AL} from B1.
func TestPaperT3Fusion(t *testing.T) {
	tb := paperTable(t)
	rs := paperRules(t)
	tr := &Trace{}
	res, err := Clean(tb, rs, Options{Tau: 1, Trace: tr})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	t3 := res.Repaired.Tuples[2]
	wantVals := map[string]string{"HN": "ELIZA", "CT": "BOAZ", "ST": "AL", "PN": "2567688400"}
	for attr, want := range wantVals {
		if got := res.Repaired.Cell(t3, attr); got != want {
			t.Errorf("t3.[%s] = %q, want %q", attr, got, want)
		}
	}
	// The fusion trace must have detected the CT conflict for t3.
	var saw bool
	for _, f := range tr.FSCR {
		if f.TupleID != 2 {
			continue
		}
		for _, a := range f.ConflictAttrs {
			if a == "CT" {
				saw = true
			}
		}
		if f.Failed {
			t.Errorf("t3 fusion failed unexpectedly")
		}
	}
	if !saw {
		t.Errorf("expected a detected CT conflict for t3; trace: %+v", tr.FSCR)
	}
}

// TestPaperWeightOrdering checks Example 2's conclusion: within group
// G13 = {BOAZ → {AL, AK}}, the piece {BOAZ, AL} (2 tuples) must win over
// {BOAZ, AK} (1 tuple).
func TestPaperWeightOrdering(t *testing.T) {
	tb := paperTable(t)
	rs := paperRules(t)
	tr := &Trace{}
	_, err := Clean(tb, rs, Options{Tau: 1, Trace: tr})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	found := false
	for _, r := range tr.RSC {
		if r.RuleID == "r1" && r.GroupKey == dataset.JoinKey([]string{"BOAZ"}) {
			found = true
			if r.New[1] != "AL" {
				t.Errorf("G13 winner ST = %q, want AL (repair %+v)", r.New[1], r)
			}
			if r.Old[1] != "AK" {
				t.Errorf("G13 loser ST = %q, want AK", r.Old[1])
			}
		}
	}
	if !found {
		t.Fatalf("no RSC repair recorded for group BOAZ in r1; trace: %+v", tr.RSC)
	}
}
