package core

import (
	"math"
	"sort"

	"mlnclean/internal/distance"
	"mlnclean/internal/index"
)

// rsc runs reliability-score cleaning (§5.1.2) on every group of the block:
// within a group holding several pieces, the piece with the highest
// reliability score
//
//	r-score(γi) = min_{γ⋆ ∈ G−{γi}} dist(γi, γ⋆) × wᵢ
//	dist(γi, γ⋆) = n(γi)·d(γi, γ⋆) / Z,  Z = max over ordered pairs of n·d
//
// is declared clean and every other piece is rewritten to it, so each group
// ends with exactly one piece. Ties break by higher weight, then higher
// count, then ascending key. Pairwise distances run over interned value IDs
// through the block's evaluator (memoized, symmetric). Returns the number
// of pieces rewritten.
func rsc(blockIdx int, b *index.Block, ev *distance.Evaluator, tr *Trace) int {
	repairs := 0
	for _, g := range b.Groups {
		if len(g.Pieces) <= 1 {
			continue // ideal state: one and only one γ (§5.1.2)
		}
		winner := rscWinner(g, ev)
		// Rewrite all losing pieces to the winner.
		for _, p := range g.Pieces {
			if p == winner {
				continue
			}
			repairs++
			tr.addRSC(RSCRepair{
				BlockIndex: blockIdx,
				RuleID:     b.Rule.ID,
				GroupKey:   g.Key,
				Attrs:      b.Rule.Attrs(),
				Old:        p.Values(),
				New:        winner.Values(),
				Tuples:     append([]int{}, p.TupleIDs...),
			})
			winner.TupleIDs = append(winner.TupleIDs, p.TupleIDs...)
		}
		sort.Ints(winner.TupleIDs)
		g.Pieces = []*index.Piece{winner}
	}
	return repairs
}

// rscWinner computes reliability scores and returns the winning piece.
func rscWinner(g *index.Group, ev *distance.Evaluator) *index.Piece {
	n := len(g.Pieces)
	// Pairwise raw distances over value IDs.
	d := make([][]float64, n)
	vals := make([][]uint32, n)
	for i, p := range g.Pieces {
		vals[i] = p.ValueIDs()
	}
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := ev.Values(vals[i], vals[j])
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	// Z normalizes n(γ)·d into [0,1] across the group's ordered pairs.
	var z float64
	for i, p := range g.Pieces {
		ni := float64(p.Count())
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if v := ni * d[i][j]; v > z {
				z = v
			}
		}
	}
	var winner *index.Piece
	bestScore := math.Inf(-1)
	for i, p := range g.Pieces {
		minDist := math.Inf(1)
		ni := float64(p.Count())
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dist := 0.0
			if z > 0 {
				dist = ni * d[i][j] / z
			}
			if dist < minDist {
				minDist = dist
			}
		}
		score := minDist * p.Weight
		if winner == nil || score > bestScore ||
			(score == bestScore && betterTie(p, winner)) {
			bestScore = score
			winner = p
		}
	}
	return winner
}

// betterTie breaks r-score ties: higher weight, then higher support count,
// then ascending key (full determinism).
func betterTie(p, cur *index.Piece) bool {
	if p.Weight != cur.Weight {
		return p.Weight > cur.Weight
	}
	if p.Count() != cur.Count() {
		return p.Count() > cur.Count()
	}
	return p.Key() < cur.Key()
}
