package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// --- forEachBlock worker pool -------------------------------------------

func poolIndex(t *testing.T, blocks int) *index.Index {
	t.Helper()
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "2")
	rs := make([]*rules.Rule, blocks)
	for i := range rs {
		rs[i] = rules.MustParseStrings("FD: A -> B")[0]
	}
	ix, err := index.Build(tb, rs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

// TestForEachBlockVisitsAll: the bounded pool must visit every block
// exactly once regardless of the parallelism setting.
func TestForEachBlockVisitsAll(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		ix := poolIndex(t, 9)
		visited := make([]int, len(ix.Blocks))
		err := forEachBlock(context.Background(), ix, Options{Parallelism: par}, func(bi int, b *index.Block) error {
			visited[bi]++ // distinct bi per call; each index written once
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for bi, n := range visited {
			if n != 1 {
				t.Errorf("par=%d: block %d visited %d times", par, bi, n)
			}
		}
	}
}

// TestForEachBlockFirstErrorWins: when several blocks fail, the error
// reported is the one with the lowest block index — independent of the
// scheduling order the pool ran them in.
func TestForEachBlockFirstErrorWins(t *testing.T) {
	ix := poolIndex(t, 16)
	for _, par := range []int{1, 4} {
		err := forEachBlock(context.Background(), ix, Options{Parallelism: par}, func(bi int, b *index.Block) error {
			if bi >= 3 {
				return fmt.Errorf("block %d failed", bi)
			}
			return nil
		})
		if err == nil || err.Error() != "block 3 failed" {
			t.Errorf("par=%d: err = %v, want block 3's error", par, err)
		}
	}
}

// TestForEachBlockCancelSkips: blocks not yet started when the context is
// cancelled are skipped, and the stage reports the context error.
func TestForEachBlockCancelSkips(t *testing.T) {
	ix := poolIndex(t, 32)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := forEachBlock(ctx, ix, Options{Parallelism: 1}, func(bi int, b *index.Block) error {
		ran++
		if ran == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= len(ix.Blocks) {
		t.Errorf("ran all %d blocks despite cancellation", ran)
	}
}

// --- AGP promotion trace + stats ----------------------------------------

// TestAGPPromotionTraced: a block where every group is abnormal promotes
// its largest group, and the promotion is visible both in Stats and as a
// Promoted trace entry naming the promoted group.
func TestAGPPromotionTraced(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("CT", "ST"))
	// Three groups of ≤2 tuples each; τ=2 makes all of them abnormal.
	tb.MustAppend("DOTHAN", "AL")
	tb.MustAppend("DOTHAN", "AL")
	tb.MustAppend("DOTHAM", "AL")
	tb.MustAppend("BOAZ", "AK")
	rs := rules.MustParseStrings("FD: CT -> ST")

	tr := &Trace{}
	res, err := Clean(tb, rs, Options{Tau: 2, TauSet: true, Trace: tr})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if res.Stats.AGPPromotions != 1 {
		t.Fatalf("AGPPromotions = %d, want 1", res.Stats.AGPPromotions)
	}
	var promo *AGPMerge
	detected := 0
	for i := range tr.AGP {
		if tr.AGP[i].Promoted {
			promo = &tr.AGP[i]
		} else {
			detected++
		}
	}
	if promo == nil {
		t.Fatal("no Promoted entry in trace")
	}
	if promo.SourceKey != "DOTHAN" {
		t.Errorf("promoted group = %q, want DOTHAN (largest)", promo.SourceKey)
	}
	if promo.TargetKey != "" {
		t.Errorf("promotion must have no merge target, got %q", promo.TargetKey)
	}
	if detected != res.Stats.AbnormalGroups {
		t.Errorf("trace holds %d detections, stats says %d — promotions must not count as detections",
			detected, res.Stats.AbnormalGroups)
	}
}

// TestAGPNoPromotionOnNormalBlocks: with a normal group present the counter
// stays zero (the parity suite depends on this staying zero on its
// workloads).
func TestAGPNoPromotionOnNormalBlocks(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("CT", "ST"))
	for i := 0; i < 5; i++ {
		tb.MustAppend("DOTHAN", "AL")
	}
	tb.MustAppend("BOAZ", "AK")
	res, err := Clean(tb, rules.MustParseStrings("FD: CT -> ST"), Options{Tau: 1, TauSet: true})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if res.Stats.AGPPromotions != 0 {
		t.Errorf("AGPPromotions = %d, want 0", res.Stats.AGPPromotions)
	}
}

// --- rscWinner degenerate Z ---------------------------------------------

// TestRSCWinnerZeroZ: when every pairwise distance in a group is zero, Z is
// zero and all reliability scores collapse to 0 — the winner must then fall
// to the deterministic tie-break (higher weight first), not to slice order.
func TestRSCWinnerZeroZ(t *testing.T) {
	d := intern.NewDict()
	r := rules.MustParseStrings("FD: CT -> ST")[0]
	// Identical values → all pairwise distances are 0 → z == 0.
	mk := func(id int, w float64) *index.Piece {
		p := index.NewPiece(r, d, []string{"BOAZ"}, []string{"AL"})
		p.TupleIDs = []int{id}
		p.Weight = w
		return p
	}
	heavy := mk(1, 2.5)
	light := mk(2, 1.0)
	g := &index.Group{Key: "BOAZ", Pieces: []*index.Piece{light, heavy}}
	ev := distance.NewEvaluator(distance.Levenshtein{}, d)
	if got := rscWinner(g, ev); got != heavy {
		t.Errorf("z==0 winner = %+v, want the higher-weight piece", got)
	}
	// Same outcome with the slice order flipped.
	g.Pieces = []*index.Piece{heavy, light}
	if got := rscWinner(g, ev); got != heavy {
		t.Errorf("z==0 winner after permutation = %+v, want the higher-weight piece", got)
	}
}

// --- permuted-order determinism -----------------------------------------

// permuteIndex shuffles group order within every block and piece order
// within every group — the scan-order degrees of freedom a different block
// build order could produce.
func permuteIndex(ix *index.Index, rng *rand.Rand) {
	for _, b := range ix.Blocks {
		rng.Shuffle(len(b.Groups), func(i, j int) { b.Groups[i], b.Groups[j] = b.Groups[j], b.Groups[i] })
		for _, g := range b.Groups {
			rng.Shuffle(len(g.Pieces), func(i, j int) { g.Pieces[i], g.Pieces[j] = g.Pieces[j], g.Pieces[i] })
		}
	}
}

// TestPermutedOrderDeterminism is the tie-break regression test: stage
// I+II run over a randomly permuted index must produce byte-identical
// repairs to the run over the as-built index. AGP, RSC, and FSCR may only
// depend on group/piece identity, never on slice order.
func TestPermutedOrderDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	cities := []string{"DOTHAN", "DOTHAM", "BOAZ", "BOAS", "MOBILE"}
	states := []string{"AL", "AK", "AI"}
	for i := 0; i < 80; i++ {
		tb.MustAppend(
			fmt.Sprintf("H%d", rng.Intn(6)),
			cities[rng.Intn(len(cities))],
			states[rng.Intn(len(states))],
			fmt.Sprintf("55%03d", rng.Intn(40)),
		)
	}
	rs := rules.MustParseStrings("FD: CT -> ST", "FD: PN, HN -> CT")
	opts := Options{Tau: 2, TauSet: true}.withDefaults()

	run := func(permute bool, seed int64) *dataset.Table {
		ix, err := index.Build(tb, rs)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if permute {
			permuteIndex(ix, rand.New(rand.NewSource(seed)))
		}
		var st Stats
		ctx := context.Background()
		if err := StageAGP(ctx, ix, opts, &st); err != nil {
			t.Fatalf("AGP: %v", err)
		}
		if err := StageLearn(ctx, ix, opts, &st); err != nil {
			t.Fatalf("Learn: %v", err)
		}
		if err := StageRSC(ctx, ix, opts, &st); err != nil {
			t.Fatalf("RSC: %v", err)
		}
		return fscr(tb, ix, opts, &st)
	}

	want := dumpTable(run(false, 0))
	for seed := int64(1); seed <= 4; seed++ {
		if got := dumpTable(run(true, seed)); got != want {
			t.Fatalf("permutation seed %d changed the repairs:\n--- canonical ---\n%s--- permuted ---\n%s", seed, want, got)
		}
	}
}

func dumpTable(tb *dataset.Table) string {
	out := ""
	for _, t := range tb.Tuples {
		out += fmt.Sprintf("%d %v\n", t.ID, t.Values)
	}
	return out
}
