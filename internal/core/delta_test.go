package core

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// The correctness anchor of incremental re-cleaning: after any mutation
// sequence, the DeltaCleaner's result must be byte-identical to a full
// from-scratch Clean of the same table — tables, duplicates, stats, and the
// piece-weight vector repair attribution reads.

// deltaSeeds mirrors the chaos suites' seed knob so CI's chaos job widens
// the randomized mutation grid with CHAOS_SEEDS.
func deltaSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 7}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// carDirty builds a small seeded dirty CAR table.
func carDirty(t *testing.T, rows int, seed int64) (*dataset.Table, []*rules.Rule) {
	t.Helper()
	truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatalf("datagen.CAR: %v", err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.08, ReplacementRatio: 0.5, Seed: seed + 1})
	if err != nil {
		t.Fatalf("errgen.Inject: %v", err)
	}
	return inj.Dirty, rs
}

// refTable materializes a reference table from an id → values map in the
// engine's canonical ascending-ID order.
func refTable(schema *dataset.Schema, rows map[int][]string) *dataset.Table {
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; tiny n
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	tb := dataset.NewTable(schema)
	for _, id := range ids {
		tb.Tuples = append(tb.Tuples, &dataset.Tuple{
			ID:     id,
			Values: append([]string(nil), rows[id]...),
		})
	}
	return tb
}

func tablesEqual(t *testing.T, label string, got, want *dataset.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := got.Tuples[i], want.Tuples[i]
		if g.ID != w.ID || !reflect.DeepEqual(g.Values, w.Values) {
			t.Fatalf("%s: tuple %d: got ID=%d %v, want ID=%d %v", label, i, g.ID, g.Values, w.ID, w.Values)
		}
	}
}

// weightMap keys summaries by rule and piece identity so ordering (which the
// planner may vary on the full run) is irrelevant.
func weightMap(ss []index.PieceSummary) map[string]string {
	m := make(map[string]string, len(ss))
	for _, s := range ss {
		m[s.RuleID+"\x1f"+s.Key] = fmt.Sprintf("%d/%x", s.Count, s.Weight)
	}
	return m
}

func assertParity(t *testing.T, label string, got *Result, gotW []index.PieceSummary, tb *dataset.Table, rs []*rules.Rule, opts Options) {
	t.Helper()
	want, err := Clean(tb, rs, opts)
	if err != nil {
		t.Fatalf("%s: full clean: %v", label, err)
	}
	tablesEqual(t, label+": repaired", got.Repaired, want.Repaired)
	tablesEqual(t, label+": clean", got.Clean, want.Clean)
	if !reflect.DeepEqual(got.Duplicates, want.Duplicates) {
		t.Fatalf("%s: duplicates: got %v, want %v", label, got.Duplicates, want.Duplicates)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats: got %+v, want %+v", label, got.Stats, want.Stats)
	}
	if gotW != nil {
		gw, ww := weightMap(gotW), weightMap(want.Index.PieceSummaries())
		if !reflect.DeepEqual(gw, ww) {
			t.Fatalf("%s: piece weights diverge:\ngot  %v\nwant %v", label, gw, ww)
		}
	}
}

// TestDeltaLoadParity: seeding the engine is itself a full clean.
func TestDeltaLoadParity(t *testing.T) {
	dirty, rs := carDirty(t, 150, 3)
	eng, err := NewDeltaCleaner(dirty.Schema, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Load(dirty)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, "load", res, eng.Weights(), dirty, rs, Options{})
}

// TestDeltaMutationSequenceParity is the randomized anchor: K seeded
// inserts, updates, and deletes applied incrementally, each checked
// byte-identical against a from-scratch full re-clean of the same table.
func TestDeltaMutationSequenceParity(t *testing.T) {
	for _, seed := range deltaSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dirty, rs := carDirty(t, 120, seed)
			schema := dirty.Schema
			eng, err := NewDeltaCleaner(schema, rs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Load(dirty); err != nil {
				t.Fatal(err)
			}

			// Shadow state for the reference full re-clean.
			rows := make(map[int][]string, dirty.Len())
			nextRow := 0
			for _, tp := range dirty.Tuples {
				rows[tp.ID] = append([]string(nil), tp.Values...)
				if tp.ID >= nextRow {
					nextRow = tp.ID + 1
				}
			}
			// Value pool for mutated cells: existing values plus novelties.
			pool := make([]string, 0, 64)
			for _, tp := range dirty.Tuples[:16] {
				pool = append(pool, tp.Values...)
			}

			rng := rand.New(rand.NewSource(seed * 131))
			deleted := []int{}
			liveIDs := func() []int {
				ids := make([]int, 0, len(rows))
				for id := range rows {
					ids = append(ids, id)
				}
				return ids
			}
			pick := func(ids []int) int { return ids[rng.Intn(len(ids))] }
			randVals := func(base []string) []string {
				vals := append([]string(nil), base...)
				col := rng.Intn(schema.Len())
				if rng.Intn(4) == 0 {
					vals[col] = fmt.Sprintf("novel-%d", rng.Intn(50))
				} else {
					vals[col] = pool[rng.Intn(len(pool))]
				}
				return vals
			}

			for step := 0; step < 12; step++ {
				// 1–3 mutations per batch, each kind exercised.
				n := 1 + rng.Intn(3)
				muts := make([]Mutation, 0, n)
				for m := 0; m < n; m++ {
					switch k := rng.Intn(4); {
					case k == 0 && len(rows) > n+1: // delete
						id := pick(liveIDs())
						muts = append(muts, Mutation{Op: DeltaDelete, Row: id})
						delete(rows, id)
						deleted = append(deleted, id)
					case k == 1: // insert (sometimes reviving a deleted ID)
						id := nextRow
						if len(deleted) > 0 && rng.Intn(2) == 0 {
							id = deleted[rng.Intn(len(deleted))]
						} else {
							nextRow++
						}
						vals := randVals(rows[pick(liveIDs())])
						muts = append(muts, Mutation{Op: DeltaPut, Row: id, Values: vals})
						rows[id] = append([]string(nil), vals...)
					default: // update
						id := pick(liveIDs())
						vals := randVals(rows[id])
						muts = append(muts, Mutation{Op: DeltaPut, Row: id, Values: vals})
						rows[id] = append([]string(nil), vals...)
					}
				}
				res, ds, err := eng.Apply(muts)
				if err != nil {
					t.Fatalf("step %d: Apply(%v): %v", step, muts, err)
				}
				if ds.DirtyBlocks+ds.ReusedBlocks != len(rs) {
					t.Fatalf("step %d: blocks don't partition: %+v", step, ds)
				}
				if ds.RefusedTuples+ds.ReusedTuples != eng.Len() {
					t.Fatalf("step %d: tuples don't partition: %+v", step, ds)
				}
				assertParity(t, fmt.Sprintf("step %d", step), res, eng.Weights(),
					refTable(schema, rows), rs, Options{})
			}
		})
	}
}

// TestDeltaReuse pins the point of the tentpole: a single-cell update on an
// attribute only one rule covers rebuilds exactly that rule's block and
// re-fuses only a sliver of the table.
func TestDeltaReuse(t *testing.T) {
	dirty, rs := carDirty(t, 300, 5)
	eng, err := NewDeltaCleaner(dirty.Schema, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(dirty); err != nil {
		t.Fatal(err)
	}
	// "Model" appears in exactly one CAR rule (FD: Model, Type -> Make).
	modelPos := dirty.Schema.MustIndex("Model")
	vals := append([]string(nil), dirty.Tuples[10].Values...)
	vals[modelPos] = "delta-model"
	_, ds, err := eng.Apply([]Mutation{{Op: DeltaPut, Row: dirty.Tuples[10].ID, Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.DirtyBlocks != 1 || ds.ReusedBlocks != len(rs)-1 {
		t.Fatalf("expected exactly one dirty block, got %+v", ds)
	}
	if ds.ReusedTuples == 0 {
		t.Fatalf("expected cached fusion reuse, got %+v", ds)
	}
	if ds.RefusedTuples == 0 {
		t.Fatalf("the mutated tuple itself must re-fuse, got %+v", ds)
	}
}

// TestDeltaValidation: bad batches are rejected atomically, before any state
// changes.
func TestDeltaValidation(t *testing.T) {
	dirty, rs := carDirty(t, 40, 9)
	eng, err := NewDeltaCleaner(dirty.Schema, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(dirty); err != nil {
		t.Fatal(err)
	}
	wide := make([]string, dirty.Schema.Len()+1)
	cases := []struct {
		name string
		muts []Mutation
	}{
		{"empty", nil},
		{"arity", []Mutation{{Op: DeltaPut, Row: 0, Values: wide}}},
		{"negative-row", []Mutation{{Op: DeltaPut, Row: -1, Values: dirty.Tuples[0].Values}}},
		{"delete-unknown", []Mutation{{Op: DeltaDelete, Row: 99999}}},
		{"delete-reinserted-then-unknown", []Mutation{
			{Op: DeltaDelete, Row: dirty.Tuples[0].ID},
			{Op: DeltaDelete, Row: dirty.Tuples[0].ID},
		}},
	}
	for _, tc := range cases {
		if _, _, err := eng.Apply(tc.muts); err == nil {
			t.Errorf("%s: Apply accepted a bad batch", tc.name)
		}
	}
	// Emptying the table is refused even across a mixed batch.
	var all []Mutation
	for _, tp := range dirty.Tuples {
		all = append(all, Mutation{Op: DeltaDelete, Row: tp.ID})
	}
	if _, _, err := eng.Apply(all); err == nil {
		t.Error("Apply drained the table")
	}
	// State unchanged: a no-op-equivalent re-clean still matches.
	if eng.Len() != dirty.Len() {
		t.Fatalf("failed batches mutated state: %d tuples, want %d", eng.Len(), dirty.Len())
	}
}
