package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// The streaming stage-I pipelines: a serial producer pulls blocks from an
// index.BlockIterator (predicate-pushdown scans, postings released as rules
// complete) while a fixed worker set runs the fused per-block phases on each
// block as soon as it exists. Only a bounded window of blocks is ever in
// flight with its full pre-RSC piece set; blocks the workers have finished
// sit compacted in the growing index.
//
// The overlap is race-free by structure: building a block mutates only the
// dictionary's sequence-key tables (group/piece key minting — the producer
// is the only writer), while the stage phases never mint keys — AGP merges
// by comparing existing key IDs, learning touches only weights, and RSC
// rewrites by discarding losing pieces. Workers read only the dictionary's
// value table, which is append-complete before the first block is built.
//
// Output is byte-identical to the materialized three-pass pipeline: blocks
// are built in rule order exactly as BuildConfigured builds them, the
// per-block phases are block-independent, and cross-block evaluator reuse
// only ever returns exact memoized distances (see distance.Pool).

// streamBlocks drains the iterator through a bounded worker set, handing
// each worker a pooled distance evaluator it keeps for its whole lifetime.
// The channel buffer bounds how far the producer runs ahead: at most par
// blocks queued plus par being processed hold their full piece sets. Errors
// are collected per block and the first by block index wins — the same
// reporting order as the materialized stages.
func streamBlocks(ctx context.Context, it *index.BlockIterator, opts Options, fn func(bi int, b *index.Block, ev *distance.Evaluator) error) error {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > it.Len() {
		par = it.Len()
	}
	if par < 1 {
		par = 1
	}
	errs := make([]error, it.Len())
	pool := distance.NewPool(opts.Metric, it.Index().Dict())
	defer recordPoolStats(pool)

	type work struct {
		bi int
		b  *index.Block
	}
	blocks := make(chan work, par)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			ev := pool.Get()
			defer pool.Put(ev)
			for wk := range blocks {
				if err := ctx.Err(); err != nil {
					errs[wk.bi] = err
					mBlocksInFlight.Add(-1)
					continue
				}
				t0 := time.Now()
				errs[wk.bi] = fn(wk.bi, wk.b, ev)
				mBlockSeconds.ObserveSince(t0)
				mBlocksInFlight.Add(-1)
			}
		}()
	}
	for ctx.Err() == nil {
		bi, b, ok := it.Next()
		if !ok {
			break
		}
		mBlocksInFlight.Add(1)
		blocks <- work{bi, b}
	}
	close(blocks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// streamStageI is the default stand-alone stage-I pipeline: blocks stream
// from the iterator through the fused AGP → weight learning → RSC sequence,
// so memory stays bounded by the window of in-flight blocks instead of every
// block's full pre-RSC piece set at once.
func streamStageI(ctx context.Context, dirty *dataset.Table, enc *dataset.Encoded, rs []*rules.Rule, opts Options, st *Stats) (*index.Index, error) {
	it, err := index.NewBlockIterator(dirty, rs, index.BuildConfig{FixedOrder: opts.DisablePlanner, Encoded: enc})
	if err != nil {
		return nil, err
	}
	ix := it.Index()
	// Record why the planner ordered evaluation the way it did; the CLI and
	// /v1/stats surface these lines.
	opts.Trace.SetPlan(ix.Plan().Choices())

	type blockOut struct {
		groups, pieces, promotions int
		learnIters, repairs        int
		agp, learn, rsc            time.Duration
	}
	outs := make([]blockOut, it.Len())
	err = streamBlocks(ctx, it, opts, func(bi int, b *index.Block, ev *distance.Evaluator) error {
		o := &outs[bi]
		t0 := time.Now()
		o.groups, o.pieces, o.promotions = agp(bi, b, opts.Tau, ev, opts.MergeCapRatio, opts.AGPStrategy, nil, opts.Trace)
		t1 := time.Now()
		o.agp = t1.Sub(t0)
		n, err := learnBlockWeights(b, opts.Learn)
		if err != nil {
			return err
		}
		o.learnIters = n
		t2 := time.Now()
		o.learn = t2.Sub(t1)
		o.repairs = rsc(bi, b, ev, opts.Trace)
		o.rsc = time.Since(t2)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var agpTime, learnTime, rscTime time.Duration
	for bi := range outs {
		o := &outs[bi]
		st.AbnormalGroups += o.groups
		st.AbnormalPieces += o.pieces
		st.AGPPromotions += o.promotions
		st.LearnIterations += o.learnIters
		st.RSCRepairs += o.repairs
		mAbnormalGroups.Add(int64(o.groups))
		mAGPPromotions.Add(int64(o.promotions))
		// Every abnormal group is either merged away or promoted in place.
		mAGPMerges.Add(int64(o.groups - o.promotions))
		mLearnIterations.Add(int64(o.learnIters))
		mRSCRewrites.Add(int64(o.repairs))
		agpTime += o.agp
		learnTime += o.learn
		rscTime += o.rsc
	}
	// One observation per stage per clean, as in the materialized pipeline;
	// here the value is the summed per-block time of that phase.
	mStageAGP.ObserveDuration(agpTime)
	mStageLearn.ObserveDuration(learnTime)
	mStageRSC.ObserveDuration(rscTime)
	return ix, nil
}

// StreamAGPLearn is the distributed worker's streaming stage I: index blocks
// are built from the iterator with AGP and (when learn is true) weight
// learning fused per block, and RSC is NOT run — the distributed protocol
// interleaves the Eq. 6 weight merge between learning and RSC, so RSC must
// wait for the merged weights. Output is byte-identical to BuildConfigured
// followed by StageAGP and StageLearn. Block and group counts accumulate
// into st exactly as the materialized stages would leave them.
func StreamAGPLearn(ctx context.Context, dirty *dataset.Table, enc *dataset.Encoded, rs []*rules.Rule, opts Options, st *Stats, learn bool) (*index.Index, error) {
	opts = opts.withDefaults()
	it, err := index.NewBlockIterator(dirty, rs, index.BuildConfig{FixedOrder: opts.DisablePlanner, Encoded: enc})
	if err != nil {
		return nil, err
	}
	ix := it.Index()
	type blockOut struct {
		groups, pieces, promotions int
		learnIters                 int
		agp, learn                 time.Duration
	}
	outs := make([]blockOut, it.Len())
	err = streamBlocks(ctx, it, opts, func(bi int, b *index.Block, ev *distance.Evaluator) error {
		o := &outs[bi]
		t0 := time.Now()
		o.groups, o.pieces, o.promotions = agp(bi, b, opts.Tau, ev, opts.MergeCapRatio, opts.AGPStrategy, nil, opts.Trace)
		t1 := time.Now()
		o.agp = t1.Sub(t0)
		if learn {
			n, err := learnBlockWeights(b, opts.Learn)
			if err != nil {
				return err
			}
			o.learnIters = n
			o.learn = time.Since(t1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var agpTime, learnTime time.Duration
	for bi := range outs {
		o := &outs[bi]
		st.AbnormalGroups += o.groups
		st.AbnormalPieces += o.pieces
		st.AGPPromotions += o.promotions
		st.LearnIterations += o.learnIters
		mAbnormalGroups.Add(int64(o.groups))
		mAGPPromotions.Add(int64(o.promotions))
		mAGPMerges.Add(int64(o.groups - o.promotions))
		mLearnIterations.Add(int64(o.learnIters))
		agpTime += o.agp
		learnTime += o.learn
	}
	mStageAGP.ObserveDuration(agpTime)
	if learn {
		mStageLearn.ObserveDuration(learnTime)
	}
	return ix, nil
}
