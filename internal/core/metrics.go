package core

import (
	"runtime"

	"mlnclean/internal/distance"
	"mlnclean/internal/obs"
)

// Package-level instruments, registered at init so a scrape shows the whole
// core family (zero-valued) before any clean runs. All are process-global:
// concurrent cleans (mlnserve sessions, distributed workers in-process)
// accumulate into the same series, which is what a per-node scrape wants.
var (
	mStageAGP = obs.Default().Histogram("mlnclean_core_stage_seconds",
		"Wall time of one pipeline stage over the whole index.", obs.DefBuckets, obs.L("stage", "agp"))
	mStageLearn = obs.Default().Histogram("mlnclean_core_stage_seconds",
		"", obs.DefBuckets, obs.L("stage", "learn"))
	mStageRSC = obs.Default().Histogram("mlnclean_core_stage_seconds",
		"", obs.DefBuckets, obs.L("stage", "rsc"))
	mStageFSCR = obs.Default().Histogram("mlnclean_core_stage_seconds",
		"", obs.DefBuckets, obs.L("stage", "fscr"))
	mBlockSeconds = obs.Default().Histogram("mlnclean_core_block_seconds",
		"Per-block wall time inside a stage-I phase.", obs.DefBuckets)
	mCleans = obs.Default().Counter("mlnclean_core_cleans_total",
		"Completed end-to-end cleaning runs.")
	mTuples = obs.Default().Counter("mlnclean_core_tuples_total",
		"Tuples cleaned across all runs.")
	mAbnormalGroups = obs.Default().Counter("mlnclean_core_agp_abnormal_groups_total",
		"Abnormal groups detected by AGP.")
	mAGPMerges = obs.Default().Counter("mlnclean_core_agp_merges_total",
		"Abnormal groups merged into a normal group.")
	mAGPPromotions = obs.Default().Counter("mlnclean_core_agp_promotions_total",
		"Abnormal groups promoted to normal (no merge target).")
	mRSCRewrites = obs.Default().Counter("mlnclean_core_rsc_rewrites_total",
		"Pieces rewritten by reliability-score cleaning.")
	mLearnIterations = obs.Default().Counter("mlnclean_core_learn_iterations_total",
		"Newton iterations spent learning MLN weights.")
	mFSCRCellChanges = obs.Default().Counter("mlnclean_core_fscr_cell_changes_total",
		"Cells changed by fusion-score conflict resolution.")
	mFSCRConflicts = obs.Default().Counter("mlnclean_core_fscr_conflicts_total",
		"Tuples whose every fusion order conflicted out.")
	mDuplicatesRemoved = obs.Default().Counter("mlnclean_core_duplicates_removed_total",
		"Duplicate tuples eliminated after fusion.")

	// Delta family: how much work incremental re-cleaning does versus reuses.
	// The dirty/reused and refused/reused pairs partition each Apply's blocks
	// and tuples, so the reuse ratio is readable straight off a scrape.
	mDeltaLoads = obs.Default().Counter("mlnclean_core_delta_loads_total",
		"Full-clean seeds of an incremental delta engine.")
	mDeltaApplies = obs.Default().Counter("mlnclean_core_delta_applies_total",
		"Incremental mutation batches applied.")
	mDeltaDirtyBlocks = obs.Default().Counter("mlnclean_core_delta_dirty_blocks_total",
		"Rule blocks rebuilt and re-cleaned by incremental applies.")
	mDeltaReusedBlocks = obs.Default().Counter("mlnclean_core_delta_reused_blocks_total",
		"Rule blocks served from cache by incremental applies.")
	mDeltaRefusedTuples = obs.Default().Counter("mlnclean_core_delta_refused_tuples_total",
		"Tuples re-fused by incremental applies.")
	mDeltaReusedTuples = obs.Default().Counter("mlnclean_core_delta_reused_tuples_total",
		"Tuples whose cached fusion outcome incremental applies reused.")
	mDeltaSeconds = obs.Default().Histogram("mlnclean_core_delta_apply_seconds",
		"Wall time of one incremental mutation batch, mutation to new result.", obs.DefBuckets)

	// The mlnclean_mem_* family makes the bounded-memory behavior of the
	// streaming pipeline observable live: how many blocks are in flight, how
	// often the evaluator pool recycles, and the process's live heap.
	mPoolHits = obs.Default().Counter("mlnclean_mem_pool_hits_total",
		"Distance-evaluator checkouts served by a recycled evaluator.")
	mPoolMisses = obs.Default().Counter("mlnclean_mem_pool_misses_total",
		"Distance-evaluator checkouts that constructed a fresh evaluator.")
	mBlocksInFlight = obs.Default().Gauge("mlnclean_mem_blocks_inflight",
		"Blocks built by the streaming pipeline but not yet fully cleaned.")
)

func init() {
	obs.Default().GaugeFunc("mlnclean_mem_heap_live_bytes",
		"Live heap bytes (runtime.ReadMemStats HeapAlloc), sampled at scrape time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

// recordPoolStats folds one evaluator pool's hit/miss counts into the
// process-wide mem family after a stage or streaming run finishes with it.
func recordPoolStats(p *distance.Pool) {
	h, m := p.Stats()
	mPoolHits.Add(h)
	mPoolMisses.Add(m)
}
