package core

import (
	"context"
	"fmt"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// Result is the output of a cleaning run.
type Result struct {
	// Clean is the final cleaned dataset (duplicates removed unless
	// Options.KeepDuplicates).
	Clean *dataset.Table
	// Repaired is the cleaned table before duplicate elimination; it has
	// exactly the input's tuple IDs, which evaluation code diffs against
	// ground truth.
	Repaired *dataset.Table
	// Duplicates lists the removed duplicate sets (representative first).
	Duplicates [][]int
	// Index is the MLN index in its post-stage-I state (one piece per
	// group, weights learned); exposed for inspection and the distributed
	// weight-merging path.
	Index *index.Index
	// Stats summarizes the run.
	Stats Stats
}

// Clean runs the full MLNClean pipeline (Alg. 1) on the dirty table:
//
//  1. MLN index construction: one block per rule, one group per distinct
//     reason key (γs with the same reason part share a group).
//  2. Stage I, per block (independent, parallelized): AGP merges abnormal
//     groups into their nearest normal group; MLN weight learning assigns
//     each γ a weight (Eq. 4 prior + diagonal Newton); RSC keeps the γ with
//     the highest reliability score in each group and rewrites the rest.
//  3. Stage II: FSCR fuses each tuple's per-block versions into the
//     assignment with the maximal fusion score (Eq. 5), then duplicate
//     tuples are eliminated.
//
// The input table is not modified.
func Clean(dirty *dataset.Table, rs []*rules.Rule, opts Options) (*Result, error) {
	return CleanContext(context.Background(), dirty, rs, opts)
}

// CleanContext is Clean bounded by a context: the stage pipelines abort
// between blocks once ctx is cancelled and the context's error is returned.
func CleanContext(ctx context.Context, dirty *dataset.Table, rs []*rules.Rule, opts Options) (*Result, error) {
	return CleanEncoded(ctx, dirty, nil, rs, opts)
}

// CleanEncoded is CleanContext for callers that already hold the dirty
// table's dictionary-encoded companion (the streaming CSV ingest encodes
// while parsing): enc must be row-aligned with dirty and is adopted as the
// pipeline's encoding, so the table is never encoded twice. A nil enc
// encodes here.
func CleanEncoded(ctx context.Context, dirty *dataset.Table, enc *dataset.Encoded, rs []*rules.Rule, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if dirty == nil || dirty.Len() == 0 {
		return nil, fmt.Errorf("core: empty input table")
	}
	st := Stats{Tuples: dirty.Len()}
	var ix *index.Index
	if opts.Materialize {
		// Escape hatch: full index first, then one block-parallel pass per
		// stage — the pre-streaming pipeline, kept for comparison.
		var err error
		ix, err = index.BuildConfigured(dirty, rs, index.BuildConfig{FixedOrder: opts.DisablePlanner, Encoded: enc})
		if err != nil {
			return nil, err
		}
		// Record why the planner ordered evaluation the way it did; the CLI
		// and /v1/stats surface these lines.
		opts.Trace.SetPlan(ix.Plan().Choices())
		mCleans.Inc()
		mTuples.Add(int64(dirty.Len()))

		// Stage I: clean each block's data version independently (§5.1).
		if err := StageAGP(ctx, ix, opts, &st); err != nil {
			return nil, err
		}
		if err := StageLearn(ctx, ix, opts, &st); err != nil {
			return nil, err
		}
		if err := StageRSC(ctx, ix, opts, &st); err != nil {
			return nil, err
		}
	} else {
		// Default: stream blocks from the iterator through the fused
		// AGP → learn → RSC workers; memory stays bounded by the window of
		// in-flight blocks instead of every block's full piece set.
		var err error
		ix, err = streamStageI(ctx, dirty, enc, rs, opts, &st)
		if err != nil {
			return nil, err
		}
		mCleans.Inc()
		mTuples.Add(int64(dirty.Len()))
	}
	st.Blocks = len(ix.Blocks)
	for _, b := range ix.Blocks {
		st.Groups += len(b.Groups)
	}

	// Stage II: fuse versions, then drop duplicates.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	repaired := fscr(dirty, ix, opts, &st)
	res := &Result{Repaired: repaired, Index: ix, Stats: st}
	if opts.KeepDuplicates {
		res.Clean = repaired.Clone()
		return res, nil
	}
	clean, dups := dedup(repaired)
	res.Clean = clean
	res.Duplicates = dups
	for _, d := range dups {
		res.Stats.DuplicatesRemoved += len(d) - 1
	}
	mDuplicatesRemoved.Add(int64(res.Stats.DuplicatesRemoved))
	return res, nil
}
