package core

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

func mkPiece(r *rules.Rule, reason, result []string, ids []int, w float64) *index.Piece {
	return &index.Piece{Rule: r, Reason: reason, Result: result, TupleIDs: ids, Weight: w}
}

// TestFuserFastPath: non-conflicting versions fuse to their union with the
// product of weights, regardless of order.
func TestFuserFastPath(t *testing.T) {
	r1 := rules.MustParseStrings("FD: A -> B")[0]
	r2 := rules.MustParseStrings("FD: C -> D")[0]
	versions := []version{
		{blockIdx: 0, rule: r1, attrs: []string{"A", "B"}, values: []string{"a", "b"}, weight: 0.5},
		{blockIdx: 1, rule: r2, attrs: []string{"C", "D"}, values: []string{"c", "d"}, weight: 0.25},
	}
	f := newFuser(versions, []*blockCands{{}, {}}, 100)
	merged, score, conflicts := f.run()
	if len(conflicts) != 0 {
		t.Errorf("conflicts = %v", conflicts)
	}
	if score != 0.125 {
		t.Errorf("score = %v, want 0.5×0.25", score)
	}
	want := assignment{"A": "a", "B": "b", "C": "c", "D": "d"}
	for k, v := range want {
		if merged[k] != v {
			t.Errorf("merged[%s] = %q, want %q", k, merged[k], v)
		}
	}
}

// TestFuserConflictResolution reproduces Example 3's structure: two
// versions conflict on a shared attribute; the winning fusion substitutes
// the non-conflicting candidate from the conflicting block.
func TestFuserConflictResolution(t *testing.T) {
	rA := rules.MustParseStrings("FD: CT -> ST")[0]
	rB := rules.MustParseStrings("CFD: HN=ELIZA, CT=BOAZ -> PN=999")[0]

	// Block 0 candidates: the DOTHAN piece (the tuple's own) and a BOAZ
	// piece available as replacement.
	b0 := buildBlockCands(&FusionBlock{
		Rule:  rA,
		Attrs: rA.Attrs(),
		Candidates: []*index.Piece{
			mkPiece(rA, []string{"DOTHAN"}, []string{"AL"}, []int{0, 1}, 0.9),
			mkPiece(rA, []string{"BOAZ"}, []string{"AL"}, []int{2, 3}, 0.8),
		},
	})
	b1 := buildBlockCands(&FusionBlock{
		Rule:  rB,
		Attrs: rB.Attrs(),
		Candidates: []*index.Piece{
			mkPiece(rB, []string{"ELIZA", "BOAZ"}, []string{"999"}, []int{2, 3}, 0.95),
		},
	})
	versions := []version{
		{blockIdx: 0, rule: rA, attrs: rA.Attrs(), values: []string{"DOTHAN", "AL"}, weight: 0.9},
		{blockIdx: 1, rule: rB, attrs: rB.Attrs(), values: []string{"ELIZA", "BOAZ", "999"}, weight: 0.95},
	}
	f := newFuser(versions, []*blockCands{b0, b1}, 100)
	// Dirty tuple: {CT: DOTHAN, ST: AL, HN: ELIZA, PN: 42}.
	dirty := map[string]string{"CT": "DOTHAN", "ST": "AL", "HN": "ELIZA", "PN": "42"}
	f.dirty = func(a string) string { return dirty[a] }
	f.penalty = 0.05 / 0.95
	merged, _, conflicts := f.run()
	if merged == nil {
		t.Fatal("fusion failed")
	}
	if merged["CT"] != "BOAZ" {
		t.Errorf("CT = %q, want BOAZ (replacement path)", merged["CT"])
	}
	if merged["PN"] != "999" || merged["ST"] != "AL" {
		t.Errorf("merged = %v", merged)
	}
	found := false
	for _, a := range conflicts {
		if a == "CT" {
			found = true
		}
	}
	if !found {
		t.Errorf("CT conflict not recorded: %v", conflicts)
	}
}

// TestFuserFailsWithoutReplacement: when a conflict has no compatible
// candidate (and the rule is not a CFD), every order dies and fusion fails.
func TestFuserFailsWithoutReplacement(t *testing.T) {
	rA := rules.MustParseStrings("FD: A -> B")[0]
	rB := rules.MustParseStrings("FD: C -> B")[0]
	b0 := buildBlockCands(&FusionBlock{Rule: rA, Attrs: rA.Attrs(), Candidates: []*index.Piece{
		mkPiece(rA, []string{"a"}, []string{"b1"}, []int{0}, 0.9),
	}})
	b1 := buildBlockCands(&FusionBlock{Rule: rB, Attrs: rB.Attrs(), Candidates: []*index.Piece{
		mkPiece(rB, []string{"c"}, []string{"b2"}, []int{0}, 0.9),
	}})
	versions := []version{
		{blockIdx: 0, rule: rA, attrs: rA.Attrs(), values: []string{"a", "b1"}, weight: 0.9},
		{blockIdx: 1, rule: rB, attrs: rB.Attrs(), values: []string{"c", "b2"}, weight: 0.9},
	}
	f := newFuser(versions, []*blockCands{b0, b1}, 100)
	merged, score, _ := f.run()
	if merged != nil || score != 0 {
		t.Errorf("expected failed fusion, got %v (score %v)", merged, score)
	}
}

// TestFuserCFDVacuousSkip: a CFD version whose pattern the fusion
// contradicts is skipped instead of failing the order.
func TestFuserCFDVacuousSkip(t *testing.T) {
	rFD := rules.MustParseStrings("FD: Model, Type -> Make")[0]
	rCFD := rules.MustParseStrings("CFD: Make=acura, Type -> Doors")[0]
	b0 := buildBlockCands(&FusionBlock{Rule: rFD, Attrs: rFD.Attrs(), Candidates: []*index.Piece{
		mkPiece(rFD, []string{"MDX", "SUV"}, []string{"honda"}, []int{0}, 0.9),
	}})
	// The CFD block holds only acura pieces.
	b1 := buildBlockCands(&FusionBlock{Rule: rCFD, Attrs: rCFD.Attrs(), Candidates: []*index.Piece{
		mkPiece(rCFD, []string{"acura", "SUV"}, []string{"4"}, []int{0}, 0.95),
	}})
	versions := []version{
		{blockIdx: 0, rule: rFD, attrs: rFD.Attrs(), values: []string{"MDX", "SUV", "honda"}, weight: 0.9},
		{blockIdx: 1, rule: rCFD, attrs: rCFD.Attrs(), values: []string{"acura", "SUV", "4"}, weight: 0.95},
	}
	f := newFuser(versions, []*blockCands{b0, b1}, 100)
	merged, _, _ := f.run()
	if merged == nil {
		t.Fatal("fusion failed; CFD version should be vacuous-skippable")
	}
	if merged["Make"] != "honda" {
		t.Errorf("Make = %q, want honda", merged["Make"])
	}
}

// TestBlockCandsFindUsesPostingLists: find must honour every pinned
// attribute and skip the excluded candidate.
func TestBlockCandsFind(t *testing.T) {
	r := rules.MustParseStrings("FD: A -> B")[0]
	bc := buildBlockCands(&FusionBlock{Rule: r, Attrs: r.Attrs(), Candidates: []*index.Piece{
		mkPiece(r, []string{"x"}, []string{"1"}, []int{0}, 0.9),
		mkPiece(r, []string{"x"}, []string{"2"}, []int{1}, 0.8),
		mkPiece(r, []string{"y"}, []string{"3"}, []int{2}, 0.99),
	}})
	// Pin A=x: the best x-candidate is {x,1}.
	got, ok := bc.find(assignment{"A": "x"}, "")
	if !ok || got.values[1] != "1" {
		t.Fatalf("find = %v, %v", got, ok)
	}
	// Excluding {x,1} yields {x,2}.
	got, ok = bc.find(assignment{"A": "x"}, dataset.JoinKey([]string{"x", "1"}))
	if !ok || got.values[1] != "2" {
		t.Fatalf("find with exclusion = %v, %v", got, ok)
	}
	// Pinning both attrs to an absent combination fails.
	if _, ok := bc.find(assignment{"A": "x", "B": "3"}, ""); ok {
		t.Error("impossible pin should fail")
	}
	// No pinned attrs: global best.
	got, ok = bc.find(assignment{"Z": "?"}, "")
	if !ok || got.values[0] != "y" {
		t.Fatalf("unpinned find = %v, %v", got, ok)
	}
}

// TestFuserStateCap: the permutation search respects MaxFusionStates and
// still returns a (possibly suboptimal) fusion.
func TestFuserStateCap(t *testing.T) {
	var versions []version
	var cands []*blockCands
	rs := rules.MustParseStrings("FD: A1 -> Z", "FD: A2 -> Z", "FD: A3 -> Z", "FD: A4 -> Z")
	for i, r := range rs {
		vals := []string{"k", string(rune('a' + i))} // all conflict on Z
		p := mkPiece(r, vals[:1], vals[1:], []int{0}, 0.9)
		cands = append(cands, buildBlockCands(&FusionBlock{Rule: r, Attrs: r.Attrs(), Candidates: []*index.Piece{p}}))
		versions = append(versions, version{blockIdx: i, rule: r, attrs: r.Attrs(), values: vals, weight: 0.9})
	}
	f := newFuser(versions, cands, 2) // absurdly small cap
	f.run()
	if f.states > 2 {
		t.Errorf("states = %d exceeded cap", f.states)
	}
}
