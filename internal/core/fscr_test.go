package core

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// fx is a fuser test fixture: a schema and dictionary to build positional
// versions and assignments against.
type fx struct {
	dict   *intern.Dict
	schema *dataset.Schema
}

func newFx(attrs ...string) *fx {
	return &fx{dict: intern.NewDict(), schema: dataset.MustSchema(attrs...)}
}

func (x *fx) piece(r *rules.Rule, reason, result []string, ids []int, w float64) *index.Piece {
	p := index.NewPiece(r, x.dict, reason, result)
	p.TupleIDs = ids
	p.Weight = w
	return p
}

func (x *fx) pos(r *rules.Rule) []int {
	attrs := r.Attrs()
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = x.schema.MustIndex(a)
	}
	return pos
}

func (x *fx) version(bi int, r *rules.Rule, p *index.Piece) version {
	return version{blockIdx: bi, rule: r, pos: x.pos(r), ids: p.ValueIDs(), kid: p.KeyID(), weight: p.Weight}
}

// assign builds a positional assignment from attr → value.
func (x *fx) assign(m map[string]string) assignment {
	a := newAssignment(x.schema.Len())
	for attr, v := range m {
		a[x.schema.MustIndex(attr)] = x.dict.Intern(v)
	}
	return a
}

// get decodes one assignment slot.
func (x *fx) get(a assignment, attr string) string {
	id := a[x.schema.MustIndex(attr)]
	if id == unsetID {
		return ""
	}
	return x.dict.Value(id)
}

func (x *fx) fuser(versions []version, cands []*blockCands, maxStates int) *fuser {
	f := newFuser(versions, cands, maxStates, x.schema.Len())
	f.dict = x.dict
	f.schema = x.schema
	f.domainSize = make([]int, x.schema.Len())
	f.dirtyRow = make([]uint32, x.schema.Len())
	for i := range f.dirtyRow {
		f.dirtyRow[i] = unsetID
	}
	return f
}

// setDirty records the observed tuple for the minimality prior.
func (x *fx) setDirty(f *fuser, m map[string]string) {
	for attr, v := range m {
		f.dirtyRow[x.schema.MustIndex(attr)] = x.dict.Intern(v)
	}
}

// TestFuserFastPath: non-conflicting versions fuse to their union with the
// product of weights, regardless of order.
func TestFuserFastPath(t *testing.T) {
	x := newFx("A", "B", "C", "D")
	r1 := rules.MustParseStrings("FD: A -> B")[0]
	r2 := rules.MustParseStrings("FD: C -> D")[0]
	p1 := x.piece(r1, []string{"a"}, []string{"b"}, []int{0}, 0.5)
	p2 := x.piece(r2, []string{"c"}, []string{"d"}, []int{0}, 0.25)
	versions := []version{x.version(0, r1, p1), x.version(1, r2, p2)}
	f := x.fuser(versions, []*blockCands{{}, {}}, 100)
	merged, score, conflicts := f.run()
	if len(conflicts) != 0 {
		t.Errorf("conflicts = %v", conflicts)
	}
	if score != 0.125 {
		t.Errorf("score = %v, want 0.5×0.25", score)
	}
	for attr, want := range map[string]string{"A": "a", "B": "b", "C": "c", "D": "d"} {
		if got := x.get(merged, attr); got != want {
			t.Errorf("merged[%s] = %q, want %q", attr, got, want)
		}
	}
}

// TestFuserConflictResolution reproduces Example 3's structure: two
// versions conflict on a shared attribute; the winning fusion substitutes
// the non-conflicting candidate from the conflicting block.
func TestFuserConflictResolution(t *testing.T) {
	x := newFx("CT", "ST", "HN", "PN")
	rA := rules.MustParseStrings("FD: CT -> ST")[0]
	rB := rules.MustParseStrings("CFD: HN=ELIZA, CT=BOAZ -> PN=999")[0]

	// Block 0 candidates: the DOTHAN piece (the tuple's own) and a BOAZ
	// piece available as replacement.
	pDothan := x.piece(rA, []string{"DOTHAN"}, []string{"AL"}, []int{0, 1}, 0.9)
	pBoaz := x.piece(rA, []string{"BOAZ"}, []string{"AL"}, []int{2, 3}, 0.8)
	b0 := buildBlockCands(&FusionBlock{
		Rule: rA, Attrs: rA.Attrs(),
		Candidates: []*index.Piece{pDothan, pBoaz},
	}, x.pos(rA))
	pEliza := x.piece(rB, []string{"ELIZA", "BOAZ"}, []string{"999"}, []int{2, 3}, 0.95)
	b1 := buildBlockCands(&FusionBlock{
		Rule: rB, Attrs: rB.Attrs(),
		Candidates: []*index.Piece{pEliza},
	}, x.pos(rB))
	versions := []version{x.version(0, rA, pDothan), x.version(1, rB, pEliza)}
	f := x.fuser(versions, []*blockCands{b0, b1}, 100)
	// Dirty tuple: {CT: DOTHAN, ST: AL, HN: ELIZA, PN: 42}.
	x.setDirty(f, map[string]string{"CT": "DOTHAN", "ST": "AL", "HN": "ELIZA", "PN": "42"})
	f.penalty = 0.05 / 0.95
	merged, _, conflicts := f.run()
	if merged == nil {
		t.Fatal("fusion failed")
	}
	if got := x.get(merged, "CT"); got != "BOAZ" {
		t.Errorf("CT = %q, want BOAZ (replacement path)", got)
	}
	if x.get(merged, "PN") != "999" || x.get(merged, "ST") != "AL" {
		t.Errorf("merged = %v", merged)
	}
	found := false
	for _, p := range conflicts {
		if x.schema.Attr(p) == "CT" {
			found = true
		}
	}
	if !found {
		t.Errorf("CT conflict not recorded: %v", conflicts)
	}
}

// TestFuserFailsWithoutReplacement: when a conflict has no compatible
// candidate (and the rule is not a CFD), every order dies and fusion fails.
func TestFuserFailsWithoutReplacement(t *testing.T) {
	x := newFx("A", "B", "C")
	rA := rules.MustParseStrings("FD: A -> B")[0]
	rB := rules.MustParseStrings("FD: C -> B")[0]
	pA := x.piece(rA, []string{"a"}, []string{"b1"}, []int{0}, 0.9)
	pB := x.piece(rB, []string{"c"}, []string{"b2"}, []int{0}, 0.9)
	b0 := buildBlockCands(&FusionBlock{Rule: rA, Attrs: rA.Attrs(), Candidates: []*index.Piece{pA}}, x.pos(rA))
	b1 := buildBlockCands(&FusionBlock{Rule: rB, Attrs: rB.Attrs(), Candidates: []*index.Piece{pB}}, x.pos(rB))
	versions := []version{x.version(0, rA, pA), x.version(1, rB, pB)}
	f := x.fuser(versions, []*blockCands{b0, b1}, 100)
	merged, score, _ := f.run()
	if merged != nil || score != 0 {
		t.Errorf("expected failed fusion, got %v (score %v)", merged, score)
	}
}

// TestFuserCFDVacuousSkip: a CFD version whose pattern the fusion
// contradicts is skipped instead of failing the order.
func TestFuserCFDVacuousSkip(t *testing.T) {
	x := newFx("Model", "Type", "Make", "Doors")
	rFD := rules.MustParseStrings("FD: Model, Type -> Make")[0]
	rCFD := rules.MustParseStrings("CFD: Make=acura, Type -> Doors")[0]
	pFD := x.piece(rFD, []string{"MDX", "SUV"}, []string{"honda"}, []int{0}, 0.9)
	pCFD := x.piece(rCFD, []string{"acura", "SUV"}, []string{"4"}, []int{0}, 0.95)
	b0 := buildBlockCands(&FusionBlock{Rule: rFD, Attrs: rFD.Attrs(), Candidates: []*index.Piece{pFD}}, x.pos(rFD))
	// The CFD block holds only acura pieces.
	b1 := buildBlockCands(&FusionBlock{Rule: rCFD, Attrs: rCFD.Attrs(), Candidates: []*index.Piece{pCFD}}, x.pos(rCFD))
	versions := []version{x.version(0, rFD, pFD), x.version(1, rCFD, pCFD)}
	f := x.fuser(versions, []*blockCands{b0, b1}, 100)
	merged, _, _ := f.run()
	if merged == nil {
		t.Fatal("fusion failed; CFD version should be vacuous-skippable")
	}
	if got := x.get(merged, "Make"); got != "honda" {
		t.Errorf("Make = %q, want honda", got)
	}
}

// TestBlockCandsFind: find must honour every pinned attribute and skip the
// excluded candidate.
func TestBlockCandsFind(t *testing.T) {
	x := newFx("A", "B")
	r := rules.MustParseStrings("FD: A -> B")[0]
	p1 := x.piece(r, []string{"x"}, []string{"1"}, []int{0}, 0.9)
	p2 := x.piece(r, []string{"x"}, []string{"2"}, []int{1}, 0.8)
	p3 := x.piece(r, []string{"y"}, []string{"3"}, []int{2}, 0.99)
	bc := buildBlockCands(&FusionBlock{Rule: r, Attrs: r.Attrs(), Candidates: []*index.Piece{p1, p2, p3}}, x.pos(r))
	dec := func(c candEntry, i int) string { return x.dict.Value(c.ids[i]) }
	// Pin A=x: the best x-candidate is {x,1}.
	got, ok := bc.find(x.assign(map[string]string{"A": "x"}), unsetID)
	if !ok || dec(got, 1) != "1" {
		t.Fatalf("find = %v, %v", got, ok)
	}
	// Excluding {x,1} yields {x,2}.
	got, ok = bc.find(x.assign(map[string]string{"A": "x"}), p1.KeyID())
	if !ok || dec(got, 1) != "2" {
		t.Fatalf("find with exclusion = %v, %v", got, ok)
	}
	// Pinning both attrs to an absent combination fails.
	if _, ok := bc.find(x.assign(map[string]string{"A": "x", "B": "3"}), unsetID); ok {
		t.Error("impossible pin should fail")
	}
	// No pinned attrs: global best.
	got, ok = bc.find(x.assign(nil), unsetID)
	if !ok || dec(got, 0) != "y" {
		t.Fatalf("unpinned find = %v, %v", got, ok)
	}
}

// TestFuserStateCap: the permutation search respects MaxFusionStates and
// still returns a (possibly suboptimal) fusion.
func TestFuserStateCap(t *testing.T) {
	x := newFx("A1", "A2", "A3", "A4", "Z")
	var versions []version
	var cands []*blockCands
	rs := rules.MustParseStrings("FD: A1 -> Z", "FD: A2 -> Z", "FD: A3 -> Z", "FD: A4 -> Z")
	for i, r := range rs {
		p := x.piece(r, []string{"k"}, []string{string(rune('a' + i))}, []int{0}, 0.9) // all conflict on Z
		cands = append(cands, buildBlockCands(&FusionBlock{Rule: r, Attrs: r.Attrs(), Candidates: []*index.Piece{p}}, x.pos(r)))
		versions = append(versions, x.version(i, r, p))
	}
	f := x.fuser(versions, cands, 2) // absurdly small cap
	f.run()
	if f.states > 2 {
		t.Errorf("states = %d exceeded cap", f.states)
	}
}
