package core

import (
	"mlnclean/internal/dataset"
)

// dedup removes exact-duplicate tuples (identical on every attribute) from
// the repaired table, keeping the lowest-ID representative of each
// duplicate set (§5.2: after FSCR, MLNClean automatically detects and
// removes duplicate tuples). Returns the deduplicated table and the
// duplicate sets (each with ≥ 2 members, representative first).
func dedup(tb *dataset.Table) (*dataset.Table, [][]int) {
	out := dataset.NewTable(tb.Schema)
	rep := make(map[string]int)       // row key → representative tuple ID
	members := make(map[string][]int) // row key → all tuple IDs
	var order []string
	for _, t := range tb.Tuples {
		k := dataset.JoinKey(t.Values)
		if _, ok := rep[k]; !ok {
			rep[k] = t.ID
			order = append(order, k)
			out.Tuples = append(out.Tuples, t.Clone())
		}
		members[k] = append(members[k], t.ID)
	}
	var dups [][]int
	for _, k := range order {
		if ids := members[k]; len(ids) > 1 {
			dups = append(dups, ids)
		}
	}
	return out, dups
}
