package core

import (
	"mlnclean/internal/dataset"
	"mlnclean/internal/intern"
)

// dedup removes exact-duplicate tuples (identical on every attribute) from
// the repaired table, keeping the lowest-ID representative of each
// duplicate set (§5.2: after FSCR, MLNClean automatically detects and
// removes duplicate tuples). Row identity is an interned ID-sequence key,
// not a joined string, so values containing the key separator cannot alias
// two distinct rows. Returns the deduplicated table and the duplicate sets
// (each with ≥ 2 members, representative first).
func dedup(tb *dataset.Table) (*dataset.Table, [][]int) {
	return Dedup(tb)
}

// Dedup is the exported form of the pipeline's duplicate elimination; the
// distributed gather step removes duplicates with exactly the same
// semantics.
func Dedup(tb *dataset.Table) (*dataset.Table, [][]int) {
	out := dataset.NewTable(tb.Schema)
	dict := intern.NewDict()
	members := make(map[uint32][]int) // row key → all tuple IDs
	var order []uint32
	var ids []uint32
	for _, t := range tb.Tuples {
		ids = ids[:0]
		for _, v := range t.Values {
			ids = append(ids, dict.Intern(v))
		}
		k := dict.Seq(ids)
		if _, ok := members[k]; !ok {
			order = append(order, k)
			out.Tuples = append(out.Tuples, t.Clone())
		}
		members[k] = append(members[k], t.ID)
	}
	var dups [][]int
	for _, k := range order {
		if ids := members[k]; len(ids) > 1 {
			dups = append(dups, ids)
		}
	}
	return out, dups
}
