package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"mlnclean/internal/distance"
	"mlnclean/internal/index"
)

// The exported Stage* functions expose the pipeline's phases individually so
// the distributed variant (§6) can interleave its Eq. 6 weight merge between
// weight learning and RSC. Stand-alone cleaning uses Clean, which composes
// them. The stages keep no package-level state: per-block results land in a
// slice indexed by block and are folded into st serially after the blocks
// finish, so any number of workers may run stages over disjoint indexes
// concurrently. Every stage takes a context and aborts between blocks once
// it is cancelled, returning the context's error.

// StageAGP runs abnormal-group processing on every block of the index,
// in parallel, accumulating abnormal-group counts into st. Each block gets
// its own interned-distance evaluator over the index's shared dictionary
// (evaluators memoize and are not goroutine-safe; the dictionary is only
// read during the stages).
func StageAGP(ctx context.Context, ix *index.Index, opts Options, st *Stats) error {
	opts = opts.withDefaults()
	defer mStageAGP.ObserveSince(time.Now())
	pool := distance.NewPool(opts.Metric, ix.Dict())
	defer recordPoolStats(pool)
	type agpOut struct{ groups, pieces, promotions int }
	outs := make([]agpOut, len(ix.Blocks))
	err := forEachBlock(ctx, ix, opts, func(bi int, b *index.Block) error {
		ev := pool.Get()
		ab, abp, promos := agp(bi, b, opts.Tau, ev, opts.MergeCapRatio, opts.AGPStrategy, nil, opts.Trace)
		pool.Put(ev)
		outs[bi] = agpOut{ab, abp, promos}
		return nil
	})
	if err != nil {
		return err
	}
	for _, o := range outs {
		st.AbnormalGroups += o.groups
		st.AbnormalPieces += o.pieces
		st.AGPPromotions += o.promotions
		mAbnormalGroups.Add(int64(o.groups))
		mAGPPromotions.Add(int64(o.promotions))
		// Every abnormal group is either merged away or promoted in place.
		mAGPMerges.Add(int64(o.groups - o.promotions))
	}
	return nil
}

// StageLearn learns piece weights on every block of the index (Eq. 4 prior
// + diagonal Newton).
func StageLearn(ctx context.Context, ix *index.Index, opts Options, st *Stats) error {
	opts = opts.withDefaults()
	defer mStageLearn.ObserveSince(time.Now())
	iters := make([]int, len(ix.Blocks))
	err := forEachBlock(ctx, ix, opts, func(bi int, b *index.Block) error {
		n, err := learnBlockWeights(b, opts.Learn)
		if err != nil {
			return err
		}
		iters[bi] = n
		return nil
	})
	if err != nil {
		return err
	}
	for _, n := range iters {
		st.LearnIterations += n
		mLearnIterations.Add(int64(n))
	}
	return nil
}

// StageRSC runs reliability-score cleaning on every block, leaving exactly
// one piece per group.
func StageRSC(ctx context.Context, ix *index.Index, opts Options, st *Stats) error {
	opts = opts.withDefaults()
	defer mStageRSC.ObserveSince(time.Now())
	pool := distance.NewPool(opts.Metric, ix.Dict())
	defer recordPoolStats(pool)
	repairs := make([]int, len(ix.Blocks))
	err := forEachBlock(ctx, ix, opts, func(bi int, b *index.Block) error {
		ev := pool.Get()
		repairs[bi] = rsc(bi, b, ev, opts.Trace)
		pool.Put(ev)
		return nil
	})
	if err != nil {
		return err
	}
	for _, n := range repairs {
		st.RSCRepairs += n
		mRSCRewrites.Add(int64(n))
	}
	return nil
}

// forEachBlock applies fn to each block with bounded parallelism: exactly
// par workers drain a shared index channel, so a huge index never allocates
// more than par goroutines up front. Blocks are fed in the index's planned
// scheduling order (heaviest first) while error reporting stays in block
// order — the first error by block index wins. Workers re-check the context
// before each block, so blocks not yet started when ctx is cancelled are
// skipped and a cancelled stage returns promptly without waiting out the
// whole index.
func forEachBlock(ctx context.Context, ix *index.Index, opts Options, fn func(int, *index.Block) error) error {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(ix.Blocks) {
		par = len(ix.Blocks)
	}
	if par < 1 {
		par = 1
	}
	errs := make([]error, len(ix.Blocks))
	blocks := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for bi := range blocks {
				if err := ctx.Err(); err != nil {
					errs[bi] = err
					continue
				}
				t0 := time.Now()
				errs[bi] = fn(bi, ix.Blocks[bi])
				mBlockSeconds.ObserveSince(t0)
			}
		}()
	}
	for _, bi := range ix.BlockOrder() {
		blocks <- bi
	}
	close(blocks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
