package core

import (
	"runtime"
	"sync"

	"mlnclean/internal/index"
)

// The exported Stage* functions expose the pipeline's phases individually so
// the distributed variant (§6) can interleave its Eq. 6 weight merge between
// weight learning and RSC. Stand-alone cleaning uses Clean, which composes
// them.

// StageAGP runs abnormal-group processing on every block of the index,
// in parallel, accumulating abnormal-group counts into st.
func StageAGP(ix *index.Index, opts Options, st *Stats) {
	opts = opts.withDefaults()
	forEachBlock(ix, opts, func(bi int, b *index.Block) error {
		ab, abp := agp(bi, b, opts.Tau, opts.Metric, opts.MergeCapRatio, opts.AGPStrategy, opts.Trace)
		st.addAGP(ab, abp)
		return nil
	})
}

// StageLearn learns piece weights on every block of the index (Eq. 4 prior
// + diagonal Newton).
func StageLearn(ix *index.Index, opts Options, st *Stats) error {
	opts = opts.withDefaults()
	return forEachBlock(ix, opts, func(bi int, b *index.Block) error {
		iters, err := learnBlockWeights(b, opts.Learn)
		if err != nil {
			return err
		}
		st.addLearn(iters)
		return nil
	})
}

// StageRSC runs reliability-score cleaning on every block, leaving exactly
// one piece per group.
func StageRSC(ix *index.Index, opts Options, st *Stats) {
	opts = opts.withDefaults()
	forEachBlock(ix, opts, func(bi int, b *index.Block) error {
		st.addRSC(rsc(bi, b, opts.Metric, opts.Trace))
		return nil
	})
}

// forEachBlock applies fn to each block with bounded parallelism; the first
// error wins.
func forEachBlock(ix *index.Index, opts Options, fn func(int, *index.Block) error) error {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(ix.Blocks) {
		par = len(ix.Blocks)
	}
	if par < 1 {
		par = 1
	}
	errs := make([]error, len(ix.Blocks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for bi := range ix.Blocks {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[bi] = fn(bi, ix.Blocks[bi])
		}(bi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats mutation helpers are mutex-guarded because blocks run concurrently.
var statsMu sync.Mutex

func (s *Stats) addAGP(groups, pieces int) {
	statsMu.Lock()
	s.AbnormalGroups += groups
	s.AbnormalPieces += pieces
	statsMu.Unlock()
}

func (s *Stats) addLearn(iters int) {
	statsMu.Lock()
	s.LearnIterations += iters
	statsMu.Unlock()
}

func (s *Stats) addRSC(repairs int) {
	statsMu.Lock()
	s.RSCRepairs += repairs
	statsMu.Unlock()
}
