package core

import (
	"math"
	"mlnclean/internal/index"
	"mlnclean/internal/mln"
)

// learnBlockWeights learns the MLN weight of every piece in the block
// (§5.1.2): each distinct γ is a ground MLN rule whose prior weight is
// c(γ)/Σc (Eq. 4) and whose learned weight comes from diagonal-Newton
// optimization of the grouped likelihood — competing γs are the ones inside
// the same group. Weights are written into Piece.Weight. Returns the number
// of Newton iterations performed.
func learnBlockWeights(b *index.Block, opts mln.LearnOptions) (int, error) {
	pieces := b.Pieces()
	if len(pieces) == 0 {
		return 0, nil
	}
	counts := make([]float64, len(pieces))
	pos := make(map[*index.Piece]int, len(pieces))
	for i, p := range pieces {
		counts[i] = float64(p.Count())
		pos[p] = i
	}
	groups := make([][]int, 0, len(b.Groups))
	for _, g := range b.Groups {
		idx := make([]int, 0, len(g.Pieces))
		for _, p := range g.Pieces {
			idx = append(idx, pos[p])
		}
		groups = append(groups, idx)
	}
	priors := mln.PriorWeights(counts)
	res, err := mln.LearnWeights(groups, counts, priors, opts)
	if err != nil {
		return 0, err
	}
	// The learned Newton weights live in log space (ln Pr(γ) = w − ln Z,
	// Eq. 3). The paper uses the weight as "the probability of the attribute
	// values w.r.t. this ground MLN rule being clean" (§3), and the fusion
	// score multiplies weights across blocks (Eq. 5), so the weight stored
	// on each piece is the in-group softmax probability: exp-normalized over
	// the competing γs of its group. An uncontested γ (singleton group) is
	// certainly clean under its rule and gets weight 1.
	for gi, g := range b.Groups {
		_ = gi
		if len(g.Pieces) == 1 {
			g.Pieces[0].Weight = 1
			continue
		}
		maxW := math.Inf(-1)
		for _, p := range g.Pieces {
			if w := res.Weights[pos[p]]; w > maxW {
				maxW = w
			}
		}
		var z float64
		for _, p := range g.Pieces {
			z += math.Exp(res.Weights[pos[p]] - maxW)
		}
		for _, p := range g.Pieces {
			p.Weight = math.Exp(res.Weights[pos[p]]-maxW) / z
			if p.Weight < minPieceWeight {
				p.Weight = minPieceWeight
			}
		}
	}
	return res.Iterations, nil
}

// minPieceWeight is the positive floor applied to learned piece weights so
// the fusion-score product (Eq. 5) keeps its ordering semantics.
const minPieceWeight = 1e-6
