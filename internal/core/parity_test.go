package core

// Randomized parity suite for the dictionary-encoding refactor: the goldens
// in testdata/parity_golden.json were captured from the pre-refactor,
// string-keyed pipeline (PR 3 state) and pin its exact repairs, Stats, and
// Trace on generated tables — including multi-rune/UTF-8 values — across
// metrics, τ values, and AGP strategies. The interned pipeline must stay
// byte-identical. Regenerate with
//
//	go test ./internal/core -run TestParityGolden -update
//
// only when an intentional semantic change is being made, and say so in the
// commit message.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/rules"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/parity_golden.json from the current pipeline")

// parityValuePool mixes ASCII, accented, and multi-byte scripts so rune
// handling (distance, typo corruption, key encoding) is exercised end to end.
var parityCityPool = []string{
	"birmingham", "boaz", "dothan", "münchen", "köln", "東京都",
	"нижний", "ελλάδα", "saint-étienne", "b'ham city", "ВОАЗ", "naïve-ville",
}

var parityNotePool = []string{
	"ok", "checked", "再確認", "überprüft", "n/a", "—", "pending", "vérifié",
}

type parityConfig struct {
	Name     string
	Seed     int64
	Rows     int
	Rate     float64
	Metric   string
	Tau      int
	Strategy AGPStrategy
}

func parityConfigs() []parityConfig {
	return []parityConfig{
		{Name: "lev-tau1", Seed: 11, Rows: 180, Rate: 0.12, Metric: "levenshtein", Tau: 1},
		{Name: "lev-tau2", Seed: 12, Rows: 220, Rate: 0.18, Metric: "levenshtein", Tau: 2},
		{Name: "lev-biased", Seed: 13, Rows: 200, Rate: 0.15, Metric: "levenshtein", Tau: 2, Strategy: AGPSupportBiased},
		{Name: "cos-tau1", Seed: 14, Rows: 180, Rate: 0.12, Metric: "cosine", Tau: 1},
		{Name: "cos-tau2", Seed: 15, Rows: 240, Rate: 0.20, Metric: "cosine", Tau: 2},
		{Name: "lev-dense", Seed: 16, Rows: 300, Rate: 0.25, Metric: "levenshtein", Tau: 1},
	}
}

// parityRules returns the constraint set over the generated schema: an FD, a
// two-attribute FD, a constant CFD, and a DC.
func parityRules(cfdCity string) []*rules.Rule {
	return []*rules.Rule{
		rules.MustNew("r1", rules.FD,
			[]rules.Pattern{{Attr: "City"}}, []rules.Pattern{{Attr: "State"}}),
		rules.MustNew("r2", rules.FD,
			[]rules.Pattern{{Attr: "City"}, {Attr: "State"}}, []rules.Pattern{{Attr: "Zip"}}),
		rules.MustNew("r3", rules.CFD,
			[]rules.Pattern{{Attr: "City", Const: cfdCity}}, []rules.Pattern{{Attr: "Phone"}}),
		rules.MustNew("r4", rules.DC,
			[]rules.Pattern{{Attr: "Phone", Op: "="}}, []rules.Pattern{{Attr: "Zip", Op: "!="}}),
	}
}

// parityTable generates a dirty table: a functional ground truth over the
// city pool, then cell corruption at the given rate (half typos on a random
// rune, half replacements drawn from the attribute's domain).
func parityTable(cfg parityConfig) *dataset.Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := dataset.MustSchema("City", "State", "Phone", "Zip", "Note")
	states := []string{"AL", "BY", "île-de", "Αττική", "幸区"}
	stateOf := make(map[string]string)
	zipOf := make(map[string]string)
	phoneOf := make(map[string]string)
	for i, c := range parityCityPool {
		stateOf[c] = states[i%len(states)]
		zipOf[c] = fmt.Sprintf("%05d", 35000+i*7)
		phoneOf[c] = fmt.Sprintf("25676%05d", 88400+i*13)
	}
	tb := dataset.NewTable(schema)
	for i := 0; i < cfg.Rows; i++ {
		city := parityCityPool[rng.Intn(len(parityCityPool))]
		tb.MustAppend(city, stateOf[city], phoneOf[city], zipOf[city],
			parityNotePool[rng.Intn(len(parityNotePool))])
	}
	// Corrupt rule-covered cells only (Note is free text).
	attrs := []string{"City", "State", "Phone", "Zip"}
	domains := make(map[string][]string)
	for _, a := range attrs {
		domains[a] = tb.Domain(a)
	}
	nErr := int(float64(tb.Len()*len(attrs)) * cfg.Rate / float64(len(attrs)))
	for e := 0; e < nErr; e++ {
		t := tb.Tuples[rng.Intn(tb.Len())]
		attr := attrs[rng.Intn(len(attrs))]
		pos := schema.MustIndex(attr)
		if rng.Intn(2) == 0 {
			t.Values[pos] = typo(rng, t.Values[pos])
		} else {
			dom := domains[attr]
			t.Values[pos] = dom[rng.Intn(len(dom))]
		}
	}
	return tb
}

// typo mutates one random rune: substitution, deletion, or duplication.
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) == 0 {
		return "x"
	}
	i := rng.Intn(len(r))
	switch rng.Intn(3) {
	case 0:
		r[i] = rune('a' + rng.Intn(26))
		return string(r)
	case 1:
		return string(append(r[:i:i], r[i+1:]...))
	default:
		out := append(r[:i+1:i+1], r[i:]...)
		return string(out)
	}
}

// parityGolden is the serialized outcome of one configuration.
type parityGolden struct {
	Name       string
	Repaired   [][]string
	CleanIDs   []int
	Clean      [][]string
	Duplicates [][]int
	Stats      Stats
	AGP        []AGPMerge
	RSC        []RSCRepair
	FSCR       []FusionOutcome
}

// runParityCase executes the pipeline for one configuration and canonicalizes
// the trace (block-parallel stages append in nondeterministic order; sorting
// by stable per-phase identities restores a canonical view).
func runParityCase(t *testing.T, cfg parityConfig) parityGolden {
	return runParityCaseMode(t, cfg, false)
}

// runParityCaseMode is runParityCase with the pipeline mode explicit:
// materialize=false is the streaming default, materialize=true the
// slurp-then-clean escape hatch. Both must match the goldens and each other.
func runParityCaseMode(t *testing.T, cfg parityConfig, materialize bool) parityGolden {
	t.Helper()
	dirty := parityTable(cfg)
	rs := parityRules(parityCityPool[0])
	tr := &Trace{}
	opts := Options{
		Tau:         cfg.Tau,
		TauSet:      true,
		Metric:      distance.ByName(cfg.Metric),
		AGPStrategy: cfg.Strategy,
		Trace:       tr,
		Materialize: materialize,
	}
	res, err := Clean(dirty, rs, opts)
	if err != nil {
		t.Fatalf("%s: Clean: %v", cfg.Name, err)
	}
	g := parityGolden{Name: cfg.Name, Stats: res.Stats, Duplicates: res.Duplicates}
	for _, tp := range res.Repaired.Tuples {
		g.Repaired = append(g.Repaired, append([]string(nil), tp.Values...))
	}
	for _, tp := range res.Clean.Tuples {
		g.CleanIDs = append(g.CleanIDs, tp.ID)
		g.Clean = append(g.Clean, append([]string(nil), tp.Values...))
	}
	g.AGP = append(g.AGP, tr.AGP...)
	sort.SliceStable(g.AGP, func(i, j int) bool {
		if g.AGP[i].BlockIndex != g.AGP[j].BlockIndex {
			return g.AGP[i].BlockIndex < g.AGP[j].BlockIndex
		}
		return g.AGP[i].SourceKey < g.AGP[j].SourceKey
	})
	g.RSC = append(g.RSC, tr.RSC...)
	sort.SliceStable(g.RSC, func(i, j int) bool {
		if g.RSC[i].BlockIndex != g.RSC[j].BlockIndex {
			return g.RSC[i].BlockIndex < g.RSC[j].BlockIndex
		}
		return g.RSC[i].GroupKey < g.RSC[j].GroupKey
	})
	g.FSCR = append(g.FSCR, tr.FSCR...)
	sort.SliceStable(g.FSCR, func(i, j int) bool { return g.FSCR[i].TupleID < g.FSCR[j].TupleID })
	return g
}

const parityGoldenPath = "testdata/parity_golden.json"

// TestParityGolden pins the pipeline's exact behavior against the committed
// pre-refactor goldens: repairs, dedup, Stats, and the full per-phase Trace
// must be byte-identical for every configuration.
func TestParityGolden(t *testing.T) {
	var got []parityGolden
	for _, cfg := range parityConfigs() {
		got = append(got, runParityCase(t, cfg))
	}
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(parityGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", parityGoldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(parityGoldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update to regenerate): %v", err)
	}
	var want []parityGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d cases, run produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Name != g.Name {
			t.Fatalf("case %d: name %q vs golden %q", i, g.Name, w.Name)
		}
		if !reflect.DeepEqual(w.Stats, g.Stats) {
			t.Errorf("%s: Stats diverged:\n got %+v\nwant %+v", w.Name, g.Stats, w.Stats)
		}
		compareRows(t, w.Name+"/Repaired", g.Repaired, w.Repaired)
		compareRows(t, w.Name+"/Clean", g.Clean, w.Clean)
		if !reflect.DeepEqual(w.CleanIDs, g.CleanIDs) {
			t.Errorf("%s: clean tuple IDs diverged", w.Name)
		}
		if !reflect.DeepEqual(w.Duplicates, g.Duplicates) {
			t.Errorf("%s: duplicate sets diverged:\n got %v\nwant %v", w.Name, g.Duplicates, w.Duplicates)
		}
		if !reflect.DeepEqual(w.AGP, g.AGP) {
			t.Errorf("%s: AGP trace diverged:\n got %+v\nwant %+v", w.Name, g.AGP, w.AGP)
		}
		if !reflect.DeepEqual(w.RSC, g.RSC) {
			t.Errorf("%s: RSC trace diverged:\n got %+v\nwant %+v", w.Name, g.RSC, w.RSC)
		}
		if !reflect.DeepEqual(w.FSCR, g.FSCR) {
			t.Errorf("%s: FSCR trace diverged (%d vs %d outcomes)", w.Name, len(g.FSCR), len(w.FSCR))
		}
	}
}

func compareRows(t *testing.T, label string, got, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d rows, want %d", label, len(got), len(want))
		return
	}
	diffs := 0
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			if diffs < 5 {
				t.Errorf("%s: row %d = %v, want %v", label, i, got[i], want[i])
			}
			diffs++
		}
	}
	if diffs > 5 {
		t.Errorf("%s: …and %d more row diffs", label, diffs-5)
	}
}
