package core

import (
	"reflect"
	"testing"
)

// TestStreamMaterializeParity pins the streaming pipeline (the default) and
// the materialized escape hatch to each other, byte for byte, over the full
// parity matrix: same repairs, same clean rows and IDs, same duplicate sets,
// same Stats, same per-phase Trace. TestParityGolden separately pins the
// streaming default to the pre-refactor goldens, so together they prove
// golden == streaming == materialized.
func TestStreamMaterializeParity(t *testing.T) {
	for _, cfg := range parityConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			stream := runParityCaseMode(t, cfg, false)
			mat := runParityCaseMode(t, cfg, true)
			if !reflect.DeepEqual(stream.Stats, mat.Stats) {
				t.Errorf("Stats diverged:\nstream %+v\nmat    %+v", stream.Stats, mat.Stats)
			}
			compareRows(t, "Repaired", stream.Repaired, mat.Repaired)
			compareRows(t, "Clean", stream.Clean, mat.Clean)
			if !reflect.DeepEqual(stream.CleanIDs, mat.CleanIDs) {
				t.Error("clean tuple IDs diverged")
			}
			if !reflect.DeepEqual(stream.Duplicates, mat.Duplicates) {
				t.Errorf("duplicate sets diverged:\nstream %v\nmat    %v", stream.Duplicates, mat.Duplicates)
			}
			if !reflect.DeepEqual(stream.AGP, mat.AGP) {
				t.Errorf("AGP trace diverged (%d vs %d merges)", len(stream.AGP), len(mat.AGP))
			}
			if !reflect.DeepEqual(stream.RSC, mat.RSC) {
				t.Errorf("RSC trace diverged (%d vs %d repairs)", len(stream.RSC), len(mat.RSC))
			}
			if !reflect.DeepEqual(stream.FSCR, mat.FSCR) {
				t.Errorf("FSCR trace diverged (%d vs %d outcomes)", len(stream.FSCR), len(mat.FSCR))
			}
		})
	}
}
