package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

func TestCleanEmptyTableFails(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	if _, err := Clean(tb, rules.MustParseStrings("FD: A -> B"), Options{}); err == nil {
		t.Error("empty table should fail")
	}
	if _, err := Clean(nil, rules.MustParseStrings("FD: A -> B"), Options{}); err == nil {
		t.Error("nil table should fail")
	}
}

// TestCleanIdempotentOnCleanData: cleaning data that satisfies every rule
// changes nothing.
func TestCleanIdempotentOnCleanData(t *testing.T) {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 40, Measures: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clean(truth, rs, Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Repaired.Diff(truth); len(d) != 0 {
		t.Errorf("clean input was modified: %d cells, first %+v", len(d), d[0])
	}
}

// TestCleanStability: cleaning the cleaner's own output again changes
// nothing further (a fixed point).
func TestCleanStability(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 8; i++ {
		tb.MustAppend("k1", "v1")
	}
	tb.MustAppend("k1", "v2") // error
	rs := rules.MustParseStrings("FD: A -> B")
	first, err := Clean(tb, rs, Options{Tau: 1, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Clean(first.Repaired, rs, Options{Tau: 1, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := second.Repaired.Diff(first.Repaired); len(d) != 0 {
		t.Errorf("second pass changed %d cells", len(d))
	}
}

func TestRSCMajorityWins(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 7; i++ {
		tb.MustAppend("key", "good")
	}
	tb.MustAppend("key", "goo") // typo
	rs := rules.MustParseStrings("FD: A -> B")
	res, err := Clean(tb, rs, Options{Tau: 0, TauSet: true, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Repaired.Tuples {
		if got := res.Repaired.Cell(tp, "B"); got != "good" {
			t.Errorf("tuple %d B = %q, want good", tp.ID, got)
		}
	}
	if res.Stats.RSCRepairs != 1 {
		t.Errorf("RSC repairs = %d, want 1", res.Stats.RSCRepairs)
	}
}

func TestAGPMergesTypoGroup(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 5; i++ {
		tb.MustAppend("alphaville", "x")
	}
	tb.MustAppend("alphavill", "x") // typo in the reason part
	rs := rules.MustParseStrings("FD: A -> B")
	tr := &Trace{}
	res, err := Clean(tb, rs, Options{Tau: 1, Trace: tr, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.AGP) != 1 || tr.AGP[0].TargetKey != dataset.JoinKey([]string{"alphaville"}) {
		t.Fatalf("AGP trace: %+v", tr.AGP)
	}
	last := res.Repaired.Tuples[5]
	if got := res.Repaired.Cell(last, "A"); got != "alphaville" {
		t.Errorf("typo not repaired: %q", got)
	}
}

func TestMergeCapBlocksDistantMerge(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 5; i++ {
		tb.MustAppend("aaaaaaaa", "x")
	}
	tb.MustAppend("zzzzzzzz", "y") // small but totally unrelated group
	rs := rules.MustParseStrings("FD: A -> B")
	tr := &Trace{}
	res, err := Clean(tb, rs, Options{Tau: 1, Trace: tr, KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.AGP) != 1 {
		t.Fatalf("AGP detections: %+v", tr.AGP)
	}
	if tr.AGP[0].TargetKey != "" {
		t.Errorf("distant group merged into %q; the cap should block it", tr.AGP[0].TargetKey)
	}
	last := res.Repaired.Tuples[5]
	if got := res.Repaired.Cell(last, "A"); got != "zzzzzzzz" {
		t.Errorf("unrelated tuple destroyed: %q", got)
	}
	// With the cap disabled (paper's unconditional merge), it does merge.
	tr2 := &Trace{}
	if _, err := Clean(tb, rs, Options{Tau: 1, MergeCapRatio: 10, Trace: tr2, KeepDuplicates: true}); err != nil {
		t.Fatal(err)
	}
	if tr2.AGP[0].TargetKey == "" {
		t.Error("unconditional merge should have merged")
	}
}

func TestTauZeroDisablesAGP(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("k", "v")
	tb.MustAppend("q", "w")
	rs := rules.MustParseStrings("FD: A -> B")
	tr := &Trace{}
	if _, err := Clean(tb, rs, Options{Tau: 0, TauSet: true, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.AGP) != 0 {
		t.Errorf("τ=0 should detect nothing, got %d", len(tr.AGP))
	}
}

func TestDedup(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	tb.MustAppend("y", "2")
	tb.MustAppend("x", "1")
	out, dups := dedup(tb)
	if out.Len() != 2 {
		t.Fatalf("deduped len = %d", out.Len())
	}
	if len(dups) != 1 || len(dups[0]) != 3 || dups[0][0] != 0 {
		t.Errorf("dups = %v", dups)
	}
	// Representative keeps the lowest ID.
	if out.Tuples[0].ID != 0 || out.Tuples[1].ID != 2 {
		t.Errorf("representatives: %d, %d", out.Tuples[0].ID, out.Tuples[1].ID)
	}
}

func TestKeepDuplicatesOption(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	rs := rules.MustParseStrings("FD: A -> B")
	res, err := Clean(tb, rs, Options{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean.Len() != 2 {
		t.Errorf("KeepDuplicates ignored: %d tuples", res.Clean.Len())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tau != 1 {
		t.Errorf("default Tau = %d", o.Tau)
	}
	if o.Metric == nil || o.Metric.Name() != "levenshtein" {
		t.Error("default metric should be levenshtein")
	}
	if o.MaxFusionStates != 4096 {
		t.Errorf("default MaxFusionStates = %d", o.MaxFusionStates)
	}
	if o.MinimalityPrior != 0.05 {
		t.Errorf("default MinimalityPrior = %v", o.MinimalityPrior)
	}
	if o.MergeCapRatio != 0.4 {
		t.Errorf("default MergeCapRatio = %v", o.MergeCapRatio)
	}
	// τ=0 is honoured only with TauSet.
	o2 := Options{Tau: 0, TauSet: true}.withDefaults()
	if o2.Tau != 0 {
		t.Errorf("TauSet zero overridden: %d", o2.Tau)
	}
	// Disabled minimality prior.
	o3 := Options{MinimalityPrior: 0, MinimalityPriorSet: true}.withDefaults()
	if o3.changePenalty() != 1 {
		t.Errorf("disabled prior penalty = %v", o3.changePenalty())
	}
	if p := (Options{MinimalityPrior: 0.05}).withDefaults().changePenalty(); p <= 0 || p >= 1 {
		t.Errorf("penalty = %v, want in (0,1)", p)
	}
}

func TestCosineMetricRuns(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 5; i++ {
		tb.MustAppend("stable", "val")
	}
	tb.MustAppend("stable", "va")
	rs := rules.MustParseStrings("FD: A -> B")
	if _, err := Clean(tb, rs, Options{Metric: distance.Cosine{}}); err != nil {
		t.Fatalf("cosine metric run failed: %v", err)
	}
}

// TestCleanNeverInventsValues: every repaired value must already occur
// somewhere in the dirty table's column (repairs draw from observed data).
func TestCleanNeverInventsValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := dataset.NewTable(dataset.MustSchema("A", "B"))
		for i := 0; i < 30; i++ {
			tb.MustAppend(fmt.Sprint("k", rng.Intn(4)), fmt.Sprint("v", rng.Intn(3)))
		}
		rs := rules.MustParseStrings("FD: A -> B")
		res, err := Clean(tb, rs, Options{Tau: 1, KeepDuplicates: true})
		if err != nil {
			return false
		}
		domA := map[string]bool{}
		domB := map[string]bool{}
		for _, tp := range tb.Tuples {
			domA[tb.Cell(tp, "A")] = true
			domB[tb.Cell(tp, "B")] = true
		}
		for _, tp := range res.Repaired.Tuples {
			if !domA[res.Repaired.Cell(tp, "A")] || !domB[res.Repaired.Cell(tp, "B")] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCleanDeterministic: identical inputs and options give identical
// outputs despite internal parallelism.
func TestCleanDeterministic(t *testing.T) {
	truth, rs, _ := datagen.CAR(datagen.CARConfig{Rows: 600, Seed: 5})
	a, err := Clean(truth, rs, Options{Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Clean(truth, rs, Options{Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Repaired.Diff(b.Repaired); len(d) != 0 {
		t.Errorf("non-deterministic cleaning: %d diffs", len(d))
	}
}

func TestFusionBlockExports(t *testing.T) {
	// RunFSCR with empty blocks is a no-op clone.
	tb := dataset.NewTable(dataset.MustSchema("A"))
	tb.MustAppend("x")
	out := RunFSCR(tb, nil, Options{}, nil)
	if d := out.Diff(tb); len(d) != 0 {
		t.Error("no-block FSCR changed data")
	}
}

func TestMaxRuneLen(t *testing.T) {
	dict := intern.NewDict()
	ev := distance.NewEvaluator(distance.Levenshtein{}, dict)
	enc := func(vals ...string) []uint32 {
		out := make([]uint32, len(vals))
		for i, v := range vals {
			out[i] = dict.Intern(v)
		}
		return out
	}
	if got := maxRuneLen(ev, enc("ab", "c"), enc("dëfg")); got != 4 {
		t.Errorf("maxRuneLen = %d", got)
	}
	if got := maxRuneLen(ev, nil, nil); got != 0 {
		t.Errorf("maxRuneLen empty = %d", got)
	}
}

func TestStateKey(t *testing.T) {
	x := newFx("A", "B")
	f := x.fuser([]version{{pos: x.pos(rules.MustParseStrings("FD: A -> B")[0]), ids: []uint32{0, 0}}}, nil, 10)
	key := func(mask int, a assignment) string { return string(f.stateKey(mask, a)) }
	a1 := x.assign(map[string]string{"A": "x"})
	a2 := x.assign(map[string]string{"A": "x", "B": "y"})
	if key(1, a1) == key(1, a2) {
		t.Error("different assignments share a state key")
	}
	if key(1, a1) == key(2, a1) {
		t.Error("different masks share a state key")
	}
	// Absent attribute vs empty value must be distinguishable.
	if key(1, x.assign(map[string]string{"A": ""})) == key(1, x.assign(nil)) {
		t.Error("empty value collides with absent attribute")
	}
}

// TestAGPSupportBiasedStrategy: with two equidistant normal targets, the
// support-biased strategy merges into the better-supported one, while the
// paper's nearest policy tie-breaks lexicographically.
func TestAGPSupportBiasedStrategy(t *testing.T) {
	build := func() *dataset.Table {
		tb := dataset.NewTable(dataset.MustSchema("A", "B"))
		// Two normal groups at edit distance 1 from the abnormal key
		// "corex": "corea" (2 tuples) and "corez" (9 tuples; later key).
		tb.MustAppend("corea", "v")
		tb.MustAppend("corea", "v")
		for i := 0; i < 9; i++ {
			tb.MustAppend("corez", "v")
		}
		tb.MustAppend("corex", "v") // abnormal singleton
		return tb
	}
	rs := rules.MustParseStrings("FD: A -> B")

	trNearest := &Trace{}
	if _, err := Clean(build(), rs, Options{Tau: 1, Trace: trNearest, KeepDuplicates: true}); err != nil {
		t.Fatal(err)
	}
	trBiased := &Trace{}
	if _, err := Clean(build(), rs, Options{Tau: 1, AGPStrategy: AGPSupportBiased, Trace: trBiased, KeepDuplicates: true}); err != nil {
		t.Fatal(err)
	}
	if got := trNearest.AGP[0].TargetKey; got != dataset.JoinKey([]string{"corea"}) {
		t.Errorf("nearest strategy merged into %q, want corea (lexicographic tie-break)", got)
	}
	if got := trBiased.AGP[0].TargetKey; got != dataset.JoinKey([]string{"corez"}) {
		t.Errorf("support-biased strategy merged into %q, want corez (9 tuples)", got)
	}
}
