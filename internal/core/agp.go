package core

import (
	"math"
	"sort"

	"mlnclean/internal/distance"
	"mlnclean/internal/index"
)

// agpMemo carries nearest-target decisions across successive rebuilds of
// the same rule block (the DeltaCleaner's case: one mutation dirties a
// block whose group structure barely moves). A source's cached decision is
// reusable when three things hold: the cache is fresh (the immediately
// preceding rebuild wrote it — run stamps enforce this, so a rebuild the
// source sat out invalidates it), the source's γ⋆ is bit-identical (same
// piece KeyID ⇒ same value IDs ⇒ same distances), and its best target
// survived unchanged. A reusable decision then only has to beat the
// targets that were added or changed since — every unchanged target
// already lost to it, and the full scan's (score, key) minimum is
// scan-order independent, so challenging the delta reproduces the full
// scan's choice exactly. Batch callers pass nil and take the plain scan.
type agpMemo struct {
	run     int
	fresh   int                  // run whose normal flow last completed
	targets map[string]agpTarget // normal-group key → identity, as of `fresh`
	best    map[string]agpBest   // abnormal-group key → decision
}

type agpTarget struct {
	kid      uint32 // γ⋆ piece KeyID — fixes the target's value IDs
	discount float64
}

type agpBest struct {
	run    int
	srcKid uint32
	key    string // best target's group key
	d      float64
	score  float64
}

// agp runs Abnormal Group Processing (§5.1.1) on one block: groups whose
// related-tuple count is ≤ τ are abnormal; each abnormal group is merged
// into its nearest normal group, where the distance between two groups is
// the distance between their γ⋆ pieces (the piece related to the most
// tuples). If the block has no normal group, the largest group is promoted
// so merging remains well-defined.
//
// The O(abnormal×normal) scan runs entirely over interned value IDs through
// the block's distance evaluator: per-pair results are memoized
// symmetrically (γ⋆ values repeat across sources) and the per-pair DP is
// bounded by the running best, so hopeless targets abandon early. A non-nil
// memo further reduces repeat rebuilds to the changed targets only.
//
// Returns the number of abnormal groups detected, the total γ count inside
// them (#dag), and the number of promotions (0 or 1).
func agp(blockIdx int, b *index.Block, tau int, ev *distance.Evaluator, mergeCap float64, strategy AGPStrategy, memo *agpMemo, tr *Trace) (abnormal, abnormalPieces, promotions int) {
	if memo != nil {
		memo.run++
	}
	if len(b.Groups) <= 1 {
		return 0, 0, 0
	}
	var abnormalGroups, normalGroups []*index.Group
	for _, g := range b.Groups {
		if g.TupleCount() <= tau {
			abnormalGroups = append(abnormalGroups, g)
		} else {
			normalGroups = append(normalGroups, g)
		}
	}
	if len(abnormalGroups) == 0 {
		return 0, 0, 0
	}
	if len(normalGroups) == 0 {
		// Promote the largest abnormal group (ties: lexicographic key) to
		// normal so every other group has a merge target, and record the
		// promotion — repair audits must see that this block was degenerate
		// and which group the others were measured against.
		sort.Slice(abnormalGroups, func(i, j int) bool {
			ti, tj := abnormalGroups[i].TupleCount(), abnormalGroups[j].TupleCount()
			if ti != tj {
				return ti > tj
			}
			return abnormalGroups[i].Key < abnormalGroups[j].Key
		})
		normalGroups = abnormalGroups[:1]
		abnormalGroups = abnormalGroups[1:]
		promotions = 1
		promo := AGPMerge{
			BlockIndex:   blockIdx,
			RuleID:       b.Rule.ID,
			SourceKey:    normalGroups[0].Key,
			SourcePieces: len(normalGroups[0].Pieces),
			Promoted:     true,
		}
		for _, p := range normalGroups[0].Pieces {
			promo.SourceTuples = append(promo.SourceTuples, p.TupleIDs...)
		}
		sort.Ints(promo.SourceTuples)
		tr.addAGP(promo)
		if len(abnormalGroups) == 0 {
			return 0, 0, promotions
		}
	}

	// Deterministic processing order.
	sort.Slice(abnormalGroups, func(i, j int) bool { return abnormalGroups[i].Key < abnormalGroups[j].Key })

	// Precompute γ⋆ IDs (and, for the support-biased strategy, the support
	// discount) of normal groups once.
	type target struct {
		g        *index.Group
		ids      []uint32
		discount float64 // ln(e + tuple count); 1 under AGPNearest
	}
	targets := make([]target, len(normalGroups))
	for i, g := range normalGroups {
		discount := 1.0
		if strategy == AGPSupportBiased {
			discount = math.Log(math.E + float64(g.TupleCount()))
		}
		targets[i] = target{g: g, ids: g.Star().ValueIDs(), discount: discount}
	}

	// With a fresh memo, work out which targets moved since the previous
	// rebuild (added, removed, or different γ⋆/discount) and index the rest.
	var changed map[string]bool
	var targetIdx map[string]int
	if memo != nil && promotions == 0 {
		curr := make(map[string]agpTarget, len(targets))
		targetIdx = make(map[string]int, len(targets))
		for i := range targets {
			curr[targets[i].g.Key] = agpTarget{kid: targets[i].g.Star().KeyID(), discount: targets[i].discount}
			targetIdx[targets[i].g.Key] = i
		}
		if memo.fresh == memo.run-1 {
			changed = make(map[string]bool)
			for k, ct := range curr {
				if pt, ok := memo.targets[k]; !ok || pt != ct {
					changed[k] = true
				}
			}
			for k := range memo.targets {
				if _, ok := curr[k]; !ok {
					changed[k] = true // removed: any decision pointing here rescans
				}
			}
		}
		memo.targets = curr
		memo.fresh = memo.run
		if memo.best == nil {
			memo.best = make(map[string]agpBest)
		}
	}
	// Indices of moved targets, in scan order — sources with a reusable
	// decision score only these.
	var changedIdx []int
	if changed != nil {
		for i := range targets {
			if changed[targets[i].g.Key] {
				changedIdx = append(changedIdx, i)
			}
		}
	}

	for _, src := range abnormalGroups {
		star := src.Star()
		if star == nil {
			continue
		}
		sids := star.ValueIDs()
		best := -1
		bestD := math.Inf(1)     // raw distance of the best target
		bestScore := math.Inf(1) // discounted score of the best target
		cached := false
		if changed != nil {
			if e, ok := memo.best[src.Key]; ok && e.run == memo.run-1 && e.srcKid == star.KeyID() && !changed[e.key] {
				if i, ok := targetIdx[e.key]; ok {
					best, bestD, bestScore = i, e.d, e.score
					cached = true
				}
			}
		}
		scan := len(targets)
		if cached {
			scan = len(changedIdx) // every other target lost to the cached decision last rebuild
		}
		for j := 0; j < scan; j++ {
			i := j
			if cached {
				i = changedIdx[j]
			}
			// The bounded scan can only prune on the raw distance; the
			// discount (≥ 1) only shrinks scores.
			bound := bestScore * targets[i].discount
			if math.IsInf(bound, 1) {
				bound = math.Inf(1)
			}
			d := ev.ValuesBounded(sids, targets[i].ids, bound)
			score := d / targets[i].discount
			// Order independence: strictly better score wins; an exact score
			// tie falls to the explicit key comparison, never to the scan
			// order of targets. A candidate whose true score ties bestScore
			// has d == bound exactly, which the bounded evaluator returns
			// exactly (it only clips strictly past the bound), so clipping
			// cannot hide a tie.
			if score < bestScore || (score == bestScore && best >= 0 && targets[i].g.Key < targets[best].g.Key) {
				bestScore = score
				bestD = d
				best = i
			}
		}
		if memo != nil && promotions == 0 && best >= 0 {
			memo.best[src.Key] = agpBest{
				run: memo.run, srcKid: star.KeyID(),
				key: targets[best].g.Key, d: bestD, score: bestScore,
			}
		}
		abnormal++
		abnormalPieces += len(src.Pieces)
		merge := AGPMerge{
			BlockIndex:   blockIdx,
			RuleID:       b.Rule.ID,
			SourceKey:    src.Key,
			SourcePieces: len(src.Pieces),
		}
		for _, p := range src.Pieces {
			merge.SourceTuples = append(merge.SourceTuples, p.TupleIDs...)
		}
		sort.Ints(merge.SourceTuples)
		if best >= 0 && bestD <= mergeCap*float64(maxRuneLen(ev, sids, targets[best].ids)) {
			merge.TargetKey = targets[best].g.Key
			b.MergeGroups(src, targets[best].g)
		}
		tr.addAGP(merge)
	}
	return abnormal, abnormalPieces, promotions
}

// maxRuneLen returns the larger total rune length of the two value-ID
// slices — the denominator for the relative merge cap. Rune lengths come
// from the evaluator's per-ID cache.
func maxRuneLen(ev *distance.Evaluator, a, b []uint32) int {
	la, lb := 0, 0
	for _, id := range a {
		la += ev.RuneLen(id)
	}
	for _, id := range b {
		lb += ev.RuneLen(id)
	}
	if lb > la {
		return lb
	}
	return la
}
