// Package core implements MLNClean's two-stage cleaning pipeline (§4–§5):
// MLN index construction, Abnormal Group Processing (AGP), reliability-score
// cleaning (RSC) on top of per-block MLN weight learning, fusion-score
// conflict resolution (FSCR), and duplicate elimination.
package core

import (
	"mlnclean/internal/distance"
	"mlnclean/internal/mln"
)

// Options configures a cleaning run.
type Options struct {
	// Tau is the AGP threshold τ: groups with tuple count ≤ Tau are treated
	// as abnormal (§5.1.1). The paper tunes τ per dataset (1 on CAR, 10 on
	// HAI). Default 1.
	Tau int
	// TauSet, when true, honours Tau even if it is zero (τ=0 disables AGP,
	// exercised by Fig. 8). When false and Tau==0 the default of 1 applies.
	TauSet bool
	// Metric is the string distance used by AGP and RSC. Default Levenshtein
	// (§7.1); Cosine reproduces Table 5.
	Metric distance.Metric
	// AGPStrategy selects the abnormal-group merge-target policy. The paper
	// merges into the nearest normal group and names better strategies as
	// its main future work (§8); AGPSupportBiased is this repository's
	// exploration of that direction (ablated in BenchmarkAblationAGP).
	AGPStrategy AGPStrategy
	// MergeCapRatio bounds AGP merges: an abnormal group only merges into
	// its nearest normal group when their γ⋆ distance is at most this
	// fraction of the γ⋆ value length. Error-born groups sit very close to
	// their origin (a typo is one edit, ~5% of a key), while small-but-clean
	// groups — common when the distributed partitioner fragments a dataset —
	// are far from every other group (~40%+). The paper merges
	// unconditionally and flags abnormal-group identification as its main
	// future work (§5.1.1, §8); the cap is our answer, ablated in
	// BenchmarkAblationMergeCap. Default 0.4; values ≥ 1 restore the paper's
	// unconditional merge.
	MergeCapRatio float64
	// Learn configures the per-block MLN weight learner.
	Learn mln.LearnOptions
	// MaxFusionStates caps the FSCR permutation search per tuple. The
	// recursion of Alg. 2 is O(m!·m); the memoized search never revisits a
	// (consumed-set, assignment) state and aborts at the cap, falling back
	// to the best fusion found so far. Default 4096.
	MaxFusionStates int
	// Parallelism bounds the goroutines used for block-level stage-I
	// cleaning. Default: number of CPUs.
	Parallelism int
	// MinimalityPrior is the assumed prior cell-error rate ε used by FSCR to
	// weight candidate fusions by the likelihood of the observed tuple:
	// every cell a fusion changes multiplies its score by ε/(1−ε). This is
	// the principle of minimality the paper bakes into the reliability score
	// (§1, Def. 2) carried into stage II; it deterministically resolves
	// "identity steal" ties where the fusion score alone is ambiguous
	// (see DESIGN.md). Set to 0.5 to disable (a change then costs nothing);
	// default 0.05, the enterprise error rate the paper cites (§7.1).
	MinimalityPrior float64
	// MinimalityPriorSet honours a zero MinimalityPrior (treated as 0.05
	// otherwise).
	MinimalityPriorSet bool
	// KeepDuplicates skips the final duplicate-elimination step.
	KeepDuplicates bool
	// DisablePlanner turns off the selectivity-driven rule planner: the MLN
	// index is built by the fixed-order row scan and stage-I blocks run in
	// rule order. The planner never changes the cleaning outcome (only
	// evaluation order), so this is a comparison/debugging switch.
	DisablePlanner bool
	// Materialize disables the streaming stage-I pipeline: the MLN index is
	// fully built before any cleaning starts and AGP, weight learning, and
	// RSC each run as their own block-parallel pass over it. The default
	// (streaming) pipeline pulls blocks from an iterator and fuses the three
	// phases per block, so at most a window of blocks carries its full
	// pre-RSC piece set at once. Output is identical either way; this is the
	// escape hatch and comparison switch.
	Materialize bool
	// Trace, when non-nil, collects the per-phase decisions needed by the
	// component metrics of §7.3 (Precision/Recall-A/R/F, #dag).
	Trace *Trace
	// RunID is an opaque correlation tag carried through logs, wire options,
	// and session records so one clean can be traced across coordinator,
	// workers, and WAL replays. It must never influence the cleaning outcome.
	RunID string
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 && !o.TauSet {
		o.Tau = 1
	}
	if o.Tau < 0 {
		o.Tau = 0
	}
	if o.Metric == nil {
		o.Metric = distance.Levenshtein{}
	}
	if o.MaxFusionStates <= 0 {
		o.MaxFusionStates = 4096
	}
	if o.MergeCapRatio <= 0 {
		o.MergeCapRatio = 0.4
	}
	if o.MinimalityPrior <= 0 && !o.MinimalityPriorSet {
		o.MinimalityPrior = 0.05
	}
	if o.MinimalityPrior < 0 {
		o.MinimalityPrior = 0
	}
	if o.MinimalityPrior > 0.5 {
		o.MinimalityPrior = 0.5
	}
	return o
}

// AGPStrategy enumerates abnormal-group merge-target policies.
type AGPStrategy int

const (
	// AGPNearest is the paper's policy: merge into the normal group whose
	// γ⋆ is closest (§5.1.1).
	AGPNearest AGPStrategy = iota
	// AGPSupportBiased scores targets by distance / ln(e + tuple count):
	// among comparably close targets the better-supported group wins, which
	// resists merging into another error-born group. This implements the
	// "more sophisticated strategies to process abnormal groups" the paper
	// defers to future work (§8).
	AGPSupportBiased
)

// changePenalty is the multiplicative cost of one changed cell under the
// minimality prior: ε/(1−ε). A prior of 0 disables minimality (factor 1)
// only via MinimalityPriorSet; 0.5 also yields factor 1.
func (o Options) changePenalty() float64 {
	if o.MinimalityPrior <= 0 {
		return 1
	}
	return o.MinimalityPrior / (1 - o.MinimalityPrior)
}

// Stats summarizes a cleaning run.
type Stats struct {
	Tuples            int
	Blocks            int
	Groups            int
	AbnormalGroups    int
	AbnormalPieces    int // #dag: γs inside detected abnormal groups
	AGPPromotions     int // abnormal groups promoted to normal in blocks with no normal group
	RSCRepairs        int // pieces rewritten by RSC
	FSCRCellChanges   int // cells changed during fusion (vs dirty input)
	FusionFailures    int // tuples whose every fusion order conflicted out
	DuplicatesRemoved int
	LearnIterations   int
}

// Add folds another run's counters into s. Blocks is kept at the maximum
// rather than summed: every distributed worker sees the same rule set, so
// summing would multiply the block count by the worker count.
func (s *Stats) Add(o Stats) {
	s.Tuples += o.Tuples
	if o.Blocks > s.Blocks {
		s.Blocks = o.Blocks
	}
	s.Groups += o.Groups
	s.AbnormalGroups += o.AbnormalGroups
	s.AbnormalPieces += o.AbnormalPieces
	s.AGPPromotions += o.AGPPromotions
	s.RSCRepairs += o.RSCRepairs
	s.FSCRCellChanges += o.FSCRCellChanges
	s.FusionFailures += o.FusionFailures
	s.DuplicatesRemoved += o.DuplicatesRemoved
	s.LearnIterations += o.LearnIterations
}
