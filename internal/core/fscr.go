package core

import (
	"encoding/binary"
	"runtime"
	"sort"
	"sync"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// FSCR runs on the dictionary-encoded view of the data: assignments are
// schema-indexed []uint32 slices (one value ID per attribute position, with
// a sentinel for "not pinned"), versions carry their pieces' interned IDs,
// and candidate compatibility checks compare fixed-width integers. Strings
// reappear only when a winning fusion is written back into the repaired
// table and when trace entries are recorded.

// unsetID marks an attribute position the fusion has not pinned yet. Value
// IDs are dense from 0, so the all-ones sentinel can never collide.
const unsetID = ^uint32(0)

// version is one tuple's cleaned piece from one block (a data version).
type version struct {
	blockIdx int
	rule     *rules.Rule
	pos      []int // schema positions of the rule's attrs (reason+result)
	ids      []uint32
	kid      uint32 // the piece's fixed-width identity (replacement exclusion)
	weight   float64
}

// assignment is a partial tuple: one value ID per schema position, unsetID
// where nothing is pinned.
type assignment []uint32

func newAssignment(width int) assignment {
	a := make(assignment, width)
	for i := range a {
		a[i] = unsetID
	}
	return a
}

func (a assignment) clone() assignment {
	out := make(assignment, len(a))
	copy(out, a)
	return out
}

// conflictsWith returns the schema positions on which the assignment
// disagrees with the (pos, ids) piece.
func (a assignment) conflictsWith(pos []int, ids []uint32) []int {
	var out []int
	for i, p := range pos {
		if v := a[p]; v != unsetID && v != ids[i] {
			out = append(out, p)
		}
	}
	return out
}

// absorb merges the piece into the assignment (caller must have resolved
// conflicts first).
func (a assignment) absorb(pos []int, ids []uint32) {
	for i, p := range pos {
		a[p] = ids[i]
	}
}

// FusionBlock is one block's stage-I output as consumed by FSCR: the winner
// piece covering each tuple, plus the block's candidate pieces used for
// conflict replacement. The distributed gather step builds these from the
// union of all workers' blocks to run a global conflict resolution. All
// pieces of all blocks must share one dictionary.
type FusionBlock struct {
	Rule       *rules.Rule
	Attrs      []string
	Versions   map[int]*index.Piece
	Candidates []*index.Piece
}

// fusionBlocksFromIndex extracts stage-I results from a cleaned index.
func fusionBlocksFromIndex(ix *index.Index) []*FusionBlock {
	blocks := make([]*FusionBlock, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		fb := &FusionBlock{Rule: b.Rule, Attrs: b.Rule.Attrs(), Versions: make(map[int]*index.Piece)}
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				fb.Candidates = append(fb.Candidates, p)
				for _, id := range p.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
		blocks[bi] = fb
	}
	return blocks
}

// FusionBlocksFromIndex exposes a cleaned index's stage-I output as FSCR
// inputs. Clean composes it internally; the distributed gather and the
// pipeline benchmarks build on it directly.
func FusionBlocksFromIndex(ix *index.Index) []*FusionBlock {
	return fusionBlocksFromIndex(ix)
}

// fusionDict returns the shared dictionary of the blocks' pieces, or nil
// when no block holds any piece.
func fusionDict(blocks []*FusionBlock) *intern.Dict {
	for _, fb := range blocks {
		if len(fb.Candidates) > 0 {
			return fb.Candidates[0].Dict()
		}
	}
	return nil
}

// candEntry caches one replacement candidate: its value IDs, weight, and
// identities, precomputed so conflict checks compare integers only.
type candEntry struct {
	ids    []uint32
	weight float64
	kid    uint32
	key    string // display key; orders equal-weight candidates
}

// blockCands pre-indexes a block's candidates for the replacement search:
// candidates sorted best-first plus per-attribute posting lists, so a
// conflicted merge scans only the candidates matching one pinned value
// instead of the whole block.
type blockCands struct {
	pos []int // schema positions of the block's attrs
	all []candEntry
	// byVal[i][id] lists indices into all (ascending = best first) of
	// candidates whose i-th attribute carries value ID id.
	byVal []map[uint32][]int32
}

func buildBlockCands(fb *FusionBlock, pos []int) *blockCands {
	bc := &blockCands{pos: pos}
	bc.all = make([]candEntry, 0, len(fb.Candidates))
	for _, p := range fb.Candidates {
		bc.all = append(bc.all, candEntry{ids: p.ValueIDs(), weight: p.Weight, kid: p.KeyID(), key: p.Key()})
	}
	sort.Slice(bc.all, func(i, j int) bool {
		if bc.all[i].weight != bc.all[j].weight {
			return bc.all[i].weight > bc.all[j].weight
		}
		return bc.all[i].key < bc.all[j].key
	})
	bc.byVal = make([]map[uint32][]int32, len(bc.pos))
	for i := range bc.pos {
		m := make(map[uint32][]int32)
		for ci, c := range bc.all {
			if i < len(c.ids) {
				m[c.ids[i]] = append(m[c.ids[i]], int32(ci))
			}
		}
		bc.byVal[i] = m
	}
	return bc
}

// find returns the best candidate compatible with merged, excluding the
// candidate identified by excludeKid. Compatibility: the candidate agrees
// with merged on every attribute of this block merged pins.
func (bc *blockCands) find(merged assignment, excludeKid uint32) (candEntry, bool) {
	// Choose the shortest posting list among pinned attributes.
	bestList := -1
	var list []int32
	for i, p := range bc.pos {
		v := merged[p]
		if v == unsetID {
			continue
		}
		l := bc.byVal[i][v]
		if bestList == -1 || len(l) < len(list) {
			bestList = i
			list = l
		}
	}
	check := func(c candEntry) bool {
		if c.kid == excludeKid {
			return false
		}
		for i, p := range bc.pos {
			if v := merged[p]; v != unsetID && c.ids[i] != v {
				return false
			}
		}
		return true
	}
	if bestList >= 0 {
		for _, i := range list {
			if c := bc.all[i]; check(c) {
				return c, true
			}
		}
		return candEntry{}, false
	}
	for _, c := range bc.all {
		if check(c) {
			return c, true
		}
	}
	return candEntry{}, false
}

// fscr runs fusion-score conflict resolution (Alg. 2) over the whole table,
// reusing the index's already-encoded rows.
func fscr(dirty *dataset.Table, ix *index.Index, opts Options, st *Stats) *dataset.Table {
	return RunFSCREncoded(dirty, ix.Encoded(), fusionBlocksFromIndex(ix), opts, st)
}

// RunFSCR fuses each tuple's per-block cleaned versions into the single
// assignment with the maximal fusion score (the product of the merged
// pieces' weights, Eq. 5, combined with the minimality/observation prior),
// resolving conflicts by substituting the highest-weight non-conflicting
// piece from the conflicting block. The repaired table (same tuple IDs as
// the input) is returned; st (optional) accumulates cell-change and failure
// counts, and opts.Trace records per-tuple fusion outcomes. Tuples fuse
// independently and run in parallel.
func RunFSCR(dirty *dataset.Table, blocks []*FusionBlock, opts Options, st *Stats) *dataset.Table {
	return RunFSCREncoded(dirty, nil, blocks, opts, st)
}

// RunFSCREncoded is RunFSCR for callers that already hold the dirty table's
// encoded rows in the pieces' dictionary (the stand-alone pipeline reuses
// the index's encoding; the distributed gather reuses the rows interned at
// Submit). A nil or foreign-dictionary enc is re-encoded.
func RunFSCREncoded(dirty *dataset.Table, enc *dataset.Encoded, blocks []*FusionBlock, opts Options, st *Stats) *dataset.Table {
	opts = opts.withDefaults()
	defer mStageFSCR.ObserveSince(time.Now())
	if st == nil {
		st = &Stats{}
	}
	repaired := dirty.Clone()
	dict := fusionDict(blocks)
	if dict == nil {
		return repaired // no pieces anywhere: nothing to fuse
	}
	if enc == nil || enc.Dict != dict || len(enc.Rows) != len(dirty.Tuples) {
		// Encode the observed (dirty) rows into the pieces' dictionary before
		// the parallel loop — the only phase that may grow the dictionary.
		// (The distributed batch path hands the gather an executor whose
		// Submit never ran, so an empty/misaligned encoding re-encodes here.)
		enc = dataset.Encode(dirty, dict)
	}
	schema := repaired.Schema
	width := schema.Len()

	// Distinct-value counts per rule attribute, for the observation model:
	// a replacement error lands on one specific value out of |domain|−1
	// alternatives, so changing a large-domain cell (e.g. Model) explains
	// the observed tuple less well than changing a small-domain cell (e.g.
	// Make) — exactly the asymmetry that disambiguates which side of a
	// version conflict was corrupted. Distinct IDs ≡ distinct values.
	domainSize := make([]int, width)
	posPerBlock := make([][]int, len(blocks))
	needed := make([]bool, width)
	for bi, fb := range blocks {
		pos := make([]int, len(fb.Attrs))
		for i, a := range fb.Attrs {
			pos[i] = schema.MustIndex(a)
			needed[pos[i]] = true
		}
		posPerBlock[bi] = pos
	}
	var seen map[uint32]struct{}
	for p := 0; p < width; p++ {
		if !needed[p] {
			continue
		}
		if seen == nil {
			seen = make(map[uint32]struct{}, len(enc.Rows))
		} else {
			clear(seen)
		}
		for _, row := range enc.Rows {
			seen[row[p]] = struct{}{}
		}
		domainSize[p] = len(seen)
	}

	candidates := make([]*blockCands, len(blocks))
	for bi, fb := range blocks {
		candidates[bi] = buildBlockCands(fb, posPerBlock[bi])
	}

	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par < 1 {
		par = 1
	}
	var (
		wg          sync.WaitGroup
		statsMu     sync.Mutex
		cellChanges int
		failures    int
	)
	chunk := (len(repaired.Tuples) + par - 1) / par
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(repaired.Tuples); lo += chunk {
		hi := lo + chunk
		if hi > len(repaired.Tuples) {
			hi = len(repaired.Tuples)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			localChanges, localFailures := 0, 0
			for i := lo; i < hi; i++ {
				c, f := fuseTuple(repaired.Tuples[i], enc.Rows[i], dict, schema,
					blocks, posPerBlock, candidates, domainSize, opts)
				localChanges += c
				if f {
					localFailures++
				}
			}
			statsMu.Lock()
			cellChanges += localChanges
			failures += localFailures
			statsMu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	st.FSCRCellChanges += cellChanges
	st.FusionFailures += failures
	mFSCRCellChanges.Add(int64(cellChanges))
	mFSCRConflicts.Add(int64(failures))
	return repaired
}

// fuseTuple runs the fusion for one tuple, applying the winning assignment
// in place. dirtyRow is the tuple's observed values as IDs in the blocks'
// dictionary. Returns the number of changed cells and whether fusion
// failed.
func fuseTuple(t *dataset.Tuple, dirtyRow []uint32, dict *intern.Dict, schema *dataset.Schema,
	blocks []*FusionBlock, posPerBlock [][]int, candidates []*blockCands,
	domainSize []int, opts Options) (int, bool) {
	var versions []version
	for bi, fb := range blocks {
		p, ok := fb.Versions[t.ID]
		if !ok {
			continue
		}
		versions = append(versions, version{
			blockIdx: bi,
			rule:     fb.Rule,
			pos:      posPerBlock[bi],
			ids:      p.ValueIDs(),
			kid:      p.KeyID(),
			weight:   p.Weight,
		})
	}
	if len(versions) == 0 {
		return 0, false
	}
	f := newFuser(versions, candidates, opts.MaxFusionStates, schema.Len())
	f.penalty = opts.changePenalty()
	f.domainSize = domainSize
	f.dirtyRow = dirtyRow
	f.dict = dict
	f.schema = schema
	best, fscore, conflictPos := f.run()

	outcome := FusionOutcome{TupleID: t.ID, FScore: fscore}
	for _, p := range conflictPos {
		outcome.ConflictAttrs = append(outcome.ConflictAttrs, schema.Attr(p))
	}
	sort.Strings(outcome.ConflictAttrs)
	if best == nil {
		outcome.Failed = true
		opts.Trace.addFusion(outcome)
		return 0, true
	}
	changes := 0
	for pos, id := range best {
		if id == unsetID || dirtyRow[pos] == id {
			continue
		}
		val := dict.Value(id)
		outcome.Changed = append(outcome.Changed, CellChange{Attr: schema.Attr(pos), Old: t.Values[pos], New: val})
		t.Values[pos] = val
		changes++
	}
	sort.Slice(outcome.Changed, func(i, j int) bool { return outcome.Changed[i].Attr < outcome.Changed[j].Attr })
	opts.Trace.addFusion(outcome)
	return changes, false
}

// fuser performs the memoized permutation search of Alg. 2 for one tuple.
type fuser struct {
	versions   []version
	candidates []*blockCands
	maxStates  int
	// penalty is the per-changed-cell factor ε/(1−ε) of the minimality
	// prior; dirtyRow holds the tuple's observed value IDs per position;
	// domainSize holds distinct-value counts for the observation model.
	penalty    float64
	dirtyRow   []uint32
	domainSize []int
	dict       *intern.Dict
	schema     *dataset.Schema

	states    int
	visited   map[string]float64 // state key → best f reaching it
	bestF     float64            // penalized score of the best fusion
	bestRaw   float64            // raw Eq. 5 f-score of the best fusion
	best      assignment
	conflicts map[int]struct{}
	// attrOrder is the sorted union of the versions' schema positions, fixed
	// at construction so state keys never re-sort per memo probe.
	attrOrder []int
	width     int
	keyBuf    []byte
}

func newFuser(versions []version, candidates []*blockCands, maxStates, width int) *fuser {
	posSet := make(map[int]struct{})
	for _, v := range versions {
		for _, p := range v.pos {
			posSet[p] = struct{}{}
		}
	}
	attrOrder := make([]int, 0, len(posSet))
	for p := range posSet {
		attrOrder = append(attrOrder, p)
	}
	sort.Ints(attrOrder)
	return &fuser{
		versions:   versions,
		candidates: candidates,
		maxStates:  maxStates,
		penalty:    1,
		visited:    make(map[string]float64),
		conflicts:  make(map[int]struct{}),
		attrOrder:  attrOrder,
		width:      width,
	}
}

// penalized applies the minimality prior: each attribute the fusion would
// change relative to the observed tuple costs a factor of
// ε/(1−ε) · 1/(|domain|−1) — the likelihood that corruption of the fused
// (hypothesized clean) value produced exactly the observed dirty value.
// Constants shared by all fusions of the same tuple cancel, so only changed
// cells contribute.
func (f *fuser) penalized(merged assignment, raw float64) float64 {
	if f.penalty >= 1 {
		return raw
	}
	out := raw
	for _, pos := range f.attrOrder {
		id := merged[pos]
		if id == unsetID || id == f.dirtyRow[pos] {
			continue
		}
		out *= f.penalty
		if n := f.domainSize[pos]; n > 2 {
			out /= float64(n - 1)
		}
	}
	return out
}

// run explores fusion orders and returns the best assignment, its f-score,
// and the set of schema positions on which conflicts were detected. A nil
// assignment means every order failed (fusion score 0).
func (f *fuser) run() (assignment, float64, []int) {
	// Fast path: if no pair of versions conflicts, every order yields the
	// same union with f = Π weights.
	if !f.anyPairConflicts() {
		merged := newAssignment(f.width)
		score := 1.0
		for _, v := range f.versions {
			merged.absorb(v.pos, v.ids)
			score *= v.weight
		}
		return merged, score, nil
	}

	for i := range f.versions {
		v := f.versions[i]
		merged := newAssignment(f.width)
		merged.absorb(v.pos, v.ids)
		f.extend(merged, v.weight, 1<<uint(i))
	}
	var pos []int
	for p := range f.conflicts {
		pos = append(pos, p)
	}
	sort.Ints(pos)
	if f.best == nil {
		return nil, 0, pos
	}
	return f.best, f.bestRaw, pos
}

func (f *fuser) anyPairConflicts() bool {
	for i := 0; i < len(f.versions); i++ {
		for j := i + 1; j < len(f.versions); j++ {
			vi, vj := f.versions[i], f.versions[j]
			for ai, pa := range vi.pos {
				for aj, pb := range vj.pos {
					if pa == pb && vi.ids[ai] != vj.ids[aj] {
						return true
					}
				}
			}
		}
	}
	return false
}

// extend is GetFusionT: merged holds the fusion so far, fscore its score,
// mask the consumed versions.
func (f *fuser) extend(merged assignment, fscore float64, mask int) {
	if mask == (1<<uint(len(f.versions)))-1 {
		if p := f.penalized(merged, fscore); p > f.bestF {
			f.bestF = p
			f.bestRaw = fscore
			f.best = merged.clone()
		}
		return
	}
	if f.states >= f.maxStates {
		return
	}
	buf := f.stateKey(mask, merged)
	if prev, ok := f.visited[string(buf)]; ok && fscore <= prev {
		return // alloc-free probe: the conversion stays inside the index expression
	}
	f.visited[string(buf)] = fscore
	f.states++

	for j := range f.versions {
		if mask&(1<<uint(j)) != 0 {
			continue
		}
		vj := f.versions[j]
		ids, weight := vj.ids, vj.weight
		if conf := merged.conflictsWith(vj.pos, ids); len(conf) > 0 {
			for _, p := range conf {
				f.conflicts[p] = struct{}{}
			}
			// Replacement: highest-weight piece from block Bj that does not
			// conflict with the fusion so far.
			repl, ok := f.candidates[vj.blockIdx].find(merged, vj.kid)
			if !ok {
				// A CFD version is conditional: when the fusion so far
				// contradicts the pattern constants, the rule simply no
				// longer applies to the tuple, so the version is vacuous and
				// may be skipped instead of failing the order. Without this,
				// a value erroneously replaced INTO a CFD pattern (e.g.
				// Make ← "acura") could never be repaired: the CFD block
				// holds no candidates outside its pattern.
				if f.cfdVacuous(vj, merged) {
					f.extend(merged, fscore, mask|1<<uint(j))
				}
				continue // this order fails (f-score 0)
			}
			ids = repl.ids
			weight = repl.weight
		}
		next := merged.clone()
		next.absorb(vj.pos, ids)
		f.extend(next, fscore*weight, mask|1<<uint(j))
	}
}

// cfdVacuous reports whether version v comes from a CFD whose constant
// reason pattern is contradicted by the fusion so far — in that case the
// rule does not apply to the fused tuple and the version carries no
// information.
func (f *fuser) cfdVacuous(v version, merged assignment) bool {
	if v.rule == nil || v.rule.Kind != rules.CFD {
		return false
	}
	anyConst := false
	for _, pat := range v.rule.Reason {
		if pat.Const == "" {
			continue
		}
		anyConst = true
		got := merged[f.schema.MustIndex(pat.Attr)]
		if got == unsetID {
			return false // undetermined → cannot declare vacuous
		}
		if cid, ok := f.dict.Lookup(pat.Const); ok && got == cid {
			return false // still matches a constant → still applicable
		}
	}
	return anyConst
}

// stateKey identifies a search state: the consumed-version mask plus the
// merged assignment rendered over the fuser's fixed attribute order (a
// presence byte per attribute disambiguates absent from any value ID). The
// key is built into a reusable buffer; only map insertion materializes it.
func (f *fuser) stateKey(mask int, merged assignment) []byte {
	need := 8 + len(f.attrOrder)*5
	if cap(f.keyBuf) < need {
		f.keyBuf = make([]byte, 0, need)
	}
	b := f.keyBuf[:0]
	var mb [8]byte
	binary.LittleEndian.PutUint64(mb[:], uint64(mask))
	b = append(b, mb[:]...)
	for _, pos := range f.attrOrder {
		if id := merged[pos]; id != unsetID {
			var ib [4]byte
			binary.LittleEndian.PutUint32(ib[:], id)
			b = append(b, 1)
			b = append(b, ib[:]...)
		} else {
			b = append(b, 0)
		}
	}
	f.keyBuf = b
	return b
}
