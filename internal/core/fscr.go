package core

import (
	"encoding/binary"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// version is one tuple's cleaned piece from one block (a data version).
type version struct {
	blockIdx int
	rule     *rules.Rule
	attrs    []string
	values   []string
	weight   float64
}

// assignment is a partial tuple: attribute → value.
type assignment map[string]string

func (a assignment) clone() assignment {
	out := make(assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// conflictsWith returns the attributes on which the assignment disagrees
// with the (attrs, values) piece.
func (a assignment) conflictsWith(attrs, values []string) []string {
	var out []string
	for i, attr := range attrs {
		if v, ok := a[attr]; ok && v != values[i] {
			out = append(out, attr)
		}
	}
	return out
}

// absorb merges the piece into the assignment (caller must have resolved
// conflicts first).
func (a assignment) absorb(attrs, values []string) {
	for i, attr := range attrs {
		a[attr] = values[i]
	}
}

// FusionBlock is one block's stage-I output as consumed by FSCR: the winner
// piece covering each tuple, plus the block's candidate pieces used for
// conflict replacement. The distributed gather step builds these from the
// union of all workers' blocks to run a global conflict resolution.
type FusionBlock struct {
	Rule       *rules.Rule
	Attrs      []string
	Versions   map[int]*index.Piece
	Candidates []*index.Piece
}

// fusionBlocksFromIndex extracts stage-I results from a cleaned index.
func fusionBlocksFromIndex(ix *index.Index) []*FusionBlock {
	blocks := make([]*FusionBlock, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		fb := &FusionBlock{Rule: b.Rule, Attrs: b.Rule.Attrs(), Versions: make(map[int]*index.Piece)}
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				fb.Candidates = append(fb.Candidates, p)
				for _, id := range p.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
		blocks[bi] = fb
	}
	return blocks
}

// candEntry caches one replacement candidate: its values, weight, and
// identity key, precomputed so conflict checks allocate nothing.
type candEntry struct {
	values []string
	weight float64
	key    string
}

// blockCands pre-indexes a block's candidates for the replacement search:
// candidates sorted best-first plus per-attribute posting lists, so a
// conflicted merge scans only the candidates matching one pinned value
// instead of the whole block.
type blockCands struct {
	attrs []string
	all   []candEntry
	// byVal[pos][value] lists indices into all (ascending = best first) of
	// candidates whose pos-th attribute equals value.
	byVal []map[string][]int32
}

func buildBlockCands(fb *FusionBlock) *blockCands {
	bc := &blockCands{attrs: fb.Attrs}
	bc.all = make([]candEntry, 0, len(fb.Candidates))
	for _, p := range fb.Candidates {
		vals := p.Values()
		bc.all = append(bc.all, candEntry{values: vals, weight: p.Weight, key: dataset.JoinKey(vals)})
	}
	sort.Slice(bc.all, func(i, j int) bool {
		if bc.all[i].weight != bc.all[j].weight {
			return bc.all[i].weight > bc.all[j].weight
		}
		return bc.all[i].key < bc.all[j].key
	})
	bc.byVal = make([]map[string][]int32, len(bc.attrs))
	for pos := range bc.attrs {
		m := make(map[string][]int32)
		for i, c := range bc.all {
			if pos < len(c.values) {
				m[c.values[pos]] = append(m[c.values[pos]], int32(i))
			}
		}
		bc.byVal[pos] = m
	}
	return bc
}

// find returns the best candidate compatible with merged, excluding the
// candidate identified by excludeKey. Compatibility: the candidate agrees
// with merged on every attribute merged pins.
func (bc *blockCands) find(merged assignment, excludeKey string) (candEntry, bool) {
	// Choose the shortest posting list among pinned attributes.
	bestList := -1
	var list []int32
	for pos, attr := range bc.attrs {
		v, ok := merged[attr]
		if !ok {
			continue
		}
		l := bc.byVal[pos][v]
		if bestList == -1 || len(l) < len(list) {
			bestList = pos
			list = l
		}
	}
	check := func(c candEntry) bool {
		if c.key == excludeKey {
			return false
		}
		for pos, attr := range bc.attrs {
			if v, ok := merged[attr]; ok && c.values[pos] != v {
				return false
			}
		}
		return true
	}
	if bestList >= 0 {
		for _, i := range list {
			if c := bc.all[i]; check(c) {
				return c, true
			}
		}
		return candEntry{}, false
	}
	for _, c := range bc.all {
		if check(c) {
			return c, true
		}
	}
	return candEntry{}, false
}

// fscr runs fusion-score conflict resolution (Alg. 2) over the whole table.
func fscr(dirty *dataset.Table, ix *index.Index, opts Options, st *Stats) *dataset.Table {
	return RunFSCR(dirty, fusionBlocksFromIndex(ix), opts, st)
}

// RunFSCR fuses each tuple's per-block cleaned versions into the single
// assignment with the maximal fusion score (the product of the merged
// pieces' weights, Eq. 5, combined with the minimality/observation prior),
// resolving conflicts by substituting the highest-weight non-conflicting
// piece from the conflicting block. The repaired table (same tuple IDs as
// the input) is returned; st (optional) accumulates cell-change and failure
// counts, and opts.Trace records per-tuple fusion outcomes. Tuples fuse
// independently and run in parallel.
func RunFSCR(dirty *dataset.Table, blocks []*FusionBlock, opts Options, st *Stats) *dataset.Table {
	opts = opts.withDefaults()
	if st == nil {
		st = &Stats{}
	}
	repaired := dirty.Clone()

	// Distinct-value counts per rule attribute, for the observation model:
	// a replacement error lands on one specific value out of |domain|−1
	// alternatives, so changing a large-domain cell (e.g. Model) explains
	// the observed tuple less well than changing a small-domain cell (e.g.
	// Make) — exactly the asymmetry that disambiguates which side of a
	// version conflict was corrupted.
	domainSize := make(map[string]int)
	for _, fb := range blocks {
		for _, a := range fb.Attrs {
			if _, ok := domainSize[a]; !ok && dirty.Schema.Has(a) {
				domainSize[a] = len(dirty.Domain(a))
			}
		}
	}

	candidates := make([]*blockCands, len(blocks))
	for bi, fb := range blocks {
		candidates[bi] = buildBlockCands(fb)
	}

	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par < 1 {
		par = 1
	}
	var (
		wg          sync.WaitGroup
		statsMu     sync.Mutex
		cellChanges int
		failures    int
	)
	chunk := (len(repaired.Tuples) + par - 1) / par
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(repaired.Tuples); lo += chunk {
		hi := lo + chunk
		if hi > len(repaired.Tuples) {
			hi = len(repaired.Tuples)
		}
		wg.Add(1)
		go func(tuples []*dataset.Tuple) {
			defer wg.Done()
			localChanges, localFailures := 0, 0
			for _, t := range tuples {
				c, f := fuseTuple(t, repaired.Schema, blocks, candidates, domainSize, opts)
				localChanges += c
				if f {
					localFailures++
				}
			}
			statsMu.Lock()
			cellChanges += localChanges
			failures += localFailures
			statsMu.Unlock()
		}(repaired.Tuples[lo:hi])
	}
	wg.Wait()
	st.FSCRCellChanges += cellChanges
	st.FusionFailures += failures
	return repaired
}

// fuseTuple runs the fusion for one tuple, applying the winning assignment
// in place. Returns the number of changed cells and whether fusion failed.
func fuseTuple(t *dataset.Tuple, schema *dataset.Schema, blocks []*FusionBlock,
	candidates []*blockCands, domainSize map[string]int, opts Options) (int, bool) {
	var versions []version
	for bi, fb := range blocks {
		p, ok := fb.Versions[t.ID]
		if !ok {
			continue
		}
		versions = append(versions, version{
			blockIdx: bi,
			rule:     fb.Rule,
			attrs:    fb.Attrs,
			values:   p.Values(),
			weight:   p.Weight,
		})
	}
	if len(versions) == 0 {
		return 0, false
	}
	f := newFuser(versions, candidates, opts.MaxFusionStates)
	f.penalty = opts.changePenalty()
	f.domainSize = domainSize
	f.dirty = func(attr string) string {
		return t.Values[schema.MustIndex(attr)]
	}
	best, fscore, conflictAttrs := f.run()

	outcome := FusionOutcome{TupleID: t.ID, ConflictAttrs: conflictAttrs, FScore: fscore}
	if best == nil {
		outcome.Failed = true
		opts.Trace.addFusion(outcome)
		return 0, true
	}
	changes := 0
	for attr, val := range best {
		idx := schema.MustIndex(attr)
		if t.Values[idx] != val {
			outcome.Changed = append(outcome.Changed, CellChange{Attr: attr, Old: t.Values[idx], New: val})
			t.Values[idx] = val
			changes++
		}
	}
	sort.Slice(outcome.Changed, func(i, j int) bool { return outcome.Changed[i].Attr < outcome.Changed[j].Attr })
	opts.Trace.addFusion(outcome)
	return changes, false
}

// fuser performs the memoized permutation search of Alg. 2 for one tuple.
type fuser struct {
	versions   []version
	candidates []*blockCands
	maxStates  int
	// penalty is the per-changed-cell factor ε/(1−ε) of the minimality
	// prior; dirty resolves the tuple's observed value per attribute;
	// domainSize holds distinct-value counts for the observation model.
	penalty    float64
	dirty      func(attr string) string
	domainSize map[string]int

	states    int
	visited   map[string]float64 // state key → best f reaching it
	bestF     float64            // penalized score of the best fusion
	bestRaw   float64            // raw Eq. 5 f-score of the best fusion
	best      assignment
	conflicts map[string]struct{}
	// attrOrder is the sorted union of the versions' attributes, fixed at
	// construction so state keys never re-sort per memo probe.
	attrOrder []string
}

func newFuser(versions []version, candidates []*blockCands, maxStates int) *fuser {
	attrSet := make(map[string]struct{})
	for _, v := range versions {
		for _, a := range v.attrs {
			attrSet[a] = struct{}{}
		}
	}
	attrOrder := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrOrder = append(attrOrder, a)
	}
	sort.Strings(attrOrder)
	return &fuser{
		versions:   versions,
		candidates: candidates,
		maxStates:  maxStates,
		penalty:    1,
		dirty:      func(string) string { return "" },
		visited:    make(map[string]float64),
		conflicts:  make(map[string]struct{}),
		attrOrder:  attrOrder,
	}
}

// penalized applies the minimality prior: each attribute the fusion would
// change relative to the observed tuple costs a factor of
// ε/(1−ε) · 1/(|domain|−1) — the likelihood that corruption of the fused
// (hypothesized clean) value produced exactly the observed dirty value.
// Constants shared by all fusions of the same tuple cancel, so only changed
// cells contribute.
func (f *fuser) penalized(merged assignment, raw float64) float64 {
	if f.penalty >= 1 {
		return raw
	}
	out := raw
	for attr, val := range merged {
		if f.dirty(attr) != val {
			out *= f.penalty
			if n := f.domainSize[attr]; n > 2 {
				out /= float64(n - 1)
			}
		}
	}
	return out
}

// run explores fusion orders and returns the best assignment, its f-score,
// and the sorted set of attributes on which conflicts were detected. A nil
// assignment means every order failed (fusion score 0).
func (f *fuser) run() (assignment, float64, []string) {
	// Fast path: if no pair of versions conflicts, every order yields the
	// same union with f = Π weights.
	if !f.anyPairConflicts() {
		merged := make(assignment)
		score := 1.0
		for _, v := range f.versions {
			merged.absorb(v.attrs, v.values)
			score *= v.weight
		}
		return merged, score, nil
	}

	for i := range f.versions {
		v := f.versions[i]
		merged := make(assignment, len(v.attrs))
		merged.absorb(v.attrs, v.values)
		f.extend(merged, v.weight, 1<<uint(i))
	}
	var attrs []string
	for a := range f.conflicts {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	if f.best == nil {
		return nil, 0, attrs
	}
	return f.best, f.bestRaw, attrs
}

func (f *fuser) anyPairConflicts() bool {
	for i := 0; i < len(f.versions); i++ {
		for j := i + 1; j < len(f.versions); j++ {
			vi, vj := f.versions[i], f.versions[j]
			for ai, attr := range vi.attrs {
				for aj, battr := range vj.attrs {
					if attr == battr && vi.values[ai] != vj.values[aj] {
						return true
					}
				}
			}
		}
	}
	return false
}

// extend is GetFusionT: merged holds the fusion so far, fscore its score,
// mask the consumed versions.
func (f *fuser) extend(merged assignment, fscore float64, mask int) {
	if mask == (1<<uint(len(f.versions)))-1 {
		if p := f.penalized(merged, fscore); p > f.bestF {
			f.bestF = p
			f.bestRaw = fscore
			f.best = merged.clone()
		}
		return
	}
	if f.states >= f.maxStates {
		return
	}
	key := f.stateKey(mask, merged)
	if prev, ok := f.visited[key]; ok && fscore <= prev {
		return
	}
	f.visited[key] = fscore
	f.states++

	for j := range f.versions {
		if mask&(1<<uint(j)) != 0 {
			continue
		}
		vj := f.versions[j]
		values, weight := vj.values, vj.weight
		if conf := merged.conflictsWith(vj.attrs, values); len(conf) > 0 {
			for _, a := range conf {
				f.conflicts[a] = struct{}{}
			}
			// Replacement: highest-weight piece from block Bj that does not
			// conflict with the fusion so far.
			repl, ok := f.candidates[vj.blockIdx].find(merged, dataset.JoinKey(values))
			if !ok {
				// A CFD version is conditional: when the fusion so far
				// contradicts the pattern constants, the rule simply no
				// longer applies to the tuple, so the version is vacuous and
				// may be skipped instead of failing the order. Without this,
				// a value erroneously replaced INTO a CFD pattern (e.g.
				// Make ← "acura") could never be repaired: the CFD block
				// holds no candidates outside its pattern.
				if f.cfdVacuous(vj, merged) {
					f.extend(merged, fscore, mask|1<<uint(j))
				}
				continue // this order fails (f-score 0)
			}
			values = repl.values
			weight = repl.weight
		}
		next := merged.clone()
		next.absorb(vj.attrs, values)
		f.extend(next, fscore*weight, mask|1<<uint(j))
	}
}

// cfdVacuous reports whether version v comes from a CFD whose constant
// reason pattern is contradicted by the fusion so far — in that case the
// rule does not apply to the fused tuple and the version carries no
// information.
func (f *fuser) cfdVacuous(v version, merged assignment) bool {
	if v.rule == nil || v.rule.Kind != rules.CFD {
		return false
	}
	anyConst := false
	for _, pat := range v.rule.Reason {
		if pat.Const == "" {
			continue
		}
		anyConst = true
		if got, ok := merged[pat.Attr]; ok && got == pat.Const {
			return false // still matches a constant → still applicable
		}
		if _, ok := merged[pat.Attr]; !ok {
			return false // undetermined → cannot declare vacuous
		}
	}
	return anyConst
}

// stateKey identifies a search state: the consumed-version mask plus the
// merged assignment rendered over the fuser's fixed attribute order (a
// presence byte per attribute disambiguates absent from empty values).
func (f *fuser) stateKey(mask int, merged assignment) string {
	var b strings.Builder
	n := 9 + len(f.attrOrder)*2
	for _, v := range merged {
		n += len(v)
	}
	b.Grow(n)
	var mb [8]byte
	binary.LittleEndian.PutUint64(mb[:], uint64(mask))
	b.Write(mb[:])
	for _, a := range f.attrOrder {
		if v, ok := merged[a]; ok {
			b.WriteByte(1)
			b.WriteString(v)
		} else {
			b.WriteByte(0)
		}
		b.WriteByte('\x1e')
	}
	return b.String()
}
