package core

import (
	"sync"

	"mlnclean/internal/plan"
)

// Trace records the decisions of each pipeline phase so the component
// accuracy metrics of §7.3 can be computed against ground truth by
// internal/eval. A Trace is safe for the concurrent block-level writes the
// cleaner performs.
type Trace struct {
	mu sync.Mutex
	// Plan records the selectivity planner's per-rule choices (scan shape,
	// predicate order, and why) for the run's index build. Empty when the
	// planner was disabled.
	Plan []plan.Choice
	// AGP lists every abnormal-group decision.
	AGP []AGPMerge
	// RSC lists every piece rewrite.
	RSC []RSCRepair
	// FSCR lists the fusion outcome per tuple.
	FSCR []FusionOutcome
}

// AGPMerge records one abnormal-group decision: a detected abnormal group
// and where it was merged, or (Promoted) an abnormal group re-classed as
// normal because its block had no normal group at all.
type AGPMerge struct {
	BlockIndex int
	RuleID     string
	// SourceKey is the abnormal group's reason key; SourceTuples its member
	// tuple IDs; SourcePieces its γ count (contributes to #dag).
	SourceKey    string
	SourceTuples []int
	SourcePieces int
	// TargetKey is the reason key of the normal group it merged into.
	// Empty when the group was not merged (no target within the merge cap,
	// or the group itself was promoted).
	TargetKey string
	// Promoted marks the degenerate-block path of §5.1.1: every group was
	// abnormal, and this one (the largest) was promoted to normal so the
	// rest had a merge target. A promotion is not a detection — component
	// metrics (internal/eval) skip these entries.
	Promoted bool
}

// RSCRepair records one losing piece being rewritten to the group winner.
type RSCRepair struct {
	BlockIndex int
	RuleID     string
	GroupKey   string
	// Attrs are the rule's attributes (reason then result).
	Attrs []string
	// Old and New are the piece values before/after; Tuples the affected
	// tuple IDs.
	Old    []string
	New    []string
	Tuples []int
}

// FusionOutcome records FSCR's work on one tuple.
type FusionOutcome struct {
	TupleID int
	// ConflictAttrs lists attributes on which a version conflict was
	// detected during the winning (or any attempted) fusion.
	ConflictAttrs []string
	// Changed lists cell changes applied by stage II relative to the
	// stage-I-repaired values.
	Changed []CellChange
	// Failed is true when every fusion order conflicted out (f-score 0) and
	// the tuple kept its pre-fusion values.
	Failed bool
	// FScore is the fusion score of the applied version.
	FScore float64
}

// CellChange is a single attribute-value update on a tuple.
type CellChange struct {
	Attr string
	Old  string
	New  string
}

// SetPlan records the planner's choices for the run.
func (tr *Trace) SetPlan(cs []plan.Choice) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Plan = cs
	tr.mu.Unlock()
}

func (tr *Trace) addAGP(m AGPMerge) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.AGP = append(tr.AGP, m)
	tr.mu.Unlock()
}

func (tr *Trace) addRSC(r RSCRepair) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.RSC = append(tr.RSC, r)
	tr.mu.Unlock()
}

func (tr *Trace) addFusion(f FusionOutcome) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.FSCR = append(tr.FSCR, f)
	tr.mu.Unlock()
}
