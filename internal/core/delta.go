package core

import (
	"fmt"
	"sort"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// The incremental half of the pipeline. A DeltaCleaner holds one table's
// cleaned state — per-rule stage-I blocks, their fusion inputs, and every
// tuple's fused outcome — and re-cleans only what a mutation touches:
//
//   - Dirty-rule detection: a rule's block depends, per row, on whether the
//     rule applies and on the row's projection onto the rule's attributes.
//     A mutation dirties exactly the rules for which either changed; blocks
//     of untouched rules are byte-identical and reused as-is.
//   - Dirty blocks are rebuilt by the fixed-order single-block scan
//     (index.BuildBlockFor — identical content to a full build, per the
//     planner's order invariance) and re-cleaned through the same per-block
//     stage-I primitives the batch pipeline uses (AGP → weight learning →
//     RSC), so per-block results cannot drift from a from-scratch run.
//   - Re-fusion is bounded by comparing each tuple's per-block version
//     (piece identity + learned weight, both fixed-width) before and after
//     the rebuild: a tuple whose versions are bit-identical fuses to the
//     same assignment, so its cached outcome is reused. Conflicted tuples
//     are always re-fused — their outcome reads global candidate sets and
//     attribute domain sizes, which any mutation may shift.
//
// The correctness anchor is exact parity: after any mutation sequence,
// Apply's Result is byte-identical to Clean over the same table (the
// randomized suite in delta_test.go asserts it, and the serving layer's
// versioned results are built on it).

// DeltaOp is a mutation kind.
type DeltaOp int

const (
	// DeltaPut inserts a new tuple or replaces an existing tuple's values.
	DeltaPut DeltaOp = iota
	// DeltaDelete removes a tuple.
	DeltaDelete
)

// Mutation is one tuple-level change, addressed by tuple ID.
type Mutation struct {
	Op  DeltaOp
	Row int
	// Values is the tuple's new values in schema order (ignored for delete).
	Values []string
}

// DeltaStats reports how much work one Apply actually did versus reused.
type DeltaStats struct {
	// DirtyBlocks / ReusedBlocks partition the rule blocks: dirty ones were
	// rebuilt and re-cleaned, reused ones served their cached stage-I state.
	DirtyBlocks  int
	ReusedBlocks int
	// RefusedTuples / ReusedTuples partition the surviving tuples: refused
	// ones re-ran fusion, reused ones kept their cached outcome.
	RefusedTuples int
	ReusedTuples  int
	// Wall is the time Apply spent end to end.
	Wall time.Duration
}

// verInfo is a tuple's stage-I version in one block, reduced to the two
// fixed-width facts fusion consumes: the piece's sequence identity (which
// determines its exact value IDs) and its learned weight.
type verInfo struct {
	kid    uint32
	weight float64
}

// deltaBlock caches one rule's cleaned state.
type deltaBlock struct {
	rule  *rules.Rule
	block *index.Block // post AGP + learn + RSC
	fb    *FusionBlock
	cands *blockCands
	// vers maps tuple ID → its version facts, for the cheap pre/post rebuild
	// comparison that bounds re-fusion.
	vers map[int]verInfo
	// summaries is the block's post-stage-I piece summary run (the weight
	// vector fragment used for repair attribution).
	summaries []index.PieceSummary
	frag      blockFrag
	// memo carries AGP nearest-target decisions across rebuilds of this
	// block, so a re-clean only re-scores against the groups that moved.
	memo *agpMemo
}

// blockFrag is one block's contribution to the run Stats, kept so the whole
// Stats can be recomposed without touching clean blocks.
type blockFrag struct {
	groups, abnormal, abnormalPieces, promotions, learnIters, rscRepairs int
}

// tupleState is one tuple's cached fusion outcome.
type tupleState struct {
	values     []string // fused (repaired) values, schema order
	changes    int
	failed     bool
	conflicted bool
}

// DeltaCleaner incrementally re-cleans a mutating table. It is not safe for
// concurrent use; callers serialize Load/Apply (the serving session holds
// its own lock).
type DeltaCleaner struct {
	schema *dataset.Schema
	rs     []*rules.Rule
	opts   Options
	dict   *intern.Dict
	pool   *distance.Pool

	// The current dirty table in ascending tuple-ID order, plus its encoded
	// companion. Rows are engine-owned copies; encRows are individually
	// allocated so inserts and deletes never fight a shared backing array.
	tuples  []*dataset.Tuple
	encRows [][]uint32
	rowPos  map[int]int // tuple ID → position in tuples/encRows

	blocks      []*deltaBlock
	posPerBlock [][]int
	needed      []bool // schema positions any rule touches
	domain      []int  // distinct-value counts for needed positions
	fused       map[int]*tupleState

	// Incremental duplicate detection: each tuple's fused row reduced to an
	// interned ID-sequence key, refreshed only when the tuple re-fuses, so
	// assemble's dedup pass is one map lookup per row instead of re-hashing
	// every cell. The dict only grows (old values stay interned); that creep
	// is bounded by the value universe the table has ever fused to.
	dedupDict  *intern.Dict
	rowKeys    map[int]uint32
	keyScratch []uint32

	loaded bool
}

// NewDeltaCleaner prepares an engine for the schema and rule set. Options
// follow Clean's defaults; Trace and Materialize are ignored (the engine is
// its own pipeline shape), and fusion runs with the same τ, metric, priors,
// and duplicate handling as the batch run it must stay byte-identical to.
func NewDeltaCleaner(schema *dataset.Schema, rs []*rules.Rule, opts Options) (*DeltaCleaner, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("core: delta: empty schema")
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("core: delta: no rules")
	}
	for _, r := range rs {
		if err := r.Validate(schema); err != nil {
			return nil, err
		}
	}
	opts = opts.withDefaults()
	opts.Trace = nil
	dict := intern.NewDict()
	d := &DeltaCleaner{
		schema: schema,
		rs:     rs,
		opts:   opts,
		dict:   dict,
		pool:   distance.NewPool(opts.Metric, dict),
		rowPos: make(map[int]int),
		fused:  make(map[int]*tupleState),
		needed: make([]bool, schema.Len()),

		dedupDict: intern.NewDict(),
		rowKeys:   make(map[int]uint32),
	}
	d.posPerBlock = make([][]int, len(rs))
	for ri, r := range rs {
		attrs := r.Attrs()
		pos := make([]int, len(attrs))
		for i, a := range attrs {
			pos[i] = schema.MustIndex(a)
			d.needed[pos[i]] = true
		}
		d.posPerBlock[ri] = pos
	}
	return d, nil
}

// Load seeds the engine with a full clean of tb: every block is built and
// cleaned, every tuple fused, and the result returned. Tuple IDs must be
// unique; rows are adopted in ascending-ID order (the engine's canonical
// table order, which Apply preserves across inserts and deletes). tb is not
// retained or modified.
func (d *DeltaCleaner) Load(tb *dataset.Table) (*Result, error) {
	if d.loaded {
		return nil, fmt.Errorf("core: delta: already loaded")
	}
	if tb == nil || tb.Len() == 0 {
		return nil, fmt.Errorf("core: empty input table")
	}
	if tb.Schema.Len() != d.schema.Len() {
		return nil, fmt.Errorf("core: delta: schema width mismatch")
	}
	d.tuples = make([]*dataset.Tuple, 0, tb.Len())
	d.encRows = make([][]uint32, 0, tb.Len())
	for _, t := range tb.Tuples {
		d.tuples = append(d.tuples, t.Clone())
	}
	sort.SliceStable(d.tuples, func(i, j int) bool { return d.tuples[i].ID < d.tuples[j].ID })
	for i, t := range d.tuples {
		if i > 0 && d.tuples[i-1].ID == t.ID {
			return nil, fmt.Errorf("core: delta: duplicate tuple id %d", t.ID)
		}
		d.encRows = append(d.encRows, d.encode(t.Values))
	}
	d.reindex()

	d.blocks = make([]*deltaBlock, len(d.rs))
	for ri, r := range d.rs {
		db := &deltaBlock{rule: r}
		if err := d.cleanBlock(ri, db); err != nil {
			return nil, err
		}
		d.blocks[ri] = db
	}
	d.recomputeDomains()
	for _, t := range d.tuples {
		d.fuseOne(t.ID)
	}
	d.loaded = true
	mDeltaLoads.Inc()
	return d.assemble(), nil
}

// Apply folds a mutation batch into the table and re-cleans incrementally,
// returning the new full result (byte-identical to a from-scratch Clean of
// the mutated table) plus the delta accounting. On a validation error the
// engine state is unchanged; mutations are validated up front, then applied
// as one batch.
func (d *DeltaCleaner) Apply(muts []Mutation) (*Result, *DeltaStats, error) {
	t0 := time.Now()
	if !d.loaded {
		return nil, nil, fmt.Errorf("core: delta: not loaded")
	}
	if len(muts) == 0 {
		return nil, nil, fmt.Errorf("core: delta: empty mutation batch")
	}
	if err := d.validate(muts); err != nil {
		return nil, nil, err
	}

	// Fold the batch into the table, collecting the dirtied rules and the
	// mutated tuple IDs. Each mutation sees the state its predecessors left.
	dirty := make([]bool, len(d.rs))
	refuse := make(map[int]struct{})
	for _, m := range muts {
		pos, exists := d.rowPos[m.Row]
		switch m.Op {
		case DeltaPut:
			vals := append([]string(nil), m.Values...)
			if exists {
				old := d.tuples[pos].Values
				for ri, r := range d.rs {
					if d.ruleDirtyOnUpdate(r, ri, old, vals) {
						dirty[ri] = true
					}
				}
				d.tuples[pos].Values = vals
				d.encRows[pos] = d.encode(vals)
			} else {
				for ri, r := range d.rs {
					if d.appliesVals(r, vals) {
						dirty[ri] = true
					}
				}
				d.insertAt(m.Row, vals)
			}
			refuse[m.Row] = struct{}{}
		case DeltaDelete:
			old := d.tuples[pos].Values
			for ri, r := range d.rs {
				if d.appliesVals(r, old) {
					dirty[ri] = true
				}
			}
			d.tuples = append(d.tuples[:pos], d.tuples[pos+1:]...)
			d.encRows = append(d.encRows[:pos], d.encRows[pos+1:]...)
			d.reindex()
			delete(d.fused, m.Row)
			delete(d.rowKeys, m.Row)
		}
	}

	// Rebuild the dirty blocks and mark every tuple whose version facts moved.
	ds := &DeltaStats{}
	for ri, isDirty := range dirty {
		if !isDirty {
			ds.ReusedBlocks++
			continue
		}
		ds.DirtyBlocks++
		db := d.blocks[ri]
		oldVers := db.vers
		if err := d.cleanBlock(ri, db); err != nil {
			// Learn errors are a function of the options alone, so a Load that
			// succeeded cannot fail here; surface it anyway rather than serve
			// a half-updated result.
			return nil, nil, err
		}
		for id, v := range db.vers {
			if ov, ok := oldVers[id]; !ok || ov != v {
				refuse[id] = struct{}{}
			}
		}
		for id := range oldVers {
			if _, ok := db.vers[id]; !ok {
				refuse[id] = struct{}{}
			}
		}
	}
	// Conflicted tuples read global candidate sets and domain sizes, both of
	// which any mutation may have shifted — always re-fuse them.
	for id, ts := range d.fused {
		if ts.conflicted {
			refuse[id] = struct{}{}
		}
	}
	d.recomputeDomains()

	ids := make([]int, 0, len(refuse))
	for id := range refuse {
		if _, live := d.rowPos[id]; live {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.fuseOne(id)
	}
	ds.RefusedTuples = len(ids)
	ds.ReusedTuples = len(d.tuples) - len(ids)
	ds.Wall = time.Since(t0)

	mDeltaApplies.Inc()
	mDeltaDirtyBlocks.Add(int64(ds.DirtyBlocks))
	mDeltaReusedBlocks.Add(int64(ds.ReusedBlocks))
	mDeltaRefusedTuples.Add(int64(ds.RefusedTuples))
	mDeltaReusedTuples.Add(int64(ds.ReusedTuples))
	mDeltaSeconds.ObserveDuration(ds.Wall)
	return d.assemble(), ds, nil
}

// validate checks a whole batch against the state each mutation will see,
// without changing anything. Errors name the first offending mutation.
func (d *DeltaCleaner) validate(muts []Mutation) error {
	live := len(d.tuples)
	present := make(map[int]bool)
	for mi, m := range muts {
		if m.Row < 0 {
			return fmt.Errorf("core: delta: mutation %d: negative row %d", mi, m.Row)
		}
		exists, known := present[m.Row]
		if !known {
			_, exists = d.rowPos[m.Row]
		}
		switch m.Op {
		case DeltaPut:
			if len(m.Values) != d.schema.Len() {
				return fmt.Errorf("core: delta: mutation %d: row %d has %d values, schema has %d",
					mi, m.Row, len(m.Values), d.schema.Len())
			}
			if !exists {
				live++
			}
			present[m.Row] = true
		case DeltaDelete:
			if !exists {
				return fmt.Errorf("core: delta: mutation %d: delete of unknown row %d", mi, m.Row)
			}
			live--
			present[m.Row] = false
		default:
			return fmt.Errorf("core: delta: mutation %d: unknown op %d", mi, m.Op)
		}
	}
	if live == 0 {
		return fmt.Errorf("core: delta: batch would empty the table")
	}
	return nil
}

// Len is the current table size.
func (d *DeltaCleaner) Len() int { return len(d.tuples) }

// Has reports whether the tuple ID is live.
func (d *DeltaCleaner) Has(row int) bool {
	_, ok := d.rowPos[row]
	return ok
}

// Table materializes the current dirty table (ascending tuple-ID order, IDs
// preserved). The copy is independent of engine state.
func (d *DeltaCleaner) Table() *dataset.Table {
	tb := dataset.NewTable(d.schema)
	for _, t := range d.tuples {
		tb.Tuples = append(tb.Tuples, t.Clone())
	}
	return tb
}

// Weights returns the current post-stage-I piece summaries, concatenated in
// rule order — the weight vector repair attribution reads. Equal to the
// summaries a from-scratch Clean of the same table exposes on its index.
func (d *DeltaCleaner) Weights() []index.PieceSummary {
	var out []index.PieceSummary
	for _, db := range d.blocks {
		out = append(out, db.summaries...)
	}
	return out
}

// encode interns one row into the engine's dictionary.
func (d *DeltaCleaner) encode(vals []string) []uint32 {
	row := make([]uint32, len(vals))
	for i, v := range vals {
		row[i] = d.dict.Intern(v)
	}
	return row
}

// reindex rebuilds the ID → position map after structural changes.
func (d *DeltaCleaner) reindex() {
	d.rowPos = make(map[int]int, len(d.tuples))
	for i, t := range d.tuples {
		d.rowPos[t.ID] = i
	}
}

// insertAt places a new tuple at its ascending-ID position.
func (d *DeltaCleaner) insertAt(row int, vals []string) {
	at := sort.Search(len(d.tuples), func(i int) bool { return d.tuples[i].ID > row })
	t := &dataset.Tuple{ID: row, Values: vals}
	d.tuples = append(d.tuples, nil)
	copy(d.tuples[at+1:], d.tuples[at:])
	d.tuples[at] = t
	d.encRows = append(d.encRows, nil)
	copy(d.encRows[at+1:], d.encRows[at:])
	d.encRows[at] = d.encode(vals)
	d.reindex()
}

// view is the engine table as a dataset.Table header (shared tuples, no copy).
func (d *DeltaCleaner) view() *dataset.Table {
	return &dataset.Table{Schema: d.schema, Tuples: d.tuples}
}

// cleanBlock (re)builds rule ri's block over the current table and runs the
// per-block stage-I pipeline on it, refreshing every cache the block feeds.
func (d *DeltaCleaner) cleanBlock(ri int, db *deltaBlock) error {
	enc := &dataset.Encoded{Dict: d.dict, Rows: d.encRows}
	b := index.BuildBlockFor(d.view(), enc, d.rs[ri])
	ev := d.pool.Get()
	if db.memo == nil {
		db.memo = &agpMemo{}
	}
	ab, abp, promos := agp(ri, b, d.opts.Tau, ev, d.opts.MergeCapRatio, d.opts.AGPStrategy, db.memo, nil)
	iters, err := learnBlockWeights(b, d.opts.Learn)
	if err != nil {
		d.pool.Put(ev)
		return err
	}
	repairs := rsc(ri, b, ev, nil)
	d.pool.Put(ev)

	mAbnormalGroups.Add(int64(ab))
	mAGPPromotions.Add(int64(promos))
	mAGPMerges.Add(int64(ab - promos))
	mLearnIterations.Add(int64(iters))
	mRSCRewrites.Add(int64(repairs))

	db.block = b
	db.frag = blockFrag{
		groups: len(b.Groups), abnormal: ab, abnormalPieces: abp,
		promotions: promos, learnIters: iters, rscRepairs: repairs,
	}
	db.summaries = blockSummaries(b)
	fb := &FusionBlock{Rule: b.Rule, Attrs: b.Rule.Attrs(), Versions: make(map[int]*index.Piece)}
	for _, g := range b.Groups {
		for _, p := range g.Pieces {
			fb.Candidates = append(fb.Candidates, p)
			for _, id := range p.TupleIDs {
				fb.Versions[id] = p
			}
		}
	}
	db.fb = fb
	db.cands = buildBlockCands(fb, d.posPerBlock[ri])
	db.vers = make(map[int]verInfo, len(fb.Versions))
	for id, p := range fb.Versions {
		db.vers[id] = verInfo{kid: p.KeyID(), weight: p.Weight}
	}
	return nil
}

// blockSummaries mirrors Index.PieceSummaries for a single block.
func blockSummaries(b *index.Block) []index.PieceSummary {
	var out []index.PieceSummary
	for _, g := range b.Groups {
		for _, p := range g.Pieces {
			vals := p.Values()
			out = append(out, index.PieceSummary{
				RuleID: b.Rule.ID,
				Key:    dataset.JoinKey(vals),
				Values: vals,
				Count:  p.Count(),
				Weight: p.Weight,
			})
		}
	}
	return out
}

// recomputeDomains refreshes the distinct-value counts fusion's observation
// model reads, over the columns any rule touches.
func (d *DeltaCleaner) recomputeDomains() {
	width := d.schema.Len()
	d.domain = make([]int, width)
	var seen map[uint32]struct{}
	for p := 0; p < width; p++ {
		if !d.needed[p] {
			continue
		}
		if seen == nil {
			seen = make(map[uint32]struct{}, len(d.encRows))
		} else {
			clear(seen)
		}
		for _, row := range d.encRows {
			seen[row[p]] = struct{}{}
		}
		d.domain[p] = len(seen)
	}
}

// fuseOne re-runs fusion for one tuple against the current blocks and caches
// the outcome.
func (d *DeltaCleaner) fuseOne(id int) {
	pos := d.rowPos[id]
	fbs := make([]*FusionBlock, len(d.blocks))
	cands := make([]*blockCands, len(d.blocks))
	for i, db := range d.blocks {
		fbs[i] = db.fb
		cands[i] = db.cands
	}
	t := d.tuples[pos].Clone()
	changes, failed := fuseTuple(t, d.encRows[pos], d.dict, d.schema,
		fbs, d.posPerBlock, cands, d.domain, d.opts)
	d.fused[id] = &tupleState{
		values:     t.Values,
		changes:    changes,
		failed:     failed,
		conflicted: d.conflicted(id),
	}
	d.rowKeys[id] = d.rowKey(t.Values)
}

// rowKey interns a fused row into its ID-sequence key. Keys from the
// engine's persistent dict number differently than a fresh Dedup pass's
// would, but equality is all dedup reads — identical rows intern to the
// same key in any dict.
func (d *DeltaCleaner) rowKey(vals []string) uint32 {
	d.keyScratch = d.keyScratch[:0]
	for _, v := range vals {
		d.keyScratch = append(d.keyScratch, d.dedupDict.Intern(v))
	}
	return d.dedupDict.Seq(d.keyScratch)
}

// conflicted mirrors the fuser's pairwise conflict check over the tuple's
// current versions: true means its fusion reads global state (candidates,
// domain sizes) and must re-run on every Apply.
func (d *DeltaCleaner) conflicted(id int) bool {
	type ver struct {
		pos []int
		ids []uint32
	}
	var vs []ver
	for bi, db := range d.blocks {
		if p, ok := db.fb.Versions[id]; ok {
			vs = append(vs, ver{pos: d.posPerBlock[bi], ids: p.ValueIDs()})
		}
	}
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			for ai, pa := range vs[i].pos {
				for aj, pb := range vs[j].pos {
					if pa == pb && vs[i].ids[ai] != vs[j].ids[aj] {
						return true
					}
				}
			}
		}
	}
	return false
}

// appliesVals mirrors rulePlan.appliesTo over display values: every rule
// applies except a constant-bearing CFD none of whose constant patterns
// match the row.
func (d *DeltaCleaner) appliesVals(r *rules.Rule, vals []string) bool {
	if r.Kind != rules.CFD {
		return true
	}
	anyConst := false
	for _, p := range r.Reason {
		if p.Const == "" {
			continue
		}
		anyConst = true
		if vals[d.schema.MustIndex(p.Attr)] == p.Const {
			return true
		}
	}
	return !anyConst
}

// ruleDirtyOnUpdate reports whether replacing old with new changes rule r's
// block: membership flipped, or a member's projection onto the rule's
// attributes moved.
func (d *DeltaCleaner) ruleDirtyOnUpdate(r *rules.Rule, ri int, old, new []string) bool {
	oldIn := d.appliesVals(r, old)
	newIn := d.appliesVals(r, new)
	if oldIn != newIn {
		return true
	}
	if !oldIn {
		return false
	}
	for _, p := range d.posPerBlock[ri] {
		if old[p] != new[p] {
			return true
		}
	}
	return false
}

// assemble recomposes the full Result from the per-block and per-tuple
// caches: the repaired table in ascending-ID order, duplicate elimination,
// and the Stats a from-scratch run would report. Result.Index is nil — the
// engine is the index's keeper across mutations.
func (d *DeltaCleaner) assemble() *Result {
	st := Stats{Tuples: len(d.tuples), Blocks: len(d.blocks)}
	for _, db := range d.blocks {
		st.Groups += db.frag.groups
		st.AbnormalGroups += db.frag.abnormal
		st.AbnormalPieces += db.frag.abnormalPieces
		st.AGPPromotions += db.frag.promotions
		st.LearnIterations += db.frag.learnIters
		st.RSCRepairs += db.frag.rscRepairs
	}
	// Result rows alias the fused value slices: a tuple's slice is written
	// once by its fuseOne and replaced wholesale (never edited in place) on
	// re-fuse, so rows handed out here stay stable across later Applies.
	// Callers treat Results as immutable — the serving layer re-serializes
	// them verbatim — so sharing is safe and saves a full table copy per
	// version.
	repaired := dataset.NewTable(d.schema)
	for _, t := range d.tuples {
		ts := d.fused[t.ID]
		st.FSCRCellChanges += ts.changes
		if ts.failed {
			st.FusionFailures++
		}
		repaired.Tuples = append(repaired.Tuples, &dataset.Tuple{ID: t.ID, Values: ts.values})
	}
	res := &Result{Repaired: repaired, Stats: st}
	if d.opts.KeepDuplicates {
		res.Clean = repaired.Clone()
		return res
	}
	// Same algorithm as Dedup, but over the cached per-tuple row keys —
	// identical grouping (keys agree iff the rows agree cell for cell) and
	// identical ordering (repaired is in ascending tuple-ID order, as a
	// from-scratch pass would see it), without re-interning every cell.
	// Clean's representatives alias Repaired's tuples, like the rows above.
	clean := dataset.NewTable(d.schema)
	members := make(map[uint32][]int, len(repaired.Tuples))
	var order []uint32
	for _, t := range repaired.Tuples {
		k := d.rowKeys[t.ID]
		if _, ok := members[k]; !ok {
			order = append(order, k)
			clean.Tuples = append(clean.Tuples, t)
		}
		members[k] = append(members[k], t.ID)
	}
	res.Clean = clean
	for _, k := range order {
		if ids := members[k]; len(ids) > 1 {
			res.Duplicates = append(res.Duplicates, ids)
			res.Stats.DuplicatesRemoved += len(ids) - 1
		}
	}
	return res
}
