// Package index implements the MLN index of §4: a two-layer hash structure
// with one block per rule in the first layer and, inside each block, one
// group per distinct reason-part value combination in the second layer. The
// atoms stored in groups are pieces of data (γ): the projection of a tuple
// onto the rule's attributes, deduplicated with support counts.
package index

import (
	"fmt"
	"sort"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// Piece is a γ: one distinct combination of a rule's reason+result values,
// together with the IDs of the tuples exhibiting it within its block.
type Piece struct {
	Rule   *rules.Rule
	Reason []string
	Result []string
	// TupleIDs lists the supporting tuples, ascending.
	TupleIDs []int
	// Weight is the learned MLN weight (set during stage-I cleaning).
	Weight float64
}

// Values returns reason followed by result values.
func (p *Piece) Values() []string {
	out := make([]string, 0, len(p.Reason)+len(p.Result))
	out = append(out, p.Reason...)
	return append(out, p.Result...)
}

// Count returns the number of supporting tuples, i.e. c(γ) of Eq. 4.
func (p *Piece) Count() int { return len(p.TupleIDs) }

// Key identifies the piece by its full value combination.
func (p *Piece) Key() string { return dataset.JoinKey(p.Values()) }

// GroupKey identifies the group the piece natively belongs to (its reason
// values).
func (p *Piece) GroupKey() string { return dataset.JoinKey(p.Reason) }

// String renders the piece in the paper's {Attr: value, …} style.
func (p *Piece) String() string {
	s := "{"
	attrs := p.Rule.Attrs()
	vals := p.Values()
	for i := range vals {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: %s", attrs[i], vals[i])
	}
	return s + "}"
}

// Group is the second index layer: the pieces sharing one reason-part key.
// After AGP merging a group may also hold pieces whose native key differs.
type Group struct {
	Key    string
	Pieces []*Piece
}

// TupleCount sums the supporting tuples of all pieces.
func (g *Group) TupleCount() int {
	n := 0
	for _, p := range g.Pieces {
		n += len(p.TupleIDs)
	}
	return n
}

// Star returns γ⋆: the piece related to the most tuples (ties broken by
// ascending key for determinism). Nil for an empty group.
func (g *Group) Star() *Piece {
	var best *Piece
	for _, p := range g.Pieces {
		if best == nil || p.Count() > best.Count() ||
			(p.Count() == best.Count() && p.Key() < best.Key()) {
			best = p
		}
	}
	return best
}

// Block is the first index layer: all pieces of one rule, partitioned into
// groups by reason key.
type Block struct {
	Rule   *rules.Rule
	Groups []*Group
	byKey  map[string]*Group
}

// Group returns the group with the given key, or nil.
func (b *Block) Group(key string) *Group { return b.byKey[key] }

// RemoveGroup deletes the group with the given key (used by AGP merging).
func (b *Block) RemoveGroup(key string) {
	if _, ok := b.byKey[key]; !ok {
		return
	}
	delete(b.byKey, key)
	for i, g := range b.Groups {
		if g.Key == key {
			b.Groups = append(b.Groups[:i], b.Groups[i+1:]...)
			return
		}
	}
}

// MergeGroups folds group src into group dst, concatenating piece lists
// (piece identities never collide across distinct reason keys) and removing
// src from the block.
func (b *Block) MergeGroups(src, dst *Group) {
	for _, p := range src.Pieces {
		merged := false
		for _, q := range dst.Pieces {
			if q.Key() == p.Key() {
				q.TupleIDs = append(q.TupleIDs, p.TupleIDs...)
				sort.Ints(q.TupleIDs)
				merged = true
				break
			}
		}
		if !merged {
			dst.Pieces = append(dst.Pieces, p)
		}
	}
	b.RemoveGroup(src.Key)
}

// Pieces returns all pieces of the block in deterministic order (group
// insertion order, then piece order).
func (b *Block) Pieces() []*Piece {
	var out []*Piece
	for _, g := range b.Groups {
		out = append(out, g.Pieces...)
	}
	return out
}

// TupleGroup returns the group currently containing the piece that covers
// tuple id, or nil. O(block) — use Index.Assignments for bulk mapping.
func (b *Block) TupleGroup(id int) *Group {
	for _, g := range b.Groups {
		for _, p := range g.Pieces {
			for _, tid := range p.TupleIDs {
				if tid == id {
					return g
				}
			}
		}
	}
	return nil
}

// Index is the full two-layer MLN index.
type Index struct {
	Blocks []*Block
	table  *dataset.Table
}

// Table returns the dirty table the index was built over.
func (ix *Index) Table() *dataset.Table { return ix.table }

// Build constructs the MLN index over the table for the rule set: one block
// per rule (O(|B|·|T|), §4), one group per distinct reason key, one piece
// per distinct reason+result combination.
func Build(tb *dataset.Table, rs []*rules.Rule) (*Index, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("index: no rules")
	}
	ix := &Index{table: tb}
	for _, r := range rs {
		if err := r.Validate(tb.Schema); err != nil {
			return nil, err
		}
		b := &Block{Rule: r, byKey: make(map[string]*Group)}
		pieceByKey := make(map[string]*Piece)
		for _, t := range tb.Tuples {
			if !r.AppliesTo(tb, t) {
				continue
			}
			reason := tb.Project(t, r.ReasonAttrs())
			result := tb.Project(t, r.ResultAttrs())
			pk := dataset.JoinKey(append(append([]string{}, reason...), result...))
			p, ok := pieceByKey[pk]
			if !ok {
				p = &Piece{Rule: r, Reason: reason, Result: result}
				pieceByKey[pk] = p
				gk := dataset.JoinKey(reason)
				g, ok := b.byKey[gk]
				if !ok {
					g = &Group{Key: gk}
					b.byKey[gk] = g
					b.Groups = append(b.Groups, g)
				}
				g.Pieces = append(g.Pieces, p)
			}
			p.TupleIDs = append(p.TupleIDs, t.ID)
		}
		ix.Blocks = append(ix.Blocks, b)
	}
	return ix, nil
}

// Assignments maps every covered tuple ID to its current group, per block.
func (ix *Index) Assignments() []map[int]*Group {
	out := make([]map[int]*Group, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		m := make(map[int]*Group)
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				for _, id := range p.TupleIDs {
					m[id] = g
				}
			}
		}
		out[bi] = m
	}
	return out
}

// PieceSummary is the serializable weight-exchange record of one piece: its
// identity (rule + full value key), local support count, and locally learned
// weight. The distributed Eq. 6 weight merge reduces over these summaries
// instead of touching worker index state directly, so the exchange can cross
// a process boundary.
type PieceSummary struct {
	RuleID string
	Key    string
	Count  int
	Weight float64
}

// PieceSummaries extracts one summary per piece in deterministic
// block/group/piece order.
func (ix *Index) PieceSummaries() []PieceSummary {
	var out []PieceSummary
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				out = append(out, PieceSummary{
					RuleID: b.Rule.ID,
					Key:    p.Key(),
					Count:  p.Count(),
					Weight: p.Weight,
				})
			}
		}
	}
	return out
}

// CopySummaries returns an independent copy of a summary vector. Holders of
// long-lived weight vectors (the serving model cache, Result.MergedWeights)
// copy on hand-off so later mutation by one party cannot corrupt another's
// view.
func CopySummaries(ws []PieceSummary) []PieceSummary {
	if ws == nil {
		return nil
	}
	out := make([]PieceSummary, len(ws))
	copy(out, ws)
	return out
}

// ApplyPieceWeights overwrites the weight of every piece matching a summary's
// (rule, key) identity; pieces without a matching summary keep their local
// weight. Counts are ignored — this is the write-back half of the Eq. 6
// exchange.
func (ix *Index) ApplyPieceWeights(ws []PieceSummary) {
	if len(ws) == 0 {
		return
	}
	merged := make(map[string]float64, len(ws))
	for _, s := range ws {
		merged[s.RuleID+"\x1e"+s.Key] = s.Weight
	}
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				if w, ok := merged[b.Rule.ID+"\x1e"+p.Key()]; ok {
					p.Weight = w
				}
			}
		}
	}
}

// Stats summarizes index shape.
type Stats struct {
	Blocks int
	Groups int
	Pieces int
}

// Stats computes summary counts.
func (ix *Index) Stats() Stats {
	s := Stats{Blocks: len(ix.Blocks)}
	for _, b := range ix.Blocks {
		s.Groups += len(b.Groups)
		for _, g := range b.Groups {
			s.Pieces += len(g.Pieces)
		}
	}
	return s
}
