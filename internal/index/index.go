// Package index implements the MLN index of §4: a two-layer hash structure
// with one block per rule in the first layer and, inside each block, one
// group per distinct reason-part value combination in the second layer. The
// atoms stored in groups are pieces of data (γ): the projection of a tuple
// onto the rule's attributes, deduplicated with support counts.
//
// Identity is dictionary-encoded end to end: every cell value is interned to
// a dense uint32 ID (internal/intern) when the index is built, and pieces
// and groups are keyed on hash-consed ID-sequence keys — fixed-width map
// probes instead of joined strings, immune to separator collisions. String
// forms survive as accessors for display, traces, evaluation, and the wire.
package index

import (
	"fmt"
	"sort"

	"mlnclean/internal/dataset"
	"mlnclean/internal/intern"
	"mlnclean/internal/obs"
	"mlnclean/internal/plan"
	"mlnclean/internal/rules"
)

var (
	mBuildSeconds = obs.Default().Histogram("mlnclean_index_build_seconds",
		"Wall time to dictionary-encode the table and build the two-layer MLN index.", obs.DefBuckets)
	mBuilds = obs.Default().Counter("mlnclean_index_builds_total",
		"MLN index constructions.")
)

// Piece is a γ: one distinct combination of a rule's reason+result values,
// together with the IDs of the tuples exhibiting it within its block. Its
// values are stored as interned IDs; Reason/Result/Values decode on demand.
type Piece struct {
	Rule *rules.Rule
	// TupleIDs lists the supporting tuples, ascending.
	TupleIDs []int
	// Weight is the learned MLN weight (set during stage-I cleaning).
	Weight float64

	dict    *intern.Dict
	ids     []uint32 // reason then result value IDs
	nReason int
	kid     uint32 // sequence key of ids (minted at construction)
	gkid    uint32 // sequence key of the reason prefix
}

// NewPiece interns the given reason/result values into dict and returns the
// piece. The wire gather path and tests construct pieces this way; Build
// mints them directly from encoded rows.
func NewPiece(r *rules.Rule, dict *intern.Dict, reason, result []string) *Piece {
	ids := make([]uint32, 0, len(reason)+len(result))
	for _, v := range reason {
		ids = append(ids, dict.Intern(v))
	}
	for _, v := range result {
		ids = append(ids, dict.Intern(v))
	}
	return newPieceIDs(r, dict, ids, len(reason))
}

// newPieceIDs claims ownership of ids (reason prefix of length nReason) and
// mints the piece's sequence keys. Key minting mutates the dictionary, so
// pieces are only created in serial phases (Build, the wire gather).
func newPieceIDs(r *rules.Rule, dict *intern.Dict, ids []uint32, nReason int) *Piece {
	gkid := dict.Seq(ids[:nReason])
	return &Piece{
		Rule:    r,
		dict:    dict,
		ids:     ids,
		nReason: nReason,
		gkid:    gkid,
		kid:     dict.Extend(gkid, ids[nReason:]),
	}
}

// Dict returns the dictionary the piece's IDs live in.
func (p *Piece) Dict() *intern.Dict { return p.dict }

// ValueIDs returns the piece's interned value IDs, reason first. Callers
// must not mutate the slice.
func (p *Piece) ValueIDs() []uint32 { return p.ids }

// ReasonIDs returns the interned IDs of the reason part.
func (p *Piece) ReasonIDs() []uint32 { return p.ids[:p.nReason] }

// Reason returns the decoded reason values.
func (p *Piece) Reason() []string { return p.decode(p.ids[:p.nReason]) }

// Result returns the decoded result values.
func (p *Piece) Result() []string { return p.decode(p.ids[p.nReason:]) }

// Values returns reason followed by result values, decoded.
func (p *Piece) Values() []string { return p.decode(p.ids) }

func (p *Piece) decode(ids []uint32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = p.dict.Value(id)
	}
	return out
}

// Count returns the number of supporting tuples, i.e. c(γ) of Eq. 4.
func (p *Piece) Count() int { return len(p.TupleIDs) }

// KeyID is the piece's fixed-width identity: the hash-consed key of its
// full value-ID sequence. Two pieces of the same dictionary are
// value-identical iff their KeyIDs are equal.
func (p *Piece) KeyID() uint32 { return p.kid }

// GroupKeyID is the fixed-width identity of the piece's native group (its
// reason-ID sequence).
func (p *Piece) GroupKeyID() uint32 { return p.gkid }

// Key renders the piece's identity as a joined display string (traces, wire
// summaries, tie-breaking). Not collision-free — see dataset.JoinKey.
func (p *Piece) Key() string { return dataset.JoinKey(p.Values()) }

// GroupKey renders the native group key as a display string.
func (p *Piece) GroupKey() string { return dataset.JoinKey(p.Reason()) }

// String renders the piece in the paper's {Attr: value, …} style.
func (p *Piece) String() string {
	s := "{"
	attrs := p.Rule.Attrs()
	vals := p.Values()
	for i := range vals {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: %s", attrs[i], vals[i])
	}
	return s + "}"
}

// Group is the second index layer: the pieces sharing one reason-part key.
// After AGP merging a group may also hold pieces whose native key differs.
type Group struct {
	// Key is the display form of the reason key (traces, eval, tests);
	// group identity on the hot path is the fixed-width id.
	Key    string
	Pieces []*Piece

	id uint32
}

// KeyID is the group's fixed-width reason-sequence identity.
func (g *Group) KeyID() uint32 { return g.id }

// TupleCount sums the supporting tuples of all pieces.
func (g *Group) TupleCount() int {
	n := 0
	for _, p := range g.Pieces {
		n += len(p.TupleIDs)
	}
	return n
}

// Star returns γ⋆: the piece related to the most tuples (ties broken by
// ascending key for determinism). Nil for an empty group.
func (g *Group) Star() *Piece {
	var best *Piece
	for _, p := range g.Pieces {
		if best == nil || p.Count() > best.Count() ||
			(p.Count() == best.Count() && p.Key() < best.Key()) {
			best = p
		}
	}
	return best
}

// Block is the first index layer: all pieces of one rule, partitioned into
// groups by reason key. Group membership maps are Build-local; post-build
// group operations (AGP merging) touch few groups and resolve by identity.
type Block struct {
	Rule   *rules.Rule
	Groups []*Group
}

// Group returns the group with the given display key, or nil. Display
// convenience (tests, examples); the hot path resolves groups by KeyID.
func (b *Block) Group(key string) *Group {
	for _, g := range b.Groups {
		if g.Key == key {
			return g
		}
	}
	return nil
}

// RemoveGroup deletes the group with the given display key (first match).
func (b *Block) RemoveGroup(key string) {
	if g := b.Group(key); g != nil {
		b.removeGroup(g)
	}
}

// removeGroup deletes the group by identity.
func (b *Block) removeGroup(g *Group) {
	for i, h := range b.Groups {
		if h == g {
			b.Groups = append(b.Groups[:i], b.Groups[i+1:]...)
			return
		}
	}
}

// MergeGroups folds group src into group dst, concatenating piece lists
// (piece identities are compared by their fixed-width keys) and removing
// src from the block.
func (b *Block) MergeGroups(src, dst *Group) {
	for _, p := range src.Pieces {
		merged := false
		for _, q := range dst.Pieces {
			if q.kid == p.kid {
				q.TupleIDs = append(q.TupleIDs, p.TupleIDs...)
				sort.Ints(q.TupleIDs)
				merged = true
				break
			}
		}
		if !merged {
			dst.Pieces = append(dst.Pieces, p)
		}
	}
	b.removeGroup(src)
}

// Pieces returns all pieces of the block in deterministic order (group
// insertion order, then piece order).
func (b *Block) Pieces() []*Piece {
	var out []*Piece
	for _, g := range b.Groups {
		out = append(out, g.Pieces...)
	}
	return out
}

// TupleGroup returns the group currently containing the piece that covers
// tuple id, or nil. O(block) — use Index.Assignments for bulk mapping.
func (b *Block) TupleGroup(id int) *Group {
	for _, g := range b.Groups {
		for _, p := range g.Pieces {
			for _, tid := range p.TupleIDs {
				if tid == id {
					return g
				}
			}
		}
	}
	return nil
}

// Index is the full two-layer MLN index.
type Index struct {
	Blocks []*Block
	table  *dataset.Table
	enc    *dataset.Encoded
	plan   *plan.Plan
}

// Plan returns the evaluation plan the index was built under, or nil when
// the planner was disabled (BuildConfig.FixedOrder).
func (ix *Index) Plan() *plan.Plan { return ix.plan }

// BlockOrder returns the stage-I scheduling order of the blocks: descending
// estimated cost (longest-processing-time-first) when a plan exists, block
// order otherwise.
func (ix *Index) BlockOrder() []int {
	if ix.plan != nil && len(ix.plan.Rules) == len(ix.Blocks) {
		return ix.plan.BlockOrder()
	}
	order := make([]int, len(ix.Blocks))
	for i := range order {
		order[i] = i
	}
	return order
}

// Table returns the dirty table the index was built over.
func (ix *Index) Table() *dataset.Table { return ix.table }

// Dict returns the value dictionary the index is encoded against.
func (ix *Index) Dict() *intern.Dict { return ix.enc.Dict }

// Encoded returns the dictionary-encoded rows of the indexed table,
// row-aligned with Table().Tuples.
func (ix *Index) Encoded() *dataset.Encoded { return ix.enc }

// rulePlan precompiles one rule against the schema and dictionary: attribute
// positions and (for CFDs) the interned constants of its reason patterns.
type rulePlan struct {
	reasonPos []int
	resultPos []int
	cfd       bool
	hasConst  bool
	constPos  []int
	constIDs  []uint32
}

func planRule(r *rules.Rule, schema *dataset.Schema, dict *intern.Dict) rulePlan {
	pl := rulePlan{cfd: r.Kind == rules.CFD}
	for _, p := range r.Reason {
		pos := schema.MustIndex(p.Attr)
		pl.reasonPos = append(pl.reasonPos, pos)
		if pl.cfd && p.Const != "" {
			pl.hasConst = true
			// A constant absent from the dictionary matches no tuple of this
			// table; the pattern is simply omitted from the match list.
			if id, ok := dict.Lookup(p.Const); ok {
				pl.constPos = append(pl.constPos, pos)
				pl.constIDs = append(pl.constIDs, id)
			}
		}
	}
	for _, p := range r.Result {
		pl.resultPos = append(pl.resultPos, schema.MustIndex(p.Attr))
	}
	return pl
}

// appliesTo mirrors rules.Rule.AppliesTo over an encoded row.
func (pl *rulePlan) appliesTo(row []uint32) bool {
	if !pl.cfd || !pl.hasConst {
		return true
	}
	for i, pos := range pl.constPos {
		if row[pos] == pl.constIDs[i] {
			return true
		}
	}
	return false
}

// BuildConfig parameterizes index construction.
type BuildConfig struct {
	// Dict is the dictionary to encode into (nil for a fresh one).
	Dict *intern.Dict
	// FixedOrder disables the selectivity planner: every block is built by
	// the fixed-order row scan and Index.Plan() returns nil. A planned build
	// produces an identical index — selectivity changes evaluation order,
	// never outcome — so this exists for comparison benchmarks and as an
	// escape hatch.
	FixedOrder bool
	// Encoded supplies a pre-encoded companion of the table (streaming
	// ingest encodes during CSV parsing). It must be row-aligned with the
	// table and is adopted as the index's encoding; Dict is ignored in its
	// favor. Nil means the table is encoded here.
	Encoded *dataset.Encoded
}

// Build constructs the MLN index over the table for the rule set: one block
// per rule (O(|B|·|T|), §4), one group per distinct reason key, one piece
// per distinct reason+result combination. The table is dictionary-encoded
// into a fresh dictionary first; use BuildWithDict to share one. Blocks are
// scanned under the selectivity plan derived from the encode-time column
// statistics (internal/plan).
func Build(tb *dataset.Table, rs []*rules.Rule) (*Index, error) {
	return BuildConfigured(tb, rs, BuildConfig{})
}

// BuildWithDict is Build over a caller-supplied dictionary (nil for a fresh
// one): long-lived holders (a serving session, the distributed gather) pass
// their own so values interned at ingest are shared across phases. The
// per-tuple scan hashes fixed-width sequence keys only — no joined strings,
// no per-tuple allocations beyond the deduplicated pieces themselves.
func BuildWithDict(tb *dataset.Table, rs []*rules.Rule, dict *intern.Dict) (*Index, error) {
	return BuildConfigured(tb, rs, BuildConfig{Dict: dict})
}

// BuildConfigured is the fully parameterized Build: a BlockIterator drained
// to completion. The streaming pipeline pulls the same iterator one block at
// a time instead.
func BuildConfigured(tb *dataset.Table, rs []*rules.Rule, cfg BuildConfig) (*Index, error) {
	it, err := NewBlockIterator(tb, rs, cfg)
	if err != nil {
		return nil, err
	}
	for {
		if _, _, ok := it.Next(); !ok {
			return it.Index(), nil
		}
	}
}

// BuildBlockFor rebuilds one rule's block over the table by the fixed-order
// row scan, without constructing a full Index. The incremental delta engine
// uses it to re-derive only the blocks a mutation dirtied. enc must be
// row-aligned with tb and the block is encoded into enc's dictionary; the
// resulting block is identical to the one a full build (planned or not)
// produces over the same table, per the planner's order-invariance.
func BuildBlockFor(tb *dataset.Table, enc *dataset.Encoded, r *rules.Rule) *Block {
	return buildBlock(tb, enc, enc.Dict, r, nil, nil)
}

// buildBlock constructs one rule's block under its plan choice. Whatever the
// scan shape, the resulting block is identical to the fixed-order scan's:
// group and piece identities are minted from declared-order folds, tuple
// lists stay ascending in scan position, and the pivot-join path restores
// first-sight group order afterwards.
func buildBlock(tb *dataset.Table, enc *dataset.Encoded, d *intern.Dict, r *rules.Rule, choice *plan.RulePlan, post *postings) *Block {
	bb := &blockBuilder{
		b:    &Block{Rule: r},
		tb:   tb,
		enc:  enc,
		d:    d,
		pl:   planRule(r, tb.Schema, d),
		gMap: make(map[uint32]*Group),
		// Pieces are probed on (reason fold, result fold): for the common
		// single-reason/single-result rule shape that is one map access per
		// tuple with zero sequence-node minting; the dictionary-global
		// sequence keys are minted only when a piece is first seen.
		pMap: make(map[[2]uint32]*Piece, len(tb.Tuples)/4+8),
	}
	scan := plan.FullScan
	if choice != nil {
		scan = choice.Scan
	}
	switch scan {
	case plan.PostingUnion:
		// Candidate rows are exactly the rows appliesTo accepts (the union
		// of constant-ID posting lists), ascending, so the filter is skipped.
		for _, ti := range post.union(choice.ConstPos, choice.ConstIDs) {
			bb.add(int(ti), false)
		}
	case plan.PivotJoin:
		// Visit rows one pivot posting list at a time. All rows of a group
		// share the pivot value, so each group lives inside one list; a
		// singleton list is a complete group and skips every map probe.
		// PivotJoin is only planned for constant-free rules, so appliesTo
		// always holds.
		c := post.column(choice.Pivot)
		for _, vid := range c.order {
			if list := c.rows[vid]; len(list) == 1 {
				bb.addSingleton(int(list[0]))
			} else {
				for _, ti := range list {
					bb.add(int(ti), false)
				}
			}
		}
		bb.restoreFirstSightOrder()
	default:
		for ti := range tb.Tuples {
			bb.add(ti, true)
		}
	}
	return bb.b
}

// blockBuilder accumulates one block during a (possibly planned) scan.
type blockBuilder struct {
	b      *Block
	tb     *dataset.Table
	enc    *dataset.Encoded
	d      *intern.Dict
	pl     rulePlan
	gMap   map[uint32]*Group
	pMap   map[[2]uint32]*Piece
	firsts []int // scan position each group was first seen at, aligned with b.Groups
}

// add folds row ti into the block, creating its piece/group on first sight.
func (bb *blockBuilder) add(ti int, checkApplies bool) {
	row := bb.enc.Rows[ti]
	pl, d := &bb.pl, bb.d
	if checkApplies && !pl.appliesTo(row) {
		return
	}
	gk := row[pl.reasonPos[0]]
	for _, pos := range pl.reasonPos[1:] {
		gk = d.Fold(gk, row[pos])
	}
	rk := row[pl.resultPos[0]]
	for _, pos := range pl.resultPos[1:] {
		rk = d.Fold(rk, row[pos])
	}
	p, ok := bb.pMap[[2]uint32{gk, rk}]
	if !ok {
		p = bb.newPiece(row, gk)
		bb.pMap[[2]uint32{gk, rk}] = p
		g, ok := bb.gMap[gk]
		if !ok {
			g = &Group{Key: dataset.JoinKey(p.Reason()), id: gk}
			bb.gMap[gk] = g
			bb.b.Groups = append(bb.b.Groups, g)
			bb.firsts = append(bb.firsts, ti)
		}
		g.Pieces = append(g.Pieces, p)
	}
	p.TupleIDs = append(p.TupleIDs, bb.tb.Tuples[ti].ID)
}

// addSingleton folds a row that is alone in its pivot posting list: its
// group and piece cannot recur, so both are constructed directly without
// touching the probe maps (or minting the result-only fold).
func (bb *blockBuilder) addSingleton(ti int) {
	row := bb.enc.Rows[ti]
	pl, d := &bb.pl, bb.d
	gk := row[pl.reasonPos[0]]
	for _, pos := range pl.reasonPos[1:] {
		gk = d.Fold(gk, row[pos])
	}
	p := bb.newPiece(row, gk)
	p.TupleIDs = []int{bb.tb.Tuples[ti].ID}
	g := &Group{Key: dataset.JoinKey(p.Reason()), id: gk, Pieces: []*Piece{p}}
	bb.b.Groups = append(bb.b.Groups, g)
	bb.firsts = append(bb.firsts, ti)
}

func (bb *blockBuilder) newPiece(row []uint32, gk uint32) *Piece {
	pl := &bb.pl
	nReason := len(pl.reasonPos)
	ids := make([]uint32, 0, nReason+len(pl.resultPos))
	for _, pos := range pl.reasonPos {
		ids = append(ids, row[pos])
	}
	for _, pos := range pl.resultPos {
		ids = append(ids, row[pos])
	}
	return &Piece{Rule: bb.b.Rule, dict: bb.d, ids: ids, nReason: nReason, gkid: gk, kid: bb.d.Extend(gk, ids[nReason:])}
}

// restoreFirstSightOrder re-sorts the block's groups into the order a
// fixed-order scan would have created them (ascending first-seen row). Each
// row belongs to exactly one group per rule, so first-seen positions are
// unique and the order is total. Pieces within a group never need fixing:
// a group's rows all live in one pivot list, which is scanned ascending.
func (bb *blockBuilder) restoreFirstSightOrder() {
	order := make([]int, len(bb.b.Groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bb.firsts[order[a]] < bb.firsts[order[b]] })
	sorted := make([]*Group, len(order))
	for i, j := range order {
		sorted[i] = bb.b.Groups[j]
	}
	bb.b.Groups = sorted
}

// postings lazily materializes per-column posting lists over the encoded
// rows: for each value ID of a column, the ascending row positions holding
// it, plus the IDs in first-sight order. Built once per column per Build
// call and shared by every rule that scans via postings.
type postings struct {
	enc  *dataset.Encoded
	cols []*colPostings
}

type colPostings struct {
	order []uint32 // value IDs in first-sight row order
	rows  map[uint32][]int32
}

func (ps *postings) column(pos int) *colPostings {
	if c := ps.cols[pos]; c != nil {
		return c
	}
	c := &colPostings{rows: make(map[uint32][]int32)}
	for ti, row := range ps.enc.Rows {
		id := row[pos]
		list, ok := c.rows[id]
		if !ok {
			c.order = append(c.order, id)
		}
		c.rows[id] = append(list, int32(ti))
	}
	ps.cols[pos] = c
	return c
}

// union returns the ascending, deduplicated union of the posting lists for
// the given (column, value ID) pairs.
func (ps *postings) union(poss []int, ids []uint32) []int32 {
	var lists [][]int32
	for i, pos := range poss {
		if list := ps.column(pos).rows[ids[i]]; len(list) > 0 {
			lists = append(lists, list)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Assignments maps every covered tuple ID to its current group, per block.
func (ix *Index) Assignments() []map[int]*Group {
	out := make([]map[int]*Group, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		m := make(map[int]*Group)
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				for _, id := range p.TupleIDs {
					m[id] = g
				}
			}
		}
		out[bi] = m
	}
	return out
}

// PieceSummary is the serializable weight-exchange record of one piece: its
// identity (rule + exact values, plus the joined display key), local support
// count, and locally learned weight. The distributed Eq. 6 weight merge
// reduces over these summaries instead of touching worker index state
// directly, so the exchange can cross a process boundary.
type PieceSummary struct {
	RuleID string
	// Key is the joined display form of Values (kept for logs and older
	// cached vectors); Values is the authoritative identity.
	Key    string
	Values []string
	Count  int
	Weight float64
}

// PieceSummaries extracts one summary per piece in deterministic
// block/group/piece order.
func (ix *Index) PieceSummaries() []PieceSummary {
	var out []PieceSummary
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				vals := p.Values()
				out = append(out, PieceSummary{
					RuleID: b.Rule.ID,
					Key:    dataset.JoinKey(vals),
					Values: vals,
					Count:  p.Count(),
					Weight: p.Weight,
				})
			}
		}
	}
	return out
}

// CopySummaries returns an independent copy of a summary vector, including
// each summary's Values slice. Holders of long-lived weight vectors (the
// serving model cache, Result.MergedWeights) copy on hand-off so later
// mutation by one party cannot corrupt another's view.
func CopySummaries(ws []PieceSummary) []PieceSummary {
	if ws == nil {
		return nil
	}
	out := make([]PieceSummary, len(ws))
	copy(out, ws)
	for i := range out {
		if out[i].Values != nil {
			out[i].Values = append([]string(nil), out[i].Values...)
		}
	}
	return out
}

// IdentityValues returns the summary's identity values, reconstructing them
// from the joined key for vectors produced before Values existed.
func (s *PieceSummary) IdentityValues() []string {
	if s.Values != nil {
		return s.Values
	}
	return dataset.SplitKey(s.Key)
}

// ApplyPieceWeights overwrites the weight of every piece matching a summary's
// (rule, values) identity; pieces without a matching summary keep their local
// weight. Counts are ignored — this is the write-back half of the Eq. 6
// exchange. Matching resolves summary values through the index's dictionary
// (lookup only): a summary naming values this index never saw cannot match
// any piece and is skipped without growing the dictionary.
func (ix *Index) ApplyPieceWeights(ws []PieceSummary) {
	if len(ws) == 0 {
		return
	}
	type identity struct {
		rule string
		kid  uint32
	}
	d := ix.Dict()
	merged := make(map[identity]float64, len(ws))
	var ids []uint32
	for i := range ws {
		s := &ws[i]
		vals := s.IdentityValues()
		ids = ids[:0]
		ok := true
		for _, v := range vals {
			id, found := d.Lookup(v)
			if !found {
				ok = false
				break
			}
			ids = append(ids, id)
		}
		if !ok {
			continue
		}
		kid, found := d.LookupSeq(ids)
		if !found {
			continue
		}
		merged[identity{s.RuleID, kid}] = s.Weight
	}
	if len(merged) == 0 {
		return
	}
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				if w, ok := merged[identity{b.Rule.ID, p.kid}]; ok {
					p.Weight = w
				}
			}
		}
	}
}

// Stats summarizes index shape.
type Stats struct {
	Blocks int
	Groups int
	Pieces int
}

// Stats computes summary counts.
func (ix *Index) Stats() Stats {
	s := Stats{Blocks: len(ix.Blocks)}
	for _, b := range ix.Blocks {
		s.Groups += len(b.Groups)
		for _, g := range b.Groups {
			s.Pieces += len(g.Pieces)
		}
	}
	return s
}
