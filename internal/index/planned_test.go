package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/plan"
	"mlnclean/internal/rules"
)

// dumpIndex renders an index's observable structure — block, group, and
// piece order, decoded identities, and supporting tuples — so two builds
// can be compared byte-for-byte. The raw hash-consed IDs are deliberately
// omitted: they are minted in first-encounter order and so legitimately
// differ between scan orders, while everything the pipeline's output
// depends on (decoded values, group/piece order, tuple membership) must
// not.
func dumpIndex(ix *Index) string {
	var sb strings.Builder
	for bi, b := range ix.Blocks {
		fmt.Fprintf(&sb, "block %d rule %s\n", bi, b.Rule.ID)
		for gi, g := range b.Groups {
			fmt.Fprintf(&sb, "  group %d key=%q\n", gi, g.Key)
			for pi, p := range g.Pieces {
				fmt.Fprintf(&sb, "    piece %d key=%q tuples=%v\n", pi, p.Key(), p.TupleIDs)
			}
		}
	}
	return sb.String()
}

// plannedRules exercises all three scan shapes: a multi-attribute FD the
// planner pivots, a CFD with a rare constant it turns into a posting union,
// and a single-attribute FD that stays a full scan.
func plannedRules(t *testing.T) []*rules.Rule {
	t.Helper()
	return rules.MustParseStrings(
		"FD: CT, PN -> ST",
		"CFD: HN=ELIZA, CT -> PN",
		"FD: CT -> ST",
	)
}

// plannedTable generates a table wide enough that the pivot gate engages:
// PN is near-unique, CT has a handful of values, HN=ELIZA is rare.
func plannedTable(t *testing.T) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	cities := []string{"DOTHAN", "BOAZ", "MOBILE", "AUBURN"}
	for i := 0; i < 120; i++ {
		hn := "OTHER"
		if i%40 == 0 {
			hn = "ELIZA"
		}
		ct := cities[rng.Intn(len(cities))]
		st := "AL"
		if rng.Intn(10) == 0 {
			st = "AK"
		}
		pn := fmt.Sprintf("33479%05d", rng.Intn(90)) // duplicates exist
		tb.MustAppend(hn, ct, st, pn)
	}
	return tb
}

// TestPlannedBuildEquivalence is the planner's core guarantee: a planned
// build produces byte-for-byte the same index — same block, group, and
// piece order, same identities, same supporting tuples — as the fixed
// declared-order scan. Selectivity changes how the work is done, never its
// outcome.
func TestPlannedBuildEquivalence(t *testing.T) {
	rs := plannedRules(t)
	fixed, err := BuildConfigured(plannedTable(t), rs, BuildConfig{FixedOrder: true})
	if err != nil {
		t.Fatalf("fixed build: %v", err)
	}
	planned, err := BuildConfigured(plannedTable(t), rs, BuildConfig{})
	if err != nil {
		t.Fatalf("planned build: %v", err)
	}

	if fixed.Plan() != nil {
		t.Error("fixed-order build must not carry a plan")
	}
	p := planned.Plan()
	if p == nil {
		t.Fatal("planned build must carry its plan")
	}
	kinds := make([]string, len(p.Rules))
	for i := range p.Rules {
		kinds[i] = p.Rules[i].Scan.String()
	}
	want := []string{plan.PivotJoin.String(), plan.PostingUnion.String(), plan.FullScan.String()}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("rule %d scan = %s, want %s (%s)", i, kinds[i], want[i], p.Rules[i].Why)
		}
	}

	if df, dp := dumpIndex(fixed), dumpIndex(planned); df != dp {
		t.Errorf("planned index differs from fixed-order index:\n--- fixed ---\n%s--- planned ---\n%s", df, dp)
	}
}

// TestBlockOrderFallback: an index built without a plan schedules blocks in
// rule order; a planned one uses the plan's heaviest-first order over the
// same index set.
func TestBlockOrderFallback(t *testing.T) {
	rs := plannedRules(t)
	fixed, _ := BuildConfigured(plannedTable(t), rs, BuildConfig{FixedOrder: true})
	order := fixed.BlockOrder()
	for i, bi := range order {
		if bi != i {
			t.Fatalf("fixed BlockOrder = %v, want identity", order)
		}
	}
	planned, _ := BuildConfigured(plannedTable(t), rs, BuildConfig{})
	seen := make(map[int]bool)
	for _, bi := range planned.BlockOrder() {
		seen[bi] = true
	}
	if len(seen) != len(planned.Blocks) {
		t.Fatalf("planned BlockOrder %v is not a permutation of %d blocks", planned.BlockOrder(), len(planned.Blocks))
	}
}
