// Block iteration: the streaming decomposition of Build. A BlockIterator
// yields one rule's block at a time, applying the planner's per-rule scan
// shapes (posting union, pivot join) as predicate pushdown during the scan
// and releasing each shared per-column posting list as soon as no remaining
// rule needs it. Memory while iterating is bounded by the dictionary, the
// encoded rows, the blocks built so far, and the posting lists still
// pending — never by all blocks' build-time probe maps at once.
package index

import (
	"fmt"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/plan"
	"mlnclean/internal/rules"
)

// BlockIterator builds an index one block at a time, in rule order. Rule
// order is load-bearing: piece and group sequence keys are minted from the
// dictionary during the scan, so building blocks in any other order would
// change key IDs (never block contents). Consumers wanting the planner's
// heaviest-first schedule reorder downstream work, not the build.
//
// A BlockIterator is not safe for concurrent use, but the blocks it has
// already yielded may be processed on other goroutines while Next builds
// the following one: building reads the encoded rows and mutates only the
// dictionary's sequence-key structures, which stage-I/II consumers never
// touch (they only decode values).
type BlockIterator struct {
	ix       *Index
	rs       []*rules.Rule
	post     *postings
	colUses  []int // remaining planned scans touching each column's postings
	next     int
	building time.Duration
}

// NewBlockIterator validates the rules, dictionary-encodes the table (or
// adopts cfg.Encoded), and runs the selectivity planner. No block is built
// yet; the partially populated index is available via Index() immediately
// (its plan, dictionary, and encoded rows are complete; Blocks grows as
// Next is called).
func NewBlockIterator(tb *dataset.Table, rs []*rules.Rule, cfg BuildConfig) (*BlockIterator, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("index: no rules")
	}
	for _, r := range rs {
		if err := r.Validate(tb.Schema); err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	enc := cfg.Encoded
	if enc != nil && len(enc.Rows) != len(tb.Tuples) {
		return nil, fmt.Errorf("index: encoded rows (%d) misaligned with table (%d)", len(enc.Rows), len(tb.Tuples))
	}
	if enc == nil {
		enc = dataset.Encode(tb, cfg.Dict)
	}
	ix := &Index{table: tb, enc: enc, Blocks: make([]*Block, 0, len(rs))}
	if !cfg.FixedOrder {
		ix.plan = plan.New(rs, tb.Schema, enc.Dict)
	}
	it := &BlockIterator{
		ix:      ix,
		rs:      rs,
		post:    &postings{enc: enc, cols: make([]*colPostings, tb.Schema.Len())},
		colUses: make([]int, tb.Schema.Len()),
	}
	if ix.plan != nil {
		for ri := range ix.plan.Rules {
			for _, pos := range it.scanColumns(ri) {
				it.colUses[pos]++
			}
		}
	}
	it.building += time.Since(t0)
	return it, nil
}

// scanColumns lists the columns whose posting lists rule ri's planned scan
// reads (empty for full scans and unplanned builds).
func (it *BlockIterator) scanColumns(ri int) []int {
	if it.ix.plan == nil {
		return nil
	}
	switch choice := &it.ix.plan.Rules[ri]; choice.Scan {
	case plan.PostingUnion:
		return choice.ConstPos
	case plan.PivotJoin:
		return []int{choice.Pivot}
	}
	return nil
}

// Index returns the index under construction. Plan, dictionary, table, and
// encoded rows are valid immediately; Blocks holds the blocks yielded so
// far. After the final Next the index is exactly BuildConfigured's.
func (it *BlockIterator) Index() *Index { return it.ix }

// Len returns the total number of blocks the iterator will yield.
func (it *BlockIterator) Len() int { return len(it.rs) }

// Next builds and returns the next block (with its block index), or ok=false
// once every rule's block has been yielded. Posting lists no longer needed
// by any remaining rule are released before returning.
func (it *BlockIterator) Next() (bi int, b *Block, ok bool) {
	if it.next >= len(it.rs) {
		return 0, nil, false
	}
	t0 := time.Now()
	ri := it.next
	it.next++
	var choice *plan.RulePlan
	if it.ix.plan != nil {
		choice = &it.ix.plan.Rules[ri]
	}
	b = buildBlock(it.ix.table, it.ix.enc, it.ix.enc.Dict, it.rs[ri], choice, it.post)
	it.ix.Blocks = append(it.ix.Blocks, b)
	for _, pos := range it.scanColumns(ri) {
		if it.colUses[pos]--; it.colUses[pos] <= 0 {
			it.post.cols[pos] = nil
		}
	}
	it.building += time.Since(t0)
	if it.next == len(it.rs) {
		// The iterator owns the build metrics: time actually spent encoding
		// and building (excluding any interleaved consumer work), observed
		// once when the final block is yielded.
		mBuildSeconds.Observe(it.building.Seconds())
		mBuilds.Inc()
	}
	return ri, b, true
}
