package index

// Regression tests for the separator-collision class: dataset.JoinKey joins
// values with the 0x1f byte, so a value CONTAINING that byte makes two
// distinct projections render identically ({"x\x1fy"} vs {"x","y"}). The
// string-keyed index conflated such groups and pieces; the interned
// ID-sequence keys must keep them apart. JoinKey itself remains in use for
// display and evaluation only.

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

const sep = "\x1f"

// TestBuildSeparatesColladingReasonKeys: two tuples whose reason
// projections join to the same string must still land in distinct groups.
func TestBuildSeparatesCollidingReasonKeys(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B", "C"))
	// Both rows join their (A, B) projection to "x␟y␟z".
	tb.MustAppend("x"+sep+"y", "z", "c1")
	tb.MustAppend("x", "y"+sep+"z", "c2")
	rs := rules.MustParseStrings("FD: A, B -> C")
	ix, err := Build(tb, rs)
	if err != nil {
		t.Fatal(err)
	}
	b := ix.Blocks[0]
	if len(b.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 distinct groups despite identical joined keys", len(b.Groups))
	}
	g0, g1 := b.Groups[0], b.Groups[1]
	if g0.KeyID() == g1.KeyID() {
		t.Error("distinct reason sequences share a KeyID")
	}
	// The display keys DO collide — that is exactly the documented limit of
	// the joined form.
	if g0.Key != g1.Key {
		t.Errorf("expected display keys to collide (documenting the class): %q vs %q", g0.Key, g1.Key)
	}
	if st := ix.Stats(); st.Pieces != 2 {
		t.Errorf("pieces = %d, want 2", st.Pieces)
	}
}

// TestBuildSeparatesCollidingPieceKeys: same group, but the reason/result
// boundary shifts inside the joined key.
func TestBuildSeparatesCollidingPieceKeys(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	// Same reason "k"; results "v␟w" vs "v" + a second attr... the piece
	// values join equal when a value swallows the separator.
	tb.MustAppend("k", "v"+sep+"w")
	tb.MustAppend("k"+sep+"v", "w")
	rs := rules.MustParseStrings("FD: A -> B")
	ix, err := Build(tb, rs)
	if err != nil {
		t.Fatal(err)
	}
	b := ix.Blocks[0]
	if len(b.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(b.Groups))
	}
	var kids []uint32
	for _, g := range b.Groups {
		for _, p := range g.Pieces {
			kids = append(kids, p.KeyID())
		}
	}
	if len(kids) != 2 || kids[0] == kids[1] {
		t.Errorf("pieces must keep distinct identities: %v", kids)
	}
}

// TestMergeGroupsKeepsCollidingPiecesApart: AGP-style merging must not
// conflate value-distinct pieces whose joined keys are equal.
func TestMergeGroupsKeepsCollidingPiecesApart(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("p"+sep+"q", "r")
	tb.MustAppend("p", "q"+sep+"r")
	rs := rules.MustParseStrings("FD: A -> B")
	ix, err := Build(tb, rs)
	if err != nil {
		t.Fatal(err)
	}
	b := ix.Blocks[0]
	if len(b.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(b.Groups))
	}
	src, dst := b.Groups[1], b.Groups[0]
	b.MergeGroups(src, dst)
	// The pieces' FULL values join identically ("p␟q␟r") but differ as
	// sequences, so both must survive the merge.
	if len(dst.Pieces) != 2 {
		t.Fatalf("merged pieces = %d, want 2 (joined-key collision must not conflate)", len(dst.Pieces))
	}
	if dst.Pieces[0].Key() != dst.Pieces[1].Key() {
		t.Error("expected the display keys to collide in this construction")
	}
}
