package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

func sampleTable(t *testing.T) *dataset.Table {
	t.Helper()
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "ST", "PN"))
	tb.MustAppend("ALABAMA", "DOTHAN", "AL", "3347938701")
	tb.MustAppend("ALABAMA", "DOTH", "AL", "3347938701")
	tb.MustAppend("ELIZA", "DOTHAN", "AL", "2567638410")
	tb.MustAppend("ELIZA", "BOAZ", "AK", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	tb.MustAppend("ELIZA", "BOAZ", "AL", "2567688400")
	return tb
}

func sampleRules(t *testing.T) []*rules.Rule {
	t.Helper()
	return rules.MustParseStrings(
		"FD: CT -> ST",
		"DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))",
		"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	)
}

func TestBuildShape(t *testing.T) {
	ix, err := Build(sampleTable(t), sampleRules(t))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := ix.Stats()
	if st.Blocks != 3 {
		t.Errorf("blocks = %d", st.Blocks)
	}
	if got := []int{len(ix.Blocks[0].Groups), len(ix.Blocks[1].Groups), len(ix.Blocks[2].Groups)}; !reflect.DeepEqual(got, []int{3, 3, 2}) {
		t.Errorf("groups per block = %v, want [3 3 2] (Fig. 2)", got)
	}
}

func TestBuildValidation(t *testing.T) {
	tb := sampleTable(t)
	if _, err := Build(tb, nil); err == nil {
		t.Error("no rules should fail")
	}
	if _, err := Build(tb, rules.MustParseStrings("FD: CT -> Missing")); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestPieceAccessors(t *testing.T) {
	ix, _ := Build(sampleTable(t), sampleRules(t))
	b1 := ix.Blocks[0]
	g := b1.Group(dataset.JoinKey([]string{"BOAZ"}))
	if g == nil {
		t.Fatal("group BOAZ missing")
	}
	if len(g.Pieces) != 2 {
		t.Fatalf("BOAZ pieces = %d, want 2 (AL and AK)", len(g.Pieces))
	}
	star := g.Star()
	if star.Result()[0] != "AL" {
		t.Errorf("γ⋆ should be the 2-tuple AL piece, got %v", star.Values())
	}
	if star.Count() != 2 {
		t.Errorf("γ⋆ count = %d", star.Count())
	}
	if star.GroupKey() != g.Key {
		t.Errorf("GroupKey = %q", star.GroupKey())
	}
	if g.TupleCount() != 3 {
		t.Errorf("TupleCount = %d", g.TupleCount())
	}
	if s := star.String(); s == "" {
		t.Error("Piece.String empty")
	}
}

func TestEveryTupleInExactlyOneGroupPerBlock(t *testing.T) {
	tb := sampleTable(t)
	rs := sampleRules(t)
	ix, _ := Build(tb, rs)
	for bi, b := range ix.Blocks {
		seen := make(map[int]int)
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				for _, id := range p.TupleIDs {
					seen[id]++
				}
			}
		}
		for _, tp := range tb.Tuples {
			want := 0
			if rs[bi].AppliesTo(tb, tp) {
				want = 1
			}
			if seen[tp.ID] != want {
				t.Errorf("block %d tuple %d appears %d times, want %d", bi, tp.ID, seen[tp.ID], want)
			}
		}
	}
}

// TestIndexPartitionProperty: on random tables, every tuple lands in exactly
// one group per block and the group key always equals the tuple's reason
// projection.
func TestIndexPartitionProperty(t *testing.T) {
	rs := rules.MustParseStrings("FD: A -> B")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := dataset.NewTable(dataset.MustSchema("A", "B"))
		rows := int(n%40) + 1
		for i := 0; i < rows; i++ {
			tb.MustAppend(fmt.Sprint(rng.Intn(5)), fmt.Sprint(rng.Intn(3)))
		}
		ix, err := Build(tb, rs)
		if err != nil {
			return false
		}
		total := 0
		for _, g := range ix.Blocks[0].Groups {
			for _, p := range g.Pieces {
				if p.GroupKey() != g.Key {
					return false
				}
				total += len(p.TupleIDs)
			}
		}
		return total == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeGroups(t *testing.T) {
	ix, _ := Build(sampleTable(t), sampleRules(t))
	b := ix.Blocks[0]
	src := b.Group(dataset.JoinKey([]string{"DOTH"}))
	dst := b.Group(dataset.JoinKey([]string{"DOTHAN"}))
	before := len(b.Groups)
	srcPieces := len(src.Pieces)
	dstPieces := len(dst.Pieces)
	b.MergeGroups(src, dst)
	if len(b.Groups) != before-1 {
		t.Errorf("groups after merge = %d", len(b.Groups))
	}
	if b.Group(dataset.JoinKey([]string{"DOTH"})) != nil {
		t.Error("source group still addressable")
	}
	if len(dst.Pieces) != srcPieces+dstPieces {
		t.Errorf("merged pieces = %d", len(dst.Pieces))
	}
}

func TestMergeGroupsCombinesIdenticalPieces(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("y", "1")
	rs := rules.MustParseStrings("FD: A -> B")
	ix, _ := Build(tb, rs)
	b := ix.Blocks[0]
	src := b.Group(dataset.JoinKey([]string{"y"}))
	dst := b.Group(dataset.JoinKey([]string{"x"}))
	b.MergeGroups(src, dst)
	// Pieces differ ({x,1} vs {y,1}), so both survive.
	if len(dst.Pieces) != 2 {
		t.Errorf("pieces = %d, want 2", len(dst.Pieces))
	}
	// Merging a group with an identical-valued piece accumulates TupleIDs.
	tb2 := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb2.MustAppend("x", "1")
	ix2, _ := Build(tb2, rs)
	b2 := ix2.Blocks[0]
	g := b2.Groups[0]
	dup := NewPiece(rs[0], ix2.Dict(), []string{"x"}, []string{"1"})
	dup.TupleIDs = []int{9}
	clone := &Group{Key: "other", Pieces: []*Piece{dup}}
	b2.Groups = append(b2.Groups, clone)
	b2.MergeGroups(clone, g)
	if len(g.Pieces) != 1 || g.Pieces[0].Count() != 2 {
		t.Errorf("identical pieces should merge: %v", g.Pieces)
	}
}

func TestRemoveGroupMissing(t *testing.T) {
	ix, _ := Build(sampleTable(t), sampleRules(t))
	b := ix.Blocks[0]
	n := len(b.Groups)
	b.RemoveGroup("not-there")
	if len(b.Groups) != n {
		t.Error("RemoveGroup of missing key changed the block")
	}
}

func TestAssignments(t *testing.T) {
	tb := sampleTable(t)
	ix, _ := Build(tb, sampleRules(t))
	as := ix.Assignments()
	if len(as) != 3 {
		t.Fatalf("assignment maps = %d", len(as))
	}
	// t2 (ELIZA DOTHAN) is in the CFD block; t0 is not.
	if as[2][2] == nil {
		t.Error("t2 missing from CFD block assignment")
	}
	if as[2][0] != nil {
		t.Error("t0 wrongly assigned in CFD block")
	}
	// Every assignment's group must actually contain the tuple.
	for bi, m := range as {
		for id, g := range m {
			if got := ix.Blocks[bi].TupleGroup(id); got != g {
				t.Errorf("block %d tuple %d: TupleGroup mismatch", bi, id)
			}
		}
	}
}

func TestIndexTableAccessor(t *testing.T) {
	tb := sampleTable(t)
	ix, _ := Build(tb, sampleRules(t))
	if ix.Table() != tb {
		t.Error("Table accessor")
	}
}

// TestPieceSummariesRoundTrip: summaries report every piece's identity,
// support and weight, and ApplyPieceWeights writes matching weights back
// while leaving unmatched pieces alone.
func TestPieceSummariesRoundTrip(t *testing.T) {
	tb := sampleTable(t)
	ix, _ := Build(tb, sampleRules(t))
	var want int
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for pi, p := range g.Pieces {
				p.Weight = float64(pi + 1)
				want++
			}
		}
	}
	sums := ix.PieceSummaries()
	if len(sums) != want {
		t.Fatalf("summaries = %d, want %d", len(sums), want)
	}
	seen := make(map[string]bool)
	for _, s := range sums {
		if s.Count < 1 || s.RuleID == "" || s.Key == "" {
			t.Errorf("bad summary %+v", s)
		}
		k := s.RuleID + "|" + s.Key
		if seen[k] {
			t.Errorf("duplicate summary identity %s", k)
		}
		seen[k] = true
	}

	// Overwrite one piece's weight via a summary; everything else keeps its
	// weight, including pieces named by no summary.
	target := sums[0]
	target.Weight = 42
	ix.ApplyPieceWeights([]PieceSummary{target, {RuleID: "nope", Key: "nope", Weight: 7}})
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				got := p.Weight
				if b.Rule.ID == target.RuleID && p.Key() == target.Key {
					if got != 42 {
						t.Errorf("target piece weight = %v, want 42", got)
					}
				} else if got == 42 || got == 7 {
					t.Errorf("unmatched piece %s/%s weight overwritten to %v", b.Rule.ID, p.Key(), got)
				}
			}
		}
	}
	ix.ApplyPieceWeights(nil) // no-op
}
