package index

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/plan"
)

// TestIteratorMatchesBuild: draining a BlockIterator yields byte-for-byte
// the index BuildConfigured produces, planned and fixed-order alike.
func TestIteratorMatchesBuild(t *testing.T) {
	rs := plannedRules(t)
	for _, cfg := range []BuildConfig{{}, {FixedOrder: true}} {
		built, err := BuildConfigured(plannedTable(t), rs, cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		it, err := NewBlockIterator(plannedTable(t), rs, cfg)
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		if it.Len() != len(rs) {
			t.Fatalf("Len = %d, want %d", it.Len(), len(rs))
		}
		n := 0
		for {
			bi, b, ok := it.Next()
			if !ok {
				break
			}
			if bi != n {
				t.Fatalf("block index %d out of order (want %d)", bi, n)
			}
			if b.Rule.ID != rs[n].ID {
				t.Fatalf("block %d rule %s, want %s", bi, b.Rule.ID, rs[n].ID)
			}
			n++
		}
		if n != len(rs) {
			t.Fatalf("iterator yielded %d blocks, want %d", n, len(rs))
		}
		if _, _, ok := it.Next(); ok {
			t.Fatal("Next after exhaustion must report done")
		}
		if di, db := dumpIndex(it.Index()), dumpIndex(built); di != db {
			t.Errorf("iterated index differs from built (FixedOrder=%v):\n--- built ---\n%s--- iterated ---\n%s",
				cfg.FixedOrder, db, di)
		}
	}
}

// TestIteratorReleasesPostings: once no remaining rule scans a column via
// postings, its list is dropped — the pushdown scan state shrinks as blocks
// are yielded instead of persisting until the last rule.
func TestIteratorReleasesPostings(t *testing.T) {
	rs := plannedRules(t)
	it, err := NewBlockIterator(plannedTable(t), rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := it.Index().Plan()
	if p == nil {
		t.Fatal("planned iterator must carry a plan")
	}
	// plannedRules plan: rule 0 pivot-joins, rule 1 posting-unions, rule 2
	// full-scans — so after rule 1 every posting list must be gone.
	if p.Rules[0].Scan != plan.PivotJoin || p.Rules[1].Scan != plan.PostingUnion {
		t.Skipf("plan shapes changed (%v, %v); release assertion not applicable",
			p.Rules[0].Scan, p.Rules[1].Scan)
	}
	it.Next() // rule 0: builds + releases the pivot column
	for pos, c := range it.post.cols {
		if c != nil && it.colUses[pos] <= 0 {
			t.Errorf("column %d postings retained with no remaining uses", pos)
		}
	}
	it.Next() // rule 1: releases the constant columns
	for pos, c := range it.post.cols {
		if c != nil {
			t.Errorf("column %d postings retained after the last postings-scanning rule", pos)
		}
	}
	it.Next()
	if _, _, ok := it.Next(); ok {
		t.Fatal("iterator should be exhausted")
	}
}

// TestIteratorAdoptsEncoded: a pre-encoded companion (the streaming ingest
// path) is adopted verbatim — same dictionary, same rows — and a misaligned
// one is rejected.
func TestIteratorAdoptsEncoded(t *testing.T) {
	rs := plannedRules(t)
	tb := plannedTable(t)
	enc := dataset.Encode(tb, nil)
	ix, err := BuildConfigured(tb, rs, BuildConfig{Encoded: enc})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Encoded() != enc || ix.Dict() != enc.Dict {
		t.Fatal("index must adopt the supplied encoding")
	}
	fresh, err := BuildConfigured(tb, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if da, db := dumpIndex(ix), dumpIndex(fresh); da != db {
		t.Errorf("pre-encoded build differs from fresh build:\n%s\nvs\n%s", da, db)
	}

	short := &dataset.Encoded{Dict: enc.Dict, Rows: enc.Rows[:len(enc.Rows)-1]}
	if _, err := BuildConfigured(tb, rs, BuildConfig{Encoded: short}); err == nil {
		t.Fatal("misaligned encoding must be rejected")
	}
}
