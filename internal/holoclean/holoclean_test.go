package holoclean

import (
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

func fdTable(t *testing.T) (*dataset.Table, []*rules.Rule) {
	t.Helper()
	tb := dataset.NewTable(dataset.MustSchema("Zip", "City"))
	for i := 0; i < 9; i++ {
		tb.MustAppend("10001", "NYC")
	}
	tb.MustAppend("10001", "BOS") // the noisy cell
	return tb, rules.MustParseStrings("FD: Zip -> City")
}

func TestRepairSimpleFDViolation(t *testing.T) {
	tb, rs := fdTable(t)
	noisy := []errgen.Cell{{TupleID: 9, Attr: "City"}}
	res, err := Repair(tb, rs, noisy, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Repaired.Cell(res.Repaired.Tuples[9], "City"); got != "NYC" {
		t.Errorf("repaired City = %q, want NYC", got)
	}
	if res.CellsRepaired != 1 {
		t.Errorf("CellsRepaired = %d", res.CellsRepaired)
	}
	if res.CandidatesScored == 0 {
		t.Error("no candidates scored")
	}
}

func TestRepairOnlyTouchesNoisyCells(t *testing.T) {
	tb, rs := fdTable(t)
	noisy := []errgen.Cell{{TupleID: 9, Attr: "City"}}
	res, err := Repair(tb, rs, noisy, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if res.Repaired.Tuples[i].Values[0] != "10001" || res.Repaired.Tuples[i].Values[1] != "NYC" {
			t.Errorf("clean tuple %d modified: %v", i, res.Repaired.Tuples[i].Values)
		}
	}
}

func TestRepairNoNoisyCellsIsNoop(t *testing.T) {
	tb, rs := fdTable(t)
	res, err := Repair(tb, rs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Repaired.Diff(tb); len(d) != 0 {
		t.Error("no-oracle run changed data")
	}
	if res.CellsRepaired != 0 {
		t.Errorf("CellsRepaired = %d", res.CellsRepaired)
	}
}

func TestRepairValidation(t *testing.T) {
	tb, rs := fdTable(t)
	if _, err := Repair(tb, rs, []errgen.Cell{{TupleID: 0, Attr: "Nope"}}, Options{}); err == nil {
		t.Error("unknown noisy attribute should fail")
	}
	bad := rules.MustParseStrings("FD: Zip -> Missing")
	if _, err := Repair(tb, bad, nil, Options{}); err == nil {
		t.Error("rule referencing missing attribute should fail")
	}
}

func TestTypoValueNotACandidate(t *testing.T) {
	// The typo'd observed value never occurs in the clean part, so the
	// model is forced to repair it (§7.2 typo-sensitivity mechanism).
	tb := dataset.NewTable(dataset.MustSchema("Zip", "City"))
	for i := 0; i < 9; i++ {
		tb.MustAppend("10001", "NYC")
	}
	tb.MustAppend("10001", "NYCX")
	rs := rules.MustParseStrings("FD: Zip -> City")
	noisy := map[errgen.Cell]bool{{TupleID: 9, Attr: "City"}: true}
	m := buildModel(tb, rs, noisy)
	cands := m.candidates(tb.Tuples[9], "City", 5)
	for _, v := range cands {
		if v == "NYCX" {
			t.Error("typo value should not be a candidate")
		}
	}
}

func TestReplacementValueIsACandidate(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("Zip", "City"))
	for i := 0; i < 5; i++ {
		tb.MustAppend("10001", "NYC")
	}
	for i := 0; i < 5; i++ {
		tb.MustAppend("02101", "BOS")
	}
	tb.MustAppend("10001", "BOS") // replacement-style noise: legit value
	rs := rules.MustParseStrings("FD: Zip -> City")
	noisy := map[errgen.Cell]bool{{TupleID: 10, Attr: "City"}: true}
	m := buildModel(tb, rs, noisy)
	cands := m.candidates(tb.Tuples[10], "City", 5)
	found := false
	for _, v := range cands {
		if v == "BOS" {
			found = true
		}
	}
	if !found {
		t.Error("legit observed value should be a candidate")
	}
}

func TestCleanPartExcludesNoisyStatistics(t *testing.T) {
	tb, rs := fdTable(t)
	noisy := map[errgen.Cell]bool{{TupleID: 9, Attr: "City"}: true}
	m := buildModel(tb, rs, noisy)
	if m.cleanFreq["City"]["BOS"] != 0 {
		t.Error("noisy cell leaked into clean frequency stats")
	}
	if m.cleanFreq["City"]["NYC"] != 9 {
		t.Errorf("NYC freq = %d", m.cleanFreq["City"]["NYC"])
	}
}

func TestCFDViolationFeature(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("Make", "Type", "Doors"))
	for i := 0; i < 6; i++ {
		tb.MustAppend("acura", "SUV", "4")
	}
	tb.MustAppend("acura", "SUV", "2")
	rs := rules.MustParseStrings("CFD: Make=acura, Type -> Doors")
	noisy := map[errgen.Cell]bool{{TupleID: 6, Attr: "Doors"}: true}
	m := buildModel(tb, rs, noisy)
	f4 := m.features(tb.Tuples[6], "Doors", "4")
	f2 := m.features(tb.Tuples[6], "Doors", "2")
	if f4[fCooccur] <= f2[fCooccur] {
		t.Errorf("co-occurrence should favour 4: %v vs %v", f4[fCooccur], f2[fCooccur])
	}
}

func TestDeterministicRepair(t *testing.T) {
	tb, rs := fdTable(t)
	noisy := []errgen.Cell{{TupleID: 9, Attr: "City"}}
	a, _ := Repair(tb, rs, noisy, Options{Seed: 5})
	b, _ := Repair(tb, rs, noisy, Options{Seed: 5})
	if d := a.Repaired.Diff(b.Repaired); len(d) != 0 {
		t.Error("same-seed repairs differ")
	}
}
