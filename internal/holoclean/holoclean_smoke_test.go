package holoclean

import (
	"testing"

	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
)

func TestHoloCleanSmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func() (interface{}, error)
	}{} {
		_ = tc
	}
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 120, Measures: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(inj.Dirty, rs, inj.NoisyCells(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
	t.Logf("HoloClean HAI 5%%: P=%.3f R=%.3f F1=%.3f (repaired=%d scored=%d)", q.Precision, q.Recall, q.F1, res.CellsRepaired, res.CandidatesScored)

	truthC, rsC, _ := datagen.CAR(datagen.CARConfig{Rows: 2500, Seed: 3})
	injC, _ := errgen.Inject(truthC, rsC, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 5})
	resC, err := Repair(injC.Dirty, rsC, injC.NoisyCells(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qc := eval.RepairQuality(truthC, injC.Dirty, resC.Repaired)
	t.Logf("HoloClean CAR 5%%: P=%.3f R=%.3f F1=%.3f", qc.Precision, qc.Recall, qc.F1)

	// All-typo CAR: the clean part never contains typo'd values, so the
	// model should do notably worse (Fig. 7a).
	injT, _ := errgen.Inject(truthC, rsC, errgen.Config{Rate: 0.05, ReplacementRatio: 0, Seed: 5})
	resT, _ := Repair(injT.Dirty, rsC, injT.NoisyCells(), Options{Seed: 1})
	qt := eval.RepairQuality(truthC, injT.Dirty, resT.Repaired)
	t.Logf("HoloClean CAR all-typos: F1=%.3f", qt.F1)
}
