// Package holoclean reimplements the architecture-level behaviour of
// HoloClean (Rekatsinas et al., PVLDB 2017), the state-of-the-art baseline
// the paper compares against (§7.2): a probabilistic repair engine that
//
//   - receives the set of noisy cells from an external detector (the paper
//     grants it a perfect detector, and so do we);
//   - splits the dataset into a clean part and a noisy part;
//   - trains a log-linear model on the clean part only, over repair signals
//     derived from integrity constraints (co-occurrence with rule reason
//     values), value frequency, and minimality;
//   - infers every noisy cell independently by scoring candidate repairs
//     and taking the argmax.
//
// This reproduces the properties the paper's comparison leans on: HoloClean
// repairs one attribute value at a time (slower than MLNClean's γ-at-a-time,
// §7.2), learns from the clean partition only (hence its typo sensitivity on
// sparse data, Fig. 7), and degrades as the clean/noisy statistical gap
// grows with the error rate (Fig. 6).
package holoclean

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

// Options configures the baseline.
type Options struct {
	// TopK bounds the frequency-based candidate set per cell (default 12).
	TopK int
	// Epochs is the number of SGD passes over the clean training cells
	// (default 3).
	Epochs int
	// LearningRate is the SGD step size (default 0.1).
	LearningRate float64
	// TrainSample caps the number of clean training cells per attribute
	// (default 2000) to keep training time proportional to data size.
	TrainSample int
	// Seed makes training-sample selection deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.TopK <= 0 {
		o.TopK = 12
	}
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.TrainSample <= 0 {
		o.TrainSample = 2000
	}
	return o
}

// Result is the baseline's output.
type Result struct {
	// Repaired is the table with noisy cells replaced by the model's argmax
	// candidates (same tuple IDs as the input).
	Repaired *dataset.Table
	// CellsRepaired counts noisy cells whose value changed.
	CellsRepaired int
	// CandidatesScored counts (cell, candidate) pairs evaluated during
	// inference; HoloClean's per-value cleaning unit makes this its cost
	// driver.
	CandidatesScored int
}

// featureCount is the number of signals in the log-linear model. The
// signals mirror HoloClean's: constraint-derived co-occurrence, value
// frequency, and constraint violations, all harvested from the clean
// partition. (No minimality feature: trained on clean cells it degenerates
// into an always-keep-the-observed-value predictor, because the observed
// value is the training label.)
const featureCount = 3

const (
	fCooccur   = iota // fraction of rule-mates voting for the candidate
	fFrequency        // log-frequency of the candidate in the clean part
	fViolation        // constraint violations introduced by the candidate
)

// Repair runs the baseline on the dirty table. noisy lists the cells the
// (perfect) detector flagged; rules supply the repair signals.
func Repair(dirty *dataset.Table, rs []*rules.Rule, noisy []errgen.Cell, opts Options) (*Result, error) {
	o := opts.withDefaults()
	for _, r := range rs {
		if err := r.Validate(dirty.Schema); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	repaired := dirty.Clone()

	noisySet := make(map[errgen.Cell]bool, len(noisy))
	noisyAttrs := make(map[string]bool)
	for _, c := range noisy {
		if !dirty.Schema.Has(c.Attr) {
			return nil, fmt.Errorf("holoclean: noisy cell references unknown attribute %q", c.Attr)
		}
		noisySet[c] = true
		noisyAttrs[c.Attr] = true
	}

	m := buildModel(dirty, rs, noisySet)

	res := &Result{Repaired: repaired}
	if len(noisy) == 0 {
		return res, nil
	}

	// Train one weight vector per noisy attribute on clean cells.
	weights := make(map[string][]float64, len(noisyAttrs))
	for attr := range noisyAttrs {
		weights[attr] = m.train(attr, o, rng)
	}

	// Infer each noisy cell independently (HoloClean's per-value unit).
	for _, c := range noisy {
		t := repaired.ByID(c.TupleID)
		if t == nil {
			continue
		}
		best, scored := m.infer(t, c.Attr, weights[c.Attr], o)
		res.CandidatesScored += scored
		if best != "" && best != repaired.Cell(t, c.Attr) {
			repaired.SetCell(t, c.Attr, best)
			res.CellsRepaired++
		}
	}
	return res, nil
}

// model holds the statistics harvested from the clean partition.
type model struct {
	dirty *dataset.Table
	rules []*rules.Rule
	noisy map[errgen.Cell]bool
	// cleanFreq[attr][value] counts value occurrences in clean cells.
	cleanFreq map[string]map[string]int
	// cooccur[attr][reasonCtx][value] counts, per rule, how often a clean
	// tuple with the given reason-context carries the value; reasonCtx is
	// ruleID + reason values.
	cooccur map[string]map[string]map[string]int
	// topValues[attr] lists the attribute's most frequent clean values.
	topValues map[string][]string
	// ruleOf[attr] lists rules whose result part contains attr.
	ruleOf map[string][]*rules.Rule
	// reasonCols caches each rule's reason-attribute column indices so
	// context keys build straight from tuple storage, with no per-call
	// projection slice or schema lookups.
	reasonCols map[*rules.Rule][]int
}

// ctxKey renders the (rule, reason values) context identity for tuple t —
// the key the co-occurrence statistics are bucketed under. Layout matches
// ruleID + "\x1f" + JoinKey(reason projection), built in one pass.
func (m *model) ctxKey(r *rules.Rule, t *dataset.Tuple) string {
	cols := m.reasonCols[r]
	n := len(r.ID) + len(cols)
	for _, j := range cols {
		n += len(t.Values[j])
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(r.ID)
	b.WriteByte('\x1f')
	for i, j := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(t.Values[j])
	}
	return b.String()
}

func buildModel(dirty *dataset.Table, rs []*rules.Rule, noisy map[errgen.Cell]bool) *model {
	m := &model{
		dirty:      dirty,
		rules:      rs,
		noisy:      noisy,
		cleanFreq:  make(map[string]map[string]int),
		cooccur:    make(map[string]map[string]map[string]int),
		topValues:  make(map[string][]string),
		ruleOf:     make(map[string][]*rules.Rule),
		reasonCols: make(map[*rules.Rule][]int),
	}
	for _, r := range rs {
		for _, a := range r.ResultAttrs() {
			m.ruleOf[a] = append(m.ruleOf[a], r)
		}
		cols := make([]int, 0, len(r.Reason))
		for _, a := range r.ReasonAttrs() {
			cols = append(cols, dirty.Schema.MustIndex(a))
		}
		m.reasonCols[r] = cols
	}
	for _, t := range dirty.Tuples {
		for j, v := range t.Values {
			attr := dirty.Schema.Attr(j)
			if noisy[errgen.Cell{TupleID: t.ID, Attr: attr}] {
				continue // the noisy part contributes no statistics
			}
			freq := m.cleanFreq[attr]
			if freq == nil {
				freq = make(map[string]int)
				m.cleanFreq[attr] = freq
			}
			freq[v]++
		}
		// Co-occurrence statistics per rule, from tuples whose relevant
		// cells are all clean.
		for _, r := range m.rules {
			if !r.AppliesTo(dirty, t) {
				continue
			}
			if m.anyNoisy(t, r.ReasonAttrs()) {
				continue
			}
			ctxKey := m.ctxKey(r, t)
			for _, a := range r.ResultAttrs() {
				if m.noisy[errgen.Cell{TupleID: t.ID, Attr: a}] {
					continue
				}
				byCtx := m.cooccur[a]
				if byCtx == nil {
					byCtx = make(map[string]map[string]int)
					m.cooccur[a] = byCtx
				}
				votes := byCtx[ctxKey]
				if votes == nil {
					votes = make(map[string]int)
					byCtx[ctxKey] = votes
				}
				votes[dirty.Cell(t, a)]++
			}
		}
	}
	for attr, freq := range m.cleanFreq {
		type vc struct {
			v string
			c int
		}
		all := make([]vc, 0, len(freq))
		for v, c := range freq {
			all = append(all, vc{v, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].v < all[j].v
		})
		vals := make([]string, len(all))
		for i, x := range all {
			vals[i] = x.v
		}
		m.topValues[attr] = vals
	}
	return m
}

func (m *model) anyNoisy(t *dataset.Tuple, attrs []string) bool {
	for _, a := range attrs {
		if m.noisy[errgen.Cell{TupleID: t.ID, Attr: a}] {
			return true
		}
	}
	return false
}

// candidates returns the repair candidates for tuple t's attr cell: values
// co-occurring with the tuple's rule contexts, the attribute's top-K
// frequent clean values, and the observed value itself.
func (m *model) candidates(t *dataset.Tuple, attr string, topK int) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// Candidates are drawn from the clean part's domain. The observed value
	// is only a candidate when it is itself a legal domain value: a typo'd
	// value never appears in the clean part, so the model is forced to
	// repair it — the root of HoloClean's typo sensitivity on sparse data
	// (§7.2, Fig. 7).
	if observed := m.dirty.Cell(t, attr); m.cleanFreq[attr][observed] > 0 {
		add(observed)
	}
	for _, r := range m.ruleOf[attr] {
		if !r.AppliesTo(m.dirty, t) {
			continue
		}
		votes := m.cooccur[attr][m.ctxKey(r, t)]
		vals := make([]string, 0, len(votes))
		for v := range votes {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			add(v)
		}
	}
	for i, v := range m.topValues[attr] {
		if i >= topK {
			break
		}
		add(v)
	}
	return out
}

// features computes the signal vector for assigning candidate v to (t, attr).
func (m *model) features(t *dataset.Tuple, attr, v string) [featureCount]float64 {
	var f [featureCount]float64

	// Co-occurrence: fraction of the tuple's rule contexts whose clean
	// votes favour v.
	nCtx, votesFor := 0, 0.0
	for _, r := range m.ruleOf[attr] {
		if !r.AppliesTo(m.dirty, t) {
			continue
		}
		votes := m.cooccur[attr][m.ctxKey(r, t)]
		if len(votes) == 0 {
			continue
		}
		nCtx++
		total := 0
		for _, c := range votes {
			total += c
		}
		votesFor += float64(votes[v]) / float64(total)
	}
	if nCtx > 0 {
		f[fCooccur] = votesFor / float64(nCtx)
	}

	// Frequency prior (log-scaled, normalized by the attribute's max).
	freq := m.cleanFreq[attr]
	maxFreq := 1
	if vals := m.topValues[attr]; len(vals) > 0 {
		maxFreq = freq[vals[0]]
	}
	if c := freq[v]; c > 0 && maxFreq > 0 {
		f[fFrequency] = math.Log1p(float64(c)) / math.Log1p(float64(maxFreq))
	}

	// Constraint violations: CFD constant patterns broken by v.
	viol := 0.0
	for _, r := range m.ruleOf[attr] {
		if r.Kind != rules.CFD {
			continue
		}
		matchesReason := true
		for _, p := range r.Reason {
			if p.Const != "" && m.dirty.Cell(t, p.Attr) != p.Const {
				matchesReason = false
				break
			}
		}
		if !matchesReason {
			continue
		}
		for _, p := range r.Result {
			if p.Attr == attr && p.Const != "" && v != p.Const {
				viol++
			}
		}
	}
	f[fViolation] = -viol
	return f
}

// train fits the attribute's weight vector by SGD on clean cells: each
// clean cell is a training example whose label is its observed value among
// its candidate set (softmax cross-entropy).
func (m *model) train(attr string, o Options, rng *rand.Rand) []float64 {
	w := make([]float64, featureCount)
	w[fCooccur], w[fFrequency] = 1, 0.5 // warm start speeds convergence

	var examples []*dataset.Tuple
	for _, t := range m.dirty.Tuples {
		if !m.noisy[errgen.Cell{TupleID: t.ID, Attr: attr}] {
			examples = append(examples, t)
		}
	}
	if len(examples) == 0 {
		return w
	}
	if len(examples) > o.TrainSample {
		idx := rng.Perm(len(examples))[:o.TrainSample]
		sort.Ints(idx)
		sampled := make([]*dataset.Tuple, len(idx))
		for i, k := range idx {
			sampled[i] = examples[k]
		}
		examples = sampled
	}

	for epoch := 0; epoch < o.Epochs; epoch++ {
		for _, t := range examples {
			observed := m.dirty.Cell(t, attr)
			cands := m.candidates(t, attr, o.TopK)
			if len(cands) < 2 {
				continue
			}
			feats := make([][featureCount]float64, len(cands))
			scores := make([]float64, len(cands))
			labelIdx := -1
			maxScore := math.Inf(-1)
			for i, v := range cands {
				feats[i] = m.features(t, attr, v)
				s := 0.0
				for k := 0; k < featureCount; k++ {
					s += w[k] * feats[i][k]
				}
				scores[i] = s
				if s > maxScore {
					maxScore = s
				}
				if v == observed {
					labelIdx = i
				}
			}
			if labelIdx < 0 {
				continue
			}
			var z float64
			for i := range scores {
				scores[i] = math.Exp(scores[i] - maxScore)
				z += scores[i]
			}
			for i := range scores {
				p := scores[i] / z
				g := -p
				if i == labelIdx {
					g += 1
				}
				for k := 0; k < featureCount; k++ {
					w[k] += o.LearningRate * g * feats[i][k]
				}
			}
		}
	}
	return w
}

// infer scores the candidates of a noisy cell and returns the argmax plus
// the number of candidates evaluated.
func (m *model) infer(t *dataset.Tuple, attr string, w []float64, o Options) (string, int) {
	observed := m.dirty.Cell(t, attr)
	cands := m.candidates(t, attr, o.TopK)
	best, bestScore := observed, math.Inf(-1)
	for _, v := range cands {
		feats := m.features(t, attr, v)
		s := 0.0
		for k := 0; k < featureCount; k++ {
			s += w[k] * feats[k]
		}
		if s > bestScore || (s == bestScore && v < best) {
			best, bestScore = v, s
		}
	}
	return best, len(cands)
}
