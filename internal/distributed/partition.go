// Package distributed implements the Spark variant of MLNClean (§6) as a
// concurrent worker-pool executor: the heap-based balanced data partitioner
// of Algorithm 3 (plus a streaming relaxation for batched ingest),
// per-worker stand-alone cleaning on dedicated goroutines, the cross-worker
// weight adjustment of Eq. 6 as a reduce over worker-emitted piece
// summaries, and a global gather step that resolves conflicts and removes
// duplicates the same way the stand-alone pipeline does. All
// coordinator↔worker traffic crosses a pluggable Transport whose messages
// are plain serializable data, so an RPC transport can replace the
// in-process one without touching the pipeline.
//
// Substitution note (see DESIGN.md): the paper deploys on an 11-node Spark
// cluster; here each "worker" is a goroutine running the stand-alone
// pipeline over its partition. Reported cluster time uses the ideal-cluster
// model max(worker times) + partition + gather, which approximates the
// scaling shape of Fig. 15 / Table 6 when the host has at least k free
// cores (see Result.ClusterTime); Result.WallTime is the measured
// concurrent counterpart.
package distributed

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
)

// partEntry is one tuple in a partition's max-heap, keyed by the distance
// to the partition centroid.
type partEntry struct {
	tuple *dataset.Tuple
	dist  float64
}

// maxHeap orders entries by descending distance (the top is the tuple
// farthest from the centroid, the eviction candidate of Alg. 3).
type maxHeap []partEntry

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(partEntry)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Partition splits the table into k balanced parts using Algorithm 3:
// random centroids, capacity s = ⌈|T|/k⌉ per part, max-heap eviction when a
// closer tuple arrives at a full part. The tuple-to-centroid distance is
// the attribute-wise metric distance. Deterministic given rng.
func Partition(tb *dataset.Table, k int, metric distance.Metric, rng *rand.Rand) ([]*dataset.Table, error) {
	parts, _, _, err := PartitionTimed(tb, k, metric, rng)
	return parts, err
}

// PartitionTimed is Partition, additionally reporting the two phase
// durations of the algorithm: the tuple×centroid distance computation
// (embarrassingly parallel — the map side on a real cluster) and the
// sequential heap assignment (driver side). The distributed cluster-time
// model divides the former by the worker count.
func PartitionTimed(tb *dataset.Table, k int, metric distance.Metric, rng *rand.Rand) ([]*dataset.Table, time.Duration, time.Duration, error) {
	if k <= 0 {
		return nil, 0, 0, fmt.Errorf("distributed: need k ≥ 1 parts, got %d", k)
	}
	if tb.Len() == 0 {
		return nil, 0, 0, fmt.Errorf("distributed: empty table")
	}
	if k > tb.Len() {
		k = tb.Len()
	}
	s := (tb.Len() + k - 1) / k // ⌈|T|/k⌉

	// Random distinct centroids.
	perm := rng.Perm(tb.Len())
	centroidIdx := make(map[int]int, k) // tuple position → part
	centroids := make([]*dataset.Tuple, k)
	heaps := make([]maxHeap, k)
	for i := 0; i < k; i++ {
		centroids[i] = tb.Tuples[perm[i]]
		centroidIdx[perm[i]] = i
		heaps[i] = maxHeap{{tuple: tb.Tuples[perm[i]], dist: 0}}
	}

	// Phase 1: the |T|×k distance matrix (map side).
	distStart := time.Now()
	matrix := make([][]float64, tb.Len())
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	chunk := (tb.Len() + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < tb.Len(); lo += chunk {
		hi := lo + chunk
		if hi > tb.Len() {
			hi = tb.Len()
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for pos := lo; pos < hi; pos++ {
				row := make([]float64, k)
				for p := 0; p < k; p++ {
					row[p] = distance.Values(metric, tb.Tuples[pos].Values, centroids[p].Values)
				}
				matrix[pos] = row
			}
		}(lo, hi)
	}
	wg.Wait()
	distTime := time.Since(distStart)

	// Phase 2: the sequential heap assignment (driver side).
	heapStart := time.Now()
	posOf := make(map[*dataset.Tuple]int, tb.Len())
	for pos, t := range tb.Tuples {
		posOf[t] = pos
	}
	dist := func(t *dataset.Tuple, part int) float64 {
		return matrix[posOf[t]][part]
	}
	closestNotFull := func(t *dataset.Tuple) int {
		best, bestD := -1, math.Inf(1)
		for p := 0; p < k; p++ {
			if len(heaps[p]) >= s {
				continue
			}
			if d := dist(t, p); d < bestD {
				best, bestD = p, d
			}
		}
		return best
	}

	for pos, t := range tb.Tuples {
		if _, isCentroid := centroidIdx[pos]; isCentroid {
			continue
		}
		// Globally closest part.
		best, bestD := 0, math.Inf(1)
		for p := 0; p < k; p++ {
			if d := dist(t, p); d < bestD {
				best, bestD = p, d
			}
		}
		if len(heaps[best]) < s {
			heap.Push(&heaps[best], partEntry{tuple: t, dist: bestD})
			continue
		}
		// Part full: evict the farthest resident if the newcomer is closer,
		// re-homing the evictee; otherwise re-home the newcomer (Alg. 3,
		// lines 10–14).
		evict := t
		evictD := bestD
		if top := heaps[best][0]; bestD < top.dist {
			evict = top.tuple
			heap.Pop(&heaps[best])
			heap.Push(&heaps[best], partEntry{tuple: t, dist: bestD})
			evictD = dist(evict, best)
			_ = evictD
		}
		p := closestNotFull(evict)
		if p < 0 {
			// All parts at capacity can only happen when |T| = k·s exactly
			// and every slot is taken; capacity math makes this impossible
			// for the last tuple, but guard anyway.
			return nil, 0, 0, fmt.Errorf("distributed: no non-full part for tuple %d", evict.ID)
		}
		heap.Push(&heaps[p], partEntry{tuple: evict, dist: dist(evict, p)})
	}

	parts := make([]*dataset.Table, k)
	for p := 0; p < k; p++ {
		parts[p] = dataset.NewTable(tb.Schema)
		for _, e := range heaps[p] {
			parts[p].Tuples = append(parts[p].Tuples, e.tuple.Clone())
		}
	}
	return parts, distTime, time.Since(heapStart), nil
}
