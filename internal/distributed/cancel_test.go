package distributed

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
)

// TestExecutorContextCancel: cancelling the executor's context aborts the
// run promptly with the context's error and releases the worker goroutines
// (the run returns instead of hanging on the transport).
func TestExecutorContextCancel(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)

	t.Run("before run", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		ex, err := NewExecutorContext(ctx, dirty.Schema, rs, Options{Workers: 2, Seed: 1, Core: core.Options{Tau: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Submit(dirty); err != nil {
			t.Fatal(err)
		}
		cancel()
		if _, err := ex.Run(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Run after cancel = %v, want context.Canceled", err)
		}
	})

	t.Run("mid run", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := CleanContext(ctx, dirty, rs, Options{Workers: 2, Seed: 1, Core: core.Options{Tau: 2}})
			done <- err
		}()
		// Cancel while the run is (very likely) in flight; whichever side
		// wins the race, the call must return promptly and, if it lost, with
		// the context's error.
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("CleanContext = %v, want nil or context.Canceled", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled run did not return")
		}
	})

	t.Run("abandoned executor", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		ex, err := NewExecutorContext(ctx, dirty.Schema, rs, Options{Workers: 4, Seed: 1, Core: core.Options{Tau: 2}})
		if err != nil {
			t.Fatal(err)
		}
		batch := dataset.NewTable(dirty.Schema)
		for _, tp := range dirty.Tuples[:8] {
			batch.MustAppend(tp.Values...)
		}
		if err := ex.Submit(batch); err != nil {
			t.Fatal(err)
		}
		// The caller walks away: cancellation alone must tear the transport
		// down so the worker goroutines drain without Run or Close.
		cancel()
		if err := ex.Submit(batch); err == nil {
			t.Error("submit after cancel succeeded")
		}
	})
}

// TestCoreCleanContextCancel: the stand-alone pipeline honours a cancelled
// context between stages and blocks.
func TestCoreCleanContextCancel(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.CleanContext(ctx, dirty, rs, core.Options{Tau: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CleanContext with cancelled ctx = %v, want context.Canceled", err)
	}
}
