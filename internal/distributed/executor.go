package distributed

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/obs"
	"mlnclean/internal/plan"
	"mlnclean/internal/rules"
)

// Executor is the concurrent distributed runtime: k logical partitions, each
// leased to a physical worker running the stand-alone stage-I/II pipeline,
// coordinated exclusively through a Transport. The coordinator streams
// partition batches down, reduces the workers' Eq. 6 piece summaries,
// broadcasts the merged weights, and gathers the workers' fusion blocks for
// the global conflict-resolution pass.
//
// Fault tolerance: the coordinator records every shipped batch, so a
// partition is never lost with its worker. While gathering it watches
// per-worker heartbeats (and reply-count gaps, which expose replies lost in
// flight); a partition whose worker goes silent past Options.WorkerTimeout
// is re-leased under a bumped epoch to a fresh worker slot — a respawned
// goroutine for in-process transports, a newly claimable slot for remote
// HTTP workers — and its Init/TupleBatch/StartStageI (and, mid-stage-II,
// MergedWeights) sequence is replayed. Because the per-partition pipeline is
// deterministic and the Eq. 6 merge is a pure reduce over per-partition
// summaries, a recovered run's output is byte-identical to the no-failure
// run; stale-epoch replies from falsely-declared-dead workers are discarded.
//
// Two ingestion paths share the runtime:
//
//   - Clean partitions a whole table with Algorithm 3 (heap-balanced,
//     eviction-based) and ships each part in batches.
//   - Submit streams batches through an online relaxation of Algorithm 3:
//     centroids are drawn from the first k tuples seen, and each tuple goes
//     to the nearest centroid whose partition is under the running capacity
//     ⌈seen/k⌉ — no retrospective eviction, so shipped tuples never move.
type Executor struct {
	ctx    context.Context
	schema *dataset.Schema
	rs     []*rules.Rule
	opts   Options
	k      int
	tr     Transport
	metric distance.Metric
	rng    *rand.Rand

	// gather accumulates every submitted tuple (re-IDed sequentially); the
	// global FSCR fuses from these original dirty values. Partitions are
	// never materialized coordinator-side — batches ship as they arrive.
	// gatherIDs is the dictionary-encoded companion (one ID row per gather
	// tuple): the streaming partitioner computes centroid distances over
	// interned IDs with memoization, and the gather FSCR reuses the same
	// dictionary for the wire pieces.
	gather    *dataset.Table
	gatherIDs [][]uint32
	dict      *intern.Dict
	ev        *distance.Evaluator
	centroids [][]uint32
	loads     []int
	shipped   int // gather tuples already assigned and shipped

	// Fault-tolerance state: one lease per logical partition, the worker
	// bootstrap needed to replay an Init, and the detection budget.
	parts         []*partitionLease
	wtr           Transport // transport locally spawned workers talk through
	spawnLocal    bool
	wopts         core.Options
	attrs         []string
	wireRules     []WireRule
	wireOpts      WireCoreOptions
	hbInterval    time.Duration
	workerTimeout time.Duration
	sendTimeout   time.Duration
	maxRecoveries int
	lost          atomic.Int64 // recoveries so far; also the budget counter

	distTime   time.Duration
	assignTime time.Duration
	createdAt  time.Time

	workerWG sync.WaitGroup
	stop     chan struct{} // closed once the run ends; releases the ctx watcher
	stopOnce sync.Once
	finished bool
	err      error
}

// partitionLease tracks which physical worker slot currently owns a logical
// partition, under which epoch, and everything needed to re-dispatch it:
// the recorded batches, the last sign of life, and how many protocol
// replies the current epoch has delivered. seen records whether the current
// epoch's worker ever showed a sign of life — for remote transports the
// silence clock must not start before a worker has attached at all, or a
// late-starting mlnworker fleet would be declared dead while the original
// slots still hold the only dispatched epochs.
type partitionLease struct {
	slot     int
	epoch    int
	batches  []TupleBatch // recorded shipments, replayed on recovery
	lastSeen time.Time
	seen     bool
	replies  int
}

// noteAlive refreshes the lease's liveness deadline, recording the observed
// gap since the previous sign of life (the distribution a detection-timeout
// choice should be read against).
func (l *partitionLease) noteAlive() {
	now := time.Now()
	if l.seen {
		mHeartbeatGap.ObserveDuration(now.Sub(l.lastSeen))
	}
	l.lastSeen = now
	l.seen = true
}

// NewExecutor starts opts.Workers workers (default 4) for streaming ingest
// via Submit followed by Run. Whole-table runs should use Clean, which adds
// the exact Algorithm 3 partitioning on top of the same runtime.
func NewExecutor(schema *dataset.Schema, rs []*rules.Rule, opts Options) (*Executor, error) {
	return NewExecutorContext(context.Background(), schema, rs, opts)
}

// NewExecutorContext is NewExecutor bound to a context: cancelling ctx tears
// the transport down, unblocking every worker goroutine and failing any
// in-flight Submit/Run, so an abandoned run releases its goroutines without
// an explicit Close.
func NewExecutorContext(ctx context.Context, schema *dataset.Schema, rs []*rules.Rule, opts Options) (*Executor, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	return newExecutor(ctx, schema, rs, opts, opts.Workers)
}

func newExecutor(ctx context.Context, schema *dataset.Schema, rs []*rules.Rule, opts Options, k int) (*Executor, error) {
	if schema == nil {
		return nil, fmt.Errorf("distributed: nil schema")
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("distributed: no rules")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	metric := opts.Core.Metric
	if metric == nil {
		metric = defaultMetric()
	}
	factory := opts.Transport
	if factory == nil {
		factory = NewChanTransport
	}
	dict := opts.Dict
	if dict == nil {
		dict = intern.NewDict()
	}
	if opts.RunID == "" {
		opts.RunID = obs.NewRunID()
	}
	// The run ID rides inside the core options so it reaches workers through
	// WireCoreOptions without a protocol change.
	opts.Core.RunID = opts.RunID
	ex := &Executor{
		ctx:       ctx,
		schema:    schema,
		rs:        rs,
		opts:      opts,
		k:         k,
		tr:        factory(k),
		metric:    metric,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		gather:    dataset.NewTable(schema),
		dict:      dict,
		ev:        distance.NewEvaluator(metric, dict),
		loads:     make([]int, k),
		stop:      make(chan struct{}),
		createdAt: time.Now(),
	}
	ex.hbInterval = opts.HeartbeatInterval
	if ex.hbInterval == 0 {
		ex.hbInterval = defaultHeartbeatInterval
	}
	if ex.hbInterval < 0 {
		ex.hbInterval = 0
	}
	ex.workerTimeout = opts.WorkerTimeout
	if ex.workerTimeout == 0 {
		ex.workerTimeout = defaultWorkerTimeout
		// Without heartbeats a busy worker sends nothing upward mid-stage,
		// so the default silence timeout would declare every long stage a
		// death. Disabling heartbeats therefore disables detection too,
		// unless the caller explicitly chose a timeout (owning the
		// requirement that it exceed the longest stage).
		if ex.hbInterval == 0 {
			ex.workerTimeout = 0
		}
	}
	if ex.workerTimeout < 0 {
		ex.workerTimeout = 0
	}
	ex.sendTimeout = opts.SendTimeout
	if ex.sendTimeout == 0 {
		ex.sendTimeout = defaultSendTimeout
	}
	if ex.sendTimeout < 0 {
		ex.sendTimeout = 0
	}
	ex.maxRecoveries = opts.MaxRecoveries
	if ex.maxRecoveries <= 0 {
		ex.maxRecoveries = 4 + 2*k
	}
	// The watcher propagates cancellation by closing the transport (the only
	// executor operation that is safe from another goroutine); every blocked
	// transport call then fails and the workers drain out.
	go func() {
		select {
		case <-ctx.Done():
			ex.tr.Close()
		case <-ex.stop:
		}
	}()
	ex.wopts = workerCoreOpts(opts.Core, k)
	// A transport may override where its workers run: chan/gob workers talk
	// to the coordinator value directly, the loopback HTTP transport hands
	// out a client bound to its URL, and a remote coordinator returns nil —
	// its workers attach from other processes.
	ex.wtr = Transport(ex.tr)
	ex.spawnLocal = true
	if d, ok := ex.tr.(workerHoster); ok {
		if wt := d.LocalWorkerTransport(); wt != nil {
			ex.wtr = wt
		} else {
			ex.spawnLocal = false
		}
	}
	if ex.spawnLocal {
		for w := 0; w < k; w++ {
			ex.spawnWorker(w)
		}
	}
	ex.attrs = schema.Attrs()
	ex.wireRules = rulesToWire(rs)
	// Out-of-process workers get τ scaled for partition-local group sizes
	// like local ones, but NOT the local CPU-split Parallelism — that was
	// derived from this host's core count, while a remote worker should
	// default to its own.
	ex.wireOpts = coreOptsToWire(workerTauOpts(opts.Core, k))
	ex.parts = make([]*partitionLease, k)
	for p := range ex.parts {
		ex.parts[p] = &partitionLease{slot: p}
		if err := ex.sendLease(p, ex.initFor(p)); err != nil {
			ex.fail(err)
			return nil, ex.err
		}
	}
	return ex, nil
}

// Fault-tolerance defaults: heartbeats are cheap, so the interval is short
// relative to the timeout (a worker must miss many beacons in a row before
// being declared dead); sends get a generous bound that only trips when a
// peer stops draining its inbox entirely.
const (
	defaultHeartbeatInterval = 1 * time.Second
	defaultWorkerTimeout     = 10 * time.Second
	defaultSendTimeout       = 1 * time.Minute
)

// spawnWorker starts a local worker goroutine serving slot w.
func (ex *Executor) spawnWorker(w int) {
	ex.workerWG.Add(1)
	go func() {
		defer ex.workerWG.Done()
		workerMain(ex.ctx, ex.wtr, w, ex.wopts, false)
	}()
}

// initFor builds partition p's bootstrap message under its current lease.
func (ex *Executor) initFor(p int) Init {
	lease := ex.parts[p]
	return Init{
		Worker:      lease.slot,
		Partition:   p,
		Epoch:       lease.epoch,
		HeartbeatNS: int64(ex.hbInterval),
		SchemaAttrs: ex.attrs,
		Rules:       ex.wireRules,
		Opts:        ex.wireOpts,
		HasOpts:     true,
	}
}

// sendLease stamps m with partition p's current (slot, epoch) lease and
// sends it under the executor's send deadline.
func (ex *Executor) sendLease(p int, m Message) error {
	lease := ex.parts[p]
	switch msg := m.(type) {
	case StartStageI:
		msg.Worker, msg.Epoch = lease.slot, lease.epoch
		m = msg
	case MergedWeights:
		msg.Worker, msg.Epoch = lease.slot, lease.epoch
		m = msg
	}
	return ex.tr.ToWorkerDeadline(lease.slot, m, ex.sendTimeout)
}

// WorkersLost reports how many workers the run has declared dead and
// re-dispatched so far. Safe to call concurrently with a run (the serving
// layer polls it while a session cleans).
func (ex *Executor) WorkersLost() int {
	return int(ex.lost.Load())
}

// workerCoreOpts derives the per-worker pipeline options: τ scaled to
// partition-local group sizes, and the block-level parallelism budget split
// across the k concurrent workers so the pool doesn't oversubscribe the
// host.
func workerCoreOpts(o core.Options, workers int) core.Options {
	o = workerTauOpts(o, workers)
	if o.Parallelism <= 0 {
		par := runtime.NumCPU() / workers
		if par < 1 {
			par = 1
		}
		o.Parallelism = par
	}
	return o
}

// Submit streams one batch of dirty tuples into the executor, assigning each
// tuple to a partition online and shipping the assignments immediately.
// Tuples are re-IDed sequentially across batches. Deterministic given the
// seed and the batch sequence.
func (ex *Executor) Submit(batch *dataset.Table) error {
	if ex.err != nil {
		return ex.err
	}
	if err := ex.ctx.Err(); err != nil {
		ex.fail(err)
		return ex.err
	}
	if ex.finished {
		return fmt.Errorf("distributed: executor already ran")
	}
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	if !batch.Schema.Equal(ex.schema) {
		return fmt.Errorf("distributed: batch schema does not match executor schema")
	}
	ex.drainLiveness()
	st := ex.dict.Stats()
	for _, t := range batch.Tuples {
		vals := make([]string, len(t.Values))
		ids := make([]uint32, len(t.Values))
		for i, v := range t.Values {
			ids[i] = ex.dict.Intern(v)
			// The canonical interned string: identical bytes, shared backing,
			// so the gather copy holds one string per distinct value instead
			// of retaining every submitted batch's allocations.
			vals[i] = ex.dict.Value(ids[i])
		}
		// Observe column statistics at ingest so the coordinator can report
		// the plan its workers derive from the same distribution.
		st.ObserveRow(ids)
		ex.gather.Tuples = append(ex.gather.Tuples, &dataset.Tuple{ID: len(ex.gather.Tuples), Values: vals})
		ex.gatherIDs = append(ex.gatherIDs, ids)
	}
	if ex.centroids == nil && ex.gather.Len() < ex.k {
		return nil // keep buffering until k centroid candidates exist
	}
	return ex.assignAndShip()
}

// assignAndShip assigns every not-yet-shipped gather tuple to a partition
// and ships the new assignments, one TupleBatch per worker.
func (ex *Executor) assignAndShip() error {
	if ex.shipped >= ex.gather.Len() {
		return nil
	}
	if ex.centroids == nil {
		// Draw centroids from the tuples seen so far (the streaming analogue
		// of Algorithm 3's random distinct centroids).
		n := ex.gather.Len()
		kk := ex.k
		if kk > n {
			kk = n
		}
		perm := ex.rng.Perm(n)
		ex.centroids = make([][]uint32, ex.k)
		for i := 0; i < kk; i++ {
			ex.centroids[i] = ex.gatherIDs[perm[i]]
		}
		for i := kk; i < ex.k; i++ {
			ex.centroids[i] = ex.centroids[0] // degenerate: fewer tuples than workers
		}
	}
	batches := make([]TupleBatch, ex.k)
	dists := make([]float64, ex.k)
	for ; ex.shipped < ex.gather.Len(); ex.shipped++ {
		t := ex.gather.Tuples[ex.shipped]
		row := ex.gatherIDs[ex.shipped]
		t0 := time.Now()
		for w := 0; w < ex.k; w++ {
			dists[w] = ex.ev.Values(row, ex.centroids[w])
		}
		ex.distTime += time.Since(t0)
		t0 = time.Now()
		// Running capacity ⌈(assigned+1)/k⌉ keeps partitions balanced; at
		// least one worker is always under it.
		capacity := (ex.shipped + ex.k) / ex.k
		best := -1
		for w := 0; w < ex.k; w++ {
			if ex.loads[w] >= capacity {
				continue
			}
			if best == -1 || dists[w] < dists[best] {
				best = w
			}
		}
		ex.loads[best]++
		batches[best].IDs = append(batches[best].IDs, t.ID)
		batches[best].Rows = append(batches[best].Rows, t.Values)
		ex.assignTime += time.Since(t0)
	}
	for p := range batches {
		if len(batches[p].IDs) == 0 {
			continue
		}
		if err := ex.shipBatched(p, batches[p]); err != nil {
			return err
		}
	}
	return nil
}

// shipBatched records partition p's assignment (for recovery replay) and
// sends it in BatchSize chunks. A send deadline expiring here means the
// worker stopped draining its inbox mid-ingest — with detection enabled
// that is a death, and the partition is re-leased and its full recorded
// history (including b, already recorded) replayed onto the fresh slot.
func (ex *Executor) shipBatched(p int, b TupleBatch) error {
	ex.drainLiveness()
	ex.parts[p].batches = append(ex.parts[p].batches, b)
	err := ex.shipChunks(p, b)
	if err == ErrTimeout && ex.workerTimeout > 0 {
		err = ex.recoverPartition(p, phaseIngest, false, nil)
	}
	if err != nil {
		ex.fail(err)
		return ex.err
	}
	return nil
}

// shipChunks sends one recorded batch to partition p's current lease in
// BatchSize chunks, stamped with the lease's slot and epoch.
func (ex *Executor) shipChunks(p int, b TupleBatch) error {
	size := ex.opts.BatchSize
	lease := ex.parts[p]
	for lo := 0; lo < len(b.IDs); lo += size {
		hi := lo + size
		if hi > len(b.IDs) {
			hi = len(b.IDs)
		}
		msg := TupleBatch{Worker: lease.slot, Epoch: lease.epoch, IDs: b.IDs[lo:hi], Rows: b.Rows[lo:hi]}
		t0 := time.Now()
		if err := ex.tr.ToWorkerDeadline(lease.slot, msg, ex.sendTimeout); err != nil {
			return err
		}
		mBatchSendSeconds.ObserveSince(t0)
	}
	return nil
}

// Run completes a streaming ingest: flushes any buffered tuples, drives the
// workers through both stages, and gathers the result.
func (ex *Executor) Run() (*Result, error) {
	if ex.err != nil {
		return nil, ex.err
	}
	if err := ex.ctx.Err(); err != nil {
		ex.fail(err)
		return nil, ex.err
	}
	if ex.finished {
		return nil, fmt.Errorf("distributed: executor already ran")
	}
	if ex.gather.Len() == 0 {
		ex.fail(fmt.Errorf("distributed: empty input table"))
		return nil, ex.err
	}
	if err := ex.assignAndShip(); err != nil {
		return nil, err
	}
	res := &Result{
		Workers:           ex.k,
		PartitionDistTime: ex.distTime,
		PartitionHeapTime: ex.assignTime,
	}
	return ex.finish(ex.gather, res)
}

// fail records the first error and tears the transport down so every worker
// unblocks and exits. A transport error caused by cancellation is reported
// as the context's error.
func (ex *Executor) fail(err error) {
	if ex.err == nil {
		if ctxErr := ex.ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		ex.err = err
	}
	ex.finished = true
	ex.stopOnce.Do(func() { close(ex.stop) })
	ex.tr.Close()
	ex.workerWG.Wait()
}

// Close abandons an executor that will not be Run, releasing its worker
// goroutines. Safe to call after Run (a no-op then).
func (ex *Executor) Close() {
	if ex.finished {
		return
	}
	ex.fail(fmt.Errorf("distributed: executor closed"))
}

// gatherPhase names how far the protocol has progressed for a partition,
// because a recovery must replay exactly up to that point: batches only
// (ingest), batches + StartStageI (stage I), or the full history including
// the merged weights (stage II).
type gatherPhase int

const (
	phaseIngest gatherPhase = iota
	phaseStageI
	phaseStageII
)

// finish drives the two-phase protocol to completion: stage I on every
// worker, the Eq. 6 reduce + broadcast, stage II on every worker, then the
// global gather (FSCR over the original dirty tuples + deduplication).
// Both gather loops detect and recover dead workers.
func (ex *Executor) finish(dirty *dataset.Table, res *Result) (*Result, error) {
	ok := false
	defer func() {
		ex.finished = true
		ex.stopOnce.Do(func() { close(ex.stop) })
		ex.tr.Close()
		ex.workerWG.Wait()
		if !ok && ex.err == nil {
			if ctxErr := ex.ctx.Err(); ctxErr != nil {
				ex.err = ctxErr
			} else {
				ex.err = fmt.Errorf("distributed: run aborted")
			}
		}
	}()

	skipLearn := len(ex.opts.PresetWeights) > 0
	for p := range ex.parts {
		err := ex.sendLease(p, StartStageI{SkipLearn: skipLearn})
		if err == ErrTimeout && ex.workerTimeout > 0 {
			// The worker stopped draining its inbox before the stage even
			// started — a death shipBatched happened not to observe.
			err = ex.recoverPartition(p, phaseStageI, skipLearn, nil)
		}
		if err != nil {
			return nil, ex.runErr(err)
		}
	}
	sums := make([]WeightSummaries, ex.k)
	err := ex.gatherReplies(phaseStageI, skipLearn, nil, func(p int, m Message) (bool, error) {
		ws, isWS := m.(WeightSummaries)
		if !isWS {
			return false, fmt.Errorf("distributed: protocol: expected WeightSummaries, got %T", m)
		}
		sums[p] = ws
		return true, nil
	})
	if err != nil {
		// Prefer the context's error when the run was cancelled: a worker
		// losing the same cancellation race reports it as an opaque string.
		return nil, ex.runErr(err)
	}

	// Eq. 6: reduce the workers' piece summaries to support-weighted mean
	// weights — w(γ) = Σ nᵢ·wᵢ / Σ nᵢ — so sparse local evidence borrows
	// support from the other parts. A pure reduce over shipped summaries:
	// no worker index state is touched from the coordinator. With preset
	// weights (the serving model cache) the workers skipped learning and the
	// cached vector is broadcast verbatim.
	t0 := time.Now()
	var merged []index.PieceSummary
	switch {
	case skipLearn:
		merged = ex.opts.PresetWeights
	case !ex.opts.SkipWeightMerge:
		per := make([][]index.PieceSummary, ex.k)
		for w := range sums {
			per[w] = sums[w].Summaries
		}
		merged = reducePieceWeights(per)
	}
	res.MergedWeights = index.CopySummaries(merged)
	res.GatherTime += time.Since(t0)
	for p := range ex.parts {
		err := ex.sendLease(p, MergedWeights{Merged: merged})
		if err == ErrTimeout && ex.workerTimeout > 0 {
			err = ex.recoverPartition(p, phaseStageII, skipLearn, merged)
		}
		if err != nil {
			return nil, ex.runErr(err)
		}
	}

	frs := make([]FusionResult, ex.k)
	err = ex.gatherReplies(phaseStageII, skipLearn, merged, func(p int, m Message) (bool, error) {
		switch msg := m.(type) {
		case WeightSummaries:
			// A partition recovered mid-stage-II re-runs stage I first; its
			// summaries are progress, not a completion. Keep the re-run's
			// measured stage-I time, though: WorkerTimes must describe the
			// lease that produced the final FusionResult, not the dead
			// worker's partial work (the re-run skipped learning, so its
			// Summaries are empty and nothing downstream reads them).
			sums[p] = msg
			return false, nil
		case FusionResult:
			frs[p] = msg
			return true, nil
		default:
			return false, fmt.Errorf("distributed: protocol: expected FusionResult, got %T", m)
		}
	})
	if err != nil {
		return nil, ex.runErr(err)
	}

	res.WorkerTimes = make([]time.Duration, ex.k)
	res.WorkerStageITimes = make([]time.Duration, ex.k)
	res.WorkerStageIITimes = make([]time.Duration, ex.k)
	res.PartSizes = make([]int, ex.k)
	for w := 0; w < ex.k; w++ {
		res.WorkerStageITimes[w] = time.Duration(sums[w].ElapsedNS)
		res.WorkerStageIITimes[w] = time.Duration(frs[w].ElapsedNS)
		res.WorkerTimes[w] = res.WorkerStageITimes[w] + res.WorkerStageIITimes[w]
		res.PartSizes[w] = frs[w].PartSize
		res.Stats.Add(frs[w].Stats)
		mWorkerStageI.ObserveDuration(res.WorkerStageITimes[w])
		mWorkerStageII.ObserveDuration(res.WorkerStageIITimes[w])
	}
	res.WorkersLost = ex.WorkersLost()
	res.RunID = ex.opts.RunID

	// Gather (§6: "conflicts and duplicates are eliminated in the same way
	// to stand-alone MLNClean"): run a global conflict resolution over the
	// union of all workers' blocks and deduplicate. The global FSCR fuses
	// from the ORIGINAL dirty tuples — the union blocks already carry every
	// worker's stage-I repairs, and fusing from the per-part FSCR outputs
	// would move the observation baseline of the minimality prior, letting
	// compounding double-fusions through. The per-part FSCR outputs remain
	// what each worker would ship alone (and what WorkerTimes measures).
	t0 = time.Now()
	blocks := unionWireBlocks(frs, ex.rs, ex.dict)
	var gatherStats core.Stats
	// The gather rows were interned at Submit; hand them to FSCR instead of
	// re-encoding the whole accumulated dataset on the finish path.
	enc := &dataset.Encoded{Dict: ex.dict, Rows: ex.gatherIDs}
	repaired := core.RunFSCREncoded(dirty, enc, blocks, ex.opts.Core, &gatherStats)
	res.Repaired = repaired
	res.Stats.FSCRCellChanges += gatherStats.FSCRCellChanges
	if ex.opts.Core.KeepDuplicates {
		res.Clean = repaired.Clone()
	} else {
		clean, dups := Dedup(repaired)
		res.Clean = clean
		for _, d := range dups {
			res.Stats.DuplicatesRemoved += len(d) - 1
		}
	}
	if !ex.opts.Core.DisablePlanner {
		// Render the plan the run's statistics imply. The gather dictionary
		// has observed every tuple by now (Submit observes at ingest; the
		// batch path's gather FSCR re-encode observes the full table), so
		// this is the whole-dataset view of the per-partition plans the
		// workers derived.
		for _, c := range plan.New(ex.rs, ex.schema, ex.dict).Choices() {
			res.Plan = append(res.Plan, c.String())
		}
	}
	res.GatherTime += time.Since(t0)
	res.WallTime = time.Since(ex.createdAt)
	ok = true
	mRuns.Inc()
	mRunSeconds.ObserveDuration(time.Since(ex.createdAt))
	mGatherSeconds.ObserveDuration(res.GatherTime)
	return res, nil
}

// gatherReplies collects one completing reply per partition, running the
// failure detector while it waits. handle sees every current-epoch protocol
// reply (heartbeats and stale-epoch replies are consumed here) and reports
// whether its partition completed the phase; a reply carrying a worker
// error aborts the run — worker pipelines are deterministic, so an error
// would only recur on a re-dispatch.
func (ex *Executor) gatherReplies(ph gatherPhase, skipLearn bool, merged []index.PieceSummary, handle func(p int, m Message) (bool, error)) error {
	pending := make([]bool, ex.k)
	n := ex.k
	now := time.Now()
	for p := range ex.parts {
		pending[p] = true
		ex.parts[p].lastSeen = now
	}
	detect := ex.workerTimeout > 0
	tick := ex.detectTick()
	for n > 0 {
		// Scan every iteration, not just on receive timeouts: surviving
		// workers' heartbeats keep the receive loop busy, and a dead
		// partition must not hide behind its peers' liveness.
		if detect {
			if err := ex.scanForDead(ph, skipLearn, merged, pending); err != nil {
				return err
			}
		}
		var m Message
		var err error
		if detect {
			m, err = ex.tr.CoordinatorRecvDeadline(tick)
		} else {
			m, err = ex.tr.CoordinatorRecv()
		}
		if err == ErrTimeout {
			continue
		}
		if err != nil {
			return ex.runErr(err)
		}
		if hb, isHB := m.(Heartbeat); isHB {
			if err := ex.noteHeartbeat(hb, ph, skipLearn, merged, pending); err != nil {
				return err
			}
			continue
		}
		if at, isAt := m.(WorkerAttached); isAt {
			// A remote worker claimed this slot: start its silence clock, so
			// a worker that dies before its first beacon is still detected.
			ex.noteAttached(at.Worker)
			continue
		}
		p, epoch, werr, isReply := replyLease(m)
		if !isReply {
			return fmt.Errorf("distributed: protocol: unexpected %T", m)
		}
		if p < 0 || p >= ex.k || epoch != ex.parts[p].epoch {
			continue // stale epoch: a falsely-declared-dead worker's late reply
		}
		if werr != "" {
			return fmt.Errorf("distributed: worker for partition %d: %s", p, werr)
		}
		lease := ex.parts[p]
		lease.noteAlive()
		lease.replies++
		done, err := handle(p, m)
		if err != nil {
			return err
		}
		if done && pending[p] {
			pending[p] = false
			n--
		}
	}
	return nil
}

// drainLiveness consumes buffered upward liveness traffic (heartbeats,
// attach signals) without blocking. The gather loop is the upward queue's
// only steady consumer, so a long ingest would otherwise saturate it —
// blocking worker beacon goroutines and, on remote transports, the /send
// handlers — right when a mid-ingest recovery may need the queue moving.
// Protocol replies cannot legally arrive before StartStageI; anything
// unexpected is dropped here and the gather loop enforces the protocol.
func (ex *Executor) drainLiveness() {
	for {
		m, err := ex.tr.CoordinatorRecvDeadline(time.Nanosecond)
		if err != nil {
			return // empty (ErrTimeout) or closed — real errors surface later
		}
		switch msg := m.(type) {
		case Heartbeat:
			if msg.Partition >= 0 && msg.Partition < ex.k {
				lease := ex.parts[msg.Partition]
				if msg.Epoch == lease.epoch {
					lease.noteAlive()
				}
			}
		case WorkerAttached:
			ex.noteAttached(msg.Worker)
		}
	}
}

// noteAttached starts the silence clock of the lease held by a
// just-claimed slot.
func (ex *Executor) noteAttached(slot int) {
	for _, lease := range ex.parts {
		if lease.slot == slot && !lease.seen {
			lease.lastSeen = time.Now()
			lease.seen = true
		}
	}
}

// detectTick is the failure detector's poll interval: a fraction of the
// worker timeout, clamped so tiny test timeouts still poll sanely and large
// production ones don't spin.
func (ex *Executor) detectTick() time.Duration {
	tick := ex.workerTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	return tick
}

// noteHeartbeat refreshes a partition's liveness deadline and checks the
// reply-count gap: a worker that has handed more protocol replies to its
// transport than the coordinator has received lost one in flight, and the
// partition is re-dispatched immediately instead of waiting out the full
// silence timeout.
func (ex *Executor) noteHeartbeat(hb Heartbeat, ph gatherPhase, skipLearn bool, merged []index.PieceSummary, pending []bool) error {
	if hb.Partition < 0 || hb.Partition >= ex.k {
		return nil
	}
	lease := ex.parts[hb.Partition]
	if hb.Epoch != lease.epoch {
		return nil
	}
	lease.noteAlive()
	if ex.workerTimeout > 0 && pending[hb.Partition] && hb.Sent > lease.replies {
		return ex.recoverPartition(hb.Partition, ph, skipLearn, merged)
	}
	return nil
}

// scanForDead re-dispatches every pending partition whose worker has been
// silent past the timeout. With remotely attaching workers (nothing spawned
// locally), a lease whose epoch never showed a sign of life is exempt: the
// worker fleet may simply not have attached yet, and re-dispatching would
// strand the only dispatched epoch on the slot a late worker will claim —
// such a run blocks until workers appear, exactly as before the
// fault-tolerance layer.
func (ex *Executor) scanForDead(ph gatherPhase, skipLearn bool, merged []index.PieceSummary, pending []bool) error {
	now := time.Now()
	for p, lease := range ex.parts {
		if !pending[p] || (!lease.seen && !ex.spawnLocal) || now.Sub(lease.lastSeen) <= ex.workerTimeout {
			continue
		}
		if err := ex.recoverPartition(p, ph, skipLearn, merged); err != nil {
			return err
		}
	}
	return nil
}

// recoverPartition re-leases partition p to a fresh worker slot under a
// bumped epoch and replays its protocol history: Init, every recorded
// batch, StartStageI — and, when the failure struck mid-stage-II, the
// merged weights. A stage-II replay skips weight learning: the Eq. 6 merge
// already ran, and every piece of this partition is in the merged vector
// because its original summaries were (unless the run never merged —
// SkipWeightMerge — where the local learning must be reproduced instead).
// The output stays byte-identical to a no-failure run either way.
func (ex *Executor) recoverPartition(p int, ph gatherPhase, skipLearn bool, merged []index.PieceSummary) error {
	if ex.WorkersLost() >= ex.maxRecoveries {
		return fmt.Errorf("distributed: partition %d lost its worker with the recovery budget (%d) spent", p, ex.maxRecoveries)
	}
	slot, err := ex.tr.AddWorker()
	if err != nil {
		return ex.runErr(err)
	}
	ex.lost.Add(1)
	mLeaseReplays.Inc()
	lease := ex.parts[p]
	lease.slot, lease.epoch, lease.replies = slot, lease.epoch+1, 0
	lease.lastSeen, lease.seen = time.Now(), false
	slog.Warn("distributed: worker declared dead, re-leasing partition",
		"run", ex.opts.RunID, "partition", p, "slot", slot, "epoch", lease.epoch,
		"recoveries", ex.WorkersLost(), "budget", ex.maxRecoveries)
	if ex.spawnLocal {
		ex.spawnWorker(slot)
	}
	err = ex.replayPartition(p, ph, skipLearn, merged)
	if errors.Is(err, ErrTimeout) && ex.workerTimeout > 0 {
		// The replacement itself stopped draining mid-replay — another
		// death, which spends more budget on yet another slot (the budget
		// check above bounds the recursion).
		return ex.recoverPartition(p, ph, skipLearn, merged)
	}
	if err != nil {
		return ex.runErr(err)
	}
	// The replay may have blocked long enough (up to SendTimeout waiting
	// for a spare) for the other workers' beacons to pile up unread — the
	// gather loop is the upward queue's consumer and it was here, not
	// there. Give every live lease a fresh window so queued-but-unread
	// liveness is not misread as silence and cascaded into bogus
	// recoveries; a genuinely dead peer just takes one extra timeout to
	// catch.
	now := time.Now()
	for _, l := range ex.parts {
		if l.seen {
			l.lastSeen = now
		}
	}
	return nil
}

// replayPartition re-sends partition p's protocol history to its current
// lease, up to the point phase ph has reached. The replay is bounded by the
// send deadline: a remote recovery slot must be claimed (and drained) by a
// spare within SendTimeout, or the replay fails — blocking indefinitely
// here would stall failure detection for every other partition, so the
// indefinite late-attach grace applies only to never-dispatched epochs.
func (ex *Executor) replayPartition(p int, ph gatherPhase, skipLearn bool, merged []index.PieceSummary) error {
	lease := ex.parts[p]
	slot := lease.slot
	if err := ex.sendLease(p, ex.initFor(p)); err != nil {
		return replayErr(p, slot, err)
	}
	for _, b := range lease.batches {
		if err := ex.shipChunks(p, b); err != nil {
			return replayErr(p, slot, err)
		}
	}
	if ph == phaseIngest {
		return nil // StartStageI has not been reached yet; finish sends it
	}
	replaySkipLearn := skipLearn
	if ph == phaseStageII && !ex.opts.SkipWeightMerge {
		replaySkipLearn = true
	}
	if err := ex.sendLease(p, StartStageI{SkipLearn: replaySkipLearn}); err != nil {
		return replayErr(p, slot, err)
	}
	if ph == phaseStageII {
		if err := ex.sendLease(p, MergedWeights{Merged: merged}); err != nil {
			return replayErr(p, slot, err)
		}
	}
	return nil
}

// replayErr contextualizes a recovery replay failure: the bare transport
// sentinel would otherwise surface as the whole run's error.
func replayErr(p, slot int, err error) error {
	return fmt.Errorf("distributed: replaying partition %d onto worker slot %d: %w", p, slot, err)
}

// replyLease extracts a protocol reply's lease stamp and error string.
func replyLease(m Message) (partition, epoch int, workerErr string, ok bool) {
	switch msg := m.(type) {
	case WeightSummaries:
		return msg.Partition, msg.Epoch, msg.Err, true
	case FusionResult:
		return msg.Partition, msg.Epoch, msg.Err, true
	default:
		return 0, 0, "", false
	}
}

// runErr maps a transport failure observed after cancellation back to the
// context's error; other failures pass through.
func (ex *Executor) runErr(err error) error {
	if ctxErr := ex.ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// workerHoster is implemented by transports that decide where their workers
// live. LocalWorkerTransport returns the transport executor-spawned worker
// goroutines must use (the loopback HTTP transport hands out a client bound
// to its URL so every message really crosses the wire), or nil when the
// workers attach from other processes and the executor must not spawn any.
type workerHoster interface {
	LocalWorkerTransport() Transport
}

// heartbeater emits a worker's liveness beacons while it holds a lease. The
// Sent counter rides along so the coordinator can spot replies lost in
// flight (see Heartbeat): the protocol loop bumps it only after a reply's
// send returned, so a beacon never claims a reply that is still behind it
// in the transport's upward queue.
type heartbeater struct {
	mu   sync.Mutex
	sent int
	quit chan struct{}
}

// start begins beaconing for a lease, replacing any previous beacon loop.
// The loop exits only via stop (the worker loop's lifetime bounds it): a
// failed send is tolerated, because over HTTP a beacon can fail transiently
// while the worker is perfectly healthy, and one lost beacon must not
// silence the worker for the rest of its incarnation — a genuinely dead
// transport (closed, or the fault layer crashed this worker) also fails the
// worker loop's own calls, which stops the beacon.
func (h *heartbeater) start(tr Transport, slot, partition, epoch int, interval time.Duration) {
	h.stop()
	h.mu.Lock()
	h.sent = 0
	h.mu.Unlock()
	if interval <= 0 {
		return
	}
	quit := make(chan struct{})
	h.quit = quit
	go func() {
		// Beacon immediately: the sooner the coordinator sees this lease
		// alive, the narrower the window in which a crash reads as
		// "never attached" rather than "died".
		tr.ToCoordinator(Heartbeat{Worker: slot, Partition: partition, Epoch: epoch})
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				h.mu.Lock()
				sent := h.sent
				h.mu.Unlock()
				tr.ToCoordinator(Heartbeat{Worker: slot, Partition: partition, Epoch: epoch, Sent: sent})
			}
		}
	}()
}

func (h *heartbeater) markSent() {
	h.mu.Lock()
	h.sent++
	h.mu.Unlock()
}

func (h *heartbeater) stop() {
	if h.quit != nil {
		close(h.quit)
		h.quit = nil
	}
}

// workerMain is one worker incarnation's receive loop, driven entirely by
// transport messages: adopt a lease on Init (starting the liveness beacon),
// ingest partition batches through an incremental dictionary encoder, run
// stage I on StartStageI, apply the merged weights and run stage II on
// MergedWeights, then exit. Messages stamped with an epoch other than the
// adopted lease's are discarded — they belong to a lease this incarnation
// does not hold. With optsFromInit (out-of-process workers) the pipeline
// options are reconstructed from the Init message instead of the opts
// argument.
//
// Ingest is bounded: each TupleBatch is interned on arrival (the partition
// table's values alias the dictionary's canonical strings, so the worker
// holds one copy of every distinct value and never the raw batch slices),
// and stage I streams blocks from an iterator unless Materialize crossed
// the wire. Recovery replays a partition's batches in their original order
// onto a fresh incarnation, so the incremental encoding — value IDs minted
// in row-major first-sight order — is byte-identical across re-leases.
func workerMain(ctx context.Context, tr Transport, w int, opts core.Options, optsFromInit bool) {
	var (
		schema    *dataset.Schema
		rs        []*rules.Rule
		senc      *dataset.StreamEncoder
		initErr   error
		ingestErr error
		tb        *dataset.Table
		ix        *index.Index
		stats     core.Stats
		inited    bool
		partition int
		epoch     int
		hb        heartbeater
	)
	defer hb.stop()
	for {
		m, err := tr.WorkerRecv(w)
		if err != nil {
			return // transport closed or this incarnation crashed
		}
		switch msg := m.(type) {
		case Init:
			if inited && msg.Epoch <= epoch {
				continue // stale lease
			}
			inited, partition, epoch = true, msg.Partition, msg.Epoch
			schema, rs, senc, tb, ix, initErr, ingestErr = nil, nil, nil, nil, nil, nil, nil
			stats = core.Stats{}
			if optsFromInit && msg.HasOpts {
				opts = coreOptsFromWire(msg.Opts)
			}
			slog.Debug("distributed: worker adopted lease",
				"run", opts.RunID, "slot", w, "partition", partition, "epoch", epoch)
			if s, err := dataset.NewSchema(msg.SchemaAttrs...); err != nil {
				initErr = err
			} else if r, err := rulesFromWire(msg.Rules); err != nil {
				initErr = err
			} else {
				schema, rs = s, r
				senc = dataset.NewStreamEncoder(schema, nil)
			}
			hb.start(tr, w, partition, epoch, time.Duration(msg.HeartbeatNS))
		case TupleBatch:
			if !inited || msg.Epoch != epoch || senc == nil || ingestErr != nil {
				continue
			}
			for i, row := range msg.Rows {
				if _, err := senc.AppendID(msg.IDs[i], row); err != nil {
					ingestErr = err
					break
				}
			}
		case StartStageI:
			if !inited || msg.Epoch != epoch {
				continue
			}
			t0 := time.Now()
			reply := WeightSummaries{Worker: w, Partition: partition, Epoch: epoch}
			switch {
			case initErr != nil:
				reply.Err = initErr.Error()
			case ingestErr != nil:
				reply.Err = ingestErr.Error()
			case schema == nil:
				reply.Err = "protocol: StartStageI before Init"
			default:
				tb = senc.Table()
				stats.Tuples = tb.Len()
				var err error
				if opts.Materialize {
					// Escape hatch: full index, then one block-parallel pass
					// per phase — the pre-streaming worker pipeline.
					if ix, err = index.BuildConfigured(tb, rs, index.BuildConfig{FixedOrder: opts.DisablePlanner, Encoded: senc.Encoded()}); err != nil {
						reply.Err = err.Error()
						break
					}
					stats.Blocks = len(ix.Blocks)
					if err := core.StageAGP(ctx, ix, opts, &stats); err != nil {
						reply.Err = err.Error()
						break
					}
					if !msg.SkipLearn {
						if err := core.StageLearn(ctx, ix, opts, &stats); err != nil {
							reply.Err = err.Error()
							break
						}
					}
				} else {
					// Default: stream blocks from the iterator with AGP and
					// learning fused per block; RSC waits for the merged
					// weights, as the protocol requires.
					if ix, err = core.StreamAGPLearn(ctx, tb, senc.Encoded(), rs, opts, &stats, !msg.SkipLearn); err != nil {
						reply.Err = err.Error()
						break
					}
					stats.Blocks = len(ix.Blocks)
				}
				if !msg.SkipLearn {
					reply.Summaries = ix.PieceSummaries()
				}
			}
			reply.ElapsedNS = time.Since(t0).Nanoseconds()
			if tr.ToCoordinator(reply) != nil || reply.Err != "" {
				return
			}
			hb.markSent()
		case MergedWeights:
			if !inited || msg.Epoch != epoch {
				continue
			}
			if ix == nil {
				tr.ToCoordinator(FusionResult{Worker: w, Partition: partition, Epoch: epoch, Err: "protocol: MergedWeights before stage I"})
				return
			}
			t0 := time.Now()
			ix.ApplyPieceWeights(msg.Merged)
			if err := core.StageRSC(ctx, ix, opts, &stats); err != nil {
				tr.ToCoordinator(FusionResult{Worker: w, Partition: partition, Epoch: epoch, Err: err.Error()})
				return
			}
			for _, b := range ix.Blocks {
				stats.Groups += len(b.Groups)
			}
			// The local FSCR output is what this worker would ship alone; the
			// coordinator re-derives the final table globally, so the local
			// pass contributes its (timed) cost, as on the real cluster.
			core.RunFSCREncoded(tb, ix.Encoded(), fusionBlocks(ix), opts, &stats)
			tr.ToCoordinator(FusionResult{
				Worker:    w,
				Partition: partition,
				Epoch:     epoch,
				PartSize:  tb.Len(),
				Blocks:    blocksToWire(ix),
				Stats:     stats,
				ElapsedNS: time.Since(t0).Nanoseconds(),
			})
			return
		}
	}
}

// reducePieceWeights is the coordinator half of Eq. 6: fold every worker's
// piece summaries (in worker order, for deterministic float accumulation)
// into support-weighted mean weights, emitted sorted by (rule, identity).
func reducePieceWeights(perWorker [][]index.PieceSummary) []index.PieceSummary {
	// A single worker's summaries are already the merged vector; returning
	// them verbatim keeps k=1 bit-identical to the stand-alone pipeline
	// ((n·w)/n can differ from w in the last ulp).
	if len(perWorker) == 1 {
		return index.CopySummaries(perWorker[0])
	}
	type agg struct {
		ruleID, key string
		values      []string
		sumNW, sumN float64
	}
	byKey := make(map[string]*agg)
	var order []string
	for _, sums := range perWorker {
		for _, s := range sums {
			k := summaryAggKey(&s)
			a := byKey[k]
			if a == nil {
				a = &agg{ruleID: s.RuleID, key: s.Key, values: s.IdentityValues()}
				byKey[k] = a
				order = append(order, k)
			}
			n := float64(s.Count)
			a.sumNW += n * s.Weight
			a.sumN += n
		}
	}
	sort.Strings(order)
	out := make([]index.PieceSummary, 0, len(order))
	for _, k := range order {
		a := byKey[k]
		if a.sumN <= 0 {
			continue
		}
		out = append(out, index.PieceSummary{
			RuleID: a.ruleID,
			Key:    a.key,
			Values: a.values,
			Count:  int(a.sumN),
			Weight: a.sumNW / a.sumN,
		})
	}
	return out
}

// summaryAggKey renders a summary's (rule, values) identity as a
// collision-free string key: the rule ID and each value are
// length-prefixed, so no component containing separator or digit bytes can
// alias a differently-split identity the way a plain join would.
func summaryAggKey(s *index.PieceSummary) string {
	var b strings.Builder
	vals := s.IdentityValues()
	n := len(s.RuleID) + 8
	for _, v := range vals {
		n += len(v) + 8
	}
	b.Grow(n)
	fmt.Fprintf(&b, "%d:", len(s.RuleID))
	b.WriteString(s.RuleID)
	for _, v := range vals {
		fmt.Fprintf(&b, "\x00%d:", len(v))
		b.WriteString(v)
	}
	return b.String()
}

// unionWireBlocks builds global FSCR inputs from every worker's shipped
// blocks: per rule, the tuple→piece assignments of all workers plus the
// union of their candidate pieces (deduplicated by interned identity,
// keeping the merged weight). Wire pieces arrive as strings (the transports
// are untouched by the dictionary encoding); the coordinator interns them
// locally into dict, the same dictionary the gather FSCR encodes the dirty
// rows into. Workers are folded in index order so candidate order is
// deterministic regardless of message arrival order.
func unionWireBlocks(frs []FusionResult, rs []*rules.Rule, dict *intern.Dict) []*core.FusionBlock {
	blocks := make([]*core.FusionBlock, len(rs))
	seen := make([]map[uint32]struct{}, len(rs))
	for ri, r := range rs {
		blocks[ri] = &core.FusionBlock{Rule: r, Attrs: r.Attrs(), Versions: make(map[int]*index.Piece)}
		seen[ri] = make(map[uint32]struct{})
	}
	for _, fr := range frs {
		for bi := range fr.Blocks {
			if bi >= len(blocks) {
				continue
			}
			fb := blocks[bi]
			for _, wp := range fr.Blocks[bi].Pieces {
				p := index.NewPiece(rs[bi], dict, wp.Reason, wp.Result)
				p.TupleIDs = wp.TupleIDs
				p.Weight = wp.Weight
				if _, dup := seen[bi][p.KeyID()]; !dup {
					seen[bi][p.KeyID()] = struct{}{}
					fb.Candidates = append(fb.Candidates, p)
				}
				for _, id := range wp.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
	}
	return blocks
}
