package distributed

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// Executor is the concurrent distributed runtime: k workers, each running
// the stand-alone stage-I/II pipeline over its partition on its own
// goroutine, coordinated exclusively through a Transport. The coordinator
// streams partition batches down, reduces the workers' Eq. 6 piece
// summaries, broadcasts the merged weights, and gathers the workers' fusion
// blocks for the global conflict-resolution pass.
//
// Two ingestion paths share the runtime:
//
//   - Clean partitions a whole table with Algorithm 3 (heap-balanced,
//     eviction-based) and ships each part in batches.
//   - Submit streams batches through an online relaxation of Algorithm 3:
//     centroids are drawn from the first k tuples seen, and each tuple goes
//     to the nearest centroid whose partition is under the running capacity
//     ⌈seen/k⌉ — no retrospective eviction, so shipped tuples never move.
type Executor struct {
	ctx    context.Context
	schema *dataset.Schema
	rs     []*rules.Rule
	opts   Options
	k      int
	tr     Transport
	metric distance.Metric
	rng    *rand.Rand

	// gather accumulates every submitted tuple (re-IDed sequentially); the
	// global FSCR fuses from these original dirty values. Partitions are
	// never materialized coordinator-side — batches ship as they arrive.
	// gatherIDs is the dictionary-encoded companion (one ID row per gather
	// tuple): the streaming partitioner computes centroid distances over
	// interned IDs with memoization, and the gather FSCR reuses the same
	// dictionary for the wire pieces.
	gather    *dataset.Table
	gatherIDs [][]uint32
	dict      *intern.Dict
	ev        *distance.Evaluator
	centroids [][]uint32
	loads     []int
	shipped   int // gather tuples already assigned and shipped

	distTime   time.Duration
	assignTime time.Duration
	createdAt  time.Time

	workerWG sync.WaitGroup
	stop     chan struct{} // closed once the run ends; releases the ctx watcher
	stopOnce sync.Once
	finished bool
	err      error
}

// NewExecutor starts opts.Workers workers (default 4) for streaming ingest
// via Submit followed by Run. Whole-table runs should use Clean, which adds
// the exact Algorithm 3 partitioning on top of the same runtime.
func NewExecutor(schema *dataset.Schema, rs []*rules.Rule, opts Options) (*Executor, error) {
	return NewExecutorContext(context.Background(), schema, rs, opts)
}

// NewExecutorContext is NewExecutor bound to a context: cancelling ctx tears
// the transport down, unblocking every worker goroutine and failing any
// in-flight Submit/Run, so an abandoned run releases its goroutines without
// an explicit Close.
func NewExecutorContext(ctx context.Context, schema *dataset.Schema, rs []*rules.Rule, opts Options) (*Executor, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	return newExecutor(ctx, schema, rs, opts, opts.Workers)
}

func newExecutor(ctx context.Context, schema *dataset.Schema, rs []*rules.Rule, opts Options, k int) (*Executor, error) {
	if schema == nil {
		return nil, fmt.Errorf("distributed: nil schema")
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("distributed: no rules")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	metric := opts.Core.Metric
	if metric == nil {
		metric = defaultMetric()
	}
	factory := opts.Transport
	if factory == nil {
		factory = NewChanTransport
	}
	dict := opts.Dict
	if dict == nil {
		dict = intern.NewDict()
	}
	ex := &Executor{
		ctx:       ctx,
		schema:    schema,
		rs:        rs,
		opts:      opts,
		k:         k,
		tr:        factory(k),
		metric:    metric,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		gather:    dataset.NewTable(schema),
		dict:      dict,
		ev:        distance.NewEvaluator(metric, dict),
		loads:     make([]int, k),
		stop:      make(chan struct{}),
		createdAt: time.Now(),
	}
	// The watcher propagates cancellation by closing the transport (the only
	// executor operation that is safe from another goroutine); every blocked
	// transport call then fails and the workers drain out.
	go func() {
		select {
		case <-ctx.Done():
			ex.tr.Close()
		case <-ex.stop:
		}
	}()
	wopts := workerCoreOpts(opts.Core, k)
	// A transport may override where its workers run: chan/gob workers talk
	// to the coordinator value directly, the loopback HTTP transport hands
	// out a client bound to its URL, and a remote coordinator returns nil —
	// its workers attach from other processes.
	wtr := Transport(ex.tr)
	spawn := true
	if d, ok := ex.tr.(workerHoster); ok {
		if wt := d.LocalWorkerTransport(); wt != nil {
			wtr = wt
		} else {
			spawn = false
		}
	}
	if spawn {
		for w := 0; w < k; w++ {
			ex.workerWG.Add(1)
			go func(w int) {
				defer ex.workerWG.Done()
				workerMain(ctx, wtr, w, wopts, false)
			}(w)
		}
	}
	wire := rulesToWire(rs)
	attrs := schema.Attrs()
	// Out-of-process workers get τ scaled for partition-local group sizes
	// like local ones, but NOT the local CPU-split Parallelism — that was
	// derived from this host's core count, while a remote worker should
	// default to its own.
	wireOpts := coreOptsToWire(workerTauOpts(opts.Core, k))
	for w := 0; w < k; w++ {
		msg := Init{Worker: w, SchemaAttrs: attrs, Rules: wire, Opts: wireOpts, HasOpts: true}
		if err := ex.tr.ToWorker(w, msg); err != nil {
			ex.fail(err)
			return nil, ex.err
		}
	}
	return ex, nil
}

// workerCoreOpts derives the per-worker pipeline options: τ scaled to
// partition-local group sizes, and the block-level parallelism budget split
// across the k concurrent workers so the pool doesn't oversubscribe the
// host.
func workerCoreOpts(o core.Options, workers int) core.Options {
	o = workerTauOpts(o, workers)
	if o.Parallelism <= 0 {
		par := runtime.NumCPU() / workers
		if par < 1 {
			par = 1
		}
		o.Parallelism = par
	}
	return o
}

// Submit streams one batch of dirty tuples into the executor, assigning each
// tuple to a partition online and shipping the assignments immediately.
// Tuples are re-IDed sequentially across batches. Deterministic given the
// seed and the batch sequence.
func (ex *Executor) Submit(batch *dataset.Table) error {
	if ex.err != nil {
		return ex.err
	}
	if err := ex.ctx.Err(); err != nil {
		ex.fail(err)
		return ex.err
	}
	if ex.finished {
		return fmt.Errorf("distributed: executor already ran")
	}
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	if !batch.Schema.Equal(ex.schema) {
		return fmt.Errorf("distributed: batch schema does not match executor schema")
	}
	for _, t := range batch.Tuples {
		vals := make([]string, len(t.Values))
		ids := make([]uint32, len(t.Values))
		for i, v := range t.Values {
			vals[i] = v
			ids[i] = ex.dict.Intern(v)
		}
		ex.gather.Tuples = append(ex.gather.Tuples, &dataset.Tuple{ID: len(ex.gather.Tuples), Values: vals})
		ex.gatherIDs = append(ex.gatherIDs, ids)
	}
	if ex.centroids == nil && ex.gather.Len() < ex.k {
		return nil // keep buffering until k centroid candidates exist
	}
	return ex.assignAndShip()
}

// assignAndShip assigns every not-yet-shipped gather tuple to a partition
// and ships the new assignments, one TupleBatch per worker.
func (ex *Executor) assignAndShip() error {
	if ex.shipped >= ex.gather.Len() {
		return nil
	}
	if ex.centroids == nil {
		// Draw centroids from the tuples seen so far (the streaming analogue
		// of Algorithm 3's random distinct centroids).
		n := ex.gather.Len()
		kk := ex.k
		if kk > n {
			kk = n
		}
		perm := ex.rng.Perm(n)
		ex.centroids = make([][]uint32, ex.k)
		for i := 0; i < kk; i++ {
			ex.centroids[i] = ex.gatherIDs[perm[i]]
		}
		for i := kk; i < ex.k; i++ {
			ex.centroids[i] = ex.centroids[0] // degenerate: fewer tuples than workers
		}
	}
	batches := make([]TupleBatch, ex.k)
	for w := range batches {
		batches[w].Worker = w
	}
	dists := make([]float64, ex.k)
	for ; ex.shipped < ex.gather.Len(); ex.shipped++ {
		t := ex.gather.Tuples[ex.shipped]
		row := ex.gatherIDs[ex.shipped]
		t0 := time.Now()
		for w := 0; w < ex.k; w++ {
			dists[w] = ex.ev.Values(row, ex.centroids[w])
		}
		ex.distTime += time.Since(t0)
		t0 = time.Now()
		// Running capacity ⌈(assigned+1)/k⌉ keeps partitions balanced; at
		// least one worker is always under it.
		capacity := (ex.shipped + ex.k) / ex.k
		best := -1
		for w := 0; w < ex.k; w++ {
			if ex.loads[w] >= capacity {
				continue
			}
			if best == -1 || dists[w] < dists[best] {
				best = w
			}
		}
		ex.loads[best]++
		batches[best].IDs = append(batches[best].IDs, t.ID)
		batches[best].Rows = append(batches[best].Rows, t.Values)
		ex.assignTime += time.Since(t0)
	}
	for w := range batches {
		if len(batches[w].IDs) == 0 {
			continue
		}
		if err := ex.shipBatched(w, batches[w]); err != nil {
			return err
		}
	}
	return nil
}

// shipBatched sends one worker's assignment in BatchSize chunks.
func (ex *Executor) shipBatched(w int, b TupleBatch) error {
	size := ex.opts.BatchSize
	for lo := 0; lo < len(b.IDs); lo += size {
		hi := lo + size
		if hi > len(b.IDs) {
			hi = len(b.IDs)
		}
		msg := TupleBatch{Worker: w, IDs: b.IDs[lo:hi], Rows: b.Rows[lo:hi]}
		if err := ex.tr.ToWorker(w, msg); err != nil {
			ex.fail(err)
			return err
		}
	}
	return nil
}

// Run completes a streaming ingest: flushes any buffered tuples, drives the
// workers through both stages, and gathers the result.
func (ex *Executor) Run() (*Result, error) {
	if ex.err != nil {
		return nil, ex.err
	}
	if err := ex.ctx.Err(); err != nil {
		ex.fail(err)
		return nil, ex.err
	}
	if ex.finished {
		return nil, fmt.Errorf("distributed: executor already ran")
	}
	if ex.gather.Len() == 0 {
		ex.fail(fmt.Errorf("distributed: empty input table"))
		return nil, ex.err
	}
	if err := ex.assignAndShip(); err != nil {
		return nil, err
	}
	res := &Result{
		Workers:           ex.k,
		PartitionDistTime: ex.distTime,
		PartitionHeapTime: ex.assignTime,
	}
	return ex.finish(ex.gather, res)
}

// fail records the first error and tears the transport down so every worker
// unblocks and exits. A transport error caused by cancellation is reported
// as the context's error.
func (ex *Executor) fail(err error) {
	if ex.err == nil {
		if ctxErr := ex.ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		ex.err = err
	}
	ex.finished = true
	ex.stopOnce.Do(func() { close(ex.stop) })
	ex.tr.Close()
	ex.workerWG.Wait()
}

// Close abandons an executor that will not be Run, releasing its worker
// goroutines. Safe to call after Run (a no-op then).
func (ex *Executor) Close() {
	if ex.finished {
		return
	}
	ex.fail(fmt.Errorf("distributed: executor closed"))
}

// finish drives the two-phase protocol to completion: stage I on every
// worker, the Eq. 6 reduce + broadcast, stage II on every worker, then the
// global gather (FSCR over the original dirty tuples + deduplication).
func (ex *Executor) finish(dirty *dataset.Table, res *Result) (*Result, error) {
	ok := false
	defer func() {
		ex.finished = true
		ex.stopOnce.Do(func() { close(ex.stop) })
		ex.tr.Close()
		ex.workerWG.Wait()
		if !ok && ex.err == nil {
			if ctxErr := ex.ctx.Err(); ctxErr != nil {
				ex.err = ctxErr
			} else {
				ex.err = fmt.Errorf("distributed: run aborted")
			}
		}
	}()

	skipLearn := len(ex.opts.PresetWeights) > 0
	for w := 0; w < ex.k; w++ {
		if err := ex.tr.ToWorker(w, StartStageI{Worker: w, SkipLearn: skipLearn}); err != nil {
			return nil, ex.runErr(err)
		}
	}
	sums := make([]WeightSummaries, ex.k)
	for i := 0; i < ex.k; i++ {
		m, err := ex.tr.CoordinatorRecv()
		if err != nil {
			return nil, ex.runErr(err)
		}
		ws, isWS := m.(WeightSummaries)
		if !isWS {
			return nil, fmt.Errorf("distributed: protocol: expected WeightSummaries, got %T", m)
		}
		if ws.Err != "" {
			return nil, fmt.Errorf("distributed: worker %d: %s", ws.Worker, ws.Err)
		}
		sums[ws.Worker] = ws
	}

	// Eq. 6: reduce the workers' piece summaries to support-weighted mean
	// weights — w(γ) = Σ nᵢ·wᵢ / Σ nᵢ — so sparse local evidence borrows
	// support from the other parts. A pure reduce over shipped summaries:
	// no worker index state is touched from the coordinator. With preset
	// weights (the serving model cache) the workers skipped learning and the
	// cached vector is broadcast verbatim.
	t0 := time.Now()
	var merged []index.PieceSummary
	switch {
	case skipLearn:
		merged = ex.opts.PresetWeights
	case !ex.opts.SkipWeightMerge:
		per := make([][]index.PieceSummary, ex.k)
		for w := range sums {
			per[w] = sums[w].Summaries
		}
		merged = reducePieceWeights(per)
	}
	res.MergedWeights = index.CopySummaries(merged)
	res.GatherTime += time.Since(t0)
	for w := 0; w < ex.k; w++ {
		if err := ex.tr.ToWorker(w, MergedWeights{Worker: w, Merged: merged}); err != nil {
			return nil, ex.runErr(err)
		}
	}

	frs := make([]FusionResult, ex.k)
	for i := 0; i < ex.k; i++ {
		m, err := ex.tr.CoordinatorRecv()
		if err != nil {
			return nil, ex.runErr(err)
		}
		fr, isFR := m.(FusionResult)
		if !isFR {
			return nil, fmt.Errorf("distributed: protocol: expected FusionResult, got %T", m)
		}
		if fr.Err != "" {
			return nil, fmt.Errorf("distributed: worker %d: %s", fr.Worker, fr.Err)
		}
		frs[fr.Worker] = fr
	}

	res.WorkerTimes = make([]time.Duration, ex.k)
	res.PartSizes = make([]int, ex.k)
	for w := 0; w < ex.k; w++ {
		res.WorkerTimes[w] = time.Duration(sums[w].ElapsedNS + frs[w].ElapsedNS)
		res.PartSizes[w] = frs[w].PartSize
		res.Stats.Add(frs[w].Stats)
	}

	// Gather (§6: "conflicts and duplicates are eliminated in the same way
	// to stand-alone MLNClean"): run a global conflict resolution over the
	// union of all workers' blocks and deduplicate. The global FSCR fuses
	// from the ORIGINAL dirty tuples — the union blocks already carry every
	// worker's stage-I repairs, and fusing from the per-part FSCR outputs
	// would move the observation baseline of the minimality prior, letting
	// compounding double-fusions through. The per-part FSCR outputs remain
	// what each worker would ship alone (and what WorkerTimes measures).
	t0 = time.Now()
	blocks := unionWireBlocks(frs, ex.rs, ex.dict)
	var gatherStats core.Stats
	// The gather rows were interned at Submit; hand them to FSCR instead of
	// re-encoding the whole accumulated dataset on the finish path.
	enc := &dataset.Encoded{Dict: ex.dict, Rows: ex.gatherIDs}
	repaired := core.RunFSCREncoded(dirty, enc, blocks, ex.opts.Core, &gatherStats)
	res.Repaired = repaired
	res.Stats.FSCRCellChanges += gatherStats.FSCRCellChanges
	if ex.opts.Core.KeepDuplicates {
		res.Clean = repaired.Clone()
	} else {
		clean, dups := Dedup(repaired)
		res.Clean = clean
		for _, d := range dups {
			res.Stats.DuplicatesRemoved += len(d) - 1
		}
	}
	res.GatherTime += time.Since(t0)
	res.WallTime = time.Since(ex.createdAt)
	ok = true
	return res, nil
}

// runErr maps a transport failure observed after cancellation back to the
// context's error; other failures pass through.
func (ex *Executor) runErr(err error) error {
	if ctxErr := ex.ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// workerHoster is implemented by transports that decide where their workers
// live. LocalWorkerTransport returns the transport executor-spawned worker
// goroutines must use (the loopback HTTP transport hands out a client bound
// to its URL so every message really crosses the wire), or nil when the
// workers attach from other processes and the executor must not spawn any.
type workerHoster interface {
	LocalWorkerTransport() Transport
}

// workerMain is one worker's receive loop, driven entirely by transport
// messages: accumulate partition batches, run stage I on StartStageI, apply
// the merged weights and run stage II on MergedWeights, then exit. With
// optsFromInit (out-of-process workers) the pipeline options are
// reconstructed from the Init message instead of the opts argument.
func workerMain(ctx context.Context, tr Transport, w int, opts core.Options, optsFromInit bool) {
	var (
		schema  *dataset.Schema
		rs      []*rules.Rule
		batches []TupleBatch
		initErr error
		tb      *dataset.Table
		ix      *index.Index
		stats   core.Stats
	)
	for {
		m, err := tr.WorkerRecv(w)
		if err != nil {
			return // transport closed: coordinator gave up
		}
		switch msg := m.(type) {
		case Init:
			if optsFromInit && msg.HasOpts {
				opts = coreOptsFromWire(msg.Opts)
			}
			if s, err := dataset.NewSchema(msg.SchemaAttrs...); err != nil {
				initErr = err
			} else if r, err := rulesFromWire(msg.Rules); err != nil {
				initErr = err
			} else {
				schema, rs = s, r
			}
		case TupleBatch:
			batches = append(batches, msg)
		case StartStageI:
			t0 := time.Now()
			reply := WeightSummaries{Worker: w}
			switch {
			case initErr != nil:
				reply.Err = initErr.Error()
			case schema == nil:
				reply.Err = "protocol: StartStageI before Init"
			default:
				tb = tableFromBatches(schema, batches)
				batches = nil
				stats.Tuples = tb.Len()
				var err error
				if ix, err = index.Build(tb, rs); err != nil {
					reply.Err = err.Error()
					break
				}
				stats.Blocks = len(ix.Blocks)
				if err := core.StageAGP(ctx, ix, opts, &stats); err != nil {
					reply.Err = err.Error()
					break
				}
				if !msg.SkipLearn {
					if err := core.StageLearn(ctx, ix, opts, &stats); err != nil {
						reply.Err = err.Error()
						break
					}
					reply.Summaries = ix.PieceSummaries()
				}
			}
			reply.ElapsedNS = time.Since(t0).Nanoseconds()
			if tr.ToCoordinator(reply) != nil || reply.Err != "" {
				return
			}
		case MergedWeights:
			if ix == nil {
				tr.ToCoordinator(FusionResult{Worker: w, Err: "protocol: MergedWeights before stage I"})
				return
			}
			t0 := time.Now()
			ix.ApplyPieceWeights(msg.Merged)
			if err := core.StageRSC(ctx, ix, opts, &stats); err != nil {
				tr.ToCoordinator(FusionResult{Worker: w, Err: err.Error()})
				return
			}
			for _, b := range ix.Blocks {
				stats.Groups += len(b.Groups)
			}
			// The local FSCR output is what this worker would ship alone; the
			// coordinator re-derives the final table globally, so the local
			// pass contributes its (timed) cost, as on the real cluster.
			core.RunFSCREncoded(tb, ix.Encoded(), fusionBlocks(ix), opts, &stats)
			tr.ToCoordinator(FusionResult{
				Worker:    w,
				PartSize:  tb.Len(),
				Blocks:    blocksToWire(ix),
				Stats:     stats,
				ElapsedNS: time.Since(t0).Nanoseconds(),
			})
			return
		}
	}
}

// reducePieceWeights is the coordinator half of Eq. 6: fold every worker's
// piece summaries (in worker order, for deterministic float accumulation)
// into support-weighted mean weights, emitted sorted by (rule, identity).
func reducePieceWeights(perWorker [][]index.PieceSummary) []index.PieceSummary {
	// A single worker's summaries are already the merged vector; returning
	// them verbatim keeps k=1 bit-identical to the stand-alone pipeline
	// ((n·w)/n can differ from w in the last ulp).
	if len(perWorker) == 1 {
		return index.CopySummaries(perWorker[0])
	}
	type agg struct {
		ruleID, key string
		values      []string
		sumNW, sumN float64
	}
	byKey := make(map[string]*agg)
	var order []string
	for _, sums := range perWorker {
		for _, s := range sums {
			k := summaryAggKey(&s)
			a := byKey[k]
			if a == nil {
				a = &agg{ruleID: s.RuleID, key: s.Key, values: s.IdentityValues()}
				byKey[k] = a
				order = append(order, k)
			}
			n := float64(s.Count)
			a.sumNW += n * s.Weight
			a.sumN += n
		}
	}
	sort.Strings(order)
	out := make([]index.PieceSummary, 0, len(order))
	for _, k := range order {
		a := byKey[k]
		if a.sumN <= 0 {
			continue
		}
		out = append(out, index.PieceSummary{
			RuleID: a.ruleID,
			Key:    a.key,
			Values: a.values,
			Count:  int(a.sumN),
			Weight: a.sumNW / a.sumN,
		})
	}
	return out
}

// summaryAggKey renders a summary's (rule, values) identity as a
// collision-free string key: the rule ID and each value are
// length-prefixed, so no component containing separator or digit bytes can
// alias a differently-split identity the way a plain join would.
func summaryAggKey(s *index.PieceSummary) string {
	var b strings.Builder
	vals := s.IdentityValues()
	n := len(s.RuleID) + 8
	for _, v := range vals {
		n += len(v) + 8
	}
	b.Grow(n)
	fmt.Fprintf(&b, "%d:", len(s.RuleID))
	b.WriteString(s.RuleID)
	for _, v := range vals {
		fmt.Fprintf(&b, "\x00%d:", len(v))
		b.WriteString(v)
	}
	return b.String()
}

// unionWireBlocks builds global FSCR inputs from every worker's shipped
// blocks: per rule, the tuple→piece assignments of all workers plus the
// union of their candidate pieces (deduplicated by interned identity,
// keeping the merged weight). Wire pieces arrive as strings (the transports
// are untouched by the dictionary encoding); the coordinator interns them
// locally into dict, the same dictionary the gather FSCR encodes the dirty
// rows into. Workers are folded in index order so candidate order is
// deterministic regardless of message arrival order.
func unionWireBlocks(frs []FusionResult, rs []*rules.Rule, dict *intern.Dict) []*core.FusionBlock {
	blocks := make([]*core.FusionBlock, len(rs))
	seen := make([]map[uint32]struct{}, len(rs))
	for ri, r := range rs {
		blocks[ri] = &core.FusionBlock{Rule: r, Attrs: r.Attrs(), Versions: make(map[int]*index.Piece)}
		seen[ri] = make(map[uint32]struct{})
	}
	for _, fr := range frs {
		for bi := range fr.Blocks {
			if bi >= len(blocks) {
				continue
			}
			fb := blocks[bi]
			for _, wp := range fr.Blocks[bi].Pieces {
				p := index.NewPiece(rs[bi], dict, wp.Reason, wp.Result)
				p.TupleIDs = wp.TupleIDs
				p.Weight = wp.Weight
				if _, dup := seen[bi][p.KeyID()]; !dup {
					seen[bi][p.KeyID()] = struct{}{}
					fb.Candidates = append(fb.Candidates, p)
				}
				for _, id := range wp.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
	}
	return blocks
}
