package distributed

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// Options configures a distributed cleaning run.
type Options struct {
	// Workers is the number of worker goroutines (default 4).
	Workers int
	// Core carries the per-worker stand-alone pipeline options.
	Core core.Options
	// Seed drives centroid selection.
	Seed int64
	// SkipWeightMerge disables the Eq. 6 cross-worker weight adjustment
	// (for the ablation bench).
	SkipWeightMerge bool
	// Transport builds the coordinator↔worker transport; nil uses the
	// in-process channel transport. NewGobTransport round-trips every
	// message through its serialized wire form; NewHTTPTransport moves it
	// over loopback HTTP.
	Transport TransportFactory
	// BatchSize is the tuple count per partition shipment (default 1024).
	BatchSize int
	// PresetWeights, when non-empty, is a previously learned Eq. 6 weight
	// vector for this rule set (see Result.MergedWeights): the workers skip
	// weight learning entirely and the vector is broadcast verbatim — the
	// serving model cache's fast path. Pieces absent from the vector keep
	// their Eq. 4 prior weights.
	PresetWeights []index.PieceSummary
	// Dict is the coordinator-side value dictionary: streamed tuples are
	// interned into it at Submit, the streaming partitioner computes
	// centroid distances over it, and the gather FSCR interns the workers'
	// wire pieces into it. Nil means a fresh per-run dictionary; the serving
	// layer passes a per-session dictionary derived from the model cache's
	// frozen vocabulary so repeat workloads skip re-interning. Workers keep
	// their own dictionaries (built locally from their partitions) — the
	// wire stays strings either way.
	Dict *intern.Dict
	// HeartbeatInterval is how often each worker beacons liveness to the
	// coordinator (default 1s). Negative disables heartbeats — and with it
	// failure detection, unless WorkerTimeout is explicitly set positive
	// (a busy worker sends nothing upward mid-stage, so a silence-only
	// detector is only sound when the timeout exceeds the longest stage).
	HeartbeatInterval time.Duration
	// WorkerTimeout is how long the coordinator tolerates silence from a
	// pending partition's worker while gathering before declaring it dead
	// and re-dispatching the partition onto a fresh worker slot (default
	// 10s; negative disables failure detection and recovery). With
	// remotely attaching workers the clock for a partition starts at its
	// worker's first sign of life, so a run still blocks — as before —
	// for a fleet that has not attached yet. Note sends stay bounded by
	// SendTimeout independently: to restore the old block-forever
	// behavior completely, set both negative.
	WorkerTimeout time.Duration
	// SendTimeout bounds every coordinator→worker send; it only trips when
	// a peer stops draining its inbox entirely (default 1m; negative
	// disables the bound). With detection enabled a tripped send is
	// treated as the worker's death and recovered like any other.
	SendTimeout time.Duration
	// MaxRecoveries caps re-dispatches per run so a systematically failing
	// cluster converges on an error instead of recovering forever (default
	// 4 + 2·Workers).
	MaxRecoveries int
	// RunID is an opaque correlation tag stamped on the run's log lines and
	// shipped to workers through WireCoreOptions, so coordinator- and
	// worker-side lines of one clean can be joined. Empty means the executor
	// generates one. Never influences the cleaning outcome.
	RunID string
}

// Result is the distributed cleaning output.
type Result struct {
	// Clean is the final gathered dataset, duplicates removed.
	Clean *dataset.Table
	// Repaired is the gathered table before duplicate elimination, tuple
	// IDs preserved from the input.
	Repaired *dataset.Table
	// PartSizes lists the tuples per worker partition.
	PartSizes []int
	// WorkerTimes holds each worker's measured stage-I+II time. Workers run
	// concurrently, so these include whatever contention the host's cores
	// impose; ClusterTime stays the hardware-independent model on top. When a
	// partition was recovered mid-run, the entry reflects the lease that
	// actually produced the final result (the replacement's re-run), not the
	// dead worker's partial work.
	WorkerTimes []time.Duration
	// WorkerStageITimes/WorkerStageIITimes break WorkerTimes into its two
	// measured phases (index build + AGP + learning vs RSC + local FSCR), so
	// callers can reproduce the per-phase runtime tables without re-running.
	WorkerStageITimes  []time.Duration
	WorkerStageIITimes []time.Duration
	// PartitionDistTime is the map-side distance-matrix phase of Alg. 3;
	// PartitionHeapTime is its sequential driver-side heap assignment.
	PartitionDistTime time.Duration
	PartitionHeapTime time.Duration
	// GatherTime covers the weight merge plus the global conflict
	// resolution and deduplication.
	GatherTime time.Duration
	// WallTime is the measured end-to-end wall-clock time of the concurrent
	// run (partitioning through gather). Unlike ClusterTime it depends on
	// the host's core count.
	WallTime time.Duration
	// Workers is the worker count the run used.
	Workers int
	// WorkersLost counts workers the run declared dead and recovered from:
	// each one's partition was re-leased to a fresh worker slot and its
	// stage-I/II work re-run, without changing the output (learning stats
	// and timings may differ — a stage-II recovery skips re-learning).
	WorkersLost int
	// MergedWeights is the Eq. 6 weight vector the run broadcast: the reduce
	// result, or Options.PresetWeights when those were supplied. Cache it
	// (keyed by rules.CanonicalHash) to skip weight learning on repeat
	// workloads over the same rule set.
	MergedWeights []index.PieceSummary
	// Plan lists the selectivity planner's per-rule choices as rendered
	// plan-dump lines, derived coordinator-side from the gather dictionary's
	// column statistics (the same greedy planner each worker applies to its
	// partition). Empty when the planner is disabled.
	Plan []string
	// Stats aggregates the worker pipelines' stats.
	Stats core.Stats
	// RunID is the correlation tag the run was executed under (generated if
	// Options.RunID was empty).
	RunID string
}

// ClusterTime models the run time on an ideal cluster where every worker is
// its own node and map/reduce-style phases distribute:
//
//	distance-matrix/k + heap assignment + max(worker) + gather/k
//
// The host's core count would otherwise cap any measured speedup (the paper
// runs on an 11-node cluster); the model removes the partition/gather
// serialization from the estimate. Since workers now run concurrently,
// max(worker) is measured under whatever contention the host imposes: on a
// host with at least k free cores the model approximates the paper's
// Fig. 15 / Table 6 scaling shape, on smaller hosts it understates the
// ideal-cluster speedup. WallTime is the measured concurrent counterpart.
// See DESIGN.md's substitution table.
func (r *Result) ClusterTime() time.Duration {
	var maxW time.Duration
	for _, w := range r.WorkerTimes {
		if w > maxW {
			maxW = w
		}
	}
	k := time.Duration(r.Workers)
	if k < 1 {
		k = 1
	}
	return r.PartitionDistTime/k + r.PartitionHeapTime + maxW + r.GatherTime/k
}

// Clean runs distributed MLNClean (§6): partition with Algorithm 3, clean
// every part with the stand-alone pipeline concurrently on the executor's
// worker pool — interleaving the Eq. 6 weight merge between weight learning
// and RSC — and gather the parts, resolving cross-part conflicts with a
// global FSCR pass and removing duplicates exactly like the stand-alone
// cleaner.
func Clean(dirty *dataset.Table, rs []*rules.Rule, opts Options) (*Result, error) {
	return CleanContext(context.Background(), dirty, rs, opts)
}

// CleanContext is Clean bounded by a context: cancelling ctx aborts the run
// promptly, tearing down the transport and releasing the worker goroutines.
func CleanContext(ctx context.Context, dirty *dataset.Table, rs []*rules.Rule, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if dirty == nil || dirty.Len() == 0 {
		return nil, fmt.Errorf("distributed: empty input table")
	}
	start := time.Now()

	rng := rand.New(rand.NewSource(opts.Seed))
	metric := opts.Core.Metric
	if metric == nil {
		metric = defaultMetric()
	}
	parts, distTime, heapTime, err := PartitionTimed(dirty, opts.Workers, metric, rng)
	if err != nil {
		return nil, err
	}

	ex, err := newExecutor(ctx, dirty.Schema, rs, opts, len(parts))
	if err != nil {
		return nil, err
	}
	for w, p := range parts {
		batch := TupleBatch{Worker: w, IDs: make([]int, p.Len()), Rows: make([][]string, p.Len())}
		for i, t := range p.Tuples {
			batch.IDs[i] = t.ID
			batch.Rows[i] = t.Values
		}
		if err := ex.shipBatched(w, batch); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Workers:           len(parts),
		PartitionDistTime: distTime,
		PartitionHeapTime: heapTime,
	}
	res, err = ex.finish(dirty, res)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// CleanStream runs distributed MLNClean over a row stream: tuples are read
// in Options.BatchSize chunks and fed through Submit's online partitioner
// (the streaming relaxation of Algorithm 3), so the coordinator never holds
// the raw table — only the interned gather copy every run keeps for the
// global FSCR pass — and workers receive their partitions incrementally.
// Deterministic given the seed and the stream's row order; note the online
// partitioner may split the table differently than Clean's exact Algorithm 3,
// so the two entry points are separately deterministic, not interchangeable.
func CleanStream(ctx context.Context, stream dataset.RowStream, rs []*rules.Rule, opts Options) (*Result, error) {
	start := time.Now()
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 1024
	}
	ex, err := NewExecutorContext(ctx, stream.Schema(), rs, opts)
	if err != nil {
		return nil, err
	}
	batch := dataset.NewTable(stream.Schema())
	for {
		row, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			ex.Close()
			return nil, err
		}
		if _, err := batch.Append(row...); err != nil {
			ex.Close()
			return nil, err
		}
		if batch.Len() >= batchSize {
			if err := ex.Submit(batch); err != nil {
				return nil, err
			}
			batch = dataset.NewTable(stream.Schema())
		}
	}
	if batch.Len() > 0 {
		if err := ex.Submit(batch); err != nil {
			return nil, err
		}
	}
	res, err := ex.Run()
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// workerTauOpts scales the AGP threshold to partition-local group sizes: a
// group of n tuples lands ~n/k of them in each part, so the per-worker τ is
// ⌈τ/k⌉ (never below 1 unless AGP is disabled outright).
func workerTauOpts(o core.Options, workers int) core.Options {
	if o.TauSet && o.Tau == 0 {
		return o
	}
	tau := o.Tau
	if tau <= 0 {
		tau = 1
	}
	scaled := (tau + workers - 1) / workers
	if scaled < 1 {
		scaled = 1
	}
	o.Tau = scaled
	o.TauSet = true
	return o
}

// mergeWeights applies Eq. 6 across a set of worker indexes: every piece
// with the same rule and the same values gets the support-weighted mean of
// its per-part learned weights. It is the in-process composition of the
// executor's exchange — extract summaries, reduce, apply — kept for tests
// and callers holding indexes directly.
func mergeWeights(indexes []*index.Index) {
	per := make([][]index.PieceSummary, 0, len(indexes))
	for _, ix := range indexes {
		if ix == nil {
			continue
		}
		per = append(per, ix.PieceSummaries())
	}
	merged := reducePieceWeights(per)
	for _, ix := range indexes {
		if ix == nil {
			continue
		}
		ix.ApplyPieceWeights(merged)
	}
}

// fusionBlocks converts a worker's cleaned index into FSCR inputs.
func fusionBlocks(ix *index.Index) []*core.FusionBlock {
	blocks := make([]*core.FusionBlock, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		fb := &core.FusionBlock{Rule: b.Rule, Attrs: b.Rule.Attrs(), Versions: make(map[int]*index.Piece)}
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				fb.Candidates = append(fb.Candidates, p)
				for _, id := range p.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
		blocks[bi] = fb
	}
	return blocks
}

// Dedup removes exact-duplicate tuples, keeping the lowest-ID
// representative; exported for the gather step and tests. It is the
// stand-alone pipeline's duplicate elimination (interned, collision-free
// row identity).
func Dedup(tb *dataset.Table) (*dataset.Table, [][]int) {
	return core.Dedup(tb)
}

// defaultMetric returns the metric used when none is configured
// (Levenshtein, the paper's default).
func defaultMetric() distance.Metric { return distance.Levenshtein{} }
