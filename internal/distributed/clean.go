package distributed

import (
	"fmt"
	"math/rand"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// Options configures a distributed cleaning run.
type Options struct {
	// Workers is the number of simulated worker nodes (default 4).
	Workers int
	// Core carries the per-worker stand-alone pipeline options.
	Core core.Options
	// Seed drives centroid selection.
	Seed int64
	// SkipWeightMerge disables the Eq. 6 cross-worker weight adjustment
	// (for the ablation bench).
	SkipWeightMerge bool
}

// Result is the distributed cleaning output.
type Result struct {
	// Clean is the final gathered dataset, duplicates removed.
	Clean *dataset.Table
	// Repaired is the gathered table before duplicate elimination, tuple
	// IDs preserved from the input.
	Repaired *dataset.Table
	// PartSizes lists the tuples per worker partition.
	PartSizes []int
	// WorkerTimes holds each worker's solo stage-I+II time (workers are run
	// one at a time so the measurement is contention-free).
	WorkerTimes []time.Duration
	// PartitionDistTime is the map-side distance-matrix phase of Alg. 3;
	// PartitionHeapTime is its sequential driver-side heap assignment.
	PartitionDistTime time.Duration
	PartitionHeapTime time.Duration
	// GatherTime covers the weight merge plus the global conflict
	// resolution and deduplication.
	GatherTime time.Duration
	// Workers is the worker count the run used.
	Workers int
	// Stats aggregates the worker pipelines' stats.
	Stats core.Stats
}

// ClusterTime models the run time on an ideal cluster where every worker is
// its own node and map/reduce-style phases distribute:
//
//	distance-matrix/k + heap assignment + max(solo worker) + gather/k
//
// The host's core count would otherwise cap any measured speedup (the paper
// runs on an 11-node cluster); the model keeps the Fig. 15 / Table 6
// scaling shape hardware-independent. See DESIGN.md's substitution table.
func (r *Result) ClusterTime() time.Duration {
	var maxW time.Duration
	for _, w := range r.WorkerTimes {
		if w > maxW {
			maxW = w
		}
	}
	k := time.Duration(r.Workers)
	if k < 1 {
		k = 1
	}
	return r.PartitionDistTime/k + r.PartitionHeapTime + maxW + r.GatherTime/k
}

// Clean runs distributed MLNClean (§6): partition with Algorithm 3, clean
// every part with the stand-alone pipeline on its own goroutine —
// interleaving the Eq. 6 weight merge between weight learning and RSC — and
// gather the parts, resolving cross-part conflicts with a global FSCR pass
// and removing duplicates exactly like the stand-alone cleaner.
func Clean(dirty *dataset.Table, rs []*rules.Rule, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if dirty == nil || dirty.Len() == 0 {
		return nil, fmt.Errorf("distributed: empty input table")
	}
	coreOpts := opts.Core

	rng := rand.New(rand.NewSource(opts.Seed))
	metric := coreOpts.Metric
	if metric == nil {
		metric = defaultMetric()
	}
	parts, distTime, heapTime, err := PartitionTimed(dirty, opts.Workers, metric, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{
		PartitionDistTime: distTime,
		PartitionHeapTime: heapTime,
		Workers:           opts.Workers,
		WorkerTimes:       make([]time.Duration, len(parts)),
	}
	for _, p := range parts {
		res.PartSizes = append(res.PartSizes, p.Len())
	}

	// Per-worker stage I (index, AGP, learn). Workers run one at a time so
	// WorkerTimes are contention-free solo measurements (see ClusterTime).
	states := make([]workerState, len(parts))
	for wi := range parts {
		t0 := time.Now()
		ws := &states[wi]
		ws.stats.Tuples = parts[wi].Len()
		ix, err := index.Build(parts[wi], rs)
		if err != nil {
			return nil, fmt.Errorf("distributed: worker %d: %w", wi, err)
		}
		ws.ix = ix
		core.StageAGP(ix, workerTauOpts(coreOpts, len(parts)), &ws.stats)
		if err := core.StageLearn(ix, workerOpts(coreOpts), &ws.stats); err != nil {
			return nil, fmt.Errorf("distributed: worker %d: %w", wi, err)
		}
		res.WorkerTimes[wi] = time.Since(t0)
	}

	// Eq. 6: synchronize weights of identical γs across parts —
	// w(γ) = Σ nᵢ·wᵢ / Σ nᵢ — so sparse local evidence borrows support from
	// the other parts.
	if !opts.SkipWeightMerge {
		t0 := time.Now()
		mergeWeights(indexesOf(states))
		res.GatherTime += time.Since(t0)
	}

	// Per-worker stage I (RSC) + stage II on the part, again timed solo.
	// The per-part FSCR output is what each worker would ship alone; the
	// gather below re-derives the final table globally, so the part output
	// only contributes its (timed) cost, as on the real cluster.
	for wi := range parts {
		t0 := time.Now()
		ws := &states[wi]
		core.StageRSC(ws.ix, workerOpts(coreOpts), &ws.stats)
		core.RunFSCR(parts[wi], fusionBlocks(ws.ix), workerOpts(coreOpts), &ws.stats)
		res.WorkerTimes[wi] += time.Since(t0)
	}

	// Gather (§6: "conflicts and duplicates are eliminated in the same way
	// to stand-alone MLNClean"): run a global conflict resolution over the
	// union of all workers' blocks and deduplicate. The global FSCR fuses
	// from the ORIGINAL dirty tuples — the union blocks already carry every
	// worker's stage-I repairs, and fusing from the per-part FSCR outputs
	// would move the observation baseline of the minimality prior, letting
	// compounding double-fusions through. The per-part FSCR outputs remain
	// what each worker would ship alone (and what WorkerTimes measures).
	t0 := time.Now()
	globalBlocks := unionFusionBlocks(indexesOf(states), rs)
	var gatherStats core.Stats
	repaired := core.RunFSCR(dirty, globalBlocks, workerOpts(coreOpts), &gatherStats)
	clean, dups := Dedup(repaired)
	res.GatherTime += time.Since(t0)

	res.Repaired = repaired
	res.Clean = clean
	for wi := range states {
		s := states[wi].stats
		res.Stats.Tuples += s.Tuples
		res.Stats.Blocks = s.Blocks
		res.Stats.AbnormalGroups += s.AbnormalGroups
		res.Stats.AbnormalPieces += s.AbnormalPieces
		res.Stats.RSCRepairs += s.RSCRepairs
		res.Stats.FSCRCellChanges += s.FSCRCellChanges
		res.Stats.FusionFailures += s.FusionFailures
		res.Stats.LearnIterations += s.LearnIterations
	}
	res.Stats.FSCRCellChanges += gatherStats.FSCRCellChanges
	for _, d := range dups {
		res.Stats.DuplicatesRemoved += len(d) - 1
	}
	return res, nil
}

func workerOpts(o core.Options) core.Options {
	// Workers share the trace (it is mutex-guarded) and all other options.
	return o
}

// workerTauOpts scales the AGP threshold to partition-local group sizes: a
// group of n tuples lands ~n/k of them in each part, so the per-worker τ is
// ⌈τ/k⌉ (never below 1 unless AGP is disabled outright).
func workerTauOpts(o core.Options, workers int) core.Options {
	if o.TauSet && o.Tau == 0 {
		return o
	}
	tau := o.Tau
	if tau <= 0 {
		tau = 1
	}
	scaled := (tau + workers - 1) / workers
	if scaled < 1 {
		scaled = 1
	}
	o.Tau = scaled
	o.TauSet = true
	return o
}

// workerState is one worker's in-flight pipeline state.
type workerState struct {
	ix    *index.Index
	stats core.Stats
	err   error
}

func indexesOf(states []workerState) []*index.Index {
	out := make([]*index.Index, len(states))
	for i := range states {
		out[i] = states[i].ix
	}
	return out
}

// mergeWeights applies Eq. 6 across the workers' indexes: every piece with
// the same rule and the same values gets the support-weighted mean of its
// per-part learned weights.
func mergeWeights(indexes []*index.Index) {
	type agg struct {
		sumNW float64
		sumN  float64
	}
	global := make(map[string]*agg)
	key := func(ruleID, pieceKey string) string { return ruleID + "\x1e" + pieceKey }
	for _, ix := range indexes {
		if ix == nil {
			continue
		}
		for _, b := range ix.Blocks {
			for _, g := range b.Groups {
				for _, p := range g.Pieces {
					k := key(b.Rule.ID, p.Key())
					a := global[k]
					if a == nil {
						a = &agg{}
						global[k] = a
					}
					n := float64(p.Count())
					a.sumNW += n * p.Weight
					a.sumN += n
				}
			}
		}
	}
	for _, ix := range indexes {
		if ix == nil {
			continue
		}
		for _, b := range ix.Blocks {
			for _, g := range b.Groups {
				for _, p := range g.Pieces {
					if a := global[key(b.Rule.ID, p.Key())]; a != nil && a.sumN > 0 {
						p.Weight = a.sumNW / a.sumN
					}
				}
			}
		}
	}
}

// fusionBlocks converts a worker's cleaned index into FSCR inputs.
func fusionBlocks(ix *index.Index) []*core.FusionBlock {
	blocks := make([]*core.FusionBlock, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		fb := &core.FusionBlock{Rule: b.Rule, Attrs: b.Rule.Attrs(), Versions: make(map[int]*index.Piece)}
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				fb.Candidates = append(fb.Candidates, p)
				for _, id := range p.TupleIDs {
					fb.Versions[id] = p
				}
			}
		}
		blocks[bi] = fb
	}
	return blocks
}

// unionFusionBlocks builds global FSCR inputs from every worker's blocks:
// per rule, the tuple→piece assignments of all workers plus the union of
// their candidate pieces (deduplicated by value, keeping the merged
// weight). This is the gather step's global conflict-resolution state.
func unionFusionBlocks(indexes []*index.Index, rs []*rules.Rule) []*core.FusionBlock {
	blocks := make([]*core.FusionBlock, len(rs))
	for ri, r := range rs {
		blocks[ri] = &core.FusionBlock{Rule: r, Attrs: r.Attrs(), Versions: make(map[int]*index.Piece)}
	}
	seen := make([]map[string]bool, len(rs))
	for i := range seen {
		seen[i] = make(map[string]bool)
	}
	for _, ix := range indexes {
		if ix == nil {
			continue
		}
		for bi, b := range ix.Blocks {
			fb := blocks[bi]
			for _, g := range b.Groups {
				for _, p := range g.Pieces {
					if !seen[bi][p.Key()] {
						seen[bi][p.Key()] = true
						fb.Candidates = append(fb.Candidates, p)
					}
					for _, id := range p.TupleIDs {
						fb.Versions[id] = p
					}
				}
			}
		}
	}
	return blocks
}

// Dedup removes exact-duplicate tuples, keeping the lowest-ID
// representative; exported for the gather step and tests.
func Dedup(tb *dataset.Table) (*dataset.Table, [][]int) {
	out := dataset.NewTable(tb.Schema)
	firstSeen := make(map[string]bool)
	members := make(map[string][]int)
	var order []string
	for _, t := range tb.Tuples {
		k := dataset.JoinKey(t.Values)
		if !firstSeen[k] {
			firstSeen[k] = true
			order = append(order, k)
			out.Tuples = append(out.Tuples, t.Clone())
		}
		members[k] = append(members[k], t.ID)
	}
	var dups [][]int
	for _, k := range order {
		if ids := members[k]; len(ids) > 1 {
			dups = append(dups, ids)
		}
	}
	return out, dups
}

// defaultMetric returns the metric used when none is configured
// (Levenshtein, the paper's default).
func defaultMetric() distance.Metric { return distance.Levenshtein{} }
