package distributed

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mlnclean/internal/core"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/mln"
	"mlnclean/internal/rules"
)

// The executor's message boundary. Every message is plain old data —
// strings, ints, floats, slices of the same — so a transport may marshal it
// across a process boundary; EncodeMessage/DecodeMessage provide the gob
// framing an RPC transport would use, and GobTransport exercises it on every
// message in-process.
//
// Protocol, per worker slot w (coordinator → worker unless noted):
//
//	Init            schema + rules + partition lease; sent once, first
//	TupleBatch      0+ partition shipments (streamed, batched)
//	StartStageI     partition complete → worker builds its index, runs
//	                AGP + weight learning, replies with WeightSummaries (↑)
//	MergedWeights   the Eq. 6 reduce result → worker applies it, runs
//	                RSC + its local FSCR, replies with FusionResult (↑)
//	                and terminates
//	Heartbeat       (↑) periodic liveness beacon while the worker holds a
//	                lease; carries the count of protocol replies sent so the
//	                coordinator can detect a lost reply
//
// Fault tolerance: Init leases one logical partition to one physical worker
// slot under an epoch. When the coordinator declares a worker dead it bumps
// the partition's epoch and replays the full Init/TupleBatch/StartStageI
// (and, mid-stage-II, MergedWeights) sequence onto a fresh slot; workers
// silently discard messages from epochs other than their lease's, and the
// coordinator discards replies stamped with a stale epoch, so a
// falsely-declared-dead worker's late replies are inert.
type Message interface{ isMessage() }

// Init bootstraps a worker with the table schema, the rule set, and (when
// HasOpts) the serializable pipeline options the coordinator derived for its
// workers. Locally spawned workers receive their options in-process and may
// ignore the wire copy (which cannot carry custom Metric implementations or
// a Trace); out-of-process workers reconstruct core.Options from it.
//
// Partition and Epoch are the lease: Worker is the physical slot the message
// routes to, Partition the logical partition the slot now owns, and Epoch
// the lease generation (0 on first dispatch, incremented per re-dispatch
// after a failure). HeartbeatNS > 0 asks the worker to emit a Heartbeat at
// that interval while it holds the lease.
type Init struct {
	Worker      int
	Partition   int
	Epoch       int
	HeartbeatNS int64
	SchemaAttrs []string
	Rules       []WireRule
	Opts        WireCoreOptions
	HasOpts     bool
}

// WireCoreOptions is the serializable subset of core.Options shipped to
// out-of-process workers. Metric crosses as its ByName flag name; Trace does
// not cross at all.
type WireCoreOptions struct {
	Tau                int
	TauSet             bool
	Metric             string
	AGPStrategy        int
	MergeCapRatio      float64
	MaxFusionStates    int
	MinimalityPrior    float64
	MinimalityPriorSet bool
	KeepDuplicates     bool
	// DisablePlanner crosses so coordinator and workers plan identically:
	// a worker must not plan its partition scan when the coordinator's run
	// has the planner off.
	DisablePlanner bool
	// Materialize crosses so the coordinator's escape hatch reaches the
	// workers: with it set they build their full partition index before any
	// cleaning instead of streaming blocks from the iterator. Output is
	// identical either way; older peers decode it as false (streaming).
	Materialize bool
	Parallelism int
	Learn       mln.LearnOptions
	// RunID correlates worker-side log lines with the coordinator's run.
	// Purely observational — decoding it as empty (older peers) is fine.
	RunID string
}

// coreOptsToWire projects the serializable fields of o.
func coreOptsToWire(o core.Options) WireCoreOptions {
	return WireCoreOptions{
		Tau:                o.Tau,
		TauSet:             o.TauSet,
		Metric:             distance.MetricName(o.Metric),
		AGPStrategy:        int(o.AGPStrategy),
		MergeCapRatio:      o.MergeCapRatio,
		MaxFusionStates:    o.MaxFusionStates,
		MinimalityPrior:    o.MinimalityPrior,
		MinimalityPriorSet: o.MinimalityPriorSet,
		KeepDuplicates:     o.KeepDuplicates,
		DisablePlanner:     o.DisablePlanner,
		Materialize:        o.Materialize,
		Parallelism:        o.Parallelism,
		Learn:              o.Learn,
		RunID:              o.RunID,
	}
}

// coreOptsFromWire reconstructs core.Options on an out-of-process worker.
func coreOptsFromWire(w WireCoreOptions) core.Options {
	return core.Options{
		Tau:                w.Tau,
		TauSet:             w.TauSet,
		Metric:             distance.ByName(w.Metric),
		AGPStrategy:        core.AGPStrategy(w.AGPStrategy),
		MergeCapRatio:      w.MergeCapRatio,
		MaxFusionStates:    w.MaxFusionStates,
		MinimalityPrior:    w.MinimalityPrior,
		MinimalityPriorSet: w.MinimalityPriorSet,
		KeepDuplicates:     w.KeepDuplicates,
		DisablePlanner:     w.DisablePlanner,
		Materialize:        w.Materialize,
		Parallelism:        w.Parallelism,
		Learn:              w.Learn,
		RunID:              w.RunID,
	}
}

// TupleBatch ships one batch of partition tuples to a worker. IDs are the
// tuples' global table IDs; Rows the values in schema order. Epoch must
// match the worker's current lease or the batch is discarded.
type TupleBatch struct {
	Worker int
	Epoch  int
	IDs    []int
	Rows   [][]string
}

// StartStageI signals that the worker's partition is complete. SkipLearn
// tells the worker the coordinator already holds a learned weight vector for
// this rule set (the serving model cache, or a recovery re-dispatch after
// the Eq. 6 merge already ran): the worker runs AGP but skips weight
// learning, replies with empty summaries, and waits for the weights to
// arrive as MergedWeights.
type StartStageI struct {
	Worker    int
	Epoch     int
	SkipLearn bool
}

// WeightSummaries is the worker's reply after AGP + weight learning: one
// Eq. 6 summary per piece of its local index, plus the measured stage time.
// A non-empty Err aborts the run. Partition/Epoch echo the worker's lease;
// the coordinator discards stale-epoch replies.
type WeightSummaries struct {
	Worker    int
	Partition int
	Epoch     int
	Summaries []index.PieceSummary
	ElapsedNS int64
	Err       string
}

// MergedWeights broadcasts the reduced Eq. 6 weights back to a worker. An
// empty Merged list (SkipWeightMerge) leaves local weights untouched.
type MergedWeights struct {
	Worker int
	Epoch  int
	Merged []index.PieceSummary
}

// FusionResult is the worker's final reply: its post-RSC blocks (the
// candidate pieces the global gather fuses over), its pipeline stats, and
// the measured RSC + local-FSCR time. A non-empty Err aborts the run.
type FusionResult struct {
	Worker    int
	Partition int
	Epoch     int
	PartSize  int
	Blocks    []WireFusionBlock
	Stats     core.Stats
	ElapsedNS int64
	Err       string
}

// Heartbeat is a worker's periodic liveness beacon while it holds a lease.
// Sent is the count of protocol replies the worker has successfully handed
// to its transport this incarnation: a Sent greater than the count of
// replies the coordinator has received exposes a reply lost in flight, so
// detection does not have to wait for a full silence timeout.
type Heartbeat struct {
	Worker    int
	Partition int
	Epoch     int
	Sent      int
}

// WorkerAttached is an upward transport-level signal that slot Worker was
// claimed by a remote worker process. It starts the slot's silence clock:
// with remotely attaching workers the coordinator must not time out a slot
// nobody has claimed yet (the fleet may just be late), but once claimed, a
// worker that dies even before its first heartbeat must still be detected.
type WorkerAttached struct {
	Worker int
}

// WireFusionBlock is one rule's post-RSC pieces; block order matches the
// rule order of Init.
type WireFusionBlock struct {
	Pieces []WirePiece
}

// WirePiece is the serializable form of an index.Piece.
type WirePiece struct {
	Reason   []string
	Result   []string
	TupleIDs []int
	Weight   float64
}

// WireRule is the serializable form of a rules.Rule.
type WireRule struct {
	ID     string
	Kind   int
	Reason []WirePattern
	Result []WirePattern
}

// WirePattern mirrors rules.Pattern.
type WirePattern struct {
	Attr  string
	Const string
	Op    string
}

func (Init) isMessage()            {}
func (TupleBatch) isMessage()      {}
func (StartStageI) isMessage()     {}
func (WeightSummaries) isMessage() {}
func (MergedWeights) isMessage()   {}
func (FusionResult) isMessage()    {}
func (Heartbeat) isMessage()       {}
func (WorkerAttached) isMessage()  {}

func init() {
	gob.Register(Init{})
	gob.Register(TupleBatch{})
	gob.Register(StartStageI{})
	gob.Register(WeightSummaries{})
	gob.Register(MergedWeights{})
	gob.Register(FusionResult{})
	gob.Register(Heartbeat{})
	gob.Register(WorkerAttached{})
}

// EncodeMessage frames a message for the wire. Serialized sizes feed the
// transport byte counters (the channel transport never serializes, so its
// traffic does not count — by design, nothing crossed a wire).
func EncodeMessage(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return nil, fmt.Errorf("distributed: encode %T: %w", m, err)
	}
	mSendBytes.Add(int64(buf.Len()))
	return buf.Bytes(), nil
}

// DecodeMessage is the inverse of EncodeMessage.
func DecodeMessage(b []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("distributed: decode message: %w", err)
	}
	mRecvBytes.Add(int64(len(b)))
	return m, nil
}

// rulesToWire converts a rule set for shipment.
func rulesToWire(rs []*rules.Rule) []WireRule {
	out := make([]WireRule, len(rs))
	for i, r := range rs {
		out[i] = WireRule{
			ID:     r.ID,
			Kind:   int(r.Kind),
			Reason: patternsToWire(r.Reason),
			Result: patternsToWire(r.Result),
		}
	}
	return out
}

func patternsToWire(ps []rules.Pattern) []WirePattern {
	out := make([]WirePattern, len(ps))
	for i, p := range ps {
		out[i] = WirePattern{Attr: p.Attr, Const: p.Const, Op: p.Op}
	}
	return out
}

// rulesFromWire reconstructs the rule set on the worker side.
func rulesFromWire(ws []WireRule) ([]*rules.Rule, error) {
	out := make([]*rules.Rule, len(ws))
	for i, w := range ws {
		r, err := rules.New(w.ID, rules.Kind(w.Kind), patternsFromWire(w.Reason), patternsFromWire(w.Result))
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func patternsFromWire(ws []WirePattern) []rules.Pattern {
	out := make([]rules.Pattern, len(ws))
	for i, w := range ws {
		out[i] = rules.Pattern{Attr: w.Attr, Const: w.Const, Op: w.Op}
	}
	return out
}

// blocksToWire serializes a worker's post-RSC index blocks.
func blocksToWire(ix *index.Index) []WireFusionBlock {
	out := make([]WireFusionBlock, len(ix.Blocks))
	for bi, b := range ix.Blocks {
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				out[bi].Pieces = append(out[bi].Pieces, WirePiece{
					Reason:   p.Reason(),
					Result:   p.Result(),
					TupleIDs: append([]int(nil), p.TupleIDs...),
					Weight:   p.Weight,
				})
			}
		}
	}
	return out
}
