package distributed

import "mlnclean/internal/obs"

var (
	mRuns = obs.Default().Counter("mlnclean_executor_runs_total",
		"Completed distributed cleaning runs.")
	mRunSeconds = obs.Default().Histogram("mlnclean_executor_run_seconds",
		"End-to-end wall time of a distributed run (partitioning through gather).", obs.DefBuckets)
	mBatchSendSeconds = obs.Default().Histogram("mlnclean_executor_batch_send_seconds",
		"Per-chunk coordinator-to-worker batch send latency.", obs.DefBuckets)
	mGatherSeconds = obs.Default().Histogram("mlnclean_executor_gather_seconds",
		"Coordinator gather time (Eq. 6 reduce + global FSCR + dedup).", obs.DefBuckets)
	mWorkerStageI = obs.Default().Histogram("mlnclean_executor_worker_stage_seconds",
		"Per-worker measured stage time as reported in protocol replies.", obs.DefBuckets, obs.L("stage", "1"))
	mWorkerStageII = obs.Default().Histogram("mlnclean_executor_worker_stage_seconds",
		"", obs.DefBuckets, obs.L("stage", "2"))
	mHeartbeatGap = obs.Default().Histogram("mlnclean_executor_heartbeat_gap_seconds",
		"Observed gap between consecutive signs of life from a leased worker.", obs.DefBuckets)
	mLeaseReplays = obs.Default().Counter("mlnclean_executor_lease_replays_total",
		"Partitions re-leased to a fresh worker slot after a declared death.")
	mSendBytes = obs.Default().Counter("mlnclean_transport_send_bytes_total",
		"Serialized message bytes produced for the wire (gob/HTTP transports).")
	mRecvBytes = obs.Default().Counter("mlnclean_transport_recv_bytes_total",
		"Serialized message bytes decoded off the wire (gob/HTTP transports).")
)
