package distributed

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

func randomTable(seed int64, rows int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	letters := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < rows; i++ {
		tb.MustAppend(letters[rng.Intn(len(letters))], letters[rng.Intn(len(letters))])
	}
	return tb
}

// TestPartitionCompleteAndBalanced: every tuple lands in exactly one part
// and no part exceeds ⌈|T|/k⌉.
func TestPartitionCompleteAndBalanced(t *testing.T) {
	f := func(seed int64, rowsRaw, kRaw uint8) bool {
		rows := int(rowsRaw%60) + 1
		k := int(kRaw%6) + 1
		tb := randomTable(seed, rows)
		parts, err := Partition(tb, k, distance.Levenshtein{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if k > rows {
			k = rows
		}
		capacity := (rows + k - 1) / k
		var ids []int
		for _, p := range parts {
			if p.Len() > capacity {
				return false
			}
			for _, tp := range p.Tuples {
				ids = append(ids, tp.ID)
			}
		}
		if len(ids) != rows {
			return false
		}
		sort.Ints(ids)
		for i, id := range ids {
			if i != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartitionValidation(t *testing.T) {
	tb := randomTable(1, 10)
	if _, err := Partition(tb, 0, distance.Levenshtein{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=0 should fail")
	}
	empty := dataset.NewTable(tb.Schema)
	if _, err := Partition(empty, 2, distance.Levenshtein{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty table should fail")
	}
	// k larger than |T| clamps.
	parts, err := Partition(tb, 50, distance.Levenshtein{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Errorf("parts = %d, want clamped to 10", len(parts))
	}
}

func TestPartitionDeterminism(t *testing.T) {
	tb := randomTable(3, 40)
	a, _ := Partition(tb, 4, distance.Levenshtein{}, rand.New(rand.NewSource(9)))
	b, _ := Partition(tb, 4, distance.Levenshtein{}, rand.New(rand.NewSource(9)))
	for i := range a {
		if d := a[i].Diff(b[i]); len(d) != 0 {
			t.Fatalf("part %d differs across identical seeds", i)
		}
	}
}

func TestMergeWeightsEq6(t *testing.T) {
	// Two "workers" hold the same γ with different weights and supports:
	// the merged weight is the support-weighted mean (Eq. 6).
	r := rules.MustParseStrings("FD: A -> B")[0]
	mk := func(n int, w float64) *index.Index {
		tb := dataset.NewTable(dataset.MustSchema("A", "B"))
		for i := 0; i < n; i++ {
			tb.MustAppend("k", "v")
		}
		ix, err := index.Build(tb, []*rules.Rule{r})
		if err != nil {
			t.Fatal(err)
		}
		ix.Blocks[0].Groups[0].Pieces[0].Weight = w
		return ix
	}
	ix1 := mk(3, 0.9) // n=3, w=0.9
	ix2 := mk(1, 0.1) // n=1, w=0.1
	mergeWeights([]*index.Index{ix1, ix2})
	want := (3*0.9 + 1*0.1) / 4
	for _, ix := range []*index.Index{ix1, ix2} {
		got := ix.Blocks[0].Groups[0].Pieces[0].Weight
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("merged weight = %v, want %v", got, want)
		}
	}
}

// TestDedupProperties: for random tables, Dedup is idempotent, keeps the
// lowest-ID representative of every duplicate set, and its member groups
// partition the input tuple IDs.
func TestDedupProperties(t *testing.T) {
	f := func(seed int64, rowsRaw uint8) bool {
		rows := int(rowsRaw%50) + 1
		tb := randomTable(seed, rows)
		out, dups := Dedup(tb)

		// Member groups partition the input IDs: collect them from the
		// output representatives plus the reported duplicate sets.
		seen := make(map[int]int)
		for _, tp := range out.Tuples {
			seen[tp.ID]++
		}
		for _, group := range dups {
			if len(group) < 2 {
				return false
			}
			rep := group[0]
			for _, id := range group {
				if id < rep {
					return false // representative must be the lowest ID
				}
				if id != rep {
					seen[id]++
				}
			}
			if seen[rep] != 1 {
				return false // representative must be in the output exactly once
			}
		}
		if len(seen) != rows {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}

		// Lowest-ID representative: every output tuple's ID is the minimum
		// over the input tuples sharing its values.
		minID := make(map[string]int)
		for _, tp := range tb.Tuples {
			k := dataset.JoinKey(tp.Values)
			if cur, ok := minID[k]; !ok || tp.ID < cur {
				minID[k] = tp.ID
			}
		}
		for _, tp := range out.Tuples {
			if tp.ID != minID[dataset.JoinKey(tp.Values)] {
				return false
			}
		}

		// Idempotence: deduplicating the output changes nothing.
		again, dups2 := Dedup(out)
		if len(dups2) != 0 || again.Len() != out.Len() {
			return false
		}
		return len(again.Diff(out)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMergeWeightsProperty: on a two-worker fixture with random supports and
// weights, the merged weight is exactly the hand-computed Eq. 6
// support-weighted mean, on both workers' indexes.
func TestMergeWeightsProperty(t *testing.T) {
	r := rules.MustParseStrings("FD: A -> B")[0]
	mk := func(n int, w float64) *index.Index {
		tb := dataset.NewTable(dataset.MustSchema("A", "B"))
		for i := 0; i < n; i++ {
			tb.MustAppend("k", "v")
		}
		ix, err := index.Build(tb, []*rules.Rule{r})
		if err != nil {
			t.Fatal(err)
		}
		ix.Blocks[0].Groups[0].Pieces[0].Weight = w
		return ix
	}
	f := func(n1Raw, n2Raw uint8, w1Raw, w2Raw uint16) bool {
		n1, n2 := int(n1Raw%40)+1, int(n2Raw%40)+1
		w1, w2 := float64(w1Raw)/65535, float64(w2Raw)/65535
		ix1, ix2 := mk(n1, w1), mk(n2, w2)
		mergeWeights([]*index.Index{ix1, ix2})
		want := (float64(n1)*w1 + float64(n2)*w2) / float64(n1+n2)
		for _, ix := range []*index.Index{ix1, ix2} {
			got := ix.Blocks[0].Groups[0].Pieces[0].Weight
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDedupKeepsLowestID(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A"))
	tb.MustAppend("x")
	tb.MustAppend("x")
	tb.MustAppend("y")
	out, dups := Dedup(tb)
	if out.Len() != 2 || out.Tuples[0].ID != 0 {
		t.Errorf("dedup result: %v", out)
	}
	if len(dups) != 1 || dups[0][0] != 0 {
		t.Errorf("dups = %v", dups)
	}
}

func TestDistributedMatchesStandaloneQuality(t *testing.T) {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 150, Measures: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Clean(inj.Dirty, rs, Options{Workers: 3, Seed: 1, Core: core.Options{Tau: 2}})
	if err != nil {
		t.Fatal(err)
	}
	qs := eval.RepairQuality(truth, inj.Dirty, solo.Repaired)
	qd := eval.RepairQuality(truth, inj.Dirty, dist.Repaired)
	t.Logf("stand-alone F1 = %.3f, distributed F1 = %.3f", qs.F1, qd.F1)
	if qd.F1 < qs.F1-0.15 {
		t.Errorf("distributed F1 %.3f too far below stand-alone %.3f", qd.F1, qs.F1)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := Clean(nil, nil, Options{}); err == nil {
		t.Error("nil table should fail")
	}
}

func TestWorkerTauScaling(t *testing.T) {
	o := workerTauOpts(core.Options{Tau: 10}, 4)
	if o.Tau != 3 {
		t.Errorf("scaled tau = %d, want ⌈10/4⌉ = 3", o.Tau)
	}
	o = workerTauOpts(core.Options{Tau: 1}, 8)
	if o.Tau != 1 {
		t.Errorf("scaled tau = %d, want floor 1", o.Tau)
	}
	o = workerTauOpts(core.Options{Tau: 0, TauSet: true}, 4)
	if o.Tau != 0 {
		t.Errorf("disabled AGP must stay disabled, got %d", o.Tau)
	}
}

func TestClusterTimeModel(t *testing.T) {
	r := &Result{
		Workers:           4,
		PartitionDistTime: 400 * time.Millisecond,
		PartitionHeapTime: 10 * time.Millisecond,
		WorkerTimes:       []time.Duration{50 * time.Millisecond, 80 * time.Millisecond},
		GatherTime:        40 * time.Millisecond,
	}
	want := 100*time.Millisecond + 10*time.Millisecond + 80*time.Millisecond + 10*time.Millisecond
	if got := r.ClusterTime(); got != want {
		t.Errorf("ClusterTime = %v, want %v", got, want)
	}
}
