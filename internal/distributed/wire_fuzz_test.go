package distributed

import (
	"testing"

	"mlnclean/internal/index"
)

// FuzzDecodeMessage hammers the gob wire framing with arbitrary bytes: a
// malformed frame must come back as an error, never a panic or a hang — a
// worker reading a half-written socket, or a hostile peer, must not be able
// to take the coordinator down. Valid frames seed the corpus so mutations
// explore the interesting prefix space.
func FuzzDecodeMessage(f *testing.F) {
	seeds := []Message{
		Init{Worker: 1, Partition: 1, Epoch: 2, HeartbeatNS: 1e9,
			SchemaAttrs: []string{"A", "B"},
			Rules:       []WireRule{{ID: "r", Kind: 1, Reason: []WirePattern{{Attr: "A"}}, Result: []WirePattern{{Attr: "B"}}}}},
		TupleBatch{Worker: 0, Epoch: 1, IDs: []int{1, 2}, Rows: [][]string{{"x", "y"}, {"z", "w"}}},
		StartStageI{Worker: 3, Epoch: 1, SkipLearn: true},
		WeightSummaries{Worker: 2, Partition: 2, Epoch: 0, Summaries: []index.PieceSummary{{RuleID: "r", Key: "k", Count: 2, Weight: 0.5}}},
		MergedWeights{Worker: 1, Epoch: 3, Merged: []index.PieceSummary{{RuleID: "r", Key: "k", Count: 1, Weight: 1}}},
		FusionResult{Worker: 0, Partition: 0, Epoch: 1, PartSize: 4,
			Blocks: []WireFusionBlock{{Pieces: []WirePiece{{Reason: []string{"a"}, Result: []string{"b"}, TupleIDs: []int{1}, Weight: 0.25}}}}},
		Heartbeat{Worker: 5, Partition: 3, Epoch: 2, Sent: 1},
	}
	for _, m := range seeds {
		b, err := EncodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x7f})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return // malformed frames must error, and they did
		}
		// A frame that decoded must re-encode: the decoded value is a real
		// protocol message, not a half-initialized husk.
		if _, err := EncodeMessage(m); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
	})
}
