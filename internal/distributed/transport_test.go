package distributed

import (
	"reflect"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/index"
)

// TestMessageGobRoundTrip: every protocol message survives the wire framing
// unchanged — the property an RPC transport relies on.
func TestMessageGobRoundTrip(t *testing.T) {
	msgs := []Message{
		Init{Worker: 2, SchemaAttrs: []string{"A", "B"}, Rules: []WireRule{{
			ID:     "r1",
			Kind:   1,
			Reason: []WirePattern{{Attr: "A", Const: "x"}},
			Result: []WirePattern{{Attr: "B"}},
		}}},
		TupleBatch{Worker: 1, IDs: []int{3, 7}, Rows: [][]string{{"a", "b"}, {"c", "d"}}},
		StartStageI{Worker: 0},
		WeightSummaries{Worker: 1, ElapsedNS: 42, Summaries: []index.PieceSummary{
			{RuleID: "r1", Key: "a\x1fb", Count: 3, Weight: 0.75},
		}},
		MergedWeights{Worker: 3, Merged: []index.PieceSummary{{RuleID: "r2", Key: "k", Count: 1, Weight: 1}}},
		FusionResult{Worker: 2, PartSize: 9, ElapsedNS: 7, Stats: core.Stats{Tuples: 9, RSCRepairs: 2},
			Blocks: []WireFusionBlock{{Pieces: []WirePiece{
				{Reason: []string{"a"}, Result: []string{"b"}, TupleIDs: []int{1, 4}, Weight: 0.5},
			}}}},
	}
	for _, m := range msgs {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip of %T diverged:\n sent %#v\n got  %#v", m, m, got)
		}
	}
}

// TestTransportByName resolves the flag names and rejects unknown ones.
func TestTransportByName(t *testing.T) {
	for _, name := range []string{"", "chan", "gob"} {
		f, err := TransportByName(name)
		if err != nil || f == nil {
			t.Errorf("TransportByName(%q): %v", name, err)
		}
	}
	if _, err := TransportByName("carrier-pigeon"); err == nil {
		t.Error("unknown transport should fail")
	}
}

// TestGobTransportMatchesChan: serializing every message through the gob
// wire framing yields the identical cleaned table — the executor's output
// does not depend on messages sharing memory.
func TestGobTransportMatchesChan(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	viaChan, err := Clean(dirty, rs, Options{Workers: 4, Seed: 1, Core: core.Options{Tau: 2}, Transport: NewChanTransport})
	if err != nil {
		t.Fatal(err)
	}
	viaGob, err := Clean(dirty, rs, Options{Workers: 4, Seed: 1, Core: core.Options{Tau: 2}, Transport: NewGobTransport})
	if err != nil {
		t.Fatal(err)
	}
	if d := viaChan.Repaired.Diff(viaGob.Repaired); len(d) != 0 {
		t.Errorf("gob transport output differs from chan transport: %d cells, first %v", len(d), d[0])
	}
	if viaChan.Clean.Len() != viaGob.Clean.Len() {
		t.Errorf("deduplicated sizes differ: chan %d, gob %d", viaChan.Clean.Len(), viaGob.Clean.Len())
	}
}

// TestChanTransportClose: receives and sends fail after Close instead of
// blocking forever, and Close is idempotent.
func TestChanTransportClose(t *testing.T) {
	for name, factory := range map[string]TransportFactory{"chan": NewChanTransport, "gob": NewGobTransport} {
		tr := factory(2)
		if err := tr.ToWorker(1, StartStageI{Worker: 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m, err := tr.WorkerRecv(1); err != nil {
			t.Fatalf("%s: %v", name, err)
		} else if _, isStart := m.(StartStageI); !isStart {
			t.Fatalf("%s: got %T", name, m)
		}
		if err := tr.ToWorker(5, StartStageI{}); err == nil {
			t.Errorf("%s: out-of-range worker should fail", name)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: double close: %v", name, err)
		}
		if _, err := tr.CoordinatorRecv(); err == nil {
			t.Errorf("%s: recv after close should fail", name)
		}
		if err := tr.ToCoordinator(StartStageI{}); err == nil {
			t.Errorf("%s: send after close should fail", name)
		}
	}
}
