package distributed

import (
	"context"
	"testing"

	"mlnclean/internal/core"
)

// TestHTTPTransportEquivalence: the full executor protocol over loopback
// HTTP — every message really crossing the wire — produces output identical
// to the in-process channel transport for k ∈ {1, 2, 4} workers, and is
// deterministic across runs.
func TestHTTPTransportEquivalence(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	for _, k := range []int{1, 2, 4} {
		opts := Options{Workers: k, Seed: 1, Core: core.Options{Tau: 2}}
		ref, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d chan: %v", k, err)
		}
		opts.Transport = NewHTTPTransport
		got, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d http: %v", k, err)
		}
		if d := got.Repaired.Diff(ref.Repaired); len(d) != 0 {
			t.Errorf("k=%d: http repaired output differs from chan transport: %d cells, first %+v", k, len(d), d[0])
		}
		if got.Clean.Len() != ref.Clean.Len() {
			t.Errorf("k=%d: http clean size %d != chan %d", k, got.Clean.Len(), ref.Clean.Len())
		}
		again, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d http rerun: %v", k, err)
		}
		if d := got.Repaired.Diff(again.Repaired); len(d) != 0 {
			t.Errorf("k=%d: http output not deterministic: %d cells differ", k, len(d))
		}
	}
}

// TestHTTPTransportRemoteWorkers: a coordinator with no local workers is
// driven entirely by workers that attach through ServeHTTPWorker — the
// out-of-process deployment shape, here exercised from extra goroutines.
// The attached workers reconstruct their pipeline options from the Init
// message (optsFromInit), so this also covers the wire-options path.
func TestHTTPTransportRemoteWorkers(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	const k = 2
	opts := Options{Workers: k, Seed: 1, Core: core.Options{Tau: 2}}

	ref, err := Clean(dirty, rs, opts)
	if err != nil {
		t.Fatal(err)
	}

	var coordURL = make(chan string, 1)
	opts.Transport = func(workers int) Transport {
		tr := NewRemoteHTTPTransport("127.0.0.1:0")(workers)
		coordURL <- tr.(*httpTransport).CoordinatorURL()
		return tr
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type cleanOut struct {
		res *Result
		err error
	}
	done := make(chan cleanOut, 1)
	go func() {
		res, err := Clean(dirty, rs, opts)
		done <- cleanOut{res, err}
	}()

	url := <-coordURL
	for w := 0; w < k; w++ {
		go ServeHTTPWorker(ctx, url)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if d := out.res.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("remote-worker output differs from local: %d cells, first %+v", len(d), d[0])
	}

	// Claiming beyond k slots must be refused.
	if err := ServeHTTPWorker(ctx, url); err == nil {
		t.Error("claim after run completed should fail (transport closed or slots exhausted)")
	}
}
