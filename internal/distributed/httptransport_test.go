package distributed

import (
	"context"
	"testing"
	"time"

	"mlnclean/internal/core"
)

// TestHTTPTransportEquivalence: the full executor protocol over loopback
// HTTP — every message really crossing the wire — produces output identical
// to the in-process channel transport for k ∈ {1, 2, 4} workers, and is
// deterministic across runs.
func TestHTTPTransportEquivalence(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	for _, k := range []int{1, 2, 4} {
		opts := Options{Workers: k, Seed: 1, Core: core.Options{Tau: 2}}
		ref, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d chan: %v", k, err)
		}
		opts.Transport = NewHTTPTransport
		got, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d http: %v", k, err)
		}
		if d := got.Repaired.Diff(ref.Repaired); len(d) != 0 {
			t.Errorf("k=%d: http repaired output differs from chan transport: %d cells, first %+v", k, len(d), d[0])
		}
		if got.Clean.Len() != ref.Clean.Len() {
			t.Errorf("k=%d: http clean size %d != chan %d", k, got.Clean.Len(), ref.Clean.Len())
		}
		again, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d http rerun: %v", k, err)
		}
		if d := got.Repaired.Diff(again.Repaired); len(d) != 0 {
			t.Errorf("k=%d: http output not deterministic: %d cells differ", k, len(d))
		}
	}
}

// TestHTTPTransportRemoteWorkers: a coordinator with no local workers is
// driven entirely by workers that attach through ServeHTTPWorker — the
// out-of-process deployment shape, here exercised from extra goroutines.
// The attached workers reconstruct their pipeline options from the Init
// message (optsFromInit), so this also covers the wire-options path.
func TestHTTPTransportRemoteWorkers(t *testing.T) {
	_, dirty, rs := equivalenceFixture(t)
	const k = 2
	opts := Options{Workers: k, Seed: 1, Core: core.Options{Tau: 2}}

	ref, err := Clean(dirty, rs, opts)
	if err != nil {
		t.Fatal(err)
	}

	var coordURL = make(chan string, 1)
	opts.Transport = func(workers int) Transport {
		tr := NewRemoteHTTPTransport("127.0.0.1:0")(workers)
		coordURL <- tr.(*httpTransport).CoordinatorURL()
		return tr
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type cleanOut struct {
		res *Result
		err error
	}
	done := make(chan cleanOut, 1)
	go func() {
		res, err := Clean(dirty, rs, opts)
		done <- cleanOut{res, err}
	}()

	url := <-coordURL
	for w := 0; w < k; w++ {
		go ServeHTTPWorker(ctx, url)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if d := out.res.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("remote-worker output differs from local: %d cells, first %+v", len(d), d[0])
	}

	// Claiming beyond k slots must be refused.
	if err := ServeHTTPWorker(ctx, url); err == nil {
		t.Error("claim after run completed should fail (transport closed or slots exhausted)")
	}
}

// dropFirstSummaries swallows partition 0's first stage-I reply at the
// coordinator boundary — a reply lost in flight from a worker that believes
// it delivered. Only the coordinator goroutine touches the flag.
type dropFirstSummaries struct {
	Transport
	dropped bool
}

func (t *dropFirstSummaries) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	m, err := t.Transport.CoordinatorRecvDeadline(d)
	if err != nil {
		return m, err
	}
	if ws, ok := m.(WeightSummaries); ok && !t.dropped && ws.Partition == 0 && ws.Epoch == 0 {
		t.dropped = true
		return nil, ErrTimeout
	}
	return m, nil
}

// LocalWorkerTransport keeps the wrapped transport remote: the executor
// must not spawn local workers for it.
func (t *dropFirstSummaries) LocalWorkerTransport() Transport { return nil }

// TestHTTPTransportRemoteWorkerRecovery: when a remote worker's stage-I
// reply is lost, the heartbeat reply-count gap exposes it; the coordinator
// opens a fresh claimable slot and replays the partition, and a spare
// worker that keeps retrying /claim — the mlnworker -loop reconnect shape —
// picks it up. The worker left holding the stale lease never receives
// another message for it and drains out at close. The recovered output is
// identical to an undisturbed local run.
func TestHTTPTransportRemoteWorkerRecovery(t *testing.T) {
	dirty, rs := chaosFixture(t)
	const k = 2
	base := chaosOpts(k)

	ref, err := Clean(dirty, rs, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	coordURL := make(chan string, 1)
	opts.Transport = func(workers int) Transport {
		tr := NewRemoteHTTPTransport("127.0.0.1:0")(workers)
		coordURL <- tr.(*httpTransport).CoordinatorURL()
		return &dropFirstSummaries{Transport: tr}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type cleanOut struct {
		res *Result
		err error
	}
	done := make(chan cleanOut, 1)
	go func() {
		res, err := Clean(dirty, rs, opts)
		done <- cleanOut{res, err}
	}()

	// Three attach-loops for two primary slots: two serve the run, the
	// third backs off on claim conflicts until the recovery slot opens.
	url := <-coordURL
	for i := 0; i < 3; i++ {
		go func() {
			for ctx.Err() == nil {
				ServeHTTPWorker(ctx, url)
				select {
				case <-time.After(25 * time.Millisecond):
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want exactly 1 (the lost stage-I reply)", out.res.WorkersLost)
	}
	if d := out.res.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("recovered remote run differs from local reference: %d cells, first %+v", len(d), d[0])
	}
}

// TestHTTPTransportRemoteLateAttach: a remote fleet attaching well after
// WorkerTimeout must not be declared dead — the silence clock for a
// partition starts at its worker's first sign of life, so the run simply
// blocks until the workers appear and then completes undisturbed.
func TestHTTPTransportRemoteLateAttach(t *testing.T) {
	dirty, rs := chaosFixture(t)
	const k = 2
	base := chaosOpts(k)
	base.WorkerTimeout = 100 * time.Millisecond

	ref, err := Clean(dirty, rs, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	coordURL := make(chan string, 1)
	opts.Transport = func(workers int) Transport {
		tr := NewRemoteHTTPTransport("127.0.0.1:0")(workers)
		coordURL <- tr.(*httpTransport).CoordinatorURL()
		return tr
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type cleanOut struct {
		res *Result
		err error
	}
	done := make(chan cleanOut, 1)
	go func() {
		res, err := Clean(dirty, rs, opts)
		done <- cleanOut{res, err}
	}()

	url := <-coordURL
	time.Sleep(4 * base.WorkerTimeout) // several timeouts elapse unattached
	for w := 0; w < k; w++ {
		go ServeHTTPWorker(ctx, url)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.WorkersLost != 0 {
		t.Fatalf("late-attaching fleet was declared dead: WorkersLost = %d", out.res.WorkersLost)
	}
	if d := out.res.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("late-attach run differs from local reference: %d cells, first %+v", len(d), d[0])
	}
}
