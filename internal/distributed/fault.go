package distributed

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// The fault transport wraps any Transport and injects failures on the
// worker-facing side of the boundary — message drops, delivery delays, and
// worker crashes — at scriptable, seed-controlled points. The coordinator's
// view is untouched: from its side a faulted run looks exactly like a
// cluster losing workers, which is what the recovery layer must absorb. The
// chaos equivalence test and the recovery benchmark drive real executor
// runs through it and require the output to stay byte-identical to the
// no-failure run.

// Crash scripts the death of one physical worker slot. A crash fires at the
// slot's AtRecv-th successful message delivery (the message is swallowed,
// exactly like a process dying with bytes in its socket) or just before its
// AtSend-th protocol reply leaves, whichever point the run reaches first; a
// zero field never fires. After the crash every transport operation by that
// slot fails, so an in-process worker goroutine exits like a killed process.
type Crash struct {
	Slot   int
	AtRecv int
	AtSend int
}

// FaultPlan scripts a run's failures. Crashes are deterministic given the
// protocol (per-slot operation counters); drops and delays draw from a
// rand.Rand seeded with Seed, so a (plan, workload) pair replays the same
// fault schedule up to goroutine interleaving.
type FaultPlan struct {
	Seed int64
	// Crashes are the scripted worker deaths.
	Crashes []Crash
	// DropProb silently discards worker→coordinator sends (replies and
	// heartbeats) with this probability — the lost-in-flight message class
	// that heartbeat gap detection recovers.
	DropProb float64
	// DelayProb/MaxDelay inject a uniform [0, MaxDelay) latency on
	// worker-side transport operations with probability DelayProb,
	// reordering deliveries across workers.
	DelayProb float64
	MaxDelay  time.Duration
}

// faultState is the shared injection state: one per transport instance, seen
// by the coordinator-side wrapper and every worker-side wrapper it hands out.
type faultState struct {
	plan FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	recvs   map[int]int // successful deliveries per slot
	sends   map[int]int // protocol replies per slot
	crashed map[int]bool
}

func newFaultState(plan FaultPlan) *faultState {
	return &faultState{
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		recvs:   make(map[int]int),
		sends:   make(map[int]int),
		crashed: make(map[int]bool),
	}
}

var errWorkerCrashed = fmt.Errorf("distributed: fault injection: worker crashed")

func (st *faultState) dead(w int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.crashed[w]
}

// onRecv counts a delivery to slot w and reports whether a scripted crash
// fires at this point (the caller swallows the message).
func (st *faultState) onRecv(w int) (crash bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.recvs[w]++
	for _, c := range st.plan.Crashes {
		if c.Slot == w && c.AtRecv > 0 && st.recvs[w] == c.AtRecv && !st.crashed[w] {
			st.crashed[w] = true
			return true
		}
	}
	return false
}

// onSend counts a protocol reply from slot w, reporting a scripted
// crash-before-send or a random drop.
func (st *faultState) onSend(w int, protocol bool) (crash, drop bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if protocol {
		st.sends[w]++
		for _, c := range st.plan.Crashes {
			if c.Slot == w && c.AtSend > 0 && st.sends[w] == c.AtSend && !st.crashed[w] {
				st.crashed[w] = true
				return true, false
			}
		}
	}
	return false, st.plan.DropProb > 0 && st.rng.Float64() < st.plan.DropProb
}

func (st *faultState) maybeDelay() {
	if st.plan.DelayProb <= 0 || st.plan.MaxDelay <= 0 {
		return
	}
	st.mu.Lock()
	var d time.Duration
	if st.rng.Float64() < st.plan.DelayProb {
		d = time.Duration(st.rng.Int63n(int64(st.plan.MaxDelay)))
	}
	st.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// faultTransport wraps a transport with shared fault state. The
// coordinator-side operations pass through; WorkerRecv and ToCoordinator —
// the calls a worker incarnation makes — are where faults land.
type faultTransport struct {
	inner Transport
	st    *faultState
}

// NewFaultTransport wraps a transport factory with a failure-injection
// plan. It composes with every transport: for chan/gob the workers talk
// through the wrapper itself, for the HTTP transports the wrapper hands out
// fault-wrapped worker clients sharing the same state.
func NewFaultTransport(inner TransportFactory, plan FaultPlan) TransportFactory {
	return func(workers int) Transport {
		return &faultTransport{inner: inner(workers), st: newFaultState(plan)}
	}
}

func (t *faultTransport) ToWorker(w int, m Message) error { return t.inner.ToWorker(w, m) }

func (t *faultTransport) ToWorkerDeadline(w int, m Message, d time.Duration) error {
	return t.inner.ToWorkerDeadline(w, m, d)
}

func (t *faultTransport) WorkerRecv(w int) (Message, error) {
	if t.st.dead(w) {
		return nil, errWorkerCrashed
	}
	t.st.maybeDelay()
	m, err := t.inner.WorkerRecv(w)
	if err != nil {
		return nil, err
	}
	if t.st.onRecv(w) {
		return nil, errWorkerCrashed // crash swallows the in-flight message
	}
	return m, nil
}

func (t *faultTransport) ToCoordinator(m Message) error {
	w, protocol := upSender(m)
	if w >= 0 && t.st.dead(w) {
		return errWorkerCrashed
	}
	t.st.maybeDelay()
	crash, drop := t.st.onSend(w, protocol)
	if crash {
		return errWorkerCrashed
	}
	if drop {
		return nil // lost in flight: the sender believes it was delivered
	}
	return t.inner.ToCoordinator(m)
}

func (t *faultTransport) CoordinatorRecv() (Message, error) { return t.inner.CoordinatorRecv() }

func (t *faultTransport) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	return t.inner.CoordinatorRecvDeadline(d)
}

func (t *faultTransport) AddWorker() (int, error) { return t.inner.AddWorker() }

func (t *faultTransport) Close() error { return t.inner.Close() }

// LocalWorkerTransport keeps the wrapper composable with worker-hosting
// transports: fault-wrap whatever the inner transport hands its local
// workers (sharing this transport's fault state), or nil when workers
// attach remotely. Non-hosting transports (chan/gob) let their workers talk
// through the coordinator value, i.e. this wrapper itself.
func (t *faultTransport) LocalWorkerTransport() Transport {
	if h, ok := t.inner.(workerHoster); ok {
		wt := h.LocalWorkerTransport()
		if wt == nil {
			return nil
		}
		return &faultTransport{inner: wt, st: t.st}
	}
	return t
}

// upSender extracts the slot a worker→coordinator message is from, and
// whether it is a protocol reply (as opposed to a heartbeat). Unknown
// message shapes fault as slot -1: never crashed, still droppable.
func upSender(m Message) (slot int, protocol bool) {
	switch msg := m.(type) {
	case WeightSummaries:
		return msg.Worker, true
	case FusionResult:
		return msg.Worker, true
	case Heartbeat:
		return msg.Worker, false
	default:
		return -1, false
	}
}
