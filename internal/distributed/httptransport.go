package distributed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"mlnclean/internal/core"
)

// The HTTP transport moves the executor's messages over real HTTP on the
// gob wire framing (EncodeMessage/DecodeMessage), making the distributed
// executor genuinely distributable: workers long-poll the coordinator for
// their inbox and POST replies back, so a worker may live in any process
// that can reach the coordinator's listener.
//
// Coordinator endpoints:
//
//	POST /claim             → {"worker":w,"workers":k}; each id handed out once
//	GET  /recv?worker=w     → next gob-framed message for worker w (long poll;
//	                          410 Gone once the transport is closed)
//	POST /send              → gob-framed worker reply (204)
//
// NewHTTPTransport (flag name "http") binds to loopback and spawns its
// workers in-process, each talking to the coordinator through a real HTTP
// client — every message crosses the wire, the serving default.
// NewRemoteHTTPTransport binds to a chosen address and spawns nothing;
// workers attach from other processes with ServeHTTPWorker (cmd/mlnworker).

// httpTransport is the coordinator side: gob-framed per-worker inboxes plus
// the shared upward queue, exposed over an HTTP listener.
type httpTransport struct {
	inboxes *inboxSet[[]byte]
	up      chan []byte
	done    chan struct{}
	once    sync.Once

	srv *http.Server
	url string

	claimMu   sync.Mutex
	nextClaim int

	// redeliver holds, per worker slot, messages whose HTTP delivery failed
	// mid-write (client dropped the long poll as the coordinator dequeued).
	// They are served before the inbox channel so delivery order holds and
	// a flaky connection cannot permanently lose a protocol message.
	redeliverMu sync.Mutex
	redeliver   map[int][][]byte

	localWorkers bool
}

// NewHTTPTransport builds the loopback HTTP transport for k workers: the
// coordinator listens on a random 127.0.0.1 port and the executor's locally
// spawned workers connect back over real HTTP.
func NewHTTPTransport(workers int) Transport {
	t, err := newHTTPTransport(workers, "127.0.0.1:0", true)
	if err != nil {
		// Match the TransportFactory signature: surface the listen failure
		// through the first transport operation instead of panicking.
		return &failedTransport{err: err}
	}
	return t
}

// NewRemoteHTTPTransport returns a factory for a coordinator listening on
// addr whose workers attach from other processes via ServeHTTPWorker. The
// executor spawns no local workers; the run blocks until k workers have
// claimed slots and drained their inboxes.
//
// Fault model: transient connection failures heal (client retries + the
// coordinator's redeliver queue); a permanently lost worker process is
// detected by the executor's heartbeat timeout, which adds a fresh claimable
// slot (AddWorker) and replays the dead worker's partition onto it — a spare
// or reconnecting mlnworker picks the slot up and the run completes.
func NewRemoteHTTPTransport(addr string) TransportFactory {
	return func(workers int) Transport {
		t, err := newHTTPTransport(workers, addr, false)
		if err != nil {
			return &failedTransport{err: err}
		}
		return t
	}
}

func newHTTPTransport(workers int, addr string, localWorkers bool) (*httpTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distributed: http transport listen %s: %w", addr, err)
	}
	t := &httpTransport{
		inboxes:      newInboxSet[[]byte](workers),
		up:           make(chan []byte, 4*workers),
		done:         make(chan struct{}),
		url:          "http://" + ln.Addr().String(),
		redeliver:    make(map[int][][]byte),
		localWorkers: localWorkers,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /claim", t.handleClaim)
	mux.HandleFunc("GET /recv", t.handleRecv)
	mux.HandleFunc("POST /send", t.handleSend)
	t.srv = &http.Server{Handler: mux}
	go t.srv.Serve(ln)
	return t, nil
}

// CoordinatorURL returns the base URL workers attach to.
func (t *httpTransport) CoordinatorURL() string { return t.url }

// LocalWorkerTransport implements workerHoster: loopback transports hand the
// executor an HTTP client bound to their URL; remote transports return nil
// so the executor spawns no workers.
func (t *httpTransport) LocalWorkerTransport() Transport {
	if !t.localWorkers {
		return nil
	}
	return NewHTTPWorkerTransport(t.url)
}

func (t *httpTransport) handleClaim(w http.ResponseWriter, r *http.Request) {
	// The slot count is read under claimMu so a claim racing AddWorker (a
	// recovery re-dispatch opening a slot) cannot see the pre-growth length
	// and bounce a spare with a spurious conflict.
	t.claimMu.Lock()
	slots := t.inboxes.len()
	id := t.nextClaim
	if id < slots {
		t.nextClaim++
	}
	t.claimMu.Unlock()
	if id >= slots {
		http.Error(w, "all worker slots claimed", http.StatusConflict)
		return
	}
	// Tell the coordinator the slot is live before the worker even speaks:
	// a claimed-then-crashed worker must be detectable by silence, while an
	// unclaimed slot must never time out (the fleet may just be late). The
	// handler must not block on a full upward queue (recovery depends on
	// spares being able to claim at any moment), but the signal must not be
	// lost either — a worker that dies before its first beacon would
	// otherwise stay exempt from detection forever — so a full queue hands
	// delivery to a goroutine that waits the congestion out.
	if b, err := EncodeMessage(WorkerAttached{Worker: id}); err == nil {
		select {
		case t.up <- b:
		default:
			go func() {
				select {
				case t.up <- b:
				case <-t.done:
				}
			}()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"worker": id, "workers": slots})
}

func (t *httpTransport) handleRecv(w http.ResponseWriter, r *http.Request) {
	var wid int
	if _, err := fmt.Sscanf(r.URL.Query().Get("worker"), "%d", &wid); err != nil {
		http.Error(w, "bad worker id", http.StatusBadRequest)
		return
	}
	inbox, err := t.inboxes.get(wid)
	if err != nil {
		http.Error(w, "bad worker id", http.StatusBadRequest)
		return
	}
	b := t.popRedeliver(wid)
	if b == nil {
		select {
		case b = <-inbox:
		case <-t.done:
			http.Error(w, "transport closed", http.StatusGone)
			return
		case <-r.Context().Done():
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(b); err != nil {
		t.pushRedeliver(wid, b)
		return
	}
	// Force the response onto the wire: a small write sits in the buffer
	// and would "succeed" even after the client vanished, silently losing
	// the dequeued message.
	if err := http.NewResponseController(w).Flush(); err != nil {
		t.pushRedeliver(wid, b)
	}
}

// popRedeliver takes the oldest failed-delivery message for worker w, nil
// when there is none.
func (t *httpTransport) popRedeliver(w int) []byte {
	t.redeliverMu.Lock()
	defer t.redeliverMu.Unlock()
	q := t.redeliver[w]
	if len(q) == 0 {
		return nil
	}
	b := q[0]
	if len(q) == 1 {
		delete(t.redeliver, w)
	} else {
		t.redeliver[w] = q[1:]
	}
	return b
}

// pushRedeliver re-queues a message whose HTTP write failed, behind any
// earlier failures, for the worker's next poll.
func (t *httpTransport) pushRedeliver(w int, b []byte) {
	t.redeliverMu.Lock()
	t.redeliver[w] = append(t.redeliver[w], b)
	t.redeliverMu.Unlock()
}

func (t *httpTransport) handleSend(w http.ResponseWriter, r *http.Request) {
	b, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case t.up <- b:
		w.WriteHeader(http.StatusNoContent)
	case <-t.done:
		http.Error(w, "transport closed", http.StatusGone)
	}
}

func (t *httpTransport) ToWorker(w int, m Message) error {
	return t.ToWorkerDeadline(w, m, 0)
}

func (t *httpTransport) ToWorkerDeadline(w int, m Message, d time.Duration) error {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return err
	}
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	return sendInbox(ch, b, t.done, d)
}

// WorkerRecv on the coordinator value reads the worker's inbox directly; it
// exists so the transport satisfies the full interface, but HTTP workers
// receive through /recv, never through this method.
func (t *httpTransport) WorkerRecv(w int) (Message, error) {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return nil, err
	}
	b, err := recvInbox(ch, t.done, 0)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(b)
}

func (t *httpTransport) ToCoordinator(m Message) error {
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	select {
	case t.up <- b:
		return nil
	case <-t.done:
		return errTransportClosed
	}
}

func (t *httpTransport) CoordinatorRecv() (Message, error) {
	return t.CoordinatorRecvDeadline(0)
}

func (t *httpTransport) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	b, err := recvInbox(t.up, t.done, d)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(b)
}

// AddWorker appends a fresh claimable slot: the next /claim hands it to a
// spare or reconnecting worker process, which then drains the replayed
// partition from its inbox. The growth happens under claimMu so a claim
// racing it sees either the pre- or post-growth slot count consistently
// (handleClaim reads the count under the same lock).
func (t *httpTransport) AddWorker() (int, error) {
	select {
	case <-t.done:
		return 0, errTransportClosed
	default:
	}
	t.claimMu.Lock()
	defer t.claimMu.Unlock()
	return t.inboxes.add(), nil
}

func (t *httpTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.srv.Close()
	})
	return nil
}

// httpWorkerTransport is the worker side: a client bound to the
// coordinator's URL. WorkerRecv long-polls /recv; ToCoordinator POSTs /send.
type httpWorkerTransport struct {
	base   string
	client *http.Client
	ctx    context.Context // cancelled by Close; bounds every request
	cancel context.CancelFunc
}

// NewHTTPWorkerTransport returns the worker-side transport for a coordinator
// at base (e.g. "http://10.0.0.5:7701"). Long polls have no client timeout:
// a worker may legitimately wait minutes for MergedWeights while the slowest
// peer learns; Close aborts any in-flight request.
func NewHTTPWorkerTransport(base string) Transport {
	ctx, cancel := context.WithCancel(context.Background())
	return &httpWorkerTransport{
		base:   base,
		client: &http.Client{},
		ctx:    ctx,
		cancel: cancel,
	}
}

// recvRetries bounds WorkerRecv's retries of transient long-poll failures
// (connection resets, proxy timeouts). Retrying is what makes the
// coordinator's redeliver queue reachable: a message dequeued into a dying
// response is re-queued server-side and picked up by the retry poll. A 410
// (transport closed) or 4xx is fatal immediately.
const recvRetries = 5

func (t *httpWorkerTransport) WorkerRecv(w int) (Message, error) {
	var lastErr error
	for attempt := 0; attempt <= recvRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-t.ctx.Done():
				return nil, t.ctx.Err()
			case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(t.ctx, http.MethodGet, fmt.Sprintf("%s/recv?worker=%d", t.base, w), nil)
		if err != nil {
			return nil, err
		}
		resp, err := t.client.Do(req)
		if err != nil {
			if t.ctx.Err() != nil {
				return nil, t.ctx.Err()
			}
			lastErr = fmt.Errorf("distributed: http recv: %w", err)
			continue
		}
		b, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && readErr == nil:
			return DecodeMessage(b)
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return nil, fmt.Errorf("distributed: http recv: %s", resp.Status)
		default:
			lastErr = fmt.Errorf("distributed: http recv: %s", resp.Status)
			if readErr != nil {
				lastErr = fmt.Errorf("distributed: http recv: %w", readErr)
			}
		}
	}
	return nil, lastErr
}

func (t *httpWorkerTransport) ToCoordinator(m Message) error {
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(t.ctx, http.MethodPost, t.base+"/send", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("distributed: http send: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distributed: http send: %s", resp.Status)
	}
	return nil
}

func (t *httpWorkerTransport) ToWorker(int, Message) error {
	return fmt.Errorf("distributed: ToWorker on worker-side http transport")
}

func (t *httpWorkerTransport) ToWorkerDeadline(int, Message, time.Duration) error {
	return fmt.Errorf("distributed: ToWorker on worker-side http transport")
}

func (t *httpWorkerTransport) CoordinatorRecv() (Message, error) {
	return nil, fmt.Errorf("distributed: CoordinatorRecv on worker-side http transport")
}

func (t *httpWorkerTransport) CoordinatorRecvDeadline(time.Duration) (Message, error) {
	return nil, fmt.Errorf("distributed: CoordinatorRecv on worker-side http transport")
}

func (t *httpWorkerTransport) AddWorker() (int, error) {
	return 0, fmt.Errorf("distributed: AddWorker on worker-side http transport")
}

func (t *httpWorkerTransport) Close() error {
	t.cancel()
	t.client.CloseIdleConnections()
	return nil
}

// ServeHTTPWorker attaches one worker to the coordinator at base: it claims
// the next free worker slot and runs the standard worker loop over HTTP,
// reconstructing its pipeline options from the Init message. It returns when
// the run completes, ctx is cancelled, or the coordinator goes away.
func ServeHTTPWorker(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/claim", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("distributed: claim worker slot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distributed: claim worker slot: %s", resp.Status)
	}
	var claim struct{ Worker, Workers int }
	if err := json.NewDecoder(resp.Body).Decode(&claim); err != nil {
		return fmt.Errorf("distributed: claim worker slot: %w", err)
	}
	tr := NewHTTPWorkerTransport(base)
	defer tr.Close()
	stop := context.AfterFunc(ctx, func() { tr.Close() })
	defer stop()
	workerMain(ctx, tr, claim.Worker, core.Options{}, true)
	return ctx.Err()
}

// failedTransport reports a construction error through every operation, so
// a TransportFactory that cannot listen still satisfies the interface.
type failedTransport struct{ err error }

func (t *failedTransport) ToWorker(int, Message) error                            { return t.err }
func (t *failedTransport) ToWorkerDeadline(int, Message, time.Duration) error     { return t.err }
func (t *failedTransport) WorkerRecv(int) (Message, error)                        { return nil, t.err }
func (t *failedTransport) ToCoordinator(Message) error                            { return t.err }
func (t *failedTransport) CoordinatorRecv() (Message, error)                      { return nil, t.err }
func (t *failedTransport) CoordinatorRecvDeadline(time.Duration) (Message, error) { return nil, t.err }
func (t *failedTransport) AddWorker() (int, error)                                { return 0, t.err }
func (t *failedTransport) Close() error                                           { return nil }
