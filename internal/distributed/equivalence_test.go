package distributed

import (
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
	"mlnclean/internal/rules"
)

// equivalenceFixture generates a seeded HAI table with injected errors.
func equivalenceFixture(t *testing.T) (*dataset.Table, *dataset.Table, []*rules.Rule) {
	t.Helper()
	// Groups must stay deep enough (Measures per provider) that an 8-way
	// partition leaves each part real group support; shallow groups fragment
	// to singletons and degrade every partitioned configuration alike.
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 80, Measures: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	return truth, inj.Dirty, rs
}

// TestConcurrentEquivalence: for a seeded generated table, the concurrent
// executor's cleaned output is deterministic across runs, and its
// precision/recall/F1 stays within a fixed tolerance of the serial
// stand-alone pipeline, for k ∈ {1, 2, 4, 8} workers.
func TestConcurrentEquivalence(t *testing.T) {
	truth, dirty, rs := equivalenceFixture(t)
	solo, err := core.Clean(dirty, rs, core.Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := eval.RepairQuality(truth, dirty, solo.Repaired)
	const tol = 0.15

	for _, k := range []int{1, 2, 4, 8} {
		opts := Options{Workers: k, Seed: 1, Core: core.Options{Tau: 2}}
		first, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		second, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatalf("k=%d rerun: %v", k, err)
		}
		if d := first.Repaired.Diff(second.Repaired); len(d) != 0 {
			t.Errorf("k=%d: repaired output not deterministic: %d differing cells, first %v", k, len(d), d[0])
		}
		if d := first.Clean.Diff(second.Clean); first.Clean.Len() != second.Clean.Len() || len(d) != 0 {
			t.Errorf("k=%d: deduplicated output not deterministic", k)
		}
		q := eval.RepairQuality(truth, dirty, first.Repaired)
		t.Logf("k=%d: P=%.3f R=%.3f F1=%.3f (stand-alone P=%.3f R=%.3f F1=%.3f)",
			k, q.Precision, q.Recall, q.F1, qs.Precision, qs.Recall, qs.F1)
		if q.F1 < qs.F1-tol {
			t.Errorf("k=%d: F1 %.3f more than %.2f below stand-alone %.3f", k, q.F1, tol, qs.F1)
		}
		if q.Precision < qs.Precision-tol {
			t.Errorf("k=%d: precision %.3f more than %.2f below stand-alone %.3f", k, q.Precision, tol, qs.Precision)
		}
		if q.Recall < qs.Recall-tol {
			t.Errorf("k=%d: recall %.3f more than %.2f below stand-alone %.3f", k, q.Recall, tol, qs.Recall)
		}
	}
}

// TestExecutorSubmitStreaming: batched ingest through Submit preserves every
// tuple, keeps partitions balanced under the running capacity, is
// deterministic, and cleans with quality comparable to the whole-table path.
func TestExecutorSubmitStreaming(t *testing.T) {
	truth, dirty, rs := equivalenceFixture(t)

	run := func() *Result {
		ex, err := NewExecutor(dirty.Schema, rs, Options{Workers: 4, Seed: 1, Core: core.Options{Tau: 2}, BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		// Feed the table in three uneven batches.
		bounds := []int{dirty.Len() / 5, dirty.Len() / 2, dirty.Len()}
		lo := 0
		for _, hi := range bounds {
			batch := dataset.NewTable(dirty.Schema)
			for _, tp := range dirty.Tuples[lo:hi] {
				batch.MustAppend(tp.Values...)
			}
			if err := ex.Submit(batch); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		res, err := ex.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run()
	if res.Repaired.Len() != dirty.Len() {
		t.Fatalf("streaming lost tuples: %d != %d", res.Repaired.Len(), dirty.Len())
	}
	for i, tp := range res.Repaired.Tuples {
		if tp.ID != i {
			t.Fatalf("tuple %d has ID %d, want sequential re-IDs", i, tp.ID)
		}
	}
	total, maxPart := 0, 0
	for _, n := range res.PartSizes {
		total += n
		if n > maxPart {
			maxPart = n
		}
	}
	if total != dirty.Len() {
		t.Errorf("partition sizes sum to %d, want %d", total, dirty.Len())
	}
	if capacity := (dirty.Len() + 3) / 4; maxPart > capacity {
		t.Errorf("partition of %d tuples exceeds running capacity %d", maxPart, capacity)
	}
	q := eval.RepairQuality(truth, dirty, res.Repaired)
	t.Logf("streaming F1 = %.3f, parts = %v", q.F1, res.PartSizes)
	if q.F1 < 0.7 {
		t.Errorf("streaming F1 = %.3f, want ≥ 0.7", q.F1)
	}

	again := run()
	if d := res.Repaired.Diff(again.Repaired); len(d) != 0 {
		t.Errorf("streaming output not deterministic: %d differing cells", len(d))
	}
}

// TestExecutorMoreWorkersThanTuples: workers beyond the tuple count receive
// empty partitions and the run still completes.
func TestExecutorMoreWorkersThanTuples(t *testing.T) {
	rs := rules.MustParseStrings("FD: A -> B")
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for _, row := range [][]string{{"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "3"}, {"z", "4"}} {
		tb.MustAppend(row...)
	}
	ex, err := NewExecutor(tb.Schema, rs, Options{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Submit(tb); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired.Len() != tb.Len() {
		t.Errorf("repaired %d tuples, want %d", res.Repaired.Len(), tb.Len())
	}
}

// TestExecutorMisuse: schema mismatches and post-Run submissions fail
// cleanly, and an empty run reports an error.
func TestExecutorMisuse(t *testing.T) {
	rs := rules.MustParseStrings("FD: A -> B")
	schema := dataset.MustSchema("A", "B")

	ex, err := NewExecutor(schema, rs, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err == nil {
		t.Error("empty run should fail")
	}
	if err := ex.Submit(dataset.NewTable(schema)); err == nil {
		t.Error("submit after run should fail")
	}

	ex2, err := NewExecutor(schema, rs, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := dataset.NewTable(dataset.MustSchema("X"))
	bad.MustAppend("v")
	if err := ex2.Submit(bad); err == nil {
		t.Error("mismatched batch schema should fail")
	}
	tb := dataset.NewTable(schema)
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "2")
	if err := ex2.Submit(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := ex2.Run(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewExecutor(nil, rs, Options{}); err == nil {
		t.Error("nil schema should fail")
	}
	if _, err := NewExecutor(schema, nil, Options{}); err == nil {
		t.Error("empty rule set should fail")
	}

	// Close releases an abandoned executor; Run and Submit fail afterwards.
	ex3, err := NewExecutor(schema, rs, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex3.Close()
	ex3.Close() // idempotent
	if err := ex3.Submit(tb); err == nil {
		t.Error("submit after close should fail")
	}
	if _, err := ex3.Run(); err == nil {
		t.Error("run after close should fail")
	}
}

// TestCleanKeepDuplicates: the distributed gather honors
// Core.KeepDuplicates like the stand-alone cleaner does.
func TestCleanKeepDuplicates(t *testing.T) {
	rs := rules.MustParseStrings("FD: A -> B")
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	tb.MustAppend("y", "2")

	res, err := Clean(tb, rs, Options{Workers: 2, Seed: 1, Core: core.Options{KeepDuplicates: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean.Len() != tb.Len() {
		t.Errorf("keep-duplicates dropped rows: %d != %d", res.Clean.Len(), tb.Len())
	}
	if res.Stats.DuplicatesRemoved != 0 {
		t.Errorf("DuplicatesRemoved = %d with KeepDuplicates", res.Stats.DuplicatesRemoved)
	}

	res, err = Clean(tb, rs, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean.Len() != 2 || res.Stats.DuplicatesRemoved != 1 {
		t.Errorf("default dedup: clean=%d removed=%d, want 2 and 1", res.Clean.Len(), res.Stats.DuplicatesRemoved)
	}
}
