package distributed

import (
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
)

func TestDistributedSmoke(t *testing.T) {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 120, Measures: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clean(inj.Dirty, rs, Options{Workers: 4, Seed: 1, Core: core.Options{Tau: 2}})
	if err != nil {
		t.Fatal(err)
	}
	q := eval.RepairQuality(truth, inj.Dirty, res.Repaired)
	t.Logf("distributed HAI 5%% (4 workers): P=%.3f R=%.3f F1=%.3f parts=%v cluster=%v",
		q.Precision, q.Recall, q.F1, res.PartSizes, res.ClusterTime())
	if q.F1 < 0.75 {
		t.Errorf("distributed F1 = %.3f, want ≥ 0.75", q.F1)
	}
	total := 0
	for _, n := range res.PartSizes {
		total += n
	}
	if total != truth.Len() {
		t.Errorf("partition lost tuples: %d != %d", total, truth.Len())
	}
}
