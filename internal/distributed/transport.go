package distributed

import (
	"fmt"
	"sync"
)

// Transport moves protocol messages between the coordinator and its k
// workers. Messages to one peer are delivered in send order; sends apply
// backpressure when a peer's inbox is full. Every message crossing the
// interface is plain serializable data (see wire.go), so an implementation
// is free to marshal it across a process boundary — ChanTransport passes
// values in-process, GobTransport additionally round-trips every message
// through its gob wire framing, and HTTPTransport (httptransport.go) moves
// the same framing over real HTTP so workers can run out of process.
type Transport interface {
	// ToWorker delivers m to worker w's inbox.
	ToWorker(w int, m Message) error
	// WorkerRecv blocks until the next coordinator message for worker w.
	WorkerRecv(w int) (Message, error)
	// ToCoordinator delivers a worker reply to the coordinator.
	ToCoordinator(m Message) error
	// CoordinatorRecv blocks until the next worker reply.
	CoordinatorRecv() (Message, error)
	// Close tears the transport down; blocked and future calls fail.
	Close() error
}

// TransportFactory builds a transport sized for a worker count; the executor
// calls it after clamping the worker count to the table size.
type TransportFactory func(workers int) Transport

// TransportByName resolves a transport factory from its flag name.
func TransportByName(name string) (TransportFactory, error) {
	switch name {
	case "", "chan":
		return NewChanTransport, nil
	case "gob":
		return NewGobTransport, nil
	case "http":
		return NewHTTPTransport, nil
	default:
		return nil, fmt.Errorf("distributed: unknown transport %q (chan|gob|http)", name)
	}
}

// chanTransport is the in-process transport: one buffered inbox channel per
// worker plus a shared upward channel. Message values cross goroutines
// directly, without marshalling.
type chanTransport struct {
	down []chan Message
	up   chan Message
	done chan struct{}
	once sync.Once
}

// NewChanTransport builds the in-process channel transport for k workers.
func NewChanTransport(workers int) Transport {
	t := &chanTransport{
		down: make([]chan Message, workers),
		up:   make(chan Message, 4*workers),
		done: make(chan struct{}),
	}
	for w := range t.down {
		t.down[w] = make(chan Message, 64)
	}
	return t
}

func (t *chanTransport) ToWorker(w int, m Message) error {
	if w < 0 || w >= len(t.down) {
		return fmt.Errorf("distributed: no worker %d", w)
	}
	select {
	case <-t.done:
		return errTransportClosed
	default:
	}
	select {
	case t.down[w] <- m:
		return nil
	case <-t.done:
		return errTransportClosed
	}
}

func (t *chanTransport) WorkerRecv(w int) (Message, error) {
	if w < 0 || w >= len(t.down) {
		return nil, fmt.Errorf("distributed: no worker %d", w)
	}
	select {
	case <-t.done:
		return nil, errTransportClosed
	default:
	}
	select {
	case m := <-t.down[w]:
		return m, nil
	case <-t.done:
		return nil, errTransportClosed
	}
}

func (t *chanTransport) ToCoordinator(m Message) error {
	select {
	case <-t.done:
		return errTransportClosed
	default:
	}
	select {
	case t.up <- m:
		return nil
	case <-t.done:
		return errTransportClosed
	}
}

func (t *chanTransport) CoordinatorRecv() (Message, error) {
	select {
	case <-t.done:
		return nil, errTransportClosed
	default:
	}
	select {
	case m := <-t.up:
		return m, nil
	case <-t.done:
		return nil, errTransportClosed
	}
}

func (t *chanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

var errTransportClosed = fmt.Errorf("distributed: transport closed")

// gobTransport is the channel transport with every message gob-encoded on
// send and decoded on receive — the in-process stand-in for an RPC
// transport, proving on every run that the message boundary is serializable.
type gobTransport struct {
	down []chan []byte
	up   chan []byte
	done chan struct{}
	once sync.Once
}

// NewGobTransport builds the serializing transport for k workers.
func NewGobTransport(workers int) Transport {
	t := &gobTransport{
		down: make([]chan []byte, workers),
		up:   make(chan []byte, 4*workers),
		done: make(chan struct{}),
	}
	for w := range t.down {
		t.down[w] = make(chan []byte, 64)
	}
	return t
}

func (t *gobTransport) ToWorker(w int, m Message) error {
	if w < 0 || w >= len(t.down) {
		return fmt.Errorf("distributed: no worker %d", w)
	}
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return errTransportClosed
	default:
	}
	select {
	case t.down[w] <- b:
		return nil
	case <-t.done:
		return errTransportClosed
	}
}

func (t *gobTransport) WorkerRecv(w int) (Message, error) {
	if w < 0 || w >= len(t.down) {
		return nil, fmt.Errorf("distributed: no worker %d", w)
	}
	select {
	case <-t.done:
		return nil, errTransportClosed
	default:
	}
	select {
	case b := <-t.down[w]:
		return DecodeMessage(b)
	case <-t.done:
		return nil, errTransportClosed
	}
}

func (t *gobTransport) ToCoordinator(m Message) error {
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return errTransportClosed
	default:
	}
	select {
	case t.up <- b:
		return nil
	case <-t.done:
		return errTransportClosed
	}
}

func (t *gobTransport) CoordinatorRecv() (Message, error) {
	select {
	case <-t.done:
		return nil, errTransportClosed
	default:
	}
	select {
	case b := <-t.up:
		return DecodeMessage(b)
	case <-t.done:
		return nil, errTransportClosed
	}
}

func (t *gobTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
