package distributed

import (
	"fmt"
	"sync"
	"time"
)

// Transport moves protocol messages between the coordinator and its worker
// slots. Messages to one peer are delivered in send order; sends apply
// backpressure when a peer's inbox is full. Every message crossing the
// interface is plain serializable data (see wire.go), so an implementation
// is free to marshal it across a process boundary — ChanTransport passes
// values in-process, GobTransport additionally round-trips every message
// through its gob wire framing, and HTTPTransport (httptransport.go) moves
// the same framing over real HTTP so workers can run out of process.
//
// The deadline variants and AddWorker are the fault-tolerance surface: the
// coordinator bounds every send and gather receive so a dead worker cannot
// wedge it, and grows the transport by a fresh slot when it re-dispatches a
// dead worker's partition (fresh slots never share an inbox with a stale
// incarnation, so no epoch can steal another's messages).
type Transport interface {
	// ToWorker delivers m to worker slot w's inbox.
	ToWorker(w int, m Message) error
	// ToWorkerDeadline is ToWorker bounded by d (d <= 0 blocks like
	// ToWorker); it returns ErrTimeout when the inbox stays full for d.
	ToWorkerDeadline(w int, m Message, d time.Duration) error
	// WorkerRecv blocks until the next coordinator message for slot w.
	WorkerRecv(w int) (Message, error)
	// ToCoordinator delivers a worker reply to the coordinator.
	ToCoordinator(m Message) error
	// CoordinatorRecv blocks until the next worker reply.
	CoordinatorRecv() (Message, error)
	// CoordinatorRecvDeadline is CoordinatorRecv bounded by d (d <= 0
	// blocks); it returns ErrTimeout when no reply arrives within d.
	CoordinatorRecvDeadline(d time.Duration) (Message, error)
	// AddWorker grows the transport by one fresh worker slot (recovery
	// re-dispatch) and returns its id.
	AddWorker() (int, error)
	// Close tears the transport down; blocked and future calls fail.
	Close() error
}

// TransportFactory builds a transport sized for a worker count; the executor
// calls it after clamping the worker count to the table size.
type TransportFactory func(workers int) Transport

// ErrTimeout is returned by the deadline-bounded transport operations when
// the deadline expires; the coordinator's failure detector treats it as "no
// news", not as a transport fault.
var ErrTimeout = fmt.Errorf("distributed: transport deadline exceeded")

// TransportByName resolves a transport factory from its flag name.
func TransportByName(name string) (TransportFactory, error) {
	switch name {
	case "", "chan":
		return NewChanTransport, nil
	case "gob":
		return NewGobTransport, nil
	case "http":
		return NewHTTPTransport, nil
	default:
		return nil, fmt.Errorf("distributed: unknown transport %q (chan|gob|http)", name)
	}
}

// inboxSet is the growable per-slot inbox table shared by the in-process
// transports: a mutex-guarded slice of channels so AddWorker can append a
// fresh slot while workers receive concurrently.
type inboxSet[T any] struct {
	mu   sync.RWMutex
	down []chan T
}

func newInboxSet[T any](workers int) *inboxSet[T] {
	s := &inboxSet[T]{down: make([]chan T, workers)}
	for w := range s.down {
		s.down[w] = make(chan T, 64)
	}
	return s
}

func (s *inboxSet[T]) get(w int) (chan T, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if w < 0 || w >= len(s.down) {
		return nil, fmt.Errorf("distributed: no worker %d", w)
	}
	return s.down[w], nil
}

func (s *inboxSet[T]) add() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = append(s.down, make(chan T, 64))
	return len(s.down) - 1
}

func (s *inboxSet[T]) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.down)
}

// sendInbox delivers v to ch honoring the transport's done channel and an
// optional deadline (d <= 0 blocks until delivery or close).
func sendInbox[T any](ch chan T, v T, done chan struct{}, d time.Duration) error {
	select {
	case <-done:
		return errTransportClosed
	default:
	}
	if d <= 0 {
		select {
		case ch <- v:
			return nil
		case <-done:
			return errTransportClosed
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case ch <- v:
		return nil
	case <-done:
		return errTransportClosed
	case <-t.C:
		return ErrTimeout
	}
}

// recvInbox receives from ch honoring done and an optional deadline.
func recvInbox[T any](ch chan T, done chan struct{}, d time.Duration) (T, error) {
	var zero T
	select {
	case <-done:
		return zero, errTransportClosed
	default:
	}
	if d <= 0 {
		select {
		case v := <-ch:
			return v, nil
		case <-done:
			return zero, errTransportClosed
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-ch:
		return v, nil
	case <-done:
		return zero, errTransportClosed
	case <-t.C:
		return zero, ErrTimeout
	}
}

// chanTransport is the in-process transport: one buffered inbox channel per
// worker slot plus a shared upward channel. Message values cross goroutines
// directly, without marshalling.
type chanTransport struct {
	inboxes *inboxSet[Message]
	up      chan Message
	done    chan struct{}
	once    sync.Once
}

// NewChanTransport builds the in-process channel transport for k workers.
func NewChanTransport(workers int) Transport {
	return &chanTransport{
		inboxes: newInboxSet[Message](workers),
		up:      make(chan Message, 4*workers),
		done:    make(chan struct{}),
	}
}

func (t *chanTransport) ToWorker(w int, m Message) error {
	return t.ToWorkerDeadline(w, m, 0)
}

func (t *chanTransport) ToWorkerDeadline(w int, m Message, d time.Duration) error {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return err
	}
	return sendInbox(ch, m, t.done, d)
}

func (t *chanTransport) WorkerRecv(w int) (Message, error) {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return nil, err
	}
	return recvInbox(ch, t.done, 0)
}

func (t *chanTransport) ToCoordinator(m Message) error {
	return sendInbox(t.up, m, t.done, 0)
}

func (t *chanTransport) CoordinatorRecv() (Message, error) {
	return recvInbox(t.up, t.done, 0)
}

func (t *chanTransport) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	return recvInbox(t.up, t.done, d)
}

func (t *chanTransport) AddWorker() (int, error) {
	select {
	case <-t.done:
		return 0, errTransportClosed
	default:
	}
	return t.inboxes.add(), nil
}

func (t *chanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

var errTransportClosed = fmt.Errorf("distributed: transport closed")

// gobTransport is the channel transport with every message gob-encoded on
// send and decoded on receive — the in-process stand-in for an RPC
// transport, proving on every run that the message boundary is serializable.
type gobTransport struct {
	inboxes *inboxSet[[]byte]
	up      chan []byte
	done    chan struct{}
	once    sync.Once
}

// NewGobTransport builds the serializing transport for k workers.
func NewGobTransport(workers int) Transport {
	return &gobTransport{
		inboxes: newInboxSet[[]byte](workers),
		up:      make(chan []byte, 4*workers),
		done:    make(chan struct{}),
	}
}

func (t *gobTransport) ToWorker(w int, m Message) error {
	return t.ToWorkerDeadline(w, m, 0)
}

func (t *gobTransport) ToWorkerDeadline(w int, m Message, d time.Duration) error {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return err
	}
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	return sendInbox(ch, b, t.done, d)
}

func (t *gobTransport) WorkerRecv(w int) (Message, error) {
	ch, err := t.inboxes.get(w)
	if err != nil {
		return nil, err
	}
	b, err := recvInbox(ch, t.done, 0)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(b)
}

func (t *gobTransport) ToCoordinator(m Message) error {
	b, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	return sendInbox(t.up, b, t.done, 0)
}

func (t *gobTransport) CoordinatorRecv() (Message, error) {
	return t.CoordinatorRecvDeadline(0)
}

func (t *gobTransport) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	b, err := recvInbox(t.up, t.done, d)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(b)
}

func (t *gobTransport) AddWorker() (int, error) {
	select {
	case <-t.done:
		return 0, errTransportClosed
	default:
	}
	return t.inboxes.add(), nil
}

func (t *gobTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
