package distributed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

// chaosFixture is a smaller seeded table than equivalenceFixture: the chaos
// grid runs dozens of full cleans, so each one must stay cheap while groups
// stay deep enough for an 8-way partition.
func chaosFixture(t *testing.T) (*dataset.Table, []*rules.Rule) {
	t.Helper()
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 40, Measures: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	return inj.Dirty, rs
}

// chaosSeeds is the fixed seed list the CI chaos job runs; CHAOS_SEEDS
// (comma-separated) overrides it.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 7}
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		seeds = seeds[:0]
		for _, f := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: %v", err)
			}
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// chaosPlan scripts a seed's failures: an early crash at message receipt, a
// crash just before the first reply leaves, and a crash of the first
// recovery slot (k) so a re-dispatched partition dies again; plus random
// upward drops and delivery delays.
func chaosPlan(seed int64, k int) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	return FaultPlan{
		Seed: seed,
		Crashes: []Crash{
			{Slot: rng.Intn(k), AtRecv: 1 + rng.Intn(3)},
			{Slot: rng.Intn(k), AtSend: 1},
			{Slot: k, AtRecv: 2},
		},
		DropProb:  0.03,
		DelayProb: 0.2,
		MaxDelay:  2 * time.Millisecond,
	}
}

// chaosOpts are fault-detection timings scaled for tests: beacons every
// 20ms, death after 250ms of silence.
func chaosOpts(k int) Options {
	return Options{
		Workers:           k,
		Seed:              1,
		Core:              core.Options{Tau: 2},
		HeartbeatInterval: 20 * time.Millisecond,
		WorkerTimeout:     250 * time.Millisecond,
	}
}

// TestCrashRecoveryEquivalence is the randomized crash/recovery equivalence
// suite: for every transport and k ∈ {2, 4, 8}, a run with scripted worker
// crashes, random reply drops, and random delivery delays must produce
// byte-identical repairs, dedup, and merged Eq. 6 weights to the
// no-failure run — recovery re-runs only the lost partition's work, and the
// merge is a pure reduce, so nothing downstream can tell a failure
// happened.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid is not short")
	}
	dirty, rs := chaosFixture(t)
	seeds := chaosSeeds(t)
	transports := []struct {
		name    string
		factory TransportFactory
	}{
		{"chan", NewChanTransport},
		{"gob", NewGobTransport},
		{"http", NewHTTPTransport},
	}
	for _, tr := range transports {
		for _, k := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/k=%d", tr.name, k), func(t *testing.T) {
				t.Parallel()
				opts := chaosOpts(k)
				opts.Transport = tr.factory
				ref, err := Clean(dirty, rs, opts)
				if err != nil {
					t.Fatalf("no-failure run: %v", err)
				}
				if ref.WorkersLost != 0 {
					t.Fatalf("no-failure run lost %d workers", ref.WorkersLost)
				}
				for _, seed := range seeds {
					fopts := chaosOpts(k)
					fopts.Transport = NewFaultTransport(tr.factory, chaosPlan(seed, k))
					got, err := Clean(dirty, rs, fopts)
					if err != nil {
						t.Fatalf("seed %d: faulted run: %v", seed, err)
					}
					if got.WorkersLost == 0 {
						t.Errorf("seed %d: scripted crashes but WorkersLost = 0", seed)
					}
					if d := got.Repaired.Diff(ref.Repaired); len(d) != 0 {
						t.Errorf("seed %d: repaired output diverged after recovery: %d cells, first %+v", seed, len(d), d[0])
					}
					if got.Clean.Len() != ref.Clean.Len() {
						t.Errorf("seed %d: clean size %d != %d", seed, got.Clean.Len(), ref.Clean.Len())
					} else if d := got.Clean.Diff(ref.Clean); len(d) != 0 {
						t.Errorf("seed %d: deduplicated output diverged: %d cells", seed, len(d))
					}
					if !reflect.DeepEqual(got.MergedWeights, ref.MergedWeights) {
						t.Errorf("seed %d: merged Eq. 6 weights diverged after recovery", seed)
					}
					// Even on recovered runs the per-worker ClusterTime
					// breakdown must be complete: every partition reports the
					// stage times of the lease that produced its final result.
					if got.ClusterTime() <= 0 {
						t.Errorf("seed %d: ClusterTime = %v on a recovered run", seed, got.ClusterTime())
					}
					for w := range got.WorkerTimes {
						if got.WorkerTimes[w] <= 0 {
							t.Errorf("seed %d: WorkerTimes[%d] = %v, want > 0", seed, w, got.WorkerTimes[w])
						}
						if got.WorkerStageITimes[w] <= 0 || got.WorkerStageIITimes[w] <= 0 {
							t.Errorf("seed %d: worker %d stage breakdown incomplete: I=%v II=%v",
								seed, w, got.WorkerStageITimes[w], got.WorkerStageIITimes[w])
						}
						if got.WorkerTimes[w] != got.WorkerStageITimes[w]+got.WorkerStageIITimes[w] {
							t.Errorf("seed %d: WorkerTimes[%d] != stage I + stage II", seed, w)
						}
					}
					if got.RunID == "" || got.RunID == ref.RunID {
						t.Errorf("seed %d: run IDs not distinct per run: %q vs %q", seed, got.RunID, ref.RunID)
					}
					t.Logf("seed %d: recovered %d lost workers, output byte-identical", seed, got.WorkersLost)
				}
			})
		}
	}
}

// TestRecoveryStreamingSubmit: a worker lost under the streaming ingest
// path (Submit batches, then Run) recovers from the recorded shipments and
// the result matches the unfaulted streaming run.
func TestRecoveryStreamingSubmit(t *testing.T) {
	dirty, rs := chaosFixture(t)
	run := func(factory TransportFactory) *Result {
		opts := chaosOpts(4)
		opts.Transport = factory
		opts.BatchSize = 64
		ex, err := NewExecutor(dirty.Schema, rs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < dirty.Len(); lo += 128 {
			hi := lo + 128
			if hi > dirty.Len() {
				hi = dirty.Len()
			}
			batch := dataset.NewTable(dirty.Schema)
			for _, tp := range dirty.Tuples[lo:hi] {
				batch.MustAppend(tp.Values...)
			}
			if err := ex.Submit(batch); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ex.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(NewChanTransport)
	got := run(NewFaultTransport(NewChanTransport, FaultPlan{
		Seed:    3,
		Crashes: []Crash{{Slot: 1, AtSend: 1}, {Slot: 2, AtRecv: 4}},
	}))
	if got.WorkersLost == 0 {
		t.Error("scripted crashes but WorkersLost = 0")
	}
	if d := got.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("streaming recovery diverged: %d cells, first %+v", len(d), d[0])
	}
}

// TestRecoveryDuringIngest: a worker that dies while its partition is still
// being shipped (its inbox fills, the send deadline trips) is recovered on
// the ship path: the partition is re-leased and the recorded batches
// replayed, and the run's output matches the unfaulted one. BatchSize 2
// forces well over 64 chunks per partition, so the dead worker's inbox
// genuinely fills.
func TestRecoveryDuringIngest(t *testing.T) {
	dirty, rs := chaosFixture(t)
	run := func(factory TransportFactory) *Result {
		opts := chaosOpts(2)
		opts.Transport = factory
		opts.BatchSize = 2
		opts.SendTimeout = 200 * time.Millisecond
		res, err := Clean(dirty, rs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(NewChanTransport)
	got := run(NewFaultTransport(NewChanTransport, FaultPlan{
		Crashes: []Crash{{Slot: 0, AtRecv: 2}},
	}))
	if got.WorkersLost == 0 {
		t.Error("worker died mid-ingest but WorkersLost = 0")
	}
	if d := got.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("ingest-phase recovery diverged: %d cells, first %+v", len(d), d[0])
	}

	// The replacement dying while its replay is still streaming (slot 2 is
	// the first recovery slot for k=2) must spend more budget and land on a
	// third slot, not abort the run.
	again := run(NewFaultTransport(NewChanTransport, FaultPlan{
		Crashes: []Crash{{Slot: 0, AtRecv: 2}, {Slot: 2, AtRecv: 2}},
	}))
	if again.WorkersLost < 2 {
		t.Errorf("replacement died mid-replay but WorkersLost = %d, want ≥ 2", again.WorkersLost)
	}
	if d := again.Repaired.Diff(ref.Repaired); len(d) != 0 {
		t.Errorf("double ingest-phase recovery diverged: %d cells, first %+v", len(d), d[0])
	}
}

// TestRecoveryBudget: a cluster that kills every worker it is handed —
// including every recovery slot — must converge on the budget error rather
// than re-dispatching forever.
func TestRecoveryBudget(t *testing.T) {
	dirty, rs := chaosFixture(t)
	crashes := make([]Crash, 0, 8)
	for slot := 0; slot < 8; slot++ {
		crashes = append(crashes, Crash{Slot: slot, AtRecv: 1})
	}
	opts := chaosOpts(2)
	opts.Transport = NewFaultTransport(NewChanTransport, FaultPlan{Crashes: crashes})
	opts.MaxRecoveries = 3
	_, err := Clean(dirty, rs, opts)
	if err == nil || !strings.Contains(err.Error(), "recovery budget") {
		t.Fatalf("exhausted cluster: err = %v, want recovery budget error", err)
	}
}

// TestRecoveryDisabled: a negative WorkerTimeout restores the old
// block-until-reply behavior — no detection, no recovery — which the
// context watcher still bounds.
func TestRecoveryDisabled(t *testing.T) {
	dirty, rs := chaosFixture(t)
	opts := chaosOpts(2)
	opts.WorkerTimeout = -1
	opts.Transport = NewFaultTransport(NewChanTransport, FaultPlan{
		Crashes: []Crash{{Slot: 0, AtRecv: 1}},
	})
	done := make(chan error, 1)
	ex, err := NewExecutor(dirty.Schema, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Submit(dirty); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := ex.Run()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("run with a dead worker and detection disabled returned: %v", err)
	case <-time.After(600 * time.Millisecond):
	}
	ex.Close()
	if err := <-done; err == nil {
		t.Fatal("closed run returned nil error")
	}
}

// TestHeartbeatsDisabledDisablesDetection: disabling heartbeats without
// explicitly choosing a silence timeout must disable failure detection too —
// a busy worker sends nothing upward mid-stage, so the default 10s timeout
// would misread any long stage as a death. An explicit positive timeout is
// honored (the caller owns sizing it past the longest stage).
func TestHeartbeatsDisabledDisablesDetection(t *testing.T) {
	schema := dataset.MustSchema("A", "B")
	rs := rules.MustParseStrings("FD: A -> B")
	for _, tc := range []struct {
		hb, timeout, want time.Duration
	}{
		{hb: -1, timeout: 0, want: 0},
		{hb: -1, timeout: 30 * time.Second, want: 30 * time.Second},
		{hb: 0, timeout: 0, want: defaultWorkerTimeout},
	} {
		ex, err := NewExecutor(schema, rs, Options{Workers: 2, HeartbeatInterval: tc.hb, WorkerTimeout: tc.timeout})
		if err != nil {
			t.Fatal(err)
		}
		if ex.workerTimeout != tc.want {
			t.Errorf("hb=%v timeout=%v: effective worker timeout %v, want %v", tc.hb, tc.timeout, ex.workerTimeout, tc.want)
		}
		ex.Close()
	}
}

// TestSubmitAfterTransportClose: a transport torn down under a live
// executor fails the next Submit with the transport error instead of
// blocking, and the executor stays failed afterwards.
func TestSubmitAfterTransportClose(t *testing.T) {
	dirty, rs := chaosFixture(t)
	var tr Transport
	opts := chaosOpts(2)
	opts.Transport = func(k int) Transport {
		tr = NewChanTransport(k)
		return tr
	}
	ex, err := NewExecutor(dirty.Schema, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	batch := dataset.NewTable(dirty.Schema)
	for _, tp := range dirty.Tuples[:16] {
		batch.MustAppend(tp.Values...)
	}
	if err := ex.Submit(batch); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := ex.Submit(batch); !errors.Is(err, errTransportClosed) {
		t.Fatalf("Submit after transport close = %v, want %v", err, errTransportClosed)
	}
	// The failure is sticky: later calls report the recorded error.
	if err := ex.Submit(batch); !errors.Is(err, errTransportClosed) {
		t.Fatalf("second Submit after transport close = %v, want %v", err, errTransportClosed)
	}
	if _, err := ex.Run(); !errors.Is(err, errTransportClosed) {
		t.Fatalf("Run after transport close = %v, want %v", err, errTransportClosed)
	}
}

// gatherSignalTransport flags the moment the coordinator enters its gather
// receive loop, so a test can cancel mid-gather deterministically.
type gatherSignalTransport struct {
	Transport
	entered chan struct{}
	closed  chan struct{}
}

func (t *gatherSignalTransport) CoordinatorRecvDeadline(d time.Duration) (Message, error) {
	select {
	case <-t.entered:
	default:
		close(t.entered)
	}
	return t.Transport.CoordinatorRecvDeadline(d)
}

// TestCleanContextCancelMidGather: cancelling the run's context while the
// coordinator is blocked gathering worker replies aborts promptly with
// context.Canceled — the watcher tears the transport down under the gather
// loop.
func TestCleanContextCancelMidGather(t *testing.T) {
	dirty, rs := chaosFixture(t)
	sig := &gatherSignalTransport{entered: make(chan struct{})}
	opts := chaosOpts(2)
	opts.Transport = func(k int) Transport {
		sig.Transport = NewChanTransport(k)
		return sig
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := CleanContext(ctx, dirty, rs, opts)
		done <- err
	}()
	select {
	case <-sig.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never entered gather")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CleanContext cancelled mid-gather = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled mid-gather run did not return")
	}
}
