package tstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// KeySize is the fixed width of an index key: attr (2) + value (4) + row (4).
const KeySize = 10

// Key is one cell of the table as a fixed-width sortable index key in AVET
// order — attribute, value, entity — over the store's intern IDs. Big-endian
// packing makes bytes.Compare agree with (attr, value, row) tuple order, so
// every (attr), (attr, value), and (attr, value, row) prefix is one
// contiguous key range: postings and range scans are binary searches, never
// filters.
type Key [KeySize]byte

// MakeKey packs one cell.
func MakeKey(attr uint16, value uint32, row uint32) Key {
	var k Key
	binary.BigEndian.PutUint16(k[0:2], attr)
	binary.BigEndian.PutUint32(k[2:6], value)
	binary.BigEndian.PutUint32(k[6:10], row)
	return k
}

// Attr is the key's schema position.
func (k Key) Attr() uint16 { return binary.BigEndian.Uint16(k[0:2]) }

// Value is the key's interned value ID.
func (k Key) Value() uint32 { return binary.BigEndian.Uint32(k[2:6]) }

// Row is the key's tuple ID.
func (k Key) Row() uint32 { return binary.BigEndian.Uint32(k[6:10]) }

// Less orders keys like bytes.Compare.
func (k Key) Less(o Key) bool { return bytes.Compare(k[:], o[:]) < 0 }

func (k Key) String() string {
	return fmt.Sprintf("a%d/v%d/r%d", k.Attr(), k.Value(), k.Row())
}

// PrefixAV is the inclusive lower bound of the (attr, value) posting range;
// the matching exclusive upper bound is PrefixAV(attr, value+1) — value IDs
// never reach ^uint32(0), the dictionary caps far below it.
func PrefixAV(attr uint16, value uint32) Key {
	return MakeKey(attr, value, 0)
}

// PrefixA is the inclusive lower bound of an attribute's whole key range.
func PrefixA(attr uint16) Key {
	return MakeKey(attr, 0, 0)
}
