// Package tstore is the indexed tuple store under incremental serving: the
// canonical row-addressed current table, dictionary-encoded to fixed-width
// intern IDs and indexed by AVET-style sortable keys (attr, value, row), so
// "which rows carry value v in column a" — the question delta re-cleaning
// asks when mapping a mutation to affected rule blocks — is a binary search
// over one sorted key set, not a table scan.
//
// A store opened on a wal.FS is durable: every Put/Delete is gob-framed and
// appended to an internal/wal segment log before it is applied, and the log
// is compacted into a snapshot every SnapshotEvery records. Reopening the
// same FS replays snapshot + tail into the identical store — same rows, same
// dictionary IDs (replay re-interns in the original mutation order), same
// key set. A nil FS yields a volatile store with the same API; the serving
// layer mounts it that way because the session WAL is the manager's single
// durability authority and already logs mutations (see internal/server).
package tstore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"mlnclean/internal/dataset"
	"mlnclean/internal/intern"
	"mlnclean/internal/wal"
)

// Options tunes the durable layer; zero values take the wal defaults.
type Options struct {
	// SegmentSize caps one log segment (wal.Options.SegmentSize).
	SegmentSize int64
	// SnapshotEvery compacts the log into a snapshot after this many
	// records (default 256).
	SnapshotEvery int
	// NoSync skips fsync on append (tests only).
	NoSync bool
}

// Store is a mutable, indexed, optionally durable tuple table. Safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	schema *dataset.Schema
	dict   *intern.Dict
	rows   map[int][]uint32 // row ID → encoded values, schema order
	keys   []Key            // sorted AVET index over live cells
	next   int              // one past the largest row ID ever stored

	log     *wal.Log
	broken  error // first append failure; fail-stop like the session WAL
	every   int
	pending int
}

// The two log record kinds. Values travel as strings — the dictionary is
// rebuilt on replay, in mutation order, so IDs are reproducible without ever
// persisting the dictionary itself.
type recPut struct {
	Row    int
	Values []string
}
type recDelete struct {
	Row int
}

// snap is the compaction state: the whole table, rows ascending.
type snap struct {
	Next int
	IDs  []int
	Rows [][]string
}

func init() {
	gob.Register(recPut{})
	gob.Register(recDelete{})
}

// Open builds a store for the schema over fs. A nil fs yields a volatile
// store (and a nil Recovery); otherwise the existing log is replayed and its
// recovery summary returned.
func Open(schema *dataset.Schema, fs wal.FS, o Options) (*Store, *wal.Recovery, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, nil, fmt.Errorf("tstore: empty schema")
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	s := &Store{
		schema: schema,
		dict:   intern.NewDict(),
		rows:   make(map[int][]uint32),
		every:  o.SnapshotEvery,
	}
	if fs == nil {
		return s, nil, nil
	}
	log, rec, err := wal.Open(fs, wal.Options{SegmentSize: o.SegmentSize, NoSync: o.NoSync})
	if err != nil {
		return nil, nil, fmt.Errorf("tstore: open wal: %w", err)
	}
	if len(rec.Snapshot) > 0 {
		var sn snap
		if err := gob.NewDecoder(bytes.NewReader(rec.Snapshot)).Decode(&sn); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("tstore: decode snapshot: %w", err)
		}
		if len(sn.IDs) != len(sn.Rows) {
			log.Close()
			return nil, nil, fmt.Errorf("tstore: snapshot ids/rows mismatch")
		}
		for i, id := range sn.IDs {
			s.applyPut(id, sn.Rows[i])
		}
		s.next = sn.Next
	}
	for _, payload := range rec.Records {
		var r any
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("tstore: decode record: %w", err)
		}
		switch r := r.(type) {
		case recPut:
			if len(r.Values) != schema.Len() {
				log.Close()
				return nil, nil, fmt.Errorf("tstore: replayed put row %d has %d values, schema has %d",
					r.Row, len(r.Values), schema.Len())
			}
			s.applyPut(r.Row, r.Values)
		case recDelete:
			s.applyDelete(r.Row)
		default:
			log.Close()
			return nil, nil, fmt.Errorf("tstore: unknown record %T", r)
		}
	}
	s.log = log
	return s, rec, nil
}

// Close releases the log; the in-memory store stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// append durably logs one record before the caller applies it. Fail-stop: a
// failed append latches the store broken, exactly like the session WAL —
// acknowledged-durable or rejected, never silently volatile.
func (s *Store) append(rec any) error {
	if s.log == nil {
		return nil
	}
	if s.broken != nil {
		return fmt.Errorf("tstore: log broken by earlier failure: %w", s.broken)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("tstore: encode record: %w", err)
	}
	if err := s.log.Append(buf.Bytes()); err != nil {
		s.broken = err
		return fmt.Errorf("tstore: append: %w", err)
	}
	s.pending++
	return nil
}

// maybeCompact snapshots the applied state once enough records accumulated.
// Called after the record is folded in — a snapshot taken between append and
// apply would drop the in-flight record.
func (s *Store) maybeCompact() {
	if s.log == nil || s.broken != nil || s.pending < s.every {
		return
	}
	if b, err := s.encodeSnap(); err == nil {
		if err := s.log.Compact(b); err == nil {
			s.pending = 0
		}
	}
}

func (s *Store) encodeSnap() ([]byte, error) {
	sn := snap{Next: s.next}
	sn.IDs = make([]int, 0, len(s.rows))
	for id := range s.rows {
		sn.IDs = append(sn.IDs, id)
	}
	sort.Ints(sn.IDs)
	sn.Rows = make([][]string, len(sn.IDs))
	for i, id := range sn.IDs {
		sn.Rows[i] = s.decode(s.rows[id])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sn); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Put inserts or replaces one row. Row IDs are caller-assigned and dense-ish
// by convention (NextRow hands out the next fresh one); any non-negative ID
// is accepted.
func (s *Store) Put(row int, values []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if row < 0 {
		return fmt.Errorf("tstore: negative row %d", row)
	}
	if len(values) != s.schema.Len() {
		return fmt.Errorf("tstore: row %d has %d values, schema has %d", row, len(values), s.schema.Len())
	}
	if err := s.append(recPut{Row: row, Values: append([]string(nil), values...)}); err != nil {
		return err
	}
	s.applyPut(row, values)
	s.maybeCompact()
	return nil
}

// Delete removes one row; deleting an absent row is an error.
func (s *Store) Delete(row int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.rows[row]; !ok {
		return fmt.Errorf("tstore: delete of unknown row %d", row)
	}
	if err := s.append(recDelete{Row: row}); err != nil {
		return err
	}
	s.applyDelete(row)
	s.maybeCompact()
	return nil
}

func (s *Store) applyPut(row int, values []string) {
	if old, ok := s.rows[row]; ok {
		s.dropKeys(row, old)
	}
	enc := make([]uint32, len(values))
	for i, v := range values {
		enc[i] = s.dict.Intern(v)
	}
	s.rows[row] = enc
	s.addKeys(row, enc)
	if row >= s.next {
		s.next = row + 1
	}
}

func (s *Store) applyDelete(row int) {
	if old, ok := s.rows[row]; ok {
		s.dropKeys(row, old)
		delete(s.rows, row)
	}
}

func (s *Store) addKeys(row int, enc []uint32) {
	for a, v := range enc {
		k := MakeKey(uint16(a), v, uint32(row))
		at := sort.Search(len(s.keys), func(i int) bool { return !s.keys[i].Less(k) })
		s.keys = append(s.keys, Key{})
		copy(s.keys[at+1:], s.keys[at:])
		s.keys[at] = k
	}
}

func (s *Store) dropKeys(row int, enc []uint32) {
	for a, v := range enc {
		k := MakeKey(uint16(a), v, uint32(row))
		at := sort.Search(len(s.keys), func(i int) bool { return !s.keys[i].Less(k) })
		if at < len(s.keys) && s.keys[at] == k {
			s.keys = append(s.keys[:at], s.keys[at+1:]...)
		}
	}
}

func (s *Store) decode(enc []uint32) []string {
	out := make([]string, len(enc))
	for i, id := range enc {
		out[i] = s.dict.Value(id)
	}
	return out
}

// Get returns one row's values.
func (s *Store) Get(row int) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc, ok := s.rows[row]
	if !ok {
		return nil, false
	}
	return s.decode(enc), true
}

// Has reports whether the row is live.
func (s *Store) Has(row int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.rows[row]
	return ok
}

// Len is the live row count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// NextRow is the smallest fresh row ID (one past the largest ever stored —
// deleted IDs are not recycled automatically, though Put may revive one).
func (s *Store) NextRow() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.next
}

// Schema is the store's schema.
func (s *Store) Schema() *dataset.Schema { return s.schema }

// Table materializes the live rows as a dataset.Table in ascending row-ID
// order — the canonical table the cleaning pipeline consumes. The copy is
// independent of the store.
func (s *Store) Table() *dataset.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]int, 0, len(s.rows))
	for id := range s.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tb := dataset.NewTable(s.schema)
	for _, id := range ids {
		tb.Tuples = append(tb.Tuples, &dataset.Tuple{ID: id, Values: s.decode(s.rows[id])})
	}
	return tb
}

// Postings returns the rows whose attribute carries the value, ascending —
// one contiguous range of the AVET key set. Unknown attributes and values
// post nothing.
func (s *Store) Postings(attr, value string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.schema.Index(attr)
	if !ok {
		return nil
	}
	v, ok := s.dict.Lookup(value)
	if !ok {
		return nil
	}
	var out []int
	s.scanLocked(PrefixAV(uint16(a), v), PrefixAV(uint16(a), v+1), func(k Key) bool {
		out = append(out, int(k.Row()))
		return true
	})
	return out
}

// RangeScan streams the keys in [lo, hi) in sorted order until fn returns
// false. Callers compose bounds with MakeKey/PrefixA/PrefixAV.
func (s *Store) RangeScan(lo, hi Key, fn func(Key) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.scanLocked(lo, hi, fn)
}

func (s *Store) scanLocked(lo, hi Key, fn func(Key) bool) {
	at := sort.Search(len(s.keys), func(i int) bool { return !s.keys[i].Less(lo) })
	for ; at < len(s.keys) && s.keys[at].Less(hi); at++ {
		if !fn(s.keys[at]) {
			return
		}
	}
}
