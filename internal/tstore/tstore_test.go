package tstore

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/wal"
)

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("Model", "Make", "Doors")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 7}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

func TestStoreBasics(t *testing.T) {
	s, rec, err := Open(testSchema(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("volatile store returned a recovery")
	}
	if err := s.Put(s.NextRow(), []string{"tl", "acura", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(s.NextRow(), []string{"civic", "honda", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(s.NextRow(), []string{"tl", "acura", "2"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got, ok := s.Get(1); !ok || !reflect.DeepEqual(got, []string{"civic", "honda", "4"}) {
		t.Fatalf("Get(1) = %v %v", got, ok)
	}
	if got := s.Postings("Make", "acura"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Postings(Make, acura) = %v, want [0 2]", got)
	}
	if got := s.Postings("Doors", "4"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Postings(Doors, 4) = %v, want [0 1]", got)
	}
	// Replacing a row moves its keys.
	if err := s.Put(0, []string{"tl", "honda", "4"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Postings("Make", "acura"); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("after update, Postings(Make, acura) = %v, want [2]", got)
	}
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Postings("Make", "acura"); len(got) != 0 {
		t.Fatalf("after delete, Postings(Make, acura) = %v, want empty", got)
	}
	if err := s.Delete(2); err == nil {
		t.Fatal("double delete succeeded")
	}
	if got := s.NextRow(); got != 3 {
		t.Fatalf("NextRow = %d, want 3 (deleted IDs are not recycled)", got)
	}
	tb := s.Table()
	if tb.Len() != 2 || tb.Tuples[0].ID != 0 || tb.Tuples[1].ID != 1 {
		t.Fatalf("Table = %+v", tb.Tuples)
	}
	// Unknown attr/value post nothing.
	if got := s.Postings("Nope", "x"); got != nil {
		t.Fatalf("Postings on unknown attr = %v", got)
	}
	if got := s.Postings("Make", "never-seen"); got != nil {
		t.Fatalf("Postings on unknown value = %v", got)
	}
}

func TestStoreValidation(t *testing.T) {
	s, _, err := Open(testSchema(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(-1, []string{"a", "b", "c"}); err == nil {
		t.Fatal("negative row accepted")
	}
	if err := s.Put(0, []string{"a"}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, _, err := Open(nil, nil, Options{}); err == nil {
		t.Fatal("nil schema accepted")
	}
}

// TestKeyOrder pins the codec: byte order must agree with (attr, value, row)
// tuple order, and the AV prefix bounds must bracket exactly one posting run.
func TestKeyOrder(t *testing.T) {
	ks := []Key{
		MakeKey(0, 0, 0), MakeKey(0, 0, 9), MakeKey(0, 1, 0),
		MakeKey(0, 700, 3), MakeKey(1, 0, 0), MakeKey(2, 5, 1),
	}
	for i := 1; i < len(ks); i++ {
		if !ks[i-1].Less(ks[i]) {
			t.Fatalf("key order broken at %d: %v !< %v", i, ks[i-1], ks[i])
		}
	}
	k := MakeKey(3, 12345, 678)
	if k.Attr() != 3 || k.Value() != 12345 || k.Row() != 678 {
		t.Fatalf("roundtrip: %v", k)
	}
	lo, hi := PrefixAV(0, 1), PrefixAV(0, 2)
	if !lo.Less(MakeKey(0, 1, 42)) && MakeKey(0, 1, 0) != lo {
		t.Fatalf("lo bound wrong")
	}
	if !MakeKey(0, 1, ^uint32(0)).Less(hi) {
		t.Fatalf("hi bound excludes max row")
	}
}

// TestStoreRangeScan covers the generic scan with early stop.
func TestStoreRangeScan(t *testing.T) {
	s, _, _ := Open(testSchema(t), nil, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(i, []string{fmt.Sprintf("m%d", i%3), "make", "4"}); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	s.RangeScan(PrefixA(0), PrefixA(1), func(Key) bool { n++; return true })
	if n != 10 {
		t.Fatalf("attr-0 scan saw %d keys, want 10", n)
	}
	n = 0
	s.RangeScan(PrefixA(0), PrefixA(3), func(Key) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop saw %d keys, want 5", n)
	}
}

func storeDump(s *Store) string {
	var b strings.Builder
	tb := s.Table()
	fmt.Fprintf(&b, "next=%d\n", s.NextRow())
	for _, tp := range tb.Tuples {
		fmt.Fprintf(&b, "%d:%v\n", tp.ID, tp.Values)
	}
	return b.String()
}

// TestStoreDurability: a reopened store is byte-identical to the one that
// wrote the log, including across snapshot compactions.
func TestStoreDurability(t *testing.T) {
	fs := wal.NewMemFS(wal.FaultPlan{})
	schema := testSchema(t)
	s, _, err := Open(schema, fs, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		switch {
		case s.Len() > 1 && rng.Intn(4) == 0:
			tb := s.Table()
			if err := s.Delete(tb.Tuples[rng.Intn(tb.Len())].ID); err != nil {
				t.Fatal(err)
			}
		default:
			row := s.NextRow()
			if s.Len() > 0 && rng.Intn(3) == 0 {
				tb := s.Table()
				row = tb.Tuples[rng.Intn(tb.Len())].ID
			}
			vals := []string{fmt.Sprintf("m%d", rng.Intn(9)), fmt.Sprintf("mk%d", rng.Intn(4)), strconv.Itoa(2 + 2*rng.Intn(2))}
			if err := s.Put(row, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := storeDump(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, rec, err := Open(schema, fs, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec == nil || (len(rec.Snapshot) == 0 && len(rec.Records) == 0) {
		t.Fatalf("recovery empty: %+v", rec)
	}
	if got := storeDump(re); got != want {
		t.Fatalf("reopened store diverges:\ngot  %q\nwant %q", got, want)
	}
	// The index must be rebuilt too, not just the rows.
	for _, tp := range re.Table().Tuples {
		found := false
		for _, r := range re.Postings(schema.Attr(0), tp.Values[0]) {
			if r == tp.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %d missing from reopened postings", tp.ID)
		}
	}
}

// TestStoreCrashRecovery: under scripted fault plans, whatever prefix of
// mutations was acknowledged before the crash is exactly what the reopened
// store serves — never a torn or reordered state.
func TestStoreCrashRecovery(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		for _, mode := range []wal.FaultMode{wal.FaultNone, wal.FaultTornTail, wal.FaultBitFlip} {
			t.Run(fmt.Sprintf("seed=%d/mode=%v", seed, mode), func(t *testing.T) {
				fs := wal.NewMemFS(wal.FaultPlan{Seed: seed, Mode: mode})
				schema := testSchema(t)
				s, _, err := Open(schema, fs, Options{SnapshotEvery: 5})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 977))
				// Acked states, one per acknowledged mutation.
				var acked []string
				acked = append(acked, storeDump(s))
				crashAt := 10 + rng.Intn(20)
				for i := 0; i < crashAt; i++ {
					var err error
					if s.Len() > 1 && rng.Intn(5) == 0 {
						tb := s.Table()
						err = s.Delete(tb.Tuples[rng.Intn(tb.Len())].ID)
					} else {
						err = s.Put(s.NextRow(), []string{
							fmt.Sprintf("m%d", rng.Intn(6)), fmt.Sprintf("mk%d", rng.Intn(3)), "4"})
					}
					if err != nil {
						break // fail-stop after an injected fault: fine
					}
					acked = append(acked, storeDump(s))
				}
				fs.Crash()
				re, _, err := Open(schema, fs, Options{SnapshotEvery: 5})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer re.Close()
				got := storeDump(re)
				for _, want := range acked {
					if got == want {
						return
					}
				}
				t.Fatalf("recovered state matches no acknowledged prefix:\n%s", got)
			})
		}
	}
}
