package distance

import (
	"fmt"
	"math/rand"
	"testing"

	"mlnclean/internal/intern"
)

// randomValues generates a mixed ASCII/UTF-8 value pool.
func randomValues(rng *rand.Rand, n int) []string {
	pool := []string{
		"", "a", "birmingham", "BIRMINGHAM", "b'ham", "münchen", "東京都",
		"нижний новгород", "saint-étienne", "x\x1fy", "2567688400",
	}
	out := make([]string, 0, n)
	out = append(out, pool...)
	letters := []rune("abcdefgßüé東λ москва0123456789")
	for len(out) < n {
		l := rng.Intn(12)
		r := make([]rune, l)
		for i := range r {
			r[i] = letters[rng.Intn(len(letters))]
		}
		out = append(out, string(r))
	}
	return out
}

// TestEvaluatorMatchesMetric asserts the interned evaluator agrees exactly
// with the string Metric implementations — bit for bit, including bounded
// early exits staying on the correct side of the bound.
func TestEvaluatorMatchesMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randomValues(rng, 60)
	for _, m := range []Metric{Levenshtein{}, Cosine{}} {
		t.Run(m.Name(), func(t *testing.T) {
			dict := intern.NewDict()
			ids := make([]uint32, len(vals))
			for i, v := range vals {
				ids[i] = dict.Intern(v)
			}
			e := NewEvaluator(m, dict)
			for i := range vals {
				for j := range vals {
					want := m.Distance(vals[i], vals[j])
					if got := e.Pair(ids[i], ids[j]); got != want {
						t.Fatalf("Pair(%q,%q) = %v, want %v", vals[i], vals[j], got, want)
					}
					// Memoized second call.
					if got := e.Pair(ids[j], ids[i]); got != want {
						t.Fatalf("memoized Pair(%q,%q) asymmetric", vals[j], vals[i])
					}
				}
			}
		})
	}
}

// TestEvaluatorValuesBounded cross-checks the slice distance (with bounds)
// against the string implementation on random γ pairs of varying width.
func TestEvaluatorValuesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := randomValues(rng, 40)
	for _, m := range []Metric{Levenshtein{}, Cosine{}} {
		t.Run(m.Name(), func(t *testing.T) {
			dict := intern.NewDict()
			ids := make([]uint32, len(vals))
			for i, v := range vals {
				ids[i] = dict.Intern(v)
			}
			e := NewEvaluator(m, dict)
			for trial := 0; trial < 400; trial++ {
				na, nb := rng.Intn(4)+1, rng.Intn(4)+1
				a := make([]string, na)
				ai := make([]uint32, na)
				for i := range a {
					k := rng.Intn(len(vals))
					a[i], ai[i] = vals[k], ids[k]
				}
				b := make([]string, nb)
				bi := make([]uint32, nb)
				for i := range b {
					k := rng.Intn(len(vals))
					b[i], bi[i] = vals[k], ids[k]
				}
				exact := Values(m, a, b)
				if got := e.Values(ai, bi); got != exact {
					t.Fatalf("Values(%v,%v) = %v, want %v", a, b, got, exact)
				}
				bound := float64(rng.Intn(10))
				got := e.ValuesBounded(ai, bi, bound)
				if exact <= bound {
					if got != exact {
						t.Fatalf("ValuesBounded(%v,%v,%v) = %v, want exact %v", a, b, bound, got, exact)
					}
				} else if got <= bound {
					t.Fatalf("ValuesBounded(%v,%v,%v) = %v ≤ bound but exact is %v", a, b, bound, got, exact)
				}
			}
		})
	}
}

func TestEvaluatorRuneLen(t *testing.T) {
	dict := intern.NewDict()
	e := NewEvaluator(Levenshtein{}, dict)
	for _, tc := range []struct {
		s string
		n int
	}{{"", 0}, {"abc", 3}, {"東京都", 3}, {"münchen", 7}} {
		if got := e.RuneLen(dict.Intern(tc.s)); got != tc.n {
			t.Errorf("RuneLen(%q) = %d, want %d", tc.s, got, tc.n)
		}
	}
}

// TestEvaluatorLateInterning: IDs interned after the evaluator was created
// (the distributed gather interns wire pieces lazily) must still resolve.
func TestEvaluatorLateInterning(t *testing.T) {
	dict := intern.NewDict()
	e := NewEvaluator(Levenshtein{}, dict)
	a := dict.Intern("alpha")
	if d := e.Pair(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	b := dict.Intern("alphq")
	if d := e.Pair(a, b); d != 1 {
		t.Fatalf("late-interned pair distance = %v, want 1", d)
	}
}

// TestBoundedAllocFree asserts the pooled scratch keeps the public
// edit-distance entry points allocation-free in steady state.
func TestBoundedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	a, b := "saint-étienne hospital", "saint-etienne hospitals"
	// Warm the pool.
	EditDistance(a, b)
	EditDistanceBounded(a, b, 3)
	allocs := testing.AllocsPerRun(200, func() {
		EditDistance(a, b)
		EditDistanceBounded(a, b, 3)
		EditDistanceBounded("BIRMINGHAM", "BIRMINGHAN", 2)
	})
	if allocs > 0 {
		t.Errorf("edit distance allocates %v per run, want 0", allocs)
	}
}

func BenchmarkEvaluatorValuesBounded(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vals := randomValues(rng, 64)
	dict := intern.NewDict()
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		ids[i] = dict.Intern(v)
	}
	for _, m := range []Metric{Levenshtein{}, Cosine{}} {
		b.Run(m.Name(), func(b *testing.B) {
			e := NewEvaluator(m, dict)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := i % (len(ids) - 3)
				e.ValuesBounded(ids[k:k+3], ids[k+1:k+4], 6)
			}
		})
	}
}

func FuzzEditDistanceBoundedConsistent(f *testing.F) {
	f.Add("abc", "abd", 5)
	f.Add("", "xyz", 1)
	f.Add("münchen", "munchen", 2)
	f.Fuzz(func(t *testing.T, a, b string, bound int) {
		if bound < 0 || bound > 64 || len(a) > 64 || len(b) > 64 {
			t.Skip()
		}
		exact := EditDistance(a, b)
		got := EditDistanceBounded(a, b, bound)
		if exact <= bound {
			if got != exact {
				t.Fatalf("EditDistanceBounded(%q,%q,%d) = %d, want %d", a, b, bound, got, exact)
			}
		} else if got != bound+1 {
			t.Fatalf("EditDistanceBounded(%q,%q,%d) = %d, want %d", a, b, bound, got, bound+1)
		}
	})
}

func ExampleEvaluator() {
	dict := intern.NewDict()
	x := dict.Intern("BOAZ")
	y := dict.Intern("BOAS")
	e := NewEvaluator(Levenshtein{}, dict)
	fmt.Println(e.Pair(x, y))
	// Output: 1
}
