//go:build race

package distance

const raceEnabled = true
