package distance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"DOTHAN", "DOTH", 2},
		{"AL", "AK", 1},
		{"2567638410", "2567688400", 2},
		{"same", "same", 0},
		{"日本語", "日本", 1}, // runes, not bytes
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	symmetry := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(symmetry, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	lengthBound := func(a, b string) bool {
		d := EditDistance(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		max := la
		if lb > max {
			max = lb
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(lengthBound, cfg); err != nil {
		t.Errorf("length bounds: %v", err)
	}
}

func TestEditDistanceBoundedAgreesWithExact(t *testing.T) {
	f := func(a, b string, bound uint8) bool {
		maxD := int(bound % 16)
		exact := EditDistance(a, b)
		got := EditDistanceBounded(a, b, maxD)
		if exact <= maxD {
			return got == exact
		}
		return got > maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinNormalized(t *testing.T) {
	l := Levenshtein{}
	if got := l.Normalized("abc", "abc"); got != 0 {
		t.Errorf("Normalized equal = %v", got)
	}
	if got := l.Normalized("abc", "xyz"); got != 1 {
		t.Errorf("Normalized disjoint = %v", got)
	}
	if got := l.Normalized("", ""); got != 0 {
		t.Errorf("Normalized empty = %v", got)
	}
	f := func(a, b string) bool {
		v := l.Normalized(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCosineDistance(t *testing.T) {
	c := Cosine{}
	if got := c.Distance("abc", "abc"); got != 0 {
		t.Errorf("identical strings: %v", got)
	}
	if got := c.Distance("ab", "cd"); got != 1 {
		t.Errorf("disjoint bigrams: %v", got)
	}
	// Cosine is position-insensitive for repeated bigram profiles: "abab"
	// vs "baba" share {ab, ba} with near-identical frequencies.
	if got := c.Distance("ababab", "bababa"); got > 0.1 {
		t.Errorf("anagram-profile distance too large: %v", got)
	}
	// Levenshtein keeps them apart — the Table 5 contrast.
	if EditDistance("ababab", "bababa") == 0 {
		t.Error("Levenshtein should distinguish the pair")
	}
	inRange := func(a, b string) bool {
		v := c.Distance(a, b)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(inRange, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	sym := func(a, b string) bool { return c.Distance(a, b) == c.Distance(b, a) }
	if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCosineSingleRune(t *testing.T) {
	c := Cosine{}
	if got := c.Distance("a", "a"); got != 0 {
		t.Errorf("single equal runes: %v", got)
	}
	if got := c.Distance("a", "b"); got != 1 {
		t.Errorf("single distinct runes: %v", got)
	}
}

func TestByName(t *testing.T) {
	if ByName("cosine").Name() != "cosine" {
		t.Error("ByName(cosine)")
	}
	if ByName("levenshtein").Name() != "levenshtein" {
		t.Error("ByName(levenshtein)")
	}
	if ByName("unknown").Name() != "levenshtein" {
		t.Error("unknown should default to levenshtein")
	}
}

func TestValues(t *testing.T) {
	l := Levenshtein{}
	if got := Values(l, []string{"ab", "cd"}, []string{"ab", "ce"}); got != 1 {
		t.Errorf("Values = %v, want 1", got)
	}
	// Length mismatch: unpaired fields cost their distance from "".
	if got := Values(l, []string{"ab"}, []string{"ab", "xyz"}); got != 3 {
		t.Errorf("Values mismatched = %v, want 3", got)
	}
	if got := Values(l, nil, nil); got != 0 {
		t.Errorf("Values empty = %v", got)
	}
}

func TestValuesBoundedConsistent(t *testing.T) {
	l := Levenshtein{}
	f := func(a, b [3]string, bound uint8) bool {
		limit := float64(bound % 8)
		exact := Values(l, a[:], b[:])
		got := ValuesBounded(l, a[:], b[:], limit)
		if exact <= limit {
			return got == exact
		}
		return got > limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestValuesBoundedInfinity(t *testing.T) {
	l := Levenshtein{}
	a := []string{"3347938701", "AL"}
	b := []string{"2567638410", "AL"}
	exact := Values(l, a, b)
	if got := ValuesBounded(l, a, b, math.Inf(1)); got != exact {
		t.Errorf("unbounded ValuesBounded = %v, want %v", got, exact)
	}
}

func TestIntBound(t *testing.T) {
	if intBound(math.Inf(1)) != math.MaxInt32 {
		t.Error("+Inf should saturate")
	}
	if intBound(-3) != 0 {
		t.Error("negative should clamp to 0")
	}
	if intBound(7.9) != 7 {
		t.Error("fractional should truncate")
	}
}
