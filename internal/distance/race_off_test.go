//go:build !race

package distance

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = false
