package distance

import (
	"sync"
	"sync/atomic"

	"mlnclean/internal/intern"
)

// Pool recycles Evaluators for one (metric, dictionary) pair across blocks.
// A fresh evaluator per block re-pays the memo map, the per-ID info table,
// and the DP row scratch on every block; the streaming pipeline processes
// blocks back to back on a fixed worker set, which makes those allocations
// the hottest in stage I. Reuse is sound because an evaluator's memo holds
// only exact distances for a fixed (metric, dictionary) pair — values it
// returns are identical whether computed in this block or a previous one
// (AGP's bounded scans clip only strictly past their bound, so a memoized
// exact value never changes a comparison a fresh evaluator would make).
//
// Get/Put are safe for concurrent use; the evaluators themselves remain
// single-goroutine objects while checked out.
type Pool struct {
	metric Metric
	dict   *intern.Dict
	p      sync.Pool
	hits   atomic.Int64
	misses atomic.Int64
}

// NewPool creates a pool handing out evaluators for the metric over dict.
func NewPool(m Metric, dict *intern.Dict) *Pool {
	return &Pool{metric: m, dict: dict}
}

// Get returns a pooled evaluator, constructing one when none is available.
func (p *Pool) Get() *Evaluator {
	if ev, ok := p.p.Get().(*Evaluator); ok {
		p.hits.Add(1)
		return ev
	}
	p.misses.Add(1)
	return NewEvaluator(p.metric, p.dict)
}

// Put returns an evaluator to the pool. The evaluator keeps its memo and
// prepared per-ID state — that carry-over is the point.
func (p *Pool) Put(ev *Evaluator) {
	if ev == nil || ev.dict != p.dict {
		return // foreign evaluator: never let memos cross dictionaries
	}
	p.p.Put(ev)
}

// Stats returns how many Gets were served from the pool (hits) versus
// freshly constructed (misses).
func (p *Pool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}
