package distance

import (
	"mlnclean/internal/intern"
)

// Evaluator computes metric distances over interned value IDs: the
// γ-to-γ distance of Def. 2 without ever re-materializing strings on the
// hot path. It memoizes exact pair distances under a symmetric key (AGP's
// O(abnormal×normal) scan and RSC's pairwise matrices revisit the same γ⋆
// value pairs constantly) and precomputes per-ID derived data lazily: rune
// buffers for Levenshtein (with an ASCII marker so pure-byte values never
// decode at all) and sorted bigram frequency vectors for cosine.
//
// An Evaluator is NOT safe for concurrent use; the block-parallel stages
// create one per block. The dictionary is only read.
type Evaluator struct {
	m    Metric
	dict *intern.Dict
	kind int
	memo map[uint64]float64
	info []idInfo
	rows []int // DP scratch for Levenshtein
}

const (
	kindLev = iota
	kindCos
	kindOther
)

// idInfo caches what a metric needs about one interned value.
type idInfo struct {
	prepared bool
	ascii    bool
	runeLen  int32
	runes    []rune  // decoded form; for ASCII values only filled on demand
	grams    []gram  // cosine: sorted bigram vector
	norm2    float64 // cosine: squared vector norm (an exact integer)
}

// gram is one character bigram (two runes packed) with its count.
type gram struct {
	g uint64
	n float64
}

// NewEvaluator creates an evaluator for the metric over the dictionary.
func NewEvaluator(m Metric, dict *intern.Dict) *Evaluator {
	e := &Evaluator{m: m, dict: dict, kind: kindOther, memo: make(map[uint64]float64)}
	switch m.(type) {
	case Levenshtein:
		e.kind = kindLev
	case Cosine:
		e.kind = kindCos
	}
	return e
}

// Dict returns the dictionary the evaluator reads.
func (e *Evaluator) Dict() *intern.Dict { return e.dict }

func (e *Evaluator) prep(id uint32) *idInfo {
	if int(id) >= len(e.info) {
		// Grow geometrically to the touched ID, not to the dictionary size:
		// a block evaluator only ever prepares the values its block holds.
		n := 2 * len(e.info)
		if n <= int(id) {
			n = int(id) + 1
		}
		grown := make([]idInfo, n)
		copy(grown, e.info)
		e.info = grown
	}
	in := &e.info[id]
	if in.prepared {
		return in
	}
	in.prepared = true
	s := e.dict.Value(id)
	if isASCII(s) {
		in.ascii = true
		in.runeLen = int32(len(s))
	} else {
		in.runes = appendRunes(nil, s)
		in.runeLen = int32(len(in.runes))
	}
	if e.kind == kindCos {
		in.grams, in.norm2 = bigramVector(s)
	}
	return in
}

// RuneLen returns the rune count of the interned value.
func (e *Evaluator) RuneLen(id uint32) int { return int(e.prep(id).runeLen) }

func pairKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Pair returns the exact metric distance between two interned values,
// memoized symmetrically.
func (e *Evaluator) Pair(a, b uint32) float64 {
	if a == b {
		return 0
	}
	k := pairKey(a, b)
	if d, ok := e.memo[k]; ok {
		return d
	}
	d := e.compute(a, b, maxEditBound)
	e.memo[k] = d
	return d
}

// PairBounded returns the exact distance when it is ≤ bound, and some value
// > bound otherwise (Levenshtein abandons the DP early; other metrics always
// compute exactly). Only exact results are memoized.
func (e *Evaluator) PairBounded(a, b uint32, bound float64) float64 {
	if a == b {
		return 0
	}
	k := pairKey(a, b)
	if d, ok := e.memo[k]; ok {
		return d
	}
	if e.kind != kindLev {
		d := e.compute(a, b, 0)
		e.memo[k] = d
		return d
	}
	cap := intBound(bound)
	d := e.compute(a, b, cap)
	if d <= float64(cap) {
		e.memo[k] = d
	}
	return d
}

// compute dispatches on the metric kind. For Levenshtein maxDist caps the
// DP; other kinds ignore it.
func (e *Evaluator) compute(a, b uint32, maxDist int) float64 {
	switch e.kind {
	case kindLev:
		return float64(e.editDistance(a, b, maxDist))
	case kindCos:
		return e.cosine(a, b)
	default:
		return e.m.Distance(e.dict.Value(a), e.dict.Value(b))
	}
}

// editDistance is the bounded Levenshtein DP over prepared per-ID forms,
// reusing the evaluator's row scratch.
func (e *Evaluator) editDistance(a, b uint32, maxDist int) int {
	ia, ib := e.prep(a), e.prep(b)
	if ia.ascii && ib.ascii {
		s := editScratch{rows: e.rows}
		d := editBytes(e.dict.Value(a), e.dict.Value(b), maxDist, &s)
		e.rows = s.rows
		return d
	}
	d, rows := runesDP(e.runesOf(a, ia), e.runesOf(b, ib), maxDist, e.rows)
	e.rows = rows
	return d
}

// runesOf returns the rune view of a prepared value. An ASCII value decodes
// (and caches) its runes only when paired with a non-ASCII counterpart; the
// ascii marker stays set, so later all-ASCII pairs keep the byte fast path.
func (e *Evaluator) runesOf(id uint32, in *idInfo) []rune {
	if in.runes == nil {
		in.runes = appendRunes(nil, e.dict.Value(id))
	}
	return in.runes
}

// cosine computes 1 − cos over the prepared sorted bigram vectors. Counts
// are small integers, so dot products and norms are exact and the result is
// bit-identical to the map-based cosineDistance.
func (e *Evaluator) cosine(a, b uint32) float64 {
	ia, ib := e.prep(a), e.prep(b)
	if len(ia.grams) == 0 || len(ib.grams) == 0 {
		return 1
	}
	var dot float64
	ga, gb := ia.grams, ib.grams
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i].g == gb[j].g:
			dot += ga[i].n * gb[j].n
			i++
			j++
		case ga[i].g < gb[j].g:
			i++
		default:
			j++
		}
	}
	return cosineFromParts(dot, ia.norm2, ib.norm2)
}

// ValuesBounded is the γ-to-γ distance over ID slices: the attribute-wise
// sum with early exit past bound, per-pair memoization, and (for
// Levenshtein) per-pair bounded DP. Semantically identical to
// ValuesBounded over the decoded strings.
func (e *Evaluator) ValuesBounded(a, b []uint32, bound float64) float64 {
	var sum float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		sum += e.PairBounded(a[i], b[i], bound-sum)
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(a); i++ {
		sum += e.distanceToEmpty(a[i])
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(b); i++ {
		sum += e.distanceToEmpty(b[i])
		if sum > bound {
			return sum
		}
	}
	return sum
}

// Values is ValuesBounded without a bound: the exact γ-to-γ distance.
func (e *Evaluator) Values(a, b []uint32) float64 {
	return e.ValuesBounded(a, b, maxEditBound)
}

// distanceToEmpty mirrors m.Distance(v, "") for the built-in metrics
// without materializing the empty-string pair.
func (e *Evaluator) distanceToEmpty(id uint32) float64 {
	s := e.dict.Value(id)
	switch e.kind {
	case kindLev:
		if s == "" {
			return 0
		}
		return float64(e.RuneLen(id))
	case kindCos:
		if s == "" {
			return 0
		}
		return 1
	default:
		return e.m.Distance(s, "")
	}
}
