// Package distance implements the string distance metrics MLNClean relies
// on: Levenshtein edit distance (the paper's default, §7.1) and cosine
// distance over character bigrams (§7.3.3). Both satisfy the Metric
// interface; pieces-of-data (γ) distances are computed attribute-wise.
package distance

import (
	"math"
	"sort"
	"strings"
)

// Metric is a string distance. Distance must be symmetric, non-negative, and
// zero iff the two strings compare equal under the metric's notion of
// equality (for both provided metrics: exact string equality).
type Metric interface {
	// Name identifies the metric ("levenshtein", "cosine").
	Name() string
	// Distance returns the raw distance between a and b.
	Distance(a, b string) float64
	// Normalized returns a distance scaled into [0, 1].
	Normalized(a, b string) float64
}

// Levenshtein is the classic edit distance (insert/delete/substitute, unit
// costs). Normalized divides by max(len(a), len(b)).
type Levenshtein struct{}

// Name implements Metric.
func (Levenshtein) Name() string { return "levenshtein" }

// Distance implements Metric. Runs in O(len(a)·len(b)) time and O(min(len))
// space.
func (Levenshtein) Distance(a, b string) float64 {
	return float64(EditDistance(a, b))
}

// Normalized implements Metric.
func (Levenshtein) Normalized(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / float64(m)
}

// EditDistance computes the Levenshtein edit distance between a and b over
// runes, using the standard two-row dynamic program. The DP rows and rune
// buffers come from a scratch pool and all-ASCII inputs skip rune decoding
// entirely, so steady-state calls allocate nothing.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	s := getScratch()
	d := editCore(a, b, maxEditBound, s)
	putScratch(s)
	return d
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Cosine is cosine distance over character-bigram frequency vectors:
// 1 − cos(v(a), v(b)). Strings shorter than two runes are padded with a
// sentinel so single-character strings still produce a vector. Cosine is
// position-insensitive, which is exactly the weakness §7.3.3 exercises:
// misspelling the first characters of a string barely moves the bigram
// profile for long strings but devastates short sparse values.
type Cosine struct{}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// Distance implements Metric; cosine distance is already in [0, 1].
func (Cosine) Distance(a, b string) float64 { return cosineDistance(a, b) }

// Normalized implements Metric.
func (Cosine) Normalized(a, b string) float64 { return cosineDistance(a, b) }

func bigrams(s string) map[string]float64 {
	v := make(map[string]float64)
	r := []rune(s)
	if len(r) == 0 {
		return v
	}
	if len(r) == 1 {
		v["\x00"+string(r[0])]++
		return v
	}
	for i := 0; i+1 < len(r); i++ {
		v[string(r[i:i+2])]++
	}
	return v
}

func cosineDistance(a, b string) float64 {
	if a == b {
		return 0
	}
	va, vb := bigrams(a), bigrams(b)
	if len(va) == 0 || len(vb) == 0 {
		return 1
	}
	var dot, na, nb float64
	for g, x := range va {
		na += x * x
		if y, ok := vb[g]; ok {
			dot += x * y
		}
	}
	for _, y := range vb {
		nb += y * y
	}
	return cosineFromParts(dot, na, nb)
}

// cosineFromParts finishes a cosine distance from the dot product and the
// squared norms. Bigram counts are small integers, so all three inputs are
// exactly representable and the result does not depend on summation order —
// the map-based and sorted-vector paths agree bit for bit.
func cosineFromParts(dot, na2, nb2 float64) float64 {
	if na2 == 0 || nb2 == 0 {
		return 1
	}
	sim := dot / (math.Sqrt(na2) * math.Sqrt(nb2))
	if sim > 1 {
		sim = 1 // guard FP drift
	}
	d := 1 - sim
	if d < 0 {
		return 0
	}
	return d
}

// bigramVector builds the sorted character-bigram frequency vector of s and
// its squared norm: the Evaluator's precomputed per-ID form of bigrams().
// Each bigram packs its two runes into a uint64; single-rune strings get the
// same NUL-sentinel gram the map form uses.
func bigramVector(s string) ([]gram, float64) {
	r := []rune(s)
	if len(r) == 0 {
		return nil, 0
	}
	var gs []gram
	if len(r) == 1 {
		gs = []gram{{g: uint64(r[0]), n: 1}}
	} else {
		gs = make([]gram, 0, len(r)-1)
		for i := 0; i+1 < len(r); i++ {
			gs = append(gs, gram{g: uint64(r[i])<<32 | uint64(r[i+1]), n: 1})
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i].g < gs[j].g })
		out := gs[:1]
		for _, x := range gs[1:] {
			if out[len(out)-1].g == x.g {
				out[len(out)-1].n += x.n
			} else {
				out = append(out, x)
			}
		}
		gs = out
	}
	var n2 float64
	for _, x := range gs {
		n2 += x.n * x.n
	}
	return gs, n2
}

// ByName returns the metric with the given name, defaulting to Levenshtein
// for unknown names.
func ByName(name string) Metric {
	switch strings.ToLower(name) {
	case "cosine":
		return Cosine{}
	default:
		return Levenshtein{}
	}
}

// MetricName is the inverse of ByName for the built-in metrics: it returns
// the flag/wire name of m. Wrapped or custom metrics have no wire name and
// map to "levenshtein", the default — callers shipping a metric across a
// process boundary (distributed Init, the serving API) only transmit names.
func MetricName(m Metric) string {
	switch m.(type) {
	case Cosine:
		return "cosine"
	default:
		return "levenshtein"
	}
}

// Values returns the attribute-wise sum of metric distances between two
// equal-length value slices. This is the γ-to-γ distance used by AGP and RSC
// (Def. 2): each attribute contributes independently, so a one-character typo
// in one field costs the same regardless of the other fields.
func Values(m Metric, a, b []string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Distance(a[i], b[i])
	}
	// Unpaired attributes (length mismatch between pieces from different
	// rules) each cost the distance from the empty string.
	for i := n; i < len(a); i++ {
		sum += m.Distance(a[i], "")
	}
	for i := n; i < len(b); i++ {
		sum += m.Distance("", b[i])
	}
	return sum
}
