package distance

import (
	"fmt"
	"testing"

	"mlnclean/internal/intern"
)

func poolFixture(n int) (*intern.Dict, []uint32) {
	dict := intern.NewDict()
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = dict.Intern(fmt.Sprintf("value-%04d", i*7%n))
	}
	return dict, ids
}

// TestPoolReuseIsExact: a recycled evaluator returns exactly the distances a
// fresh one would — the memo carries only exact results, so block-to-block
// reuse cannot change any comparison.
func TestPoolReuseIsExact(t *testing.T) {
	dict, ids := poolFixture(64)
	pool := NewPool(Levenshtein{}, dict)

	ev1 := pool.Get()
	for i := 1; i < len(ids); i++ {
		ev1.Pair(ids[0], ids[i])
		ev1.PairBounded(ids[i-1], ids[i], 3)
	}
	pool.Put(ev1)

	ev2 := pool.Get()
	fresh := NewEvaluator(Levenshtein{}, dict)
	for i := 1; i < len(ids); i++ {
		if got, want := ev2.Pair(ids[0], ids[i]), fresh.Pair(ids[0], ids[i]); got != want {
			t.Fatalf("pair(%d,%d): pooled %v, fresh %v", ids[0], ids[i], got, want)
		}
		if got, want := ev2.Values(ids[:i], ids[1:i+1]), fresh.Values(ids[:i], ids[1:i+1]); got != want {
			t.Fatalf("values at %d: pooled %v, fresh %v", i, got, want)
		}
	}
	hits, misses := pool.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestPoolRejectsForeignEvaluator: an evaluator over another dictionary must
// never enter the pool (its memo would decode IDs against the wrong values).
func TestPoolRejectsForeignEvaluator(t *testing.T) {
	dict, ids := poolFixture(8)
	other := intern.NewDict()
	other.Intern("unrelated")
	pool := NewPool(Levenshtein{}, dict)
	pool.Put(NewEvaluator(Levenshtein{}, other))
	ev := pool.Get()
	if ev.dict != dict {
		t.Fatal("pool handed out a foreign-dictionary evaluator")
	}
	_ = ev.Pair(ids[0], ids[1])
}

// TestPooledReuseAllocsRegression pins the satellite fix: reusing a pooled
// evaluator across "blocks" whose pairs are already memoized must not
// allocate per block (a fresh evaluator per block pays a map + info table +
// scratch every time).
func TestPooledReuseAllocsRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are only meaningful unraced")
	}
	dict, ids := poolFixture(64)
	pool := NewPool(Levenshtein{}, dict)
	warm := pool.Get()
	for i := 1; i < len(ids); i++ {
		warm.Pair(ids[0], ids[i])
	}
	pool.Put(warm)

	allocs := testing.AllocsPerRun(50, func() {
		ev := pool.Get()
		for i := 1; i < len(ids); i++ {
			ev.Pair(ids[0], ids[i])
		}
		pool.Put(ev)
	})
	// sync.Pool itself may allocate a pool-local shard on first use per P;
	// allow a small constant, but a per-pair or per-block map rebuild (the
	// old behavior: ~4 allocs for the map alone, more as it grows) must fail.
	if allocs > 2 {
		t.Fatalf("pooled reuse allocates %.1f allocs per block, want <= 2", allocs)
	}
}

// BenchmarkEvaluatorPerBlock contrasts the old per-block construction with
// pooled reuse; run with -benchmem to see the allocation difference CI's
// micro-bench smoke records.
func BenchmarkEvaluatorPerBlock(b *testing.B) {
	dict, ids := poolFixture(256)
	work := func(ev *Evaluator) {
		for i := 1; i < len(ids); i++ {
			ev.PairBounded(ids[i-1], ids[i], 4)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			work(NewEvaluator(Levenshtein{}, dict))
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := NewPool(Levenshtein{}, dict)
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			ev := pool.Get()
			work(ev)
			pool.Put(ev)
		}
	})
}
