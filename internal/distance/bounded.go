package distance

import (
	"math"
	"sync"
	"unicode/utf8"
)

// maxEditBound is the "effectively unbounded" cap: large enough that no pair
// of real strings reaches it, small enough that cap+1 never overflows.
const maxEditBound = math.MaxInt32

// intBound converts a float bound into an edit-distance cap, saturating at
// a large finite value (float→int conversion of +Inf is undefined in Go).
func intBound(f float64) int {
	if math.IsInf(f, 1) || f >= maxEditBound {
		return maxEditBound
	}
	if f < 0 {
		return 0
	}
	return int(f)
}

// editScratch holds the reusable state of one edit-distance computation: the
// two DP rows and the rune buffers non-ASCII inputs decode into.
type editScratch struct {
	rows   []int
	ra, rb []rune
}

var editPool = sync.Pool{New: func() interface{} { return &editScratch{} }}

func getScratch() *editScratch  { return editPool.Get().(*editScratch) }
func putScratch(s *editScratch) { editPool.Put(s) }

// grow returns a row buffer of length 2·(n+1) backed by the scratch.
func (s *editScratch) grow(n int) []int {
	need := 2 * (n + 1)
	if cap(s.rows) < need {
		s.rows = make([]int, need)
	}
	return s.rows[:need]
}

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// EditDistanceBounded computes the Levenshtein distance between a and b if
// it is ≤ maxDist, and returns maxDist+1 otherwise. It prunes with the
// length-difference lower bound and abandons a row once every entry exceeds
// the bound, making nearest-neighbour scans (AGP's nearest-normal-group
// search) cheap when the running best is small. Like EditDistance it is
// allocation-free in steady state: scratch rows are pooled and all-ASCII
// inputs are compared byte-wise without rune decoding.
func EditDistanceBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return 0
	}
	if a == b {
		return 0
	}
	if maxDist > maxEditBound {
		maxDist = maxEditBound
	}
	s := getScratch()
	d := editCore(a, b, maxDist, s)
	putScratch(s)
	return d
}

// editCore runs the bounded two-row DP using the scratch's buffers. maxDist
// must be ≥ 0; the result is exact when ≤ maxDist and maxDist+1 otherwise.
// Callers have already excluded a == b.
func editCore(a, b string, maxDist int, s *editScratch) int {
	if isASCII(a) && isASCII(b) {
		return editBytes(a, b, maxDist, s)
	}
	s.ra = appendRunes(s.ra[:0], a)
	s.rb = appendRunes(s.rb[:0], b)
	d, rows := runesDP(s.ra, s.rb, maxDist, s.rows)
	s.rows = rows
	return d
}

// runesDP is the bounded two-row Levenshtein DP over rune slices, shared by
// the string entry points and the interned Evaluator. rows is scratch space
// (grown as needed and returned); the result is exact when ≤ maxDist and
// maxDist+1 otherwise.
func runesDP(ra, rb []rune, maxDist int, rows []int) (int, []int) {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > maxDist {
		return maxDist + 1, rows
	}
	if len(rb) == 0 {
		return lenOrBound(len(ra), maxDist), rows
	}
	need := 2 * (len(rb) + 1)
	if cap(rows) < need {
		rows = make([]int, need)
	}
	rows = rows[:need]
	prev, cur := rows[:len(rb)+1], rows[len(rb)+1:]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return maxDist + 1, rows
		}
		prev, cur = cur, prev
	}
	return lenOrBound(prev[len(rb)], maxDist), rows
}

// editBytes is editCore's fast path for all-ASCII inputs: bytes are runes,
// so the DP indexes the strings directly with no decode step.
func editBytes(a, b string, maxDist int, s *editScratch) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)-len(b) > maxDist {
		return maxDist + 1
	}
	if len(b) == 0 {
		return lenOrBound(len(a), maxDist)
	}
	rows := s.grow(len(b))
	prev, cur := rows[:len(b)+1], rows[len(b)+1:]
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	return lenOrBound(prev[len(b)], maxDist)
}

func lenOrBound(d, maxDist int) int {
	if d > maxDist {
		return maxDist + 1
	}
	return d
}

// appendRunes decodes s into dst without allocating when dst has capacity.
func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

// ValuesBounded returns the attribute-wise summed distance between value
// slices, abandoning the computation (returning a value > bound) as soon as
// the partial sum exceeds bound. For the Levenshtein metric the per-field
// computation itself is also bounded.
func ValuesBounded(m Metric, a, b []string, bound float64) float64 {
	_, isLev := m.(Levenshtein)
	var sum float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if isLev {
			sum += float64(EditDistanceBounded(a[i], b[i], intBound(bound-sum)))
		} else {
			sum += m.Distance(a[i], b[i])
		}
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(a); i++ {
		sum += m.Distance(a[i], "")
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(b); i++ {
		sum += m.Distance("", b[i])
		if sum > bound {
			return sum
		}
	}
	return sum
}
