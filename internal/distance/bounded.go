package distance

import "math"

// intBound converts a float bound into an edit-distance cap, saturating at
// a large finite value (float→int conversion of +Inf is undefined in Go).
func intBound(f float64) int {
	const maxBound = math.MaxInt32
	if math.IsInf(f, 1) || f >= maxBound {
		return maxBound
	}
	if f < 0 {
		return 0
	}
	return int(f)
}

// EditDistanceBounded computes the Levenshtein distance between a and b if
// it is ≤ maxDist, and returns maxDist+1 otherwise. It prunes with the
// length-difference lower bound and abandons a row once every entry exceeds
// the bound, making nearest-neighbour scans (AGP's nearest-normal-group
// search) cheap when the running best is small.
func EditDistanceBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return 0
	}
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > maxDist {
		return maxDist + 1
	}
	if len(rb) == 0 {
		if len(ra) > maxDist {
			return maxDist + 1
		}
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	if prev[len(rb)] > maxDist {
		return maxDist + 1
	}
	return prev[len(rb)]
}

// ValuesBounded returns the attribute-wise summed distance between value
// slices, abandoning the computation (returning a value > bound) as soon as
// the partial sum exceeds bound. For the Levenshtein metric the per-field
// computation itself is also bounded.
func ValuesBounded(m Metric, a, b []string, bound float64) float64 {
	_, isLev := m.(Levenshtein)
	var sum float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if isLev {
			sum += float64(EditDistanceBounded(a[i], b[i], intBound(bound-sum)))
		} else {
			sum += m.Distance(a[i], b[i])
		}
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(a); i++ {
		sum += m.Distance(a[i], "")
		if sum > bound {
			return sum
		}
	}
	for i := n; i < len(b); i++ {
		sum += m.Distance("", b[i])
		if sum > bound {
			return sum
		}
	}
	return sum
}
