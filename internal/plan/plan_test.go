package plan

import (
	"reflect"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// statsTable encodes a table into a fresh dictionary, returning both — the
// same path the pipeline takes, so the planner sees exactly the counters
// dataset.Encode accumulates.
func statsTable(t *testing.T, schema *dataset.Schema, rows [][]string) (*intern.Dict, *dataset.Table) {
	t.Helper()
	tb := dataset.NewTable(schema)
	for _, r := range rows {
		tb.MustAppend(r...)
	}
	d := intern.NewDict()
	dataset.Encode(tb, d)
	return d, tb
}

// TestPlanPivotOrder hand-builds a table where column C has far higher
// cardinality than A: the planner must pivot the multi-attribute rule on C
// and report the reordering.
func TestPlanPivotOrder(t *testing.T) {
	schema := dataset.MustSchema("A", "B", "C")
	rows := make([][]string, 0, 16)
	for i := 0; i < 16; i++ {
		// A: 2 distinct, C: 16 distinct.
		a := "x"
		if i%2 == 0 {
			a = "y"
		}
		rows = append(rows, []string{a, "b", string(rune('a' + i))})
	}
	d, _ := statsTable(t, schema, rows)
	rs := rules.MustParseStrings("FD: A, C -> B")

	p := New(rs, schema, d)
	rp := &p.Rules[0]
	if rp.Scan != PivotJoin {
		t.Fatalf("scan = %v, want pivot-join (%s)", rp.Scan, rp.Why)
	}
	if rp.Pivot != schema.MustIndex("C") {
		t.Errorf("pivot column = %d, want C (%d)", rp.Pivot, schema.MustIndex("C"))
	}
	if got := []string{rp.Preds[0].Attr, rp.Preds[1].Attr}; !reflect.DeepEqual(got, []string{"C", "A"}) {
		t.Errorf("predicate order = %v, want [C A] (most selective first)", got)
	}
	if !rp.Reordered() {
		t.Error("Reordered() = false for a plan that moved C first")
	}
	cs := p.Choices()
	if len(cs) != 1 || !cs[0].Reordered || cs[0].Scan != "pivot-join" {
		t.Errorf("Choices() = %+v", cs)
	}
	if !strings.Contains(cs[0].String(), "pivot C") {
		t.Errorf("plan line %q should explain the pivot", cs[0].String())
	}
}

// TestPlanSingleAttributeNoOp pins the fall-through: a single-attribute
// reason has nothing to reorder, so planning is an explicit no-op full scan.
func TestPlanSingleAttributeNoOp(t *testing.T) {
	schema := dataset.MustSchema("A", "B")
	d, _ := statsTable(t, schema, [][]string{{"x", "1"}, {"y", "2"}, {"x", "3"}})
	p := New(rules.MustParseStrings("FD: A -> B"), schema, d)
	rp := &p.Rules[0]
	if rp.Scan != FullScan {
		t.Fatalf("scan = %v, want full-scan", rp.Scan)
	}
	if rp.Reordered() || len(rp.Preds) != 1 {
		t.Errorf("preds = %+v", rp.Preds)
	}
	if !strings.Contains(rp.Why, "no-op") {
		t.Errorf("why = %q, want the no-op explanation", rp.Why)
	}
}

// TestPlanUnselectivePivotFallsThrough: when the best pivot's average
// posting list is long (few distinct values over many rows), the join does
// not pay and the planner keeps the declared-order full scan.
func TestPlanUnselectivePivotFallsThrough(t *testing.T) {
	schema := dataset.MustSchema("A", "B", "C")
	rows := make([][]string, 0, 64)
	for i := 0; i < 64; i++ {
		// Both A and C have only 2 distinct values: 2*pivotListMax < 64.
		a, c := "x", "p"
		if i%2 == 0 {
			a, c = "y", "q"
		}
		rows = append(rows, []string{a, "b", c})
	}
	d, _ := statsTable(t, schema, rows)
	p := New(rules.MustParseStrings("FD: A, C -> B"), schema, d)
	rp := &p.Rules[0]
	if rp.Scan != FullScan {
		t.Fatalf("scan = %v, want full-scan (%s)", rp.Scan, rp.Why)
	}
	if rp.Reordered() {
		t.Error("a full-scan plan must keep declared order")
	}
}

// TestPlanPostingUnion: a CFD whose constants match a small slice of the
// table scans only their posting lists; constants covering most of the
// table fall back to the plain scan.
func TestPlanPostingUnion(t *testing.T) {
	schema := dataset.MustSchema("HN", "CT", "PN")
	rows := [][]string{
		{"ELIZA", "BOAZ", "1"},
		{"OTHER", "TOWN", "2"},
		{"OTHER", "CITY", "3"},
		{"OTHER", "PLACE", "4"},
		{"OTHER", "SPOT", "5"},
		{"OTHER", "VILLE", "6"},
	}
	d, _ := statsTable(t, schema, rows)

	p := New(rules.MustParseStrings("CFD: HN=ELIZA, CT -> PN"), schema, d)
	rp := &p.Rules[0]
	if rp.Scan != PostingUnion {
		t.Fatalf("rare constant: scan = %v, want posting-union (%s)", rp.Scan, rp.Why)
	}
	if rp.EstRows != 1 {
		t.Errorf("EstRows = %d, want 1 (ELIZA appears once)", rp.EstRows)
	}
	if len(rp.ConstPos) != 1 || rp.ConstPos[0] != 0 {
		t.Errorf("ConstPos = %v, want [0]", rp.ConstPos)
	}

	p = New(rules.MustParseStrings("CFD: HN=OTHER, CT -> PN"), schema, d)
	rp = &p.Rules[0]
	if rp.Scan != FullScan {
		t.Fatalf("covering constant: scan = %v, want full-scan (%s)", rp.Scan, rp.Why)
	}

	// A constant absent from the data matches no row at all.
	p = new(Plan)
	*p = *New(rules.MustParseStrings("CFD: HN=NOBODY, CT -> PN"), schema, d)
	rp = &p.Rules[0]
	if rp.Scan != PostingUnion || rp.EstRows != 0 || len(rp.ConstIDs) != 0 {
		t.Errorf("absent constant: scan=%v est=%d ids=%v, want empty posting-union", rp.Scan, rp.EstRows, rp.ConstIDs)
	}
}

// TestPlanNoStats: a dictionary that never observed a row yields an
// all-full-scan plan in declared order.
func TestPlanNoStats(t *testing.T) {
	schema := dataset.MustSchema("A", "B", "C")
	p := New(rules.MustParseStrings("FD: A, C -> B"), schema, intern.NewDict())
	rp := &p.Rules[0]
	if rp.Scan != FullScan || rp.Reordered() {
		t.Fatalf("no stats: scan=%v reordered=%v, want declared-order full scan", rp.Scan, rp.Reordered())
	}
	if !strings.Contains(rp.Why, "no column statistics") {
		t.Errorf("why = %q", rp.Why)
	}
}

// TestBlockOrder: heavier blocks (more estimated scan rows + groups)
// schedule first; ties keep rule order.
func TestBlockOrder(t *testing.T) {
	p := &Plan{Rules: []RulePlan{
		{EstRows: 10, EstGroups: 2},
		{EstRows: 100, EstGroups: 50},
		{EstRows: 10, EstGroups: 2},
	}}
	if got := p.BlockOrder(); !reflect.DeepEqual(got, []int{1, 0, 2}) {
		t.Errorf("BlockOrder = %v, want [1 0 2]", got)
	}
}

func TestNilPlanChoices(t *testing.T) {
	var p *Plan
	if p.Choices() != nil {
		t.Error("nil plan must have nil choices")
	}
}
