// Package plan turns a rule set plus dictionary statistics into an ordered
// stage-I evaluation plan, in the style of janus-datalog's clause-based
// greedy planner: predicates are ranked by selectivity estimated from the
// per-column cardinality counters internal/intern accumulates during
// dataset.Encode, so planning needs no stats-collection pass and the chosen
// plan is a deterministic function of (rules, schema, statistics).
//
// Selectivity only changes the order work is done in, never its outcome:
// group and piece identities are always minted from declared-order value
// folds, and internal/index restores first-sight scan order after a planned
// build, so a planned index is exactly the index the fixed-order scan
// produces. The planner's three scan shapes:
//
//   - FullScan: the fixed-order row scan. Chosen for single-attribute
//     reasons (planning is a no-op), for rules whose best pivot is too
//     unselective to pay for posting lists, and whenever statistics are
//     absent.
//   - PostingUnion: a CFD with constant reason patterns only indexes the
//     rows matching at least one constant; the candidate set is the union of
//     the constants' ID posting lists instead of an all-rows filter scan.
//   - PivotJoin: a multi-attribute reason is driven by its most selective
//     (highest-distinct) attribute; rows are visited one pivot posting list
//     at a time, the remaining predicates joined within the list. Singleton
//     lists short-circuit straight to piece construction — no group or
//     piece map probes at all.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mlnclean/internal/dataset"
	"mlnclean/internal/intern"
	"mlnclean/internal/obs"
	"mlnclean/internal/rules"
)

// Scan-shape choices are counted per kind; pre-registering all three keeps
// the family complete on a fresh scrape.
var (
	mPlanSeconds = obs.Default().Histogram("mlnclean_plan_build_seconds",
		"Wall time to derive the stage-I evaluation plan from dictionary statistics.", obs.DefBuckets)
	mScanChosen = [...]*obs.Counter{
		FullScan:     obs.Default().Counter("mlnclean_plan_scan_total", "Scan shapes chosen by the planner, per rule.", obs.L("shape", "full-scan")),
		PostingUnion: obs.Default().Counter("mlnclean_plan_scan_total", "", obs.L("shape", "posting-union")),
		PivotJoin:    obs.Default().Counter("mlnclean_plan_scan_total", "", obs.L("shape", "pivot-join")),
	}
)

// ScanKind enumerates the planner's block-scan shapes.
type ScanKind int

const (
	// FullScan visits every row in table order (the pre-planner behavior).
	FullScan ScanKind = iota
	// PostingUnion visits only the rows in the union of a CFD's constant
	// posting lists.
	PostingUnion
	// PivotJoin visits rows one pivot-attribute posting list at a time.
	PivotJoin
)

// String implements fmt.Stringer.
func (k ScanKind) String() string {
	switch k {
	case FullScan:
		return "full-scan"
	case PostingUnion:
		return "posting-union"
	case PivotJoin:
		return "pivot-join"
	default:
		return fmt.Sprintf("ScanKind(%d)", int(k))
	}
}

// Pred is one reason-part predicate annotated with the dictionary
// statistics the greedy ordering ranks it by.
type Pred struct {
	// Attr is the attribute name; Pos its schema column; Idx its declared
	// position within the rule's reason part.
	Attr string
	Pos  int
	Idx  int
	// Distinct and Rows are the column's observed cardinality and cell
	// count. Distinct/Rows approximates the probability that two rows agree
	// on the attribute — higher distinct means more selective.
	Distinct int
	Rows     int
}

// RulePlan is the planner's decision for one rule.
type RulePlan struct {
	Rule *rules.Rule
	Scan ScanKind
	// Preds lists the reason predicates most-selective first (PivotJoin) or
	// in declared order (FullScan, PostingUnion).
	Preds []Pred
	// Pivot is the schema column of the driving predicate (PivotJoin only).
	Pivot int
	// ConstPos/ConstIDs are the posting columns and interned IDs of the
	// CFD constants present in the dictionary (PostingUnion only).
	ConstPos []int
	ConstIDs []uint32
	// EstRows estimates how many rows the scan will visit; EstGroups the
	// number of groups the block will hold. Both feed block scheduling.
	EstRows   int
	EstGroups int
	// Why records, in one human-readable clause, why this shape and order
	// were picked — surfaced through core.Trace, the CLI, and /v1/stats.
	Why string
}

// Reordered reports whether the planned predicate order differs from the
// rule's declared order.
func (rp *RulePlan) Reordered() bool {
	for i := range rp.Preds {
		if rp.Preds[i].Idx != i {
			return true
		}
	}
	return false
}

// Choice is the serializable trace record of one rule's plan.
type Choice struct {
	RuleID    string   `json:"rule_id"`
	Scan      string   `json:"scan"`
	Order     []string `json:"order"`
	Reordered bool     `json:"reordered,omitempty"`
	EstRows   int      `json:"est_rows"`
	Why       string   `json:"why"`
}

// String renders the choice as one plan-dump line.
func (c Choice) String() string {
	return fmt.Sprintf("%s: %s [%s] — %s", c.RuleID, c.Scan, strings.Join(c.Order, " "), c.Why)
}

// Plan is the full evaluation plan: one RulePlan per rule, in rule order
// (block i of the index is rule i — re-ordering happens inside blocks and
// in the stage scheduler, never in block identity).
type Plan struct {
	Rules []RulePlan
}

// Choices returns the serializable trace records, one per rule.
func (p *Plan) Choices() []Choice {
	if p == nil {
		return nil
	}
	out := make([]Choice, len(p.Rules))
	for i := range p.Rules {
		rp := &p.Rules[i]
		order := make([]string, len(rp.Preds))
		for j, pr := range rp.Preds {
			order[j] = pr.Attr
		}
		out[i] = Choice{
			RuleID:    rp.Rule.ID,
			Scan:      rp.Scan.String(),
			Order:     order,
			Reordered: rp.Reordered(),
			EstRows:   rp.EstRows,
			Why:       rp.Why,
		}
	}
	return out
}

// BlockOrder returns block indices by descending estimated stage-I cost
// (longest-processing-time-first), so a bounded worker pool starts the
// heaviest blocks before the cheap ones. Ties keep rule order.
func (p *Plan) BlockOrder() []int {
	order := make([]int, len(p.Rules))
	for i := range order {
		order[i] = i
	}
	cost := func(i int) int {
		rp := &p.Rules[i]
		// Scan rows dominate build; group count drives AGP's pairwise work.
		return rp.EstRows + rp.EstGroups
	}
	sort.SliceStable(order, func(a, b int) bool { return cost(order[a]) > cost(order[b]) })
	return order
}

// pivotListMax caps the average posting-list length a PivotJoin is worth:
// the join only beats the plain scan when pivot lists are short (singleton
// lists skip all map probes), so a pivot with fewer than rows/pivotListMax
// distinct values falls through to FullScan.
const pivotListMax = 8

// New plans the rule set against the dictionary's accumulated column
// statistics. Rules must already validate against the schema. A dictionary
// with no observations (nil-stats or empty) yields an all-FullScan plan.
func New(rs []*rules.Rule, schema *dataset.Schema, dict *intern.Dict) *Plan {
	return NewFromStats(rs, schema, dict.Stats(), dict)
}

// NewFromStats is New over an explicit statistics view. dict resolves CFD
// constants to IDs and may be nil when no rule binds constants.
func NewFromStats(rs []*rules.Rule, schema *dataset.Schema, st *intern.Stats, dict *intern.Dict) *Plan {
	defer mPlanSeconds.ObserveSince(time.Now())
	p := &Plan{Rules: make([]RulePlan, len(rs))}
	for i, r := range rs {
		p.Rules[i] = planRule(r, schema, st, dict)
		if k := p.Rules[i].Scan; int(k) < len(mScanChosen) {
			mScanChosen[k].Inc()
		}
	}
	return p
}

func planRule(r *rules.Rule, schema *dataset.Schema, st *intern.Stats, dict *intern.Dict) RulePlan {
	rp := RulePlan{Rule: r, Scan: FullScan}
	rows := 0
	for i, pat := range r.Reason {
		pos := schema.MustIndex(pat.Attr)
		pr := Pred{Attr: pat.Attr, Pos: pos, Idx: i, Distinct: st.Distinct(pos), Rows: st.Rows(pos)}
		if pr.Rows > rows {
			rows = pr.Rows
		}
		rp.Preds = append(rp.Preds, pr)
	}
	rp.EstRows = rows
	rp.EstGroups = maxDistinct(rp.Preds)

	if rows == 0 {
		rp.Why = "no column statistics — full scan in declared order"
		return rp
	}

	// CFD constants: the block only holds rows matching at least one
	// constant, so the candidate set is the union of the constants' posting
	// lists — unless the constants cover most of the table anyway.
	if r.Kind == rules.CFD {
		if consts := constPatterns(r); len(consts) > 0 {
			covered := 0
			for _, pat := range consts {
				pos := schema.MustIndex(pat.Attr)
				id, ok := lookupConst(dict, pat.Const)
				if !ok {
					continue // absent from the data: matches no row
				}
				rp.ConstPos = append(rp.ConstPos, pos)
				rp.ConstIDs = append(rp.ConstIDs, id)
				covered += st.Freq(pos, id)
			}
			if covered*2 > rows {
				rp.ConstPos, rp.ConstIDs = nil, nil
				rp.Why = fmt.Sprintf("constants cover %d/%d rows — posting union would not prune, full scan", covered, rows)
				return rp
			}
			rp.Scan = PostingUnion
			rp.EstRows = covered
			rp.EstGroups = min(rp.EstGroups, covered)
			rp.Why = fmt.Sprintf("%d constant(s) cover ≤%d/%d rows — posting union over constant ID lists", len(rp.ConstIDs), covered, rows)
			return rp
		}
	}

	if len(rp.Preds) == 1 {
		rp.Why = "single-attribute reason — planning is a no-op, full scan"
		return rp
	}

	// Multi-attribute variable reason: drive by the most selective
	// predicate. Sort a copy most-selective first (stable on declared order
	// so equal-cardinality plans stay predictable).
	ordered := append([]Pred(nil), rp.Preds...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Distinct > ordered[b].Distinct })
	pivot := ordered[0]
	if pivot.Distinct*pivotListMax < rows {
		rp.Why = fmt.Sprintf("best pivot %s has %d distinct over %d rows (avg list > %d) — full scan", pivot.Attr, pivot.Distinct, rows, pivotListMax)
		return rp
	}
	rp.Scan = PivotJoin
	rp.Preds = ordered
	rp.Pivot = pivot.Pos
	rp.EstGroups = pivot.Distinct
	rp.Why = fmt.Sprintf("pivot %s: %d distinct over %d rows — join remaining predicates within pivot posting lists", pivot.Attr, pivot.Distinct, rows)
	return rp
}

// constPatterns returns the rule's constant reason patterns.
func constPatterns(r *rules.Rule) []rules.Pattern {
	var out []rules.Pattern
	for _, pat := range r.Reason {
		if pat.Const != "" {
			out = append(out, pat)
		}
	}
	return out
}

func lookupConst(dict *intern.Dict, v string) (uint32, bool) {
	if dict == nil {
		return 0, false
	}
	return dict.Lookup(v)
}

func maxDistinct(preds []Pred) int {
	m := 0
	for _, p := range preds {
		if p.Distinct > m {
			m = p.Distinct
		}
	}
	return m
}
