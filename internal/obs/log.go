package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewRunID returns a fresh 16-hex-char correlation ID. Run IDs tag log
// lines, WAL session records, and wire options so a clean can be traced
// across coordinator, workers, and recovery replays. They are opaque and
// random: nothing in the pipeline may branch on one (the parity suites
// enforce that outcomes are run-ID independent).
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; correlation
		// degrades to a constant rather than taking the pipeline down.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewLogger builds a slog.Logger writing to w. format is "text" or "json";
// level is "debug", "info", "warn", or "error". Unknown values fall back to
// text/info with an error so flag typos surface instead of silently
// changing verbosity.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return slog.New(slog.NewTextHandler(w, nil)), fmt.Errorf("obs: unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return slog.New(slog.NewTextHandler(w, opts)), fmt.Errorf("obs: unknown log format %q", format)
	}
}
