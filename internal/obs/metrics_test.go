package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives counters, gauges, and a histogram from many
// goroutines; run under -race it proves the instruments are data-race free,
// and the totals prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Re-request instruments by name from every goroutine to
			// exercise get-or-create under contention.
			c := r.Counter("hammer_total", "hammered events")
			g := r.Gauge("hammer_inflight", "in flight")
			h := r.Histogram("hammer_seconds", "latencies", DefBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000.0)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hammer_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hammer_inflight", "").Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %d", got)
	}
	h := r.Histogram("hammer_seconds", "", DefBuckets)
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram lost observations: got %d want %d", got, workers*perWorker)
	}
	// Sum of 0,1,...,99 ms repeated: per worker, 20 full cycles of
	// (0+...+99)/1000 = 4.95.
	want := float64(workers) * perWorker / 100 * 4.95
	if got := h.Sum(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("histogram sum drifted: got %g want %g", got, want)
	}
}

// TestPrometheusExpositionGolden locks the exposition format: header lines,
// label rendering and ordering, cumulative buckets, integer formatting.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("route", "clean"), L("code", "2xx")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "clean"), L("code", "5xx")).Inc()
	r.Gauge("app_sessions", "Live sessions.").Set(2)
	r.GaugeFunc("app_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	h := r.Histogram("app_clean_seconds", "Clean latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_clean_seconds Clean latency.
# TYPE app_clean_seconds histogram
app_clean_seconds_bucket{le="0.1"} 1
app_clean_seconds_bucket{le="1"} 3
app_clean_seconds_bucket{le="10"} 3
app_clean_seconds_bucket{le="+Inf"} 4
app_clean_seconds_sum 51.05
app_clean_seconds_count 4
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="2xx",route="clean"} 3
app_requests_total{code="5xx",route="clean"} 1
# HELP app_sessions Live sessions.
# TYPE app_sessions gauge
app_sessions 2
# HELP app_uptime_seconds Seconds since start.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 12.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabeledHistogramExposition checks the le label is spliced into an
// existing label set, not appended after the closing brace.
func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage_seconds", "", []float64{1}, L("stage", "agp")).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`stage_seconds_bucket{stage="agp",le="1"} 1`,
		`stage_seconds_bucket{stage="agp",le="+Inf"} 1`,
		`stage_seconds_sum{stage="agp"} 0.5`,
		`stage_seconds_count{stage="agp"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestQuantileBounds verifies the interpolation estimate always lands inside
// the bucket containing the true quantile — the accuracy contract the README
// documents.
func TestQuantileBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{0.01, 0.1, 1, 10})

	// 100 observations at 0.05 (bucket (0.01, 0.1]), 10 at 5 (bucket (1, 10]).
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}

	// p50 rank = 55 of 110 → inside (0.01, 0.1].
	if q := h.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Errorf("p50 = %g, want within (0.01, 0.1]", q)
	}
	// p99 rank = 108.9 → inside (1, 10].
	if q := h.Quantile(0.99); q <= 1 || q > 10 {
		t.Errorf("p99 = %g, want within (1, 10]", q)
	}
	// Empty histogram → 0.
	empty := r.Histogram("q_empty_seconds", "", []float64{1})
	if q := empty.Quantile(0.9); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
	// Everything in +Inf bucket → clamped to top finite bound.
	top := r.Histogram("q_top_seconds", "", []float64{0.01, 0.1})
	top.Observe(99)
	if q := top.Quantile(0.9); q != 0.1 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 0.1", q)
	}
}

// TestGaugeFuncRebind checks latest-wins callback replacement: a re-created
// owner re-binds the series to its live state.
func TestGaugeFuncRebind(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("owner_state", "", func() float64 { return 1 })
	r.GaugeFunc("owner_state", "", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "owner_state 2\n") {
		t.Fatalf("gauge func not re-bound:\n%s", b.String())
	}
}

// TestKindMismatchPanics locks in that registering one name under two kinds
// is a loud programming error, not silent aliasing.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual_total", "")
}

// TestSnapshotShape checks the JSON dump benchrunner embeds.
func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "").Add(7)
	h := r.Histogram("snap_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	// Sorted by name: snap_seconds before snap_total.
	if snaps[0].Name != "snap_seconds" || snaps[0].Type != "histogram" {
		t.Fatalf("unexpected first snapshot: %+v", snaps[0])
	}
	if snaps[0].Count != 2 || snaps[0].Sum != 5.5 {
		t.Fatalf("histogram snapshot wrong: %+v", snaps[0])
	}
	if snaps[0].P50 <= 0 || snaps[0].P99 > 10 {
		t.Fatalf("quantiles out of range: %+v", snaps[0])
	}
	if snaps[1].Name != "snap_total" || snaps[1].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", snaps[1])
	}
	if _, err := json.Marshal(snaps); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

// TestObserveSince sanity-checks the time helpers land in plausible buckets.
func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("since_seconds", "", DefBuckets)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if s := h.Sum(); s < 0.025 || s > 1 {
		t.Fatalf("sum = %g, want roughly 0.03", s)
	}
}

// TestNewRunID checks shape and uniqueness.
func TestNewRunID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if len(id) != 16 {
			t.Fatalf("run ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate run ID %q", id)
		}
		seen[id] = true
	}
}

// TestNewLogger covers format/level plumbing and the typo-surfacing errors.
func TestNewLogger(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "run", "abc123")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %s", out)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &doc); err != nil {
		t.Fatalf("json log line not parseable: %v: %s", err, out)
	}
	if doc["run"] != "abc123" || doc["msg"] != "shown" {
		t.Errorf("unexpected log doc: %v", doc)
	}

	if _, err := NewLogger(&b, "yaml", "info"); err == nil {
		t.Error("expected error for unknown format")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Error("expected error for unknown level")
	}
	lg2, err := NewLogger(&b, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	if !lg2.Enabled(context.Background(), slog.LevelDebug) {
		t.Error("debug level not enabled")
	}
}
