// Package obs is the zero-dependency observability substrate: a named
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with quantile estimation) exposed in Prometheus text format,
// plus the structured-logging and run-correlation helpers the daemons share.
//
// Design constraints, in order:
//
//   - Observation must never perturb the observed pipeline: every
//     instrument is a few atomic operations, instruments are get-or-create
//     (hot paths hold *Counter/*Histogram pointers, no map lookups per
//     event), and nothing allocates after registration. The golden parity
//     suite runs with instrumentation enabled and stays byte-identical.
//   - No dependencies beyond the standard library — the container bakes in
//     no Prometheus client, and the exposition format is simple enough to
//     emit directly.
//   - One process-wide default registry: the pipeline packages (core,
//     index, plan, distributed, wal, server) register their families at
//     package init, so a scrape sees every registered series from the first
//     request on, zero-valued until traffic arrives. CI's metrics smoke
//     leans on this: "registered" is a static property, "moving" a runtime
//     one, and both are checked.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series. Series sharing a
// metric name but differing in labels are distinct instruments grouped
// under one HELP/TYPE header on exposition.
type Label struct{ Key, Value string }

// L is shorthand for a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc samples its callback at scrape time. The callback is swappable
// (latest registration wins) so a re-created owner — a test server over the
// same process-wide registry — re-binds the series to its live state.
type gaugeFunc struct{ fn atomic.Value }

// Histogram is a fixed-bucket distribution: per-bucket atomic counts plus a
// running sum and count. Buckets are cumulative upper bounds in ascending
// order; an implicit +Inf bucket catches the rest. All methods are safe for
// concurrent use and allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank — the standard
// histogram_quantile estimate. The estimate is bounded by the bucket's
// edges: it is exact only up to bucket resolution. An empty histogram
// returns 0; ranks landing in the +Inf bucket return the highest finite
// bound (the estimate cannot exceed what the buckets resolve).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are latency buckets from 1µs to 60s, roughly ×2.5 per step —
// wide enough to hold both a sub-millisecond block clean and a multi-second
// end-to-end run in one histogram shape.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are byte-size buckets from 64 B to 16 MiB, ×4 per step (for
// record and message sizes).
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// metricKind tags a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered instrument under a family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	gf     *gaugeFunc
	h      *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label-suffix registration order (sorted at expose)
	series map[string]*series
}

// Registry is a named collection of metric families. All methods are safe
// for concurrent use; instruments are get-or-create, so callers may
// re-request a series by name and receive the already-registered instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every pipeline package registers
// into; /metrics serves it.
func Default() *Registry { return defaultRegistry }

// renderLabels renders a sorted, escaped {k="v",...} suffix ("" when empty).
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append([]Label(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating family and series on
// first sight. Registering one name under two kinds is a programming error
// and panics.
func (r *Registry) get(name, help string, kind metricKind, ls []Label) *series {
	suffix := renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	s := f.series[suffix]
	if s == nil {
		s = &series{labels: suffix}
		f.series[suffix] = s
		f.order = append(f.order, suffix)
	}
	return s
}

// Counter returns the named counter, registering it on first sight.
func (r *Registry) Counter(name, help string, ls ...Label) *Counter {
	s := r.get(name, help, kindCounter, ls)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the named gauge, registering it on first sight.
func (r *Registry) Gauge(name, help string, ls ...Label) *Gauge {
	s := r.get(name, help, kindGauge, ls)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge sampled from fn at scrape time. Re-registering
// the same series replaces the callback (latest owner wins), so a restarted
// subsystem re-binds the series to its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, ls ...Label) {
	s := r.get(name, help, kindGauge, ls)
	if s.gf == nil {
		s.gf = &gaugeFunc{}
	}
	s.gf.fn.Store(fn)
}

// Histogram returns the named histogram over the given cumulative upper
// bounds (ascending; DefBuckets for latencies), registering it on first
// sight. A later request with different buckets returns the existing
// instrument unchanged.
func (r *Registry) Histogram(name, help string, buckets []float64, ls ...Label) *Histogram {
	s := r.get(name, help, kindHistogram, ls)
	if s.h == nil {
		bounds := append([]float64(nil), buckets...)
		if len(bounds) == 0 {
			bounds = append(bounds, DefBuckets...)
		}
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return s.h
}

// fmtFloat renders a sample value the way Prometheus text format expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry in Prometheus text exposition format:
// families sorted by name, series sorted by label suffix, one HELP/TYPE
// header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type flatSeries struct {
		labels string
		s      *series
	}
	type flatFamily struct {
		name, help string
		kind       metricKind
		series     []flatSeries
	}
	flat := make([]flatFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ff := flatFamily{name: name, help: f.help, kind: f.kind}
		suffixes := append([]string(nil), f.order...)
		sort.Strings(suffixes)
		for _, suffix := range suffixes {
			ff.series = append(ff.series, flatSeries{suffix, f.series[suffix]})
		}
		flat = append(flat, ff)
	}
	r.mu.Unlock()

	for _, f := range flat {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, fs := range f.series {
			if err := writeSeries(w, f.name, fs.labels, fs.s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, labels string, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(float64(s.c.Value())))
		return err
	case s.gf != nil:
		v := 0.0
		if fn, ok := s.gf.fn.Load().(func() float64); ok && fn != nil {
			v = fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(v))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(float64(s.g.Value())))
		return err
	case s.h != nil:
		h := s.h
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if err := writeBucket(w, name, labels, fmtFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if err := writeBucket(w, name, labels, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
		return err
	}
	return nil
}

// writeBucket renders one cumulative histogram bucket, splicing le into the
// series' label set.
func writeBucket(w io.Writer, name, labels, le string, cum int64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels[1:len(labels)-1], le, cum)
	return err
}

// Handler serves the registry in Prometheus text format (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Snapshot is one series' state in a JSON-friendly shape (benchrunner's
// -metrics-dump; benchdiff can diff stage-level timings from it).
type Snapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Type   string `json:"type"`
	// Value is the counter or gauge value.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/P50/P90/P99 summarize a histogram.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot captures every registered series, sorted by (name, labels).
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	var out []Snapshot
	for name, f := range r.families {
		for _, s := range f.series {
			snap := Snapshot{Name: name, Labels: s.labels, Type: f.kind.String()}
			switch {
			case s.c != nil:
				snap.Value = float64(s.c.Value())
			case s.gf != nil:
				if fn, ok := s.gf.fn.Load().(func() float64); ok && fn != nil {
					snap.Value = fn()
				}
			case s.g != nil:
				snap.Value = float64(s.g.Value())
			case s.h != nil:
				snap.Count = s.h.Count()
				snap.Sum = s.h.Sum()
				snap.P50 = s.h.Quantile(0.50)
				snap.P90 = s.h.Quantile(0.90)
				snap.P99 = s.h.Quantile(0.99)
			}
			out = append(out, snap)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
