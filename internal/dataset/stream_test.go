package dataset

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

const streamFixture = "\xEF\xBB\xBFCity,State,Zip\n" +
	"BOAZ,AL,35956\n" +
	"BOAZ,AL,35957\n" +
	"\"multi\nline\",XX,00000\n" +
	"GADSDEN,AL,35901\n"

func TestStreamCSVMatchesReadCSV(t *testing.T) {
	want, err := ReadCSV(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	s, err := StreamCSV(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Schema.Attrs(), got.Schema.Attrs()) {
		t.Fatalf("schema mismatch: %v vs %v", want.Schema.Attrs(), got.Schema.Attrs())
	}
	if want.Len() != got.Len() {
		t.Fatalf("row count: %d vs %d", want.Len(), got.Len())
	}
	for i := range want.Tuples {
		if want.Tuples[i].ID != got.Tuples[i].ID || !reflect.DeepEqual(want.Tuples[i].Values, got.Tuples[i].Values) {
			t.Fatalf("tuple %d: %+v vs %+v", i, want.Tuples[i], got.Tuples[i])
		}
	}
}

func TestStreamCSVRowsNotRetained(t *testing.T) {
	s, err := StreamCSV(strings.NewReader("A,B\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	a0 := first[0]
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	// The slice is documented as reused; this pins the ReuseRecord wiring so
	// accidental retention in a caller would surface as a test change here.
	if first[0] == a0 && a0 != "3" {
		t.Logf("reader reused the record buffer (first now %q)", first[0])
	}
}

func TestStreamCSVRaggedRowError(t *testing.T) {
	for _, doc := range []string{
		"A,B\n1\n",
		"A,B\n1,2,3\n",
	} {
		_, wantErr := ReadCSV(strings.NewReader(doc))
		s, err := StreamCSV(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var gotErr error
		for {
			if _, gotErr = s.Next(); gotErr != nil {
				break
			}
		}
		if gotErr == io.EOF {
			gotErr = nil
		}
		if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
			t.Fatalf("error mismatch for %q:\n  ReadCSV:   %v\n  StreamCSV: %v", doc, wantErr, gotErr)
		}
	}
}

func TestStreamEncoderMatchesEncode(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := Encode(tb, nil)

	s, err := StreamCSV(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	gotTb, gotEnc, err := EncodeStream(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotTb.Len() != tb.Len() {
		t.Fatalf("row count: %d vs %d", gotTb.Len(), tb.Len())
	}
	for i := range tb.Tuples {
		if !reflect.DeepEqual(tb.Tuples[i].Values, gotTb.Tuples[i].Values) {
			t.Fatalf("tuple %d values: %v vs %v", i, tb.Tuples[i].Values, gotTb.Tuples[i].Values)
		}
		if !reflect.DeepEqual(wantEnc.Rows[i], gotEnc.Rows[i]) {
			t.Fatalf("encoded row %d: %v vs %v", i, wantEnc.Rows[i], gotEnc.Rows[i])
		}
	}
	// First-sight ID assignment must match, so the dictionaries decode
	// identically.
	for i, row := range wantEnc.Rows {
		for j, id := range row {
			if wantEnc.Dict.Value(id) != gotEnc.Dict.Value(gotEnc.Rows[i][j]) {
				t.Fatalf("cell (%d,%d) decodes differently", i, j)
			}
		}
	}
	// Column statistics drive the planner; they must be observed identically.
	wantSt, gotSt := wantEnc.Dict.Stats(), gotEnc.Dict.Stats()
	if wantSt.Columns() != gotSt.Columns() {
		t.Fatalf("stats columns: %d vs %d", wantSt.Columns(), gotSt.Columns())
	}
	for c := 0; c < wantSt.Columns(); c++ {
		if wantSt.Rows(c) != gotSt.Rows(c) || wantSt.Distinct(c) != gotSt.Distinct(c) {
			t.Fatalf("stats col %d: rows %d/%d distinct %d/%d", c,
				wantSt.Rows(c), gotSt.Rows(c), wantSt.Distinct(c), gotSt.Distinct(c))
		}
	}
}

func TestEncodeStreamRaggedRowPropagates(t *testing.T) {
	s, err := StreamCSV(strings.NewReader("A,B\n1,2\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EncodeStream(s, nil); err == nil {
		t.Fatal("want ragged-row error, got nil")
	}
}
