package dataset

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundtrip(t *testing.T) {
	tb := NewTable(MustSchema("A", "B"))
	tb.MustAppend("hello, world", "2")
	tb.MustAppend("with \"quotes\"", "4")
	tb.MustAppend("", "newline\nvalue")

	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !back.Schema.Equal(tb.Schema) {
		t.Fatalf("schema mismatch: %v", back.Schema.Attrs())
	}
	if d := back.Diff(tb); len(d) != 0 {
		t.Errorf("roundtrip diff: %v", d)
	}
}

func TestCSVFileRoundtrip(t *testing.T) {
	tb := NewTable(MustSchema("X", "Y"))
	tb.MustAppend("1", "2")
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := tb.WriteCSVFile(path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if d := back.Diff(tb); len(d) != 0 {
		t.Errorf("roundtrip diff: %v", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

// TestReadCSVEdgeCases covers the inputs that used to misalign silently or
// fail opaquely: UTF-8 BOMs from spreadsheet exports, and ragged rows.
func TestReadCSVEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		wantErr string // substring of the error; "" means success
		attrs   []string
		rows    [][]string
	}{
		{
			name:  "plain",
			input: "A,B\n1,2\n3,4\n",
			attrs: []string{"A", "B"},
			rows:  [][]string{{"1", "2"}, {"3", "4"}},
		},
		{
			name:  "bom header",
			input: "\ufeffA,B\n1,2\n",
			attrs: []string{"A", "B"},
			rows:  [][]string{{"1", "2"}},
		},
		{
			name:  "bom with quoted header",
			input: "\ufeff\"A\",B\nx,y\n",
			attrs: []string{"A", "B"},
			rows:  [][]string{{"x", "y"}},
		},
		{
			name:  "crlf",
			input: "A,B\r\n1,2\r\n",
			attrs: []string{"A", "B"},
			rows:  [][]string{{"1", "2"}},
		},
		{
			name:  "blank lines skipped",
			input: "A,B\n1,2\n\n3,4\n",
			attrs: []string{"A", "B"},
			rows:  [][]string{{"1", "2"}, {"3", "4"}},
		},
		{
			name:    "short row",
			input:   "A,B\n1,2\n3\n",
			wantErr: "line 3: short row has 1 fields, header has 2",
		},
		{
			name:    "long row",
			input:   "A,B\n1,2,3\n",
			wantErr: "line 2: long row has 3 fields, header has 2",
		},
		{
			name:    "short row after multi-line quoted field",
			input:   "A,B\n\"multi\nline\",2\n3\n",
			wantErr: "line 4: short row has 1 fields, header has 2",
		},
		{
			name:    "no header",
			input:   "",
			wantErr: "reading CSV header",
		},
		{
			name:    "duplicate header",
			input:   "A,A\n1,2\n",
			wantErr: "duplicate attribute",
		},
		{
			name:    "bare quote",
			input:   "A,B\n\"oops,2\n",
			wantErr: "line",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tb, err := ReadCSV(strings.NewReader(tc.input))
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ReadCSV succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := tb.Schema.Attrs(); strings.Join(got, ",") != strings.Join(tc.attrs, ",") {
				t.Fatalf("attrs = %v, want %v", got, tc.attrs)
			}
			if tb.Len() != len(tc.rows) {
				t.Fatalf("rows = %d, want %d", tb.Len(), len(tc.rows))
			}
			for i, want := range tc.rows {
				got := tb.Tuples[i].Values
				if strings.Join(got, ",") != strings.Join(want, ",") {
					t.Errorf("row %d = %v, want %v", i, got, want)
				}
			}
		})
	}
}
