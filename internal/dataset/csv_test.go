package dataset

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundtrip(t *testing.T) {
	tb := NewTable(MustSchema("A", "B"))
	tb.MustAppend("hello, world", "2")
	tb.MustAppend("with \"quotes\"", "4")
	tb.MustAppend("", "newline\nvalue")

	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !back.Schema.Equal(tb.Schema) {
		t.Fatalf("schema mismatch: %v", back.Schema.Attrs())
	}
	if d := back.Diff(tb); len(d) != 0 {
		t.Errorf("roundtrip diff: %v", d)
	}
}

func TestCSVFileRoundtrip(t *testing.T) {
	tb := NewTable(MustSchema("X", "Y"))
	tb.MustAppend("1", "2")
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := tb.WriteCSVFile(path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if d := back.Diff(tb); len(d) != 0 {
		t.Errorf("roundtrip diff: %v", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("A,A\n1,2\n")); err == nil {
		t.Error("duplicate header should fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("short row should fail")
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
