package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a table from CSV. The first record is the header (schema).
// A UTF-8 byte-order mark before the header is stripped (spreadsheet exports
// routinely carry one; left in place it silently corrupts the first
// attribute's name, so no rule would ever match it). Ragged rows — more or
// fewer fields than the header — fail with the offending line number and
// both field counts rather than misaligning values against attributes.
func ReadCSV(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	if bom, err := br.Peek(3); err == nil && bom[0] == 0xEF && bom[1] == 0xBB && bom[2] == 0xBF {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, err
	}
	tb := NewTable(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if len(rec) > 0 {
			// Exact position from the reader (robust to quoted multi-line
			// fields and blank lines, which a plain record counter is not).
			line, _ = cr.FieldPos(0)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Len() {
			return nil, raggedRowError(line, len(rec), schema.Len())
		}
		if _, err := tb.Append(rec...); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return tb, nil
}

// raggedRowError describes a row whose width disagrees with the header.
func raggedRowError(line, got, want int) error {
	kind := "short"
	if got > want {
		kind = "long"
	}
	return fmt.Errorf("dataset: CSV line %d: %s row has %d fields, header has %d",
		line, kind, got, want)
}

// ReadCSVFile parses a table from the named CSV file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV serializes the table as CSV with a header record.
func (tb *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Attrs()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for _, t := range tb.Tuples {
		if err := cw.Write(t.Values); err != nil {
			return fmt.Errorf("dataset: writing tuple %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the table to the named file.
func (tb *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
