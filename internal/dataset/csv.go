package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a table from CSV. The first record is the header (schema).
// A UTF-8 byte-order mark before the header is stripped (spreadsheet exports
// routinely carry one; left in place it silently corrupts the first
// attribute's name, so no rule would ever match it). Ragged rows — more or
// fewer fields than the header — fail with the offending line number and
// both field counts rather than misaligning values against attributes.
func ReadCSV(r io.Reader) (*Table, error) {
	s, err := StreamCSV(r)
	if err != nil {
		return nil, err
	}
	tb := NewTable(s.Schema())
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return tb, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := tb.Append(rec...); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", s.Line(), err)
		}
	}
}

// raggedRowError describes a row whose width disagrees with the header.
func raggedRowError(line, got, want int) error {
	kind := "short"
	if got > want {
		kind = "long"
	}
	return fmt.Errorf("dataset: CSV line %d: %s row has %d fields, header has %d",
		line, kind, got, want)
}

// ReadCSVFile parses a table from the named CSV file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV serializes the table as CSV with a header record.
func (tb *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Attrs()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for _, t := range tb.Tuples {
		if err := cw.Write(t.Values); err != nil {
			return fmt.Errorf("dataset: writing tuple %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the table to the named file.
func (tb *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
