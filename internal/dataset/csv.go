package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a table from CSV. The first record is the header (schema).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, err
	}
	tb := NewTable(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if _, err := tb.Append(rec...); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return tb, nil
}

// ReadCSVFile parses a table from the named CSV file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV serializes the table as CSV with a header record.
func (tb *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Attrs()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for _, t := range tb.Tuples {
		if err := cw.Write(t.Values); err != nil {
			return fmt.Errorf("dataset: writing tuple %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the table to the named file.
func (tb *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
