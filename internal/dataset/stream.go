package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"mlnclean/internal/intern"
)

// RowStream yields a table one row at a time, so ingest never has to hold
// the raw table: CSV parsing, dictionary encoding, and distributed partition
// shipping all compose over it. Implementations are not safe for concurrent
// use.
type RowStream interface {
	// Schema returns the stream's attribute schema (available before the
	// first row).
	Schema() *Schema
	// Next returns the next row's values, or io.EOF after the last row. The
	// returned slice is only valid until the next call; callers that retain
	// rows must copy (Table.Append and StreamEncoder.Append both do).
	Next() ([]string, error)
}

// CSVStream is a RowStream over a CSV document: the header is consumed at
// construction, rows are parsed on demand. Error semantics are exactly
// ReadCSV's — a UTF-8 BOM before the header is stripped, and ragged rows
// fail with the offending line number and both field counts.
type CSVStream struct {
	cr     *csv.Reader
	schema *Schema
	line   int
	rec    []string // reused by the csv.Reader between calls
}

// StreamCSV opens a CSV document as a row stream, reading and validating the
// header record immediately. ReadCSV is StreamCSV drained into a Table.
func StreamCSV(r io.Reader) (*CSVStream, error) {
	br := bufio.NewReader(r)
	if bom, err := br.Peek(3); err == nil && bom[0] == 0xEF && bom[1] == 0xBB && bom[2] == 0xBF {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, err
	}
	return &CSVStream{cr: cr, schema: schema, line: 1}, nil
}

// Schema returns the header-derived schema.
func (s *CSVStream) Schema() *Schema { return s.schema }

// Next parses the next data row. The returned slice is owned by the stream
// and overwritten on the following call.
func (s *CSVStream) Next() ([]string, error) {
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if len(rec) > 0 {
		// Exact position from the reader (robust to quoted multi-line
		// fields and blank lines, which a plain record counter is not).
		s.line, _ = s.cr.FieldPos(0)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV line %d: %w", s.line, err)
	}
	if len(rec) != s.schema.Len() {
		return nil, raggedRowError(s.line, len(rec), s.schema.Len())
	}
	s.rec = rec
	return rec, nil
}

// Line returns the CSV line number of the most recently returned row.
func (s *CSVStream) Line() int { return s.line }

// fileStream closes its file once the stream is drained or errors.
type fileStream struct {
	*CSVStream
	f *os.File
}

func (s *fileStream) Next() ([]string, error) {
	row, err := s.CSVStream.Next()
	if err != nil && s.f != nil {
		s.f.Close()
		s.f = nil
	}
	return row, err
}

// StreamCSVFile opens the named CSV file as a row stream. The file is closed
// automatically when the stream reaches EOF or returns an error.
func StreamCSVFile(path string) (RowStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := StreamCSV(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileStream{CSVStream: s, f: f}, nil
}

// ReadAll drains a row stream into a table.
func ReadAll(s RowStream) (*Table, error) {
	tb := NewTable(s.Schema())
	for {
		row, err := s.Next()
		if err == io.EOF {
			return tb, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := tb.Append(row...); err != nil {
			return nil, err
		}
	}
}

// encChunkRows sizes the StreamEncoder's flat ID backing chunks: large
// enough to amortize allocation, small enough that a part-filled tail chunk
// wastes little.
const encChunkRows = 4096

// StreamEncoder builds a Table and its dictionary-encoded companion
// incrementally, one row at a time. It replicates Encode exactly — value IDs
// are assigned in row-major first-sight order and per-column statistics are
// observed per row — so feeding the same rows yields a bit-identical
// Encoded. Unlike ReadCSV+Encode, the raw strings are never duplicated: each
// tuple's values alias the dictionary's canonical strings, so a table
// ingested through the encoder holds one copy of every distinct value.
type StreamEncoder struct {
	schema *Schema
	dict   *intern.Dict
	st     *intern.Stats
	tb     *Table
	enc    *Encoded
	chunk  []uint32 // current flat backing chunk, carved per row
}

// NewStreamEncoder creates an encoder over the schema, interning into dict
// (nil for a fresh dictionary).
func NewStreamEncoder(schema *Schema, dict *intern.Dict) *StreamEncoder {
	if dict == nil {
		dict = intern.NewDict()
	}
	return &StreamEncoder{
		schema: schema,
		dict:   dict,
		st:     dict.Stats(),
		tb:     NewTable(schema),
		enc:    &Encoded{Dict: dict},
	}
}

// Append interns one row, appends the canonicalized tuple to the table, and
// records its encoded row. Returns the created tuple.
func (se *StreamEncoder) Append(values []string) (*Tuple, error) {
	return se.AppendID(len(se.tb.Tuples), values)
}

// AppendID is Append with a caller-supplied tuple ID: the distributed
// workers preserve the coordinator's global tuple IDs across the wire while
// still ingesting batches through the encoder.
func (se *StreamEncoder) AppendID(id int, values []string) (*Tuple, error) {
	width := se.schema.Len()
	if len(values) != width {
		return nil, fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(values), width)
	}
	if len(se.chunk) < width {
		se.chunk = make([]uint32, encChunkRows*width)
	}
	row := se.chunk[:width:width]
	se.chunk = se.chunk[width:]
	vals := make([]string, width)
	for j, v := range values {
		id := se.dict.Intern(v)
		row[j] = id
		// The canonical interned string: identical bytes, shared backing.
		vals[j] = se.dict.Value(id)
	}
	se.st.ObserveRow(row)
	t := &Tuple{ID: id, Values: vals}
	se.tb.Tuples = append(se.tb.Tuples, t)
	se.enc.Rows = append(se.enc.Rows, row)
	return t, nil
}

// Table returns the accumulated table. Valid at any point; rows appended
// later continue to land in it.
func (se *StreamEncoder) Table() *Table { return se.tb }

// Encoded returns the accumulated encoded companion, row-aligned with
// Table().Tuples and sharing the encoder's dictionary.
func (se *StreamEncoder) Encoded() *Encoded { return se.enc }

// Dict returns the encoder's dictionary.
func (se *StreamEncoder) Dict() *intern.Dict { return se.dict }

// EncodeStream drains a row stream through a StreamEncoder: the chunked
// ingest path of the streaming pipeline. It returns the table and its
// encoded companion, equivalent to ReadAll followed by Encode but without
// ever holding a second copy of the raw strings.
func EncodeStream(s RowStream, dict *intern.Dict) (*Table, *Encoded, error) {
	se := NewStreamEncoder(s.Schema(), dict)
	for {
		row, err := s.Next()
		if err == io.EOF {
			return se.Table(), se.Encoded(), nil
		}
		if err != nil {
			return nil, nil, err
		}
		if _, err := se.Append(row); err != nil {
			return nil, nil, err
		}
	}
}
