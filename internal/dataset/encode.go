package dataset

import "mlnclean/internal/intern"

// Encoded is the dictionary-encoded companion of a Table: one dense uint32
// value ID per cell, row-aligned with Table.Tuples (positional, not by tuple
// ID). The hot pipeline paths — index construction, AGP/RSC distances, FSCR
// fusion — operate on these IDs; strings are only re-materialized at output
// and trace boundaries.
type Encoded struct {
	Dict *intern.Dict
	// Rows holds one ID slice per tuple, in Table.Tuples order.
	Rows [][]uint32
}

// Encode interns every cell of the table into dict (creating a fresh
// dictionary when nil) and returns the encoded companion. Cell IDs are
// assigned in row-major first-sight order, so encoding the same table into
// an empty dictionary is deterministic.
func Encode(tb *Table, dict *intern.Dict) *Encoded {
	if dict == nil {
		dict = intern.NewDict()
	}
	enc := &Encoded{Dict: dict, Rows: make([][]uint32, len(tb.Tuples))}
	width := tb.Schema.Len()
	flat := make([]uint32, len(tb.Tuples)*width) // one backing array, no per-row alloc
	st := dict.Stats()
	for i, t := range tb.Tuples {
		row := flat[i*width : (i+1)*width : (i+1)*width]
		for j, v := range t.Values {
			row[j] = dict.Intern(v)
		}
		st.ObserveRow(row[:len(t.Values)])
		enc.Rows[i] = row
	}
	return enc
}
