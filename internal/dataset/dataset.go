// Package dataset provides the relational data model used throughout
// MLNClean: schemas, tuples, tables, and cell addressing. A Table is an
// ordered multiset of tuples over a fixed attribute schema; every value is a
// string, matching the paper's string-distance based cleaning semantics.
package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of attribute names with O(1) name lookup.
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be unique and
// non-empty.
func NewSchema(attrs ...string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	s := &Schema{attrs: make([]string, len(attrs)), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("dataset: empty attribute name at position %d", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", a)
		}
		s.attrs[i] = a
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attrs returns a copy of the attribute names in schema order.
func (s *Schema) Attrs() []string {
	out := make([]string, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the attribute name at position i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute, panicking if absent.
// Use only where the attribute is statically known to exist (e.g. after rule
// validation against this schema).
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Tuple is a row: a stable integer ID plus one string value per attribute.
// The ID survives cleaning so that repaired tables can be diffed against the
// dirty input and the ground truth.
type Tuple struct {
	ID     int
	Values []string
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() *Tuple {
	v := make([]string, len(t.Values))
	copy(v, t.Values)
	return &Tuple{ID: t.ID, Values: v}
}

// Table is a schema plus an ordered list of tuples.
type Table struct {
	Schema *Schema
	Tuples []*Tuple
}

// NewTable creates an empty table over the schema.
func NewTable(s *Schema) *Table {
	return &Table{Schema: s}
}

// Append adds a row of values, assigning the next sequential ID, and returns
// the created tuple. The number of values must match the schema width.
func (tb *Table) Append(values ...string) (*Tuple, error) {
	if len(values) != tb.Schema.Len() {
		return nil, fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(values), tb.Schema.Len())
	}
	v := make([]string, len(values))
	copy(v, values)
	t := &Tuple{ID: len(tb.Tuples), Values: v}
	tb.Tuples = append(tb.Tuples, t)
	return t, nil
}

// MustAppend is Append that panics on width mismatch; for tests and literals.
func (tb *Table) MustAppend(values ...string) *Tuple {
	t, err := tb.Append(values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of tuples.
func (tb *Table) Len() int { return len(tb.Tuples) }

// Cell returns the value of tuple t on the named attribute.
func (tb *Table) Cell(t *Tuple, attr string) string {
	return t.Values[tb.Schema.MustIndex(attr)]
}

// SetCell assigns the value of tuple t on the named attribute.
func (tb *Table) SetCell(t *Tuple, attr, value string) {
	t.Values[tb.Schema.MustIndex(attr)] = value
}

// ByID returns the tuple with the given ID, or nil. IDs assigned by Append
// are positional, but cleaned tables may have gaps after deduplication, so
// this scans when the positional shortcut misses.
func (tb *Table) ByID(id int) *Tuple {
	if id >= 0 && id < len(tb.Tuples) && tb.Tuples[id].ID == id {
		return tb.Tuples[id]
	}
	for _, t := range tb.Tuples {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Clone returns a deep copy of the table sharing the (immutable) schema.
func (tb *Table) Clone() *Table {
	out := &Table{Schema: tb.Schema, Tuples: make([]*Tuple, len(tb.Tuples))}
	for i, t := range tb.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Project returns the values of tuple t on the given attributes, in order.
func (tb *Table) Project(t *Tuple, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = t.Values[tb.Schema.MustIndex(a)]
	}
	return out
}

// Domain returns the sorted set of distinct values of the named attribute.
func (tb *Table) Domain(attr string) []string {
	i := tb.Schema.MustIndex(attr)
	seen := make(map[string]struct{})
	for _, t := range tb.Tuples {
		seen[t.Values[i]] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ValueCounts returns the frequency of each distinct value of the attribute.
func (tb *Table) ValueCounts(attr string) map[string]int {
	i := tb.Schema.MustIndex(attr)
	counts := make(map[string]int)
	for _, t := range tb.Tuples {
		counts[t.Values[i]]++
	}
	return counts
}

// Key joins the projection of t onto attrs with an unprintable separator
// (0x1f, ASCII unit separator).
//
// Display/eval only: a value containing the separator byte makes the join
// ambiguous ({"a\x1fb"} and {"a","b"} collide), so joined keys must never
// decide pipeline identity. The cleaning hot path keys pieces, groups, and
// duplicates on interned ID sequences (internal/intern), which are immune;
// joined keys survive only in traces, evaluation, and wire summaries, where
// they are compared against other joins of the same shape.
const keySep = "\x1f"

// Key returns a composite display key for tuple t over attrs.
func (tb *Table) Key(t *Tuple, attrs []string) string {
	return strings.Join(tb.Project(t, attrs), keySep)
}

// JoinKey joins already-projected values into a composite display key. See
// Key for why this must not be used as a pipeline identity.
func JoinKey(values []string) string { return strings.Join(values, keySep) }

// SplitKey splits a composite key back into its values.
func SplitKey(key string) []string { return strings.Split(key, keySep) }

// String renders the table as an aligned text grid (for examples and debug).
func (tb *Table) String() string {
	var b strings.Builder
	widths := make([]int, tb.Schema.Len())
	for i, a := range tb.Schema.attrs {
		widths[i] = len(a)
	}
	for _, t := range tb.Tuples {
		for i, v := range t.Values {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	fmt.Fprintf(&b, "%-4s", "TID")
	for i, a := range tb.Schema.attrs {
		fmt.Fprintf(&b, " %-*s", widths[i], a)
	}
	b.WriteByte('\n')
	for _, t := range tb.Tuples {
		fmt.Fprintf(&b, "t%-3d", t.ID)
		for i, v := range t.Values {
			fmt.Fprintf(&b, " %-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff lists the cells at which two tables with identical schemas and tuple
// IDs differ. Tuples present in only one table are reported with attr "" and
// the side that has them in Got/Want.
type CellDiff struct {
	TupleID int
	Attr    string
	Got     string
	Want    string
}

// Diff compares tb (got) against want, matching tuples by ID.
func (tb *Table) Diff(want *Table) []CellDiff {
	var diffs []CellDiff
	wantByID := make(map[int]*Tuple, want.Len())
	for _, t := range want.Tuples {
		wantByID[t.ID] = t
	}
	seen := make(map[int]bool, tb.Len())
	for _, t := range tb.Tuples {
		seen[t.ID] = true
		w, ok := wantByID[t.ID]
		if !ok {
			diffs = append(diffs, CellDiff{TupleID: t.ID, Got: "present", Want: "absent"})
			continue
		}
		for i := range t.Values {
			if t.Values[i] != w.Values[i] {
				diffs = append(diffs, CellDiff{TupleID: t.ID, Attr: tb.Schema.Attr(i), Got: t.Values[i], Want: w.Values[i]})
			}
		}
	}
	for _, w := range want.Tuples {
		if !seen[w.ID] {
			diffs = append(diffs, CellDiff{TupleID: w.ID, Got: "absent", Want: "present"})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].TupleID != diffs[j].TupleID {
			return diffs[i].TupleID < diffs[j].TupleID
		}
		return diffs[i].Attr < diffs[j].Attr
	})
	return diffs
}
