package dataset

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty attribute name should fail")
	}
	if _, err := NewSchema("A", "B", "A"); err == nil {
		t.Error("duplicate attribute should fail")
	}
	s, err := NewSchema("A", "B", "C")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema("A", "B", "C")
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Errorf("Index(B) = %d,%v want 1,true", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Error("Index(Z) should miss")
	}
	if !s.Has("C") || s.Has("Z") {
		t.Error("Has misbehaves")
	}
	if s.Attr(2) != "C" {
		t.Errorf("Attr(2) = %q", s.Attr(2))
	}
	if got := s.Attrs(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("Attrs = %v", got)
	}
	// Attrs must return a copy.
	s.Attrs()[0] = "mutated"
	if s.Attr(0) != "A" {
		t.Error("Attrs leaked internal slice")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown attribute should panic")
		}
	}()
	MustSchema("A").MustIndex("B")
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("A", "B")
	if !a.Equal(MustSchema("A", "B")) {
		t.Error("identical schemas should be equal")
	}
	if a.Equal(MustSchema("B", "A")) {
		t.Error("order matters")
	}
	if a.Equal(MustSchema("A")) {
		t.Error("length matters")
	}
}

func TestTableAppendAndCells(t *testing.T) {
	tb := NewTable(MustSchema("A", "B"))
	tp, err := tb.Append("1", "2")
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if tp.ID != 0 {
		t.Errorf("first tuple ID = %d", tp.ID)
	}
	if _, err := tb.Append("only-one"); err == nil {
		t.Error("width mismatch should fail")
	}
	tb.MustAppend("3", "4")
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if got := tb.Cell(tb.Tuples[1], "B"); got != "4" {
		t.Errorf("Cell = %q", got)
	}
	tb.SetCell(tb.Tuples[1], "B", "9")
	if got := tb.Cell(tb.Tuples[1], "B"); got != "9" {
		t.Errorf("SetCell not applied, got %q", got)
	}
}

func TestTableAppendCopiesValues(t *testing.T) {
	tb := NewTable(MustSchema("A"))
	vals := []string{"x"}
	tb.MustAppend(vals...)
	vals[0] = "mutated"
	if tb.Tuples[0].Values[0] != "x" {
		t.Error("Append must copy the value slice")
	}
}

func TestTableByID(t *testing.T) {
	tb := NewTable(MustSchema("A"))
	for i := 0; i < 5; i++ {
		tb.MustAppend(string(rune('a' + i)))
	}
	if got := tb.ByID(3); got == nil || got.Values[0] != "d" {
		t.Errorf("ByID(3) = %v", got)
	}
	// After removing a tuple (dedup-style), positional shortcut misses but
	// the scan still finds it.
	tb.Tuples = append(tb.Tuples[:1], tb.Tuples[2:]...)
	if got := tb.ByID(3); got == nil || got.Values[0] != "d" {
		t.Errorf("ByID(3) after removal = %v", got)
	}
	if got := tb.ByID(1); got != nil {
		t.Errorf("removed tuple found: %v", got)
	}
	if got := tb.ByID(99); got != nil {
		t.Errorf("ByID(99) = %v, want nil", got)
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tb := NewTable(MustSchema("A"))
	tb.MustAppend("x")
	cl := tb.Clone()
	cl.Tuples[0].Values[0] = "y"
	if tb.Tuples[0].Values[0] != "x" {
		t.Error("Clone must deep-copy tuples")
	}
}

func TestProjectAndKey(t *testing.T) {
	tb := NewTable(MustSchema("A", "B", "C"))
	tp := tb.MustAppend("1", "2", "3")
	if got := tb.Project(tp, []string{"C", "A"}); !reflect.DeepEqual(got, []string{"3", "1"}) {
		t.Errorf("Project = %v", got)
	}
	k := tb.Key(tp, []string{"A", "B"})
	if got := SplitKey(k); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("SplitKey(Key) = %v", got)
	}
}

func TestJoinSplitKeyRoundtrip(t *testing.T) {
	f := func(vals []string) bool {
		for i := range vals {
			// The separator byte must not occur inside values.
			vals[i] = strings.ReplaceAll(vals[i], "\x1f", "_")
		}
		if len(vals) == 0 {
			return true
		}
		return reflect.DeepEqual(SplitKey(JoinKey(vals)), vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDomainAndValueCounts(t *testing.T) {
	tb := NewTable(MustSchema("A"))
	for _, v := range []string{"b", "a", "b", "c", "a", "b"} {
		tb.MustAppend(v)
	}
	if got := tb.Domain("A"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Domain = %v", got)
	}
	counts := tb.ValueCounts("A")
	if counts["b"] != 3 || counts["a"] != 2 || counts["c"] != 1 {
		t.Errorf("ValueCounts = %v", counts)
	}
}

func TestDiff(t *testing.T) {
	a := NewTable(MustSchema("A", "B"))
	a.MustAppend("1", "2")
	a.MustAppend("3", "4")
	b := a.Clone()
	if d := a.Diff(b); len(d) != 0 {
		t.Fatalf("identical tables diff: %v", d)
	}
	b.Tuples[1].Values[0] = "X"
	d := a.Diff(b)
	if len(d) != 1 || d[0].TupleID != 1 || d[0].Attr != "A" || d[0].Got != "3" || d[0].Want != "X" {
		t.Errorf("Diff = %+v", d)
	}
	// Missing tuple on one side.
	b.Tuples = b.Tuples[:1]
	d = a.Diff(b)
	if len(d) != 1 || d[0].TupleID != 1 {
		t.Errorf("Diff with missing tuple = %+v", d)
	}
}

func TestStringRendering(t *testing.T) {
	tb := NewTable(MustSchema("Name", "X"))
	tb.MustAppend("alpha", "1")
	s := tb.String()
	if !strings.Contains(s, "Name") || !strings.Contains(s, "alpha") || !strings.Contains(s, "t0") {
		t.Errorf("String output missing content:\n%s", s)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	tp := &Tuple{ID: 7, Values: []string{"a", "b"}}
	cl := tp.Clone()
	cl.Values[0] = "z"
	if tp.Values[0] != "a" {
		t.Error("Tuple.Clone must copy values")
	}
	if cl.ID != 7 {
		t.Error("Tuple.Clone must keep ID")
	}
}
