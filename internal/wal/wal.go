// Package wal is the durable storage layer under mlnserve: an append-only,
// checksummed, length-prefixed segment log with periodic snapshot/compaction.
// Callers append opaque payloads (the serving layer gob-encodes its records,
// reusing the wire-framing discipline of internal/distributed) and replay
// them after a restart; the log guarantees that everything acknowledged
// before a crash is replayed byte-identically, and that a torn, short, or
// bit-flipped tail — the crash left mid-write — truncates cleanly at the
// first corrupt frame instead of panicking or feeding garbage downstream.
//
// On-disk layout (one flat directory, abstracted by FS):
//
//	wal-00000001.log   segment: a sequence of frames
//	wal-00000003.snap  snapshot: one frame holding the state covering
//	                   every segment with sequence ≤ 3
//
// A frame is [uint32 length | uint32 CRC32(payload) | payload], both fields
// little-endian. Replay loads the newest decodable snapshot, then the
// segments after it in sequence order; the first partial, corrupt, or
// invalid frame truncates the log there (the file is physically shortened so
// later appends land after the last valid frame) and everything beyond it is
// dropped. Appends are fsynced before they return (unless Options.NoSync),
// so an acknowledged record survives any crash the filesystem survives.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	frameHeader = 8
	// MaxRecord bounds a frame payload; a corrupt length field larger than
	// this reads as corruption, not an allocation request.
	MaxRecord = 256 << 20
)

// Frame-decode error classes. Both mean "stop replay and truncate here";
// they are distinguished so tests and recovery summaries can tell a torn
// tail (partial) from bit rot (corrupt).
var (
	ErrPartialFrame = fmt.Errorf("wal: partial frame")
	ErrCorruptFrame = fmt.Errorf("wal: corrupt frame")
)

// AppendFrame appends the frame encoding of payload to buf and returns the
// extended slice.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecord decodes the first frame in b, returning its payload and the
// total frame size consumed. A truncated buffer returns ErrPartialFrame; a
// length out of range or a checksum mismatch returns ErrCorruptFrame. The
// returned payload aliases b.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, ErrPartialFrame
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size > MaxRecord {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorruptFrame, size)
	}
	if uint64(len(b)-frameHeader) < uint64(size) {
		return nil, 0, ErrPartialFrame
	}
	payload = b[frameHeader : frameHeader+int(size)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	return payload, frameHeader + int(size), nil
}

// Options tune a Log.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB). Compaction removes whole segments, so smaller
	// segments mean tighter space reuse at the cost of more files.
	SegmentSize int64
	// NoSync skips the per-append fsync. Only for benchmarks and bulk
	// loads that re-derive lost tail records; the durability contract —
	// acknowledged means replayable — requires the default sync-per-append.
	NoSync bool
	// Validate, when non-nil, vets every replayed record payload; a payload
	// it rejects truncates the log at that frame, exactly like a checksum
	// mismatch. Callers pass their record decoder so a frame that is
	// intact on disk but undecodable upstream still cuts the log cleanly.
	Validate func(payload []byte) error
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	return o
}

// Recovery reports what Open found and salvaged.
type Recovery struct {
	// Snapshot is the newest decodable snapshot payload, nil when none.
	Snapshot []byte
	// Records are the valid record payloads appended after the snapshot,
	// in append order.
	Records [][]byte
	// Segments is the number of segment files scanned.
	Segments int
	// TruncatedBytes counts the bytes dropped at and beyond the first
	// partial/corrupt/invalid frame (including any orphaned later
	// segments). Zero means the log was clean.
	TruncatedBytes int64
}

// Truncated reports whether recovery had to cut a corrupt tail.
func (r *Recovery) Truncated() bool { return r.TruncatedBytes > 0 }

// Log is an open write-ahead log positioned for appending. Methods are safe
// for concurrent use. Any write or sync failure latches the log broken
// (fail-stop): every later Append returns the original error, and the
// surviving prefix is exactly what recovery replays — the log never writes
// after a failure it cannot reason about.
type Log struct {
	fs FS
	o  Options

	mu     sync.Mutex
	f      File
	seq    int // active segment sequence number
	size   int64
	buf    []byte
	broken error
	closed bool
}

func segName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq int) string { return fmt.Sprintf("wal-%08d.snap", seq) }

// parseName extracts the sequence of a segment or snapshot file name.
func parseName(name string) (seq int, snap, ok bool) {
	var suffix string
	switch {
	case strings.HasSuffix(name, ".log"):
		suffix = ".log"
	case strings.HasSuffix(name, ".snap"):
		suffix = ".snap"
		snap = true
	default:
		return 0, false, false
	}
	if !strings.HasPrefix(name, "wal-") {
		return 0, false, false
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(name, suffix), "wal-%d", &seq); err != nil || seq <= 0 {
		return 0, false, false
	}
	return seq, snap, true
}

// Open scans the directory, recovers the surviving state, and returns the
// log positioned to append after the last valid frame. Recovery is returned
// even when the tail had to be truncated; only unusable directories (I/O
// errors on intact files) fail.
func Open(fs FS, o Options) (*Log, *Recovery, error) {
	o = o.withDefaults()
	names, err := fs.List()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list: %w", err)
	}
	var segs, snaps []int
	for _, name := range names {
		seq, snap, ok := parseName(name)
		if !ok {
			continue
		}
		if snap {
			snaps = append(snaps, seq)
		} else {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	sort.Sort(sort.Reverse(sort.IntSlice(snaps)))

	rec := &Recovery{}
	snapSeq := 0
	for _, sq := range snaps {
		data, err := fs.ReadFile(snapName(sq))
		if err != nil {
			continue
		}
		payload, n, err := DecodeRecord(data)
		if err != nil || n != len(data) {
			// A half-written or corrupt snapshot: ignore it and fall back
			// to the previous one (compaction replaces atomically, so at
			// most the newest can be damaged).
			fs.Remove(snapName(sq))
			continue
		}
		rec.Snapshot = append([]byte(nil), payload...)
		snapSeq = sq
		break
	}

	// Replay segments after the snapshot, in order, stopping — and cutting —
	// at the first gap or bad frame.
	lastSeq := snapSeq
	truncated := false
	for _, sq := range segs {
		if sq <= snapSeq {
			// Covered by the snapshot; left over from a compaction that
			// crashed before removing it.
			fs.Remove(segName(sq))
			continue
		}
		if truncated || sq != lastSeq+1 {
			// Beyond a truncation point or a sequence gap: whatever is
			// here is not reachable from the valid prefix.
			if data, err := fs.ReadFile(segName(sq)); err == nil {
				rec.TruncatedBytes += int64(len(data))
			}
			fs.Remove(segName(sq))
			truncated = true
			continue
		}
		data, err := fs.ReadFile(segName(sq))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read %s: %w", segName(sq), err)
		}
		rec.Segments++
		off := 0
		for off < len(data) {
			payload, n, err := DecodeRecord(data[off:])
			if err == nil && o.Validate != nil {
				if verr := o.Validate(payload); verr != nil {
					err = fmt.Errorf("%w: %v", ErrCorruptFrame, verr)
				}
			}
			if err != nil {
				rec.TruncatedBytes += int64(len(data) - off)
				if terr := fs.Truncate(segName(sq), int64(off)); terr != nil {
					return nil, nil, fmt.Errorf("wal: truncate %s after %v: %w", segName(sq), err, terr)
				}
				truncated = true
				break
			}
			rec.Records = append(rec.Records, append([]byte(nil), payload...))
			off += n
		}
		lastSeq = sq
	}

	mOpens.Inc()
	mRecoveryRecords.Add(int64(len(rec.Records)))
	mRecoveryTruncated.Add(rec.TruncatedBytes)
	if rec.Truncated() {
		slog.Warn("wal: truncated corrupt tail during recovery",
			"truncated_bytes", rec.TruncatedBytes,
			"replayed_records", len(rec.Records),
			"segments", rec.Segments)
	}
	l := &Log{fs: fs, o: o, seq: lastSeq}
	if l.seq <= snapSeq {
		// A crash between snapshot write and the first post-compaction
		// append leaves no segment newer than the snapshot; appending into
		// a covered sequence would be invisible to the next replay.
		l.seq = snapSeq + 1
	}
	if l.seq == 0 {
		l.seq = 1
	}
	f, size, err := fs.OpenAppend(segName(l.seq))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l.f, l.size = f, size
	return l, rec, nil
}

// Append durably adds one record. The record is on stable storage when
// Append returns nil (unless Options.NoSync); on error the log is broken and
// the record must be considered unacknowledged.
func (l *Log) Append(payload []byte) error {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	if l.size > 0 && l.size+int64(len(payload))+frameHeader > l.o.SegmentSize {
		if err := l.rotateLocked(l.seq + 1); err != nil {
			l.broken = err
			return err
		}
	}
	l.buf = AppendFrame(l.buf[:0], payload)
	if n, err := l.f.Write(l.buf); err != nil {
		l.broken = fmt.Errorf("wal: append (wrote %d of %d bytes): %w", n, len(l.buf), err)
		return l.broken
	}
	if !l.o.NoSync {
		ts := time.Now()
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("wal: fsync: %w", err)
			return l.broken
		}
		mFsyncSeconds.ObserveSince(ts)
	}
	l.size += int64(len(l.buf))
	mAppends.Inc()
	mAppendBytes.Add(int64(len(l.buf)))
	mAppendSeconds.ObserveSince(t0)
	return nil
}

// rotateLocked closes the active segment (synced) and opens seq fresh.
func (l *Log) rotateLocked(seq int) error {
	if !l.o.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync on rotate: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	f, size, err := l.fs.OpenAppend(segName(seq))
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	l.f, l.seq, l.size = f, seq, size
	mRotations.Inc()
	return nil
}

// Compact writes state as a snapshot covering everything appended so far,
// rotates to a fresh segment, and removes the superseded segments and older
// snapshots. After a crash at any point the log recovers either the old
// snapshot + segments or the new snapshot — never a mix.
func (l *Log) Compact(state []byte) error {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	cover := l.seq
	if err := l.fs.WriteFile(snapName(cover), AppendFrame(nil, state)); err != nil {
		// The old snapshot and segments are untouched; the log keeps
		// appending and a later compaction can retry.
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := l.rotateLocked(cover + 1); err != nil {
		l.broken = err
		return err
	}
	// Best-effort cleanup: anything covered that survives a crash here is
	// removed by the next Open.
	if names, err := l.fs.List(); err == nil {
		for _, name := range names {
			seq, snap, ok := parseName(name)
			if !ok {
				continue
			}
			if (snap && seq < cover) || (!snap && seq <= cover) {
				l.fs.Remove(name)
			}
		}
	}
	mCompactions.Inc()
	mCompactSeconds.ObserveSince(t0)
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if l.closed {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: fsync: %w", err)
		return l.broken
	}
	return nil
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.broken == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
