package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is an open, append-only log file handle.
type File interface {
	io.Writer
	// Sync forces everything written so far to stable storage. A record is
	// durable — and may be acknowledged — only after the Sync covering it
	// returns nil.
	Sync() error
	Close() error
}

// FS abstracts the flat directory a Log lives in, so tests can substitute a
// crash-simulating, fault-injecting filesystem (MemFS) for the real one
// (DirFS). Names are bare file names; the FS owns the directory.
type FS interface {
	// OpenAppend opens name for appending, creating it when absent, and
	// reports its current size.
	OpenAppend(name string) (File, int64, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically replaces name with data, durably (write to a
	// temporary file, sync, rename). Used for snapshots.
	WriteFile(name string, data []byte) error
	// Truncate shortens name to size bytes — how recovery discards a torn
	// or corrupt tail so later appends land after the last valid frame.
	Truncate(name string, size int64) error
	Remove(name string) error
	// List returns the file names in the directory, sorted.
	List() ([]string, error)
}

// dirFS is the production FS: a real directory.
type dirFS struct {
	dir string
}

// DirFS returns an FS rooted at dir, creating the directory if needed.
func DirFS(dir string) (FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	return &dirFS{dir: dir}, nil
}

type osFile struct{ *os.File }

func (fs *dirFS) OpenAppend(name string) (File, int64, error) {
	f, err := os.OpenFile(filepath.Join(fs.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return osFile{f}, st.Size(), nil
}

func (fs *dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(fs.dir, name))
}

func (fs *dirFS) WriteFile(name string, data []byte) error {
	tmp := filepath.Join(fs.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(fs.dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return fs.syncDir()
}

// syncDir fsyncs the directory so renames and removals are durable too;
// best-effort on filesystems that reject directory fsync.
func (fs *dirFS) syncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

func (fs *dirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(fs.dir, name), size)
}

func (fs *dirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(fs.dir, name))
	fs.syncDir()
	return err
}

func (fs *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
