package wal

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeRecord hammers the WAL frame codec with arbitrary bytes, in the
// FuzzDecodeMessage mold: a malformed frame must come back as an error,
// never a panic or an out-of-range allocation — recovery reads whatever a
// crash left on disk, and the first corrupt frame must cut the log, not
// take the server down. Valid frames seed the corpus.
func FuzzDecodeRecord(f *testing.F) {
	seeds := [][]byte{
		nil,
		[]byte(""),
		[]byte("short"),
		AppendFrame(nil, nil),
		AppendFrame(nil, []byte("x")),
		AppendFrame(nil, []byte("a longer record payload with structure: s-000001|batch|7")),
		AppendFrame(AppendFrame(nil, []byte("first")), []byte("second")),
		[]byte(strings.Repeat("\xff", 64)),
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, // huge length field
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := DecodeRecord(b)
		if err != nil {
			return // malformed frames must error, and they did
		}
		if n < frameHeader || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		// A frame that decoded must re-encode byte-identically: the codec
		// round-trips, so replayed records are exactly what was appended.
		if again := AppendFrame(nil, payload); !bytes.Equal(again, b[:n]) {
			t.Fatalf("re-encoded frame differs: %x vs %x", again, b[:n])
		}
	})
}
