package wal

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with explicit crash semantics: bytes written to a
// file are volatile until Sync moves them to the durable image, exactly like
// a page cache in front of a disk. Crash discards (or, under an injected
// fault, tears and bit-flips) every file's volatile tail and invalidates all
// open handles, after which the surviving durable state can be reopened —
// the substrate the crash-recovery chaos suite drives the Log through.
//
// Faults are scripted by a seeded FaultPlan, in the style of
// distributed.NewFaultTransport: deterministic trigger points, seeded
// randomness for the shape of the damage.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	plan   FaultPlan
	rng    *rand.Rand
	writes int
	syncs  int
	gen    int  // handle generation; Crash bumps it, orphaning old handles
	dead   bool // between the fault firing and Crash: every op fails
}

type memFile struct {
	durable  []byte
	volatile []byte // written but not yet synced; lost or torn at Crash
}

// FaultMode selects the failure class a MemFS injects.
type FaultMode int

const (
	// FaultNone injects nothing; Crash still drops volatile tails.
	FaultNone FaultMode = iota
	// FaultShortWrite makes the AtWrite-th Write persist only a prefix of
	// its bytes — durably, as if some sectors hit the platter — and fail.
	FaultShortWrite
	// FaultSyncError makes the AtSync-th Sync fail, leaving the preceding
	// writes volatile (fsync returned an error; durability unknown).
	FaultSyncError
	// FaultTornTail makes the AtWrite-th Write "crash" the filesystem
	// mid-write; at Crash a random prefix of the volatile tail survives.
	FaultTornTail
	// FaultBitFlip is FaultTornTail plus one flipped bit inside the
	// surviving torn tail, so the frame is full-length but corrupt.
	FaultBitFlip
)

// String names the mode for test output.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultShortWrite:
		return "short-write"
	case FaultSyncError:
		return "fsync-error"
	case FaultTornTail:
		return "torn-tail"
	case FaultBitFlip:
		return "bit-flip"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// FaultPlan scripts a MemFS's failure. The trigger counters are 1-based and
// global across files; zero never fires. Damage shape (torn-tail length, the
// flipped bit) draws from a rand seeded with Seed, so a (plan, workload)
// pair replays the same corruption.
type FaultPlan struct {
	Seed    int64
	Mode    FaultMode
	AtWrite int // FaultShortWrite / FaultTornTail / FaultBitFlip trigger
	AtSync  int // FaultSyncError trigger
}

// NewMemFS returns an empty in-memory filesystem with the given fault plan.
func NewMemFS(plan FaultPlan) *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

var errMemFSDead = fmt.Errorf("wal: memfs: filesystem crashed")

// Crash ends the current incarnation: volatile tails are dropped — or, for
// the torn modes, partially and corruptly persisted — and every open handle
// goes dead. The MemFS itself stays usable, modeling the machine rebooting
// over the surviving disk image; reopen the Log to recover.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if len(f.volatile) == 0 {
			continue
		}
		switch m.plan.Mode {
		case FaultTornTail, FaultBitFlip:
			keep := m.rng.Intn(len(f.volatile) + 1)
			if m.plan.Mode == FaultBitFlip && keep == 0 {
				keep = 1 + m.rng.Intn(len(f.volatile))
			}
			torn := append([]byte(nil), f.volatile[:keep]...)
			if m.plan.Mode == FaultBitFlip && keep > 0 {
				// Flip one bit inside the torn region only: durable
				// (acknowledged) bytes are never damaged — fsync'd data is
				// the contract the log builds on.
				pos := m.rng.Intn(keep)
				torn[pos] ^= 1 << uint(m.rng.Intn(8))
			}
			f.durable = append(f.durable, torn...)
		}
		f.volatile = nil
	}
	m.gen++
	m.dead = false
}

// DurableLen reports the durable size of name (testing aid).
func (m *MemFS) DurableLen(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return 0
	}
	return int64(len(f.durable))
}

// CorruptDurable flips one bit of name's durable image at off (testing aid
// for bit-rot-in-place scenarios, distinct from the crash-consistency
// faults FaultPlan scripts).
func (m *MemFS) CorruptDurable(name string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil || off < 0 || off >= int64(len(f.durable)) {
		return fmt.Errorf("wal: memfs: corrupt %s@%d: out of range", name, off)
	}
	f.durable[off] ^= 0x10
	return nil
}

type memHandle struct {
	fs   *MemFS
	name string
	gen  int
}

func (m *MemFS) OpenAppend(name string) (File, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, 0, errMemFSDead
	}
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, name: name, gen: m.gen}, int64(len(f.durable) + len(f.volatile)), nil
}

func (h *memHandle) file() (*memFile, error) {
	if h.fs.dead || h.gen != h.fs.gen {
		return nil, errMemFSDead
	}
	f := h.fs.files[h.name]
	if f == nil {
		return nil, fmt.Errorf("wal: memfs: %s removed", h.name)
	}
	return f, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	m.writes++
	if m.plan.AtWrite > 0 && m.writes == m.plan.AtWrite {
		switch m.plan.Mode {
		case FaultShortWrite:
			n := len(p) / 2
			f.durable = append(f.durable, p[:n]...)
			return n, fmt.Errorf("wal: memfs: injected short write (%d of %d bytes)", n, len(p))
		case FaultTornTail, FaultBitFlip:
			// The write reached the page cache, then the machine died: the
			// bytes are volatile and Crash decides how much survives, torn.
			f.volatile = append(f.volatile, p...)
			m.dead = true
			return 0, errMemFSDead
		}
	}
	f.volatile = append(f.volatile, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	m.syncs++
	if m.plan.AtSync > 0 && m.syncs == m.plan.AtSync && m.plan.Mode == FaultSyncError {
		return fmt.Errorf("wal: memfs: injected fsync error")
	}
	f.durable = append(f.durable, f.volatile...)
	f.volatile = nil
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, errMemFSDead
	}
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("wal: memfs: %s: no such file", name)
	}
	// Reads see the full logical image (durable + page cache), like a real
	// filesystem; only a Crash exposes the difference.
	out := make([]byte, 0, len(f.durable)+len(f.volatile))
	out = append(out, f.durable...)
	return append(out, f.volatile...), nil
}

func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return errMemFSDead
	}
	// Atomic durable replace (tmp + sync + rename in one step here): the
	// write counter still ticks so fault triggers see snapshot writes too.
	m.writes++
	if m.plan.AtWrite > 0 && m.writes == m.plan.AtWrite &&
		(m.plan.Mode == FaultTornTail || m.plan.Mode == FaultBitFlip) {
		// Crash during the snapshot tmp-write: the rename never happened,
		// so the old file survives untouched.
		m.dead = true
		return errMemFSDead
	}
	m.files[name] = &memFile{durable: append([]byte(nil), data...)}
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return errMemFSDead
	}
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("wal: memfs: %s: no such file", name)
	}
	whole := append(append([]byte(nil), f.durable...), f.volatile...)
	if size < 0 || size > int64(len(whole)) {
		return fmt.Errorf("wal: memfs: truncate %s to %d: out of range", name, size)
	}
	f.durable = whole[:size]
	f.volatile = nil
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return errMemFSDead
	}
	if m.files[name] == nil {
		return fmt.Errorf("wal: memfs: %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, errMemFSDead
	}
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
