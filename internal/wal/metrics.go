package wal

import "mlnclean/internal/obs"

var (
	mAppendSeconds = obs.Default().Histogram("mlnclean_wal_append_seconds",
		"Wall time of one durable append (frame write + fsync).", obs.DefBuckets)
	mFsyncSeconds = obs.Default().Histogram("mlnclean_wal_fsync_seconds",
		"Wall time of the fsync inside an append.", obs.DefBuckets)
	mCompactSeconds = obs.Default().Histogram("mlnclean_wal_compaction_seconds",
		"Wall time of one snapshot/compaction cycle.", obs.DefBuckets)
	mAppends = obs.Default().Counter("mlnclean_wal_appends_total",
		"Acknowledged WAL appends.")
	mAppendBytes = obs.Default().Counter("mlnclean_wal_append_bytes_total",
		"Framed bytes written by acknowledged appends.")
	mRotations = obs.Default().Counter("mlnclean_wal_rotations_total",
		"Segment rotations.")
	mCompactions = obs.Default().Counter("mlnclean_wal_compactions_total",
		"Completed snapshot/compaction cycles.")
	mOpens = obs.Default().Counter("mlnclean_wal_opens_total",
		"Log opens (each implies a recovery scan).")
	mRecoveryRecords = obs.Default().Counter("mlnclean_wal_recovery_records_total",
		"Records replayed across all recoveries.")
	mRecoveryTruncated = obs.Default().Counter("mlnclean_wal_recovery_truncated_bytes_total",
		"Bytes cut from corrupt or orphaned log tails during recovery.")
)
