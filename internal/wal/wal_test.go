package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
)

// chaosSeeds is the fixed seed list the CI chaos job runs; CHAOS_SEEDS
// (comma-separated) overrides it — same contract as internal/distributed.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 7}
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		seeds = seeds[:0]
		for _, f := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: %v", err)
			}
			seeds = append(seeds, s)
		}
	}
	return seeds
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d:%s", i, strings.Repeat("x", i%37))) }

func mustOpen(t *testing.T, fs FS, o Options) (*Log, *Recovery) {
	t.Helper()
	l, r, err := Open(fs, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, r
}

func checkRecords(t *testing.T, got [][]byte, want ...[]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	l, r := mustOpen(t, fs, Options{})
	if r.Snapshot != nil || len(r.Records) != 0 || r.Truncated() {
		t.Fatalf("fresh dir recovery not empty: %+v", r)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		p := rec(i)
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, p)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}

	l2, r2 := mustOpen(t, fs, Options{})
	defer l2.Close()
	if r2.Truncated() {
		t.Fatalf("clean log reports truncation: %d bytes", r2.TruncatedBytes)
	}
	checkRecords(t, r2.Records, want...)
}

func TestWALRotationAndCompaction(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	o := Options{SegmentSize: 128}
	l, _ := mustOpen(t, fs, o)
	var want [][]byte
	for i := 0; i < 40; i++ {
		p := rec(i)
		if err := l.Append(p); err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, p)
	}
	names, _ := fs.List()
	if len(names) < 3 {
		t.Fatalf("expected multiple segments at SegmentSize=128, got %v", names)
	}
	l.Close()

	l2, r2 := mustOpen(t, fs, o)
	checkRecords(t, r2.Records, want...)
	if r2.Segments < 3 {
		t.Fatalf("replayed %d segments, want several", r2.Segments)
	}

	// Compact: everything so far collapses into the snapshot; only records
	// appended afterwards replay as records.
	snap := []byte("state-after-40")
	if err := l2.Compact(snap); err != nil {
		t.Fatalf("compact: %v", err)
	}
	names, _ = fs.List()
	for _, n := range names {
		if seq, isSnap, ok := parseName(n); ok && !isSnap && seq <= 3 {
			t.Fatalf("compaction left covered segment %s (files: %v)", n, names)
		}
	}
	tail := [][]byte{[]byte("after-compact-1"), []byte("after-compact-2")}
	for _, p := range tail {
		if err := l2.Append(p); err != nil {
			t.Fatalf("append after compact: %v", err)
		}
	}
	l2.Close()

	l3, r3 := mustOpen(t, fs, o)
	defer l3.Close()
	if !bytes.Equal(r3.Snapshot, snap) {
		t.Fatalf("snapshot = %q, want %q", r3.Snapshot, snap)
	}
	checkRecords(t, r3.Records, tail...)
}

// TestRecoveryChaosFaultModes drives the log through every injected failure
// mode on the shared chaos seed list: the fault fires at a seeded point in
// the workload, the filesystem crashes, and recovery must replay every
// acknowledged record byte-identically — at most the single in-flight,
// unacknowledged record may additionally survive (its frame happened to land
// intact). Corrupt tails truncate; nothing panics; the log stays usable.
func TestRecoveryChaosFaultModes(t *testing.T) {
	const workload = 30
	modes := []FaultMode{FaultShortWrite, FaultSyncError, FaultTornTail, FaultBitFlip}
	for _, seed := range chaosSeeds(t) {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				plan := FaultPlan{Seed: seed, Mode: mode}
				at := 2 + rng.Intn(workload-2)
				if mode == FaultSyncError {
					plan.AtSync = at
				} else {
					plan.AtWrite = at
				}
				fs := NewMemFS(plan)
				l, _ := mustOpen(t, fs, Options{})

				var acked [][]byte
				var inflight []byte
				faulted := false
				for i := 0; i < workload; i++ {
					p := rec(i)
					if err := l.Append(p); err != nil {
						faulted = true
						inflight = p
						// Fail-stop: the log is broken for good.
						if err2 := l.Append([]byte("after-fault")); err2 == nil {
							t.Fatal("append succeeded on a broken log")
						}
						break
					}
					acked = append(acked, p)
				}
				if !faulted {
					t.Fatalf("fault %s at %d never fired in %d appends", mode, at, workload)
				}
				l.Close()
				fs.Crash()

				l2, r2 := mustOpen(t, fs, Options{})
				got := r2.Records
				// Every acknowledged record, in order, byte-identical.
				if len(got) < len(acked) {
					t.Fatalf("recovered %d records, acked %d: durable data lost", len(got), len(acked))
				}
				for i := range acked {
					if !bytes.Equal(got[i], acked[i]) {
						t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
					}
				}
				// Beyond the acked prefix only the in-flight record may appear.
				switch {
				case len(got) == len(acked):
				case len(got) == len(acked)+1 && bytes.Equal(got[len(acked)], inflight):
				default:
					t.Fatalf("recovered %d records beyond %d acked; tail %q", len(got)-len(acked), len(acked), got[len(acked)])
				}
				if mode == FaultShortWrite && !r2.Truncated() {
					t.Fatal("short write left a partial frame; recovery reported no truncation")
				}

				// The recovered log must accept and persist fresh appends.
				post := []byte("post-recovery")
				if err := l2.Append(post); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				l2.Close()
				l3, r3 := mustOpen(t, fs, Options{})
				defer l3.Close()
				if n := len(r3.Records); n == 0 || !bytes.Equal(r3.Records[n-1], post) {
					t.Fatalf("post-recovery append did not survive reopen")
				}
			})
		}
	}
}

func TestWALBitRotInPlaceTruncates(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	l, _ := mustOpen(t, fs, Options{})
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := rec(i)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	l.Close()

	// Flip a bit mid-file: replay keeps the frames before it, truncates the
	// damaged frame and everything after.
	total := fs.DurableLen("wal-00000001.log")
	if err := fs.CorruptDurable("wal-00000001.log", total/2); err != nil {
		t.Fatal(err)
	}
	l2, r2 := mustOpen(t, fs, Options{})
	defer l2.Close()
	if !r2.Truncated() {
		t.Fatal("bit rot not reported as truncation")
	}
	if len(r2.Records) == 0 || len(r2.Records) >= len(want) {
		t.Fatalf("recovered %d of %d records; want a proper non-empty prefix", len(r2.Records), len(want))
	}
	for i, p := range r2.Records {
		if !bytes.Equal(p, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, p, want[i])
		}
	}
	if fs.DurableLen("wal-00000001.log") >= total {
		t.Fatal("corrupt tail not physically truncated")
	}
}

func TestWALValidateHookTruncates(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	l, _ := mustOpen(t, fs, Options{})
	for _, p := range [][]byte{[]byte("good-1"), []byte("BAD"), []byte("good-2")} {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	validate := func(p []byte) error {
		if bytes.Equal(p, []byte("BAD")) {
			return fmt.Errorf("undecodable record")
		}
		return nil
	}
	l2, r2 := mustOpen(t, fs, Options{Validate: validate})
	defer l2.Close()
	if !r2.Truncated() {
		t.Fatal("rejected record not reported as truncation")
	}
	checkRecords(t, r2.Records, []byte("good-1"))
}

func TestWALIgnoresUndecodableSnapshot(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	l, _ := mustOpen(t, fs, Options{})
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := rec(i)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	l.Close()
	// A half-written snapshot (crash mid-WriteFile on a filesystem without
	// atomic replace) must not shadow the segments it claims to cover.
	if err := fs.WriteFile(snapName(99), []byte("garbage, not a frame")); err != nil {
		t.Fatal(err)
	}
	l2, r2 := mustOpen(t, fs, Options{})
	defer l2.Close()
	if r2.Snapshot != nil {
		t.Fatalf("undecodable snapshot loaded: %q", r2.Snapshot)
	}
	checkRecords(t, r2.Records, want...)
	if names, _ := fs.List(); contains(names, snapName(99)) {
		t.Fatalf("undecodable snapshot not cleaned up: %v", names)
	}
}

func TestWALCompactCrashBeforeFirstAppend(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	l, _ := mustOpen(t, fs, Options{})
	if err := l.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("snap-state")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	fs.Crash() // nothing appended after compaction

	l2, r2 := mustOpen(t, fs, Options{})
	if !bytes.Equal(r2.Snapshot, []byte("snap-state")) || len(r2.Records) != 0 {
		t.Fatalf("recovery after compact = (%q, %d records)", r2.Snapshot, len(r2.Records))
	}
	// The post-recovery segment must be newer than the snapshot, or this
	// append would be invisible to the next replay.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, r3 := mustOpen(t, fs, Options{})
	defer l3.Close()
	if !bytes.Equal(r3.Snapshot, []byte("snap-state")) {
		t.Fatalf("snapshot lost: %q", r3.Snapshot)
	}
	checkRecords(t, r3.Records, []byte("after"))
}

func TestWALDirFS(t *testing.T) {
	dir := t.TempDir()
	fs, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := mustOpen(t, fs, Options{SegmentSize: 256})
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := rec(i)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := l.Compact([]byte("on-disk-state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2, r2 := mustOpen(t, fs2, Options{SegmentSize: 256})
	defer l2.Close()
	if !bytes.Equal(r2.Snapshot, []byte("on-disk-state")) {
		t.Fatalf("snapshot = %q", r2.Snapshot)
	}
	checkRecords(t, r2.Records, []byte("tail"))
	_ = want
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
