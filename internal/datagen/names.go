// Package datagen produces the three evaluation datasets of §7.1 as seeded
// synthetic equivalents: HAI (dense hospital data with the seven Table 4
// rules), CAR (sparse used-vehicle data with a CFD and an FD), and TPC-H (a
// customer ⋈ lineitem projection with one FD). Real dumps are not
// redistributable; the generators reproduce the schema, the rule set, and
// the density characteristics the experiments depend on (see DESIGN.md).
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// namer builds pronounceable, deterministic synthetic names. Distinct names
// differ in several characters, which matters for the Levenshtein-based
// cleaning: single-character typos stay closer to their origin than to any
// other name.
type namer struct {
	rng       *rand.Rand
	used      map[string]struct{}
	onsets    []string
	vowels    []string
	codas     []string
	minSyll   int
	maxSyll   int
	maxRetry  int
	decorated bool
}

func newNamer(rng *rand.Rand, minSyll, maxSyll int) *namer {
	return &namer{
		rng:      rng,
		used:     make(map[string]struct{}),
		onsets:   []string{"b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "k", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"},
		vowels:   []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"},
		codas:    []string{"", "n", "r", "s", "l", "m", "x", "th", "nd"},
		minSyll:  minSyll,
		maxSyll:  maxSyll,
		maxRetry: 64,
	}
}

// fresh returns a new unique name.
func (n *namer) fresh() string {
	for try := 0; try < n.maxRetry; try++ {
		s := n.generate()
		if _, dup := n.used[s]; !dup {
			n.used[s] = struct{}{}
			return s
		}
	}
	// Extremely unlikely: disambiguate with a counter suffix.
	base := n.generate()
	for i := 2; ; i++ {
		s := fmt.Sprintf("%s%d", base, i)
		if _, dup := n.used[s]; !dup {
			n.used[s] = struct{}{}
			return s
		}
	}
}

func (n *namer) generate() string {
	var b strings.Builder
	syll := n.minSyll
	if n.maxSyll > n.minSyll {
		syll += n.rng.Intn(n.maxSyll - n.minSyll + 1)
	}
	for i := 0; i < syll; i++ {
		b.WriteString(n.onsets[n.rng.Intn(len(n.onsets))])
		b.WriteString(n.vowels[n.rng.Intn(len(n.vowels))])
		if n.rng.Intn(2) == 0 {
			b.WriteString(n.codas[n.rng.Intn(len(n.codas))])
		}
	}
	return strings.ToUpper(b.String())
}

// digits returns a random fixed-width numeric string.
func digits(rng *rand.Rand, width int) string {
	var b strings.Builder
	for i := 0; i < width; i++ {
		b.WriteByte(byte('0' + rng.Intn(10)))
	}
	return b.String()
}

// uniqueDigits returns a numeric string of the given width not yet in used.
func uniqueDigits(rng *rand.Rand, width int, used map[string]struct{}) string {
	for {
		s := digits(rng, width)
		if _, dup := used[s]; !dup {
			used[s] = struct{}{}
			return s
		}
	}
}
