package datagen

import (
	"fmt"
	"math/rand"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// HAIConfig sizes the synthetic healthcare-associated-infections dataset.
type HAIConfig struct {
	// Providers is the number of distinct hospitals (default 250).
	Providers int
	// Measures is the number of distinct quality measures; each provider
	// reports every measure, so Rows = Providers × Measures unless Rows
	// caps it (default 12).
	Measures int
	// Rows optionally caps the row count (0 = Providers × Measures).
	Rows int
	// Seed makes generation deterministic.
	Seed int64
}

func (c HAIConfig) withDefaults() HAIConfig {
	if c.Providers <= 0 {
		c.Providers = 250
	}
	if c.Measures <= 0 {
		c.Measures = 12
	}
	return c
}

// HAISchema is the attribute list of the synthetic HAI table.
var HAISchema = []string{
	"ProviderID", "HospitalName", "Address", "City", "State", "ZIPCode",
	"CountyName", "PhoneNumber", "MeasureID", "MeasureName", "Score",
}

// HAIRules returns the seven Table 4 constraints for HAI.
func HAIRules() []*rules.Rule {
	return rules.MustParseStrings(
		"FD: PhoneNumber -> ZIPCode",
		"FD: PhoneNumber -> State",
		"FD: ZIPCode -> City",
		"FD: MeasureID -> MeasureName",
		"FD: ZIPCode -> CountyName",
		"FD: ProviderID -> City, PhoneNumber",
		"DC: not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))",
	)
}

// HAI generates the synthetic hospital dataset: each row is one (provider,
// measure) report. The data is dense — every provider appears once per
// measure, cities share providers, ZIP codes determine city and county —
// which is the property §7.2 relies on when contrasting HAI with CAR.
func HAI(cfg HAIConfig) (*dataset.Table, []*rules.Rule, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := []string{"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
		"HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
		"MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ"}

	cityNamer := newNamer(rng, 2, 3)
	countyNamer := newNamer(rng, 2, 3)
	hospitalNamer := newNamer(rng, 2, 4)
	measureNamer := newNamer(rng, 3, 5)

	// Geography: cities belong to one state; each city has 1–3 ZIP codes;
	// each ZIP has exactly one county (FDs ZIP→City, ZIP→CountyName hold).
	nCities := cfg.Providers/4 + 1
	type zipInfo struct{ city, state, county string }
	var zips []string
	zipData := make(map[string]zipInfo)
	usedZips := make(map[string]struct{})
	for i := 0; i < nCities; i++ {
		city := cityNamer.fresh()
		state := states[rng.Intn(len(states))]
		nz := 1 + rng.Intn(3)
		for z := 0; z < nz; z++ {
			zip := uniqueDigits(rng, 5, usedZips)
			zips = append(zips, zip)
			zipData[zip] = zipInfo{city: city, state: state, county: countyNamer.fresh()}
		}
	}

	// Providers: unique ID and phone; one ZIP (→ city, state, county).
	type provider struct {
		id, name, address, city, state, zip, county, phone string
	}
	usedIDs := make(map[string]struct{})
	usedPhones := make(map[string]struct{})
	providers := make([]provider, cfg.Providers)
	for i := range providers {
		zip := zips[rng.Intn(len(zips))]
		zi := zipData[zip]
		providers[i] = provider{
			id:      uniqueDigits(rng, 6, usedIDs),
			name:    hospitalNamer.fresh() + " HOSPITAL",
			address: fmt.Sprintf("%d %s AVE", 1+rng.Intn(9999), cityNamer.fresh()),
			city:    zi.city,
			state:   zi.state,
			zip:     zip,
			county:  zi.county,
			phone:   uniqueDigits(rng, 10, usedPhones),
		}
	}

	// Measures: unique ID → name.
	type measure struct{ id, name string }
	usedMeasureIDs := make(map[string]struct{})
	measures := make([]measure, cfg.Measures)
	for i := range measures {
		measures[i] = measure{
			id:   "HAI_" + uniqueDigits(rng, 3, usedMeasureIDs),
			name: measureNamer.fresh() + " INFECTION RATE",
		}
	}

	schema, err := dataset.NewSchema(HAISchema...)
	if err != nil {
		return nil, nil, err
	}
	tb := dataset.NewTable(schema)
	rows := cfg.Providers * cfg.Measures
	if cfg.Rows > 0 && cfg.Rows < rows {
		rows = cfg.Rows
	}
	for n := 0; n < rows; n++ {
		p := providers[n%cfg.Providers]
		m := measures[(n/cfg.Providers)%cfg.Measures]
		score := fmt.Sprintf("%d.%03d", rng.Intn(3), rng.Intn(1000))
		if _, err := tb.Append(p.id, p.name, p.address, p.city, p.state, p.zip, p.county, p.phone, m.id, m.name, score); err != nil {
			return nil, nil, err
		}
	}
	return tb, HAIRules(), nil
}
