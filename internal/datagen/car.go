package datagen

import (
	"fmt"
	"math/rand"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// CARConfig sizes the synthetic used-vehicle dataset.
type CARConfig struct {
	// Rows is the number of listings (default 3000).
	Rows int
	// Makes is the number of manufacturers (default 24; "acura" is always
	// among them because Table 4's CFD binds it).
	Makes int
	// ModelsPerMake is the mean number of models per make (default 6).
	// Models follow a long-tail popularity distribution, making the dataset
	// sparse: most (Model, Type) combinations have very few rows. That
	// sparsity is what makes HoloClean typo-sensitive on CAR (Fig. 7a).
	ModelsPerMake int
	// Seed makes generation deterministic.
	Seed int64
}

func (c CARConfig) withDefaults() CARConfig {
	if c.Rows <= 0 {
		c.Rows = 3000
	}
	if c.Makes <= 0 {
		c.Makes = 24
	}
	if c.ModelsPerMake <= 0 {
		c.ModelsPerMake = 6
	}
	return c
}

// CARSchema is the attribute list of the synthetic CAR table, matching the
// cars.com attributes the paper lists (§7.1).
var CARSchema = []string{
	"Model", "Make", "Type", "Year", "Condition", "WheelDrive", "Doors", "Engine",
}

// CARRules returns the Table 4 constraints for CAR. Table 4 prints a single
// CFD pattern row, Make("acura"), Type ⇒ Doors; CFDs are pattern tableaux
// over an embedded FD (Fan et al., the paper's [13]), and with only the
// acura row every Doors error outside acura rows would be provably
// unrepairable — inconsistent with the paper's reported F1 ≈ 0.96. We
// therefore include the embedded FD Make, Type ⇒ Doors alongside the
// published pattern row (see DESIGN.md).
func CARRules() []*rules.Rule {
	return rules.MustParseStrings(
		"CFD: Make=acura, Type -> Doors",
		"FD: Model, Type -> Make",
		"FD: Make, Type -> Doors",
	)
}

// CAR generates the sparse used-vehicle dataset. Every model belongs to
// exactly one make (FD Model,Type ⇒ Make holds) and doors are a function of
// body type (so the acura CFD holds on clean data).
func CAR(cfg CARConfig) (*dataset.Table, []*rules.Rule, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	makeNamer := newNamer(rng, 2, 3)
	modelNamer := newNamer(rng, 3, 4)

	makes := make([]string, cfg.Makes)
	makes[0] = "acura"
	for i := 1; i < cfg.Makes; i++ {
		makes[i] = makeNamer.fresh()
	}

	types := []string{"SEDAN", "SUV", "COUPE", "TRUCK", "VAN", "HATCHBACK"}
	doorsByType := map[string]string{
		"SEDAN": "4", "SUV": "4", "COUPE": "2", "TRUCK": "2", "VAN": "4", "HATCHBACK": "4",
	}
	conditions := []string{"NEW", "USED", "CERTIFIED"}
	wheelDrives := []string{"FWD", "RWD", "AWD", "4WD"}
	engines := []string{"I4", "V6", "V8", "H4", "I6", "ELECTRIC", "HYBRID"}

	// Long-tail model popularity: model i of a make gets weight ∝ 1/(i+1).
	// Each model ships in one or two body types (a sedan model is not also
	// a truck), so (Model, Type) groups stay coherent while the tail keeps
	// the dataset sparse.
	type model struct {
		name, make_ string
		types       []string
		weight      float64
	}
	var models []model
	var totalW float64
	for _, mk := range makes {
		n := 1 + rng.Intn(2*cfg.ModelsPerMake)
		for i := 0; i < n; i++ {
			w := 1.0 / float64(i+1)
			mtypes := []string{types[rng.Intn(len(types))]}
			if rng.Intn(3) == 0 {
				second := types[rng.Intn(len(types))]
				if second != mtypes[0] {
					mtypes = append(mtypes, second)
				}
			}
			models = append(models, model{name: modelNamer.fresh(), make_: mk, types: mtypes, weight: w})
			totalW += w
		}
	}
	pick := func() model {
		x := rng.Float64() * totalW
		for _, m := range models {
			x -= m.weight
			if x <= 0 {
				return m
			}
		}
		return models[len(models)-1]
	}

	schema, err := dataset.NewSchema(CARSchema...)
	if err != nil {
		return nil, nil, err
	}
	tb := dataset.NewTable(schema)
	emit := func(m model, typ string) error {
		year := fmt.Sprintf("%d", 1998+rng.Intn(22))
		_, err := tb.Append(
			m.name, m.make_, typ, year,
			conditions[rng.Intn(len(conditions))],
			wheelDrives[rng.Intn(len(wheelDrives))],
			doorsByType[typ],
			engines[rng.Intn(len(engines))],
		)
		return err
	}
	// Every (model, type) pair gets a support floor of three listings — a
	// model on sale at all has more than one listing nationwide — so clean
	// data has no natural singleton groups for AGP to destroy; the long
	// tail above the floor keeps CAR sparse.
	for _, m := range models {
		for _, typ := range m.types {
			for k := 0; k < 3 && tb.Len() < cfg.Rows; k++ {
				if err := emit(m, typ); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	for tb.Len() < cfg.Rows {
		m := pick()
		if err := emit(m, m.types[rng.Intn(len(m.types))]); err != nil {
			return nil, nil, err
		}
	}
	return tb, CARRules(), nil
}
