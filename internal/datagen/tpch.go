package datagen

import (
	"fmt"
	"math/rand"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// TPCHConfig sizes the synthetic TPC-H projection.
type TPCHConfig struct {
	// Customers is the number of distinct customers (default 500).
	Customers int
	// Rows is the number of joined customer⋈lineitem rows (default 8000).
	Rows int
	// Seed makes generation deterministic.
	Seed int64
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.Customers <= 0 {
		c.Customers = 500
	}
	if c.Rows <= 0 {
		c.Rows = 8000
	}
	return c
}

// TPCHSchema is the joined projection of the customer and lineitem tables —
// the "two largest tables" the paper joins to create its synthetic dataset
// (§7.1).
var TPCHSchema = []string{
	"CustKey", "Name", "Address", "Nation", "Phone", "MktSegment",
	"OrderKey", "PartKey", "Quantity", "ExtendedPrice",
}

// TPCHRules returns the Table 4 constraint for TPC-H.
func TPCHRules() []*rules.Rule {
	return rules.MustParseStrings("FD: CustKey -> Address")
}

// TPCH generates the synthetic customer ⋈ lineitem dataset: customers follow
// the dbgen naming style (Customer#NNN) and each appears on many order
// lines, so CustKey ⇒ Address is dense.
func TPCH(cfg TPCHConfig) (*dataset.Table, []*rules.Rule, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nations := []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	streetNamer := newNamer(rng, 2, 4)

	type customer struct {
		key, name, address, nation, phone, segment string
	}
	customers := make([]customer, cfg.Customers)
	usedPhones := make(map[string]struct{})
	for i := range customers {
		key := fmt.Sprintf("%06d", i+1)
		nation := nations[rng.Intn(len(nations))]
		customers[i] = customer{
			key:     key,
			name:    fmt.Sprintf("Customer#%09d", i+1),
			address: fmt.Sprintf("%d %s ST", 1+rng.Intn(9999), streetNamer.fresh()),
			nation:  nation,
			phone:   fmt.Sprintf("%02d-%s", 10+rng.Intn(25), digitsDashed(rng)),
			segment: segments[rng.Intn(len(segments))],
		}
		usedPhones[customers[i].phone] = struct{}{}
	}

	schema, err := dataset.NewSchema(TPCHSchema...)
	if err != nil {
		return nil, nil, err
	}
	tb := dataset.NewTable(schema)
	for n := 0; n < cfg.Rows; n++ {
		c := customers[rng.Intn(len(customers))]
		if _, err := tb.Append(
			c.key, c.name, c.address, c.nation, c.phone, c.segment,
			fmt.Sprintf("%08d", n+1),
			fmt.Sprintf("%06d", 1+rng.Intn(20000)),
			fmt.Sprintf("%d", 1+rng.Intn(50)),
			fmt.Sprintf("%d.%02d", 100+rng.Intn(90000), rng.Intn(100)),
		); err != nil {
			return nil, nil, err
		}
	}
	return tb, TPCHRules(), nil
}

func digitsDashed(rng *rand.Rand) string {
	return fmt.Sprintf("%03d-%03d-%04d", rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}
