package datagen

import (
	"math/rand"
	"reflect"
	"testing"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// assertRulesHold verifies the generated clean table violates none of its
// own constraints — the invariant every generator must provide.
func assertRulesHold(t *testing.T, tb *dataset.Table, rs []*rules.Rule) {
	t.Helper()
	for _, r := range rs {
		if err := r.Validate(tb.Schema); err != nil {
			t.Fatalf("rule %s invalid for schema: %v", r.ID, err)
		}
		// Single-tuple (CFD constant) violations.
		for _, tp := range tb.Tuples {
			if r.Violates(tb, tp) {
				t.Fatalf("clean data violates %s at tuple %d", r.ID, tp.ID)
			}
		}
		// Pairwise FD/DC violations via reason-key grouping.
		if r.Kind == rules.DC || r.Kind == rules.FD || r.Kind == rules.CFD {
			byReason := make(map[string]*dataset.Tuple)
			for _, tp := range tb.Tuples {
				if !r.AppliesTo(tb, tp) {
					continue
				}
				key := tb.Key(tp, r.ReasonAttrs())
				if prev, ok := byReason[key]; ok {
					if r.PairViolates(tb, prev, tp) {
						t.Fatalf("clean data violates %s: tuples %d and %d share reason %q", r.ID, prev.ID, tp.ID, key)
					}
				} else {
					byReason[key] = tp
				}
			}
		}
	}
}

func TestHAIGeneration(t *testing.T) {
	tb, rs, err := HAI(HAIConfig{Providers: 50, Measures: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 300 {
		t.Errorf("rows = %d, want providers×measures = 300", tb.Len())
	}
	if got := tb.Schema.Attrs(); !reflect.DeepEqual(got, HAISchema) {
		t.Errorf("schema = %v", got)
	}
	if len(rs) != 7 {
		t.Errorf("rules = %d, want 7 (Table 4)", len(rs))
	}
	assertRulesHold(t, tb, rs)
}

func TestHAIRowCap(t *testing.T) {
	tb, _, err := HAI(HAIConfig{Providers: 50, Measures: 6, Rows: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 100 {
		t.Errorf("rows = %d, want cap 100", tb.Len())
	}
}

func TestHAIDeterminism(t *testing.T) {
	a, _, _ := HAI(HAIConfig{Providers: 30, Measures: 4, Seed: 9})
	b, _, _ := HAI(HAIConfig{Providers: 30, Measures: 4, Seed: 9})
	if d := a.Diff(b); len(d) != 0 {
		t.Errorf("same seed differs: %v", d[:min(3, len(d))])
	}
	c, _, _ := HAI(HAIConfig{Providers: 30, Measures: 4, Seed: 10})
	if d := a.Diff(c); len(d) == 0 {
		t.Error("different seeds should differ")
	}
}

func TestHAIDensity(t *testing.T) {
	tb, _, _ := HAI(HAIConfig{Providers: 40, Measures: 8, Seed: 2})
	// Every provider appears once per measure: the FD ProviderID → City,
	// PhoneNumber has dense support.
	counts := tb.ValueCounts("ProviderID")
	for pid, c := range counts {
		if c != 8 {
			t.Errorf("provider %s has %d rows, want 8", pid, c)
		}
	}
}

func TestCARGeneration(t *testing.T) {
	tb, rs, err := CAR(CARConfig{Rows: 1200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1200 {
		t.Errorf("rows = %d", tb.Len())
	}
	if got := tb.Schema.Attrs(); !reflect.DeepEqual(got, CARSchema) {
		t.Errorf("schema = %v", got)
	}
	if len(rs) != 3 {
		t.Errorf("rules = %d (CFD + FD + embedded FD)", len(rs))
	}
	assertRulesHold(t, tb, rs)
	// acura must exist (the CFD pattern binds it).
	if counts := tb.ValueCounts("Make"); counts["acura"] == 0 {
		t.Error("no acura rows generated")
	}
}

func TestCARSparsity(t *testing.T) {
	tb, _, _ := CAR(CARConfig{Rows: 2000, Seed: 4})
	models := tb.Domain("Model")
	if len(models) < 50 {
		t.Errorf("only %d models; CAR should have a long tail", len(models))
	}
	// Support floor: every (Model, Type) pair has at least 2 rows.
	pairs := make(map[string]int)
	for _, tp := range tb.Tuples {
		pairs[tb.Key(tp, []string{"Model", "Type"})]++
	}
	for k, c := range pairs {
		if c < 2 {
			t.Errorf("pair %q has %d rows, want ≥ 2", dataset.SplitKey(k), c)
		}
	}
}

func TestCARDeterminism(t *testing.T) {
	a, _, _ := CAR(CARConfig{Rows: 500, Seed: 6})
	b, _, _ := CAR(CARConfig{Rows: 500, Seed: 6})
	if d := a.Diff(b); len(d) != 0 {
		t.Error("same seed differs")
	}
}

func TestTPCHGeneration(t *testing.T) {
	tb, rs, err := TPCH(TPCHConfig{Customers: 50, Rows: 700, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 700 {
		t.Errorf("rows = %d", tb.Len())
	}
	if got := tb.Schema.Attrs(); !reflect.DeepEqual(got, TPCHSchema) {
		t.Errorf("schema = %v", got)
	}
	if len(rs) != 1 {
		t.Errorf("rules = %d, want 1 (CustKey → Address)", len(rs))
	}
	assertRulesHold(t, tb, rs)
	// Customers repeat across order lines (dense FD support).
	counts := tb.ValueCounts("CustKey")
	if len(counts) > 50 {
		t.Errorf("more custkeys than customers: %d", len(counts))
	}
}

func TestTPCHDeterminism(t *testing.T) {
	a, _, _ := TPCH(TPCHConfig{Customers: 20, Rows: 200, Seed: 8})
	b, _, _ := TPCH(TPCHConfig{Customers: 20, Rows: 200, Seed: 8})
	if d := a.Diff(b); len(d) != 0 {
		t.Error("same seed differs")
	}
}

func TestNamerUniqueness(t *testing.T) {
	n := newNamer(randSource(1), 2, 3)
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		s := n.fresh()
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

func TestUniqueDigits(t *testing.T) {
	used := make(map[string]struct{})
	rng := randSource(2)
	for i := 0; i < 200; i++ {
		s := uniqueDigits(rng, 4, used)
		if len(s) != 4 {
			t.Fatalf("width %d", len(s))
		}
	}
	if len(used) != 200 {
		t.Errorf("unique count = %d", len(used))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// randSource is a test helper for seeding package-internal generators.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
