package rules

import (
	"reflect"
	"strings"
	"testing"

	"mlnclean/internal/dataset"
)

func carTable(t *testing.T) *dataset.Table {
	t.Helper()
	tb := dataset.NewTable(dataset.MustSchema("Model", "Make", "Type", "Doors"))
	tb.MustAppend("MDX", "acura", "SUV", "4")     // t0
	tb.MustAppend("MDX", "acura", "SUV", "2")     // t1: doors conflict
	tb.MustAppend("CIVIC", "honda", "SEDAN", "4") // t2
	tb.MustAppend("CIVIC", "honda", "SEDAN", "4") // t3
	return tb
}

func TestRuleShapeValidation(t *testing.T) {
	if _, err := New("r", FD, nil, []Pattern{{Attr: "B"}}); err == nil {
		t.Error("empty reason should fail")
	}
	if _, err := New("r", FD, []Pattern{{Attr: "A"}}, nil); err == nil {
		t.Error("empty result should fail")
	}
	if _, err := New("r", FD, []Pattern{{Attr: "A"}}, []Pattern{{Attr: "A"}}); err == nil {
		t.Error("repeated attribute should fail")
	}
	if _, err := New("r", DC, []Pattern{{Attr: "A", Op: "<"}}, []Pattern{{Attr: "B", Op: "="}}); err == nil {
		t.Error("DC with unsupported op should fail")
	}
	if _, err := New("r", FD, []Pattern{{Attr: ""}}, []Pattern{{Attr: "B"}}); err == nil {
		t.Error("empty attr should fail")
	}
}

func TestValidateAgainstSchema(t *testing.T) {
	tb := carTable(t)
	r := MustNew("r", FD, []Pattern{{Attr: "Model"}}, []Pattern{{Attr: "Make"}})
	if err := r.Validate(tb.Schema); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	bad := MustNew("r", FD, []Pattern{{Attr: "Nope"}}, []Pattern{{Attr: "Make"}})
	if err := bad.Validate(tb.Schema); err == nil {
		t.Error("unknown attribute should fail validation")
	}
}

func TestAttrAccessors(t *testing.T) {
	r := MustNew("r", FD,
		[]Pattern{{Attr: "A"}, {Attr: "B"}},
		[]Pattern{{Attr: "C"}})
	if got := r.ReasonAttrs(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("ReasonAttrs = %v", got)
	}
	if got := r.ResultAttrs(); !reflect.DeepEqual(got, []string{"C"}) {
		t.Errorf("ResultAttrs = %v", got)
	}
	if got := r.Attrs(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("Attrs = %v", got)
	}
}

func TestCFDAppliesTo(t *testing.T) {
	tb := carTable(t)
	cfd := MustNew("r", CFD,
		[]Pattern{{Attr: "Make", Const: "acura"}, {Attr: "Type"}},
		[]Pattern{{Attr: "Doors"}})
	if !cfd.AppliesTo(tb, tb.Tuples[0]) {
		t.Error("acura row should be in CFD block")
	}
	if cfd.AppliesTo(tb, tb.Tuples[2]) {
		t.Error("honda row should not be in CFD block")
	}
	// FD applies to everything.
	fd := MustNew("r2", FD, []Pattern{{Attr: "Model"}}, []Pattern{{Attr: "Make"}})
	for _, tp := range tb.Tuples {
		if !fd.AppliesTo(tb, tp) {
			t.Error("FD must apply to all tuples")
		}
	}
	// CFD with variable-only reason behaves like an FD.
	varCFD := MustNew("r3", CFD, []Pattern{{Attr: "Model"}}, []Pattern{{Attr: "Make"}})
	if !varCFD.AppliesTo(tb, tb.Tuples[2]) {
		t.Error("variable-only CFD should apply to all tuples")
	}
}

func TestCFDViolates(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("HN", "CT", "PN"))
	match := tb.MustAppend("ELIZA", "BOAZ", "111")  // violates: wrong PN
	okRow := tb.MustAppend("ELIZA", "BOAZ", "999")  // satisfies
	other := tb.MustAppend("ELIZA", "DOTHAN", "42") // reason doesn't match fully

	cfd := MustNew("r", CFD,
		[]Pattern{{Attr: "HN", Const: "ELIZA"}, {Attr: "CT", Const: "BOAZ"}},
		[]Pattern{{Attr: "PN", Const: "999"}})
	if !cfd.Violates(tb, match) {
		t.Error("mismatched result constant should violate")
	}
	if cfd.Violates(tb, okRow) {
		t.Error("satisfied CFD flagged")
	}
	if cfd.Violates(tb, other) {
		t.Error("non-matching reason flagged")
	}
	fd := MustNew("r2", FD, []Pattern{{Attr: "HN"}}, []Pattern{{Attr: "CT"}})
	if fd.Violates(tb, match) {
		t.Error("FDs have no row-local violation")
	}
}

func TestPairViolatesFD(t *testing.T) {
	tb := carTable(t)
	fd := MustNew("r", FD, []Pattern{{Attr: "Model"}, {Attr: "Type"}}, []Pattern{{Attr: "Doors"}})
	if !fd.PairViolates(tb, tb.Tuples[0], tb.Tuples[1]) {
		t.Error("same reason, different doors should violate")
	}
	if fd.PairViolates(tb, tb.Tuples[2], tb.Tuples[3]) {
		t.Error("identical rows cannot violate")
	}
	if fd.PairViolates(tb, tb.Tuples[0], tb.Tuples[2]) {
		t.Error("different reason values cannot violate")
	}
}

func TestPairViolatesDC(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("PN", "ST"))
	a := tb.MustAppend("111", "AL")
	b := tb.MustAppend("111", "AK") // same phone, different state → violation
	c := tb.MustAppend("222", "AK")

	dc := MustNew("r", DC,
		[]Pattern{{Attr: "PN", Op: "="}},
		[]Pattern{{Attr: "ST", Op: "!="}})
	if !dc.PairViolates(tb, a, b) {
		t.Error("DC should be violated by (a,b)")
	}
	if dc.PairViolates(tb, a, c) {
		t.Error("different phones cannot violate")
	}
	if dc.PairViolates(tb, a, a) {
		t.Error("a tuple with itself: ST(t)!=ST(t) is false")
	}
}

func TestPairViolatesCFDConstants(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("Make", "Type", "Doors"))
	a := tb.MustAppend("acura", "SUV", "4")
	b := tb.MustAppend("acura", "SUV", "2")
	cfd := MustNew("r", CFD,
		[]Pattern{{Attr: "Make", Const: "acura"}, {Attr: "Type"}},
		[]Pattern{{Attr: "Doors"}})
	if !cfd.PairViolates(tb, a, b) {
		t.Error("matching pattern with differing doors should violate")
	}
}

func TestRuleString(t *testing.T) {
	fd := MustNew("r1", FD, []Pattern{{Attr: "CT"}}, []Pattern{{Attr: "ST"}})
	if s := fd.String(); !strings.Contains(s, "r1 FD") || !strings.Contains(s, "CT => ST") {
		t.Errorf("FD String = %q", s)
	}
	cfd := MustNew("r3", CFD,
		[]Pattern{{Attr: "HN", Const: "ELIZA"}},
		[]Pattern{{Attr: "PN", Const: "999"}})
	if s := cfd.String(); !strings.Contains(s, `HN("ELIZA")`) {
		t.Errorf("CFD String = %q", s)
	}
	dc := MustNew("r2", DC, []Pattern{{Attr: "PN", Op: "="}}, []Pattern{{Attr: "ST", Op: "!="}})
	if s := dc.String(); !strings.Contains(s, "not(") || !strings.Contains(s, "PN") {
		t.Errorf("DC String = %q", s)
	}
	if FD.String() != "FD" || CFD.String() != "CFD" || DC.String() != "DC" {
		t.Error("Kind.String")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind.String")
	}
}

func TestPatternString(t *testing.T) {
	if s := (Pattern{Attr: "A"}).String(); s != "A" {
		t.Errorf("var pattern = %q", s)
	}
	if s := (Pattern{Attr: "A", Const: "x"}).String(); s != `A("x")` {
		t.Errorf("const pattern = %q", s)
	}
	if s := (Pattern{Attr: "A", Op: "!="}).String(); !strings.Contains(s, "!=") {
		t.Errorf("DC pattern = %q", s)
	}
	if !(Pattern{Attr: "A"}).IsVar() || (Pattern{Attr: "A", Const: "x"}).IsVar() {
		t.Error("IsVar")
	}
}
