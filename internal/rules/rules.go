// Package rules models the integrity constraints MLNClean consumes —
// functional dependencies (FDs), conditional functional dependencies (CFDs)
// and denial constraints (DCs) — together with the reason/result split the
// MLN index is built on (paper §3–§4).
//
// Every rule is normalized to a reason part (a list of attribute patterns,
// possibly with constants for CFDs) and a result part. For implication
// formulas (FD, CFD) the antecedent is the reason and the consequent the
// result; for DCs the last predicate is the result and the remaining
// predicates the reason (§4).
package rules

import (
	"fmt"
	"strings"

	"mlnclean/internal/dataset"
)

// Kind enumerates the supported constraint classes.
type Kind int

const (
	// FD is a functional dependency: X ⇒ Y over variables only.
	FD Kind = iota
	// CFD is a conditional functional dependency: patterns may bind
	// constants, e.g. Make("acura"), Type ⇒ Doors.
	CFD
	// DC is a denial constraint of the pairwise form
	// ∀t,t′ ¬(A(t)=A(t′) ∧ … ∧ B(t)≠B(t′)).
	DC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FD:
		return "FD"
	case CFD:
		return "CFD"
	case DC:
		return "DC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pattern is one attribute slot of a rule. Const == "" means the slot is a
// variable (matches any value); otherwise the slot only matches tuples whose
// attribute equals Const (CFD semantics). For DC predicates, Op records the
// comparison between the two quantified tuples ("=" or "!=").
type Pattern struct {
	Attr  string
	Const string
	Op    string // DC only: "=" or "!="; empty for FD/CFD slots
}

// IsVar reports whether the pattern is an unconstrained variable slot.
func (p Pattern) IsVar() bool { return p.Const == "" }

// String renders the pattern in the paper's notation.
func (p Pattern) String() string {
	if p.Op != "" {
		return fmt.Sprintf("%s(t.v)%s%s(t'.v)", p.Attr, p.Op, p.Attr)
	}
	if p.Const != "" {
		return fmt.Sprintf("%s(%q)", p.Attr, p.Const)
	}
	return p.Attr
}

// Rule is a single integrity constraint in reason ⇒ result form.
type Rule struct {
	ID     string
	Kind   Kind
	Reason []Pattern
	Result []Pattern
}

// New constructs a validated rule.
func New(id string, kind Kind, reason, result []Pattern) (*Rule, error) {
	r := &Rule{ID: id, Kind: kind, Reason: reason, Result: result}
	if err := r.validateShape(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustNew is New that panics on error; for tests and static rule tables.
func MustNew(id string, kind Kind, reason, result []Pattern) *Rule {
	r, err := New(id, kind, reason, result)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Rule) validateShape() error {
	if len(r.Reason) == 0 {
		return fmt.Errorf("rules: %s: empty reason part", r.ID)
	}
	if len(r.Result) == 0 {
		return fmt.Errorf("rules: %s: empty result part", r.ID)
	}
	seen := make(map[string]bool)
	for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
		if p.Attr == "" {
			return fmt.Errorf("rules: %s: pattern with empty attribute", r.ID)
		}
		if seen[p.Attr] {
			return fmt.Errorf("rules: %s: attribute %q appears twice", r.ID, p.Attr)
		}
		seen[p.Attr] = true
	}
	if r.Kind == DC {
		for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
			if p.Op != "=" && p.Op != "!=" {
				return fmt.Errorf("rules: %s: DC predicate on %q needs op = or !=, got %q", r.ID, p.Attr, p.Op)
			}
		}
	}
	return nil
}

// Validate checks the rule against a schema: every referenced attribute must
// exist.
func (r *Rule) Validate(s *dataset.Schema) error {
	for _, p := range r.Reason {
		if !s.Has(p.Attr) {
			return fmt.Errorf("rules: %s: reason attribute %q not in schema", r.ID, p.Attr)
		}
	}
	for _, p := range r.Result {
		if !s.Has(p.Attr) {
			return fmt.Errorf("rules: %s: result attribute %q not in schema", r.ID, p.Attr)
		}
	}
	return nil
}

// ReasonAttrs returns the reason-part attribute names in order.
func (r *Rule) ReasonAttrs() []string {
	out := make([]string, len(r.Reason))
	for i, p := range r.Reason {
		out[i] = p.Attr
	}
	return out
}

// ResultAttrs returns the result-part attribute names in order.
func (r *Rule) ResultAttrs() []string {
	out := make([]string, len(r.Result))
	for i, p := range r.Result {
		out[i] = p.Attr
	}
	return out
}

// Attrs returns all attributes the rule touches, reason first.
func (r *Rule) Attrs() []string {
	return append(r.ReasonAttrs(), r.ResultAttrs()...)
}

// AppliesTo reports whether the rule's block should contain tuple t.
//
//   - FD and DC blocks contain every tuple.
//   - CFD blocks contain the tuples that match at least one constant reason
//     pattern. This reproduces Fig. 2: t3 (HN=ELIZA, CT=DOTHAN) belongs to
//     block B3 of rule r3 = HN("ELIZA"), CT("BOAZ") ⇒ PN("2567688400")
//     because it matches the HN constant, while t1/t2 (HN=ALABAMA) do not
//     match any constant and are excluded.
func (r *Rule) AppliesTo(tb *dataset.Table, t *dataset.Tuple) bool {
	if r.Kind != CFD {
		return true
	}
	anyConst := false
	for _, p := range r.Reason {
		if p.Const == "" {
			continue
		}
		anyConst = true
		if tb.Cell(t, p.Attr) == p.Const {
			return true
		}
	}
	// A CFD with a variable-only reason behaves like an FD.
	return !anyConst
}

// Violates reports whether a single tuple violates the rule's row-local
// constraint. Only CFDs have row-local semantics (if the full reason pattern
// matches, the result constants must hold); FDs and DCs are inherently
// multi-tuple and always return false here. Use Violations for pairs.
func (r *Rule) Violates(tb *dataset.Table, t *dataset.Tuple) bool {
	if r.Kind != CFD {
		return false
	}
	for _, p := range r.Reason {
		if p.Const != "" && tb.Cell(t, p.Attr) != p.Const {
			return false
		}
	}
	for _, p := range r.Result {
		if p.Const != "" && tb.Cell(t, p.Attr) != p.Const {
			return true
		}
	}
	return false
}

// PairViolates reports whether the tuple pair (a, b) violates the rule.
// For FDs/variable CFDs: same reason values but different result values.
// For DCs: every reason predicate satisfied and the result predicate
// violated (i.e. the negated conjunction is falsified).
func (r *Rule) PairViolates(tb *dataset.Table, a, b *dataset.Tuple) bool {
	switch r.Kind {
	case FD, CFD:
		if !r.AppliesTo(tb, a) || !r.AppliesTo(tb, b) {
			return false
		}
		for _, p := range r.Reason {
			if tb.Cell(a, p.Attr) != tb.Cell(b, p.Attr) {
				return false
			}
			if p.Const != "" && tb.Cell(a, p.Attr) != p.Const {
				return false
			}
		}
		for _, p := range r.Result {
			if p.Const != "" {
				// Constant result: either tuple deviating is a violation.
				if tb.Cell(a, p.Attr) != p.Const || tb.Cell(b, p.Attr) != p.Const {
					return true
				}
				continue
			}
			if tb.Cell(a, p.Attr) != tb.Cell(b, p.Attr) {
				return true
			}
		}
		return false
	case DC:
		// DC form: ¬(p1 ∧ … ∧ pn). The pair violates the DC when every
		// predicate holds.
		for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
			va, vb := tb.Cell(a, p.Attr), tb.Cell(b, p.Attr)
			switch p.Op {
			case "=":
				if va != vb {
					return false
				}
			case "!=":
				if va == vb {
					return false
				}
			}
		}
		return true
	default:
		return false
	}
}

// Canonical renders the rule in the exact line syntax Parse accepts (no id
// label), so Parse(Canonical()) reconstructs the rule. String, by contrast,
// uses the paper's display notation, which is not parseable for CFDs.
func (r *Rule) Canonical() string {
	if r.Kind == DC {
		preds := make([]string, 0, len(r.Reason)+len(r.Result))
		for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
			preds = append(preds, fmt.Sprintf("%s(t)%s%s(t')", p.Attr, p.Op, p.Attr))
		}
		return "DC: not(" + strings.Join(preds, " and ") + ")"
	}
	pat := func(p Pattern) string {
		if p.Const != "" {
			return p.Attr + "=" + p.Const
		}
		return p.Attr
	}
	parts := make([]string, len(r.Reason))
	for i, p := range r.Reason {
		parts[i] = pat(p)
	}
	out := r.Kind.String() + ": " + strings.Join(parts, ", ") + " -> "
	parts = parts[:0]
	for _, p := range r.Result {
		parts = append(parts, pat(p))
	}
	return out + strings.Join(parts, ", ")
}

// String renders the rule in the paper's notation, e.g.
// "r1 FD: CT => ST" or "r3 CFD: HN(\"ELIZA\"), CT(\"BOAZ\") => PN(\"2567688400\")".
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: ", r.ID, r.Kind)
	if r.Kind == DC {
		b.WriteString("forall t,t' not(")
		parts := make([]string, 0, len(r.Reason)+len(r.Result))
		for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
			parts = append(parts, p.String())
		}
		b.WriteString(strings.Join(parts, " and "))
		b.WriteString(")")
		return b.String()
	}
	parts := make([]string, len(r.Reason))
	for i, p := range r.Reason {
		parts[i] = p.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(" => ")
	parts = parts[:0]
	for _, p := range r.Result {
		parts = append(parts, p.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}
