package rules

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads one rule from its textual form. Supported syntaxes (whitespace
// insensitive; "->" and "=>" are interchangeable):
//
//	FD:  CT -> ST
//	FD:  ProviderID -> City, PhoneNumber
//	CFD: Make=acura, Type -> Doors
//	CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400
//	DC:  not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))
//
// The leading "<id> <KIND>:" prefix is optional in ParseList files, where
// ids default to r1, r2, …; Parse requires the KIND prefix.
func Parse(id, text string) (*Rule, error) {
	text = strings.TrimSpace(text)
	kindStr, rest, ok := strings.Cut(text, ":")
	if !ok {
		return nil, fmt.Errorf("rules: %s: missing KIND prefix in %q", id, text)
	}
	rest = strings.TrimSpace(rest)
	switch strings.ToUpper(strings.TrimSpace(kindStr)) {
	case "FD":
		return parseImplication(id, FD, rest)
	case "CFD":
		return parseImplication(id, CFD, rest)
	case "DC":
		return parseDC(id, rest)
	default:
		return nil, fmt.Errorf("rules: %s: unknown rule kind %q", id, kindStr)
	}
}

func parseImplication(id string, kind Kind, text string) (*Rule, error) {
	lhs, rhs, ok := cutArrow(text)
	if !ok {
		return nil, fmt.Errorf("rules: %s: implication needs '->' in %q", id, text)
	}
	reason, err := parsePatterns(id, lhs, kind)
	if err != nil {
		return nil, err
	}
	result, err := parsePatterns(id, rhs, kind)
	if err != nil {
		return nil, err
	}
	if kind == FD {
		for _, p := range append(append([]Pattern{}, reason...), result...) {
			if p.Const != "" {
				return nil, fmt.Errorf("rules: %s: FD cannot bind constants (use CFD): %q", id, p.Attr)
			}
		}
	}
	return New(id, kind, reason, result)
}

func cutArrow(text string) (lhs, rhs string, ok bool) {
	if l, r, found := strings.Cut(text, "=>"); found {
		return strings.TrimSpace(l), strings.TrimSpace(r), true
	}
	if l, r, found := strings.Cut(text, "->"); found {
		return strings.TrimSpace(l), strings.TrimSpace(r), true
	}
	return "", "", false
}

func parsePatterns(id, text string, kind Kind) ([]Pattern, error) {
	var out []Pattern
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("rules: %s: empty pattern in %q", id, text)
		}
		attr, val, bound := strings.Cut(part, "=")
		attr = strings.TrimSpace(attr)
		p := Pattern{Attr: attr}
		if bound {
			p.Const = strings.Trim(strings.TrimSpace(val), `"`)
			if p.Const == "" {
				return nil, fmt.Errorf("rules: %s: empty constant for %q", id, attr)
			}
			if kind == FD {
				return nil, fmt.Errorf("rules: %s: FD cannot bind constants (use CFD)", id)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// parseDC parses the pairwise denial-constraint syntax:
//
//	not(A(t)=A(t') and B(t)!=B(t'))
//
// Each predicate compares the same attribute across the two quantified
// tuples with = or !=. Per §4, the final predicate is the result part.
func parseDC(id, text string) (*Rule, error) {
	text = strings.TrimSpace(text)
	lower := strings.ToLower(text)
	if strings.HasPrefix(lower, "forall") {
		// Tolerate an explicit "forall t,t'" quantifier prefix.
		if i := strings.Index(lower, "not("); i >= 0 {
			text = text[i:]
			lower = lower[i:]
		}
	}
	if !strings.HasPrefix(lower, "not(") || !strings.HasSuffix(text, ")") {
		return nil, fmt.Errorf("rules: %s: DC must be of form not(...): %q", id, text)
	}
	body := text[len("not(") : len(text)-1]
	preds := splitAnd(body)
	if len(preds) < 2 {
		return nil, fmt.Errorf("rules: %s: DC needs at least two predicates: %q", id, body)
	}
	var pats []Pattern
	for _, pr := range preds {
		p, err := parseDCPredicate(id, pr)
		if err != nil {
			return nil, err
		}
		pats = append(pats, p)
	}
	return New(id, DC, pats[:len(pats)-1], pats[len(pats)-1:])
}

func splitAnd(body string) []string {
	var parts []string
	depth := 0
	start := 0
	lower := strings.ToLower(body)
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && i+5 <= len(body) && lower[i:i+5] == " and " {
			parts = append(parts, strings.TrimSpace(body[start:i]))
			start = i + 5
			i += 4
		}
	}
	parts = append(parts, strings.TrimSpace(body[start:]))
	return parts
}

// parseDCPredicate parses "Attr(t)=Attr(t')" or "Attr(t)!=Attr(t')".
func parseDCPredicate(id, text string) (Pattern, error) {
	op := "="
	var l, r string
	if li, ri, found := strings.Cut(text, "!="); found {
		op, l, r = "!=", li, ri
	} else if li, ri, found := strings.Cut(text, "="); found {
		l, r = li, ri
	} else {
		return Pattern{}, fmt.Errorf("rules: %s: DC predicate needs = or !=: %q", id, text)
	}
	la := predicateAttr(l)
	ra := predicateAttr(r)
	if la == "" || ra == "" {
		return Pattern{}, fmt.Errorf("rules: %s: cannot parse DC predicate %q", id, text)
	}
	if la != ra {
		return Pattern{}, fmt.Errorf("rules: %s: DC predicate must compare the same attribute on both tuples, got %q vs %q", id, la, ra)
	}
	return Pattern{Attr: la, Op: op}, nil
}

func predicateAttr(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '('); i > 0 {
		return strings.TrimSpace(s[:i])
	}
	return s
}

// ParseList reads a rule set, one rule per line. Blank lines and lines
// starting with '#' are skipped. Each line may begin with an explicit
// "<id>:" label before the KIND; otherwise ids are assigned r1, r2, ….
func ParseList(r io.Reader) ([]*Rule, error) {
	var out []*Rule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		n++
		id := fmt.Sprintf("r%d", n)
		// Optional explicit id label: "myid: FD: A -> B". Distinguish from the
		// KIND prefix by checking whether the first token is a kind name.
		if head, rest, ok := strings.Cut(text, ":"); ok {
			switch strings.ToUpper(strings.TrimSpace(head)) {
			case "FD", "CFD", "DC":
				// no label
			default:
				id = strings.TrimSpace(head)
				text = strings.TrimSpace(rest)
			}
		}
		rule, err := Parse(id, text)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", line, err)
		}
		out = append(out, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseStrings parses each string as one rule line (convenience for tests
// and examples).
func ParseStrings(lines ...string) ([]*Rule, error) {
	return ParseList(strings.NewReader(strings.Join(lines, "\n")))
}

// MustParseStrings is ParseStrings that panics on error.
func MustParseStrings(lines ...string) []*Rule {
	rs, err := ParseStrings(lines...)
	if err != nil {
		panic(err)
	}
	return rs
}
