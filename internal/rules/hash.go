package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// CanonicalHash returns a stable content hash of a rule set: the SHA-256 of
// the sorted Canonical() renderings. Two rule sets hash equal iff they
// contain the same constraints, regardless of rule order, rule IDs, or
// surface spelling ("=>" vs "->", whitespace) — Canonical normalizes all of
// those. This is the model-cache key the serving layer interns parsed rule
// sets and learned Eq. 6 weight vectors under.
func CanonicalHash(rs []*Rule) string {
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = r.Canonical()
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}
