package rules

import (
	"strings"
	"testing"
)

// fuzzSeeds is the in-code half of the FuzzParse seed corpus (the other half
// lives in testdata/fuzz/FuzzParse): valid rules of every kind plus
// near-misses that exercise the error paths.
var fuzzSeeds = []string{
	"FD: CT -> ST",
	"FD: ProviderID -> City, PhoneNumber",
	"FD: A => B",
	"CFD: Make=acura, Type -> Doors",
	"CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400",
	`CFD: A="x" -> B`,
	"DC: not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))",
	"DC: forall t,t' not(A(t)=A(t') and B(t)!=B(t'))",
	"DC: not(A(t)=A(t') and B(t)=B(t') and C(t)!=C(t'))",
	"FD:",
	"FD: A ->",
	"FD: -> B",
	"FD: A -> A",
	"FD: A=x -> B",
	"XX: A -> B",
	"DC: not(A(t)=B(t'))",
	"DC: not(A(t)=A(t'))",
	"CFD: A= -> B",
	"fd: a -> b",
	" DC : not(A(t)!=A(t') and A(t)=A(t'))",
}

// FuzzParse asserts that Parse never panics, and that every parsed rule
// whose attributes and constants are free of syntax metacharacters
// round-trips through its canonical text: parse → Canonical → parse yields
// the same canonical text again.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		r, err := Parse("f", text)
		if err != nil {
			return // rejecting the input without panicking is the contract
		}
		if !roundTrippable(r) {
			return // attrs/consts embedding syntax tokens are out of contract
		}
		canon := r.Canonical()
		r2, err := Parse("f", canon)
		if err != nil {
			t.Fatalf("canonical form of %q does not re-parse: %q: %v", text, canon, err)
		}
		if got := r2.Canonical(); got != canon {
			t.Fatalf("canonical round-trip of %q diverges:\n first %q\nsecond %q", text, canon, got)
		}
		if r2.Kind != r.Kind || len(r2.Reason) != len(r.Reason) || len(r2.Result) != len(r.Result) {
			t.Fatalf("re-parsed rule shape differs for %q: %v vs %v", text, r, r2)
		}
	})
}

// roundTrippable reports whether every attribute and constant of the rule is
// free of the grammar's metacharacters — the class of rules whose canonical
// text is guaranteed to re-parse identically. Adversarial names embedding
// separators (commas, arrows, parens, " and ", quotes) parse, but their
// serialized form is ambiguous by construction.
func roundTrippable(r *Rule) bool {
	ok := func(s string) bool {
		if s == "" || s != strings.TrimSpace(s) {
			return false
		}
		if strings.ContainsAny(s, ",=()\"!\n\r") {
			return false
		}
		if strings.Contains(s, "->") || strings.Contains(s, "=>") {
			return false
		}
		return !strings.Contains(strings.ToLower(s), " and ")
	}
	for _, p := range append(append([]Pattern{}, r.Reason...), r.Result...) {
		if !ok(p.Attr) {
			return false
		}
		if p.Const != "" && !ok(p.Const) {
			return false
		}
	}
	return true
}
