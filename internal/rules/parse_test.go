package rules

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFD(t *testing.T) {
	r, err := Parse("r1", "FD: CT -> ST")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r.Kind != FD || r.ID != "r1" {
		t.Errorf("parsed %v %v", r.Kind, r.ID)
	}
	if !reflect.DeepEqual(r.ReasonAttrs(), []string{"CT"}) || !reflect.DeepEqual(r.ResultAttrs(), []string{"ST"}) {
		t.Errorf("parts: %v -> %v", r.ReasonAttrs(), r.ResultAttrs())
	}
}

func TestParseFDMultiResult(t *testing.T) {
	r, err := Parse("r", "FD: ProviderID -> City, PhoneNumber")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(r.ResultAttrs(), []string{"City", "PhoneNumber"}) {
		t.Errorf("result attrs: %v", r.ResultAttrs())
	}
}

func TestParseFDCompositeReason(t *testing.T) {
	r, err := Parse("r", "FD: Model, Type -> Make")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(r.ReasonAttrs(), []string{"Model", "Type"}) {
		t.Errorf("reason attrs: %v", r.ReasonAttrs())
	}
}

func TestParseArrowVariants(t *testing.T) {
	a, err := Parse("r", "FD: A -> B")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("r", "FD: A => B")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("arrow variants differ: %q vs %q", a, b)
	}
}

func TestParseCFD(t *testing.T) {
	r, err := Parse("r3", `CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r.Kind != CFD {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Reason[0].Const != "ELIZA" || r.Reason[1].Const != "BOAZ" || r.Result[0].Const != "2567688400" {
		t.Errorf("constants: %+v -> %+v", r.Reason, r.Result)
	}
	// Mixed constant/variable CFD (Table 4's acura rule).
	r2, err := Parse("r", "CFD: Make=acura, Type -> Doors")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r2.Reason[0].Const != "acura" || !r2.Reason[1].IsVar() || !r2.Result[0].IsVar() {
		t.Errorf("mixed CFD: %+v -> %+v", r2.Reason, r2.Result)
	}
	// Quoted constants are unquoted.
	r3, err := Parse("r", `CFD: HN="ELIZA" -> PN="1"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r3.Reason[0].Const != "ELIZA" {
		t.Errorf("quoted constant: %q", r3.Reason[0].Const)
	}
}

func TestParseDC(t *testing.T) {
	r, err := Parse("r2", "DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r.Kind != DC {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Reason[0].Attr != "PN" || r.Reason[0].Op != "=" {
		t.Errorf("reason: %+v", r.Reason)
	}
	if r.Result[0].Attr != "ST" || r.Result[0].Op != "!=" {
		t.Errorf("result: %+v", r.Result)
	}
	// Multi-predicate DC: last predicate is the result (§4).
	r2, err := Parse("r", "DC: not(A(t)=A(t') and B(t)=B(t') and C(t)!=C(t'))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(r2.Reason) != 2 || r2.Result[0].Attr != "C" {
		t.Errorf("multi DC: %v -> %v", r2.ReasonAttrs(), r2.ResultAttrs())
	}
	// Tolerates an explicit quantifier prefix.
	r3, err := Parse("r", "DC: forall t,t' not(PN(t)=PN(t') and ST(t)!=ST(t'))")
	if err != nil {
		t.Fatalf("Parse with quantifier: %v", err)
	}
	if r3.Reason[0].Attr != "PN" {
		t.Errorf("quantified DC: %+v", r3.Reason)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"CT -> ST",                              // missing kind
		"XX: CT -> ST",                          // unknown kind
		"FD: CT",                                // no arrow
		"FD: -> ST",                             // empty reason
		"FD: CT= -> ST",                         // empty constant
		"FD: CT=x -> ST",                        // FD cannot bind constants
		"DC: PN(t)=PN(t')",                      // DC must be not(...)
		"DC: not(PN(t)=PN(t'))",                 // single predicate
		"DC: not(PN(t)<PN(t') and A(t)=A(t'))",  // unsupported op
		"DC: not(PN(t)=ST(t') and A(t)!=A(t'))", // attr mismatch
	}
	for _, text := range bad {
		if _, err := Parse("r", text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseList(t *testing.T) {
	input := `
# HAI rules
FD: PhoneNumber -> ZIPCode

zipcity: FD: ZIPCode -> City
DC: not(PhoneNumber(t)=PhoneNumber(t') and State(t)!=State(t'))
`
	rs, err := ParseList(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseList: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rs))
	}
	if rs[0].ID != "r1" {
		t.Errorf("auto id = %q", rs[0].ID)
	}
	if rs[1].ID != "zipcity" {
		t.Errorf("explicit id = %q", rs[1].ID)
	}
	if rs[2].Kind != DC {
		t.Errorf("third rule kind = %v", rs[2].Kind)
	}
}

func TestParseListError(t *testing.T) {
	if _, err := ParseList(strings.NewReader("FD: broken")); err == nil {
		t.Error("broken rule line should fail")
	}
}

func TestMustParseStringsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseStrings should panic on bad input")
		}
	}()
	MustParseStrings("FD: nope")
}

func TestParseStringRoundtrip(t *testing.T) {
	// Parsed rules render to strings that mention their structure.
	rs := MustParseStrings(
		"FD: A -> B",
		"CFD: A=x, B -> C",
		"DC: not(A(t)=A(t') and B(t)!=B(t'))",
	)
	for _, r := range rs {
		if r.String() == "" {
			t.Errorf("empty String for %v", r.Kind)
		}
	}
}
