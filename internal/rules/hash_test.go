package rules

import "testing"

// CanonicalHash must be invariant to rule order, ids, and surface spelling,
// and sensitive to the constraints themselves.
func TestCanonicalHash(t *testing.T) {
	a, err := ParseStrings("FD: CT -> ST", "CFD: HN=ELIZA, CT=BOAZ -> PN=2567688400")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseStrings("CFD:  HN=ELIZA ,CT=BOAZ => PN=2567688400", "FD: CT => ST")
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Error("hash not invariant to order/spelling")
	}
	c, err := ParseStrings("FD: CT -> ST")
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(a) == CanonicalHash(c) {
		t.Error("different rule sets hash equal")
	}
	if len(CanonicalHash(nil)) != 64 {
		t.Error("hash of empty set should still be a hex sha256")
	}
}
