// Package intern provides the shared value dictionary the cleaning pipeline
// is keyed on: every distinct cell value is encoded to a dense uint32 ID at
// ingest, and composite keys (a rule's reason or reason+result projection)
// reduce to a single fixed-width ID by hash-consing (ID, ID) pairs — the
// same left-fold trick internal/mln's ground store uses for atoms. Hashing
// a piece or group identity therefore costs one small map probe per
// attribute over comparable integer keys instead of building a joined
// string, and it is immune to the separator-collision class that plagues
// dataset.JoinKey (values containing the 0x1f byte).
//
// The dictionary also accumulates per-column statistics (Stats) as rows are
// encoded — cell counts, distinct-ID cardinality, and exact per-ID
// frequencies — which the rule planner (internal/plan) ranks predicates by,
// so selectivity planning needs no separate stats-collection pass.
//
// A Dict is NOT safe for concurrent mutation. The pipeline confines writes
// to serial phases (table encoding, index construction, wire-piece
// interning); the parallel stage-I/II loops only read. Long-lived holders
// (the serving model cache) snapshot a Dict into an immutable Frozen base
// that any number of derived Dicts may share concurrently.
package intern

// pairTag marks sequence nodes: value IDs live below 1<<31, pair nodes
// above, so a single value's ID can double as its length-1 sequence key
// without colliding with any longer sequence.
const pairTag = 1 << 31

// Frozen is an immutable Dict snapshot: a base vocabulary (value IDs
// 0..Len-1 and the sequence nodes minted so far) that derived Dicts extend
// without copying. Safe for concurrent use by any number of readers and
// derived Dicts.
//
// A Frozen also carries the column statistics (Stats) its Dict accumulated
// before freezing. The snapshot is immutable: concurrent readers may call
// Stats() and its read methods freely, and a derived Dict starts from its
// own deep copy, so no observation ever flows back into the base.
type Frozen struct {
	ids    map[string]uint32
	vals   []string
	pairs  map[[2]uint32]uint32
	nPairs uint32
	stats  *Stats
}

// Stats returns the column statistics frozen with the snapshot. Never nil;
// a base that observed no table reports zero rows for every column. The
// returned Stats must be treated as read-only.
func (f *Frozen) Stats() *Stats {
	if f == nil || f.stats == nil {
		return &Stats{}
	}
	return f.stats
}

// Len returns the number of values in the frozen base.
func (f *Frozen) Len() int {
	if f == nil {
		return 0
	}
	return len(f.vals)
}

// Dict interns strings to dense uint32 IDs and sequences of IDs to single
// fixed-width keys. The zero Dict is not usable; construct with NewDict or
// NewDictWithBase.
type Dict struct {
	base   *Frozen
	ids    map[string]uint32
	vals   []string // local values; global ID = base.Len() + local index
	pairs  map[[2]uint32]uint32
	nPairs uint32 // next local pair ordinal (global ordinal = base.nPairs + n)
	stats  *Stats
}

// NewDict creates an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32), pairs: make(map[[2]uint32]uint32)}
}

// NewDictWithBase creates a dictionary layered over an immutable base: IDs
// assigned by the base stay valid, values already in the base intern to
// their base ID without new allocation, and new values extend the ID space
// locally. Many Dicts may share one base concurrently.
func NewDictWithBase(f *Frozen) *Dict {
	d := NewDict()
	d.base = f
	if f != nil && f.stats != nil {
		d.stats = f.stats.clone()
	}
	return d
}

// Stats returns the dictionary's column-statistics accumulator (created on
// first use). dataset.Encode observes every cell it interns, so by the time
// an index is built the accumulator holds the exact per-column cardinalities
// and value frequencies of the encoded tables. Writes follow the Dict's
// confinement rules; the parallel stages only read.
func (d *Dict) Stats() *Stats {
	if d.stats == nil {
		d.stats = &Stats{}
	}
	return d.stats
}

// Len returns the number of distinct values interned (base + local).
func (d *Dict) Len() int { return d.base.Len() + len(d.vals) }

// Intern returns the dense ID of s, assigning the next ID on first sight.
func (d *Dict) Intern(s string) uint32 {
	if d.base != nil {
		if id, ok := d.base.ids[s]; ok {
			return id
		}
	}
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(d.base.Len() + len(d.vals))
	if id >= pairTag {
		// Value IDs and pair nodes must stay in disjoint ranges or sequence
		// keys lose injectivity; fail loudly instead of corrupting identity.
		panic("intern: dictionary exceeded 2^31 distinct values")
	}
	d.ids[s] = id
	d.vals = append(d.vals, s)
	return id
}

// Lookup returns the ID of s without inserting.
func (d *Dict) Lookup(s string) (uint32, bool) {
	if d.base != nil {
		if id, ok := d.base.ids[s]; ok {
			return id, true
		}
	}
	id, ok := d.ids[s]
	return id, ok
}

// Value returns the string with the given ID. Only valid for IDs returned
// by Intern/Lookup on this Dict (or its base).
func (d *Dict) Value(id uint32) string {
	if n := uint32(d.base.Len()); id < n {
		return d.base.vals[id]
	} else {
		return d.vals[id-n]
	}
}

// pair hash-conses one (node, node) combination into a tagged sequence node.
func (d *Dict) pair(a, b uint32) uint32 {
	k := [2]uint32{a, b}
	if d.base != nil {
		if id, ok := d.base.pairs[k]; ok {
			return id
		}
	}
	if id, ok := d.pairs[k]; ok {
		return id
	}
	var baseN uint32
	if d.base != nil {
		baseN = d.base.nPairs
	}
	ord := baseN + d.nPairs
	if ord >= emptySeq&^pairTag {
		// Pair ordinals must stay below the reserved empty-sequence slot (and
		// within the tagged range); fail loudly rather than alias sequences.
		panic("intern: dictionary exceeded 2^30 distinct sequence nodes")
	}
	id := pairTag | ord
	d.pairs[k] = id
	d.nPairs++
	return id
}

// lookupPair resolves an existing pair node, or reports absence.
func (d *Dict) lookupPair(a, b uint32) (uint32, bool) {
	k := [2]uint32{a, b}
	if d.base != nil {
		if id, ok := d.base.pairs[k]; ok {
			return id, true
		}
	}
	id, ok := d.pairs[k]
	return id, ok
}

// emptySeq is the reserved key of the zero-length sequence.
const emptySeq = pairTag | (pairTag >> 1)

// Seq folds a sequence of value IDs into one fixed-width key: equal
// sequences yield equal keys and distinct sequences distinct keys (the fold
// is injective because value and pair nodes occupy disjoint ID ranges). A
// length-1 sequence's key is the value ID itself.
func (d *Dict) Seq(ids []uint32) uint32 {
	if len(ids) == 0 {
		return emptySeq
	}
	n := ids[0]
	for _, id := range ids[1:] {
		n = d.pair(n, id)
	}
	return n
}

// Fold advances a sequence key by one value ID: Fold(Seq(a), b) ==
// Seq(append(a, b)). The single-step form of Extend, for hot loops.
func (d *Dict) Fold(key uint32, id uint32) uint32 { return d.pair(key, id) }

// Extend folds additional value IDs onto an existing sequence key:
// Extend(Seq(a), b) == Seq(append(a, b...)). The index uses it to derive a
// piece's full key from its group's reason key without re-folding the
// prefix.
func (d *Dict) Extend(key uint32, ids []uint32) uint32 {
	n := key
	for _, id := range ids {
		n = d.pair(n, id)
	}
	return n
}

// LookupSeq returns the key of an already-minted sequence without inserting
// new pair nodes; ok is false when the sequence was never Seq'd (hence no
// piece or group can carry it).
func (d *Dict) LookupSeq(ids []uint32) (uint32, bool) {
	if len(ids) == 0 {
		return emptySeq, true
	}
	n := ids[0]
	for _, id := range ids[1:] {
		var ok bool
		if n, ok = d.lookupPair(n, id); !ok {
			return 0, false
		}
	}
	return n, true
}

// Freeze snapshots the dictionary into an immutable base for derived Dicts.
// The receiver must not be mutated afterwards (hand it off or discard it);
// the snapshot shares no mutable state with future derived Dicts.
func (d *Dict) Freeze() *Frozen {
	f := &Frozen{
		ids:    make(map[string]uint32, d.Len()),
		vals:   make([]string, 0, d.Len()),
		pairs:  make(map[[2]uint32]uint32, len(d.pairs)+mapLen(d.base)),
		nPairs: d.nPairs,
	}
	if d.base != nil {
		f.vals = append(f.vals, d.base.vals...)
		for s, id := range d.base.ids {
			f.ids[s] = id
		}
		for k, id := range d.base.pairs {
			f.pairs[k] = id
		}
		f.nPairs += d.base.nPairs
	}
	f.vals = append(f.vals, d.vals...)
	for s, id := range d.ids {
		f.ids[s] = id
	}
	for k, id := range d.pairs {
		f.pairs[k] = id
	}
	f.stats = d.stats.clone()
	return f
}

func mapLen(f *Frozen) int {
	if f == nil {
		return 0
	}
	return len(f.pairs)
}
