package intern

// Stats accumulates per-column value statistics as tables are encoded: for
// every column position, the number of cells observed (rows), the number of
// distinct value IDs, and the exact frequency of each ID. dataset.Encode
// feeds one observation per cell, so after encoding a table the counters
// are the exact column cardinalities the rule planner (internal/plan) ranks
// predicates by — no separate stats-collection pass ever runs.
//
// Stats follows the same concurrency contract as the Dict that owns it:
// writes (Observe) are confined to the serial encode phases, and once the
// pipeline fans out into the parallel stage-I/II loops the structure is only
// read. A Stats reached through Frozen is immutable: derived Dicts observe
// into their own copy, never through the base.
type Stats struct {
	cols []colStats
}

type colStats struct {
	rows int
	freq map[uint32]int
}

// Observe records one cell of column col holding the interned value id.
func (s *Stats) Observe(col int, id uint32) {
	s.grow(col)
	c := &s.cols[col]
	c.rows++
	c.freq[id]++
}

// ObserveRow records one encoded row: cell j is an observation of column j.
func (s *Stats) ObserveRow(row []uint32) {
	s.grow(len(row) - 1)
	for j, id := range row {
		c := &s.cols[j]
		c.rows++
		c.freq[id]++
	}
}

func (s *Stats) grow(col int) {
	for len(s.cols) <= col {
		s.cols = append(s.cols, colStats{freq: make(map[uint32]int)})
	}
}

// Columns returns the number of columns with at least one observation slot.
func (s *Stats) Columns() int {
	if s == nil {
		return 0
	}
	return len(s.cols)
}

// Rows returns the number of cells observed in column col.
func (s *Stats) Rows(col int) int {
	if s == nil || col < 0 || col >= len(s.cols) {
		return 0
	}
	return s.cols[col].rows
}

// Distinct returns the number of distinct value IDs observed in column col.
func (s *Stats) Distinct(col int) int {
	if s == nil || col < 0 || col >= len(s.cols) {
		return 0
	}
	return len(s.cols[col].freq)
}

// Freq returns how often value id was observed in column col.
func (s *Stats) Freq(col int, id uint32) int {
	if s == nil || col < 0 || col >= len(s.cols) {
		return 0
	}
	return s.cols[col].freq[id]
}

// clone deep-copies the accumulator so the copy can diverge from the
// original.
func (s *Stats) clone() *Stats {
	if s == nil || len(s.cols) == 0 {
		return &Stats{}
	}
	out := &Stats{cols: make([]colStats, len(s.cols))}
	for i, c := range s.cols {
		freq := make(map[uint32]int, len(c.freq))
		for id, n := range c.freq {
			freq[id] = n
		}
		out.cols[i] = colStats{rows: c.rows, freq: freq}
	}
	return out
}
