package intern

import "testing"

func TestStatsObserve(t *testing.T) {
	var st Stats
	// Column 0: three cells over two distinct IDs; column 2 forces growth
	// past an unobserved column 1.
	st.Observe(0, 7)
	st.Observe(0, 7)
	st.Observe(0, 9)
	st.Observe(2, 1)
	if got := st.Columns(); got != 3 {
		t.Errorf("Columns = %d, want 3", got)
	}
	if got := st.Rows(0); got != 3 {
		t.Errorf("Rows(0) = %d, want 3", got)
	}
	if got := st.Distinct(0); got != 2 {
		t.Errorf("Distinct(0) = %d, want 2", got)
	}
	if got := st.Freq(0, 7); got != 2 {
		t.Errorf("Freq(0,7) = %d, want 2", got)
	}
	if got := st.Rows(1); got != 0 {
		t.Errorf("Rows(1) = %d, want 0 (grown but unobserved)", got)
	}
	if got := st.Distinct(2); got != 1 {
		t.Errorf("Distinct(2) = %d, want 1", got)
	}
}

func TestStatsObserveRow(t *testing.T) {
	var st Stats
	st.ObserveRow([]uint32{1, 2})
	st.ObserveRow([]uint32{1, 3})
	if got := st.Columns(); got != 2 {
		t.Fatalf("Columns = %d, want 2", got)
	}
	if st.Rows(0) != 2 || st.Distinct(0) != 1 {
		t.Errorf("col 0: rows=%d distinct=%d, want 2/1", st.Rows(0), st.Distinct(0))
	}
	if st.Rows(1) != 2 || st.Distinct(1) != 2 {
		t.Errorf("col 1: rows=%d distinct=%d, want 2/2", st.Rows(1), st.Distinct(1))
	}
}

func TestStatsNilSafe(t *testing.T) {
	var st *Stats
	if st.Columns() != 0 || st.Rows(0) != 0 || st.Distinct(0) != 0 || st.Freq(0, 1) != 0 {
		t.Error("nil Stats readers must return zero")
	}
}

// TestStatsFreezeIsolation pins the planner's immutability contract: a
// Frozen's statistics are a snapshot, and a derived dictionary observes into
// its own copy — never through the base.
func TestStatsFreezeIsolation(t *testing.T) {
	d := NewDict()
	id := d.Intern("a")
	d.Stats().Observe(0, id)
	f := d.Freeze()

	// Mutating the original dictionary's stats after Freeze must not show
	// through the frozen snapshot.
	d.Stats().Observe(0, d.Intern("b"))
	if got := f.Stats().Distinct(0); got != 1 {
		t.Errorf("frozen Distinct(0) = %d after post-freeze observe, want 1", got)
	}

	// A derived dictionary starts from the frozen counters and diverges
	// independently.
	d2 := NewDictWithBase(f)
	if got := d2.Stats().Rows(0); got != 1 {
		t.Fatalf("derived Rows(0) = %d, want 1 (inherited)", got)
	}
	d2.Stats().Observe(0, d2.Intern("c"))
	if got := d2.Stats().Distinct(0); got != 2 {
		t.Errorf("derived Distinct(0) = %d, want 2", got)
	}
	if got := f.Stats().Distinct(0); got != 1 {
		t.Errorf("frozen Distinct(0) = %d after derived observe, want 1", got)
	}
}

func TestFrozenStatsNilSafe(t *testing.T) {
	f := NewDict().Freeze()
	if f.Stats() == nil {
		t.Fatal("Frozen.Stats must never return nil")
	}
	var none *Frozen
	if none.Stats() == nil {
		t.Fatal("nil Frozen.Stats must return an empty Stats, not nil")
	}
}
