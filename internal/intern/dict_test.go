package intern

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	d := NewDict()
	words := []string{"", "a", "b", "münchen", "東京都", "a\x1fb", "\x1f", "a"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = d.Intern(w)
	}
	if ids[1] != ids[len(words)-1] {
		t.Errorf("re-interning %q changed its ID: %d vs %d", "a", ids[1], ids[len(words)-1])
	}
	for i, w := range words {
		if got := d.Value(ids[i]); got != w {
			t.Errorf("Value(Intern(%q)) = %q", w, got)
		}
	}
	if d.Len() != len(words)-1 { // "a" deduplicated
		t.Errorf("Len = %d, want %d", d.Len(), len(words)-1)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("Lookup of absent value succeeded")
	}
}

// TestSeqInjective checks that distinct sequences (including tricky
// length-boundary cases) get distinct keys and equal sequences equal keys.
func TestSeqInjective(t *testing.T) {
	d := NewDict()
	seqs := [][]string{
		{}, {"a"}, {"b"}, {"a", "b"}, {"b", "a"}, {"ab"}, {"a", "b", "c"},
		{"ab", "c"}, {"a", "bc"}, {"", ""}, {""}, {"a", ""}, {"", "a"},
		{"x\x1fy"}, {"x", "y"},
	}
	keys := make(map[uint32]int)
	for i, s := range seqs {
		ids := make([]uint32, len(s))
		for j, v := range s {
			ids[j] = d.Intern(v)
		}
		k := d.Seq(ids)
		if prev, dup := keys[k]; dup {
			t.Errorf("sequences %v and %v share key %d", seqs[prev], s, k)
		}
		keys[k] = i
		// Same sequence again → same key, and LookupSeq finds it.
		if k2 := d.Seq(ids); k2 != k {
			t.Errorf("Seq(%v) unstable: %d then %d", s, k, k2)
		}
		if k2, ok := d.LookupSeq(ids); !ok || k2 != k {
			t.Errorf("LookupSeq(%v) = %d,%v want %d,true", s, k2, ok, k)
		}
	}
}

func TestLookupSeqNeverInserts(t *testing.T) {
	d := NewDict()
	a, b := d.Intern("a"), d.Intern("b")
	if _, ok := d.LookupSeq([]uint32{a, b}); ok {
		t.Error("LookupSeq found a sequence that was never minted")
	}
	before := len(d.pairs)
	d.LookupSeq([]uint32{a, b})
	if len(d.pairs) != before {
		t.Error("LookupSeq inserted pair nodes")
	}
}

func TestFrozenBase(t *testing.T) {
	base := NewDict()
	baseWords := []string{"alpha", "beta", "gamma"}
	var baseIDs []uint32
	for _, w := range baseWords {
		baseIDs = append(baseIDs, base.Intern(w))
	}
	seqKey := base.Seq(baseIDs[:2])
	f := base.Freeze()

	// Two derived dicts extend independently but agree on base IDs.
	d1, d2 := NewDictWithBase(f), NewDictWithBase(f)
	for i, w := range baseWords {
		if d1.Intern(w) != baseIDs[i] || d2.Intern(w) != baseIDs[i] {
			t.Errorf("base value %q re-interned to a new ID", w)
		}
	}
	if k, ok := d1.LookupSeq(baseIDs[:2]); !ok || k != seqKey {
		t.Errorf("base sequence key not visible through derived dict: %d,%v", k, ok)
	}
	n1 := d1.Intern("delta")
	n2 := d2.Intern("epsilon")
	if n1 != uint32(f.Len()) || n2 != uint32(f.Len()) {
		t.Errorf("local IDs should start at base length %d: got %d, %d", f.Len(), n1, n2)
	}
	if d1.Value(n1) != "delta" || d2.Value(n2) != "epsilon" {
		t.Error("derived dicts mixed up local values")
	}
	// New pair nodes in separate derived dicts may share ordinals — they are
	// dict-local — but must not collide with base pair nodes.
	k1 := d1.Seq([]uint32{baseIDs[0], n1})
	if k1 == seqKey {
		t.Error("derived sequence key collided with base sequence key")
	}
}

// TestSeqRandomizedInjective hammers the fold with random sequences and
// verifies key equality exactly tracks sequence equality.
func TestSeqRandomizedInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDict()
	byKey := make(map[uint32]string)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(4) + 1
		ids := make([]uint32, n)
		repr := ""
		for j := range ids {
			v := fmt.Sprintf("v%d", rng.Intn(40))
			ids[j] = d.Intern(v)
			repr += "|" + v
		}
		k := d.Seq(ids)
		if prev, ok := byKey[k]; ok {
			if prev != repr {
				t.Fatalf("collision: %q and %q share key %d", prev, repr, k)
			}
		} else {
			byKey[k] = repr
		}
	}
}
