package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/wal"
)

// chaosSeeds returns the fault-plan seeds the crash-recovery suite runs
// under: a small default locally, widened in CI via CHAOS_SEEDS=1,7,13,29
// (the same knob internal/distributed's chaos suite uses).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 7}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// splitRows slices a table into n near-equal row batches, the shipment
// sequence every driver in this file shares so batch boundaries line up
// across original, resumed, and re-created runs.
func splitRows(tb *dataset.Table, n int) [][][]string {
	per := (tb.Len() + n - 1) / n
	var out [][][]string
	for lo := 0; lo < tb.Len(); lo += per {
		hi := min(lo+per, tb.Len())
		rows := make([][]string, 0, hi-lo)
		for _, tp := range tb.Tuples[lo:hi] {
			rows = append(rows, tp.Values)
		}
		out = append(out, rows)
	}
	return out
}

func createSession(c *client, req CreateRequest) SessionInfo {
	c.t.Helper()
	var info SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &info); code != http.StatusCreated {
		c.t.Fatalf("create session: status %d", code)
	}
	return info
}

func submitBatches(c *client, id string, batches [][][]string) {
	c.t.Helper()
	for i, b := range batches {
		if code := c.do("POST", "/v1/sessions/"+id+"/tuples", TuplesRequest{Rows: b}, nil); code != http.StatusOK {
			c.t.Fatalf("submit batch %d to %s: status %d", i, id, code)
		}
	}
}

func startClean(c *client, id string) {
	c.t.Helper()
	if code := c.do("POST", "/v1/sessions/"+id+"/clean", nil, nil); code != http.StatusAccepted {
		c.t.Fatalf("clean %s: status %d", id, code)
	}
}

func pollDone(c *client, id string) SessionInfo {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st SessionInfo
		if code := c.do("GET", "/v1/sessions/"+id, nil, &st); code != http.StatusOK {
			c.t.Fatalf("poll %s: status %d", id, code)
		}
		switch st.State {
		case StateDone:
			return st
		case StateFailed:
			c.t.Fatalf("session %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("session %s never finished cleaning", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getResult(c *client, id string) ResultResponse {
	c.t.Helper()
	var res ResultResponse
	if code := c.do("GET", "/v1/sessions/"+id+"/result", nil, &res); code != http.StatusOK {
		c.t.Fatalf("result %s: status %d", id, code)
	}
	return res
}

func getRepairs(c *client, id string) RepairsResponse {
	c.t.Helper()
	var reps RepairsResponse
	if code := c.do("GET", "/v1/sessions/"+id+"/repairs", nil, &reps); code != http.StatusOK {
		c.t.Fatalf("repairs %s: status %d", id, code)
	}
	return reps
}

// TestServeRestartEndToEnd is the happy-path durability contract over a real
// directory: stream the hospital workload, shut down gracefully, restart on
// the same data dir, and require the completed session to re-serve its
// result and audit trail byte-identically, an open session to resume where
// it stopped, a deleted session to stay gone, and a repeat workload to run
// with zero learning iterations off the replayed weight vector. The small
// SnapshotEvery forces several compactions, so replay exercises the
// snapshot-plus-tail path, not just raw records.
func TestServeRestartEndToEnd(t *testing.T) {
	dirty, rs, rulesText := hospitalFixture(t)
	want, err := core.Clean(dirty, rs, core.Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	batches := splitRows(dirty, 3)
	req := CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Workers: 1, Tau: 2, Seed: 1}
	cfg := ManagerConfig{DataDir: t.TempDir(), SnapshotEvery: 4}

	srv1 := newTestServer(t, cfg)
	ts1 := httptest.NewServer(srv1)
	c1 := &client{t: t, base: ts1.URL}
	if rec := srv1.Recovery(); rec == nil || rec.Records != 0 || rec.SessionsReplayed != 0 {
		t.Fatalf("fresh data dir recovered %+v", rec)
	}

	// a: a full run, the byte-identity baseline.
	a := createSession(c1, req)
	submitBatches(c1, a.ID, batches)
	startClean(c1, a.ID)
	pollDone(c1, a.ID)
	resA := getResult(c1, a.ID)
	assertResultEquals(t, resA, want.Clean)
	repsA := getRepairs(c1, a.ID)
	if len(repsA.Repairs) == 0 {
		t.Fatal("hospital run produced no repairs to audit")
	}

	// b: left open mid-stream; the restart must resume it, not lose it.
	b := createSession(c1, req)
	submitBatches(c1, b.ID, batches[:1])

	// c: closed before shutdown; its tombstone must hold forever.
	cs := createSession(c1, req)
	if code := c1.do("DELETE", "/v1/sessions/"+cs.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}

	ts1.Close()
	srv1.Shutdown() // graceful: flush + fsync + close, no tombstones

	srv2 := newTestServer(t, cfg)
	rec := srv2.Recovery()
	if rec == nil {
		t.Fatal("restart on a populated data dir reports no recovery")
	}
	if rec.SessionsReplayed != 2 || rec.SessionsTombstoned != 1 || rec.WeightVectors != 1 || rec.CleansRestarted != 0 {
		t.Fatalf("recovery = %+v, want 2 replayed / 1 tombstoned / 1 weight vector / 0 restarted cleans", rec)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("graceful shutdown left %d truncated bytes", rec.TruncatedBytes)
	}
	ts2 := httptest.NewServer(srv2)
	c2 := &client{t: t, base: ts2.URL}

	// The completed session re-serves byte-identically.
	if resA2 := getResult(c2, a.ID); !reflect.DeepEqual(resA, resA2) {
		t.Errorf("restored result differs:\n got %+v\nwant %+v", resA2, resA)
	}
	if repsA2 := getRepairs(c2, a.ID); !reflect.DeepEqual(repsA, repsA2) {
		t.Errorf("restored audit trail differs:\n got %+v\nwant %+v", repsA2, repsA)
	}

	// The closed session stays closed.
	if code := c2.do("GET", "/v1/sessions/"+cs.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("closed session resurrected across restart (status %d)", code)
	}

	// The open session picks up exactly where it stopped and, resumed with
	// the remaining batches, produces the canonical result — warm-started
	// from the replayed weight vector, so zero learning iterations.
	var bInfo SessionInfo
	if code := c2.do("GET", "/v1/sessions/"+b.ID, nil, &bInfo); code != http.StatusOK {
		t.Fatalf("restored open session: status %d", code)
	}
	if bInfo.State != StateOpen || bInfo.Tuples != len(batches[0]) {
		t.Fatalf("restored session state = %s with %d tuples, want open with %d", bInfo.State, bInfo.Tuples, len(batches[0]))
	}
	submitBatches(c2, b.ID, batches[1:])
	startClean(c2, b.ID)
	if info := pollDone(c2, b.ID); !info.WeightsCached {
		t.Error("resumed session did not warm-start from the replayed weight vector")
	}
	resB := getResult(c2, b.ID)
	assertResultEquals(t, resB, want.Clean)
	if resB.Stats.LearnIterations != 0 {
		t.Errorf("warm restart still learned (%d iterations)", resB.Stats.LearnIterations)
	}

	// /stats surfaces the recovery summary.
	var stats StatsResponse
	if code := c2.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Recovery == nil || stats.Recovery.SessionsReplayed != 2 {
		t.Errorf("stats recovery = %+v, want the startup summary", stats.Recovery)
	}

	// Double close after replay: the first wins, the second is a clean 404.
	if code := c2.do("DELETE", "/v1/sessions/"+a.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("close replayed session: status %d", code)
	}
	if code := c2.do("DELETE", "/v1/sessions/"+a.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("double close after replay: status %d, want 404", code)
	}

	// Warm-data-dir repeat workload: a brand-new session over the same rules
	// and options is cache-served end to end.
	d := createSession(c2, req)
	if !d.WeightsCached {
		t.Error("fresh session on a warm data dir did not get cached weights")
	}
	submitBatches(c2, d.ID, batches)
	startClean(c2, d.ID)
	pollDone(c2, d.ID)
	resD := getResult(c2, d.ID)
	assertResultEquals(t, resD, want.Clean)
	if resD.Stats.LearnIterations != 0 {
		t.Errorf("repeat workload learned (%d iterations) despite the warm data dir", resD.Stats.LearnIterations)
	}

	ts2.Close()
	srv2.Shutdown()

	// Third generation: tombstones written after a replay hold too, and the
	// twice-restored result is still byte-identical.
	srv3 := newTestServer(t, cfg)
	defer srv3.Shutdown()
	if rec := srv3.Recovery(); rec.SessionsReplayed != 2 || rec.SessionsTombstoned != 2 {
		t.Fatalf("second restart recovery = %+v, want 2 replayed / 2 tombstoned", rec)
	}
	ts3 := httptest.NewServer(srv3)
	defer ts3.Close()
	c3 := &client{t: t, base: ts3.URL}
	for _, id := range []string{a.ID, cs.ID} {
		if code := c3.do("GET", "/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
			t.Errorf("session %s resurrected on the second restart (status %d)", id, code)
		}
	}
	if resB2 := getResult(c3, b.ID); !reflect.DeepEqual(resB, resB2) {
		t.Errorf("twice-restored result differs:\n got %+v\nwant %+v", resB2, resB)
	}
}

// TestServeCrashRecoveryChaos drives the serving stack over the
// fault-injecting in-memory filesystem and hard-crashes it mid-workload
// under every fault mode: short writes, fsync errors, torn tails, and
// bit-flipped frames. The invariant is the WAL contract seen from the API:
// every acknowledged mutation survives the crash — the completed session
// re-serves byte-identically, the deleted session never resurrects, no
// acked tuple batch is lost — and whatever prefix the session under fire
// recovered to can be driven to the canonical result.
func TestServeCrashRecoveryChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid is not short")
	}
	dirty, rs, rulesText := hospitalFixture(t)
	want, err := core.Clean(dirty, rs, core.Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	batches := splitRows(dirty, 3)
	req := CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Workers: 1, Tau: 2, Seed: 1}

	modes := []wal.FaultMode{wal.FaultNone, wal.FaultShortWrite, wal.FaultSyncError, wal.FaultTornTail, wal.FaultBitFlip}
	for _, mode := range modes {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%v/seed=%d", mode, seed), func(t *testing.T) {
				t.Parallel()
				// Record appends, in order: the doomed session's create and
				// tombstone (writes 1-2), then session a end to end (3-10:
				// create, three batches, clean start, done, repairs, weights).
				// The trigger lands inside session b's range (11-16), so
				// everything before it is acked and must survive any crash.
				at := 11 + int(seed%6)
				fs := wal.NewMemFS(wal.FaultPlan{Seed: seed, Mode: mode, AtWrite: at, AtSync: at})
				cfg := ManagerConfig{WALFS: fs, SnapshotEvery: 1 << 20}
				srv1 := newTestServer(t, cfg)
				ts1 := httptest.NewServer(srv1)
				c1 := &client{t: t, base: ts1.URL}

				// Deleted before the fault window: the acked tombstone must
				// hold through every crash.
				doomed := createSession(c1, CreateRequest{Rules: testRules, Attrs: []string{"CT", "ST"}, Workers: 1})
				if code := c1.do("DELETE", "/v1/sessions/"+doomed.ID, nil, nil); code != http.StatusNoContent {
					t.Fatalf("delete doomed session: status %d", code)
				}

				// Session a: a fully acked run, the byte-identity baseline.
				a := createSession(c1, req)
				submitBatches(c1, a.ID, batches)
				startClean(c1, a.ID)
				pollDone(c1, a.ID)
				resA := getResult(c1, a.ID)
				repsA := getRepairs(c1, a.ID)

				// Session b: the one under fire. Drive it best-effort and
				// record which mutations were acknowledged — past the fault
				// the log is fail-stop and every durable mutation answers 500.
				const bID = "s-000003" // third create on this manager
				created, acked, cleanAcked := false, 0, false
				var resB *ResultResponse
				var bInfo SessionInfo
				if code := c1.do("POST", "/v1/sessions", req, &bInfo); code == http.StatusCreated {
					created = true
					if bInfo.ID != bID {
						t.Fatalf("session ids drifted: %s, want %s", bInfo.ID, bID)
					}
					for _, rows := range batches {
						if code := c1.do("POST", "/v1/sessions/"+bID+"/tuples", TuplesRequest{Rows: rows}, nil); code != http.StatusOK {
							break
						}
						acked++
					}
					if acked == len(batches) {
						if code := c1.do("POST", "/v1/sessions/"+bID+"/clean", nil, nil); code == http.StatusAccepted {
							cleanAcked = true
							pollDone(c1, bID) // done is observable even if its record could not be logged
							r := getResult(c1, bID)
							resB = &r
						}
					}
				}

				// Crash: volatile bytes are dropped (or torn, mode depending)
				// and every handle dies; then reboot over the survivors.
				ts1.Close()
				fs.Crash()
				srv1.Shutdown()

				srv2, err := New(cfg)
				if err != nil {
					t.Fatalf("restart after %v crash: %v", mode, err)
				}
				defer srv2.Shutdown()
				rec := srv2.Recovery()
				if rec == nil {
					t.Fatal("restart reports no recovery summary")
				}
				if mode == wal.FaultShortWrite && rec.TruncatedBytes == 0 {
					t.Error("short write durably persisted half a frame, but recovery reports no truncation")
				}
				ts2 := httptest.NewServer(srv2)
				defer ts2.Close()
				c2 := &client{t: t, base: ts2.URL}

				if code := c2.do("GET", "/v1/sessions/"+doomed.ID, nil, nil); code != http.StatusNotFound {
					t.Errorf("deleted session resurrected after %v crash (status %d)", mode, code)
				}
				if resA2 := getResult(c2, a.ID); !reflect.DeepEqual(resA, resA2) {
					t.Errorf("recovered result for %s not byte-identical:\n got %+v\nwant %+v", a.ID, resA2, resA)
				}
				if repsA2 := getRepairs(c2, a.ID); !reflect.DeepEqual(repsA, repsA2) {
					t.Errorf("recovered audit trail for %s not identical", a.ID)
				}

				// Session b recovered to its acked prefix (plus at most the
				// one in-flight record a torn tail may have completed).
				// Wherever it landed, drive it on to the canonical result.
				var final ResultResponse
				var info SessionInfo
				code := c2.do("GET", "/v1/sessions/"+bID, nil, &info)
				switch code {
				case http.StatusNotFound:
					if created {
						t.Fatalf("acked session %s lost after %v crash", bID, mode)
					}
					// The create never acked; run the workload from scratch.
					nb := createSession(c2, req)
					submitBatches(c2, nb.ID, batches)
					startClean(c2, nb.ID)
					pollDone(c2, nb.ID)
					final = getResult(c2, nb.ID)
				case http.StatusOK:
					ackedRows := 0
					for _, rows := range batches[:acked] {
						ackedRows += len(rows)
					}
					if info.Tuples < ackedRows {
						t.Fatalf("acked rows lost: recovered %d tuples, acked %d", info.Tuples, ackedRows)
					}
					if info.State == StateOpen {
						// Resume from the batch boundary the survivors end on.
						k, rows := 0, 0
						for k < len(batches) && rows < info.Tuples {
							rows += len(batches[k])
							k++
						}
						if rows != info.Tuples {
							t.Fatalf("recovered tuple count %d is not a batch boundary", info.Tuples)
						}
						submitBatches(c2, bID, batches[k:])
						startClean(c2, bID)
					}
					if info.State != StateDone {
						pollDone(c2, bID)
					}
					final = getResult(c2, bID)
				default:
					t.Fatalf("recovered session %s: status %d", bID, code)
				}
				assertResultEquals(t, final, want.Clean)
				if !final.WeightsCached {
					t.Error("recovered run did not reuse the replayed weight vector")
				}
				if final.Stats.LearnIterations != 0 {
					t.Errorf("recovered run relearned (%d iterations)", final.Stats.LearnIterations)
				}
				// When the completed run's record itself survived (no clean
				// was restarted), the response must be byte-identical to the
				// one served before the crash.
				if resB != nil && cleanAcked && code == http.StatusOK && info.State == StateDone && rec.CleansRestarted == 0 {
					if !reflect.DeepEqual(*resB, final) {
						t.Errorf("logged result not byte-identical to the pre-crash response:\n got %+v\nwant %+v", final, *resB)
					}
				}
			})
		}
	}
}

// TestRollbackGoldenParity: the audit trail's old values are exactly the
// dirty input cells, and rollback restores the byte-exact pre-repair table —
// including across a restart, since the rollback itself is logged.
func TestRollbackGoldenParity(t *testing.T) {
	dirty, _, rulesText := hospitalFixture(t)
	batches := splitRows(dirty, 3)
	req := CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Workers: 1, Tau: 2, Seed: 1}
	cfg := ManagerConfig{DataDir: t.TempDir()}

	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv)
	c := &client{t: t, base: ts.URL}
	s := createSession(c, req)
	submitBatches(c, s.ID, batches)
	startClean(c, s.ID)
	info := pollDone(c, s.ID)

	reps := getRepairs(c, s.ID)
	if len(reps.Repairs) == 0 {
		t.Fatal("hospital run produced no repairs")
	}
	if info.Repairs != len(reps.Repairs) {
		t.Errorf("status reports %d repairs, trail has %d", info.Repairs, len(reps.Repairs))
	}
	attrIdx := make(map[string]int)
	for i, a := range dirty.Schema.Attrs() {
		attrIdx[a] = i
	}
	attributed := 0
	for i, r := range reps.Repairs {
		if i > 0 && r.Tuple < reps.Repairs[i-1].Tuple {
			t.Fatalf("repair trail out of order at %d: tuple %d after %d", i, r.Tuple, reps.Repairs[i-1].Tuple)
		}
		j, ok := attrIdx[r.Attr]
		if !ok {
			t.Fatalf("repair %d names unknown attribute %q", i, r.Attr)
		}
		if got := dirty.Tuples[r.Tuple].Values[j]; got != r.Old {
			t.Errorf("repair %d old value %q, dirty cell is %q", i, r.Old, got)
		}
		if r.New == r.Old {
			t.Errorf("repair %d is a no-op (%q)", i, r.Old)
		}
		if r.Rule != "" {
			attributed++
			if r.Weight <= 0 {
				t.Errorf("repair %d attributed to %s with non-positive weight %v", i, r.Rule, r.Weight)
			}
		}
	}
	if attributed == 0 {
		t.Error("no repair carries a rule attribution")
	}

	// Rollback: the restored table is the dirty input, cell for cell.
	var rb RollbackResponse
	if code := c.do("POST", "/v1/sessions/"+s.ID+"/rollback", nil, &rb); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
	if rb.Reverted != len(reps.Repairs) {
		t.Errorf("rollback reverted %d repairs, trail has %d", rb.Reverted, len(reps.Repairs))
	}
	if len(rb.Rows) != dirty.Len() {
		t.Fatalf("rollback returned %d rows, input had %d", len(rb.Rows), dirty.Len())
	}
	for i, tp := range dirty.Tuples {
		if rb.IDs[i] != tp.ID {
			t.Fatalf("rollback row %d: id %d, want %d", i, rb.IDs[i], tp.ID)
		}
		for j, v := range tp.Values {
			if rb.Rows[i][j] != v {
				t.Fatalf("rollback row %d col %d: %q, want the dirty input %q", i, j, rb.Rows[i][j], v)
			}
		}
	}

	// The result endpoint now serves the restored table, flagged.
	res := getResult(c, s.ID)
	if !res.RolledBack {
		t.Error("result after rollback not flagged rolled_back")
	}
	for i, tp := range dirty.Tuples {
		for j, v := range tp.Values {
			if res.Rows[i][j] != v {
				t.Fatalf("rolled-back result row %d col %d: %q, want %q", i, j, res.Rows[i][j], v)
			}
		}
	}

	// Idempotent: a second rollback is the same answer, not an error.
	var rb2 RollbackResponse
	if code := c.do("POST", "/v1/sessions/"+s.ID+"/rollback", nil, &rb2); code != http.StatusOK {
		t.Fatalf("second rollback: status %d", code)
	}
	if !reflect.DeepEqual(rb, rb2) {
		t.Error("second rollback differs from the first")
	}

	// The rollback is durable: a restart re-serves the restored table.
	ts.Close()
	srv.Shutdown()
	srv2 := newTestServer(t, cfg)
	defer srv2.Shutdown()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := &client{t: t, base: ts2.URL}
	if res2 := getResult(c2, s.ID); !reflect.DeepEqual(res, res2) {
		t.Errorf("rolled-back result not byte-identical across restart:\n got %+v\nwant %+v", res2, res)
	}
	reps2 := getRepairs(c2, s.ID)
	if !reps2.RolledBack {
		t.Error("restored audit trail not flagged rolled_back")
	}
	if !reflect.DeepEqual(reps.Repairs, reps2.Repairs) {
		t.Error("restored audit trail differs")
	}
}

// TestEvictionTombstoneNoResurrection: an idle eviction logs its tombstone
// before the session disappears, so even a hard crash immediately after
// cannot resurrect it; a graceful shutdown by contrast writes no tombstones
// and resumes its sessions; and an eviction whose tombstone cannot be made
// durable is not acknowledged — the session stays.
func TestEvictionTombstoneNoResurrection(t *testing.T) {
	fs := wal.NewMemFS(wal.FaultPlan{})
	cfg := ManagerConfig{WALFS: fs, IdleTimeout: 50 * time.Millisecond, SweepInterval: time.Hour}

	m := newTestManager(t, cfg)
	s, err := m.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if n := m.EvictIdle(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	fs.Crash()
	m.Shutdown()

	m2 := newTestManager(t, cfg)
	rec := m2.Recovery()
	if rec.SessionsTombstoned != 1 || rec.SessionsReplayed != 0 {
		t.Fatalf("recovery = %+v, want 1 tombstoned / 0 replayed", rec)
	}
	if _, err := m2.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted session resurrected after crash: %v", err)
	}

	// Graceful shutdown resumes sessions (no tombstones written).
	s2, err := m2.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	m2.Shutdown()
	m3 := newTestManager(t, cfg)
	if rec := m3.Recovery(); rec.SessionsReplayed != 1 {
		t.Fatalf("recovery after graceful shutdown = %+v, want 1 replayed", rec)
	}
	if _, err := m3.Get(s2.ID); err != nil {
		t.Fatalf("graceful shutdown lost session %s: %v", s2.ID, err)
	}

	// Fail-stop eviction: the create is append 1 (write+sync 1), the
	// eviction tombstone is sync 2 — scripted to fail, so the eviction must
	// not be acknowledged and the session must survive.
	fsBad := wal.NewMemFS(wal.FaultPlan{Mode: wal.FaultSyncError, AtSync: 2})
	m4 := newTestManager(t, ManagerConfig{WALFS: fsBad, IdleTimeout: 50 * time.Millisecond, SweepInterval: time.Hour})
	s4, err := m4.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if n := m4.EvictIdle(time.Now().Add(time.Second)); n != 0 {
		t.Fatalf("eviction acknowledged without a durable tombstone (%d)", n)
	}
	if _, err := m4.Get(s4.ID); err != nil {
		t.Fatalf("session evicted though its tombstone never hit disk: %v", err)
	}
}
