package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distributed"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

// hospitalFixture generates the hospital (HAI) workload: ground truth,
// a dirtied copy, the Table 4 rule set, and its parseable text form.
func hospitalFixture(t *testing.T) (*dataset.Table, []*rules.Rule, string) {
	t.Helper()
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 40, Measures: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = r.Canonical()
	}
	return inj.Dirty, rs, strings.Join(lines, "\n")
}

// newTestServer builds a Server, failing the test on a config/replay error.
func newTestServer(t *testing.T, cfg ManagerConfig) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// client is a minimal JSON client for the session API.
type client struct {
	t    *testing.T
	base string
}

func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// runSession drives one full session over HTTP: create, stream the table in
// batches, clean, poll, fetch the result.
func (c *client) runSession(req CreateRequest, dirty *dataset.Table, batches int) (SessionInfo, ResultResponse) {
	c.t.Helper()
	var info SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &info); code != http.StatusCreated {
		c.t.Fatalf("create session: status %d", code)
	}
	per := (dirty.Len() + batches - 1) / batches
	sent := 0
	for lo := 0; lo < dirty.Len(); lo += per {
		hi := min(lo+per, dirty.Len())
		rows := make([][]string, 0, hi-lo)
		for _, tp := range dirty.Tuples[lo:hi] {
			rows = append(rows, tp.Values)
		}
		var ack TuplesResponse
		if code := c.do("POST", "/v1/sessions/"+info.ID+"/tuples", TuplesRequest{Rows: rows}, &ack); code != http.StatusOK {
			c.t.Fatalf("stream tuples: status %d", code)
		}
		sent += len(rows)
		if ack.Total != sent {
			c.t.Fatalf("tuple ack total = %d, want %d", ack.Total, sent)
		}
	}
	if code := c.do("POST", "/v1/sessions/"+info.ID+"/clean", nil, nil); code != http.StatusAccepted {
		c.t.Fatalf("clean: status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st SessionInfo
		if code := c.do("GET", "/v1/sessions/"+info.ID, nil, &st); code != http.StatusOK {
			c.t.Fatalf("poll: status %d", code)
		}
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed {
			c.t.Fatalf("session failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			c.t.Fatal("session never finished cleaning")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var res ResultResponse
	if code := c.do("GET", "/v1/sessions/"+info.ID+"/result", nil, &res); code != http.StatusOK {
		c.t.Fatalf("result: status %d", code)
	}
	if code := c.do("DELETE", "/v1/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		c.t.Fatalf("delete: status %d", code)
	}
	return info, res
}

// TestServeHospitalEndToEnd starts the server on a random port, streams the
// hospital example through a session in multiple batches, and requires
// repairs identical to the batch CLI path (core.Clean). A second session
// over the same rules must hit the model cache — weights preset, learning
// skipped — and still produce identical repairs.
func TestServeHospitalEndToEnd(t *testing.T) {
	dirty, rs, rulesText := hospitalFixture(t)

	// The batch CLI path: mlnclean -workers 1 runs core.Clean and writes
	// res.Clean.
	want, err := core.Clean(dirty, rs, core.Options{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}

	srv := newTestServer(t, ManagerConfig{})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &client{t: t, base: ts.URL}

	req := CreateRequest{
		Rules:   rulesText,
		Attrs:   dirty.Schema.Attrs(),
		Workers: 1,
		Tau:     2,
		Seed:    1,
	}

	info, res := c.runSession(req, dirty, 3)
	if info.WeightsCached {
		t.Error("first session claims cached weights")
	}
	assertResultEquals(t, res, want.Clean)

	// Second run, same rules: the model cache must supply the weights.
	info2, res2 := c.runSession(req, dirty, 2)
	if !info2.WeightsCached {
		t.Error("second session did not hit the weight cache")
	}
	if !res2.WeightsCached {
		t.Error("second result not marked cache-served")
	}
	assertResultEquals(t, res2, want.Clean)
	if res2.Stats.LearnIterations != 0 {
		t.Errorf("cache-served run still learned (%d iterations)", res2.Stats.LearnIterations)
	}

	var stats StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Cache.RuleHits < 1 {
		t.Errorf("cache rule hits = %d, want ≥ 1", stats.Cache.RuleHits)
	}
	if stats.Cache.WeightHits != 1 || stats.Cache.WeightMisses != 1 {
		t.Errorf("weight counters = %d hits / %d misses, want 1/1", stats.Cache.WeightHits, stats.Cache.WeightMisses)
	}

	// Same rules but a different learning configuration must NOT be served
	// from the weight cache — those weights were learned under another τ.
	reqTau := req
	reqTau.Tau = 4
	var info3 SessionInfo
	if code := c.do("POST", "/v1/sessions", reqTau, &info3); code != http.StatusCreated {
		t.Fatalf("create tau=4 session: status %d", code)
	}
	if info3.WeightsCached {
		t.Error("weights leaked across differing options (tau=4 session claims cached weights)")
	}
	if code := c.do("DELETE", "/v1/sessions/"+info3.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
}

func assertResultEquals(t *testing.T, got ResultResponse, want *dataset.Table) {
	t.Helper()
	if len(got.Rows) != want.Len() {
		t.Fatalf("result has %d rows, want %d", len(got.Rows), want.Len())
	}
	for i, tp := range want.Tuples {
		if got.IDs[i] != tp.ID {
			t.Fatalf("row %d: id %d, want %d", i, got.IDs[i], tp.ID)
		}
		for j, v := range tp.Values {
			if got.Rows[i][j] != v {
				t.Fatalf("row %d col %d: %q, want %q", i, j, got.Rows[i][j], v)
			}
		}
	}
}

// TestServeBackpressureHTTP maps the session cap to 429 + Retry-After.
func TestServeBackpressureHTTP(t *testing.T) {
	srv := newTestServer(t, ManagerConfig{MaxSessions: 1})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &client{t: t, base: ts.URL}

	req := CreateRequest{Rules: testRules, Attrs: []string{"CT", "ST"}, Workers: 1}
	var info SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions", req, nil); code != http.StatusTooManyRequests {
		t.Fatalf("create past cap: status %d, want 429", code)
	}
	if code := c.do("DELETE", "/v1/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	var refilled SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &refilled); code != http.StatusCreated {
		t.Fatalf("create after delete: status %d", code)
	}
	if code := c.do("DELETE", "/v1/sessions/"+refilled.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	// Unknown session id → 404.
	if code := c.do("GET", "/v1/sessions/s-999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", code)
	}

	// Malformed rows are the client's fault → 400, not a 409 state conflict.
	var info2 SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &info2); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions/"+info2.ID+"/tuples", TuplesRequest{Rows: [][]string{{"only-one-field"}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("ragged row: status %d, want 400", code)
	}
	// Result before cleaning is a state conflict → 409.
	if code := c.do("GET", "/v1/sessions/"+info2.ID+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("early result: status %d, want 409", code)
	}
}

// TestSessionSurvivesWorkerDeath: a session whose executor loses workers
// mid-clean recovers without the client noticing beyond the workers_lost
// counter — the run completes, the result matches an undisturbed session,
// and both the poll status and the result surface the losses.
func TestSessionSurvivesWorkerDeath(t *testing.T) {
	dirty, _, rulesText := hospitalFixture(t)

	faulty := newTestServer(t, ManagerConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		WorkerTimeout:     250 * time.Millisecond,
		TransportFor: func(name string) (distributed.TransportFactory, error) {
			inner, err := distributed.TransportByName(name)
			if err != nil {
				return nil, err
			}
			return distributed.NewFaultTransport(inner, distributed.FaultPlan{
				Seed:    5,
				Crashes: []distributed.Crash{{Slot: 0, AtSend: 1}, {Slot: 1, AtRecv: 3}},
			}), nil
		},
	})
	defer faulty.Shutdown()
	tsF := httptest.NewServer(faulty)
	defer tsF.Close()

	healthy := newTestServer(t, ManagerConfig{})
	defer healthy.Shutdown()
	tsH := httptest.NewServer(healthy)
	defer tsH.Close()

	req := CreateRequest{
		Rules:   rulesText,
		Attrs:   dirty.Schema.Attrs(),
		Workers: 2,
		Tau:     2,
		Seed:    1,
	}
	_, want := (&client{t: t, base: tsH.URL}).runSession(req, dirty, 2)
	c := &client{t: t, base: tsF.URL}
	_, res := c.runSession(req, dirty, 2)

	if res.WorkersLost == 0 {
		t.Fatal("scripted worker crashes but result reports workers_lost = 0")
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("recovered session returned %d rows, healthy %d", len(res.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if res.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d: recovered %q != healthy %q", i, j, res.Rows[i][j], want.Rows[i][j])
			}
		}
	}

	// The poll status carries the counter too: a fresh faulted session
	// polled mid-clean (or after) reports its losses.
	var info SessionInfo
	if code := c.do("POST", "/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	rows := make([][]string, 0, dirty.Len())
	for _, tp := range dirty.Tuples {
		rows = append(rows, tp.Values)
	}
	if code := c.do("POST", "/v1/sessions/"+info.ID+"/tuples", TuplesRequest{Rows: rows}, nil); code != http.StatusOK {
		t.Fatalf("stream tuples: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions/"+info.ID+"/clean", nil, nil); code != http.StatusAccepted {
		t.Fatalf("clean: status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st SessionInfo
		if code := c.do("GET", "/v1/sessions/"+info.ID, nil, &st); code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if st.State == StateDone {
			if st.WorkersLost == 0 {
				t.Error("done session poll reports workers_lost = 0 after scripted crashes")
			}
			break
		}
		if st.State == StateFailed {
			t.Fatalf("session failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("faulted session never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
