package server

import (
	"fmt"
	"testing"

	"mlnclean/internal/index"
	"mlnclean/internal/intern"
)

func TestModelCacheInterning(t *testing.T) {
	c := NewModelCache()

	m1, hit, err := c.Intern("FD: CT -> ST\nFD: PN -> CT")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first intern reported a hit")
	}
	// Exact text: hit without reparsing.
	m2, hit, err := c.Intern("FD: CT -> ST\nFD: PN -> CT")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || m2 != m1 {
		t.Error("verbatim re-intern should hit the same model")
	}
	// Different spelling/order of the same constraints: same canonical hash,
	// same model.
	m3, hit, err := c.Intern("FD: PN => CT\nFD:  CT ->  ST")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || m3 != m1 {
		t.Error("canonically equal rule set should hit the same model")
	}
	// A genuinely different rule set is a miss.
	m4, hit, err := c.Intern("FD: CT -> ST")
	if err != nil {
		t.Fatal(err)
	}
	if hit || m4 == m1 {
		t.Error("different rule set should miss")
	}
	if _, _, err := c.Intern("not a rule"); err == nil {
		t.Error("garbage rules text should fail to intern")
	}
	if _, _, err := c.Intern(""); err == nil {
		t.Error("empty rules text should fail to intern")
	}

	st := c.Stats()
	if st.RuleHits != 2 || st.RuleMisses != 2 || st.Models != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses / 2 models", st)
	}
}

func TestModelCacheWeights(t *testing.T) {
	c := NewModelCache()
	m, _, err := c.Intern("FD: CT -> ST")
	if err != nil {
		t.Fatal(err)
	}
	const fp = "tau=2,metric=levenshtein,workers=1,seed=1,batch=0"
	if ws := c.TakeWeights(m, fp); ws != nil {
		t.Error("fresh model should have no weights")
	}
	stored := []index.PieceSummary{{RuleID: "r1", Key: "k", Count: 3, Weight: 1.5}}
	c.StoreWeights(m, fp, stored)
	ws := c.TakeWeights(m, fp)
	if len(ws) != 1 || ws[0].Weight != 1.5 {
		t.Fatalf("TakeWeights = %+v", ws)
	}
	// The cached vector must be isolated from caller mutation.
	ws[0].Weight = 99
	if again := c.TakeWeights(m, fp); again[0].Weight != 1.5 {
		t.Error("cached weights not copy-isolated")
	}
	// First writer wins; a later store must not clobber.
	c.StoreWeights(m, fp, []index.PieceSummary{{RuleID: "r1", Key: "k", Count: 1, Weight: -7}})
	if again := c.TakeWeights(m, fp); again[0].Weight != 1.5 {
		t.Error("second StoreWeights overwrote the cached vector")
	}
	// A different learning configuration must NOT see these weights: they
	// were learned under another τ/metric/partitioning and replaying them
	// would silently change that session's repairs.
	if ws := c.TakeWeights(m, "tau=5,metric=cosine,workers=1,seed=1,batch=0"); ws != nil {
		t.Error("weights leaked across option fingerprints")
	}

	st := c.Stats()
	if st.WeightHits != 3 || st.WeightMisses != 2 {
		t.Errorf("weight counters = %+v, want 3 hits / 2 misses", st)
	}
}

// TestModelCacheBounded: both cache levels evict FIFO past their caps, and
// a text entry whose model was evicted re-interns instead of returning nil.
func TestModelCacheBounded(t *testing.T) {
	c := NewModelCache()
	first, _, err := c.Intern("FD: A0 -> B0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < maxModels+10; i++ {
		if _, _, err := c.Intern(fmt.Sprintf("FD: A%d -> B%d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Models > maxModels {
		t.Errorf("models = %d, want ≤ %d", st.Models, maxModels)
	}
	// The first model was evicted; its verbatim text must re-intern a live
	// model rather than hit a dangling index entry.
	again, _, err := c.Intern("FD: A0 -> B0")
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatal("re-intern after eviction returned nil model")
	}
	if again == first {
		t.Error("evicted model resurrected by pointer; expected a fresh intern")
	}
}

// TestModelVocabulary: the frozen vocabulary carries the rule constants and
// grows (with stable base IDs) once a weight vector is cached; sessions
// derive dictionaries that resolve those values without local interning.
func TestModelVocabulary(t *testing.T) {
	c := NewModelCache()
	m, _, err := c.Intern("CFD: HN=ELIZA, CT -> PN")
	if err != nil {
		t.Fatal(err)
	}
	v1 := m.Vocabulary()
	d1 := intern.NewDictWithBase(v1)
	id, ok := d1.Lookup("ELIZA")
	if !ok {
		t.Fatal("rule constant missing from vocabulary")
	}
	if v1 != m.Vocabulary() {
		t.Error("vocabulary not cached between calls")
	}

	c.StoreWeights(m, "fp", []index.PieceSummary{
		{RuleID: "r1", Key: "ELIZA\x1fBOAZ\x1f123", Values: []string{"ELIZA", "BOAZ", "123"}, Count: 2, Weight: 0.9},
	})
	v2 := m.Vocabulary()
	if v2 == v1 {
		t.Error("vocabulary not rebuilt after StoreWeights")
	}
	d2 := intern.NewDictWithBase(v2)
	id2, ok := d2.Lookup("ELIZA")
	if !ok || id2 != id {
		t.Errorf("base IDs unstable across rebuild: %d vs %d", id2, id)
	}
	if _, ok := d2.Lookup("BOAZ"); !ok {
		t.Error("weight-vector value missing from rebuilt vocabulary")
	}
	if _, ok := d2.Lookup("unrelated"); ok {
		t.Error("vocabulary contains values never named")
	}
}
