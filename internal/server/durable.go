package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"mlnclean/internal/core"
	"mlnclean/internal/index"
	"mlnclean/internal/wal"
)

// The manager's durability boundary. Every session mutation is one WAL
// record — plain old data, gob-framed exactly like the executor's wire
// messages — appended (and fsynced) before the mutation is acknowledged to
// the client. On restart the manager replays snapshot + records into a
// replayState and rebuilds the live world from it: open sessions get fresh
// executors re-fed their logged batches (batch boundaries preserved, so the
// streaming partitioner sees the identical shipment sequence), interrupted
// cleans restart, completed results re-serve byte-identically without an
// executor, and logged weight vectors warm the model cache so repeat
// workloads skip learning — the PR 3 cache-hit behavior, now crash-proof.
//
// Record order is the source of truth: a tombstone is logged before the
// session disappears from the manager, so an acknowledged eviction or DELETE
// can never resurrect.

// Record is a WAL record payload.
type Record interface{ isRecord() }

// recCreate opens a session: its id plus the full create request, which is
// everything needed to rebuild the executor (rules text, schema, workers,
// transport, seed, τ, metric, ...).
type recCreate struct {
	ID      string
	Req     CreateRequest
	Created int64 // unix nanoseconds, informational
	// RunID is the session's log-correlation tag; pre-run-ID logs decode it
	// empty and the restore generates a fresh one.
	RunID string
}

// recBatch is one Submit: one executor shipment, boundaries preserved.
type recBatch struct {
	ID   string
	Rows [][]string
}

// recCleanStart marks the run in flight; a start with no matching
// recCleanDone at replay means the crash interrupted the run, and the
// manager restarts it from the logged batches.
type recCleanStart struct{ ID string }

// recCleanDone is the completed run, denormalized to exactly what the
// result endpoint serves, so a restart re-serves it byte-identically
// without recomputing anything.
type recCleanDone struct {
	ID          string
	Attrs       []string
	Rows        [][]string
	IDs         []int
	Stats       core.Stats
	Workers     int
	WorkersLost int
	WallMS      int64
	Cached      bool
	// Plan is the run's rendered planner choices; old logs decode it empty,
	// matching a planner-less run. Restart re-serves it byte-identically.
	Plan []string
}

// recRepairs is the run's ordered repair log (audit trail).
type recRepairs struct {
	ID      string
	Repairs []Repair
}

// recWeights is a learned Eq. 6 weight vector keyed by the canonical rules
// hash and the learning-options fingerprint; replay re-interns RulesText and
// stores the vector, warm-starting the model cache.
type recWeights struct {
	RulesHash   string
	RulesText   string
	Fingerprint string
	Summaries   []index.PieceSummary
}

// recMutation is one acknowledged tuple mutation (PUT or DELETE of a row)
// against a done session. Replay re-applies the sequence through the delta
// engine, which is deterministic, so every result version re-serves
// byte-identically after a restart without persisting the versions
// themselves.
type recMutation struct {
	ID     string
	Op     string // "put" | "delete"
	Row    int
	Values []string // schema order; nil for delete
}

// recRollback marks the session's repairs reverted; replay re-serves the
// pre-repair table.
type recRollback struct{ ID string }

// recTombstone ends a session (explicit DELETE or idle eviction). Logged
// before the session is removed, so an evicted session never resurrects.
type recTombstone struct{ ID string }

func (recCreate) isRecord()     {}
func (recBatch) isRecord()      {}
func (recCleanStart) isRecord() {}
func (recCleanDone) isRecord()  {}
func (recRepairs) isRecord()    {}
func (recWeights) isRecord()    {}
func (recMutation) isRecord()   {}
func (recRollback) isRecord()   {}
func (recTombstone) isRecord()  {}

func init() {
	gob.Register(recCreate{})
	gob.Register(recBatch{})
	gob.Register(recCleanStart{})
	gob.Register(recCleanDone{})
	gob.Register(recRepairs{})
	gob.Register(recWeights{})
	gob.Register(recMutation{})
	gob.Register(recRollback{})
	gob.Register(recTombstone{})
}

// encodeRecord frames a record for the log.
func encodeRecord(r Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&r); err != nil {
		return nil, fmt.Errorf("server: encode wal record %T: %w", r, err)
	}
	return buf.Bytes(), nil
}

// decodeRecord is the inverse of encodeRecord.
func decodeRecord(b []byte) (Record, error) {
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, fmt.Errorf("server: decode wal record: %w", err)
	}
	return r, nil
}

// sessSnap is one session's durable state inside a snapshot / replayState.
type sessSnap struct {
	Req        CreateRequest
	Created    int64
	RunID      string
	Batches    [][][]string
	Cleaning   bool
	Done       *recCleanDone
	Repairs    []Repair
	RolledBack bool
	// Mutations is the acknowledged tuple-mutation sequence (old snapshots
	// decode it empty). Result versions are recomputed from it on demand.
	Mutations []recMutation
}

// replayState is the fold of the log: the state a restart rebuilds from. The
// walStore maintains a live mirror of it record by record, so compaction can
// snapshot without consulting (or locking) the live sessions.
type replayState struct {
	Seq        int // highest session sequence number ever issued
	Order      []string
	Sessions   map[string]*sessSnap
	Weights    []recWeights
	Tombstones int
}

func newReplayState() *replayState {
	return &replayState{Sessions: make(map[string]*sessSnap)}
}

// apply folds one record into the state. Records referencing unknown
// sessions (tombstoned earlier in the log) are no-ops, never errors: the log
// is replayed as far as it is valid, and validity was checked frame by frame.
func (st *replayState) apply(rec Record) {
	switch r := rec.(type) {
	case recCreate:
		var n int
		if _, err := fmt.Sscanf(r.ID, "s-%d", &n); err == nil && n > st.Seq {
			st.Seq = n
		}
		if _, ok := st.Sessions[r.ID]; ok {
			return
		}
		st.Sessions[r.ID] = &sessSnap{Req: r.Req, Created: r.Created, RunID: r.RunID}
		st.Order = append(st.Order, r.ID)
	case recBatch:
		if s := st.Sessions[r.ID]; s != nil {
			s.Batches = append(s.Batches, r.Rows)
		}
	case recCleanStart:
		if s := st.Sessions[r.ID]; s != nil {
			s.Cleaning = true
		}
	case recCleanDone:
		if s := st.Sessions[r.ID]; s != nil {
			done := r
			s.Done = &done
			s.Cleaning = false
		}
	case recRepairs:
		if s := st.Sessions[r.ID]; s != nil {
			s.Repairs = r.Repairs
		}
	case recWeights:
		for _, w := range st.Weights {
			if w.RulesHash == r.RulesHash && w.Fingerprint == r.Fingerprint {
				return
			}
		}
		st.Weights = append(st.Weights, r)
	case recMutation:
		if s := st.Sessions[r.ID]; s != nil {
			s.Mutations = append(s.Mutations, r)
		}
	case recRollback:
		if s := st.Sessions[r.ID]; s != nil {
			s.RolledBack = true
		}
	case recTombstone:
		if _, ok := st.Sessions[r.ID]; ok {
			delete(st.Sessions, r.ID)
			for i, id := range st.Order {
				if id == r.ID {
					st.Order = append(st.Order[:i], st.Order[i+1:]...)
					break
				}
			}
			st.Tombstones++
		}
	}
}

// encodeState frames the fold as a snapshot payload.
func encodeState(st *replayState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("server: encode wal snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeState(b []byte) (*replayState, error) {
	st := newReplayState()
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(st); err != nil {
		return nil, fmt.Errorf("server: decode wal snapshot: %w", err)
	}
	if st.Sessions == nil {
		st.Sessions = make(map[string]*sessSnap)
	}
	return st, nil
}

// walStore owns the manager's log handle plus the replayState mirror it
// snapshots from. It takes no session or manager locks (lock order is
// session/manager → walStore, never back), and append is atomic: the record
// is durably on disk and folded into the mirror, or neither.
type walStore struct {
	mu      sync.Mutex
	log     *wal.Log
	st      *replayState
	every   int // records between compactions
	pending int
}

// append durably logs one record. An error means the record is NOT
// acknowledged-durable — the caller must fail the client request — and the
// underlying log is latched broken (fail-stop), so no later record can be
// durable either; in-memory serving continues, durability has stopped.
func (w *walStore) append(rec Record) error {
	if w == nil {
		return nil
	}
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.log.Append(payload); err != nil {
		return err
	}
	w.st.apply(rec)
	w.pending++
	if w.pending >= w.every {
		if snap, err := encodeState(w.st); err == nil {
			if err := w.log.Compact(snap); err == nil {
				w.pending = 0
			}
		}
	}
	return nil
}

// sync flushes the log (graceful-shutdown path).
func (w *walStore) sync() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Sync()
}

// close flushes and closes the log. Idempotent.
func (w *walStore) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Close()
}

// RecoverySummary reports what a restart rebuilt from the data directory.
type RecoverySummary struct {
	// SessionsReplayed counts live sessions rebuilt (open, cleaning, done).
	SessionsReplayed int `json:"sessions_replayed"`
	// SessionsTombstoned counts sessions the log ended (closed or evicted)
	// and replay therefore did not resurrect.
	SessionsTombstoned int `json:"sessions_tombstoned"`
	// SessionsFailed counts logged sessions whose executor could not be
	// rebuilt (e.g. an unknown transport after a config change).
	SessionsFailed int `json:"sessions_failed,omitempty"`
	// CleansRestarted counts interrupted runs replay started over.
	CleansRestarted int `json:"cleans_restarted"`
	// WeightVectors counts learned weight vectors warmed into the cache.
	WeightVectors int `json:"weight_vectors"`
	// Records is the number of log records replayed (snapshot excluded).
	Records int `json:"records"`
	// TruncatedBytes is the corrupt/torn tail recovery cut off, zero for a
	// clean shutdown.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

func (r *RecoverySummary) String() string {
	return fmt.Sprintf("sessions replayed=%d tombstoned=%d cleans restarted=%d weight vectors=%d records=%d truncated bytes=%d",
		r.SessionsReplayed, r.SessionsTombstoned, r.CleansRestarted, r.WeightVectors, r.Records, r.TruncatedBytes)
}

// openWAL opens (or disables) durability for a manager config: an injected
// filesystem wins, else DataDir, else durability is off.
func openWAL(cfg ManagerConfig) (wal.FS, error) {
	if cfg.WALFS != nil {
		return cfg.WALFS, nil
	}
	if cfg.DataDir != "" {
		return wal.DirFS(cfg.DataDir)
	}
	return nil, nil
}
