package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint drives one session end to end and then scrapes
// /metrics and /v1/stats: the exposition must be valid Prometheus text
// carrying the serving-layer families the run just exercised, the session
// must report a run id, and stats must expose uptime and build identity.
func TestMetricsEndpoint(t *testing.T) {
	dirty, _, rulesText := hospitalFixture(t)
	srv := newTestServer(t, ManagerConfig{DefaultWorkers: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &client{t: t, base: ts.URL}

	info, _ := c.runSession(CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Tau: 2}, dirty, 3)
	if len(info.RunID) != 16 {
		t.Fatalf("session run id = %q, want 16 hex chars", info.RunID)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// One representative series per family the run must have touched. The
	// instruments are process-global, so the exact values depend on test
	// order — presence and form are what this test pins.
	for _, want := range []string{
		`mlnserve_http_request_seconds_count{route="create"}`,
		`mlnserve_http_responses_total{code="2xx"}`,
		"mlnserve_http_in_flight",
		"mlnserve_sessions_created_total",
		"mlnserve_cleans_completed_total",
		"mlnserve_sessions_live",
		"mlnserve_cache_models",
		"mlnserve_uptime_seconds",
		"mlnclean_core_stage_seconds_count",
		"mlnclean_executor_runs_total",
		"# TYPE mlnserve_http_request_seconds histogram",
		"# HELP mlnserve_sessions_created_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}

	var stats StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.Build.GoVersion == "" {
		t.Error("build.go_version is empty")
	}
}
