package server

import (
	"net/http"
	"time"

	"mlnclean/internal/obs"
)

// Serving-layer instruments. Session-lifecycle counters are package-level
// (they survive Server re-creation in tests — counters only ever grow);
// point-in-time gauges over a particular Server's state are GaugeFuncs bound
// in New, latest-wins, so the most recently constructed Server is the one a
// scrape reflects.
var (
	mHTTPInFlight = obs.Default().Gauge("mlnserve_http_in_flight",
		"HTTP requests currently being served.")
	mHTTPResponses2xx = obs.Default().Counter("mlnserve_http_responses_total",
		"HTTP responses by status class.", obs.L("code", "2xx"))
	mHTTPResponses3xx = obs.Default().Counter("mlnserve_http_responses_total", "", obs.L("code", "3xx"))
	mHTTPResponses4xx = obs.Default().Counter("mlnserve_http_responses_total", "", obs.L("code", "4xx"))
	mHTTPResponses5xx = obs.Default().Counter("mlnserve_http_responses_total", "", obs.L("code", "5xx"))

	mSessionsCreated = obs.Default().Counter("mlnserve_sessions_created_total",
		"Sessions opened (POST /v1/sessions accepted).")
	mSessionsClosed = obs.Default().Counter("mlnserve_sessions_closed_total",
		"Sessions closed by explicit DELETE.")
	mSessionsEvicted = obs.Default().Counter("mlnserve_sessions_evicted_total",
		"Sessions evicted by the idle sweeper.")
	mCleansStarted = obs.Default().Counter("mlnserve_cleans_started_total",
		"Cleaning runs accepted (POST .../clean).")
	mCleansDone = obs.Default().Counter("mlnserve_cleans_completed_total",
		"Cleaning runs that reached the done state.")
	mCleansFailed = obs.Default().Counter("mlnserve_cleans_failed_total",
		"Cleaning runs that ended in the failed state.")
	mMutations = obs.Default().Counter("mlnserve_mutations_total",
		"Tuple mutations acknowledged (PUT/DELETE .../tuples/{row}).")
)

// httpResponses maps a status code to its class counter.
func httpResponses(status int) *obs.Counter {
	switch {
	case status >= 500:
		return mHTTPResponses5xx
	case status >= 400:
		return mHTTPResponses4xx
	case status >= 300:
		return mHTTPResponses3xx
	default:
		return mHTTPResponses2xx
	}
}

// statusWriter captures the response status for the per-route instruments.
// WriteHeader may never be called (implicit 200 on first Write), so Write
// latches the default.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with its route's latency histogram and the
// status-class counters. Per-route series are pre-registered at route
// registration, so the hot path is atomics only — the mux cannot tell us the
// matched pattern after dispatch (r.Pattern is set on the request the handler
// sees, not the one ServeHTTP returned from), hence wrapping at registration.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.Default().Histogram("mlnserve_http_request_seconds",
		"HTTP request latency by route.", obs.DefBuckets, obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		mHTTPInFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing: implicit 200
		}
		mHTTPInFlight.Add(-1)
		hist.ObserveSince(t0)
		httpResponses(sw.status).Inc()
	}
}

// bindGauges (re-)binds the point-in-time GaugeFuncs to this Server's
// manager and cache. GaugeFunc registration is latest-wins by design, so
// tests constructing many Servers always scrape the newest one's state.
func bindGauges(s *Server) {
	reg := obs.Default()
	reg.GaugeFunc("mlnserve_sessions_live",
		"Live sessions (any state).", func() float64 {
			return float64(s.mgr.Len())
		})
	reg.GaugeFunc("mlnserve_sessions_cleaning",
		"Sessions with a cleaning run in flight.", func() float64 {
			n := 0
			for _, info := range s.mgr.List() {
				if info.State == StateCleaning {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("mlnserve_cache_models",
		"Interned rule-set models resident in the cache.", func() float64 {
			return float64(s.cache.Stats().Models)
		})
	reg.GaugeFunc("mlnserve_cache_rule_hit_ratio",
		"Rule-set cache hits over lookups (0 before any lookup).", func() float64 {
			st := s.cache.Stats()
			return ratio(st.RuleHits, st.RuleMisses)
		})
	reg.GaugeFunc("mlnserve_cache_weight_hit_ratio",
		"Weight-vector cache hits over lookups (0 before any lookup).", func() float64 {
			st := s.cache.Stats()
			return ratio(st.WeightHits, st.WeightMisses)
		})
	reg.GaugeFunc("mlnserve_uptime_seconds",
		"Seconds since this server was constructed.", func() float64 {
			return time.Since(s.started).Seconds()
		})
}

func ratio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
