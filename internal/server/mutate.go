package server

import (
	"fmt"
	"log/slog"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/tstore"
)

// Incremental serving: once a session is done, its result is no longer frozen
// — tuple PUT/DELETE mutations fold into an indexed tuple store and a delta
// re-cleaning engine, and every mutation mints a new result version. Version
// 1 is the batch run's result exactly as before; version N+1 is the cleaned
// table after the first N mutations, defined as the single-node pipeline over
// the mutated input (so it is transport-independent and, because the delta
// engine is parity-anchored to core.Clean, byte-identical to a from-scratch
// re-clean). Only the mutation log is durable; the store, engine, and version
// cache are rebuilt deterministically on first use after a restart, so every
// acknowledged version re-serves byte-identically without ever being
// persisted itself.

// versionEntry is one materialized result version (version index i+2).
type versionEntry struct {
	res     *core.Result
	delta   core.DeltaStats
	repairs []Repair
	tuples  int // live rows in the mutated input table
}

// mutOps are the recMutation op names.
const (
	mutPut    = "put"
	mutDelete = "delete"
)

// Mutate applies one tuple mutation to a done session: validates it against
// the current table, logs it (the durability point), folds it into the store
// and delta engine, and returns the new version number and its entry.
//
// Error mapping: ErrInvalid for semantically bad input (arity, out-of-range
// row), ErrNotFound for deleting an absent row, ErrDurability when the WAL
// rejected the record, and plain errors for state conflicts (not done, rolled
// back, table would empty).
func (s *Session) Mutate(op string, row int, values []string) (int, *versionEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateDone {
		return 0, nil, fmt.Errorf("server: session %s is %s, cannot mutate tuples", s.ID, s.state)
	}
	if s.rolled != nil {
		return 0, nil, fmt.Errorf("server: session %s is rolled back, cannot mutate tuples", s.ID)
	}
	if err := s.ensureDeltaLocked(); err != nil {
		return 0, nil, err
	}
	switch op {
	case mutPut:
		if len(values) != s.schema.Len() {
			return 0, nil, fmt.Errorf("%w: row %d has %d values, schema has %d",
				ErrInvalid, row, len(values), s.schema.Len())
		}
		// Any live row may be replaced; the only insertable fresh id is the
		// next dense one, so row ids stay gapless-by-construction and a typo'd
		// id cannot silently grow the table.
		if row < 0 || row > s.store.NextRow() {
			return 0, nil, fmt.Errorf("%w: row %d out of range [0, %d]", ErrInvalid, row, s.store.NextRow())
		}
	case mutDelete:
		if !s.store.Has(row) {
			return 0, nil, fmt.Errorf("%w: session %s has no row %d", ErrNotFound, s.ID, row)
		}
		if s.store.Len() == 1 {
			return 0, nil, fmt.Errorf("server: session %s: deleting row %d would empty the table", s.ID, row)
		}
	default:
		return 0, nil, fmt.Errorf("%w: unknown mutation op %q", ErrInvalid, op)
	}

	rec := recMutation{ID: s.ID, Op: op, Row: row}
	if op == mutPut {
		rec.Values = append([]string(nil), values...)
	}
	if err := s.wal.append(rec); err != nil {
		return 0, nil, fmt.Errorf("%w: session %s: %v", ErrDurability, s.ID, err)
	}
	s.mutLog = append(s.mutLog, rec)
	if err := s.catchUpLocked(); err != nil {
		// The mutation is durable but the engine rejected it — a bug, since
		// validation above mirrors the engine's. Fail loudly rather than serve
		// a version log the replay cannot reproduce.
		return 0, nil, fmt.Errorf("server: session %s: apply acknowledged mutation: %w", s.ID, err)
	}
	s.lastUsed = time.Now()
	version := 1 + len(s.versions)
	entry := s.versions[len(s.versions)-1]
	mMutations.Inc()
	slog.Info("server: tuple mutation applied",
		"session", s.ID, "run", s.runID, "op", op, "row", row, "version", version,
		"dirty_blocks", entry.delta.DirtyBlocks, "reused_blocks", entry.delta.ReusedBlocks,
		"refused_tuples", entry.delta.RefusedTuples, "reused_tuples", entry.delta.ReusedTuples)
	return version, entry, nil
}

// LatestVersion is the newest result version the session serves (0 until
// done).
func (s *Session) LatestVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateDone {
		return 0
	}
	return 1 + len(s.mutLog)
}

// Versioned returns result version v (v ≥ 2; version 1 is the batch result,
// served off the legacy path). ErrNotFound past the newest version.
func (s *Session) Versioned(v int) (*versionEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateDone {
		return nil, fmt.Errorf("server: session %s is %s, result not ready", s.ID, s.state)
	}
	if v < 2 || v > 1+len(s.mutLog) {
		return nil, fmt.Errorf("%w: session %s has no result version %d (latest %d)",
			ErrNotFound, s.ID, v, 1+len(s.mutLog))
	}
	if err := s.ensureDeltaLocked(); err != nil {
		return nil, err
	}
	s.lastUsed = time.Now()
	return s.versions[v-2], nil
}

// ensureDeltaLocked brings the incremental state current with the mutation
// log: on first use it mounts the tuple store over the session's streamed
// input and seeds the delta engine with a full solo clean, then (every call)
// replays any logged-but-unmaterialized mutations. After a restart this is
// where acknowledged versions are recomputed — the engine is deterministic,
// so they come back byte-identical. Caller holds s.mu.
func (s *Session) ensureDeltaLocked() error {
	if s.store == nil {
		base, err := preRepairTable(s.schema, s.batches)
		if err != nil {
			return err
		}
		// Volatile mount: the session WAL is the manager's single durability
		// authority and already logs the mutation sequence; a second log under
		// the store would just duplicate it.
		store, _, err := tstore.Open(s.schema, nil, tstore.Options{})
		if err != nil {
			return err
		}
		for _, t := range base.Tuples {
			if err := store.Put(t.ID, t.Values); err != nil {
				return fmt.Errorf("server: session %s: seed tuple store: %w", s.ID, err)
			}
		}
		eng, err := core.NewDeltaCleaner(s.schema, s.model.Rules, s.coreOpts)
		if err != nil {
			return err
		}
		if _, err := eng.Load(store.Table()); err != nil {
			return fmt.Errorf("server: session %s: seed delta engine: %w", s.ID, err)
		}
		s.store = store
		s.delta = eng
	}
	return s.catchUpLocked()
}

// catchUpLocked materializes one version per unapplied mutation-log record.
// Caller holds s.mu; the store and engine exist.
func (s *Session) catchUpLocked() error {
	for len(s.versions) < len(s.mutLog) {
		rec := s.mutLog[len(s.versions)]
		var mut core.Mutation
		switch rec.Op {
		case mutPut:
			mut = core.Mutation{Op: core.DeltaPut, Row: rec.Row, Values: rec.Values}
		case mutDelete:
			mut = core.Mutation{Op: core.DeltaDelete, Row: rec.Row}
		default:
			return fmt.Errorf("server: session %s: unknown logged mutation op %q", s.ID, rec.Op)
		}
		res, ds, err := s.delta.Apply([]core.Mutation{mut})
		if err != nil {
			return err
		}
		switch rec.Op {
		case mutPut:
			err = s.store.Put(rec.Row, rec.Values)
		case mutDelete:
			err = s.store.Delete(rec.Row)
		}
		if err != nil {
			return fmt.Errorf("server: session %s: tuple store diverged from engine: %w", s.ID, err)
		}
		s.versions = append(s.versions, &versionEntry{
			res:     res,
			delta:   *ds,
			repairs: computeRepairsTable(s.schema, s.delta.Table(), res.Repaired, s.model.Rules, s.delta.Weights()),
			tuples:  s.store.Len(),
		})
	}
	return nil
}
