package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/distributed"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
)

// SessionState is a session's lifecycle position.
type SessionState string

const (
	// StateOpen accepts tuple batches.
	StateOpen SessionState = "open"
	// StateCleaning has a run in flight.
	StateCleaning SessionState = "cleaning"
	// StateDone holds a result.
	StateDone SessionState = "done"
	// StateFailed holds an error.
	StateFailed SessionState = "failed"
)

// ErrBusy is returned by Create when the manager is at MaxSessions; clients
// should back off and retry (the API maps it to 429).
var ErrBusy = fmt.Errorf("server: session limit reached, retry later")

// ErrNotFound is returned for unknown or already-closed session ids.
var ErrNotFound = fmt.Errorf("server: no such session")

// ErrBadInput wraps client-input validation failures (malformed rows), so
// the API can answer 400 instead of the 409 reserved for state conflicts.
var ErrBadInput = fmt.Errorf("server: bad input")

// CreateRequest are the parameters of a new cleaning session.
type CreateRequest struct {
	// Rules is the constraint set, one per line (internal/rules syntax).
	Rules string `json:"rules"`
	// Attrs is the table schema, in column order.
	Attrs []string `json:"attrs"`
	// Workers is the executor's worker count (default: manager config).
	Workers int `json:"workers,omitempty"`
	// Transport selects the executor transport: chan|gob|http (default chan).
	Transport string `json:"transport,omitempty"`
	// BatchSize is the tuples per partition shipment (default 1024).
	BatchSize int `json:"batch_size,omitempty"`
	// Seed fixes the partition centroid draw (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Tau is the AGP threshold τ (default 1).
	Tau int `json:"tau,omitempty"`
	// Metric names the distance metric: levenshtein|cosine.
	Metric string `json:"metric,omitempty"`
	// KeepDuplicates skips duplicate elimination in the result.
	KeepDuplicates bool `json:"keep_duplicates,omitempty"`
	// FreshWeights opts out of the weight cache: the session relearns from
	// its own tuples even when a cached vector exists. Cached weights are
	// learned from whatever data previous sessions streamed, so clients
	// cleaning a different dataset under the same rules and options set
	// this to trade the learning cost for history independence.
	FreshWeights bool `json:"fresh_weights,omitempty"`
}

// weightsFingerprint identifies the learning configuration a weight vector
// was produced under: anything that changes what the learner sees — τ and
// the metric shape grouping/AGP, worker count and seed shape the partitions,
// batch size shifts the streaming centroid draw. Weights cached under one
// fingerprint are never replayed into a session with another. Every field
// is normalized to its effective default first, so "tau omitted" and
// "tau:1" share a cache slot.
func (r CreateRequest) weightsFingerprint(workers int) string {
	tau := r.Tau
	if tau <= 0 {
		tau = 1 // core.Options default (TauSet is not exposed over the API)
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	batch := r.BatchSize
	if batch <= 0 {
		batch = 1024 // distributed.Options default
	}
	return fmt.Sprintf("tau=%d,metric=%s,workers=%d,seed=%d,batch=%d",
		tau, distance.MetricName(metricFor(r.Metric)), workers, seed, batch)
}

// Session is one client's cleaning conversation: a schema, an interned
// model, and a live executor accumulating streamed tuples until Clean.
type Session struct {
	ID string

	mu       sync.Mutex
	state    SessionState
	model    *Model
	fp       string // weight-cache fingerprint of this session's options
	schema   *dataset.Schema
	workers  int
	cached   bool // run started with cached weights (learning skipped)
	ex       *distributed.Executor
	cancel   context.CancelFunc
	tuples   int
	created  time.Time
	lastUsed time.Time
	res      *distributed.Result
	runErr   error
}

// SessionInfo is a session's externally visible status snapshot.
// WorkersLost counts executor workers declared dead and recovered from so
// far — a session survives worker deaths (the partition is re-dispatched
// and the run continues), and the counter updates live while the session
// cleans, so pollers can watch a degraded-but-recovering run.
type SessionInfo struct {
	ID            string       `json:"id"`
	State         SessionState `json:"state"`
	RulesHash     string       `json:"rules_hash"`
	Workers       int          `json:"workers"`
	WorkersLost   int          `json:"workers_lost"`
	Tuples        int          `json:"tuples"`
	WeightsCached bool         `json:"weights_cached"`
	CreatedAt     time.Time    `json:"created_at"`
	LastUsedAt    time.Time    `json:"last_used_at"`
	Error         string       `json:"error,omitempty"`
}

// Info snapshots the session's status.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SessionInfo{
		ID:            s.ID,
		State:         s.state,
		RulesHash:     s.model.Hash,
		Workers:       s.workers,
		WorkersLost:   s.ex.WorkersLost(),
		Tuples:        s.tuples,
		WeightsCached: s.cached,
		CreatedAt:     s.created,
		LastUsedAt:    s.lastUsed,
	}
	if s.runErr != nil {
		info.Error = s.runErr.Error()
	}
	return info
}

// Submit appends one batch of rows to the session's executor. Only valid
// while the session is open.
func (s *Session) Submit(rows [][]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateOpen {
		return fmt.Errorf("server: session %s is %s, not accepting tuples", s.ID, s.state)
	}
	batch := dataset.NewTable(s.schema)
	for i, row := range rows {
		if _, err := batch.Append(row...); err != nil {
			return fmt.Errorf("%w: batch row %d: %v", ErrBadInput, i, err)
		}
	}
	if err := s.ex.Submit(batch); err != nil {
		return err
	}
	s.tuples += len(rows)
	s.lastUsed = time.Now()
	return nil
}

// Clean starts the cleaning run asynchronously; poll Info until the state
// leaves StateCleaning, then fetch Result.
func (s *Session) Clean(cache *ModelCache) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateOpen {
		return fmt.Errorf("server: session %s is %s, cannot clean", s.ID, s.state)
	}
	if s.tuples == 0 {
		return fmt.Errorf("server: session %s has no tuples", s.ID)
	}
	s.state = StateCleaning
	s.lastUsed = time.Now()
	go func() {
		res, err := s.ex.Run()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.lastUsed = time.Now()
		if err != nil {
			s.state = StateFailed
			s.runErr = err
			return
		}
		s.state = StateDone
		s.res = res
		if !s.cached {
			cache.StoreWeights(s.model, s.fp, res.MergedWeights)
		}
	}()
	return nil
}

// Result returns the completed run, or an error describing the session's
// actual state.
func (s *Session) Result() (*distributed.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateDone:
		s.lastUsed = time.Now()
		return s.res, nil
	case StateFailed:
		return nil, s.runErr
	default:
		return nil, fmt.Errorf("server: session %s is %s, result not ready", s.ID, s.state)
	}
}

// close cancels the session's executor context; the executor's watcher tears
// the transport down and the worker goroutines drain out. Idempotent.
func (s *Session) close() {
	s.cancel()
}

// ManagerConfig bounds the session manager.
type ManagerConfig struct {
	// MaxSessions is the concurrent-session cap; Create returns ErrBusy at
	// the cap (backpressure). Default 16.
	MaxSessions int
	// IdleTimeout evicts sessions untouched for this long (cleaning
	// sessions are exempt while the run is in flight). Default 10m.
	IdleTimeout time.Duration
	// SweepInterval is how often the eviction sweep runs. Default
	// IdleTimeout/4, floored at 100ms.
	SweepInterval time.Duration
	// DefaultWorkers is the executor worker count when a session does not
	// choose one. Default 2.
	DefaultWorkers int
	// HeartbeatInterval/WorkerTimeout tune session executors' failure
	// detection (see distributed.Options); zero keeps the executor
	// defaults, negative disables the respective mechanism.
	HeartbeatInterval time.Duration
	WorkerTimeout     time.Duration
	// TransportFor resolves a session's transport name; nil uses
	// distributed.TransportByName. Tests swap in fault-injecting wrappers
	// to exercise sessions surviving worker deaths.
	TransportFor func(name string) (distributed.TransportFactory, error)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.IdleTimeout / 4
		if c.SweepInterval < 100*time.Millisecond {
			c.SweepInterval = 100 * time.Millisecond
		}
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 2
	}
	if c.TransportFor == nil {
		c.TransportFor = distributed.TransportByName
	}
	return c
}

// Manager owns the live sessions: bounded creation, lookup, idle eviction,
// and shutdown. All methods are safe for concurrent use.
type Manager struct {
	cfg   ManagerConfig
	cache *ModelCache

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	closed   bool

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewManager starts a session manager (and its eviction sweeper) over the
// given model cache.
func NewManager(cfg ManagerConfig, cache *ModelCache) *Manager {
	m := &Manager{
		cfg:       cfg.withDefaults(),
		cache:     cache,
		sessions:  make(map[string]*Session),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	go m.sweep()
	return m
}

// Create opens a new session: interns the rule set, validates it against the
// schema, and starts an executor seeded with cached weights when the model
// has them. Returns ErrBusy at the session cap.
func (m *Manager) Create(req CreateRequest) (*Session, error) {
	model, _, err := m.cache.Intern(req.Rules)
	if err != nil {
		return nil, err
	}
	schema, err := dataset.NewSchema(req.Attrs...)
	if err != nil {
		return nil, err
	}
	for _, r := range model.Rules {
		if err := r.Validate(schema); err != nil {
			return nil, err
		}
	}
	workers := req.Workers
	if workers <= 0 {
		workers = m.cfg.DefaultWorkers
	}
	factory, err := m.cfg.TransportFor(req.Transport)
	if err != nil {
		return nil, err
	}
	fp := req.weightsFingerprint(workers)
	var preset []index.PieceSummary
	if !req.FreshWeights {
		preset = m.cache.TakeWeights(model, fp)
	}
	opts := distributed.Options{
		Workers:           workers,
		Seed:              req.Seed,
		Transport:         factory,
		BatchSize:         req.BatchSize,
		PresetWeights:     preset,
		HeartbeatInterval: m.cfg.HeartbeatInterval,
		WorkerTimeout:     m.cfg.WorkerTimeout,
		// Per-session dictionary over the model's frozen vocabulary: the
		// coordinator interns streamed tuples into it (partitioning + gather
		// FSCR); values already named by the model's rules or cached weight
		// vectors resolve to base IDs without per-session re-interning.
		Dict: intern.NewDictWithBase(model.Vocabulary()),
		Core: core.Options{
			Tau:            req.Tau,
			Metric:         metricFor(req.Metric),
			KeepDuplicates: req.KeepDuplicates,
		},
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: manager shut down")
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, ErrBusy
	}
	m.seq++
	id := fmt.Sprintf("s-%06d", m.seq)
	// Reserve the slot before the (potentially slow) executor spin-up.
	m.sessions[id] = nil
	m.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	ex, err := distributed.NewExecutorContext(ctx, schema, model.Rules, opts)
	if err != nil {
		cancel()
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return nil, err
	}
	now := time.Now()
	s := &Session{
		ID:       id,
		state:    StateOpen,
		model:    model,
		fp:       fp,
		schema:   schema,
		workers:  workers,
		cached:   len(preset) > 0,
		ex:       ex,
		cancel:   cancel,
		created:  now,
		lastUsed: now,
	}
	m.mu.Lock()
	if _, reserved := m.sessions[id]; !reserved || m.closed {
		// The reservation was swept away by Shutdown (or an explicit Close)
		// while the executor was spinning up.
		m.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("server: manager shut down")
	}
	m.sessions[id] = s
	m.mu.Unlock()
	return s, nil
}

// Get looks a session up; ErrNotFound for unknown or evicted ids.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// Close tears a session down and frees its slot. Closing twice (or closing
// an evicted session) returns ErrNotFound; the teardown itself is
// idempotent.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	s.close()
	return nil
}

// Len is the live session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// List snapshots every live session's status, for the stats endpoint.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()
	out := make([]SessionInfo, len(ss))
	for i, s := range ss {
		out[i] = s.Info()
	}
	return out
}

// EvictIdle closes every session idle past the timeout as of now, returning
// how many were evicted. Sessions mid-clean are exempt — their lastUsed is
// refreshed when the run completes.
func (m *Manager) EvictIdle(now time.Time) int {
	m.mu.Lock()
	var victims []*Session
	for id, s := range m.sessions {
		if s == nil {
			continue
		}
		info := s.Info()
		if info.State == StateCleaning {
			continue
		}
		if now.Sub(info.LastUsedAt) > m.cfg.IdleTimeout {
			victims = append(victims, s)
			delete(m.sessions, id)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		s.close()
	}
	return len(victims)
}

func (m *Manager) sweep() {
	defer close(m.sweepDone)
	tick := time.NewTicker(m.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			m.EvictIdle(now)
		case <-m.stopSweep:
			return
		}
	}
}

// Shutdown stops the sweeper and closes every session.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	victims := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			victims = append(victims, s)
		}
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	close(m.stopSweep)
	<-m.sweepDone
	for _, s := range victims {
		s.close()
	}
}

// metricFor resolves a metric name, defaulting like the CLI does.
func metricFor(name string) distance.Metric {
	if name == "" {
		name = "levenshtein"
	}
	return distance.ByName(name)
}
