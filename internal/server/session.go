package server

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/distributed"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/obs"
	"mlnclean/internal/tstore"
	"mlnclean/internal/wal"
)

// SessionState is a session's lifecycle position.
type SessionState string

const (
	// StateOpen accepts tuple batches.
	StateOpen SessionState = "open"
	// StateCleaning has a run in flight.
	StateCleaning SessionState = "cleaning"
	// StateDone holds a result.
	StateDone SessionState = "done"
	// StateFailed holds an error.
	StateFailed SessionState = "failed"
)

// ErrBusy is returned by Create when the manager is at MaxSessions; clients
// should back off and retry (the API maps it to 429).
var ErrBusy = fmt.Errorf("server: session limit reached, retry later")

// ErrNotFound is returned for unknown or already-closed session ids.
var ErrNotFound = fmt.Errorf("server: no such session")

// ErrBadInput wraps client-input validation failures (malformed rows), so
// the API can answer 400 instead of the 409 reserved for state conflicts.
var ErrBadInput = fmt.Errorf("server: bad input")

// ErrDurability wraps write-ahead-log failures: the mutation could not be
// made durable, so it was not acknowledged. The log is fail-stop — once it
// breaks, every subsequent durable mutation fails the same way (the API maps
// it to 500).
var ErrDurability = fmt.Errorf("server: durability failure")

// ErrInvalid wraps semantically invalid requests — well-formed JSON whose
// content the session cannot act on (a tuple PUT with the wrong arity, a row
// id outside the addressable range, an unparseable version or cursor). The
// API maps it to 422, distinct from the 400 reserved for undecodable bodies.
var ErrInvalid = fmt.Errorf("server: invalid request")

// CreateRequest are the parameters of a new cleaning session.
type CreateRequest struct {
	// Rules is the constraint set, one per line (internal/rules syntax).
	Rules string `json:"rules"`
	// Attrs is the table schema, in column order.
	Attrs []string `json:"attrs"`
	// Workers is the executor's worker count (default: manager config).
	Workers int `json:"workers,omitempty"`
	// Transport selects the executor transport: chan|gob|http (default chan).
	Transport string `json:"transport,omitempty"`
	// BatchSize is the tuples per partition shipment (default 1024).
	BatchSize int `json:"batch_size,omitempty"`
	// Seed fixes the partition centroid draw (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Tau is the AGP threshold τ (default 1).
	Tau int `json:"tau,omitempty"`
	// Metric names the distance metric: levenshtein|cosine.
	Metric string `json:"metric,omitempty"`
	// KeepDuplicates skips duplicate elimination in the result.
	KeepDuplicates bool `json:"keep_duplicates,omitempty"`
	// DisablePlanner turns off the selectivity-driven rule planner, forcing
	// declared-order full scans during index construction (comparison and
	// debugging switch; the planner never changes outcomes, only scan order).
	// Not part of the weights fingerprint for the same reason — the learner
	// sees identical groups either way.
	DisablePlanner bool `json:"disable_planner,omitempty"`
	// Materialize disables the streaming worker pipeline: each worker builds
	// its full partition index before any cleaning instead of streaming
	// blocks from an iterator with fused AGP + learning. Output is identical
	// either way (comparison and escape hatch); not part of the weights
	// fingerprint because the learner sees identical groups either way.
	Materialize bool `json:"materialize,omitempty"`
	// FreshWeights opts out of the weight cache: the session relearns from
	// its own tuples even when a cached vector exists. Cached weights are
	// learned from whatever data previous sessions streamed, so clients
	// cleaning a different dataset under the same rules and options set
	// this to trade the learning cost for history independence.
	FreshWeights bool `json:"fresh_weights,omitempty"`
}

// weightsFingerprint identifies the learning configuration a weight vector
// was produced under: anything that changes what the learner sees — τ and
// the metric shape grouping/AGP, worker count and seed shape the partitions,
// batch size shifts the streaming centroid draw. Weights cached under one
// fingerprint are never replayed into a session with another. Every field
// is normalized to its effective default first, so "tau omitted" and
// "tau:1" share a cache slot.
func (r CreateRequest) weightsFingerprint(workers int) string {
	tau := r.Tau
	if tau <= 0 {
		tau = 1 // core.Options default (TauSet is not exposed over the API)
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	batch := r.BatchSize
	if batch <= 0 {
		batch = 1024 // distributed.Options default
	}
	return fmt.Sprintf("tau=%d,metric=%s,workers=%d,seed=%d,batch=%d",
		tau, distance.MetricName(metricFor(r.Metric)), workers, seed, batch)
}

// Session is one client's cleaning conversation: a schema, an interned
// model, and a live executor accumulating streamed tuples until Clean.
//
// A session restored from the WAL in StateDone has no executor (ex is nil,
// cancel a no-op): the logged result re-serves as-is and the session accepts
// no further tuples, so nothing needs workers.
type Session struct {
	ID string
	// runID correlates the session's executor run across coordinator- and
	// worker-side log lines (and the /metrics story); generated at create,
	// persisted in the WAL, never an input to the cleaning outcome.
	runID string

	mu        sync.Mutex
	state     SessionState
	model     *Model
	fp        string // weight-cache fingerprint of this session's options
	rulesText string // original rules source, for the weight-vector WAL record
	schema    *dataset.Schema
	workers   int
	cached    bool // run started with cached weights (learning skipped)
	ex        *distributed.Executor
	cancel    context.CancelFunc
	tuples    int
	batches   [][][]string // streamed rows, per Submit call (audit + replay)
	created   time.Time
	lastUsed  time.Time
	res       *distributed.Result
	runErr    error
	repairs   []Repair
	rolled    *dataset.Table // pre-repair table, non-nil once rolled back
	lostDone  int            // WorkersLost of a WAL-restored result (ex == nil)
	wal       *walStore      // nil when durability is off

	// Incremental serving state, live once the session is done and mutated.
	// mutLog is the durable mutation sequence (restored from the WAL);
	// store/delta/versions are volatile caches rebuilt from batches + mutLog
	// on first use — the engine replay is deterministic, so result versions
	// re-serve byte-identically after a restart.
	coreOpts core.Options       // solo pipeline options the delta engine runs under
	store    *tstore.Store      // indexed tuple store mirroring the current table
	delta    *core.DeltaCleaner // incremental re-cleaning engine
	mutLog   []recMutation
	versions []*versionEntry // entry i serves result version i+2
}

// SessionInfo is a session's externally visible status snapshot.
// WorkersLost counts executor workers declared dead and recovered from so
// far — a session survives worker deaths (the partition is re-dispatched
// and the run continues), and the counter updates live while the session
// cleans, so pollers can watch a degraded-but-recovering run.
type SessionInfo struct {
	ID string `json:"id"`
	// RunID is the correlation tag the session's executor run (and its log
	// lines) carry; stable across restarts of a durable server.
	RunID         string       `json:"run_id"`
	State         SessionState `json:"state"`
	RulesHash     string       `json:"rules_hash"`
	Workers       int          `json:"workers"`
	WorkersLost   int          `json:"workers_lost"`
	Tuples        int          `json:"tuples"`
	WeightsCached bool         `json:"weights_cached"`
	Repairs       int          `json:"repairs,omitempty"`
	RolledBack    bool         `json:"rolled_back,omitempty"`
	// Versions is the number of result versions the session serves: 1 for
	// the batch clean, plus one per applied tuple mutation. Zero until the
	// session is done.
	Versions int `json:"versions,omitempty"`
	// Plan lists the rule planner's per-rule scan choices (rendered
	// plan-dump lines) once the run completes; empty while cleaning or when
	// the planner was disabled.
	Plan       []string  `json:"plan,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	LastUsedAt time.Time `json:"last_used_at"`
	Error      string    `json:"error,omitempty"`
}

// Info snapshots the session's status.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	lost := s.lostDone
	if s.ex != nil {
		lost = s.ex.WorkersLost()
	}
	info := SessionInfo{
		ID:            s.ID,
		RunID:         s.runID,
		State:         s.state,
		RulesHash:     s.model.Hash,
		Workers:       s.workers,
		WorkersLost:   lost,
		Tuples:        s.tuples,
		WeightsCached: s.cached,
		Repairs:       len(s.repairs),
		RolledBack:    s.rolled != nil,
		CreatedAt:     s.created,
		LastUsedAt:    s.lastUsed,
	}
	if s.res != nil {
		info.Plan = s.res.Plan
	}
	if s.state == StateDone {
		info.Versions = 1 + len(s.mutLog)
	}
	if s.runErr != nil {
		info.Error = s.runErr.Error()
	}
	return info
}

// Submit appends one batch of rows to the session's executor. Only valid
// while the session is open.
func (s *Session) Submit(rows [][]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateOpen {
		return fmt.Errorf("server: session %s is %s, not accepting tuples", s.ID, s.state)
	}
	batch := dataset.NewTable(s.schema)
	for i, row := range rows {
		if _, err := batch.Append(row...); err != nil {
			return fmt.Errorf("%w: batch row %d: %v", ErrBadInput, i, err)
		}
	}
	if err := s.ex.Submit(batch); err != nil {
		return err
	}
	// Copy the rows before logging/retaining: the client's decoder owns the
	// originals. One record per Submit keeps batch boundaries, which the
	// streaming partitioner's capacity growth is sensitive to — replay must
	// ship the executor the identical shipment sequence.
	kept := make([][]string, len(rows))
	for i, row := range rows {
		kept[i] = append([]string(nil), row...)
	}
	if err := s.wal.append(recBatch{ID: s.ID, Rows: kept}); err != nil {
		return fmt.Errorf("%w: session %s: %v", ErrDurability, s.ID, err)
	}
	s.batches = append(s.batches, kept)
	s.tuples += len(rows)
	s.lastUsed = time.Now()
	return nil
}

// Clean starts the cleaning run asynchronously; poll Info until the state
// leaves StateCleaning, then fetch Result.
func (s *Session) Clean(cache *ModelCache) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateOpen {
		return fmt.Errorf("server: session %s is %s, cannot clean", s.ID, s.state)
	}
	if s.tuples == 0 {
		return fmt.Errorf("server: session %s has no tuples", s.ID)
	}
	if err := s.wal.append(recCleanStart{ID: s.ID}); err != nil {
		return fmt.Errorf("%w: session %s: %v", ErrDurability, s.ID, err)
	}
	s.state = StateCleaning
	s.lastUsed = time.Now()
	mCleansStarted.Inc()
	slog.Info("server: clean started",
		"session", s.ID, "run", s.runID, "tuples", s.tuples, "workers", s.workers, "cached_weights", s.cached)
	go func() {
		t0 := time.Now()
		res, err := s.ex.Run()
		if err != nil {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.lastUsed = time.Now()
			s.state = StateFailed
			s.runErr = err
			mCleansFailed.Inc()
			slog.Warn("server: clean failed", "session", s.ID, "run", s.runID, "err", err)
			return
		}
		// Compute the audit trail and log the completion — result, repairs,
		// and (when this run learned) the weight vector — before the done
		// state becomes observable: a poller that saw "done" must find the
		// result after a crash.
		reps := computeRepairs(s.schema, s.batches, res.Repaired, s.model.Rules, res.MergedWeights)
		s.wal.append(resultRecord(s, res))
		s.wal.append(recRepairs{ID: s.ID, Repairs: reps})
		if !s.cached && len(res.MergedWeights) > 0 {
			s.wal.append(recWeights{
				RulesHash:   s.model.Hash,
				RulesText:   s.rulesText,
				Fingerprint: s.fp,
				Summaries:   index.CopySummaries(res.MergedWeights),
			})
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.lastUsed = time.Now()
		s.state = StateDone
		s.res = res
		s.repairs = reps
		if !s.cached {
			cache.StoreWeights(s.model, s.fp, res.MergedWeights)
		}
		mCleansDone.Inc()
		slog.Info("server: clean done",
			"session", s.ID, "run", s.runID, "rows", res.Clean.Len(), "repairs", len(reps),
			"workers_lost", res.WorkersLost, "wall", time.Since(t0).Round(time.Millisecond))
	}()
	return nil
}

// resultRecord denormalizes a completed run into its WAL record: exactly
// what the result endpoint serves.
func resultRecord(s *Session, res *distributed.Result) recCleanDone {
	rec := recCleanDone{
		ID:          s.ID,
		Attrs:       res.Clean.Schema.Attrs(),
		Rows:        make([][]string, res.Clean.Len()),
		IDs:         make([]int, res.Clean.Len()),
		Stats:       res.Stats,
		Workers:     res.Workers,
		WorkersLost: res.WorkersLost,
		WallMS:      res.WallTime.Milliseconds(),
		Cached:      s.cached,
		Plan:        res.Plan,
	}
	for i, t := range res.Clean.Tuples {
		rec.Rows[i] = append([]string(nil), t.Values...)
		rec.IDs[i] = t.ID
	}
	return rec
}

// Repairs returns the completed run's ordered audit trail and whether the
// session has been rolled back.
func (s *Session) Repairs() ([]Repair, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateDone {
		return nil, false, fmt.Errorf("server: session %s is %s, repairs not ready", s.ID, s.state)
	}
	s.lastUsed = time.Now()
	return s.repairs, s.rolled != nil, nil
}

// Rollback restores the pre-repair table from the session's logged batches:
// after it, Result serves the original streamed values (flagged rolled
// back). Idempotent; only valid on a done session.
func (s *Session) Rollback() (*dataset.Table, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateDone {
		return nil, 0, fmt.Errorf("server: session %s is %s, cannot roll back", s.ID, s.state)
	}
	if s.rolled != nil {
		return s.rolled, len(s.repairs), nil
	}
	if len(s.mutLog) > 0 {
		// The audit trail rollback restores predates the mutations; reverting
		// it under them would serve a table no version ever described.
		return nil, 0, fmt.Errorf("server: session %s has %d tuple mutations, cannot roll back", s.ID, len(s.mutLog))
	}
	tb, err := preRepairTable(s.schema, s.batches)
	if err != nil {
		return nil, 0, err
	}
	if err := s.wal.append(recRollback{ID: s.ID}); err != nil {
		return nil, 0, fmt.Errorf("%w: session %s: %v", ErrDurability, s.ID, err)
	}
	s.rolled = tb
	s.lastUsed = time.Now()
	return tb, len(s.repairs), nil
}

// Restored returns the pre-repair table when the session has been rolled
// back, else nil (serve the cleaned result).
func (s *Session) Restored() *dataset.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rolled
}

// Result returns the completed run, or an error describing the session's
// actual state.
func (s *Session) Result() (*distributed.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateDone:
		s.lastUsed = time.Now()
		return s.res, nil
	case StateFailed:
		return nil, s.runErr
	default:
		return nil, fmt.Errorf("server: session %s is %s, result not ready", s.ID, s.state)
	}
}

// close cancels the session's executor context; the executor's watcher tears
// the transport down and the worker goroutines drain out. Idempotent.
func (s *Session) close() {
	s.cancel()
}

// ManagerConfig bounds the session manager.
type ManagerConfig struct {
	// MaxSessions is the concurrent-session cap; Create returns ErrBusy at
	// the cap (backpressure). Default 16.
	MaxSessions int
	// IdleTimeout evicts sessions untouched for this long (cleaning
	// sessions are exempt while the run is in flight). Default 10m.
	IdleTimeout time.Duration
	// SweepInterval is how often the eviction sweep runs. Default
	// IdleTimeout/4, floored at 100ms.
	SweepInterval time.Duration
	// DefaultWorkers is the executor worker count when a session does not
	// choose one. Default 2.
	DefaultWorkers int
	// HeartbeatInterval/WorkerTimeout tune session executors' failure
	// detection (see distributed.Options); zero keeps the executor
	// defaults, negative disables the respective mechanism.
	HeartbeatInterval time.Duration
	WorkerTimeout     time.Duration
	// TransportFor resolves a session's transport name; nil uses
	// distributed.TransportByName. Tests swap in fault-injecting wrappers
	// to exercise sessions surviving worker deaths.
	TransportFor func(name string) (distributed.TransportFactory, error)
	// DataDir enables durability: every session mutation is written to a
	// write-ahead log under this directory before it is acknowledged, and a
	// restart on the same directory replays it — sessions rebuilt, model
	// cache warmed, completed results re-served byte-identically. Empty
	// (and WALFS nil) means in-memory only, the pre-durability behavior.
	DataDir string
	// WALFS overrides the log's filesystem (tests inject the fault-injecting
	// crash-simulating wal.MemFS). Takes precedence over DataDir.
	WALFS wal.FS
	// SnapshotEvery compacts the log into a snapshot every N records
	// (default 256). Smaller is tighter disk usage, larger is fewer
	// compaction pauses.
	SnapshotEvery int
	// WALSegmentSize overrides the log's segment rotation size (default 4
	// MiB); mainly for tests.
	WALSegmentSize int64
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.IdleTimeout / 4
		if c.SweepInterval < 100*time.Millisecond {
			c.SweepInterval = 100 * time.Millisecond
		}
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 2
	}
	if c.TransportFor == nil {
		c.TransportFor = distributed.TransportByName
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// Manager owns the live sessions: bounded creation, lookup, idle eviction,
// and shutdown. All methods are safe for concurrent use.
type Manager struct {
	cfg   ManagerConfig
	cache *ModelCache
	wal   *walStore // nil when durability is off
	rec   *RecoverySummary

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	closed   bool

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewManager starts a session manager (and its eviction sweeper) over the
// given model cache. With durability configured (DataDir or WALFS) it first
// replays the write-ahead log: rebuilds logged sessions, warms the model
// cache with logged weight vectors, restarts interrupted cleans, and
// positions the log for appending.
func NewManager(cfg ManagerConfig, cache *ModelCache) (*Manager, error) {
	m := &Manager{
		cfg:       cfg.withDefaults(),
		cache:     cache,
		sessions:  make(map[string]*Session),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	fs, err := openWAL(m.cfg)
	if err != nil {
		return nil, err
	}
	if fs != nil {
		if err := m.replay(fs); err != nil {
			return nil, err
		}
	}
	go m.sweep()
	return m, nil
}

// Recovery reports what the manager replayed at startup; nil when
// durability is off.
func (m *Manager) Recovery() *RecoverySummary { return m.rec }

// replay opens the log on fs, folds its surviving records, and rebuilds the
// live world. Sessions restore in creation order; restored sessions do not
// count against MaxSessions (they were admitted before the restart).
func (m *Manager) replay(fs wal.FS) error {
	lg, rec, err := wal.Open(fs, wal.Options{
		SegmentSize: m.cfg.WALSegmentSize,
		Validate: func(p []byte) error {
			_, err := decodeRecord(p)
			return err
		},
	})
	if err != nil {
		return err
	}
	st := newReplayState()
	if rec.Snapshot != nil {
		if st, err = decodeState(rec.Snapshot); err != nil {
			lg.Close()
			return err
		}
	}
	for _, p := range rec.Records {
		r, err := decodeRecord(p)
		if err != nil {
			continue // unreachable: the Validate hook truncated these
		}
		st.apply(r)
	}
	sum := &RecoverySummary{
		SessionsTombstoned: st.Tombstones,
		WeightVectors:      len(st.Weights),
		Records:            len(rec.Records),
		TruncatedBytes:     rec.TruncatedBytes,
	}
	// Warm the model cache: repeat workloads (and restarted cleans below)
	// start from the logged weight vectors and skip learning.
	for _, w := range st.Weights {
		if model, _, err := m.cache.Intern(w.RulesText); err == nil {
			m.cache.StoreWeights(model, w.Fingerprint, w.Summaries)
		}
	}
	m.seq = st.Seq
	var restart []*Session
	for _, id := range st.Order {
		s, err := m.restore(id, st.Sessions[id])
		if err != nil {
			sum.SessionsFailed++
			continue
		}
		m.sessions[id] = s
		sum.SessionsReplayed++
		if st.Sessions[id].Cleaning {
			restart = append(restart, s)
		}
	}
	m.wal = &walStore{log: lg, st: st, every: m.cfg.SnapshotEvery}
	m.rec = sum
	// Attach the log only now: the restores above must not re-log the
	// records they were built from.
	for _, s := range m.sessions {
		s.wal = m.wal
	}
	// Restart interrupted cleans from their logged batches. The re-logged
	// clean-start record is idempotent under replay.
	for _, s := range restart {
		if err := s.Clean(m.cache); err == nil {
			sum.CleansRestarted++
		}
	}
	return nil
}

// restore rebuilds one session from its folded log state. Open and
// mid-clean sessions get a fresh executor re-fed the logged batches
// (boundaries preserved); done sessions carry the logged result directly and
// need no executor.
func (m *Manager) restore(id string, snap *sessSnap) (*Session, error) {
	model, _, err := m.cache.Intern(snap.Req.Rules)
	if err != nil {
		return nil, err
	}
	schema, err := dataset.NewSchema(snap.Req.Attrs...)
	if err != nil {
		return nil, err
	}
	workers := snap.Req.Workers
	if workers <= 0 {
		workers = m.cfg.DefaultWorkers
	}
	now := time.Now()
	runID := snap.RunID
	if runID == "" {
		runID = obs.NewRunID() // pre-run-ID log: tag the restored session afresh
	}
	s := &Session{
		ID:        id,
		runID:     runID,
		model:     model,
		fp:        snap.Req.weightsFingerprint(workers),
		rulesText: snap.Req.Rules,
		schema:    schema,
		workers:   workers,
		batches:   snap.Batches,
		repairs:   snap.Repairs,
		created:   time.Unix(0, snap.Created),
		lastUsed:  now,
		coreOpts:  soloCoreOptions(snap.Req),
		mutLog:    snap.Mutations,
	}
	for _, b := range snap.Batches {
		s.tuples += len(b)
	}
	if snap.RolledBack {
		if s.rolled, err = preRepairTable(schema, snap.Batches); err != nil {
			return nil, err
		}
	}
	if done := snap.Done; done != nil {
		res, err := resultFromRecord(done)
		if err != nil {
			return nil, err
		}
		s.state = StateDone
		s.res = res
		s.cached = done.Cached
		s.lostDone = done.WorkersLost
		s.cancel = func() {}
		return s, nil
	}

	// Open (or interrupted mid-clean): rebuild the executor exactly like
	// Create, replaying the logged batches shipment by shipment.
	factory, err := m.cfg.TransportFor(snap.Req.Transport)
	if err != nil {
		return nil, err
	}
	var preset []index.PieceSummary
	if !snap.Req.FreshWeights {
		preset = m.cache.TakeWeights(model, s.fp)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ex, err := distributed.NewExecutorContext(ctx, schema, model.Rules, executorOptions(snap.Req, workers, factory, preset, model, m.cfg, runID))
	if err != nil {
		cancel()
		return nil, err
	}
	for bi, b := range snap.Batches {
		batch := dataset.NewTable(schema)
		for _, row := range b {
			if _, err := batch.Append(row...); err != nil {
				cancel()
				return nil, fmt.Errorf("server: replay session %s batch %d: %w", id, bi, err)
			}
		}
		if err := ex.Submit(batch); err != nil {
			cancel()
			return nil, fmt.Errorf("server: replay session %s batch %d: %w", id, bi, err)
		}
	}
	s.state = StateOpen
	s.cached = len(preset) > 0
	s.ex = ex
	s.cancel = cancel
	return s, nil
}

// resultFromRecord rebuilds a servable result from its log record.
func resultFromRecord(rec *recCleanDone) (*distributed.Result, error) {
	schema, err := dataset.NewSchema(rec.Attrs...)
	if err != nil {
		return nil, err
	}
	if len(rec.Rows) != len(rec.IDs) {
		return nil, fmt.Errorf("server: result record: %d rows, %d ids", len(rec.Rows), len(rec.IDs))
	}
	tb := dataset.NewTable(schema)
	for i, row := range rec.Rows {
		t, err := tb.Append(row...)
		if err != nil {
			return nil, err
		}
		t.ID = rec.IDs[i]
	}
	return &distributed.Result{
		Clean:       tb,
		Workers:     rec.Workers,
		WorkersLost: rec.WorkersLost,
		WallTime:    time.Duration(rec.WallMS) * time.Millisecond,
		Plan:        rec.Plan,
		Stats:       rec.Stats,
	}, nil
}

// executorOptions derives a session executor's options from its create
// request — shared by Create and WAL replay, which must configure the
// executor identically for the replayed run to be deterministic (runID is
// exempt: it only tags log lines, never the outcome).
func executorOptions(req CreateRequest, workers int, factory distributed.TransportFactory, preset []index.PieceSummary, model *Model, cfg ManagerConfig, runID string) distributed.Options {
	opts := distributed.Options{
		Workers:           workers,
		RunID:             runID,
		Seed:              req.Seed,
		Transport:         factory,
		BatchSize:         req.BatchSize,
		PresetWeights:     preset,
		HeartbeatInterval: cfg.HeartbeatInterval,
		WorkerTimeout:     cfg.WorkerTimeout,
		// Per-session dictionary over the model's frozen vocabulary: the
		// coordinator interns streamed tuples into it (partitioning + gather
		// FSCR); values already named by the model's rules or cached weight
		// vectors resolve to base IDs without per-session re-interning.
		Dict: intern.NewDictWithBase(model.Vocabulary()),
		Core: core.Options{
			Tau:            req.Tau,
			Metric:         metricFor(req.Metric),
			KeepDuplicates: req.KeepDuplicates,
			DisablePlanner: req.DisablePlanner,
			Materialize:    req.Materialize,
		},
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return opts
}

// soloCoreOptions derives the options the session's delta engine cleans
// under: the request's pipeline knobs that shape outcomes (τ, metric,
// duplicate handling), without the transport-shaped ones. Result versions ≥2
// are defined as the single-node pipeline over the mutated table, so every
// transport serves the same bytes.
func soloCoreOptions(req CreateRequest) core.Options {
	return core.Options{
		Tau:            req.Tau,
		Metric:         metricFor(req.Metric),
		KeepDuplicates: req.KeepDuplicates,
	}
}

// Create opens a new session: interns the rule set, validates it against the
// schema, and starts an executor seeded with cached weights when the model
// has them. Returns ErrBusy at the session cap. With durability on, the
// session is acknowledged only after its create record is on disk.
func (m *Manager) Create(req CreateRequest) (*Session, error) {
	model, _, err := m.cache.Intern(req.Rules)
	if err != nil {
		return nil, err
	}
	schema, err := dataset.NewSchema(req.Attrs...)
	if err != nil {
		return nil, err
	}
	for _, r := range model.Rules {
		if err := r.Validate(schema); err != nil {
			return nil, err
		}
	}
	workers := req.Workers
	if workers <= 0 {
		workers = m.cfg.DefaultWorkers
	}
	factory, err := m.cfg.TransportFor(req.Transport)
	if err != nil {
		return nil, err
	}
	fp := req.weightsFingerprint(workers)
	var preset []index.PieceSummary
	if !req.FreshWeights {
		preset = m.cache.TakeWeights(model, fp)
	}
	runID := obs.NewRunID()
	opts := executorOptions(req, workers, factory, preset, model, m.cfg, runID)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: manager shut down")
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, ErrBusy
	}
	m.seq++
	id := fmt.Sprintf("s-%06d", m.seq)
	// Reserve the slot before the (potentially slow) executor spin-up.
	m.sessions[id] = nil
	m.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	ex, err := distributed.NewExecutorContext(ctx, schema, model.Rules, opts)
	if err != nil {
		cancel()
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return nil, err
	}
	now := time.Now()
	s := &Session{
		ID:        id,
		runID:     runID,
		state:     StateOpen,
		model:     model,
		fp:        fp,
		rulesText: req.Rules,
		schema:    schema,
		workers:   workers,
		cached:    len(preset) > 0,
		ex:        ex,
		cancel:    cancel,
		created:   now,
		lastUsed:  now,
		wal:       m.wal,
		coreOpts:  soloCoreOptions(req),
	}
	// Log the create before the session becomes reachable: an acknowledged
	// session id must survive a crash.
	if err := s.wal.append(recCreate{ID: id, Req: req, Created: now.UnixNano(), RunID: runID}); err != nil {
		cancel()
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	m.mu.Lock()
	if _, reserved := m.sessions[id]; !reserved || m.closed {
		// The reservation was swept away by Shutdown (or an explicit Close)
		// while the executor was spinning up. The create was already logged;
		// tombstone it (best-effort) so the unacknowledged session does not
		// resurrect on replay.
		m.mu.Unlock()
		cancel()
		s.wal.append(recTombstone{ID: id})
		return nil, fmt.Errorf("server: manager shut down")
	}
	m.sessions[id] = s
	m.mu.Unlock()
	mSessionsCreated.Inc()
	slog.Info("server: session created",
		"session", id, "run", runID, "rules_hash", model.Hash, "workers", workers, "cached_weights", s.cached)
	return s, nil
}

// Get looks a session up; ErrNotFound for unknown or evicted ids.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// Close tears a session down and frees its slot. Closing twice (or closing
// an evicted session) returns ErrNotFound; the teardown itself is
// idempotent. The tombstone is logged before the session disappears, so an
// acknowledged close can never resurrect on replay.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return ErrNotFound
	}
	if err := m.wal.append(recTombstone{ID: id}); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	m.mu.Lock()
	s = m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		// A concurrent Close won the race after both logged tombstones;
		// replayState.apply ignores the duplicate.
		return ErrNotFound
	}
	s.close()
	mSessionsClosed.Inc()
	slog.Debug("server: session closed", "session", id, "run", s.runID)
	return nil
}

// Len is the live session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// List snapshots every live session's status, for the stats endpoint.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()
	out := make([]SessionInfo, len(ss))
	for i, s := range ss {
		out[i] = s.Info()
	}
	return out
}

// EvictIdle closes every session idle past the timeout as of now, returning
// how many were evicted. Sessions mid-clean are exempt — their lastUsed is
// refreshed when the run completes. Each eviction logs its tombstone before
// the session is removed, so an evicted session cannot resurrect on replay.
func (m *Manager) EvictIdle(now time.Time) int {
	m.mu.Lock()
	var candidates []*Session
	for _, s := range m.sessions {
		if s == nil {
			continue
		}
		info := s.Info()
		if info.State == StateCleaning {
			continue
		}
		if now.Sub(info.LastUsedAt) > m.cfg.IdleTimeout {
			candidates = append(candidates, s)
		}
	}
	m.mu.Unlock()
	evicted := 0
	for _, s := range candidates {
		if err := m.wal.append(recTombstone{ID: s.ID}); err != nil {
			// Durability broke (fail-stop): keep the session rather than
			// evict one whose tombstone is not on disk.
			continue
		}
		m.mu.Lock()
		_, live := m.sessions[s.ID]
		delete(m.sessions, s.ID)
		m.mu.Unlock()
		if live {
			s.close()
			evicted++
			mSessionsEvicted.Inc()
			slog.Info("server: session evicted idle", "session", s.ID, "run", s.runID)
		}
	}
	return evicted
}

func (m *Manager) sweep() {
	defer close(m.sweepDone)
	tick := time.NewTicker(m.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			m.EvictIdle(now)
		case <-m.stopSweep:
			return
		}
	}
}

// Shutdown stops the sweeper and closes every session. With durability on,
// the WAL is flushed, fsynced, and closed — no tombstones are written, so a
// restart on the same data directory resumes the sessions. Idempotent.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	victims := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			victims = append(victims, s)
		}
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	close(m.stopSweep)
	<-m.sweepDone
	for _, s := range victims {
		s.close()
	}
	m.wal.close()
}

// metricFor resolves a metric name, defaulting like the CLI does.
func metricFor(name string) distance.Metric {
	if name == "" {
		name = "levenshtein"
	}
	return distance.ByName(name)
}
