package server

import (
	"errors"
	"testing"
	"time"
)

const testRules = "FD: CT -> ST"

func testCreateReq() CreateRequest {
	return CreateRequest{
		Rules:   testRules,
		Attrs:   []string{"CT", "ST"},
		Workers: 1,
	}
}

// newTestManager builds a manager with a tight idle timeout and no default
// sweeping delays, cleaned up with the test.
func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	m, err := NewManager(cfg, NewModelCache())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	return m
}

func TestManagerBackpressure(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxSessions: 2})
	s1, err := m.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testCreateReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testCreateReq()); !errors.Is(err, ErrBusy) {
		t.Fatalf("third create = %v, want ErrBusy", err)
	}
	// Closing a session frees its slot.
	if err := m.Close(s1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testCreateReq()); err != nil {
		t.Fatalf("create after close = %v", err)
	}
}

func TestManagerDoubleClose(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	s, err := m.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second close = %v, want ErrNotFound", err)
	}
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after close = %v, want ErrNotFound", err)
	}
	// Submitting to a closed session's executor must fail, not hang.
	if err := s.Submit([][]string{{"a", "b"}}); err == nil {
		t.Error("submit to closed session succeeded")
	}
}

func TestManagerIdleEviction(t *testing.T) {
	m := newTestManager(t, ManagerConfig{IdleTimeout: 50 * time.Millisecond, SweepInterval: time.Hour})
	s, err := m.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	if n := m.EvictIdle(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	if n := m.EvictIdle(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after eviction = %v, want ErrNotFound", err)
	}

	// The background sweeper does the same on its interval.
	m2 := newTestManager(t, ManagerConfig{IdleTimeout: 20 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	s2, err := m2.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m2.Get(s2.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never evicted the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	s, err := m.Create(testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	cache := m.cache
	if err := s.Clean(cache); err == nil {
		t.Error("clean with zero tuples should fail")
	}
	if err := s.Submit([][]string{{"a"}}); err == nil {
		t.Error("submit with wrong row width should fail")
	}
	if err := s.Submit([][]string{{"boaz", "al"}, {"boaz", "al"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Clean(cache); err != nil {
		t.Fatal(err)
	}
	// Wait for the async run, then check post-run transitions.
	deadline := time.Now().Add(10 * time.Second)
	for s.Info().State == StateCleaning {
		if time.Now().After(deadline) {
			t.Fatal("run never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Info().State; st != StateDone {
		t.Fatalf("state after run = %s (err %q)", st, s.Info().Error)
	}
	if err := s.Submit([][]string{{"x", "y"}}); err == nil {
		t.Error("submit after clean should fail")
	}
	if err := s.Clean(cache); err == nil {
		t.Error("second clean should fail")
	}
	if _, err := s.Result(); err != nil {
		t.Fatalf("result = %v", err)
	}
}

// TestWeightsFingerprint: omitted fields and their explicit defaults share
// a cache slot; any effective difference gets its own.
func TestWeightsFingerprint(t *testing.T) {
	base := CreateRequest{}
	if base.weightsFingerprint(2) != (CreateRequest{Tau: 1, Metric: "levenshtein", Seed: 1, BatchSize: 1024}).weightsFingerprint(2) {
		t.Error("defaults and explicit defaults should share a fingerprint")
	}
	distinct := []CreateRequest{
		{Tau: 4},
		{Metric: "cosine"},
		{Seed: 9},
		{BatchSize: 64},
	}
	seen := map[string]bool{base.weightsFingerprint(2): true}
	for i, r := range distinct {
		fp := r.weightsFingerprint(2)
		if seen[fp] {
			t.Errorf("request %d collides with an earlier fingerprint: %s", i, fp)
		}
		seen[fp] = true
	}
	if base.weightsFingerprint(2) == base.weightsFingerprint(4) {
		t.Error("worker count should be part of the fingerprint")
	}
}

// TestFreshWeightsOptOut: fresh_weights forces relearning even when the
// cache holds a vector for the configuration.
func TestFreshWeightsOptOut(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	run := func(req CreateRequest) *Session {
		t.Helper()
		s, err := m.Create(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit([][]string{{"boaz", "al"}, {"boaz", "ai"}, {"boaz", "al"}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Clean(m.cache); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.Info().State == StateCleaning {
			if time.Now().After(deadline) {
				t.Fatal("run never completed")
			}
			time.Sleep(5 * time.Millisecond)
		}
		m.Close(s.ID)
		return s
	}
	req := testCreateReq()
	if s := run(req); s.Info().WeightsCached {
		t.Error("first run claims cached weights")
	}
	if s := run(req); !s.Info().WeightsCached {
		t.Error("second run should be cache-served")
	}
	req.FreshWeights = true
	if s := run(req); s.Info().WeightsCached {
		t.Error("fresh_weights run must not be cache-served")
	}
}

func TestManagerCreateValidation(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	bad := []CreateRequest{
		{Rules: "garbage", Attrs: []string{"A", "B"}},
		{Rules: testRules, Attrs: nil},
		{Rules: "FD: Nope -> ST", Attrs: []string{"CT", "ST"}}, // rule attr not in schema
		{Rules: testRules, Attrs: []string{"CT", "ST"}, Transport: "bogus"},
	}
	for i, req := range bad {
		if _, err := m.Create(req); err == nil {
			t.Errorf("bad create %d succeeded", i)
		}
	}
	if m.Len() != 0 {
		t.Errorf("failed creates leaked %d session slots", m.Len())
	}
}
